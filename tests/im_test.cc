#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/im/coverage.h"
#include "src/im/imm.h"
#include "src/im/rr_set.h"
#include "src/sim/ic_model.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

TEST(RrSetTest, ContainsRootAlways) {
  Rng rng(1);
  GraphBuilder b = BuildErdosRenyi(20, 60, rng);
  b.AssignConstantProbability(0.2);
  DirectedGraph g = std::move(b).Build();
  RrScratch scratch;
  for (int i = 0; i < 50; ++i) {
    std::vector<NodeId> rr;
    GenerateRrSet(g, 7, rng, scratch, rr);
    ASSERT_FALSE(rr.empty());
    EXPECT_EQ(rr[0], 7u);
  }
}

TEST(RrSetTest, DeterministicPathIncludesAllAncestors) {
  // 0 -> 1 -> 2 with p = 1: the RR set of 2 is {2, 1, 0}.
  GraphBuilder b = BuildDirectedPath(3);
  b.AssignConstantProbability(1.0);
  DirectedGraph g = std::move(b).Build();
  Rng rng(2);
  RrScratch scratch;
  std::vector<NodeId> rr;
  GenerateRrSet(g, 2, rng, scratch, rr);
  std::sort(rr.begin(), rr.end());
  EXPECT_EQ(rr, (std::vector<NodeId>{0, 1, 2}));
}

TEST(RrSetTest, ZeroProbabilityYieldsSingleton) {
  GraphBuilder b = BuildDirectedPath(3);
  b.AssignConstantProbability(0.0);
  DirectedGraph g = std::move(b).Build();
  Rng rng(3);
  RrScratch scratch;
  std::vector<NodeId> rr;
  GenerateRrSet(g, 2, rng, scratch, rr);
  EXPECT_EQ(rr, (std::vector<NodeId>{2}));
}

TEST(RrSetTest, MembershipProbabilityEqualsActivationProbability) {
  // For any u, Pr[u in RR(root)] must equal Pr[root activated | S={u}].
  // Path 0 -> 1 -> 2 with p = 0.5: Pr[0 in RR(2)] = 0.25.
  GraphBuilder b = BuildDirectedPath(3);
  b.AssignConstantProbability(0.5);
  DirectedGraph g = std::move(b).Build();
  Rng rng(4);
  RrScratch scratch;
  int hits = 0;
  const int trials = 100000;
  std::vector<NodeId> rr;
  for (int i = 0; i < trials; ++i) {
    rr.clear();
    GenerateRrSet(g, 2, rng, scratch, rr);
    hits += std::count(rr.begin(), rr.end(), 0u) > 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.25, 0.006);
}

TEST(CoverageSelectorTest, GreedyPicksDominatingNode) {
  CoverageSelector sel(4);
  sel.AddSet(std::vector<NodeId>{0, 1});
  sel.AddSet(std::vector<NodeId>{0, 2});
  sel.AddSet(std::vector<NodeId>{0});
  sel.AddSet(std::vector<NodeId>{3});
  auto r = sel.SelectGreedy(1);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 0u);
  EXPECT_EQ(r.covered_sets, 3u);
  EXPECT_DOUBLE_EQ(r.coverage_fraction, 0.75);
}

TEST(CoverageSelectorTest, EmptySetsCountInDenominatorOnly) {
  CoverageSelector sel(2);
  sel.AddSet(std::vector<NodeId>{1});
  sel.AddEmptySet();
  sel.AddEmptySet();
  sel.AddEmptySet();
  auto r = sel.SelectGreedy(1);
  EXPECT_EQ(r.covered_sets, 1u);
  EXPECT_DOUBLE_EQ(r.coverage_fraction, 0.25);
  EXPECT_EQ(sel.num_sets(), 4u);
}

TEST(CoverageSelectorTest, ExclusionSkipsForbiddenNodes) {
  CoverageSelector sel(3);
  sel.AddSet(std::vector<NodeId>{0, 1});
  sel.AddSet(std::vector<NodeId>{0});
  std::vector<uint8_t> excluded = {1, 0, 0};
  auto r = sel.SelectGreedy(1, &excluded);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1u);
  EXPECT_EQ(r.covered_sets, 1u);
}

TEST(CoverageSelectorTest, StopsWhenNothingLeftToCover) {
  CoverageSelector sel(5);
  sel.AddSet(std::vector<NodeId>{0});
  auto r = sel.SelectGreedy(3);
  EXPECT_EQ(r.selected.size(), 1u);  // nodes 1..4 cover nothing
}

TEST(CoverageSelectorTest, GreedyMatchesOptimalOnSmallInstance) {
  // Optimal 2-cover is {1, 2} (covers 4); plain degree order would pick 0.
  CoverageSelector sel(3);
  sel.AddSet(std::vector<NodeId>{0, 1});
  sel.AddSet(std::vector<NodeId>{0, 1});
  sel.AddSet(std::vector<NodeId>{0, 2});
  sel.AddSet(std::vector<NodeId>{2});
  auto r = sel.SelectGreedy(2);
  EXPECT_EQ(r.covered_sets, 4u);
}

TEST(ImmScheduleTest, StopsEarlyWithHighCoverage) {
  // A fake source where coverage is always 0.9: the first level must
  // terminate the search.
  size_t ensured = 0;
  ImmScheduleCallbacks cb;
  cb.ensure_samples = [&](size_t target) { return ensured = target; };
  cb.select_coverage = [&]() { return 0.9; };
  ImmBounds bounds{0.5, 1.0, 1024, 5};
  ImmScheduleResult r = RunImmSchedule(bounds, cb);
  EXPECT_EQ(r.levels_used, 1);
  EXPECT_GT(r.opt_lower_bound, 100.0);
  EXPECT_EQ(r.num_samples, ensured);
}

TEST(ImmScheduleTest, LowCoverageExhaustsLevels) {
  ImmScheduleCallbacks cb;
  size_t ensured = 0;
  cb.ensure_samples = [&](size_t target) { return ensured = target; };
  cb.select_coverage = [&]() { return 0.0; };
  ImmBounds bounds{0.5, 1.0, 256, 3};
  ImmScheduleResult r = RunImmSchedule(bounds, cb);
  EXPECT_EQ(r.levels_used, bounds.NumSearchLevels());
  EXPECT_DOUBLE_EQ(r.opt_lower_bound, 1.0);
}

TEST(ImmTest, PicksTheObviousHub) {
  // Star: hub 0 -> 40 leaves with p = 0.9. Any sensible IM picks the hub.
  GraphBuilder b = BuildOutStar(40);
  b.AssignConstantProbability(0.9);
  DirectedGraph g = std::move(b).Build();
  ImmOptions opts;
  opts.k = 1;
  opts.epsilon = 0.3;
  ImmResult r = SelectSeedsImm(g, opts);
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0], 0u);
  EXPECT_NEAR(r.estimated_spread, 1 + 40 * 0.9, 4.0);
}

TEST(ImmTest, DeterministicAcrossThreadCounts) {
  Rng rng(6);
  GraphBuilder b = BuildErdosRenyi(60, 400, rng);
  b.AssignConstantProbability(0.15);
  DirectedGraph g = std::move(b).Build();
  ImmOptions one;
  one.k = 5;
  one.num_threads = 1;
  one.seed = 99;
  ImmOptions many = one;
  many.num_threads = 8;
  EXPECT_EQ(SelectSeedsImm(g, one).seeds, SelectSeedsImm(g, many).seeds);
}

/// IMM's pick must be near-optimal on instances small enough to brute
/// force.
class ImmVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(ImmVsBruteForce, WithinApproximationFactor) {
  Rng rng(GetParam() * 31 + 5);
  GraphBuilder b = BuildErdosRenyi(9, 16, rng);
  b.AssignConstantProbability(0.4);
  DirectedGraph g = std::move(b).Build();

  const size_t k = 2;
  double opt = 0.0;
  for (NodeId a = 0; a < 9; ++a) {
    for (NodeId c = a + 1; c < 9; ++c) {
      opt = std::max(opt, ExactSpread(g, {a, c}));
    }
  }

  ImmOptions opts;
  opts.k = k;
  opts.epsilon = 0.2;
  opts.seed = GetParam();
  ImmResult r = SelectSeedsImm(g, opts);
  const double achieved = ExactSpread(g, r.seeds);
  // Theory: ≥ (1 - 1/e - ε)·OPT w.h.p.; in practice on these tiny graphs
  // greedy is near-exact. Assert the theoretical bound strictly.
  EXPECT_GE(achieved, (1.0 - 1.0 / std::exp(1.0) - 0.2) * opt - 1e-9);
  // And sanity: the estimate is in the right ballpark.
  EXPECT_NEAR(r.estimated_spread, achieved, 0.35 * opt);
}

INSTANTIATE_TEST_SUITE_P(Random, ImmVsBruteForce, ::testing::Range(1, 9));

}  // namespace
}  // namespace kboost
