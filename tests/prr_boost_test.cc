#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/prr_boost.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/sim/boost_model.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

/// Exhaustive optimum of the k-boosting problem on a brute-forceable graph.
double BruteForceOptBoost(const DirectedGraph& g,
                          const std::vector<NodeId>& seeds, size_t k,
                          std::vector<NodeId>* best_set = nullptr) {
  std::vector<NodeId> candidates;
  std::vector<uint8_t> seed_bm = MakeNodeBitmap(g.num_nodes(), seeds);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!seed_bm[v]) candidates.push_back(v);
  }
  double best = 0.0;
  std::vector<NodeId> chosen;
  // Enumerate all subsets of size ≤ k (small candidate counts only).
  const size_t c = candidates.size();
  for (uint64_t mask = 0; mask < (1ULL << c); ++mask) {
    if (static_cast<size_t>(__builtin_popcountll(mask)) > k) continue;
    std::vector<NodeId> boost;
    for (size_t i = 0; i < c; ++i) {
      if ((mask >> i) & 1) boost.push_back(candidates[i]);
    }
    double val = ExactBoost(g, seeds, boost);
    if (val > best) {
      best = val;
      chosen = boost;
    }
  }
  if (best_set != nullptr) *best_set = chosen;
  return best;
}

TEST(PrrBoostTest, PrefersCumulativePathOverFreshSeedTarget) {
  // The paper's motivating example (Fig. 1): boosting v0 beats boosting v1.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.2, 0.4);
  b.AddEdge(1, 2, 0.1, 0.2);
  DirectedGraph g = std::move(b).Build();
  BoostOptions opts;
  opts.k = 1;
  opts.epsilon = 0.3;
  BoostResult r = PrrBoost(g, {0}, opts);
  ASSERT_EQ(r.best_set.size(), 1u);
  EXPECT_EQ(r.best_set[0], 1u);  // v0
}

TEST(PrrBoostTest, NeverSelectsSeeds) {
  Rng rng(3);
  GraphBuilder b = BuildErdosRenyi(50, 300, rng);
  b.AssignConstantProbability(0.15);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> seeds = {0, 1, 2, 3, 4};
  BoostOptions opts;
  opts.k = 10;
  BoostResult r = PrrBoost(g, seeds, opts);
  for (NodeId v : r.best_set) {
    EXPECT_TRUE(std::find(seeds.begin(), seeds.end(), v) == seeds.end());
  }
  EXPECT_LE(r.best_set.size(), 10u);
}

TEST(PrrBoostTest, DeterministicAcrossThreadCounts) {
  Rng rng(4);
  GraphBuilder b = BuildErdosRenyi(60, 350, rng);
  b.AssignConstantProbability(0.12);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  BoostOptions one;
  one.k = 5;
  one.num_threads = 1;
  one.seed = 7;
  BoostOptions many = one;
  many.num_threads = 8;
  BoostResult r1 = PrrBoost(g, {0, 1}, one);
  BoostResult r8 = PrrBoost(g, {0, 1}, many);
  EXPECT_EQ(r1.best_set, r8.best_set);
  EXPECT_EQ(r1.num_samples, r8.num_samples);
}

TEST(PrrBoostTest, LbVariantReportsMuAndSkipsGraphStorage) {
  Rng rng(5);
  GraphBuilder b = BuildErdosRenyi(80, 500, rng);
  b.AssignConstantProbability(0.1);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  BoostOptions opts;
  opts.k = 8;
  BoostResult full = PrrBoost(g, {0, 1, 2}, opts);
  BoostResult lb = PrrBoostLb(g, {0, 1, 2}, opts);
  EXPECT_EQ(lb.best_set, lb.lb_set);
  EXPECT_LE(lb.best_set.size(), 8u);
  // LB mode stores only critical ids — far less than compressed graphs.
  EXPECT_LT(lb.stored_graph_bytes, full.stored_graph_bytes);
  EXPECT_GT(full.avg_uncompressed_edges, 0.0);
  EXPECT_GE(full.compression_ratio, 1.0);
}

TEST(PrrBoostTest, SandwichPicksTheBetterEstimate) {
  Rng rng(6);
  GraphBuilder b = BuildErdosRenyi(60, 300, rng);
  b.AssignConstantProbability(0.15);
  b.SetBoostWithBeta(3.0);
  DirectedGraph g = std::move(b).Build();
  BoostOptions opts;
  opts.k = 5;
  BoostResult r = PrrBoost(g, {0}, opts);
  EXPECT_GE(r.best_estimate,
            std::max(r.lb_delta_hat, r.delta_delta_hat) - 1e-9);
  // μ̂ never exceeds Δ̂ for the same set (lower-bound property).
  EXPECT_LE(r.lb_mu_hat, r.lb_delta_hat + 1e-9);
}

TEST(PrrBoostTest, EstimateTracksMonteCarloTruth) {
  Rng rng(8);
  GraphBuilder b = BuildPreferentialAttachment(400, 4, 0.3, rng);
  b.AssignExponentialProbabilities(0.15, rng);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> seeds = {0, 1, 2};
  BoostOptions opts;
  opts.k = 15;
  BoostResult r = PrrBoost(g, seeds, opts);
  SimulationOptions sim;
  sim.num_simulations = 40000;
  BoostEstimate mc = EstimateBoost(g, seeds, r.best_set, sim);
  // Winner's-curse bias plus sampling noise, but within coarse agreement.
  EXPECT_NEAR(r.best_estimate, mc.boost,
              0.35 * std::max(1.0, mc.boost) + 6 * mc.boost_stderr);
}

class PrrBoostVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(PrrBoostVsBruteForce, NearOptimalOnTinyGraphs) {
  Rng rng(GetParam() * 97 + 11);
  GraphBuilder b = BuildErdosRenyi(8, 13, rng);
  b.AssignConstantProbability(0.3);
  b.SetBoostWithBeta(3.0);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> seeds = {0};
  const size_t k = 2;

  const double opt = BruteForceOptBoost(g, seeds, k);
  if (opt < 0.02) GTEST_SKIP() << "degenerate draw, nothing to boost";

  BoostOptions opts;
  opts.k = k;
  opts.epsilon = 0.2;
  opts.seed = GetParam();
  BoostResult r = PrrBoost(g, seeds, opts);
  const double achieved = ExactBoost(g, seeds, r.best_set);
  // The guarantee is (1-1/e-ε)·µ(B*)/Δ(B*)·OPT; empirically the sandwich
  // pick lands well above half of OPT on these tiny instances.
  EXPECT_GE(achieved, 0.5 * opt) << "opt=" << opt;
}

INSTANTIATE_TEST_SUITE_P(Random, PrrBoostVsBruteForce,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace kboost
