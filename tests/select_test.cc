#include <gtest/gtest.h>

#include <vector>

#include "src/im/coverage.h"
#include "src/select/greedy.h"

namespace kboost {
namespace {

/// Pull-model toy: plain max-coverage over explicit sets, with CurrentGain
/// recomputed by scanning (the CELF discipline CoverageSelector uses).
class PullCoverageOracle final : public SelectionOracle {
 public:
  PullCoverageOracle(size_t n, std::vector<std::vector<NodeId>> sets)
      : n_(n), sets_(std::move(sets)), covered_(sets_.size(), 0) {}

  size_t num_candidates() const override { return n_; }
  uint64_t InitialGain(NodeId v) const override { return Gain(v); }
  uint64_t CurrentGain(NodeId v) const override { return Gain(v); }
  void Commit(NodeId v, std::vector<NodeId>* /*touched*/) override {
    for (size_t s = 0; s < sets_.size(); ++s) {
      if (covered_[s]) continue;
      for (NodeId u : sets_[s]) {
        if (u == v) {
          covered_[s] = 1;
          break;
        }
      }
    }
  }

 private:
  uint64_t Gain(NodeId v) const {
    uint64_t gain = 0;
    for (size_t s = 0; s < sets_.size(); ++s) {
      if (covered_[s]) continue;
      for (NodeId u : sets_[s]) {
        if (u == v) {
          ++gain;
          break;
        }
      }
    }
    return gain;
  }

  size_t n_;
  std::vector<std::vector<NodeId>> sets_;
  std::vector<uint8_t> covered_;
};

/// Push-model toy with NON-monotone gains: committing a node can raise
/// another node's gain (as Δ̂ does when a pick shifts critical sets). The
/// oracle owns the gain table and reports touched nodes from Commit.
class PushOracle final : public SelectionOracle {
 public:
  /// `bumps[v]` = {node, delta} applied to the gain table when v commits.
  PushOracle(std::vector<uint64_t> gains,
             std::vector<std::vector<std::pair<NodeId, int64_t>>> bumps)
      : gains_(std::move(gains)), bumps_(std::move(bumps)) {}

  size_t num_candidates() const override { return gains_.size(); }
  uint64_t InitialGain(NodeId v) const override { return gains_[v]; }
  uint64_t CurrentGain(NodeId v) const override { return gains_[v]; }
  void Commit(NodeId v, std::vector<NodeId>* touched) override {
    gains_[v] = 0;
    for (const auto& [node, delta] : bumps_[v]) {
      gains_[node] = static_cast<uint64_t>(
          static_cast<int64_t>(gains_[node]) + delta);
      touched->push_back(node);
    }
  }

 private:
  std::vector<uint64_t> gains_;
  std::vector<std::vector<std::pair<NodeId, int64_t>>> bumps_;
};

TEST(LazyGreedyTest, PicksByMarginalGainNotInitialDegree) {
  // Node 0 appears in 3 sets but optimal 2-cover is {1, 2} covering 4.
  PullCoverageOracle oracle(3, {{0, 1}, {0, 1}, {0, 2}, {2}});
  GreedyResult r = RunLazyGreedy(oracle, 2);
  EXPECT_EQ(r.total_gain, 4u);
  ASSERT_EQ(r.gains.size(), 2u);
  EXPECT_EQ(r.gains[0] + r.gains[1], 4u);
}

TEST(LazyGreedyTest, TiesBreakTowardSmallerNodeId) {
  // Nodes 2 and 1 each cover two disjoint sets; node 1 must go first.
  PullCoverageOracle oracle(3, {{1}, {1}, {2}, {2}});
  GreedyResult r = RunLazyGreedy(oracle, 2);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.selected[0], 1u);
  EXPECT_EQ(r.selected[1], 2u);
}

TEST(LazyGreedyTest, ExclusionAndZeroGainCandidatesAreNeverPicked) {
  PullCoverageOracle oracle(4, {{0, 1}, {0}, {1}});
  std::vector<uint8_t> excluded = {1, 0, 0, 0};  // forbid the dominator
  GreedyResult r = RunLazyGreedy(oracle, 4, &excluded);
  // Node 0 excluded, node 1 covers two sets, node 2/3 cover nothing:
  // the loop stops after covering everything reachable.
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1u);
  EXPECT_EQ(r.total_gain, 2u);
}

TEST(LazyGreedyTest, PerPickGainsSumToTotal) {
  PullCoverageOracle oracle(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  GreedyResult r = RunLazyGreedy(oracle, 5);
  uint64_t sum = 0;
  for (uint64_t gain : r.gains) sum += gain;
  EXPECT_EQ(sum, r.total_gain);
  EXPECT_EQ(r.total_gain, 5u);  // everything covered
}

TEST(LazyGreedyTest, HandlesGainIncreasesFromPushOracles) {
  // Initially node 0 has the best gain; committing it RAISES node 3's gain
  // from 1 to 6, which must beat node 1's stale 5. A pure-CELF loop (no
  // touched reinsertions) would pick 1 here.
  PushOracle oracle({7, 5, 4, 1},
                    {/*0*/ {{3, +5}}, /*1*/ {}, /*2*/ {}, /*3*/ {}});
  GreedyResult r = RunLazyGreedy(oracle, 2);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.selected[0], 0u);
  EXPECT_EQ(r.selected[1], 3u);
  EXPECT_EQ(r.total_gain, 7u + 6u);
}

TEST(LazyGreedyTest, HandlesGainDecreasesFromPushOracles) {
  // Committing 0 drops node 1's cached gain to 1; node 2 must win round 2.
  PushOracle oracle({7, 5, 3, 0},
                    {/*0*/ {{1, -4}}, /*1*/ {}, /*2*/ {}, /*3*/ {}});
  GreedyResult r = RunLazyGreedy(oracle, 2);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.selected[0], 0u);
  EXPECT_EQ(r.selected[1], 2u);
}

TEST(LazyGreedyTest, GreedyIsPrefixConsistentAcrossBudgets) {
  // One deterministic engine ⇒ the k-budget answer is a prefix of the
  // k'-budget answer for every k < k' (the session layer's LB fast path).
  auto make = [] {
    return PullCoverageOracle(
        6, {{0, 1, 2}, {1, 3}, {2, 4}, {3, 5}, {4}, {5, 0}, {2}});
  };
  PullCoverageOracle big_oracle = make();
  GreedyResult big = RunLazyGreedy(big_oracle, 6);
  for (size_t k = 1; k < big.selected.size(); ++k) {
    PullCoverageOracle small_oracle = make();
    GreedyResult small = RunLazyGreedy(small_oracle, k);
    ASSERT_EQ(small.selected.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(small.selected[i], big.selected[i]);
      EXPECT_EQ(small.gains[i], big.gains[i]);
    }
  }
}

TEST(CoverageSelectorAdapterTest, MatchesTheSharedEngineSemantics) {
  // The CoverageSelector adapter must inherit the engine's deterministic
  // tie-break and report per-pick gains.
  CoverageSelector sel(4);
  sel.AddSet(std::vector<NodeId>{2});
  sel.AddSet(std::vector<NodeId>{2});
  sel.AddSet(std::vector<NodeId>{1});
  sel.AddSet(std::vector<NodeId>{1});
  sel.AddEmptySet();
  CoverageSelector::Result r = sel.SelectGreedy(2);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.selected[0], 1u);  // tie vs node 2 breaks toward smaller id
  EXPECT_EQ(r.selected[1], 2u);
  ASSERT_EQ(r.pick_gains.size(), 2u);
  EXPECT_EQ(r.pick_gains[0], 2u);
  EXPECT_EQ(r.pick_gains[1], 2u);
  EXPECT_EQ(r.covered_sets, 4u);
  EXPECT_DOUBLE_EQ(r.coverage_fraction, 0.8);
}

}  // namespace
}  // namespace kboost
