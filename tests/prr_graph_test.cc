#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/core/prr_collection.h"
#include "src/core/prr_graph.h"
#include "src/core/prr_sampler.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/sim/boost_model.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

// With p, p' ∈ {0, 1} every edge's sampled status is deterministic:
// (0,0) = blocked, (0,1) = live-upon-boost, (1,1) = live. That makes the
// whole PRR pipeline deterministic and hand-checkable.
constexpr double kBlocked[2] = {0.0, 0.0};
constexpr double kBoostOnly[2] = {0.0, 1.0};
constexpr double kLive[2] = {1.0, 1.0};

DirectedGraph BuildDeterministic(
    NodeId n, const std::vector<std::tuple<NodeId, NodeId, const double*>>&
                  edges) {
  GraphBuilder b(n);
  for (const auto& [u, v, probs] : edges) {
    b.AddEdge(u, v, probs[0], probs[1]);
  }
  return std::move(b).Build();
}

TEST(PrrGeneratorTest, SeedRootIsActivated) {
  DirectedGraph g = BuildDeterministic(2, {{0, 1, kLive}});
  PrrGenerator gen(g, {1});
  Rng rng(1);
  EXPECT_EQ(gen.Generate(1, 3, false, rng).status, PrrStatus::kActivated);
}

TEST(PrrGeneratorTest, LiveSeedPathIsActivated) {
  // s(0) -> r(1), live.
  DirectedGraph g = BuildDeterministic(2, {{0, 1, kLive}});
  PrrGenerator gen(g, {0});
  Rng rng(1);
  EXPECT_EQ(gen.Generate(1, 3, false, rng).status, PrrStatus::kActivated);
}

TEST(PrrGeneratorTest, NoSeedPathIsHopeless) {
  // s(0) -x- r(1): blocked edge.
  DirectedGraph g = BuildDeterministic(2, {{0, 1, kBlocked}});
  PrrGenerator gen(g, {0});
  Rng rng(1);
  EXPECT_EQ(gen.Generate(1, 3, false, rng).status, PrrStatus::kHopeless);
}

TEST(PrrGeneratorTest, SingleBoostGapYieldsCriticalNode) {
  // s(0) -boost-> a(1) -live-> r(2).
  DirectedGraph g =
      BuildDeterministic(3, {{0, 1, kBoostOnly}, {1, 2, kLive}});
  PrrGenerator gen(g, {0});
  Rng rng(1);
  PrrGenResult r = gen.Generate(2, 2, false, rng);
  ASSERT_EQ(r.status, PrrStatus::kBoostable);
  EXPECT_EQ(r.critical_globals, (std::vector<NodeId>{1}));
  // Compressed: super-seed, root, and node a.
  EXPECT_EQ(r.graph.num_nodes(), 3u);
  EXPECT_EQ(r.graph.num_edges(), 2u);
}

TEST(PrrGeneratorTest, TwoBoostPathIsPrunedByK) {
  // s(0) -boost-> a(1) -boost-> b(2) -live-> r(3): needs two boosts.
  DirectedGraph g = BuildDeterministic(
      4, {{0, 1, kBoostOnly}, {1, 2, kBoostOnly}, {2, 3, kLive}});
  PrrGenerator gen(g, {0});
  Rng rng(1);
  // k = 1: no path with ≤ 1 boosts reaches a seed.
  EXPECT_EQ(gen.Generate(3, 1, false, rng).status, PrrStatus::kHopeless);
  // k = 2: boostable, but no single node is critical.
  PrrGenResult r = gen.Generate(3, 2, false, rng);
  ASSERT_EQ(r.status, PrrStatus::kBoostable);
  EXPECT_TRUE(r.critical_globals.empty());
  // f_R({a}) = 0, f_R({a, b}) = 1.
  PrrEvaluator eval;
  std::vector<uint8_t> none(4, 0);
  EXPECT_FALSE(eval.IsActivated(r.graph, none.data()));
  std::vector<uint8_t> a_only = MakeNodeBitmap(4, {1});
  EXPECT_FALSE(eval.IsActivated(r.graph, a_only.data()));
  std::vector<uint8_t> both = MakeNodeBitmap(4, {1, 2});
  EXPECT_TRUE(eval.IsActivated(r.graph, both.data()));
}

TEST(PrrGeneratorTest, SuperSeedMergesLiveChain) {
  // s(0) -live-> x(1) -boost-> a(2) -live-> r(3): x joins the super-seed.
  DirectedGraph g = BuildDeterministic(
      4, {{0, 1, kLive}, {1, 2, kBoostOnly}, {2, 3, kLive}});
  PrrGenerator gen(g, {0});
  Rng rng(1);
  PrrGenResult r = gen.Generate(3, 2, false, rng);
  ASSERT_EQ(r.status, PrrStatus::kBoostable);
  EXPECT_EQ(r.critical_globals, (std::vector<NodeId>{2}));
  // x disappears into the super-seed: {SS, root, a}.
  EXPECT_EQ(r.graph.num_nodes(), 3u);
}

TEST(PrrGeneratorTest, DiamondHasTwoCriticalNodes) {
  // s -boost-> a -live-> r and s -boost-> b -live-> r.
  DirectedGraph g = BuildDeterministic(
      4, {{0, 1, kBoostOnly}, {0, 2, kBoostOnly}, {1, 3, kLive},
          {2, 3, kLive}});
  PrrGenerator gen(g, {0});
  Rng rng(1);
  PrrGenResult r = gen.Generate(3, 1, false, rng);
  ASSERT_EQ(r.status, PrrStatus::kBoostable);
  std::vector<NodeId> crit = r.critical_globals;
  std::sort(crit.begin(), crit.end());
  EXPECT_EQ(crit, (std::vector<NodeId>{1, 2}));
}

TEST(PrrGeneratorTest, LiveShortcutCompressesChains) {
  // s -boost-> a -live-> c -live-> r: a gets a direct live edge to r and
  // the intermediate c is removed.
  DirectedGraph g = BuildDeterministic(
      4, {{0, 1, kBoostOnly}, {1, 2, kLive}, {2, 3, kLive}});
  PrrGenerator gen(g, {0});
  Rng rng(1);
  PrrGenResult r = gen.Generate(3, 2, false, rng);
  ASSERT_EQ(r.status, PrrStatus::kBoostable);
  EXPECT_EQ(r.critical_globals, (std::vector<NodeId>{1}));
  EXPECT_EQ(r.graph.num_nodes(), 3u);  // SS, root, a — c compressed away
  EXPECT_EQ(r.graph.num_edges(), 2u);
}

TEST(PrrGeneratorTest, DeadBranchesAreRemoved) {
  // Extra nodes hanging off the PRR subgraph (like v8 in Fig. 3) must not
  // survive compression: d(4) -live-> a(1), d unreachable from seeds.
  DirectedGraph g = BuildDeterministic(
      5, {{0, 1, kBoostOnly}, {1, 3, kLive}, {4, 1, kLive}});
  PrrGenerator gen(g, {0});
  Rng rng(1);
  PrrGenResult r = gen.Generate(3, 2, false, rng);
  ASSERT_EQ(r.status, PrrStatus::kBoostable);
  for (NodeId global : r.graph.global_ids) {
    EXPECT_NE(global, 4u);  // the dead branch is gone
  }
}

TEST(PrrGeneratorTest, StoredCriticalsMatchEvaluator) {
  Rng topo_rng(77);
  GraphBuilder b = BuildErdosRenyi(60, 360, topo_rng);
  b.AssignConstantProbability(0.15);
  b.SetBoostWithBeta(3.0);
  DirectedGraph g = std::move(b).Build();
  PrrGenerator gen(g, {0, 1, 2});
  PrrEvaluator eval;
  Rng rng(5);
  std::vector<uint8_t> none(g.num_nodes(), 0);
  std::vector<uint32_t> crit;
  int boostable = 0;
  for (int i = 0; i < 400; ++i) {
    PrrGenResult r = gen.GenerateRandomRoot(4, false, rng);
    if (r.status != PrrStatus::kBoostable) continue;
    ++boostable;
    EXPECT_FALSE(eval.IsActivated(r.graph, none.data()));
    ASSERT_FALSE(eval.CriticalNodes(r.graph, none.data(), &crit));
    std::vector<uint32_t> stored = r.graph.critical_locals;
    std::sort(stored.begin(), stored.end());
    std::sort(crit.begin(), crit.end());
    EXPECT_EQ(stored, crit);
  }
  EXPECT_GT(boostable, 10);
}

TEST(PrrGeneratorTest, LbModeCriticalsMatchFullModeDistribution) {
  // LB mode samples different worlds per draw (different rng consumption),
  // so compare the distribution: E[|C_R|] must match between modes.
  Rng topo_rng(78);
  GraphBuilder b = BuildErdosRenyi(50, 250, topo_rng);
  b.AssignConstantProbability(0.12);
  b.SetBoostWithBeta(3.0);
  DirectedGraph g = std::move(b).Build();
  PrrGenerator gen_full(g, {0, 1});
  PrrGenerator gen_lb(g, {0, 1});

  const int trials = 40000;
  double full_sum = 0, lb_sum = 0;
  for (int i = 0; i < trials; ++i) {
    Rng r1(i * 2 + 1), r2(i * 2 + 1);
    PrrGenResult rf = gen_full.Generate(7, 3, false, r1);
    PrrGenResult rl = gen_lb.Generate(7, 3, true, r2);
    if (rf.status == PrrStatus::kBoostable) {
      full_sum += rf.critical_globals.size();
    }
    if (rl.status == PrrStatus::kBoostable ||
        rl.status == PrrStatus::kHopeless) {
      lb_sum += rl.critical_globals.size();
    }
  }
  EXPECT_NEAR(full_sum / trials, lb_sum / trials,
              0.05 * std::max(1.0, full_sum / trials));
}

// ---------------------------------------------------------------------------
// Statistical correctness of the estimators on brute-forceable graphs.
// ---------------------------------------------------------------------------

class PrrEstimatorTest : public ::testing::TestWithParam<int> {};

TEST_P(PrrEstimatorTest, DeltaHatIsUnbiased) {
  Rng topo_rng(GetParam() * 13 + 2);
  GraphBuilder b = BuildErdosRenyi(8, 14, topo_rng);
  b.AssignConstantProbability(0.25);
  b.SetBoostWithBeta(3.0);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> seeds = {0};

  PrrCollection collection(g.num_nodes());
  PrrSampler sampler(g, seeds, /*k=*/3, /*lb_only=*/false,
                     /*seed=*/GetParam(), /*threads=*/4);
  sampler.EnsureSamples(collection, 150000);

  for (const std::vector<NodeId>& boost :
       {std::vector<NodeId>{1}, {1, 2}, {1, 2, 3}, {5}}) {
    const double exact = ExactBoost(g, seeds, boost);
    const double est = collection.EstimateDelta(boost, 4);
    EXPECT_NEAR(est, exact, 0.03 * g.num_nodes() / std::sqrt(150000.0) * 50 +
                                0.02)
        << "boost set size " << boost.size();
    // Sandwich: μ̂ ≤ Δ̂ on the same samples (f⁻ ≤ f pointwise).
    EXPECT_LE(collection.EstimateMu(boost), est + 1e-9);
  }
}

TEST_P(PrrEstimatorTest, GreedyDeltaCountMatchesReEvaluation) {
  Rng topo_rng(GetParam() * 7 + 3);
  GraphBuilder b = BuildErdosRenyi(40, 200, topo_rng);
  b.AssignConstantProbability(0.15);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> seeds = {0, 1};

  PrrCollection collection(g.num_nodes());
  PrrSampler sampler(g, seeds, /*k=*/3, false, GetParam(), 2);
  sampler.EnsureSamples(collection, 20000);

  std::vector<uint8_t> excluded = MakeNodeBitmap(g.num_nodes(), seeds);
  auto greedy = collection.SelectGreedyDelta(3, excluded);
  // The incremental covered-count bookkeeping must agree with a from-scratch
  // evaluation of the returned set.
  EXPECT_NEAR(greedy.delta_hat, collection.EstimateDelta(greedy.nodes, 2),
              1e-9);
  for (NodeId v : greedy.nodes) {
    EXPECT_FALSE(excluded[v]);  // seeds are never boosted
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PrrEstimatorTest, ::testing::Range(1, 7));

TEST(PrrSamplerTest, DeterministicAcrossThreadCounts) {
  Rng topo_rng(91);
  GraphBuilder b = BuildErdosRenyi(40, 200, topo_rng);
  b.AssignConstantProbability(0.2);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> seeds = {3};

  PrrCollection c1(g.num_nodes()), c8(g.num_nodes());
  PrrSampler s1(g, seeds, 2, false, 42, 1);
  PrrSampler s8(g, seeds, 2, false, 42, 8);
  s1.EnsureSamples(c1, 5000);
  s8.EnsureSamples(c8, 5000);
  EXPECT_EQ(c1.num_boostable(), c8.num_boostable());
  EXPECT_EQ(c1.num_activated(), c8.num_activated());
  EXPECT_EQ(c1.num_hopeless(), c8.num_hopeless());
  EXPECT_EQ(c1.EstimateDelta({5, 6}, 1), c8.EstimateDelta({5, 6}, 1));
}

TEST(PrrCollectionTest, CountsAllSampleKinds) {
  PrrCollection c(10);
  c.AddNonBoostable(PrrStatus::kActivated);
  c.AddNonBoostable(PrrStatus::kHopeless);
  c.AddBoostableCriticalOnly({1, 2});
  EXPECT_EQ(c.num_samples(), 3u);
  EXPECT_EQ(c.num_activated(), 1u);
  EXPECT_EQ(c.num_hopeless(), 1u);
  EXPECT_EQ(c.num_boostable(), 1u);
  // μ̂({1}) = 10 * (1/3).
  EXPECT_NEAR(c.EstimateMu({1}), 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.EstimateMu({5}), 0.0, 1e-12);
}

}  // namespace
}  // namespace kboost
