// Positive control for the thread-safety negative compile test: the same
// shapes as the bad_*.cc files, written correctly. Must compile cleanly under
// `-Wthread-safety -Werror` (and under any compiler without the analysis).
//
// Compiled with -fsyntax-only by check_sync_annotations.cmake; never linked.

#include "src/util/sync.h"

namespace {

class Counter {
 public:
  void Increment() KB_EXCLUDES(mutex_) {
    kboost::MutexLock lock(mutex_);
    ++value_;
  }

  int Read() KB_EXCLUDES(mutex_) {
    kboost::MutexLock lock(mutex_);
    return value_;
  }

  // A KB_REQUIRES member: callers hold the lock, the body touches the
  // guarded field directly.
  void IncrementLocked() KB_REQUIRES(mutex_) { ++value_; }

  void IncrementTwice() KB_EXCLUDES(mutex_) {
    kboost::MutexLock lock(mutex_);
    IncrementLocked();
    IncrementLocked();
  }

 private:
  kboost::Mutex mutex_;
  int value_ KB_GUARDED_BY(mutex_) = 0;
};

class Registry {
 public:
  int LookUp(int key) KB_EXCLUDES(mutex_) {
    kboost::ReaderLock lock(mutex_);
    return key < size_ ? key : -1;
  }

  void Grow() KB_EXCLUDES(mutex_) {
    kboost::WriterLock lock(mutex_);
    ++size_;
  }

 private:
  kboost::SharedMutex mutex_;
  int size_ KB_GUARDED_BY(mutex_) = 0;
};

// Condition-variable wait in the annotated style used across the repo:
// explicit while loop, guarded predicate read while the capability is held.
class Gate {
 public:
  void WaitOpen() KB_EXCLUDES(mutex_) {
    kboost::MutexLock lock(mutex_);
    while (!open_) cv_.Wait(mutex_);
  }

  void Open() KB_EXCLUDES(mutex_) {
    {
      kboost::MutexLock lock(mutex_);
      open_ = true;
    }
    cv_.NotifyAll();
  }

 private:
  kboost::Mutex mutex_;
  kboost::CondVar cv_;
  bool open_ KB_GUARDED_BY(mutex_) = false;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  counter.IncrementTwice();
  Registry registry;
  registry.Grow();
  Gate gate;
  gate.Open();
  return counter.Read() + registry.LookUp(0);
}
