// Negative compile test: calling a KB_REQUIRES member without holding the
// required capability MUST be rejected by `-Wthread-safety -Werror`.

#include "src/util/sync.h"

namespace {

class Counter {
 public:
  void IncrementLocked() KB_REQUIRES(mutex_) { ++value_; }

  void Increment() {
    IncrementLocked();  // BAD: caller does not hold mutex_.
  }

 private:
  kboost::Mutex mutex_;
  int value_ KB_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
