// Negative compile test: reading a KB_GUARDED_BY field without holding its
// capability MUST be rejected by `-Wthread-safety -Werror`. If this file ever
// compiles under Clang, the annotation macros have silently become no-ops and
// the whole compile-time concurrency gate is dead — that is what
// check_sync_annotations.cmake catches.

#include "src/util/sync.h"

namespace {

class Counter {
 public:
  int Read() {
    return value_;  // BAD: no lock held — -Wthread-safety must reject this.
  }

 private:
  kboost::Mutex mutex_;
  int value_ KB_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.Read();
}
