# Negative compile test driver for the Clang Thread Safety annotations in
# src/util/sync.h. Run as a ctest via `cmake -P` with:
#
#   -DCXX_COMPILER=<path>        the configured C++ compiler
#   -DCXX_COMPILER_ID=<id>       its CMAKE_CXX_COMPILER_ID
#   -DSOURCE_DIR=<repo root>     include root (sources resolved relative to it)
#
# Contract:
#   * good_locked_access.cc must compile under -Wthread-safety -Werror;
#   * every bad_*.cc must FAIL to compile, and the diagnostic must be a
#     thread-safety one (so an unrelated syntax error can't fake a pass);
#   * on a non-Clang compiler the analysis does not exist, so the script
#     prints the skip marker matched by the test's SKIP_REGULAR_EXPRESSION
#     and returns — ctest records a Skip instead of a vacuous Pass.

if(NOT CXX_COMPILER_ID STREQUAL "Clang" AND
   NOT CXX_COMPILER_ID STREQUAL "AppleClang")
  message(STATUS "sync_compile_fail: compiler is ${CXX_COMPILER_ID}, "
                 "not Clang — thread-safety analysis unavailable, skipping")
  return()
endif()

set(FLAGS -std=c++20 -fsyntax-only -Wthread-safety -Werror
          -I ${SOURCE_DIR})
set(CASE_DIR ${SOURCE_DIR}/tests/sync_compile_fail)

# Positive control: the correctly-locked file must be accepted.
execute_process(
  COMMAND ${CXX_COMPILER} ${FLAGS} ${CASE_DIR}/good_locked_access.cc
  RESULT_VARIABLE good_rc
  ERROR_VARIABLE good_err)
if(NOT good_rc EQUAL 0)
  message(FATAL_ERROR
    "good_locked_access.cc failed to compile under -Wthread-safety "
    "-Werror; the annotations are rejecting correct code:\n${good_err}")
endif()

# Negative cases: each must be rejected with a thread-safety diagnostic.
file(GLOB BAD_CASES ${CASE_DIR}/bad_*.cc)
list(LENGTH BAD_CASES num_bad)
if(num_bad EQUAL 0)
  message(FATAL_ERROR "no bad_*.cc cases found in ${CASE_DIR}")
endif()

foreach(case IN LISTS BAD_CASES)
  get_filename_component(case_name ${case} NAME)
  execute_process(
    COMMAND ${CXX_COMPILER} ${FLAGS} ${case}
    RESULT_VARIABLE bad_rc
    ERROR_VARIABLE bad_err)
  if(bad_rc EQUAL 0)
    message(FATAL_ERROR
      "${case_name} COMPILED but must not: the thread-safety annotations "
      "are not rejecting unlocked guarded access. The compile-time "
      "concurrency gate is dead.")
  endif()
  if(NOT bad_err MATCHES "-Wthread-safety")
    message(FATAL_ERROR
      "${case_name} failed to compile, but not with a thread-safety "
      "diagnostic — fix the test case:\n${bad_err}")
  endif()
  message(STATUS "sync_compile_fail: ${case_name} rejected as expected")
endforeach()

message(STATUS "sync_compile_fail: ${num_bad} bad cases rejected, "
               "good case accepted")
