// Negative compile test: writing a KB_GUARDED_BY field while holding only the
// SHARED side of its SharedMutex MUST be rejected by `-Wthread-safety
// -Werror`. This is the exact bug class the BoostService registry migration
// exists to prevent (a refresh mutating pools_ under a ReaderLock).

#include "src/util/sync.h"

namespace {

class Registry {
 public:
  void Grow() {
    kboost::ReaderLock lock(mutex_);
    ++size_;  // BAD: shared capability held, exclusive required for a write.
  }

 private:
  kboost::SharedMutex mutex_;
  int size_ KB_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Registry registry;
  registry.Grow();
  return 0;
}
