#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/sim/boost_model.h"
#include "src/tree/bidirected_tree.h"
#include "src/tree/tree_evaluator.h"
#include "src/tree/tree_generators.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

/// The paper's Figure-4 tree: v0 center; v1, v2, v3 leaves; seeds {v1, v3};
/// p = 0.1, p' = 0.19 on all directed edges.
BidirectedTree Fig4Tree() {
  TreeBuilder b(4);
  b.AddEdge(0, 1, 0.1, 0.19);
  b.AddEdge(0, 2, 0.1, 0.19);
  b.AddEdge(0, 3, 0.1, 0.19);
  b.SetSeeds({1, 3});
  return std::move(b).Build();
}

TEST(TreeEvaluatorTest, Fig4ActivationProbabilities) {
  BidirectedTree tree = Fig4Tree();
  TreeBoostEvaluator eval(tree);
  // ap(v0) = 1 - (1 - 0.1)^2 = 0.19 (two seed neighbours).
  EXPECT_NEAR(eval.base_activation()[0], 0.19, 1e-6);
  EXPECT_NEAR(eval.base_activation()[1], 1.0, 1e-6);
  EXPECT_NEAR(eval.base_activation()[2], 0.19 * 0.1, 1e-6);
  EXPECT_NEAR(eval.base_activation()[3], 1.0, 1e-6);
}

TEST(TreeEvaluatorTest, Fig4BoostingCenter) {
  BidirectedTree tree = Fig4Tree();
  TreeBoostEvaluator eval(tree);
  std::vector<uint8_t> boost(4, 0);
  boost[0] = 1;
  eval.Compute(boost);
  // Boosted v0: ap(v0) = 1 - (1 - 0.19)^2.
  const double ap0 = 1.0 - 0.81 * 0.81;
  EXPECT_NEAR(eval.ActivationProbability(0), ap0, 1e-6);
  EXPECT_NEAR(eval.ActivationProbability(2), ap0 * 0.1, 1e-6);
  EXPECT_NEAR(eval.boosted_spread(), 2 + ap0 + ap0 * 0.1, 1e-6);
}

TEST(TreeEvaluatorTest, MatchesExactEnumerationOnPath) {
  // Path seed(0) - 1 - 2 with asymmetric probabilities.
  TreeBuilder b(3);
  b.AddEdge(0, 1, 0.3, 0.5, 0.2, 0.4);
  b.AddEdge(1, 2, 0.25, 0.45, 0.15, 0.3);
  b.SetSeed(0);
  BidirectedTree tree = std::move(b).Build();
  DirectedGraph g = tree.ToDirectedGraph();

  TreeBoostEvaluator eval(tree);
  for (uint32_t mask = 0; mask < 4; ++mask) {
    std::vector<uint8_t> bitmap(3, 0);
    std::vector<NodeId> boost;
    if (mask & 1) {
      bitmap[1] = 1;
      boost.push_back(1);
    }
    if (mask & 2) {
      bitmap[2] = 1;
      boost.push_back(2);
    }
    eval.Compute(bitmap);
    EXPECT_NEAR(eval.boosted_spread(), ExactBoostedSpread(g, {0}, boost),
                1e-10)
        << "mask=" << mask;
  }
}

TEST(TreeEvaluatorTest, SpreadWithExtraBoostMatchesRecompute) {
  Rng rng(7);
  TreeProbModel model;
  model.trivalency = false;
  model.constant_p = 0.2;
  BidirectedTree tree = BuildCompleteBinaryTree(31, model, rng);
  tree = WithTreeSeeds(tree, 3, /*influential=*/false, rng);

  TreeBoostEvaluator eval(tree);
  std::vector<uint8_t> base(31, 0);
  base[10] = 1;  // existing boost
  eval.Compute(base);
  std::vector<double> predicted(31);
  for (NodeId u = 0; u < 31; ++u) predicted[u] = eval.SpreadWithExtraBoost(u);

  for (NodeId u = 0; u < 31; ++u) {
    std::vector<uint8_t> with = base;
    with[u] = 1;
    eval.Compute(with);
    EXPECT_NEAR(predicted[u], eval.boosted_spread(), 1e-9) << "u=" << u;
  }
}

TEST(TreeEvaluatorTest, BoostNeverHurts) {
  Rng rng(8);
  TreeProbModel model;
  BidirectedTree tree = BuildRandomTree(64, 0, model, rng);
  tree = WithTreeSeeds(tree, 4, false, rng);
  TreeBoostEvaluator eval(tree);
  std::vector<uint8_t> boost(64, 0);
  double prev = eval.base_spread();
  Rng pick(3);
  for (int i = 0; i < 10; ++i) {
    NodeId v = static_cast<NodeId>(pick.NextBounded(64));
    boost[v] = 1;
    eval.Compute(boost);
    EXPECT_GE(eval.boosted_spread(), prev - 1e-12);
    prev = eval.boosted_spread();
  }
}

TEST(TreeEvaluatorTest, SeedsAndBoostedNodesHaveNoMarginal) {
  BidirectedTree tree = Fig4Tree();
  TreeBoostEvaluator eval(tree);
  std::vector<uint8_t> boost(4, 0);
  boost[2] = 1;
  eval.Compute(boost);
  EXPECT_DOUBLE_EQ(eval.SpreadWithExtraBoost(1), eval.boosted_spread());
  EXPECT_DOUBLE_EQ(eval.SpreadWithExtraBoost(2), eval.boosted_spread());
}

TEST(TreeEvaluatorTest, AgreesWithMonteCarloOnRandomTrees) {
  Rng rng(11);
  TreeProbModel model;
  model.trivalency = false;
  model.constant_p = 0.15;
  BidirectedTree tree = BuildRandomTree(100, 3, model, rng);
  tree = WithTreeSeeds(tree, 5, false, rng);
  DirectedGraph g = tree.ToDirectedGraph();

  std::vector<uint8_t> bitmap(100, 0);
  std::vector<NodeId> boost;
  for (NodeId v : {7, 20, 33, 48}) {
    if (!tree.IsSeed(v)) {
      bitmap[v] = 1;
      boost.push_back(v);
    }
  }
  TreeBoostEvaluator eval(tree);
  eval.Compute(bitmap);

  SimulationOptions opts;
  opts.num_simulations = 200000;
  opts.num_threads = 4;
  SpreadEstimate mc = EstimateBoostedSpread(g, tree.seeds(), boost, opts);
  EXPECT_NEAR(eval.boosted_spread(), mc.mean, 6 * mc.stderr_mean + 0.01);
}

TEST(GreedyBoostTest, BeatsRandomSelection) {
  Rng rng(13);
  TreeProbModel model;
  BidirectedTree tree = BuildCompleteBinaryTree(255, model, rng);
  tree = WithTreeSeeds(tree, 8, false, rng);

  GreedyBoostResult greedy = GreedyBoost(tree, 10);
  EXPECT_LE(greedy.boost_set.size(), 10u);
  EXPECT_GE(greedy.boost, 0.0);

  // Random sets of the same size must not beat greedy (statistically; we
  // allow exact ties for degenerate draws).
  TreeBoostEvaluator eval(tree);
  Rng pick(17);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<uint8_t> bitmap(255, 0);
    size_t placed = 0;
    while (placed < greedy.boost_set.size()) {
      NodeId v = static_cast<NodeId>(pick.NextBounded(255));
      if (!tree.IsSeed(v) && !bitmap[v]) {
        bitmap[v] = 1;
        ++placed;
      }
    }
    eval.Compute(bitmap);
    EXPECT_LE(eval.boost(), greedy.boost + 1e-9);
  }
}

TEST(GreedyBoostTest, MarginalGainsAreRecordedAndSumUp) {
  Rng rng(14);
  TreeProbModel model;
  BidirectedTree tree = BuildCompleteBinaryTree(63, model, rng);
  tree = WithTreeSeeds(tree, 4, false, rng);
  GreedyBoostResult r = GreedyBoost(tree, 6);
  ASSERT_EQ(r.marginal_boosts.size(), r.boost_set.size());
  double sum = 0.0;
  for (double m : r.marginal_boosts) {
    EXPECT_GT(m, 0.0);
    sum += m;
  }
  EXPECT_NEAR(sum, r.boost, 1e-9);
}

class TreeEvaluatorSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeEvaluatorSweep, ExactAgainstEnumerationOnTinyTrees) {
  Rng rng(GetParam() * 101 + 3);
  TreeProbModel model;
  model.trivalency = false;
  model.constant_p = 0.25;
  model.beta = 2.0;
  BidirectedTree tree = BuildRandomTree(6, 0, model, rng);
  tree = WithTreeSeeds(tree, 1 + GetParam() % 2, false, rng);
  DirectedGraph g = tree.ToDirectedGraph();  // 10 directed edges
  TreeBoostEvaluator eval(tree);

  for (uint32_t mask = 0; mask < (1u << 6); ++mask) {
    std::vector<uint8_t> bitmap(6, 0);
    std::vector<NodeId> boost;
    for (NodeId v = 0; v < 6; ++v) {
      if ((mask >> v) & 1 && !tree.IsSeed(v)) {
        bitmap[v] = 1;
        boost.push_back(v);
      }
    }
    eval.Compute(bitmap);
    ASSERT_NEAR(eval.boosted_spread(),
                ExactBoostedSpread(g, tree.seeds(), boost), 1e-9)
        << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, TreeEvaluatorSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace kboost
