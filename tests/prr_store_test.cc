#include <gtest/gtest.h>

#include <vector>

#include "src/core/prr_boost.h"
#include "src/core/prr_collection.h"
#include "src/core/prr_graph.h"
#include "src/core/prr_sampler.h"
#include "src/core/prr_store.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/sim/boost_model.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

bool SameGraph(const PrrGraph& a, const PrrGraph& b) {
  return a.global_ids == b.global_ids && a.out_offsets == b.out_offsets &&
         a.out_edges == b.out_edges && a.in_offsets == b.in_offsets &&
         a.in_edges == b.in_edges && a.critical_locals == b.critical_locals;
}

/// Samples boostable graphs from the digg stand-in for store tests.
std::vector<PrrGraph> SampleGraphs(size_t count, uint64_t seed) {
  Dataset dataset = MakeDataset(SpecByName("digg", 0.02));
  std::vector<NodeId> seeds =
      SelectInfluentialSeeds(dataset.graph, 10, 7, 2);
  PrrGenerator gen(dataset.graph, seeds);
  Rng rng(seed);
  std::vector<PrrGraph> graphs;
  while (graphs.size() < count) {
    PrrGenResult r = gen.GenerateRandomRoot(50, /*lb_only=*/false, rng);
    if (r.status == PrrStatus::kBoostable) {
      graphs.push_back(std::move(r.graph));
    }
  }
  return graphs;
}

TEST(PrrStoreTest, RoundTripsGraphsExactly) {
  std::vector<PrrGraph> graphs = SampleGraphs(50, 11);
  PrrStore store;
  for (const PrrGraph& g : graphs) store.Add(g);
  ASSERT_EQ(store.num_graphs(), graphs.size());
  for (size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_TRUE(SameGraph(store.ToPrrGraph(i), graphs[i])) << "graph " << i;
  }
}

TEST(PrrStoreTest, ViewMatchesSourceArrays) {
  std::vector<PrrGraph> graphs = SampleGraphs(10, 12);
  PrrStore store;
  for (const PrrGraph& g : graphs) store.Add(g);
  for (size_t i = 0; i < graphs.size(); ++i) {
    const PrrGraphView view = store.View(i);
    ASSERT_EQ(view.num_nodes(), graphs[i].num_nodes());
    ASSERT_EQ(view.num_edges(), graphs[i].num_edges());
    for (uint32_t v = 0; v < view.num_nodes(); ++v) {
      EXPECT_EQ(view.global_ids[v], graphs[i].global_ids[v]);
      EXPECT_EQ(view.out_offsets[v], graphs[i].out_offsets[v]);
      EXPECT_EQ(view.in_offsets[v], graphs[i].in_offsets[v]);
    }
    for (size_t e = 0; e < view.num_edges(); ++e) {
      EXPECT_EQ(view.out_edges[e], graphs[i].out_edges[e]);
      EXPECT_EQ(view.in_edges[e], graphs[i].in_edges[e]);
    }
  }
}

TEST(PrrStoreTest, AppendFromCopiesAcrossStores) {
  std::vector<PrrGraph> graphs = SampleGraphs(20, 13);
  PrrStore shard;
  for (const PrrGraph& g : graphs) shard.Add(g);
  PrrStore merged;
  // Interleave to exercise offset bookkeeping.
  for (size_t i = 0; i < graphs.size(); i += 2) merged.AppendFrom(shard, i);
  for (size_t i = 1; i < graphs.size(); i += 2) merged.AppendFrom(shard, i);
  size_t slot = 0;
  for (size_t i = 0; i < graphs.size(); i += 2, ++slot) {
    EXPECT_TRUE(SameGraph(merged.ToPrrGraph(slot), graphs[i]));
  }
  for (size_t i = 1; i < graphs.size(); i += 2, ++slot) {
    EXPECT_TRUE(SameGraph(merged.ToPrrGraph(slot), graphs[i]));
  }
}

TEST(PrrStoreTest, GeneratorSinkMatchesStandaloneGraphs) {
  Dataset dataset = MakeDataset(SpecByName("digg", 0.02));
  std::vector<NodeId> seeds =
      SelectInfluentialSeeds(dataset.graph, 10, 7, 2);
  PrrGenerator gen_a(dataset.graph, seeds);
  PrrGenerator gen_b(dataset.graph, seeds);
  PrrStore sink;
  size_t boostable = 0;
  for (uint64_t i = 0; i < 400; ++i) {
    Rng rng_a(i * 7919 + 1);
    Rng rng_b(i * 7919 + 1);
    PrrGenResult a = gen_a.GenerateRandomRoot(50, false, rng_a);
    PrrGenResult b = gen_b.GenerateRandomRoot(50, false, rng_b, &sink);
    ASSERT_EQ(a.status, b.status);
    if (a.status != PrrStatus::kBoostable) continue;
    EXPECT_TRUE(SameGraph(sink.ToPrrGraph(b.store_id), a.graph));
    EXPECT_EQ(a.critical_globals, b.critical_globals);
    ++boostable;
  }
  EXPECT_GT(boostable, 0u);
  EXPECT_EQ(sink.num_graphs(), boostable);
}

TEST(PrrStoreTest, ClearKeepsNothing) {
  std::vector<PrrGraph> graphs = SampleGraphs(5, 14);
  PrrStore store;
  for (const PrrGraph& g : graphs) store.Add(g);
  EXPECT_GT(store.MemoryBytes(), 0u);
  store.Clear();
  EXPECT_EQ(store.num_graphs(), 0u);
  EXPECT_EQ(store.total_edges(), 0u);
  // Re-adding after Clear works and round-trips.
  store.Add(graphs[0]);
  EXPECT_TRUE(SameGraph(store.ToPrrGraph(0), graphs[0]));
}

TEST(PrrStoreTest, ClearKeepsCapacity) {
  // The keep-capacity contract the sampler's persistent shard arenas rely
  // on: Clear() drops contents but never releases buffers, so clearing and
  // refilling with the same graphs must leave the reserved footprint
  // bit-for-bit unchanged — no reallocation churn across refresh rounds.
  std::vector<PrrGraph> graphs = SampleGraphs(20, 15);
  PrrStore store;
  for (const PrrGraph& g : graphs) store.Add(g);
  const size_t allocated = store.AllocatedBytes();
  EXPECT_GT(allocated, 0u);
  store.Clear();
  EXPECT_EQ(store.num_graphs(), 0u);
  EXPECT_EQ(store.AllocatedBytes(), allocated);
  for (const PrrGraph& g : graphs) store.Add(g);
  EXPECT_EQ(store.AllocatedBytes(), allocated);
  for (size_t i = 0; i < graphs.size(); ++i) {
    ASSERT_TRUE(SameGraph(store.ToPrrGraph(i), graphs[i])) << "graph " << i;
  }
}

class PrrDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = MakeDataset(SpecByName("digg", 0.02));
    seeds_ = SelectInfluentialSeeds(dataset_.graph, 10, 7, 2);
    excluded_ = MakeNodeBitmap(dataset_.graph.num_nodes(), seeds_);
  }

  void FillPool(PrrCollection& collection, int threads, size_t target,
                bool lb_only) {
    PrrSampler sampler(dataset_.graph, seeds_, 20, lb_only, /*seed=*/99,
                       threads);
    sampler.EnsureSamples(collection, target);
  }

  Dataset dataset_;
  std::vector<NodeId> seeds_;
  std::vector<uint8_t> excluded_;
};

TEST_F(PrrDeterminismTest, PoolIsIdenticalForAnyThreadCount) {
  PrrCollection serial(dataset_.graph.num_nodes());
  PrrCollection parallel(dataset_.graph.num_nodes());
  FillPool(serial, 1, 3000, /*lb_only=*/false);
  FillPool(parallel, 4, 3000, /*lb_only=*/false);
  ASSERT_EQ(serial.num_samples(), parallel.num_samples());
  ASSERT_EQ(serial.num_boostable(), parallel.num_boostable());
  ASSERT_EQ(serial.store().num_graphs(), parallel.store().num_graphs());
  for (size_t g = 0; g < serial.store().num_graphs(); ++g) {
    ASSERT_TRUE(SameGraph(serial.store().ToPrrGraph(g),
                          parallel.store().ToPrrGraph(g)))
        << "graph " << g;
  }
}

TEST_F(PrrDeterminismTest, ShardedPoolIsIdenticalForAnyThreadCount) {
  // Sample→shard assignment is a pure function of the GLOBAL sample index
  // (sample i → shard i mod S) and each sample's Rng is seeded by that
  // index, so every shard arena must be bit-identical no matter how many
  // workers generated it.
  PrrCollection serial(dataset_.graph.num_nodes(), /*num_shards=*/3);
  PrrCollection parallel(dataset_.graph.num_nodes(), /*num_shards=*/3);
  FillPool(serial, 1, 3000, /*lb_only=*/false);
  FillPool(parallel, 4, 3000, /*lb_only=*/false);
  ASSERT_EQ(serial.num_samples(), parallel.num_samples());
  ASSERT_EQ(serial.num_boostable(), parallel.num_boostable());
  for (size_t s = 0; s < serial.num_shards(); ++s) {
    const PrrStore& a = serial.shard_store(s);
    const PrrStore& b = parallel.shard_store(s);
    ASSERT_EQ(a.num_graphs(), b.num_graphs()) << "shard " << s;
    for (size_t g = 0; g < a.num_graphs(); ++g) {
      ASSERT_TRUE(SameGraph(a.ToPrrGraph(g), b.ToPrrGraph(g)))
          << "shard " << s << " graph " << g;
    }
  }
}

TEST_F(PrrDeterminismTest, ShardCountIsInvisibleInEveryAnswer) {
  // Estimators are additive over samples and selection settles gains before
  // each pick, so partitioning one pool into S arenas must not change a
  // single bit of any answer.
  PrrCollection mono(dataset_.graph.num_nodes());
  PrrCollection sharded(dataset_.graph.num_nodes(), /*num_shards=*/5);
  FillPool(mono, 2, 3000, /*lb_only=*/false);
  FillPool(sharded, 2, 3000, /*lb_only=*/false);
  ASSERT_EQ(mono.num_samples(), sharded.num_samples());
  ASSERT_EQ(sharded.num_stored_graphs(), mono.store().num_graphs());
  PrrCollection::DeltaResult dm = mono.SelectGreedyDelta(15, excluded_, 2);
  PrrCollection::DeltaResult ds = sharded.SelectGreedyDelta(15, excluded_, 2);
  EXPECT_EQ(dm.nodes, ds.nodes);
  EXPECT_EQ(dm.pick_gains, ds.pick_gains);
  EXPECT_EQ(dm.activated_samples, ds.activated_samples);
  EXPECT_EQ(mono.EstimateDelta(dm.nodes, 2), sharded.EstimateDelta(ds.nodes, 2));
  EXPECT_EQ(mono.EstimateMu(dm.nodes), sharded.EstimateMu(ds.nodes));
  PrrCollection::LbResult lm = mono.SelectGreedyLowerBound(15, excluded_);
  PrrCollection::LbResult ls = sharded.SelectGreedyLowerBound(15, excluded_);
  EXPECT_EQ(lm.nodes, ls.nodes);
  EXPECT_EQ(lm.mu_hat, ls.mu_hat);
}

TEST_F(PrrDeterminismTest, SelectGreedyDeltaIsThreadCountInvariant) {
  PrrCollection collection(dataset_.graph.num_nodes());
  FillPool(collection, 3, 3000, /*lb_only=*/false);
  PrrCollection::DeltaResult serial =
      collection.SelectGreedyDelta(15, excluded_, 1);
  PrrCollection::DeltaResult parallel =
      collection.SelectGreedyDelta(15, excluded_, 4);
  EXPECT_EQ(serial.nodes, parallel.nodes);
  EXPECT_EQ(serial.activated_samples, parallel.activated_samples);
  EXPECT_DOUBLE_EQ(serial.delta_hat, parallel.delta_hat);
}

TEST_F(PrrDeterminismTest, LowerBoundSelectionIsStableAcrossPools) {
  PrrCollection a(dataset_.graph.num_nodes());
  PrrCollection b(dataset_.graph.num_nodes());
  FillPool(a, 1, 3000, /*lb_only=*/true);
  FillPool(b, 4, 3000, /*lb_only=*/true);
  PrrCollection::LbResult ra = a.SelectGreedyLowerBound(15, excluded_);
  PrrCollection::LbResult rb = b.SelectGreedyLowerBound(15, excluded_);
  EXPECT_EQ(ra.nodes, rb.nodes);
  EXPECT_DOUBLE_EQ(ra.mu_hat, rb.mu_hat);
}

TEST_F(PrrDeterminismTest, FullPipelineSelectsSameBoostSet) {
  BoostOptions options;
  options.k = 10;
  options.seed = 4242;
  options.max_samples = 20000;
  options.num_threads = 1;
  BoostResult serial = PrrBoost(dataset_.graph, seeds_, options);
  options.num_threads = 4;
  BoostResult parallel = PrrBoost(dataset_.graph, seeds_, options);
  EXPECT_EQ(serial.best_set, parallel.best_set);
  EXPECT_EQ(serial.num_samples, parallel.num_samples);
  EXPECT_DOUBLE_EQ(serial.best_estimate, parallel.best_estimate);
}

TEST(PrrCollectionTest, EstimateMuWithInterleavedEmptySets) {
  // Empty (non-boostable) samples interleave with boostable ones; set ids
  // handed out by SetsContaining() index the non-empty numbering, so μ̂ must
  // stay correct and in bounds with `hit` sized by num_nonempty_sets().
  PrrCollection c(10);
  c.AddNonBoostable(PrrStatus::kHopeless);
  c.AddBoostableCriticalOnly({1, 2});
  c.AddNonBoostable(PrrStatus::kActivated);
  c.AddNonBoostable(PrrStatus::kHopeless);
  c.AddBoostableCriticalOnly({2, 3});
  c.AddNonBoostable(PrrStatus::kActivated);
  c.AddBoostableCriticalOnly({4});
  ASSERT_EQ(c.num_samples(), 7u);
  ASSERT_EQ(c.coverage().num_nonempty_sets(), 3u);
  // μ̂(B) = n · (#covered) / θ with n = 10, θ = 7.
  EXPECT_NEAR(c.EstimateMu({2}), 10.0 * 2 / 7, 1e-12);
  EXPECT_NEAR(c.EstimateMu({1, 3}), 10.0 * 2 / 7, 1e-12);
  EXPECT_NEAR(c.EstimateMu({4}), 10.0 * 1 / 7, 1e-12);
  EXPECT_NEAR(c.EstimateMu({1, 2, 3, 4}), 10.0 * 3 / 7, 1e-12);
  EXPECT_NEAR(c.EstimateMu({5}), 0.0, 1e-12);
}

}  // namespace
}  // namespace kboost
