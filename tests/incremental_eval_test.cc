// Equivalence tests for the incremental evaluation engine: the cached
// fwd/bwd/crit bitmap state relaxed per commit must reproduce the scratch
// evaluator's answers exactly — for reachability, critical sets, per-pick Δ̂
// gains, batched estimators and the bulk shard-merge coverage path — across
// random graphs, random commit orders, thread counts and pool reuse.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/core/boost_session.h"
#include "src/core/prr_collection.h"
#include "src/core/prr_graph.h"
#include "src/core/prr_sampler.h"
#include "src/core/prr_store.h"
#include "src/graph/generators.h"
#include "src/graph/probability_models.h"
#include "src/im/coverage.h"
#include "src/sim/boost_model.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

/// A small random graph with mixed live/boost edges and a few seeds —
/// deterministic given `seed`.
DirectedGraph MakeRandomGraph(uint64_t seed, NodeId num_nodes,
                              size_t num_edges) {
  Rng rng(seed);
  GraphBuilder builder = BuildErdosRenyi(num_nodes, num_edges, rng);
  ProbabilityModelParams params;
  params.constant_p = 0.3;
  params.beta = 4.0;  // strong boost: plenty of live-upon-boost edges
  ApplyProbabilityModel(builder, ProbabilityModel::kConstant, params, rng);
  return std::move(builder).Build();
}

/// Samples boostable PRR-graphs into a fresh store; returns the store and
/// the graph's node count.
size_t SampleBoostable(const DirectedGraph& graph,
                       const std::vector<NodeId>& seeds, size_t k,
                       size_t want, uint64_t seed, PrrStore* store) {
  PrrGenerator gen(graph, seeds);
  Rng rng(seed);
  size_t got = 0;
  for (size_t attempt = 0; attempt < want * 50 && got < want; ++attempt) {
    PrrGenResult r = gen.GenerateRandomRoot(k, /*lb_only=*/false, rng, store);
    if (r.status == PrrStatus::kBoostable) ++got;
  }
  return got;
}

/// Fuzz: maintain incremental state over a random boost order and compare
/// fwd/bwd reach bits, activation, and the accumulated critical set against
/// the scratch evaluator after every commit.
TEST(IncrementalEvalTest, MatchesScratchAcrossRandomCommitOrders) {
  size_t graphs_exercised = 0;
  for (uint64_t trial = 0; trial < 30; ++trial) {
    const NodeId n = 12 + trial % 20;
    DirectedGraph graph = MakeRandomGraph(1000 + trial, n, 4 * n);
    const std::vector<NodeId> seeds = {0, 1};
    PrrStore store;
    const size_t got = SampleBoostable(graph, seeds, /*k=*/6, /*want=*/8,
                                       2000 + trial, &store);
    if (got == 0) continue;

    // Random boost order over all non-seed nodes.
    std::vector<NodeId> order;
    for (NodeId v = 2; v < n; ++v) order.push_back(v);
    Rng shuffle_rng(3000 + trial);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[shuffle_rng.NextBounded(i)]);
    }

    for (size_t g = 0; g < store.num_graphs(); ++g) {
      ++graphs_exercised;
      const PrrGraphView view = store.View(g);
      const uint32_t words = (view.num_nodes() + 63) / 64;
      std::vector<uint64_t> fwd(words, 0), bwd(words, 0), crit(words, 0);
      std::vector<uint64_t> ref_fwd(words), ref_bwd(words);
      std::vector<uint8_t> boosted(n, 0);
      PrrIncrementalEvaluator inc;
      PrrEvaluator scratch;

      // Incremental state at B = ∅ equals a full rebuild at B = ∅.
      inc.InitEmptyReach(view, fwd.data(), bwd.data());
      ASSERT_FALSE(
          inc.RebuildReach(view, boosted.data(), ref_fwd.data(),
                           ref_bwd.data()))
          << "boostable graph activated at the empty set";
      EXPECT_EQ(fwd, ref_fwd);
      EXPECT_EQ(bwd, ref_bwd);
      for (uint32_t c : view.critical()) {
        PrrIncrementalEvaluator::SetBit(crit.data(), c);
      }
      std::set<uint32_t> critical_set(view.critical().begin(),
                                      view.critical().end());

      bool active = false;
      for (NodeId pick : order) {
        boosted[pick] = 1;
        // Find pick's local id, if present in this graph.
        uint32_t local = static_cast<uint32_t>(-1);
        for (uint32_t v = PrrGraph::kRootLocal; v < view.num_nodes(); ++v) {
          if (view.global_ids[v] == pick) {
            local = v;
            break;
          }
        }
        if (local == static_cast<uint32_t>(-1)) continue;  // not in graph

        std::vector<uint32_t> fresh;
        active = inc.RelaxCommit(view, boosted.data(), local, fwd.data(),
                                 bwd.data());
        const bool scratch_active = scratch.IsActivated(view, boosted.data());
        ASSERT_EQ(active, scratch_active)
            << "activation divergence, trial " << trial << " graph " << g;
        if (active) break;  // state is dead once activated

        inc.AppendNewCriticalFrontier(view, boosted.data(), fwd.data(),
                                      bwd.data(), crit.data(), &fresh);
        for (uint32_t c : fresh) critical_set.insert(c);

        // Reach bits must equal a from-scratch rebuild under the current B.
        ASSERT_FALSE(inc.RebuildReach(view, boosted.data(), ref_fwd.data(),
                                      ref_bwd.data()));
        EXPECT_EQ(fwd, ref_fwd);
        EXPECT_EQ(bwd, ref_bwd);

        // Accumulated critical set (minus boosted members) must equal the
        // scratch evaluator's critical set.
        std::vector<uint32_t> scratch_critical;
        ASSERT_FALSE(
            scratch.CriticalNodes(view, boosted.data(), &scratch_critical));
        std::set<uint32_t> want(scratch_critical.begin(),
                                scratch_critical.end());
        std::set<uint32_t> have;
        for (uint32_t c : critical_set) {
          if (!boosted[view.global_ids[c]]) have.insert(c);
        }
        EXPECT_EQ(have, want)
            << "critical divergence, trial " << trial << " graph " << g;
      }
    }
  }
  // The fuzz must actually have exercised graphs, or it proves nothing.
  EXPECT_GT(graphs_exercised, 50u);
}

/// Reference Δ̂ greedy: each round recomputes every graph's critical set
/// from scratch, derives all gains, and picks the max (smaller id on ties).
/// Entirely independent of the oracle/heap machinery.
struct ReferencePick {
  NodeId node;
  uint64_t gain;
};
std::vector<ReferencePick> ReferenceGreedyDelta(
    const PrrCollection& collection, size_t k,
    const std::vector<uint8_t>& excluded) {
  const size_t n = collection.num_graph_nodes();
  std::vector<uint8_t> boosted(n, 0);
  std::vector<uint8_t> covered(collection.store().num_graphs(), 0);
  PrrEvaluator scratch;
  std::vector<ReferencePick> picks;
  while (picks.size() < k) {
    std::vector<uint64_t> gains(n, 0);
    for (size_t g = 0; g < collection.store().num_graphs(); ++g) {
      if (covered[g]) continue;
      const PrrGraphView view = collection.store().View(g);
      std::vector<uint32_t> critical;
      if (scratch.CriticalNodes(view, boosted.data(), &critical)) {
        covered[g] = 1;  // activated by earlier picks
        continue;
      }
      for (uint32_t c : critical) {
        const NodeId global = view.global_ids[c];
        if (!excluded[global] && !boosted[global]) ++gains[global];
      }
    }
    NodeId best = kInvalidNode;
    uint64_t best_gain = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (boosted[v] || excluded[v]) continue;
      if (gains[v] > best_gain) {
        best_gain = gains[v];
        best = v;
      }
    }
    if (best == kInvalidNode) break;
    boosted[best] = 1;
    picks.push_back(ReferencePick{best, best_gain});
  }
  return picks;
}

TEST(IncrementalEvalTest, PerPickGainsMatchScratchReference) {
  for (uint64_t trial = 0; trial < 5; ++trial) {
    const NodeId n = 40;
    DirectedGraph graph = MakeRandomGraph(4000 + trial, n, 5 * n);
    const std::vector<NodeId> seeds = {0, 1, 2};
    PrrCollection collection(n);
    {
      PrrSampler sampler(graph, seeds, /*k=*/8, /*lb_only=*/false,
                         /*seed=*/5000 + trial, /*num_threads=*/3);
      sampler.EnsureSamples(collection, 200);
    }
    const std::vector<uint8_t> excluded = MakeNodeBitmap(n, seeds);
    const std::vector<ReferencePick> want =
        ReferenceGreedyDelta(collection, /*k=*/8, excluded);

    for (int threads : {1, 4}) {
      const PrrCollection::DeltaResult got =
          collection.SelectGreedyDelta(/*k=*/8, excluded, threads);
      ASSERT_GE(got.nodes.size(), want.size());
      ASSERT_EQ(got.pick_gains.size(), want.size()) << "threads " << threads;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got.nodes[i], want[i].node)
            << "pick " << i << ", threads " << threads;
        EXPECT_EQ(got.pick_gains[i], want[i].gain)
            << "pick " << i << ", threads " << threads;
      }
    }
  }
}

TEST(IncrementalEvalTest, EstimatorsMatchScratchLoops) {
  const NodeId n = 60;
  DirectedGraph graph = MakeRandomGraph(7001, n, 6 * n);
  const std::vector<NodeId> seeds = {0, 1};
  PrrCollection collection(n);
  {
    PrrSampler sampler(graph, seeds, /*k=*/6, /*lb_only=*/false,
                       /*seed=*/7002, /*num_threads=*/2);
    sampler.EnsureSamples(collection, 300);
  }
  Rng rng(7003);
  PrrEvaluator scratch;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<NodeId> boost_set;
    for (NodeId v = 2; v < n; ++v) {
      if (rng.NextBounded(4) == 0) boost_set.push_back(v);
    }
    const std::vector<uint8_t> boosted = MakeNodeBitmap(n, boost_set);
    size_t activated = 0;
    for (size_t g = 0; g < collection.store().num_graphs(); ++g) {
      activated += scratch.IsActivated(collection.store().View(g),
                                       boosted.data());
    }
    const double want = static_cast<double>(n) *
                        static_cast<double>(activated) /
                        static_cast<double>(collection.num_samples());
    for (int threads : {1, 4}) {
      EXPECT_DOUBLE_EQ(collection.EstimateDelta(boost_set, threads), want);
    }
    // Batch evaluator exposes the packed activation bitmap too.
    PrrBatchEvaluator batch;
    std::vector<uint64_t> bits;
    EXPECT_EQ(batch.CountActivated(collection.store(), boosted.data(), 4,
                                   &bits),
              activated);
    ASSERT_EQ(bits.size(), (collection.store().num_graphs() + 63) / 64);
    for (size_t g = 0; g < collection.store().num_graphs(); ++g) {
      EXPECT_EQ((bits[g >> 6] >> (g & 63)) & 1,
                static_cast<uint64_t>(scratch.IsActivated(
                    collection.store().View(g), boosted.data())));
    }
  }
}

/// Pool reuse: one session answering several budgets (in both directions)
/// must match a twin session and be thread-count invariant — the eval-state
/// arena is re-zeroed per selection run, never leaking state across runs.
TEST(IncrementalEvalTest, SolveForBudgetReusesPoolBitIdentically) {
  DirectedGraph graph = MakeRandomGraph(8001, 80, 480);
  const std::vector<NodeId> seeds = {0, 1, 2};
  BoostOptions options;
  options.k = 12;
  options.epsilon = 0.7;
  options.seed = 99;
  options.max_samples = 2000;

  options.num_threads = 1;
  BoostSession down(graph, seeds, options);
  options.num_threads = 4;
  BoostSession up(graph, seeds, options);

  // Warm both sessions with opposite sweep directions so every later query
  // reuses the pool and a previously-exercised eval-state arena.
  for (size_t k : {12, 7, 3}) down.SolveForBudget(k);
  for (size_t k : {3, 7, 12}) up.SolveForBudget(k);
  // Per-budget answers must agree across sweep direction and thread count.
  for (size_t k : {3, 7, 12}) {
    BoostResult a = down.SolveForBudget(k);
    BoostResult b = up.SolveForBudget(k);
    EXPECT_TRUE(a.pool_reused && b.pool_reused);
    EXPECT_EQ(a.best_set, b.best_set) << "k=" << k;
    EXPECT_EQ(a.delta_set, b.delta_set) << "k=" << k;
    EXPECT_DOUBLE_EQ(a.best_estimate, b.best_estimate) << "k=" << k;
  }
}

/// The bulk shard-merge path (AppendSets + AddBoostableRound) must build
/// exactly the coverage state the per-sample AddSet funnel builds.
TEST(IncrementalEvalTest, BulkCoverageAppendMatchesPerSampleFunnel) {
  // Direct CoverageSelector equivalence, including empty sets.
  CoverageSelector per_sample(10);
  CoverageSelector bulk(10);
  const std::vector<std::vector<NodeId>> sets = {
      {1, 2, 3}, {}, {4}, {2, 9}, {}, {0, 5, 6, 7}};
  std::vector<uint32_t> sizes;
  size_t total = 0;
  for (const auto& s : sets) {
    per_sample.AddSet(s);
    sizes.push_back(static_cast<uint32_t>(s.size()));
    total += s.size();
  }
  NodeId* dst = bulk.AppendSets(sizes);
  for (const auto& s : sets) dst = std::copy(s.begin(), s.end(), dst);
  ASSERT_EQ(per_sample.num_sets(), bulk.num_sets());
  ASSERT_EQ(per_sample.num_nonempty_sets(), bulk.num_nonempty_sets());
  for (size_t i = 0; i < per_sample.num_nonempty_sets(); ++i) {
    EXPECT_TRUE(std::ranges::equal(per_sample.SetNodes(i), bulk.SetNodes(i)));
  }
  const auto a = per_sample.SelectGreedy(3);
  const auto b = bulk.SelectGreedy(3);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.covered_sets, b.covered_sets);

  // Full pipeline: a pool sampled on 1 worker equals the same pool sampled
  // on 4 workers (identical coverage totals, LB order, Δ̂ selection).
  DirectedGraph graph = MakeRandomGraph(9001, 60, 360);
  const std::vector<NodeId> seeds = {0, 1};
  const std::vector<uint8_t> excluded = MakeNodeBitmap(60, seeds);
  std::vector<std::unique_ptr<PrrCollection>> pools;
  for (int threads : {1, 4}) {
    auto collection = std::make_unique<PrrCollection>(60);
    PrrSampler sampler(graph, seeds, /*k=*/6, /*lb_only=*/false,
                       /*seed=*/424242, threads);
    sampler.EnsureSamples(*collection, 500);
    pools.push_back(std::move(collection));
  }
  ASSERT_EQ(pools[0]->num_samples(), pools[1]->num_samples());
  ASSERT_EQ(pools[0]->num_boostable(), pools[1]->num_boostable());
  const auto lb0 = pools[0]->SelectGreedyLowerBound(6, excluded);
  const auto lb1 = pools[1]->SelectGreedyLowerBound(6, excluded);
  EXPECT_EQ(lb0.nodes, lb1.nodes);
  EXPECT_EQ(lb0.prefix_mu_hat, lb1.prefix_mu_hat);
  const auto d0 = pools[0]->SelectGreedyDelta(6, excluded, 1);
  const auto d1 = pools[1]->SelectGreedyDelta(6, excluded, 4);
  EXPECT_EQ(d0.nodes, d1.nodes);
  EXPECT_EQ(d0.pick_gains, d1.pick_gains);
  EXPECT_EQ(d0.activated_samples, d1.activated_samples);

  // And the LB-mode (critical-only) round path against per-sample adds.
  PrrCollection lb_bulk(60);
  PrrCollection lb_funnel(60);
  {
    PrrSampler sampler(graph, seeds, /*k=*/6, /*lb_only=*/true,
                       /*seed=*/434343, /*num_threads=*/3);
    sampler.EnsureSamples(lb_bulk, 500);
  }
  {
    // Rebuild the same pool through the per-sample compat API.
    PrrCollection probe(60);
    PrrSampler sampler(graph, seeds, /*k=*/6, /*lb_only=*/true,
                       /*seed=*/434343, /*num_threads=*/1);
    sampler.EnsureSamples(probe, 500);
    // Replay the probe's critical sets through per-sample adds (where the
    // empty samples interleave is irrelevant to the estimators).
    const CoverageSelector& cov = probe.coverage();
    for (size_t i = 0; i < cov.num_nonempty_sets(); ++i) {
      lb_funnel.AddBoostableCriticalOnly(cov.SetNodes(i));
    }
    lb_funnel.AddNonBoostableCounts(probe.num_activated(),
                                    probe.num_hopeless());
  }
  ASSERT_EQ(lb_bulk.num_samples(), lb_funnel.num_samples());
  const auto mu_nodes = lb_bulk.SelectGreedyLowerBound(6, excluded);
  const auto mu_ref = lb_funnel.SelectGreedyLowerBound(6, excluded);
  EXPECT_EQ(mu_nodes.nodes, mu_ref.nodes);
  EXPECT_EQ(mu_nodes.mu_hat, mu_ref.mu_hat);
}

/// The sharding determinism guarantee, fuzzed: for random graphs and random
/// (threads, shards, k) combinations, a pool split across S arenas must
/// produce bit-identical answers — Δ̂ selection (nodes, per-pick gains,
/// activated count), both estimators and the LB order — to the monolithic
/// S = 1 pool sampled serially with the same seed.
TEST(IncrementalEvalTest, ShardedAnswersMatchMonolithAcrossFuzzedCombos) {
  Rng fuzz(515151);
  for (uint64_t trial = 0; trial < 8; ++trial) {
    const NodeId n = 50 + static_cast<NodeId>(trial) * 9;
    DirectedGraph graph = MakeRandomGraph(7000 + trial, n, 6 * n);
    const std::vector<NodeId> seeds = {0, 1};
    const std::vector<uint8_t> excluded = MakeNodeBitmap(n, seeds);
    const size_t pool_k = 8;
    const size_t target = 600;

    // Reference: monolithic pool, single worker.
    PrrCollection mono(n);
    {
      PrrSampler sampler(graph, seeds, pool_k, /*lb_only=*/false,
                         /*seed=*/5000 + trial, /*num_threads=*/1);
      sampler.EnsureSamples(mono, target);
    }
    const size_t k = 1 + fuzz.NextBounded(pool_k);
    const PrrCollection::DeltaResult ref_delta =
        mono.SelectGreedyDelta(k, excluded, 1);
    const PrrCollection::LbResult ref_lb =
        mono.SelectGreedyLowerBound(pool_k, excluded);
    const double ref_delta_hat = mono.EstimateDelta(ref_delta.nodes, 1);
    const double ref_mu_hat = mono.EstimateMu(ref_delta.nodes);

    for (int combo = 0; combo < 3; ++combo) {
      const int shards = 2 + static_cast<int>(fuzz.NextBounded(6));
      const int threads = 1 + static_cast<int>(fuzz.NextBounded(4));
      SCOPED_TRACE("trial=" + std::to_string(trial) +
                   " shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads) +
                   " k=" + std::to_string(k));
      PrrCollection sharded(n, shards);
      PrrSampler sampler(graph, seeds, pool_k, /*lb_only=*/false,
                         /*seed=*/5000 + trial, threads);
      sampler.EnsureSamples(sharded, target);
      ASSERT_EQ(sharded.num_samples(), mono.num_samples());
      ASSERT_EQ(sharded.num_stored_graphs(), mono.store().num_graphs());

      const PrrCollection::DeltaResult got =
          sharded.SelectGreedyDelta(k, excluded, threads);
      EXPECT_EQ(got.nodes, ref_delta.nodes);
      EXPECT_EQ(got.pick_gains, ref_delta.pick_gains);
      EXPECT_EQ(got.activated_samples, ref_delta.activated_samples);
      EXPECT_EQ(sharded.EstimateDelta(ref_delta.nodes, threads),
                ref_delta_hat);
      EXPECT_EQ(sharded.EstimateMu(ref_delta.nodes), ref_mu_hat);
      const PrrCollection::LbResult lb =
          sharded.SelectGreedyLowerBound(pool_k, excluded);
      EXPECT_EQ(lb.nodes, ref_lb.nodes);
      EXPECT_EQ(lb.prefix_mu_hat, ref_lb.prefix_mu_hat);
    }
  }
}

}  // namespace
}  // namespace kboost
