// Tests for the v3 zero-copy snapshot layout (src/io/pool_io) and the
// pluggable section codecs (src/io/codec): codec round trips on adversarial
// streams, mmap-vs-owned bit-identity, structural rejection of corrupted
// directories, endianness and thread-count header handling, and the
// compatibility guarantees for the v2 writer.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/boost_session.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/io/codec.h"
#include "src/io/pool_io.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace kboost {
namespace {

DirectedGraph MakeTestGraph(uint64_t seed = 7) {
  Rng rng(seed);
  GraphBuilder b = BuildErdosRenyi(80, 500, rng);
  b.AssignConstantProbability(0.12);
  b.SetBoostWithBeta(2.0);
  return std::move(b).Build();
}

BoostOptions MakeOptions(size_t k, int num_shards = 1, int num_threads = 2) {
  BoostOptions options;
  options.k = k;
  options.seed = 11;
  options.num_threads = num_threads;
  options.num_shards = num_shards;
  return options;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Status SaveV3(BoostSession& session, const std::string& path,
              SnapshotCodec codec = SnapshotCodec::kNop) {
  session.Prepare();
  PoolSaveOptions options;
  options.codec = codec;
  return SavePoolSnapshot(session, path, options).status();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void PokeU32(std::string* bytes, size_t offset, uint32_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

void PokeU64(std::string* bytes, size_t offset, uint64_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

uint64_t PeekU64(const std::string& bytes, size_t offset) {
  uint64_t value;
  std::memcpy(&value, bytes.data() + offset, sizeof(value));
  return value;
}

/// v3 layout landmarks for the corruption tests below: the 128-byte v2
/// header prefix, the 32-byte extension, the seed list, then the directory
/// (u64 num_graphs + 8 x 32-byte section entries per shard).
constexpr size_t kNumThreadsOffset = 64;  // u32 in the header prefix
constexpr size_t kEndianOffset = 128;     // first field of the extension
size_t DirOffset(size_t num_seeds) { return 128 + 32 + 4 * num_seeds; }
size_t SectionEntryOffset(size_t dir, size_t shard, size_t section) {
  return dir + shard * (8 + 8 * 32) + 8 + section * 32;
}

void ExpectSameAnswers(BoostSession& a, BoostSession& b,
                       const std::vector<size_t>& budgets) {
  for (size_t k : budgets) {
    SCOPED_TRACE("k=" + std::to_string(k));
    BoostResult ra = a.SolveForBudget(k);
    BoostResult rb = b.SolveForBudget(k);
    EXPECT_EQ(ra.best_set, rb.best_set);
    EXPECT_EQ(ra.lb_set, rb.lb_set);
    EXPECT_EQ(ra.delta_set, rb.delta_set);
    EXPECT_EQ(ra.best_estimate, rb.best_estimate);
    EXPECT_EQ(ra.lb_mu_hat, rb.lb_mu_hat);
    EXPECT_EQ(ra.delta_delta_hat, rb.delta_delta_hat);
    EXPECT_EQ(ra.num_samples, rb.num_samples);
  }
}

// ---- Codec unit tests -----------------------------------------------------

std::vector<uint32_t> RoundTrip(const Codec& codec,
                                const std::vector<uint32_t>& values) {
  std::string encoded;
  codec.Encode(values, &encoded);
  EXPECT_LE(encoded.size(), codec.MaxEncodedBytes(values.size()));
  std::vector<uint32_t> decoded(values.size());
  Status s = codec.Decode(encoded, decoded);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return decoded;
}

TEST(CodecTest, RegistryResolvesIdsAndNames) {
  ASSERT_NE(CodecById(0), nullptr);
  ASSERT_NE(CodecById(1), nullptr);
  EXPECT_EQ(CodecById(0)->id(), SnapshotCodec::kNop);
  EXPECT_EQ(CodecById(1)->id(), SnapshotCodec::kVarint);
  EXPECT_EQ(CodecById(77), nullptr);
  ASSERT_NE(CodecByName("nop"), nullptr);
  ASSERT_NE(CodecByName("varint"), nullptr);
  EXPECT_EQ(CodecByName("zstd"), nullptr);
  EXPECT_STREQ(CodecName(SnapshotCodec::kNop), "nop");
  EXPECT_STREQ(CodecName(SnapshotCodec::kVarint), "varint");
}

TEST(CodecTest, NopRoundTripsAndRejectsSizeMismatch) {
  const Codec& nop = *CodecById(0);
  const std::vector<uint32_t> values = {0, 1, 0xFFFFFFFFu, 42};
  EXPECT_EQ(RoundTrip(nop, values), values);
  EXPECT_EQ(RoundTrip(nop, {}), std::vector<uint32_t>{});

  std::string encoded;
  nop.Encode(values, &encoded);
  std::vector<uint32_t> out(values.size());
  EXPECT_FALSE(nop.Decode(std::span<const char>(encoded.data(),
                                                encoded.size() - 1),
                          out)
                   .ok());
  std::vector<uint32_t> short_out(values.size() - 1);
  EXPECT_FALSE(nop.Decode(encoded, short_out).ok());
}

TEST(CodecTest, VarintRoundTripsAdversarialStreams) {
  const Codec& varint = *CodecById(1);
  const std::vector<std::vector<uint32_t>> cases = {
      {},
      {0},
      {0xFFFFFFFFu},
      // Alternating extremes: every delta is +-UINT32_MAX, the widest
      // zigzag the codec can meet.
      {0, 0xFFFFFFFFu, 0, 0xFFFFFFFFu, 0},
      {1, 1, 1, 1},
      {5, 4, 3, 2, 1, 0},
      {0, 1u << 7, 1u << 14, 1u << 21, 1u << 28, 0xFFFFFFFFu},
  };
  for (const auto& values : cases) {
    SCOPED_TRACE("case size " + std::to_string(values.size()));
    EXPECT_EQ(RoundTrip(varint, values), values);
  }
  // Fuzz: random streams must survive, including value-width jumps.
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint32_t> values(rng.NextBounded(200));
    for (uint32_t& v : values) {
      const uint32_t width = 1 + static_cast<uint32_t>(rng.NextBounded(32));
      v = static_cast<uint32_t>(rng.NextBounded(1ull << width));
    }
    SCOPED_TRACE("fuzz round " + std::to_string(round));
    EXPECT_EQ(RoundTrip(varint, values), values);
  }
}

TEST(CodecTest, VarintDecodeRejectsMalformedStreams) {
  const Codec& varint = *CodecById(1);
  const std::vector<uint32_t> values = {7, 0xFFFFFFFFu, 0, 123456};
  std::string encoded;
  varint.Encode(values, &encoded);
  std::vector<uint32_t> out(values.size());

  // Truncated mid-varint.
  EXPECT_FALSE(varint
                   .Decode(std::span<const char>(encoded.data(),
                                                 encoded.size() - 1),
                           out)
                   .ok());
  // Trailing bytes after the last value.
  std::string trailing = encoded + '\0';
  EXPECT_FALSE(varint.Decode(trailing, out).ok());
  // A 5-byte varint whose high bits push past uint32.
  const char overflow[] = {'\xFF', '\xFF', '\xFF', '\xFF', '\x7F'};
  std::vector<uint32_t> one(1);
  EXPECT_FALSE(varint
                   .Decode(std::span<const char>(overflow, sizeof(overflow)),
                           one)
                   .ok());
  // A varint that never terminates (every byte has the continuation bit).
  const char runaway[] = {'\xFF', '\xFF', '\xFF', '\xFF', '\xFF', '\xFF'};
  EXPECT_FALSE(varint
                   .Decode(std::span<const char>(runaway, sizeof(runaway)),
                           one)
                   .ok());
  // Empty stream but one value expected.
  EXPECT_FALSE(varint.Decode(std::span<const char>(), one).ok());
}

// ---- v3 round trips: mmap vs owned ----------------------------------------

TEST(SnapshotV3Test, MmapRoundTripIsBitIdenticalAcrossShardsAndThreads) {
  DirectedGraph g = MakeTestGraph(13);
  const std::vector<NodeId> seeds = {0, 5};
  const std::string path = TempPath("kboost_v3_fuzz.bin");
  Rng fuzz(4242);
  for (int combo = 0; combo < 4; ++combo) {
    const int num_shards = 1 + static_cast<int>(fuzz.NextBounded(5));
    const int num_threads = 1 + static_cast<int>(fuzz.NextBounded(4));
    SCOPED_TRACE("shards=" + std::to_string(num_shards) +
                 " threads=" + std::to_string(num_threads));
    BoostSession session(g, seeds, MakeOptions(10, num_shards, num_threads));
    ASSERT_TRUE(SaveV3(session, path).ok());

    StatusOr<std::unique_ptr<BoostSession>> owned = LoadPoolSnapshot(g, path);
    ASSERT_TRUE(owned.ok()) << owned.status().ToString();
    StatusOr<std::unique_ptr<BoostSession>> mapped = MmapPool(g, path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

    // The mmap load must actually be zero-copy, the owned load must not.
    const PrrCollection& pool = mapped.value()->engine().collection();
    ASSERT_EQ(pool.num_shards(), static_cast<size_t>(num_shards));
    for (size_t s = 0; s < pool.num_shards(); ++s) {
      EXPECT_TRUE(pool.shard_store(s).external());
      EXPECT_FALSE(
          owned.value()->engine().collection().shard_store(s).external());
    }
    EXPECT_EQ(pool.num_samples(),
              session.engine().collection().num_samples());

    const size_t k = 1 + fuzz.NextBounded(10);
    ExpectSameAnswers(session, *mapped.value(), {1, k, 10});
    ExpectSameAnswers(*owned.value(), *mapped.value(), {1, k, 10});
  }
  std::filesystem::remove(path);
}

TEST(SnapshotV3Test, MmapVerifyMappedAlsoLoads) {
  DirectedGraph g = MakeTestGraph(31);
  const std::string path = TempPath("kboost_v3_verify.bin");
  BoostSession session(g, {0, 1}, MakeOptions(8, 2));
  ASSERT_TRUE(SaveV3(session, path).ok());
  PoolLoadOptions options;
  options.use_mmap = true;
  options.verify_mapped = true;
  StatusOr<std::unique_ptr<BoostSession>> mapped =
      LoadPoolSnapshot(g, path, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectSameAnswers(session, *mapped.value(), {3, 8});
  std::filesystem::remove(path);
}

TEST(SnapshotV3Test, MmapSurvivesFileUnlink) {
  // The session pins the mapping (RetainResource), and POSIX keeps mapped
  // pages valid after unlink — a hot-swap that deletes the old snapshot
  // must not pull the arena out from under in-flight queries.
  DirectedGraph g = MakeTestGraph(37);
  const std::string path = TempPath("kboost_v3_unlink.bin");
  BoostSession session(g, {0, 2}, MakeOptions(8, 2));
  ASSERT_TRUE(SaveV3(session, path).ok());
  StatusOr<std::unique_ptr<BoostSession>> mapped = MmapPool(g, path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  std::filesystem::remove(path);
  ExpectSameAnswers(session, *mapped.value(), {1, 4, 8});
}

// ---- mmap preconditions ---------------------------------------------------

TEST(SnapshotV3Test, MmapRequiresNopCodec) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_v3_varint_mmap.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  ASSERT_TRUE(SaveV3(session, path, SnapshotCodec::kVarint).ok());
  StatusOr<std::unique_ptr<BoostSession>> r = MmapPool(g, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  std::filesystem::remove(path);
}

TEST(SnapshotV3Test, MmapRejectsLbOnlySnapshots) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_v3_lb_mmap.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5), /*lb_only=*/true);
  ASSERT_TRUE(SaveV3(session, path).ok());
  StatusOr<std::unique_ptr<BoostSession>> r = MmapPool(g, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // The stream (owned) path still loads LB snapshots.
  EXPECT_TRUE(LoadPoolSnapshot(g, path).ok());
  std::filesystem::remove(path);
}

TEST(SnapshotV3Test, MmapRejectsLegacyV2Snapshots) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_v2_mmap.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  session.Prepare();
  PoolSaveOptions v2;
  v2.format_version = 2;
  ASSERT_TRUE(SavePoolSnapshot(session, path, v2).status().ok());
  StatusOr<std::unique_ptr<BoostSession>> r = MmapPool(g, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  std::filesystem::remove(path);
}

// ---- codec-coded snapshots ------------------------------------------------

TEST(SnapshotV3Test, VarintSnapshotShrinksAndRoundTrips) {
  DirectedGraph g = MakeTestGraph(41);
  const std::string nop_path = TempPath("kboost_v3_nop.bin");
  const std::string varint_path = TempPath("kboost_v3_varint.bin");
  BoostSession session(g, {0, 3}, MakeOptions(10, 3));
  session.Prepare();
  PoolSaveOptions nop_options;
  StatusOr<PoolSaveResult> nop_saved =
      SavePoolSnapshot(session, nop_path, nop_options);
  ASSERT_TRUE(nop_saved.ok());
  PoolSaveOptions varint_options;
  varint_options.codec = SnapshotCodec::kVarint;
  StatusOr<PoolSaveResult> varint_saved =
      SavePoolSnapshot(session, varint_path, varint_options);
  ASSERT_TRUE(varint_saved.ok());

  EXPECT_LT(varint_saved->file_bytes, nop_saved->file_bytes);
  EXPECT_LT(varint_saved->bytes_per_sample, nop_saved->bytes_per_sample);

  StatusOr<std::unique_ptr<BoostSession>> loaded =
      LoadPoolSnapshot(g, varint_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(
      loaded.value()->engine().collection().shard_store(0).external());
  ExpectSameAnswers(session, *loaded.value(), {2, 6, 10});
  std::filesystem::remove(nop_path);
  std::filesystem::remove(varint_path);
}

TEST(SnapshotV3Test, SaveResultReportsBytesPerSample) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_v3_result.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  session.Prepare();
  StatusOr<PoolSaveResult> saved =
      SavePoolSnapshot(session, path, PoolSaveOptions());
  ASSERT_TRUE(saved.ok());
  EXPECT_EQ(saved->file_bytes, std::filesystem::file_size(path));
  const PrrCollection& pool = session.engine().collection();
  EXPECT_EQ(saved->num_samples, pool.num_samples());
  ASSERT_GT(saved->num_samples, 0u);
  EXPECT_DOUBLE_EQ(saved->bytes_per_sample,
                   static_cast<double>(saved->file_bytes) /
                       static_cast<double>(saved->num_samples));
  std::filesystem::remove(path);
}

TEST(SnapshotV3Test, V2WriterStillRoundTrips) {
  DirectedGraph g = MakeTestGraph(43);
  const std::string path = TempPath("kboost_v2_writer.bin");
  BoostSession session(g, {1, 4}, MakeOptions(8, 2));
  session.Prepare();
  PoolSaveOptions v2;
  v2.format_version = 2;
  ASSERT_TRUE(SavePoolSnapshot(session, path, v2).status().ok());
  StatusOr<std::unique_ptr<BoostSession>> loaded = LoadPoolSnapshot(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameAnswers(session, *loaded.value(), {2, 8});
  // And the v2 format refuses the codec seam it does not have.
  PoolSaveOptions v2_varint;
  v2_varint.format_version = 2;
  v2_varint.codec = SnapshotCodec::kVarint;
  EXPECT_FALSE(SavePoolSnapshot(session, path, v2_varint).ok());
  std::filesystem::remove(path);
}

// ---- header handling ------------------------------------------------------

TEST(SnapshotV3Test, EndianMarkerMismatchIsRejected) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_v3_endian.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  ASSERT_TRUE(SaveV3(session, path).ok());
  std::string bytes = ReadFileBytes(path);
  PokeU32(&bytes, kEndianOffset, 0x04030201u);  // byte-swapped marker
  WriteFileBytes(path, bytes);
  StatusOr<std::unique_ptr<BoostSession>> r = LoadPoolSnapshot(g, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("byte order"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(SnapshotV3Test, ThreadCountIsClampedNotTrusted) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_v3_threads.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  ASSERT_TRUE(SaveV3(session, path).ok());
  std::string bytes = ReadFileBytes(path);

  // An absurd recorded thread count must load, clamped into the worker
  // range — not abort or spawn 4 billion workers.
  PokeU32(&bytes, kNumThreadsOffset, 0xFFFFFFFFu);
  WriteFileBytes(path, bytes);
  StatusOr<std::unique_ptr<BoostSession>> clamped = LoadPoolSnapshot(g, path);
  ASSERT_TRUE(clamped.ok()) << clamped.status().ToString();
  EXPECT_EQ(clamped.value()->engine().options().num_threads,
            ThreadPool::kMaxWorkers);
  // One solve is enough here (answers are thread-count-invariant); keep the
  // 256-worker session cheap under the sanitizers.
  ExpectSameAnswers(session, *clamped.value(), {5});

  // Zero means "the writer didn't record one": keep the default.
  PokeU32(&bytes, kNumThreadsOffset, 0);
  WriteFileBytes(path, bytes);
  StatusOr<std::unique_ptr<BoostSession>> defaulted =
      LoadPoolSnapshot(g, path);
  ASSERT_TRUE(defaulted.ok()) << defaulted.status().ToString();
  EXPECT_EQ(defaulted.value()->engine().options().num_threads,
            BoostOptions().num_threads);
  std::filesystem::remove(path);
}

// ---- structural rejection of corrupt v3 directories -----------------------

class V3CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("kboost_v3_corrupt.bin");
    BoostSession session(graph_, seeds_, MakeOptions(6, 2));
    ASSERT_TRUE(SaveV3(session, path_).ok());
    bytes_ = ReadFileBytes(path_);
    dir_ = DirOffset(seeds_.size());
    ASSERT_GT(bytes_.size(), dir_);
  }

  void TearDown() override { std::filesystem::remove(path_); }

  void ExpectRejected(const std::string& needle) {
    WriteFileBytes(path_, bytes_);
    StatusOr<std::unique_ptr<BoostSession>> r =
        LoadPoolSnapshot(graph_, path_);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find(needle), std::string::npos)
        << r.status().ToString();
    // The mmap path runs the same structural validation.
    StatusOr<std::unique_ptr<BoostSession>> m = MmapPool(graph_, path_);
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }

  DirectedGraph graph_ = MakeTestGraph(47);
  const std::vector<NodeId> seeds_ = {0, 1};
  std::string path_;
  std::string bytes_;
  size_t dir_ = 0;
};

TEST_F(V3CorruptionTest, TruncatedSnapshotIsRejected) {
  WriteFileBytes(path_, bytes_);
  std::filesystem::resize_file(path_, bytes_.size() - 5);
  EXPECT_FALSE(LoadPoolSnapshot(graph_, path_).ok());
  EXPECT_FALSE(MmapPool(graph_, path_).ok());
}

TEST_F(V3CorruptionTest, MisalignedSectionIsRejected) {
  const size_t entry = SectionEntryOffset(dir_, 0, 0);
  PokeU64(&bytes_, entry, PeekU64(bytes_, entry) + 2);  // 4-misalign offset
  ExpectRejected("misaligned");
}

TEST_F(V3CorruptionTest, OverlappingSectionsAreRejected) {
  // Point section 1 back into section 0's block.
  const size_t first = SectionEntryOffset(dir_, 0, 0);
  const size_t second = SectionEntryOffset(dir_, 0, 1);
  PokeU64(&bytes_, second, PeekU64(bytes_, first));
  ExpectRejected("overlaps");
}

TEST_F(V3CorruptionTest, OverstatedSectionIsRejected) {
  PokeU64(&bytes_, SectionEntryOffset(dir_, 0, 2) + 8, uint64_t{1} << 60);
  ExpectRejected("overlaps another section or exceeds");
}

TEST_F(V3CorruptionTest, UnknownCodecIdIsRejected) {
  PokeU32(&bytes_, SectionEntryOffset(dir_, 0, 0) + 24, 77);
  ExpectRejected("unknown codec");
}

TEST_F(V3CorruptionTest, InflatedValueCountIsRejectedNotAllocated) {
  // raw_bytes promising billions of values from a small stored block must
  // be rejected before any allocation sized from it.
  const size_t entry = SectionEntryOffset(dir_, 0, 5);
  PokeU64(&bytes_, entry + 16, uint64_t{1} << 40);
  ExpectRejected("");
}

TEST_F(V3CorruptionTest, CriticalEntryAtSuperSeedSlotIsRejected) {
  // Local 0 is the super-seed slot; its global id is kInvalidNode, so a
  // critical entry pointing at it would feed an unvalidated id to the
  // coverage index (found by fuzz_snapshot: segfault at first solve).
  const size_t entry = SectionEntryOffset(dir_, 0, 7);
  const uint64_t crit_offset = PeekU64(bytes_, entry);
  ASSERT_GE(PeekU64(bytes_, entry + 16), 4u);  // shard 0 has criticals
  PokeU32(&bytes_, crit_offset, 0);
  WriteFileBytes(path_, bytes_);
  StatusOr<std::unique_ptr<BoostSession>> r = LoadPoolSnapshot(graph_, path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The mmap path runs the same deep walk when verification is requested.
  PoolLoadOptions verify;
  verify.use_mmap = true;
  verify.verify_mapped = true;
  EXPECT_FALSE(LoadPoolSnapshot(graph_, path_, verify).ok());
}

TEST_F(V3CorruptionTest, InvalidHeaderSamplingOptionsAreRejectedTyped) {
  // ℓ lives at header offset 40; zero must be a typed rejection — it used
  // to reach the trusting BoostSession constructor and KB_CHECK-abort the
  // process (found by fuzz_snapshot).
  PokeU64(&bytes_, 40, 0);  // the f64 bit pattern of 0.0
  WriteFileBytes(path_, bytes_);
  StatusOr<std::unique_ptr<BoostSession>> r = LoadPoolSnapshot(graph_, path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("sampling options"), std::string::npos)
      << r.status().ToString();
  EXPECT_FALSE(MmapPool(graph_, path_).ok());
}

TEST_F(V3CorruptionTest, NopSectionWithMismatchedSizesIsRejected) {
  // A nop block must be stored verbatim: shrink raw_bytes (keeping it a
  // multiple of 4) and the stored/raw equality check must fire.
  const size_t entry = SectionEntryOffset(dir_, 0, 5);
  const uint64_t raw = PeekU64(bytes_, entry + 16);
  if (raw >= 8) {
    PokeU64(&bytes_, entry + 16, raw - 4);
    ExpectRejected("stored != raw");
  }
}

}  // namespace
}  // namespace kboost
