#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <set>
#include <utility>
#include <vector>

#include "src/util/backoff.h"
#include "src/util/bounds.h"
#include "src/util/fault.h"
#include "src/util/parse.h"
#include "src/util/ring_deque.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace kboost {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ServingCodesRender) {
  EXPECT_EQ(Status::FailedPrecondition("not prepared").ToString(),
            "FAILED_PRECONDITION: not prepared");
  EXPECT_EQ(Status::Cancelled("client went away").code(),
            StatusCode::kCancelled);
}

TEST(StatusTest, OverloadCodesCarryCodeMessageAndName) {
  // The overload-protection vocabulary added for the serving layer: each
  // constructor produces its own code and renders its canonical name.
  Status deadline = Status::DeadlineExceeded("budget spent");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.message(), "budget spent");
  EXPECT_EQ(deadline.ToString(), "DEADLINE_EXCEEDED: budget spent");

  Status shed = Status::ResourceExhausted("waiting room full");
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.ToString(), "RESOURCE_EXHAUSTED: waiting room full");

  // The two codes are distinct from each other and from their neighbours —
  // the service's shed/miss accounting branches on exact codes.
  EXPECT_NE(StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted);
  EXPECT_NE(StatusCode::kDeadlineExceeded, StatusCode::kCancelled);
  EXPECT_NE(StatusCode::kResourceExhausted, StatusCode::kIoError);

  // Unavailable — the network front door's "the process is not taking
  // work" reject (shutdown drain, dispatch queue full, connection refused).
  Status down = Status::Unavailable("draining for shutdown");
  EXPECT_FALSE(down.ok());
  EXPECT_EQ(down.code(), StatusCode::kUnavailable);
  EXPECT_EQ(down.message(), "draining for shutdown");
  EXPECT_EQ(down.ToString(), "UNAVAILABLE: draining for shutdown");
  // Distinct from the admission shed and every other overload code — the
  // loadgen's typed-outcome accounting branches on exact codes.
  EXPECT_NE(StatusCode::kUnavailable, StatusCode::kResourceExhausted);
  EXPECT_NE(StatusCode::kUnavailable, StatusCode::kDeadlineExceeded);
  EXPECT_NE(StatusCode::kUnavailable, StatusCode::kCancelled);
}

TEST(BackoffTest, TransientStatusClassification) {
  // Only faults that can heal on retry are transient; everything else must
  // surface immediately.
  EXPECT_TRUE(IsTransientStatus(Status::IoError("blip")));
  EXPECT_TRUE(IsTransientStatus(Status::ResourceExhausted("pressure")));
  EXPECT_TRUE(IsTransientStatus(Status::Unavailable("draining")));
  EXPECT_FALSE(IsTransientStatus(Status()));
  EXPECT_FALSE(IsTransientStatus(Status::InvalidArgument("corrupt")));
  EXPECT_FALSE(IsTransientStatus(Status::NotFound("gone")));
  EXPECT_FALSE(IsTransientStatus(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(IsTransientStatus(Status::Cancelled("bye")));
}

TEST(BackoffTest, StopsExactlyAtMaxAttempts) {
  BackoffPolicy policy;
  policy.max_attempts = 3;
  policy.initial_delay_micros = 1;  // keep the test fast
  policy.max_delay_micros = 2;
  JitteredBackoff backoff(policy);
  // Attempt 1 has already run when SleepAndRetry is first consulted.
  EXPECT_TRUE(backoff.SleepAndRetry());   // allows attempt 2
  EXPECT_TRUE(backoff.SleepAndRetry());   // allows attempt 3
  EXPECT_FALSE(backoff.SleepAndRetry());  // budget spent
  EXPECT_FALSE(backoff.SleepAndRetry());  // and stays spent
  EXPECT_EQ(backoff.retries(), 2);
}

TEST(BackoffTest, SingleAttemptPolicyNeverRetries) {
  BackoffPolicy policy;
  policy.max_attempts = 1;
  JitteredBackoff backoff(policy);
  EXPECT_FALSE(backoff.SleepAndRetry());
  EXPECT_EQ(backoff.retries(), 0);
}

TEST(FaultInjectorTest, DisarmedInjectorNeverFires) {
  FaultInjector& injector = FaultInjector::Global();
  injector.DisarmAll();
  EXPECT_FALSE(injector.any_armed());
  EXPECT_FALSE(MaybeInjectFault(FaultSite::kSnapshotOpen));
  // The fast gate short-circuits: a disarmed visit is not even counted.
  EXPECT_EQ(injector.hits(FaultSite::kSnapshotOpen), 0u);
}

TEST(FaultInjectorTest, FailFirstPlanIsExactThenHeals) {
  FaultInjector& injector = FaultInjector::Global();
  injector.DisarmAll();
  FaultInjector::Plan plan;
  plan.fail_first = 2;
  injector.Arm(FaultSite::kSnapshotRead, plan);
  EXPECT_TRUE(MaybeInjectFault(FaultSite::kSnapshotRead));
  EXPECT_TRUE(MaybeInjectFault(FaultSite::kSnapshotRead));
  EXPECT_FALSE(MaybeInjectFault(FaultSite::kSnapshotRead));
  EXPECT_FALSE(MaybeInjectFault(FaultSite::kSnapshotRead));
  EXPECT_EQ(injector.hits(FaultSite::kSnapshotRead), 4u);
  EXPECT_EQ(injector.failures(FaultSite::kSnapshotRead), 2u);
  // Arming a site never bleeds into its neighbours.
  EXPECT_FALSE(MaybeInjectFault(FaultSite::kSnapshotOpen));
  injector.DisarmAll();
  EXPECT_EQ(injector.hits(FaultSite::kSnapshotRead), 0u);
}

TEST(FaultInjectorTest, ProbabilityDecisionsAreSeedDeterministic) {
  FaultInjector& injector = FaultInjector::Global();
  injector.DisarmAll();
  injector.set_seed(1234);
  FaultInjector::Plan plan;
  plan.probability = 0.5;

  auto run_sequence = [&] {
    injector.Arm(FaultSite::kSnapshotMmap, plan);  // resets the hit counter
    std::vector<bool> decisions;
    for (int i = 0; i < 64; ++i) {
      decisions.push_back(MaybeInjectFault(FaultSite::kSnapshotMmap));
    }
    return decisions;
  };
  std::vector<bool> first = run_sequence();
  std::vector<bool> second = run_sequence();
  // Same seed + same hit indices ⇒ the same decisions, run after run: the
  // property the chaos suite's exact failure-count assertions rest on.
  EXPECT_EQ(first, second);
  // And p=0.5 over 64 draws produces both outcomes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

  // A different seed produces a different (still deterministic) stream.
  injector.set_seed(99);
  std::vector<bool> reseeded = run_sequence();
  EXPECT_NE(first, reseeded);
  injector.set_seed(0x9E3779B97F4A7C15ULL);  // restore the default
  injector.DisarmAll();
}

TEST(FaultInjectorTest, SiteNamesAreStable) {
  EXPECT_STREQ(FaultSiteName(FaultSite::kSnapshotOpen), "snapshot_open");
  EXPECT_STREQ(FaultSiteName(FaultSite::kSolveStart), "solve_start");
  EXPECT_STREQ(FaultSiteName(FaultSite::kPickStride), "pick_stride");
}

TEST(StatusOrTest, DereferenceSugar) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 3u);
  EXPECT_EQ((*v)[1], 2);
  (*v).push_back(4);
  EXPECT_EQ(v->back(), 4);
  // Rvalue dereference moves the payload out.
  std::vector<int> taken = *std::move(v);
  EXPECT_EQ(taken.size(), 4u);
}

TEST(StatusOrTest, ValueOrNeverAborts) {
  StatusOr<int> err = Status::IoError("disk gone");
  EXPECT_EQ(err.value_or(-1), -1);
  StatusOr<int> fine = 7;
  EXPECT_EQ(fine.value_or(-1), 7);
}

TEST(StatusOrTest, ValueOnErrorDies) {
  StatusOr<int> err = Status::Internal("broken");
  EXPECT_DEATH(err.value(), "broken");
}

TEST(ParseUint64Test, AcceptsPlainIntegers) {
  uint64_t v = 7;
  EXPECT_TRUE(ParseUint64("0", "x", &v).ok());
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("42", "x", &v).ok());
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", "x", &v).ok());
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseUint64Test, RejectsEverythingStrtoullSilentlyAccepts) {
  // Regression for the CLI flag sites: bare strtoull turned each of these
  // into a silent 0 (or a wrapped/saturated value) instead of an error.
  uint64_t v = 7;
  for (const char* bad : {"", "abc", "12x", "1.5", " 12", "12 ", "+3", "-3",
                          "0x10", "k=5"}) {
    Status s = ParseUint64(bad, "--k", &v);
    EXPECT_FALSE(s.ok()) << "'" << bad << "'";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "'" << bad << "'";
    EXPECT_NE(s.message().find("--k"), std::string::npos);
  }
  EXPECT_EQ(ParseUint64(nullptr, "--k", &v).code(),
            StatusCode::kInvalidArgument);
  // Overflow is an error, not modular wraparound.
  EXPECT_EQ(ParseUint64("18446744073709551616", "--k", &v).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(v, 7u) << "failed parses must not clobber the output";
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedIsInRangeAndRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    uint64_t x = rng.NextBounded(10);
    ASSERT_LT(x, 10u);
    ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, 600);  // ~6 sigma
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += rng.NextExponential(0.25);
  EXPECT_NEAR(sum / trials, 0.25, 0.01);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(42);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i) * 10;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStatTest, EmptyMergeIsNoop) {
  RunningStat a, empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(BoundsTest, LogChooseSmallValues) {
  EXPECT_NEAR(LogChoose(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogChoose(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogChoose(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(LogChoose(52, 5), std::log(2598960.0), 1e-6);
}

TEST(BoundsTest, LogChooseSymmetry) {
  EXPECT_NEAR(LogChoose(100, 30), LogChoose(100, 70), 1e-8);
}

TEST(BoundsTest, ImmBoundsArePositiveAndScaleWithN) {
  ImmBounds small{0.5, 1.0, 1000, 10};
  ImmBounds large{0.5, 1.0, 100000, 10};
  EXPECT_GT(small.LambdaPrime(), 0.0);
  EXPECT_GT(small.LambdaStar(), 0.0);
  EXPECT_GT(large.LambdaPrime(), small.LambdaPrime());
  EXPECT_GT(large.LambdaStar(), small.LambdaStar());
  EXPECT_GT(large.NumSearchLevels(), small.NumSearchLevels());
}

TEST(BoundsTest, SmallerEpsilonNeedsMoreSamples) {
  ImmBounds loose{0.5, 1.0, 10000, 50};
  ImmBounds tight{0.1, 1.0, 10000, 50};
  EXPECT_GT(tight.LambdaStar(), loose.LambdaStar());
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  const size_t count = 10000;
  std::vector<std::atomic<int>> hits(count);
  ParallelFor(count, 4, [&](size_t i, int) { hits[i]++; });
  for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](size_t i, int t) {
    EXPECT_EQ(t, 0);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ParallelFor(0, 8, [&](size_t, int) { FAIL(); });
}

TEST(ThreadPoolTest, RepeatedParallelForReusesPersistentWorkers) {
  // Many small batches: the pool must not leak or wedge, and every index
  // must be covered exactly once per batch. The global pool may already
  // hold workers from other tests, so assert growth, not absolute size:
  // 200 four-worker batches need at most 3 helpers beyond what exists.
  const int before = ThreadPool::Global().num_started();
  for (int round = 0; round < 200; ++round) {
    std::vector<std::atomic<int>> hits(257);
    ParallelFor(hits.size(), 4, [&](size_t i, int) { hits[i]++; },
                /*chunk=*/8);
    for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
  }
  EXPECT_LE(ThreadPool::Global().num_started(), std::max(before, 3));
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  ParallelFor(8, 4, [&](size_t, int) {
    // A nested region inside a pool worker must degrade to inline
    // execution (every index invoked once) instead of deadlocking.
    std::atomic<int> local{0};
    ParallelFor(16, 4, [&](size_t, int t) {
      EXPECT_EQ(t, 0);
      local++;
    });
    EXPECT_EQ(local.load(), 16);
    inner_total += local.load();
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPoolTest, RunOnThreadsInvokesEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(6);
  RunOnThreads(6, [&](int t) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 6);
    hits[t]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, OversubscribedRequestStillCompletes) {
  // More workers than cores; the pool grows on demand and the call blocks
  // until every invocation has returned.
  std::atomic<int> calls{0};
  RunOnThreads(12, [&](int) { calls++; });
  EXPECT_EQ(calls.load(), 12);
}

TEST(RingDequeTest, MatchesDequeSemantics) {
  RingDeque<std::pair<uint32_t, uint32_t>> ring;
  std::deque<std::pair<uint32_t, uint32_t>> ref;
  Rng rng(77);
  for (int op = 0; op < 20000; ++op) {
    const uint64_t r = rng.NextU64();
    const uint32_t a = static_cast<uint32_t>(r >> 32);
    switch (r % 3) {
      case 0:
        ring.emplace_back(a, a + 1);
        ref.emplace_back(a, a + 1);
        break;
      case 1:
        ring.emplace_front(a, a + 2);
        ref.emplace_front(a, a + 2);
        break;
      default:
        if (!ref.empty()) {
          ASSERT_EQ(ring.front(), ref.front());
          ring.pop_front();
          ref.pop_front();
        }
        break;
    }
    ASSERT_EQ(ring.size(), ref.size());
    ASSERT_EQ(ring.empty(), ref.empty());
    if (!ref.empty()) {
      ASSERT_EQ(ring.front(), ref.front());
    }
  }
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double x = 0;
  for (int i = 0; i < 1000000; ++i) x = x + 1;
  EXPECT_GE(timer.Seconds(), 0.0);
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 1.0);
}

}  // namespace
}  // namespace kboost
