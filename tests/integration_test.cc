#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/baselines/high_degree.h"
#include "src/baselines/more_seeds.h"
#include "src/baselines/pagerank.h"
#include "src/core/prr_boost.h"
#include "src/expt/budget.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/expt/table_printer.h"
#include "src/sim/boost_model.h"

namespace kboost {
namespace {

TEST(DatasetsTest, SpecsMatchPaperShapes) {
  auto specs = PaperDatasetSpecs(0.01);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "digg");
  EXPECT_EQ(specs[3].name, "flickr");
  // Twitter is the densest, flickr the sparsest in probability.
  EXPECT_GT(specs[2].avg_probability, 0.5);
  EXPECT_LT(specs[3].avg_probability, 0.05);
}

TEST(DatasetsTest, CalibratedMeanIsHit) {
  for (double target : {0.013, 0.228, 0.239, 0.608}) {
    double m = CalibrateExponentialMean(target);
    double realized = m * (1.0 - std::exp(-1.0 / m));
    EXPECT_NEAR(realized, target, 1e-6);
  }
  DatasetSpec spec = SpecByName("twitter", 0.005);
  Dataset d = MakeDataset(spec);
  EXPECT_NEAR(d.graph.AverageProbability(), spec.avg_probability, 0.03);
}

TEST(DatasetsTest, ScaleControlsSize) {
  Dataset small = MakeDataset(SpecByName("digg", 0.005));
  Dataset big = MakeDataset(SpecByName("digg", 0.02));
  EXPECT_LT(small.graph.num_nodes(), big.graph.num_nodes());
  EXPECT_LT(small.graph.num_edges(), big.graph.num_edges());
}

TEST(SeedSelectionTest, InfluentialBeatsRandomSeeds) {
  Dataset d = MakeDataset(SpecByName("digg", 0.02));
  auto influential = SelectInfluentialSeeds(d.graph, 10, 1, 4);
  auto random = SelectRandomSeeds(d.graph, 10, 1);
  SimulationOptions sim;
  sim.num_simulations = 3000;
  double si = EstimateSpread(d.graph, influential, sim).mean;
  double sr = EstimateSpread(d.graph, random, sim).mean;
  EXPECT_GT(si, sr);
}

TEST(SeedSelectionTest, RandomSeedsAreDistinct) {
  Dataset d = MakeDataset(SpecByName("digg", 0.01));
  auto seeds = SelectRandomSeeds(d.graph, 50, 3);
  std::vector<NodeId> sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(IntegrationTest, PrrBoostBeatsBaselinesOnSyntheticDigg) {
  // The paper's headline qualitative claim (Figs. 5/10): PRR-Boost and
  // PRR-Boost-LB dominate the heuristic baselines.
  Dataset d = MakeDataset(SpecByName("digg", 0.02));
  auto seeds = SelectInfluentialSeeds(d.graph, 10, 7, 4);
  const size_t k = 30;

  BoostOptions bopts;
  bopts.k = k;
  bopts.num_threads = 4;
  BoostResult prr = PrrBoost(d.graph, seeds, bopts);
  BoostResult prr_lb = PrrBoostLb(d.graph, seeds, bopts);

  SimulationOptions sim;
  sim.num_simulations = 8000;
  sim.num_threads = 4;
  auto value = [&](const std::vector<NodeId>& set) {
    return EstimateBoost(d.graph, seeds, set, sim).boost;
  };

  const double v_prr = value(prr.best_set);
  const double v_lb = value(prr_lb.best_set);

  double v_hd = 0;
  for (const auto& set : HighDegreeGlobalAll(d.graph, seeds, k)) {
    v_hd = std::max(v_hd, value(set));
  }
  const double v_pr = value(PageRankBoost(d.graph, seeds, k));
  ImmOptions mopts;
  mopts.k = k;
  const double v_ms = value(SelectMoreSeeds(d.graph, seeds, mopts));

  EXPECT_GT(v_prr, 0.0);
  // PRR-Boost wins (small tolerance: baselines may tie on tiny instances).
  EXPECT_GE(v_prr * 1.10, v_hd);
  EXPECT_GE(v_prr * 1.10, v_pr);
  EXPECT_GE(v_prr * 1.10, v_ms);
  // LB variant is comparable to the full algorithm (paper: "slightly lower
  // but comparable quality").
  EXPECT_GE(v_lb, 0.6 * v_prr);
}

TEST(IntegrationTest, MoreSeedsIsAWeakBoostChoice) {
  // Sec. III-A: nodes that are great *additional seeds* can be poor
  // *boosts*. MoreSeeds should lose to PRR-Boost under boosting semantics.
  Dataset d = MakeDataset(SpecByName("flixster", 0.01));
  auto seeds = SelectInfluentialSeeds(d.graph, 10, 3, 4);
  BoostOptions bopts;
  bopts.k = 20;
  BoostResult prr = PrrBoost(d.graph, seeds, bopts);
  ImmOptions mopts;
  mopts.k = 20;
  auto more = SelectMoreSeeds(d.graph, seeds, mopts);
  SimulationOptions sim;
  sim.num_simulations = 8000;
  double v_prr = EstimateBoost(d.graph, seeds, prr.best_set, sim).boost;
  double v_ms = EstimateBoost(d.graph, seeds, more, sim).boost;
  EXPECT_GE(v_prr * 1.05, v_ms);
}

TEST(BudgetAllocationTest, ProducesOnePointPerFraction) {
  Dataset d = MakeDataset(SpecByName("digg", 0.01));
  BudgetAllocationOptions opts;
  opts.max_seeds = 10;
  opts.cost_ratios = {10};
  opts.seed_fractions = {0.5, 1.0};
  opts.boost_options.num_threads = 4;
  opts.sim_options.num_simulations = 2000;
  auto points = RunBudgetAllocation(d.graph, opts);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].num_seeds, 5u);
  EXPECT_EQ(points[0].num_boosted, 50u);
  EXPECT_EQ(points[1].num_seeds, 10u);
  EXPECT_EQ(points[1].num_boosted, 0u);
  for (const auto& p : points) EXPECT_GT(p.boosted_spread, 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xx", "1"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatSeconds(0.05), "50.0ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatBytes(1500), "1.5KB");
  EXPECT_EQ(FormatBytes(2500000), "2.50MB");
}

}  // namespace
}  // namespace kboost
