#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/sim/boost_model.h"
#include "src/sim/ic_model.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

/// The paper's Figure-1 graph: s(0) -> v0(1) -> v1(2).
DirectedGraph Fig1Graph() {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.2, 0.4);
  b.AddEdge(1, 2, 0.1, 0.2);
  return std::move(b).Build();
}

TEST(ExactTest, Fig1MatchesPaperTable) {
  DirectedGraph g = Fig1Graph();
  const std::vector<NodeId> s = {0};
  EXPECT_NEAR(ExactBoostedSpread(g, s, {}), 1.22, 1e-6);
  EXPECT_NEAR(ExactBoostedSpread(g, s, {1}), 1.44, 1e-6);
  EXPECT_NEAR(ExactBoostedSpread(g, s, {2}), 1.24, 1e-6);
  EXPECT_NEAR(ExactBoostedSpread(g, s, {1, 2}), 1.48, 1e-6);
  EXPECT_NEAR(ExactBoost(g, s, {1}), 0.22, 1e-6);
  EXPECT_NEAR(ExactBoost(g, s, {2}), 0.02, 1e-6);
  EXPECT_NEAR(ExactBoost(g, s, {1, 2}), 0.26, 1e-6);
}

TEST(ExactTest, ExactSpreadEqualsBoostedSpreadWithEmptyBoost) {
  Rng rng(2);
  GraphBuilder b = BuildErdosRenyi(8, 14, rng);
  b.AssignConstantProbability(0.3);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  EXPECT_NEAR(ExactSpread(g, {0, 3}), ExactBoostedSpread(g, {0, 3}, {}),
              1e-12);
}

TEST(ExactTest, SeedOnlyGraphSpreadsOverComponent) {
  // Path 0 -> 1 -> 2 with p = 1: everything is reached.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0, 1.0).AddEdge(1, 2, 1.0, 1.0);
  DirectedGraph g = std::move(b).Build();
  EXPECT_NEAR(ExactSpread(g, {0}), 3.0, 1e-12);
  EXPECT_NEAR(ExactSpread(g, {2}), 1.0, 1e-12);
}

TEST(ExactTest, BoostMonotoneInBoostSet) {
  Rng rng(5);
  GraphBuilder b = BuildErdosRenyi(7, 12, rng);
  b.AssignConstantProbability(0.25);
  b.SetBoostWithBeta(3.0);
  DirectedGraph g = std::move(b).Build();
  double prev = ExactBoostedSpread(g, {0}, {});
  std::vector<NodeId> boost;
  for (NodeId v = 1; v < 7; ++v) {
    boost.push_back(v);
    double cur = ExactBoostedSpread(g, {0}, boost);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(MonteCarloTest, MatchesExactOnFig1) {
  DirectedGraph g = Fig1Graph();
  SimulationOptions opts;
  opts.num_simulations = 200000;
  opts.num_threads = 4;
  SpreadEstimate base = EstimateSpread(g, {0}, opts);
  EXPECT_NEAR(base.mean, 1.22, 5 * base.stderr_mean + 1e-3);

  SpreadEstimate boosted = EstimateBoostedSpread(g, {0}, {1}, opts);
  EXPECT_NEAR(boosted.mean, 1.44, 5 * boosted.stderr_mean + 1e-3);

  BoostEstimate boost = EstimateBoost(g, {0}, {1, 2}, opts);
  EXPECT_NEAR(boost.boost, 0.26, 5 * boost.boost_stderr + 1e-3);
}

TEST(MonteCarloTest, CoupledEstimatorHasNonNegativeSamples) {
  // The coupled Δ estimator can never produce a negative mean: base live
  // edges are a subset of boosted live edges in every world.
  Rng rng(8);
  GraphBuilder b = BuildErdosRenyi(40, 200, rng);
  b.AssignConstantProbability(0.1);
  b.SetBoostWithBeta(4.0);
  DirectedGraph g = std::move(b).Build();
  BoostEstimate e = EstimateBoost(g, {0, 1}, {5, 6, 7}, {});
  EXPECT_GE(e.boost, 0.0);
  EXPECT_GE(e.boosted_spread, e.base_spread);
}

TEST(MonteCarloTest, DeterministicAcrossThreadCounts) {
  Rng rng(12);
  GraphBuilder b = BuildErdosRenyi(30, 150, rng);
  b.AssignConstantProbability(0.2);
  DirectedGraph g = std::move(b).Build();
  SimulationOptions one;
  one.num_simulations = 5000;
  one.num_threads = 1;
  SimulationOptions eight = one;
  eight.num_threads = 8;
  // Per-world counts are deterministic; only the Welford merge order
  // differs across thread counts, so means agree to FP accumulation noise.
  EXPECT_NEAR(EstimateSpread(g, {0}, one).mean,
              EstimateSpread(g, {0}, eight).mean, 1e-9);
}

TEST(MonteCarloTest, MoreSeedsNeverReduceSpread) {
  Rng rng(14);
  GraphBuilder b = BuildErdosRenyi(50, 300, rng);
  b.AssignConstantProbability(0.15);
  DirectedGraph g = std::move(b).Build();
  SimulationOptions opts;
  opts.num_simulations = 4000;
  double one = EstimateSpread(g, {0}, opts).mean;
  double two = EstimateSpread(g, {0, 1}, opts).mean;
  EXPECT_GE(two, one);  // worlds are shared, so this holds exactly
}

TEST(MonteCarloTest, DuplicateSeedsAreIdempotent) {
  DirectedGraph g = Fig1Graph();
  SimulationOptions opts;
  opts.num_simulations = 1000;
  EXPECT_DOUBLE_EQ(EstimateSpread(g, {0}, opts).mean,
                   EstimateSpread(g, {0, 0, 0}, opts).mean);
}

TEST(MakeNodeBitmapTest, SetsRequestedBits) {
  std::vector<uint8_t> bm = MakeNodeBitmap(5, {1, 3});
  EXPECT_EQ(bm, (std::vector<uint8_t>{0, 1, 0, 1, 0}));
}

/// Property sweep: MC estimates track exact values on random small graphs.
class McVsExact : public ::testing::TestWithParam<int> {};

TEST_P(McVsExact, BoostEstimateMatchesExhaustiveEnumeration) {
  Rng rng(GetParam() * 1000 + 17);
  GraphBuilder b = BuildErdosRenyi(8, 14, rng);
  b.AssignConstantProbability(0.2 + 0.05 * (GetParam() % 4));
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> seeds = {0, 1};
  const std::vector<NodeId> boost = {2, 3, 4};

  const double exact = ExactBoost(g, seeds, boost);
  SimulationOptions opts;
  opts.num_simulations = 150000;
  opts.num_threads = 4;
  opts.seed = GetParam();
  BoostEstimate mc = EstimateBoost(g, seeds, boost, opts);
  EXPECT_NEAR(mc.boost, exact, 6 * mc.boost_stderr + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Random, McVsExact, ::testing::Range(1, 9));

}  // namespace
}  // namespace kboost
