#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/boost_session.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/io/pool_io.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

DirectedGraph MakeTestGraph(uint64_t seed = 7) {
  Rng rng(seed);
  GraphBuilder b = BuildErdosRenyi(80, 500, rng);
  b.AssignConstantProbability(0.12);
  b.SetBoostWithBeta(2.0);
  return std::move(b).Build();
}

BoostOptions MakeOptions(size_t k) {
  BoostOptions options;
  options.k = k;
  options.seed = 11;
  options.num_threads = 2;
  return options;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(BoostSessionTest, NestedBudgetInvariantInLbMode) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1, 2}, MakeOptions(16), /*lb_only=*/true);
  BoostResult full = session.SolveForBudget(16);
  // Greedy on the submodular μ̂ yields nested solutions: every smaller
  // budget's answer is a prefix of the largest budget's.
  for (size_t k : {1, 2, 5, 9, 13}) {
    BoostResult r = session.SolveForBudget(k);
    ASSERT_LE(r.best_set.size(), full.best_set.size());
    for (size_t i = 0; i < r.best_set.size(); ++i) {
      EXPECT_EQ(r.best_set[i], full.best_set[i]) << "prefix diverges at " << i;
    }
    // μ̂ grows monotonically along the prefix chain.
    EXPECT_LE(r.lb_mu_hat, full.lb_mu_hat + 1e-12);
  }
}

TEST(BoostSessionTest, SweepSamplesThePoolExactlyOnce) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(12));
  EXPECT_FALSE(session.prepared());
  size_t pools_sampled = 0;
  size_t theta = 0;
  for (size_t k : {1, 4, 8, 12}) {
    BoostResult r = session.SolveForBudget(k);
    pools_sampled += r.pool_reused ? 0 : 1;
    EXPECT_EQ(r.pool_budget, 12u);
    if (theta == 0) theta = r.num_samples;
    EXPECT_EQ(r.num_samples, theta) << "pool changed mid-sweep";
  }
  EXPECT_EQ(pools_sampled, 1u);
  EXPECT_TRUE(session.prepared());
}

TEST(BoostSessionTest, SweepAnswersMatchAFreshRunAtTheSameBudget) {
  DirectedGraph g = MakeTestGraph();
  const std::vector<NodeId> seeds = {0, 1, 2};
  // Session answers after sweeping down from k_max...
  BoostSession session(g, seeds, MakeOptions(12));
  BoostResult at_12 = session.SolveForBudget(12);
  BoostResult at_5 = session.SolveForBudget(5);

  // ...must equal a one-shot run at k_max (identical schedule and pool)...
  BoostResult fresh_12 = PrrBoost(g, seeds, MakeOptions(12));
  EXPECT_EQ(at_12.best_set, fresh_12.best_set);
  EXPECT_EQ(at_12.lb_set, fresh_12.lb_set);
  EXPECT_EQ(at_12.delta_set, fresh_12.delta_set);
  EXPECT_EQ(at_12.best_estimate, fresh_12.best_estimate);
  EXPECT_EQ(at_12.num_samples, fresh_12.num_samples);

  // ...and a second session over the same pool budget answering k=5 first
  // (the cached-order prefix path must equal direct selection at k=5).
  BoostSession direct(g, seeds, MakeOptions(12));
  BoostResult direct_5 = direct.SolveForBudget(5);
  EXPECT_EQ(at_5.best_set, direct_5.best_set);
  EXPECT_EQ(at_5.lb_set, direct_5.lb_set);
  EXPECT_EQ(at_5.delta_set, direct_5.delta_set);
  EXPECT_EQ(at_5.best_estimate, direct_5.best_estimate);
}

TEST(BoostSessionTest, LbModeMatchesPrrBoostLbAtFullBudget) {
  DirectedGraph g = MakeTestGraph(9);
  const std::vector<NodeId> seeds = {3, 4};
  BoostSession session(g, seeds, MakeOptions(10), /*lb_only=*/true);
  BoostResult session_result = session.SolveForBudget(10);
  BoostResult fresh = PrrBoostLb(g, seeds, MakeOptions(10));
  EXPECT_EQ(session_result.best_set, fresh.best_set);
  EXPECT_EQ(session_result.lb_mu_hat, fresh.lb_mu_hat);
  EXPECT_EQ(session_result.num_samples, fresh.num_samples);
}

class PoolRoundTripTest : public ::testing::TestWithParam<bool> {};

TEST_P(PoolRoundTripTest, SaveLoadSolveIsBitIdentical) {
  const bool lb_only = GetParam();
  DirectedGraph g = MakeTestGraph(13);
  const std::vector<NodeId> seeds = {0, 5};
  const std::string path = TempPath(lb_only ? "kboost_pool_lb.bin"
                                            : "kboost_pool_full.bin");

  BoostSession session(g, seeds, MakeOptions(10), lb_only);
  ASSERT_TRUE(session.SavePool(path).ok());

  StatusOr<std::unique_ptr<BoostSession>> loaded = LoadPoolSnapshot(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  BoostSession& warm = *loaded.value();
  EXPECT_TRUE(warm.prepared());
  EXPECT_EQ(warm.lb_only(), lb_only);
  EXPECT_EQ(warm.budget(), 10u);
  EXPECT_EQ(warm.seeds(), seeds);
  EXPECT_EQ(warm.engine().collection().num_samples(),
            session.engine().collection().num_samples());
  EXPECT_EQ(warm.engine().collection().StoredGraphBytes(),
            session.engine().collection().StoredGraphBytes());

  for (size_t k : {2, 6, 10}) {
    BoostResult a = session.SolveForBudget(k);
    BoostResult b = warm.SolveForBudget(k);
    EXPECT_EQ(a.best_set, b.best_set);
    EXPECT_EQ(a.lb_set, b.lb_set);
    EXPECT_EQ(a.delta_set, b.delta_set);
    // Bit-identical estimates, not just approximately equal.
    EXPECT_EQ(a.best_estimate, b.best_estimate);
    EXPECT_EQ(a.lb_mu_hat, b.lb_mu_hat);
    EXPECT_EQ(a.lb_delta_hat, b.lb_delta_hat);
    EXPECT_EQ(a.delta_delta_hat, b.delta_delta_hat);
    EXPECT_EQ(a.num_samples, b.num_samples);
    EXPECT_EQ(a.num_boostable, b.num_boostable);
    EXPECT_EQ(a.avg_compressed_edges, b.avg_compressed_edges);
    EXPECT_TRUE(b.pool_reused);
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Modes, PoolRoundTripTest, ::testing::Bool());

TEST(PoolIoTest, SaveRequiresAPreparedPool) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0}, MakeOptions(5));
  // The free function demands a prepared pool; the member auto-prepares.
  EXPECT_FALSE(SavePoolSnapshot(session, TempPath("kboost_never.bin")).ok());
}

TEST(PoolIoTest, LoadRejectsMissingGarbageAndMismatchedSnapshots) {
  DirectedGraph g = MakeTestGraph();
  EXPECT_FALSE(LoadPoolSnapshot(g, "/nonexistent/pool.bin").ok());

  const std::string garbage = TempPath("kboost_garbage.bin");
  FILE* f = fopen(garbage.c_str(), "wb");
  fputs("definitely not a pool snapshot", f);
  fclose(f);
  StatusOr<std::unique_ptr<BoostSession>> r = LoadPoolSnapshot(g, garbage);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(garbage);

  // A valid snapshot against a graph with a different node count.
  const std::string path = TempPath("kboost_pool_mismatch.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  ASSERT_TRUE(session.SavePool(path).ok());
  DirectedGraph other = MakeTestGraph(21);
  GraphBuilder small(10);
  small.AddEdge(0, 1, 0.5);
  DirectedGraph tiny = std::move(small).Build();
  EXPECT_FALSE(LoadPoolSnapshot(tiny, path).ok());
  std::filesystem::remove(path);
}

TEST(PoolIoTest, InflatedHeaderCountsAreRejectedNotAllocated) {
  // A corrupt count must produce an error Status, not a multi-gigabyte
  // allocation. num_seeds sits at byte 68 of the v1 header (after magic,
  // version, flags, n, budget, epsilon, ell, rng seed, max_samples,
  // num_threads).
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_pool_inflated.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  ASSERT_TRUE(session.SavePool(path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(68);
    const uint64_t huge = uint64_t{1} << 60;
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  StatusOr<std::unique_ptr<BoostSession>> r = LoadPoolSnapshot(g, path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(PoolIoTest, TruncatedSnapshotFailsCleanly) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_pool_trunc.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  ASSERT_TRUE(session.SavePool(path).ok());
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_FALSE(LoadPoolSnapshot(g, path).ok());
  std::filesystem::remove(path);
}

TEST(BoostSessionTest, RejectsBudgetsAboveThePoolBudget) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0}, MakeOptions(5));
  EXPECT_DEATH(session.SolveForBudget(6), "exceeds");
}

}  // namespace
}  // namespace kboost
