#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/boost_session.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/io/pool_io.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

DirectedGraph MakeTestGraph(uint64_t seed = 7) {
  Rng rng(seed);
  GraphBuilder b = BuildErdosRenyi(80, 500, rng);
  b.AssignConstantProbability(0.12);
  b.SetBoostWithBeta(2.0);
  return std::move(b).Build();
}

BoostOptions MakeOptions(size_t k) {
  BoostOptions options;
  options.k = k;
  options.seed = 11;
  options.num_threads = 2;
  return options;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(BoostSessionTest, NestedBudgetInvariantInLbMode) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1, 2}, MakeOptions(16), /*lb_only=*/true);
  BoostResult full = session.SolveForBudget(16);
  // Greedy on the submodular μ̂ yields nested solutions: every smaller
  // budget's answer is a prefix of the largest budget's.
  for (size_t k : {1, 2, 5, 9, 13}) {
    BoostResult r = session.SolveForBudget(k);
    ASSERT_LE(r.best_set.size(), full.best_set.size());
    for (size_t i = 0; i < r.best_set.size(); ++i) {
      EXPECT_EQ(r.best_set[i], full.best_set[i]) << "prefix diverges at " << i;
    }
    // μ̂ grows monotonically along the prefix chain.
    EXPECT_LE(r.lb_mu_hat, full.lb_mu_hat + 1e-12);
  }
}

TEST(BoostSessionTest, SweepSamplesThePoolExactlyOnce) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(12));
  EXPECT_FALSE(session.prepared());
  size_t pools_sampled = 0;
  size_t theta = 0;
  for (size_t k : {1, 4, 8, 12}) {
    BoostResult r = session.SolveForBudget(k);
    pools_sampled += r.pool_reused ? 0 : 1;
    EXPECT_EQ(r.pool_budget, 12u);
    if (theta == 0) theta = r.num_samples;
    EXPECT_EQ(r.num_samples, theta) << "pool changed mid-sweep";
  }
  EXPECT_EQ(pools_sampled, 1u);
  EXPECT_TRUE(session.prepared());
}

TEST(BoostSessionTest, SweepAnswersMatchAFreshRunAtTheSameBudget) {
  DirectedGraph g = MakeTestGraph();
  const std::vector<NodeId> seeds = {0, 1, 2};
  // Session answers after sweeping down from k_max...
  BoostSession session(g, seeds, MakeOptions(12));
  BoostResult at_12 = session.SolveForBudget(12);
  BoostResult at_5 = session.SolveForBudget(5);

  // ...must equal a one-shot run at k_max (identical schedule and pool)...
  BoostResult fresh_12 = PrrBoost(g, seeds, MakeOptions(12));
  EXPECT_EQ(at_12.best_set, fresh_12.best_set);
  EXPECT_EQ(at_12.lb_set, fresh_12.lb_set);
  EXPECT_EQ(at_12.delta_set, fresh_12.delta_set);
  EXPECT_EQ(at_12.best_estimate, fresh_12.best_estimate);
  EXPECT_EQ(at_12.num_samples, fresh_12.num_samples);

  // ...and a second session over the same pool budget answering k=5 first
  // (the cached-order prefix path must equal direct selection at k=5).
  BoostSession direct(g, seeds, MakeOptions(12));
  BoostResult direct_5 = direct.SolveForBudget(5);
  EXPECT_EQ(at_5.best_set, direct_5.best_set);
  EXPECT_EQ(at_5.lb_set, direct_5.lb_set);
  EXPECT_EQ(at_5.delta_set, direct_5.delta_set);
  EXPECT_EQ(at_5.best_estimate, direct_5.best_estimate);
}

TEST(BoostSessionTest, LbModeMatchesPrrBoostLbAtFullBudget) {
  DirectedGraph g = MakeTestGraph(9);
  const std::vector<NodeId> seeds = {3, 4};
  BoostSession session(g, seeds, MakeOptions(10), /*lb_only=*/true);
  BoostResult session_result = session.SolveForBudget(10);
  BoostResult fresh = PrrBoostLb(g, seeds, MakeOptions(10));
  EXPECT_EQ(session_result.best_set, fresh.best_set);
  EXPECT_EQ(session_result.lb_mu_hat, fresh.lb_mu_hat);
  EXPECT_EQ(session_result.num_samples, fresh.num_samples);
}

class PoolRoundTripTest : public ::testing::TestWithParam<bool> {};

TEST_P(PoolRoundTripTest, SaveLoadSolveIsBitIdentical) {
  const bool lb_only = GetParam();
  DirectedGraph g = MakeTestGraph(13);
  const std::vector<NodeId> seeds = {0, 5};
  const std::string path = TempPath(lb_only ? "kboost_pool_lb.bin"
                                            : "kboost_pool_full.bin");

  BoostSession session(g, seeds, MakeOptions(10), lb_only);
  ASSERT_TRUE(session.SavePool(path).ok());

  StatusOr<std::unique_ptr<BoostSession>> loaded = LoadPoolSnapshot(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  BoostSession& warm = *loaded.value();
  EXPECT_TRUE(warm.prepared());
  EXPECT_EQ(warm.lb_only(), lb_only);
  EXPECT_EQ(warm.budget(), 10u);
  EXPECT_EQ(warm.seeds(), seeds);
  EXPECT_EQ(warm.engine().collection().num_samples(),
            session.engine().collection().num_samples());
  EXPECT_EQ(warm.engine().collection().StoredGraphBytes(),
            session.engine().collection().StoredGraphBytes());

  for (size_t k : {2, 6, 10}) {
    BoostResult a = session.SolveForBudget(k);
    BoostResult b = warm.SolveForBudget(k);
    EXPECT_EQ(a.best_set, b.best_set);
    EXPECT_EQ(a.lb_set, b.lb_set);
    EXPECT_EQ(a.delta_set, b.delta_set);
    // Bit-identical estimates, not just approximately equal.
    EXPECT_EQ(a.best_estimate, b.best_estimate);
    EXPECT_EQ(a.lb_mu_hat, b.lb_mu_hat);
    EXPECT_EQ(a.lb_delta_hat, b.lb_delta_hat);
    EXPECT_EQ(a.delta_delta_hat, b.delta_delta_hat);
    EXPECT_EQ(a.num_samples, b.num_samples);
    EXPECT_EQ(a.num_boostable, b.num_boostable);
    EXPECT_EQ(a.avg_compressed_edges, b.avg_compressed_edges);
    EXPECT_TRUE(b.pool_reused);
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Modes, PoolRoundTripTest, ::testing::Bool());

TEST(PoolIoTest, SaveRequiresAPreparedPool) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0}, MakeOptions(5));
  // The free function demands a prepared pool; the member auto-prepares.
  EXPECT_FALSE(SavePoolSnapshot(session, TempPath("kboost_never.bin")).ok());
}

TEST(PoolIoTest, LoadRejectsMissingGarbageAndMismatchedSnapshots) {
  DirectedGraph g = MakeTestGraph();
  EXPECT_FALSE(LoadPoolSnapshot(g, "/nonexistent/pool.bin").ok());

  const std::string garbage = TempPath("kboost_garbage.bin");
  FILE* f = fopen(garbage.c_str(), "wb");
  fputs("definitely not a pool snapshot", f);
  fclose(f);
  StatusOr<std::unique_ptr<BoostSession>> r = LoadPoolSnapshot(g, garbage);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(garbage);

  // A valid snapshot against a graph with a different node count.
  const std::string path = TempPath("kboost_pool_mismatch.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  ASSERT_TRUE(session.SavePool(path).ok());
  DirectedGraph other = MakeTestGraph(21);
  GraphBuilder small(10);
  small.AddEdge(0, 1, 0.5);
  DirectedGraph tiny = std::move(small).Build();
  EXPECT_FALSE(LoadPoolSnapshot(tiny, path).ok());
  std::filesystem::remove(path);
}

TEST(PoolIoTest, InflatedHeaderCountsAreRejectedNotAllocated) {
  // A corrupt count must produce an error Status, not a multi-gigabyte
  // allocation. num_seeds sits at byte 72 of the v2 header (after magic,
  // version, flags, n, budget, epsilon, ell, rng seed, max_samples,
  // num_threads, num_shards).
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_pool_inflated.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  ASSERT_TRUE(session.SavePool(path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(72);
    const uint64_t huge = uint64_t{1} << 60;
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  StatusOr<std::unique_ptr<BoostSession>> r = LoadPoolSnapshot(g, path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

BoostOptions MakeShardedOptions(size_t k, int num_shards) {
  BoostOptions options = MakeOptions(k);
  options.num_shards = num_shards;
  return options;
}

TEST(PoolIoTest, MultiShardSnapshotRoundTripsBitIdentically) {
  // A full-mode pool split across 3 arenas must save → load → solve
  // bit-identically, with the shard layout preserved by the snapshot.
  DirectedGraph g = MakeTestGraph(17);
  const std::vector<NodeId> seeds = {0, 5};
  const std::string path = TempPath("kboost_pool_sharded.bin");
  BoostSession session(g, seeds, MakeShardedOptions(10, 3));
  ASSERT_TRUE(session.SavePool(path).ok());

  StatusOr<std::unique_ptr<BoostSession>> loaded = LoadPoolSnapshot(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  BoostSession& warm = *loaded.value();
  EXPECT_EQ(warm.engine().collection().num_shards(), 3u);
  EXPECT_EQ(warm.engine().options().num_shards, 3);
  for (size_t k : {2, 6, 10}) {
    BoostResult a = session.SolveForBudget(k);
    BoostResult b = warm.SolveForBudget(k);
    EXPECT_EQ(a.best_set, b.best_set);
    EXPECT_EQ(a.delta_set, b.delta_set);
    EXPECT_EQ(a.best_estimate, b.best_estimate);
    EXPECT_EQ(a.num_samples, b.num_samples);
  }
  std::filesystem::remove(path);
}

TEST(PoolIoTest, ShardedSnapshotMatchesMonolithicAnswers) {
  // Snapshots taken at different shard counts answer identically: the shard
  // layout is a storage detail, never a semantic one.
  DirectedGraph g = MakeTestGraph(19);
  const std::vector<NodeId> seeds = {1, 2};
  const std::string mono_path = TempPath("kboost_pool_s1.bin");
  const std::string sharded_path = TempPath("kboost_pool_s4.bin");
  BoostSession mono(g, seeds, MakeShardedOptions(8, 1));
  BoostSession sharded(g, seeds, MakeShardedOptions(8, 4));
  ASSERT_TRUE(mono.SavePool(mono_path).ok());
  ASSERT_TRUE(sharded.SavePool(sharded_path).ok());
  StatusOr<std::unique_ptr<BoostSession>> a = LoadPoolSnapshot(g, mono_path);
  StatusOr<std::unique_ptr<BoostSession>> b =
      LoadPoolSnapshot(g, sharded_path);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t k : {3, 8}) {
    BoostResult ra = a.value()->SolveForBudget(k);
    BoostResult rb = b.value()->SolveForBudget(k);
    EXPECT_EQ(ra.best_set, rb.best_set);
    EXPECT_EQ(ra.best_estimate, rb.best_estimate);
    EXPECT_EQ(ra.num_samples, rb.num_samples);
  }
  std::filesystem::remove(mono_path);
  std::filesystem::remove(sharded_path);
}

/// Byte offset of the v2 full-mode shard size table: the 128-byte header
/// followed by the seed list.
size_t ShardTableOffset(size_t num_seeds) { return 128 + 4 * num_seeds; }

/// Saves in the legacy v2 stream format. The corruption tests below poke
/// v2-specific byte offsets (shard size table, shard blob counts), which the
/// v3 section-table layout moved — they pin the format they were written for.
void SaveV2(BoostSession& session, const std::string& path) {
  session.Prepare();
  PoolSaveOptions options;
  options.format_version = 2;
  ASSERT_TRUE(SavePoolSnapshot(session, path, options).status().ok());
}

TEST(PoolIoTest, OverstatedShardTableIsRejected) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_pool_badtable.bin");
  BoostSession session(g, {0, 1}, MakeShardedOptions(5, 3));
  SaveV2(session, path);
  {
    // First size-table entry promises more bytes than the file holds.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(ShardTableOffset(2)));
    const uint64_t huge = uint64_t{1} << 60;
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  StatusOr<std::unique_ptr<BoostSession>> r = LoadPoolSnapshot(g, path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(PoolIoTest, CorruptShardBlockIsRejected) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_pool_badshard.bin");
  BoostSession session(g, {0, 1}, MakeShardedOptions(5, 3));
  SaveV2(session, path);
  {
    // Clobber the first shard blob's leading counts: per-shard structural
    // validation must reject the arena, not allocate from the corrupt value.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(ShardTableOffset(2) + 3 * 8));
    const uint64_t huge = uint64_t{1} << 60;
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  StatusOr<std::unique_ptr<BoostSession>> r = LoadPoolSnapshot(g, path);
  EXPECT_FALSE(r.ok());
  std::filesystem::remove(path);
}

TEST(PoolIoTest, TruncatedShardBlockIsRejected) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_pool_shorttail.bin");
  BoostSession session(g, {0, 1}, MakeShardedOptions(5, 3));
  SaveV2(session, path);
  // Shave a few bytes off the last shard's blob.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 3);
  StatusOr<std::unique_ptr<BoostSession>> r = LoadPoolSnapshot(g, path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::filesystem::remove(path);
}

TEST(PoolIoTest, LegacyV1SnapshotLoadsAsSingleShard) {
  // Back-compat: a v1 snapshot (no num_shards field, one monolithic arena
  // blob, no size table) must still load — as an S = 1 pool — and answer
  // exactly like the session it was saved from. The v1 file is synthesized
  // from a fresh S = 1 v2 snapshot by dropping the v2-only bytes.
  DirectedGraph g = MakeTestGraph(23);
  const std::vector<NodeId> seeds = {0, 3};
  const std::string v2_path = TempPath("kboost_pool_v2src.bin");
  const std::string v1_path = TempPath("kboost_pool_v1.bin");
  BoostSession session(g, seeds, MakeShardedOptions(8, 1));
  SaveV2(session, v2_path);

  std::string bytes;
  {
    std::ifstream in(v2_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  const size_t table = ShardTableOffset(seeds.size());
  ASSERT_GT(bytes.size(), table + 8);
  std::string v1;
  v1.append(bytes, 0, 68);            // magic .. num_threads
  const uint32_t version1 = 1;        // rewrite the version field
  v1.replace(8, 4, reinterpret_cast<const char*>(&version1), 4);
  v1.append(bytes, 72, table - 72);   // num_seeds .. seeds (skip num_shards)
  v1.append(bytes, table + 8, std::string::npos);  // blob (skip size table)
  {
    std::ofstream out(v1_path, std::ios::binary | std::ios::trunc);
    out.write(v1.data(), static_cast<std::streamsize>(v1.size()));
  }

  StatusOr<std::unique_ptr<BoostSession>> loaded =
      LoadPoolSnapshot(g, v1_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->engine().collection().num_shards(), 1u);
  for (size_t k : {2, 8}) {
    BoostResult a = session.SolveForBudget(k);
    BoostResult b = loaded.value()->SolveForBudget(k);
    EXPECT_EQ(a.best_set, b.best_set);
    EXPECT_EQ(a.best_estimate, b.best_estimate);
    EXPECT_EQ(a.num_samples, b.num_samples);
  }
  std::filesystem::remove(v2_path);
  std::filesystem::remove(v1_path);
}

TEST(BoostSessionTest, ShardAndThreadCombosAnswerIdentically) {
  // Session-level fuzz over (threads, shards, k): every combination must
  // reproduce the serial S = 1 answers bit-for-bit.
  DirectedGraph g = MakeTestGraph(29);
  const std::vector<NodeId> seeds = {0, 1};
  BoostOptions reference_options = MakeOptions(10);
  reference_options.num_threads = 1;
  reference_options.num_shards = 1;
  BoostSession reference(g, seeds, reference_options);
  Rng fuzz(737373);
  for (int combo = 0; combo < 4; ++combo) {
    BoostOptions options = MakeOptions(10);
    options.num_threads = 1 + static_cast<int>(fuzz.NextBounded(4));
    options.num_shards = 2 + static_cast<int>(fuzz.NextBounded(5));
    BoostSession session(g, seeds, options);
    const size_t k = 1 + fuzz.NextBounded(10);
    SCOPED_TRACE("threads=" + std::to_string(options.num_threads) +
                 " shards=" + std::to_string(options.num_shards) +
                 " k=" + std::to_string(k));
    BoostResult a = reference.SolveForBudget(k);
    BoostResult b = session.SolveForBudget(k);
    EXPECT_EQ(a.best_set, b.best_set);
    EXPECT_EQ(a.lb_set, b.lb_set);
    EXPECT_EQ(a.delta_set, b.delta_set);
    EXPECT_EQ(a.best_estimate, b.best_estimate);
    EXPECT_EQ(a.lb_mu_hat, b.lb_mu_hat);
    EXPECT_EQ(a.num_samples, b.num_samples);
  }
}

TEST(BoostSessionTest, RejectsOutOfRangeShardCounts) {
  DirectedGraph g = MakeTestGraph();
  for (int bad : {0, -3, PrrCollection::kMaxShards + 1}) {
    BoostOptions options = MakeOptions(5);
    options.num_shards = bad;
    StatusOr<std::unique_ptr<BoostSession>> r =
        BoostSession::Create(g, {0, 1}, options, /*lb_only=*/false);
    EXPECT_FALSE(r.ok()) << "num_shards=" << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PoolIoTest, TruncatedSnapshotFailsCleanly) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_pool_trunc.bin");
  BoostSession session(g, {0, 1}, MakeOptions(5));
  ASSERT_TRUE(session.SavePool(path).ok());
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_FALSE(LoadPoolSnapshot(g, path).ok());
  std::filesystem::remove(path);
}

TEST(BoostSessionTest, RejectsBudgetsAboveThePoolBudget) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0}, MakeOptions(5));
  EXPECT_DEATH(session.SolveForBudget(6), "exceeds");
}

}  // namespace
}  // namespace kboost
