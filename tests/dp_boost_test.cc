#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/tree/bidirected_tree.h"
#include "src/tree/dp_boost.h"
#include "src/tree/path_products.h"
#include "src/tree/tree_evaluator.h"
#include "src/tree/tree_generators.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

/// Exhaustive optimum over all boost sets of size ≤ k (tiny trees only).
double BruteForceTreeOpt(const BidirectedTree& tree, size_t k) {
  const size_t n = tree.num_nodes();
  TreeBoostEvaluator eval(tree);
  double best = 0.0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) > k) continue;
    std::vector<uint8_t> bitmap(n, 0);
    bool valid = true;
    for (NodeId v = 0; v < n; ++v) {
      if ((mask >> v) & 1) {
        if (tree.IsSeed(v)) {
          valid = false;
          break;
        }
        bitmap[v] = 1;
      }
    }
    if (!valid) continue;
    eval.Compute(bitmap);
    best = std::max(best, eval.boost());
  }
  return best;
}

TEST(PathProductsTest, SinglePairIsEdgeProbability) {
  TreeBuilder b(2);
  b.AddEdge(0, 1, 0.3, 0.6, 0.2, 0.5);
  BidirectedTree tree = std::move(b).Build();
  // k = 0: p(0->1) + p(1->0) = 0.3 + 0.2.
  EXPECT_NEAR(SumTopKBoostedPathProducts(tree, 0), 0.5, 1e-6);
  // k = 1: boosted both directions: 0.6 + 0.5.
  EXPECT_NEAR(SumTopKBoostedPathProducts(tree, 1), 1.1, 1e-6);
}

TEST(PathProductsTest, PathOfTwoEdgesBoostsBestRatio) {
  TreeBuilder b(3);
  b.AddEdge(0, 1, 0.5, 0.5);   // ratio 1
  b.AddEdge(1, 2, 0.2, 0.8);   // ratio 4
  BidirectedTree tree = std::move(b).Build();
  // k = 1 pairs: 0->1: 0.5; 1->0: 0.5; 1->2: 0.8; 2->1: 0.8;
  // 0->2: 0.5*0.8 (boost the ratio-4 edge); 2->0: 0.8*0.5.
  EXPECT_NEAR(SumTopKBoostedPathProducts(tree, 1),
              0.5 + 0.5 + 0.8 + 0.8 + 0.4 + 0.4, 1e-6);
  // k = 2: 0->2 and 2->0 boost both edges.
  EXPECT_NEAR(SumTopKBoostedPathProducts(tree, 2),
              0.5 + 0.5 + 0.8 + 0.8 + 0.8 * 0.5 * 2, 1e-6);
}

TEST(DpBoostTest, BudgetIsRespected) {
  Rng rng(3);
  TreeProbModel model;
  model.trivalency = false;
  model.constant_p = 0.15;
  BidirectedTree tree = BuildCompleteBinaryTree(63, model, rng);
  tree = WithTreeSeeds(tree, 4, false, rng);
  DpBoostOptions opts;
  opts.k = 5;
  opts.epsilon = 0.5;
  DpBoostResult r = DpBoost(tree, opts);
  EXPECT_LE(r.boost_set.size(), 5u);
  for (NodeId v : r.boost_set) EXPECT_FALSE(tree.IsSeed(v));
  EXPECT_GE(r.boost, 0.0);
}

TEST(DpBoostTest, DpValueLowerBoundsExactBoost) {
  Rng rng(4);
  TreeProbModel model;
  model.trivalency = false;
  model.constant_p = 0.2;
  BidirectedTree tree = BuildCompleteBinaryTree(31, model, rng);
  tree = WithTreeSeeds(tree, 3, false, rng);
  DpBoostOptions opts;
  opts.k = 4;
  opts.epsilon = 0.4;
  DpBoostResult r = DpBoost(tree, opts);
  // The rounded DP value never overestimates the concrete set's boost
  // (that is the heart of the FPTAS argument). Small FP slack allowed.
  TreeBoostEvaluator eval(tree);
  std::vector<uint8_t> bitmap(31, 0);
  for (NodeId v : r.boost_set) bitmap[v] = 1;
  eval.Compute(bitmap);
  EXPECT_LE(r.dp_value, eval.boost() + 1e-6);
}

TEST(DpBoostTest, AtLeastAsGoodAsGreedy) {
  Rng rng(5);
  TreeProbModel model;
  BidirectedTree tree = BuildCompleteBinaryTree(127, model, rng);
  tree = WithTreeSeeds(tree, 6, false, rng);
  DpBoostOptions opts;
  opts.k = 8;
  opts.epsilon = 0.5;
  DpBoostResult dp = DpBoost(tree, opts);
  // DpBoost falls back to the greedy set when rounding hurts, so this holds
  // unconditionally.
  EXPECT_GE(dp.boost, dp.greedy_lb - 1e-9);
}

class DpBoostVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(DpBoostVsBruteForce, FptasGuaranteeOnTinyTrees) {
  Rng rng(GetParam() * 53 + 7);
  TreeProbModel model;
  model.trivalency = false;
  // High probabilities so OPT is comfortably above the guarantee's Δ≥1
  // precondition... which tiny trees cannot reach; we still assert the
  // multiplicative bound because the additive δ-rounding error is tiny.
  model.constant_p = 0.35;
  model.beta = 2.5;
  const NodeId n = 9;
  BidirectedTree tree = BuildRandomTree(n, 3, model, rng);
  tree = WithTreeSeeds(tree, 2, false, rng);

  const size_t k = 3;
  const double opt = BruteForceTreeOpt(tree, k);
  if (opt < 0.05) GTEST_SKIP() << "degenerate draw";

  DpBoostOptions opts;
  opts.k = k;
  opts.epsilon = 0.3;
  DpBoostResult r = DpBoost(tree, opts);
  EXPECT_GE(r.boost, (1.0 - opts.epsilon) * opt - 1e-9)
      << "opt=" << opt << " dp=" << r.boost << " δ=" << r.delta;
  EXPECT_LE(r.boost, opt + 1e-9);  // brute force is the true optimum
}

INSTANTIATE_TEST_SUITE_P(Random, DpBoostVsBruteForce,
                         ::testing::Range(1, 13));

class DpBoostEpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(DpBoostEpsilonSweep, TighterEpsilonNeverWorse) {
  Rng rng(31);
  TreeProbModel model;
  model.trivalency = false;
  model.constant_p = 0.25;
  BidirectedTree tree = BuildCompleteBinaryTree(63, model, rng);
  tree = WithTreeSeeds(tree, 4, false, rng);
  DpBoostOptions opts;
  opts.k = 5;
  opts.epsilon = GetParam();
  DpBoostResult r = DpBoost(tree, opts);
  // Certified value is a true lower bound on what the set achieves, and the
  // final set is at least as good as greedy.
  EXPECT_GE(r.boost + 1e-9, r.greedy_lb);
  EXPECT_LE(r.boost_set.size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, DpBoostEpsilonSweep,
                         ::testing::Values(0.2, 0.5, 1.0));

}  // namespace
}  // namespace kboost
