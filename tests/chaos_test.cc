// The chaos harness: deterministic fault injection (src/util/fault.h)
// driven against the serving stack's robustness machinery — snapshot-load
// retry with backoff, per-request deadlines, admission control and graceful
// degradation — while lifecycle churn (add/refresh/remove) races live
// traffic. The invariant under every storm: no crash, no untyped error, no
// admission-slot leak, and answers that do come back are bit-identical to
// the fault-free reference. Runs under the ASan/UBSan job and the TSan job
// in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/boost_session.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/io/pool_io.h"
#include "src/serve/boost_service.h"
#include "src/util/fault.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

DirectedGraph MakeTestGraph(uint64_t seed = 7) {
  Rng rng(seed);
  GraphBuilder b = BuildErdosRenyi(80, 500, rng);
  b.AssignConstantProbability(0.12);
  b.SetBoostWithBeta(2.0);
  return std::move(b).Build();
}

BoostOptions MakeOptions(size_t k) {
  BoostOptions options;
  options.k = k;
  options.seed = 11;
  options.num_threads = 2;
  return options;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Every test disarms on entry and exit: an armed site leaking across tests
/// (or out of a failed one) would poison unrelated suites.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().DisarmAll(); }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

void ExpectSameAnswer(const BoostResult& a, const BoostResult& b) {
  EXPECT_EQ(a.best_set, b.best_set);
  EXPECT_EQ(a.best_estimate, b.best_estimate);
  EXPECT_EQ(a.lb_set, b.lb_set);
  EXPECT_EQ(a.lb_mu_hat, b.lb_mu_hat);
  EXPECT_EQ(a.delta_set, b.delta_set);
  EXPECT_EQ(a.delta_delta_hat, b.delta_delta_hat);
}

TEST_F(ChaosTest, SnapshotLoadRetriesTransientFaultsUntilSuccess) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_chaos_retry.pool");
  BoostSession reference(g, {0, 1}, MakeOptions(6));
  ASSERT_TRUE(reference.SavePool(path).ok());
  const BoostResult expect = reference.SolveForBudget(4);

  // The open fails twice, then heals — the classic transient fault shape.
  FaultInjector::Plan plan;
  plan.fail_first = 2;
  FaultInjector::Global().Arm(FaultSite::kSnapshotOpen, plan);

  BoostService::Options options;
  options.snapshot_retry.max_attempts = 5;
  options.snapshot_retry.initial_delay_micros = 50;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service.LoadPool("p", path).ok());
  EXPECT_EQ(FaultInjector::Global().hits(FaultSite::kSnapshotOpen), 3u);

  // The retries were absorbed, counted, and the answer is unharmed.
  ServiceStatsSnapshot stats = service.Stats();
  ASSERT_EQ(stats.pools.size(), 1u);
  EXPECT_EQ(stats.pools[0].load_retries, 2u);
  BoostRequest request;
  request.pool = "p";
  request.k = 4;
  StatusOr<BoostResponse> r = service.Solve(request);
  ASSERT_TRUE(r.ok());
  ExpectSameAnswer(expect, r->result);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, SnapshotLoadGivesUpTypedAfterMaxAttempts) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_chaos_giveup.pool");
  BoostSession reference(g, {0, 1}, MakeOptions(6));
  ASSERT_TRUE(reference.SavePool(path).ok());

  FaultInjector::Plan plan;
  plan.fail_first = 100;  // never heals within the budget
  FaultInjector::Global().Arm(FaultSite::kSnapshotRead, plan);

  BoostService::Options options;
  options.snapshot_retry.max_attempts = 3;
  options.snapshot_retry.initial_delay_micros = 50;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  Status s = (*service_or)->LoadPool("p", path);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // Exactly max_attempts loads ran, then the typed error surfaced.
  EXPECT_EQ(FaultInjector::Global().hits(FaultSite::kSnapshotRead), 3u);
  EXPECT_EQ((*service_or)->num_pools(), 0u);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, MmapFaultsRetryLikeStreamFaults) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_chaos_mmap.pool");
  BoostSession reference(g, {0, 1}, MakeOptions(6));
  ASSERT_TRUE(reference.SavePool(path).ok());

  FaultInjector::Plan plan;
  plan.fail_first = 1;
  FaultInjector::Global().Arm(FaultSite::kSnapshotMmap, plan);

  BoostService::Options options;
  options.mmap_pools = true;
  options.snapshot_retry.max_attempts = 3;
  options.snapshot_retry.initial_delay_micros = 50;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service.LoadPool("p", path).ok());
  EXPECT_EQ(service.Stats().pools[0].load_retries, 1u);
  BoostRequest request;
  request.pool = "p";
  request.k = 4;
  EXPECT_TRUE(service.Solve(request).ok());
  std::remove(path.c_str());
}

TEST_F(ChaosTest, AllocationPressureSurfacesAsResourceExhaustedAndRetries) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_chaos_alloc.pool");
  BoostSession reference(g, {0, 1}, MakeOptions(6));
  ASSERT_TRUE(reference.SavePool(path).ok());

  // Direct load: the typed status reaches the caller un-retried.
  FaultInjector::Plan plan;
  plan.fail_first = 1;
  FaultInjector::Global().Arm(FaultSite::kAllocPressure, plan);
  EXPECT_EQ(LoadPoolSnapshot(g, path).status().code(),
            StatusCode::kResourceExhausted);

  // Service load: ResourceExhausted is transient, so the retry loop absorbs
  // it (the counter reset by Arm makes the next hit succeed).
  FaultInjector::Global().Arm(FaultSite::kAllocPressure, plan);
  BoostService::Options options;
  options.snapshot_retry.max_attempts = 3;
  options.snapshot_retry.initial_delay_micros = 50;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  ASSERT_TRUE((*service_or)->LoadPool("p", path).ok());
  EXPECT_EQ((*service_or)->Stats().pools[0].load_retries, 1u);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, CorruptSnapshotIsPermanentAndNeverRetried) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_chaos_corrupt.pool");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    std::vector<char> garbage(512, 'x');  // wrong magic, full-size header
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  // Count load attempts through the (never-failing) open site.
  FaultInjector::Global().Arm(FaultSite::kSnapshotOpen, FaultInjector::Plan{});

  BoostService::Options options;
  options.snapshot_retry.max_attempts = 5;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  Status s = (*service_or)->LoadPool("p", path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Corruption is permanent: one attempt, no backoff loop.
  EXPECT_EQ(FaultInjector::Global().hits(FaultSite::kSnapshotOpen), 1u);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, RefreshRecordsRetriesEvenWhenTheLoadUltimatelyFails) {
  DirectedGraph g = MakeTestGraph();
  const std::string path = TempPath("kboost_chaos_refresh.pool");
  BoostSession reference(g, {0, 1}, MakeOptions(6));
  ASSERT_TRUE(reference.SavePool(path).ok());

  BoostService::Options options;
  options.snapshot_retry.max_attempts = 2;
  options.snapshot_retry.initial_delay_micros = 50;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service.LoadPool("p", path).ok());

  FaultInjector::Plan plan;
  plan.fail_first = 100;
  FaultInjector::Global().Arm(FaultSite::kSnapshotOpen, plan);
  EXPECT_EQ(service.RefreshPoolFromSnapshot("p", path).code(),
            StatusCode::kIoError);
  FaultInjector::Global().DisarmAll();

  // The live entry kept serving and carries the retry evidence.
  EXPECT_EQ(service.Stats().pools[0].load_retries, 1u);
  BoostRequest request;
  request.pool = "p";
  request.k = 4;
  EXPECT_TRUE(service.Solve(request).ok());
  std::remove(path.c_str());
}

/// Deadline storm: every request carries a deadline far below the injected
/// solve time. All of them must come back typed DeadlineExceeded (or OK if
/// one slips under), nothing crashes, and a deadline-free replay afterwards
/// records zero additional misses and bit-identical answers.
TEST_F(ChaosTest, DeadlineStormShedsTypedAndRepliesCleanAfterward) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostService>> service_or = BoostService::Create(g);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service
                  .AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0, 1},
                                    MakeOptions(8)))
                  .ok());
  const BoostResult expect =
      BoostSession(g, {0, 1}, MakeOptions(8)).SolveForBudget(8);

  // Every solve stalls 20 ms at entry; the storm's deadlines are 2 ms.
  FaultInjector::Plan slow;
  slow.delay_micros = 20000;
  FaultInjector::Global().Arm(FaultSite::kSolveStart, slow);

  constexpr size_t kClients = 4;
  constexpr int kPerClient = 3;
  std::atomic<size_t> missed{0};
  std::atomic<size_t> ok{0};
  std::atomic<size_t> untyped{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        BoostRequest request;
        request.pool = "p";
        request.k = 8;
        request.deadline_ms = 2;
        StatusOr<BoostResponse> r = service.Solve(request);
        if (r.ok()) {
          ok.fetch_add(1);
        } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
          missed.fetch_add(1);
        } else {
          untyped.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(untyped.load(), 0u);
  EXPECT_EQ(ok.load() + missed.load(), kClients * kPerClient);
  EXPECT_GT(missed.load(), 0u);
  EXPECT_EQ(service.Stats().pools[0].deadline_misses, missed.load());

  // Deadline-free replay on the recovered service: zero new misses, answers
  // bit-identical to the fault-free reference.
  FaultInjector::Global().DisarmAll();
  const uint64_t misses_before = service.Stats().pools[0].deadline_misses;
  for (int i = 0; i < 3; ++i) {
    BoostRequest request;
    request.pool = "p";
    request.k = 8;
    StatusOr<BoostResponse> r = service.Solve(request);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->degraded);
    ExpectSameAnswer(expect, r->result);
  }
  EXPECT_EQ(service.Stats().pools[0].deadline_misses, misses_before);
}

/// Queue saturation under lifecycle churn: a small admission budget, slow
/// injected solves, 2× more clients than capacity, while another thread
/// adds/refreshes/removes pools. Excess load sheds typed; when the storm
/// drains, no admission slot has leaked.
TEST_F(ChaosTest, QueueSaturationShedsTypedWithNoSlotLeaks) {
  DirectedGraph g = MakeTestGraph();
  BoostService::Options options;
  options.max_in_flight = 2;
  options.max_queued = 2;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service
                  .AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0, 1},
                                    MakeOptions(8)))
                  .ok());

  FaultInjector::Plan slow;
  slow.delay_micros = 5000;  // 5 ms per solve: a queue forms immediately
  FaultInjector::Global().Arm(FaultSite::kSolveStart, slow);

  constexpr size_t kClients = 8;  // 2x the in-flight + queued capacity
  constexpr int kPerClient = 4;
  std::atomic<size_t> answered{0};
  std::atomic<size_t> shed{0};
  std::atomic<size_t> untyped{0};
  std::atomic<bool> stop_churn{false};
  std::thread churn([&] {
    // Registry churn racing the saturated query path: the overload
    // machinery must not deadlock with, or corrupt, lifecycle mutations.
    int round = 0;
    while (!stop_churn.load(std::memory_order_relaxed)) {
      const std::string name = "churn" + std::to_string(round % 2);
      if (service.AddPool(name, std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0}, MakeOptions(4)))
              .ok()) {
        service
            .RefreshPool(name, std::make_unique<BoostSession>(
                                   g, std::vector<NodeId>{0}, MakeOptions(4)))
            .ok();
        service.RemovePool(name).ok();
      }
      ++round;
    }
  });
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        BoostRequest request;
        request.pool = "p";
        request.k = 4;
        StatusOr<BoostResponse> r = service.Solve(request);
        if (r.ok()) {
          answered.fetch_add(1);
        } else if (r.status().code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          untyped.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  stop_churn.store(true);
  churn.join();

  EXPECT_EQ(untyped.load(), 0u);
  EXPECT_EQ(answered.load() + shed.load(), kClients * kPerClient);
  EXPECT_GT(shed.load(), 0u);

  ServiceStatsSnapshot stats = service.Stats();
  // No slot leaks: the storm drained, so the gauges must read empty and the
  // lifetime counters must reconcile exactly with what the clients saw.
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.shed, shed.load());
  ASSERT_EQ(stats.pools.size(), 1u);
  EXPECT_EQ(stats.pools[0].queries, answered.load());
  EXPECT_EQ(stats.pools[0].shed, shed.load());
  // Sheds are neither queries nor errors.
  EXPECT_EQ(stats.pools[0].errors, 0u);

  // The service is fully usable after the storm.
  FaultInjector::Global().DisarmAll();
  BoostRequest request;
  request.pool = "p";
  request.k = 4;
  EXPECT_TRUE(service.Solve(request).ok());
}

TEST_F(ChaosTest, QueuedRequestsTimeOutTypedWhenTheirDeadlinePasses) {
  DirectedGraph g = MakeTestGraph();
  BoostService::Options options;
  options.max_in_flight = 1;
  options.max_queued = 4;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service
                  .AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0, 1},
                                    MakeOptions(6)))
                  .ok());

  FaultInjector::Plan slow;
  slow.delay_micros = 50000;  // the slot holder solves for >= 50 ms
  FaultInjector::Global().Arm(FaultSite::kSolveStart, slow);

  std::thread holder([&] {
    BoostRequest request;
    request.pool = "p";
    request.k = 4;
    EXPECT_TRUE(service.Solve(request).ok());
  });
  // Give the holder time to take the only slot, then queue behind it with a
  // deadline far shorter than its injected solve time.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  BoostRequest hopeless;
  hopeless.pool = "p";
  hopeless.k = 4;
  hopeless.deadline_ms = 5;
  StatusOr<BoostResponse> r = service.Solve(hopeless);
  holder.join();
  // Either the queue wait timed out (the expected path) or — if the holder
  // finished implausibly fast — the solve itself ran; both must be typed.
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_GE(service.Stats().queue_timeouts, 1u);
    EXPECT_GE(service.Stats().pools[0].deadline_misses, 1u);
  }
  EXPECT_EQ(service.Stats().in_flight, 0u);
  EXPECT_EQ(service.Stats().queued, 0u);
}

/// Under load pressure past the configured factor, kAuto requests downgrade
/// to the LB answer (stamped degraded) — and the degraded answer is exactly
/// the pool's kLbOnly answer, not an approximation of it.
TEST_F(ChaosTest, DegradedAnswersMatchExplicitLbOnlyBitForBit) {
  DirectedGraph g = MakeTestGraph();
  BoostService::Options options;
  options.max_in_flight = 1;
  options.max_queued = 2;
  options.degrade_load_factor = 0.1;  // any occupancy at all degrades
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service
                  .AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0, 1},
                                    MakeOptions(8)))
                  .ok());

  // Admitting this request puts occupancy at 1/3 >= 0.1, so the service
  // downgrades it.
  BoostRequest request;
  request.pool = "p";
  request.k = 6;
  StatusOr<BoostResponse> degraded = service.Solve(request);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_TRUE(degraded->result.delta_set.empty());  // no Δ̂ selection ran

  // Reference: the same pool's explicit LB-only answer, unloaded.
  BoostRequest lb = request;
  lb.mode = SolveMode::kLbOnly;
  BoostService::Options calm;
  StatusOr<std::unique_ptr<BoostService>> calm_or =
      BoostService::Create(g, calm);
  ASSERT_TRUE(calm_or.ok());
  ASSERT_TRUE((*calm_or)
                  ->AddPool("p", std::make_unique<BoostSession>(
                                     g, std::vector<NodeId>{0, 1},
                                     MakeOptions(8)))
                  .ok());
  StatusOr<BoostResponse> reference = (*calm_or)->Solve(lb);
  ASSERT_TRUE(reference.ok());
  EXPECT_FALSE(reference->degraded);  // explicit mode is never "degraded"
  ExpectSameAnswer(reference->result, degraded->result);

  // Explicit kFull is honored even under the same pressure.
  BoostRequest full = request;
  full.mode = SolveMode::kFull;
  StatusOr<BoostResponse> honored = service.Solve(full);
  ASSERT_TRUE(honored.ok());
  EXPECT_FALSE(honored->degraded);
  EXPECT_FALSE(honored->result.delta_set.empty());

  EXPECT_EQ(service.Stats().pools[0].degraded, 1u);
}

}  // namespace
}  // namespace kboost
