// Cross-cutting property tests: independent re-implementations and
// statistical invariants that tie the modules together. These are the
// "does the whole pipeline tell one consistent story" checks, complementing
// the per-module unit tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>

#include "src/core/prr_boost.h"
#include "src/core/prr_collection.h"
#include "src/core/prr_sampler.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/im/coverage.h"
#include "src/sim/boost_model.h"
#include "src/tree/bidirected_tree.h"
#include "src/tree/path_products.h"
#include "src/tree/tree_evaluator.h"
#include "src/tree/tree_generators.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

// ---------------------------------------------------------------------------
// PRR estimator vs Monte-Carlo simulator on mid-size graphs: two completely
// independent estimation pipelines (reverse sampling vs forward simulation)
// must agree within joint noise, across probability models.
// ---------------------------------------------------------------------------

class PrrVsMonteCarlo
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PrrVsMonteCarlo, TwoIndependentEstimatorsAgree) {
  const int seed = std::get<0>(GetParam());
  const double beta = std::get<1>(GetParam());
  Rng rng(seed);
  GraphBuilder b = BuildPreferentialAttachment(300, 3.0, 0.3, rng);
  b.AssignExponentialProbabilities(0.12, rng);
  b.SetBoostWithBeta(beta);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> seeds = {0, 1, 2};

  // An arbitrary boost set (not optimized — avoids winner's-curse bias).
  std::vector<NodeId> boost;
  for (NodeId v = 10; v < 40; v += 3) boost.push_back(v);

  PrrCollection collection(g.num_nodes());
  PrrSampler sampler(g, seeds, boost.size(), false, seed, 4);
  sampler.EnsureSamples(collection, 120000);
  const double prr_estimate = collection.EstimateDelta(boost, 4);

  SimulationOptions sim;
  sim.num_simulations = 60000;
  sim.num_threads = 4;
  sim.seed = seed + 1;
  BoostEstimate mc = EstimateBoost(g, seeds, boost, sim);

  EXPECT_NEAR(prr_estimate, mc.boost,
              8 * mc.boost_stderr + 0.05 * std::max(1.0, mc.boost))
      << "PRR and MC estimators disagree (seed " << seed << ", beta " << beta
      << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrrVsMonteCarlo,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(2.0, 4.0)));

// ---------------------------------------------------------------------------
// Greedy max-coverage vs exhaustive optimum on random small instances:
// the (1 - 1/e) bound must hold, and usually much better.
// ---------------------------------------------------------------------------

class CoverageGreedyQuality : public ::testing::TestWithParam<int> {};

TEST_P(CoverageGreedyQuality, WithinClassicBoundOfOptimum) {
  Rng rng(GetParam() * 71 + 9);
  const size_t num_nodes = 10;
  const size_t num_sets = 30;
  const size_t k = 3;

  CoverageSelector selector(num_nodes);
  std::vector<std::vector<NodeId>> sets;
  for (size_t i = 0; i < num_sets; ++i) {
    std::vector<NodeId> set;
    const size_t size = 1 + rng.NextBounded(4);
    for (size_t j = 0; j < size; ++j) {
      NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
      if (std::find(set.begin(), set.end(), v) == set.end()) {
        set.push_back(v);
      }
    }
    selector.AddSet(set);
    sets.push_back(set);
  }

  // Exhaustive optimum over all C(10,3) picks.
  size_t opt = 0;
  for (NodeId a = 0; a < num_nodes; ++a) {
    for (NodeId c = a + 1; c < num_nodes; ++c) {
      for (NodeId d = c + 1; d < num_nodes; ++d) {
        size_t covered = 0;
        for (const auto& set : sets) {
          for (NodeId v : set) {
            if (v == a || v == c || v == d) {
              ++covered;
              break;
            }
          }
        }
        opt = std::max(opt, covered);
      }
    }
  }

  auto greedy = selector.SelectGreedy(k);
  EXPECT_GE(static_cast<double>(greedy.covered_sets),
            (1.0 - 1.0 / std::exp(1.0)) * static_cast<double>(opt) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, CoverageGreedyQuality,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Top-k boosted path products: the incremental multiset DFS must match a
// naive per-pair recomputation (independent implementation).
// ---------------------------------------------------------------------------

namespace {

/// Naive reference: for each ordered pair, walk the unique path, sort the
/// boost ratios, boost the top k.
double NaiveSumTopK(const BidirectedTree& tree, size_t k) {
  const size_t n = tree.num_nodes();
  double total = 0.0;
  // BFS parent arrays per source.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<NodeId> parent(n, kInvalidNode);
    std::vector<uint8_t> seen(n, 0);
    std::vector<NodeId> order{src};
    seen[src] = 1;
    for (size_t head = 0; head < order.size(); ++head) {
      NodeId u = order[head];
      for (const auto& e : tree.Neighbors(u)) {
        if (!seen[e.neighbor]) {
          seen[e.neighbor] = 1;
          parent[e.neighbor] = u;
          order.push_back(e.neighbor);
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      // Collect directed edges along src -> dst.
      std::vector<std::pair<double, double>> edges;  // (p, p')
      NodeId cur = dst;
      while (cur != src) {
        NodeId par = parent[cur];
        for (const auto& e : tree.Neighbors(par)) {
          if (e.neighbor == cur) {
            edges.push_back({e.p_out, e.pb_out});
            break;
          }
        }
        cur = par;
      }
      std::vector<double> ratios;
      double product = 1.0;
      for (auto [p, pb] : edges) {
        product *= p;
        ratios.push_back(pb / std::max(p, 1e-300));
      }
      std::sort(ratios.rbegin(), ratios.rend());
      for (size_t i = 0; i < std::min(k, ratios.size()); ++i) {
        product *= ratios[i];
      }
      total += product;
    }
  }
  return total;
}

}  // namespace

class PathProductsSweep : public ::testing::TestWithParam<int> {};

TEST_P(PathProductsSweep, IncrementalMatchesNaive) {
  Rng rng(GetParam() * 37 + 1);
  TreeProbModel model;  // trivalency: diverse ratios
  BidirectedTree tree = BuildRandomTree(24, 0, model, rng);
  for (size_t k : {0u, 1u, 2u, 5u}) {
    EXPECT_NEAR(SumTopKBoostedPathProducts(tree, k), NaiveSumTopK(tree, k),
                1e-6 * std::max(1.0, NaiveSumTopK(tree, k)))
        << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PathProductsSweep, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Tree generators: structural invariants.
// ---------------------------------------------------------------------------

TEST(TreeGeneratorsTest, CompleteBinaryTreeShape) {
  Rng rng(3);
  TreeProbModel model;
  BidirectedTree tree = BuildCompleteBinaryTree(15, model, rng);
  EXPECT_EQ(tree.num_nodes(), 15u);
  // Node 0 has degree 2; internal nodes 3; leaves 1.
  EXPECT_EQ(tree.Degree(0), 2u);
  EXPECT_EQ(tree.Degree(1), 3u);
  EXPECT_EQ(tree.Degree(14), 1u);
}

TEST(TreeGeneratorsTest, RandomTreeRespectsMaxChildren) {
  Rng rng(4);
  TreeProbModel model;
  BidirectedTree tree = BuildRandomTree(200, 2, model, rng);
  // In a rooted-at-0 recursive tree with max 2 children, every node has at
  // most 3 neighbours (parent + 2 children).
  for (NodeId v = 0; v < 200; ++v) EXPECT_LE(tree.Degree(v), 3u);
}

TEST(TreeGeneratorsTest, WithTreeSeedsMarksExactlyCount) {
  Rng rng(5);
  TreeProbModel model;
  BidirectedTree tree = BuildCompleteBinaryTree(63, model, rng);
  tree = WithTreeSeeds(tree, 7, false, rng);
  EXPECT_EQ(tree.seeds().size(), 7u);
  size_t flagged = 0;
  for (NodeId v = 0; v < 63; ++v) flagged += tree.IsSeed(v);
  EXPECT_EQ(flagged, 7u);
}

TEST(TreeGeneratorsTest, ProbabilitiesFollowBetaRule) {
  Rng rng(6);
  TreeProbModel model;
  model.trivalency = false;
  model.constant_p = 0.2;
  model.beta = 3.0;
  BidirectedTree tree = BuildCompleteBinaryTree(7, model, rng);
  for (NodeId v = 0; v < 7; ++v) {
    for (const auto& e : tree.Neighbors(v)) {
      EXPECT_NEAR(e.pb_out, 1.0 - std::pow(1.0 - e.p_out, 3.0), 1e-6);
    }
  }
}

// ---------------------------------------------------------------------------
// PRR pool invariants under the max_samples engineering control.
// ---------------------------------------------------------------------------

TEST(MaxSamplesTest, CapBoundsPoolAndFlagsResult) {
  Rng rng(8);
  GraphBuilder b = BuildErdosRenyi(200, 800, rng);
  b.AssignConstantProbability(0.02);  // weak spread -> large θ demanded
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  BoostOptions opts;
  opts.k = 5;
  opts.max_samples = 2000;
  BoostResult r = PrrBoost(g, {0}, opts);
  EXPECT_LE(r.num_samples, 2000u + (1u << 16));  // one batch of slack
  EXPECT_TRUE(r.samples_capped);
}

TEST(MaxSamplesTest, UncappedRunIsNotFlagged) {
  Rng rng(9);
  GraphBuilder b = BuildErdosRenyi(60, 400, rng);
  b.AssignConstantProbability(0.2);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  BoostOptions opts;
  opts.k = 5;
  BoostResult r = PrrBoost(g, {0, 1}, opts);
  EXPECT_FALSE(r.samples_capped);
}

// ---------------------------------------------------------------------------
// Tree evaluator vs PRR machinery: a bidirected tree is also a general
// graph, so PRR-Boost and the exact tree evaluator must agree on Δ.
// ---------------------------------------------------------------------------

TEST(CrossValidationTest, PrrBoostMatchesTreeEvaluatorOnTrees) {
  Rng rng(12);
  TreeProbModel model;
  model.trivalency = false;
  model.constant_p = 0.15;
  BidirectedTree tree = BuildCompleteBinaryTree(127, model, rng);
  tree = WithTreeSeeds(tree, 6, false, rng);
  DirectedGraph g = tree.ToDirectedGraph();

  BoostOptions opts;
  opts.k = 8;
  opts.epsilon = 0.3;
  BoostResult prr = PrrBoost(g, tree.seeds(), opts);

  TreeBoostEvaluator eval(tree);
  std::vector<uint8_t> bitmap(tree.num_nodes(), 0);
  for (NodeId v : prr.best_set) bitmap[v] = 1;
  eval.Compute(bitmap);
  // PRR's Δ̂ of its own pick vs the exact value of that pick.
  EXPECT_NEAR(prr.best_estimate, eval.boost(),
              0.3 * std::max(0.5, eval.boost()));

  // And greedy on the tree should be at least as good as PRR's pick
  // (exact marginal gains beat sampled ones on the same instance).
  GreedyBoostResult greedy = GreedyBoost(tree, 8);
  EXPECT_GE(greedy.boost, 0.9 * eval.boost() - 1e-6);
}

}  // namespace
}  // namespace kboost
