// The serving-layer contract: BoostOptions::Validate as the one validation
// choke point, BoostSession::Create/Solve as the fallible concurrent query
// surface, and BoostService as the thread-safe registry of named immutable
// pools. The centerpiece is the concurrency suite: N threads issuing mixed
// (k, mode, worker-count) queries against one shared prepared pool must
// produce answers bit-identical to the same queries issued serially — this
// file runs under the ASan/UBSan job and the TSan job in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/boost_session.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/io/pool_io.h"
#include "src/serve/boost_service.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

DirectedGraph MakeTestGraph(uint64_t seed = 7) {
  Rng rng(seed);
  GraphBuilder b = BuildErdosRenyi(80, 500, rng);
  b.AssignConstantProbability(0.12);
  b.SetBoostWithBeta(2.0);
  return std::move(b).Build();
}

BoostOptions MakeOptions(size_t k) {
  BoostOptions options;
  options.k = k;
  options.seed = 11;
  options.num_threads = 2;
  return options;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Exact equality of everything a query answer is made of. The serving
/// guarantee is bit-identical results, so doubles are compared with ==.
void ExpectSameAnswer(const BoostResult& a, const BoostResult& b) {
  EXPECT_EQ(a.best_set, b.best_set);
  EXPECT_EQ(a.best_estimate, b.best_estimate);
  EXPECT_EQ(a.lb_set, b.lb_set);
  EXPECT_EQ(a.lb_mu_hat, b.lb_mu_hat);
  EXPECT_EQ(a.delta_set, b.delta_set);
  EXPECT_EQ(a.delta_delta_hat, b.delta_delta_hat);
  EXPECT_EQ(a.lb_delta_hat, b.lb_delta_hat);
  EXPECT_EQ(a.num_samples, b.num_samples);
  EXPECT_EQ(a.pool_budget, b.pool_budget);
}

TEST(BoostOptionsTest, ValidateAcceptsDefaults) {
  EXPECT_TRUE(BoostOptions().Validate().ok());
}

TEST(BoostOptionsTest, ValidateRejectsEachBadField) {
  BoostOptions o;
  o.k = 0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = BoostOptions();
  o.epsilon = 0.0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.epsilon = 1.0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = BoostOptions();
  o.ell = 0.0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = BoostOptions();
  o.num_threads = 0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.num_threads = -3;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.num_threads = ThreadPool::kMaxWorkers + 1;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.num_threads = ThreadPool::kMaxWorkers;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(BoostSessionCreateTest, RejectsInvalidArguments) {
  DirectedGraph g = MakeTestGraph();

  BoostOptions bad = MakeOptions(5);
  bad.num_threads = 0;
  EXPECT_EQ(BoostSession::Create(g, {0}, bad).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(BoostSession::Create(g, {}, MakeOptions(5)).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(
      BoostSession::Create(g, {0, 99999}, MakeOptions(5)).status().code(),
      StatusCode::kOutOfRange);
}

TEST(BoostSessionCreateTest, CreatedSessionAnswersLikeConstructed) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostSession>> created =
      BoostSession::Create(g, {0, 1}, MakeOptions(8));
  ASSERT_TRUE(created.ok());
  BoostResult via_create = (*created)->SolveForBudget(8);

  BoostSession constructed(g, {0, 1}, MakeOptions(8));
  ExpectSameAnswer(via_create, constructed.SolveForBudget(8));
}

TEST(BoostSessionTest, SetNumThreadsValidatesThroughOptions) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(5));
  EXPECT_EQ(session.set_num_threads(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.set_num_threads(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.set_num_threads(ThreadPool::kMaxWorkers + 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(session.set_num_threads(4).ok());
  EXPECT_EQ(session.options().num_threads, 4);
}

TEST(BoostSessionSolveTest, RequiresPrepare) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(5));
  SolveSpec spec;
  spec.k = 3;
  EXPECT_EQ(session.Solve(spec).status().code(),
            StatusCode::kFailedPrecondition);
  session.Prepare();
  EXPECT_TRUE(session.serving_ready());
  EXPECT_TRUE(session.Solve(spec).ok());
}

TEST(BoostSessionSolveTest, ValidatesRequests) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(5));
  session.Prepare();

  SolveSpec spec;
  spec.k = 0;
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kInvalidArgument);
  spec.k = 6;  // above the pool budget
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kInvalidArgument);
  spec.k = 3;
  spec.num_threads = -1;
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kInvalidArgument);
  spec.num_threads = ThreadPool::kMaxWorkers + 1;
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kInvalidArgument);
}

TEST(BoostSessionSolveTest, FullModeRejectedOnLbPool) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(5), /*lb_only=*/true);
  session.Prepare();
  SolveSpec spec;
  spec.k = 3;
  spec.mode = SolveMode::kFull;
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kInvalidArgument);
  spec.mode = SolveMode::kLbOnly;
  EXPECT_TRUE(session.Solve(spec).ok());
}

TEST(BoostSessionSolveTest, MatchesSerialSolveForBudget) {
  DirectedGraph g = MakeTestGraph();
  for (bool lb_only : {false, true}) {
    BoostSession session(g, {0, 1, 2}, MakeOptions(12), lb_only);
    session.Prepare();
    SolveContext context;
    for (size_t k : {1, 4, 9, 12}) {
      BoostResult serial = session.SolveForBudget(k);
      SolveSpec spec;
      spec.k = k;
      StatusOr<BoostResult> served = session.Solve(spec, &context);
      ASSERT_TRUE(served.ok());
      ExpectSameAnswer(serial, *served);
      EXPECT_TRUE(served->pool_reused);
    }
  }
}

TEST(BoostSessionSolveTest, LbOnlyModeOnFullPoolSlicesTheCachedOrder) {
  DirectedGraph g = MakeTestGraph();
  BoostSession full(g, {0, 1}, MakeOptions(10));
  full.Prepare();
  SolveSpec lb_spec;
  lb_spec.k = 6;
  lb_spec.mode = SolveMode::kLbOnly;
  StatusOr<BoostResult> fast = full.Solve(lb_spec);
  ASSERT_TRUE(fast.ok());
  // The LB-only answer of a full pool is its own cached μ̂ order: best set
  // and estimate come from the LB slice, and no Δ̂ selection ran.
  SolveSpec native_spec;
  native_spec.k = 6;
  StatusOr<BoostResult> native = full.Solve(native_spec);
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(fast->best_set, native->lb_set);
  EXPECT_EQ(fast->best_estimate, native->lb_mu_hat);
  EXPECT_TRUE(fast->delta_set.empty());
}

TEST(BoostSessionSolveTest, CancelFlagShortCircuits) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(8));
  session.Prepare();
  std::atomic<bool> cancel{true};
  SolveSpec spec;
  spec.k = 8;
  spec.cancel = &cancel;
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kCancelled);
  cancel.store(false);
  EXPECT_TRUE(session.Solve(spec).ok());
}

TEST(BoostServiceTest, RegistryLifecycle) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostService>> service_or = BoostService::Create(g);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;

  EXPECT_EQ(service.AddPool("", nullptr).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(service
                  .AddPool("a", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0}, MakeOptions(4)))
                  .ok());
  EXPECT_EQ(service
                .AddPool("a", std::make_unique<BoostSession>(
                                  g, std::vector<NodeId>{0}, MakeOptions(4)))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.num_pools(), 1u);
  EXPECT_EQ(service.PoolNames(), std::vector<std::string>{"a"});
  ASSERT_NE(service.GetPool("a"), nullptr);
  EXPECT_TRUE(service.GetPool("a")->serving_ready());

  BoostRequest request;
  request.pool = "missing";
  request.k = 2;
  EXPECT_EQ(service.Solve(request).status().code(), StatusCode::kNotFound);
  request.pool = "a";
  StatusOr<BoostResponse> response = service.Solve(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->pool, "a");
  EXPECT_TRUE(response->result.pool_reused);

  // Removal never invalidates a handle already held.
  std::shared_ptr<const BoostSession> held = service.GetPool("a");
  EXPECT_TRUE(service.RemovePool("a").ok());
  EXPECT_EQ(service.RemovePool("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.num_pools(), 0u);
  SolveSpec spec;
  spec.k = 2;
  EXPECT_TRUE(held->Solve(spec).ok());
}

TEST(BoostServiceTest, WarmStartFromSnapshotsAnswersIdentically) {
  DirectedGraph g = MakeTestGraph();
  const std::string full_path = TempPath("kboost_serve_full.pool");
  const std::string lb_path = TempPath("kboost_serve_lb.pool");

  BoostSession full(g, {0, 1, 2}, MakeOptions(10));
  ASSERT_TRUE(full.SavePool(full_path).ok());
  BoostSession lb(g, {0, 1, 2}, MakeOptions(10), /*lb_only=*/true);
  ASSERT_TRUE(lb.SavePool(lb_path).ok());

  BoostService::Options options;
  options.warm_pools = {{"full", full_path}, {"lb", lb_path}};
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  BoostService& service = **service_or;
  EXPECT_EQ(service.num_pools(), 2u);

  for (size_t k : {1, 5, 10}) {
    BoostRequest request;
    request.pool = "full";
    request.k = k;
    StatusOr<BoostResponse> served = service.Solve(request);
    ASSERT_TRUE(served.ok());
    ExpectSameAnswer(full.SolveForBudget(k), served->result);

    request.pool = "lb";
    served = service.Solve(request);
    ASSERT_TRUE(served.ok());
    ExpectSameAnswer(lb.SolveForBudget(k), served->result);
  }

  BoostService::Options missing;
  missing.warm_pools = {{"nope", TempPath("kboost_serve_missing.pool")}};
  EXPECT_FALSE(BoostService::Create(g, missing).ok());

  std::remove(full_path.c_str());
  std::remove(lb_path.c_str());
}

/// The acceptance-criterion test: pools prepared once, mixed-budget
/// mixed-mode mixed-worker-count queries from N ≥ 4 threads, every answer
/// bit-identical to the serial loop. Runs under ASan/UBSan and TSan in CI.
TEST(BoostServiceConcurrencyTest, MixedQueriesFromManyThreadsAreBitIdentical) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostService>> service_or = BoostService::Create(g);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service
                  .AddPool("full", std::make_unique<BoostSession>(
                                       g, std::vector<NodeId>{0, 1, 2},
                                       MakeOptions(16)))
                  .ok());
  ASSERT_TRUE(service
                  .AddPool("lb", std::make_unique<BoostSession>(
                                     g, std::vector<NodeId>{0, 1, 2},
                                     MakeOptions(16), /*lb_only=*/true))
                  .ok());

  // 32 queries cycling budgets 1..16, pools, modes and worker counts.
  std::vector<BoostRequest> requests;
  for (size_t i = 0; i < 32; ++i) {
    BoostRequest r;
    r.k = 1 + (i * 5) % 16;
    r.pool = (i % 3 == 0) ? "lb" : "full";
    r.mode = (r.pool == "full" && i % 4 == 1) ? SolveMode::kLbOnly
                                              : SolveMode::kAuto;
    r.num_threads = (i % 2 == 0) ? 1 : 2;
    requests.push_back(std::move(r));
  }

  std::vector<BoostResult> reference(requests.size());
  {
    SolveContext context;
    for (size_t i = 0; i < requests.size(); ++i) {
      StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      reference[i] = std::move(*r).result;
    }
  }

  constexpr size_t kThreads = 6;
  std::atomic<size_t> failures{0};
  std::vector<std::vector<BoostResult>> answers(kThreads);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      SolveContext context;
      for (size_t i = t; i < requests.size(); i += kThreads) {
        StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
        if (!r.ok()) {
          failures.fetch_add(1);
          answers[t].emplace_back();
        } else {
          answers[t].push_back(std::move(*r).result);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_EQ(failures.load(), 0u);
  for (size_t t = 0; t < kThreads; ++t) {
    size_t slot = 0;
    for (size_t i = t; i < requests.size(); i += kThreads, ++slot) {
      ExpectSameAnswer(reference[i], answers[t][slot]);
    }
  }
}

}  // namespace
}  // namespace kboost
