// The serving-layer contract: BoostOptions::Validate as the one validation
// choke point, BoostSession::Create/Solve as the fallible concurrent query
// surface, and BoostService as the thread-safe registry of named immutable
// pools. The centerpiece is the concurrency suite: N threads issuing mixed
// (k, mode, worker-count) queries against one shared prepared pool must
// produce answers bit-identical to the same queries issued serially — this
// file runs under the ASan/UBSan job and the TSan job in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/boost_session.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/io/pool_io.h"
#include "src/select/greedy.h"
#include "src/serve/boost_service.h"
#include "src/util/fault.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

DirectedGraph MakeTestGraph(uint64_t seed = 7) {
  Rng rng(seed);
  GraphBuilder b = BuildErdosRenyi(80, 500, rng);
  b.AssignConstantProbability(0.12);
  b.SetBoostWithBeta(2.0);
  return std::move(b).Build();
}

BoostOptions MakeOptions(size_t k) {
  BoostOptions options;
  options.k = k;
  options.seed = 11;
  options.num_threads = 2;
  return options;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Exact equality of everything a query answer is made of. The serving
/// guarantee is bit-identical results, so doubles are compared with ==.
void ExpectSameAnswer(const BoostResult& a, const BoostResult& b) {
  EXPECT_EQ(a.best_set, b.best_set);
  EXPECT_EQ(a.best_estimate, b.best_estimate);
  EXPECT_EQ(a.lb_set, b.lb_set);
  EXPECT_EQ(a.lb_mu_hat, b.lb_mu_hat);
  EXPECT_EQ(a.delta_set, b.delta_set);
  EXPECT_EQ(a.delta_delta_hat, b.delta_delta_hat);
  EXPECT_EQ(a.lb_delta_hat, b.lb_delta_hat);
  EXPECT_EQ(a.num_samples, b.num_samples);
  EXPECT_EQ(a.pool_budget, b.pool_budget);
}

TEST(BoostOptionsTest, ValidateAcceptsDefaults) {
  EXPECT_TRUE(BoostOptions().Validate().ok());
}

TEST(BoostOptionsTest, ValidateRejectsEachBadField) {
  BoostOptions o;
  o.k = 0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = BoostOptions();
  o.epsilon = 0.0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.epsilon = 1.0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = BoostOptions();
  o.ell = 0.0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);

  o = BoostOptions();
  o.num_threads = 0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.num_threads = -3;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.num_threads = ThreadPool::kMaxWorkers + 1;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.num_threads = ThreadPool::kMaxWorkers;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(BoostSessionCreateTest, RejectsInvalidArguments) {
  DirectedGraph g = MakeTestGraph();

  BoostOptions bad = MakeOptions(5);
  bad.num_threads = 0;
  EXPECT_EQ(BoostSession::Create(g, {0}, bad).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(BoostSession::Create(g, {}, MakeOptions(5)).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(
      BoostSession::Create(g, {0, 99999}, MakeOptions(5)).status().code(),
      StatusCode::kOutOfRange);
}

TEST(BoostSessionCreateTest, CreatedSessionAnswersLikeConstructed) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostSession>> created =
      BoostSession::Create(g, {0, 1}, MakeOptions(8));
  ASSERT_TRUE(created.ok());
  BoostResult via_create = (*created)->SolveForBudget(8);

  BoostSession constructed(g, {0, 1}, MakeOptions(8));
  ExpectSameAnswer(via_create, constructed.SolveForBudget(8));
}

TEST(BoostSessionTest, SetNumThreadsValidatesThroughOptions) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(5));
  EXPECT_EQ(session.set_num_threads(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.set_num_threads(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.set_num_threads(ThreadPool::kMaxWorkers + 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(session.set_num_threads(4).ok());
  EXPECT_EQ(session.options().num_threads, 4);
}

TEST(BoostSessionSolveTest, RequiresPrepare) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(5));
  SolveSpec spec;
  spec.k = 3;
  EXPECT_EQ(session.Solve(spec).status().code(),
            StatusCode::kFailedPrecondition);
  session.Prepare();
  EXPECT_TRUE(session.serving_ready());
  EXPECT_TRUE(session.Solve(spec).ok());
}

TEST(BoostSessionSolveTest, ValidatesRequests) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(5));
  session.Prepare();

  SolveSpec spec;
  spec.k = 0;
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kInvalidArgument);
  spec.k = 6;  // above the pool budget
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kInvalidArgument);
  spec.k = 3;
  spec.num_threads = -1;
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kInvalidArgument);
  spec.num_threads = ThreadPool::kMaxWorkers + 1;
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kInvalidArgument);
}

TEST(BoostSessionSolveTest, FullModeRejectedOnLbPool) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(5), /*lb_only=*/true);
  session.Prepare();
  SolveSpec spec;
  spec.k = 3;
  spec.mode = SolveMode::kFull;
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kInvalidArgument);
  spec.mode = SolveMode::kLbOnly;
  EXPECT_TRUE(session.Solve(spec).ok());
}

TEST(BoostSessionSolveTest, MatchesSerialSolveForBudget) {
  DirectedGraph g = MakeTestGraph();
  for (bool lb_only : {false, true}) {
    BoostSession session(g, {0, 1, 2}, MakeOptions(12), lb_only);
    session.Prepare();
    SolveContext context;
    for (size_t k : {1, 4, 9, 12}) {
      BoostResult serial = session.SolveForBudget(k);
      SolveSpec spec;
      spec.k = k;
      StatusOr<BoostResult> served = session.Solve(spec, &context);
      ASSERT_TRUE(served.ok());
      ExpectSameAnswer(serial, *served);
      EXPECT_TRUE(served->pool_reused);
    }
  }
}

TEST(BoostSessionSolveTest, LbOnlyModeOnFullPoolSlicesTheCachedOrder) {
  DirectedGraph g = MakeTestGraph();
  BoostSession full(g, {0, 1}, MakeOptions(10));
  full.Prepare();
  SolveSpec lb_spec;
  lb_spec.k = 6;
  lb_spec.mode = SolveMode::kLbOnly;
  StatusOr<BoostResult> fast = full.Solve(lb_spec);
  ASSERT_TRUE(fast.ok());
  // The LB-only answer of a full pool is its own cached μ̂ order: best set
  // and estimate come from the LB slice, and no Δ̂ selection ran.
  SolveSpec native_spec;
  native_spec.k = 6;
  StatusOr<BoostResult> native = full.Solve(native_spec);
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(fast->best_set, native->lb_set);
  EXPECT_EQ(fast->best_estimate, native->lb_mu_hat);
  EXPECT_TRUE(fast->delta_set.empty());
}

TEST(BoostSessionSolveTest, CancelFlagShortCircuits) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(8));
  session.Prepare();
  std::atomic<bool> cancel{true};
  SolveSpec spec;
  spec.k = 8;
  spec.cancel = &cancel;
  EXPECT_EQ(session.Solve(spec).status().code(), StatusCode::kCancelled);
  cancel.store(false);
  EXPECT_TRUE(session.Solve(spec).ok());
}

/// Restores a pristine injector around tests that arm fault sites, so a
/// failing assertion can't leak an armed site into later tests.
struct ScopedDisarm {
  ScopedDisarm() { FaultInjector::Global().DisarmAll(); }
  ~ScopedDisarm() { FaultInjector::Global().DisarmAll(); }
};

/// Regression for cancellation granularity: the greedy loop used to poll the
/// cancel flag only between picks, so a k=1 solve whose single pick was
/// expensive could not be cancelled at all once it started. The per-pick Δ̂
/// re-evaluation now polls every kStopStride items; a cancel that lands
/// mid-scan must abandon the scan instead of finishing it.
TEST(BoostSessionSolveTest, CancelMidPickAbandonsTheScanPromptly) {
  ScopedDisarm guard;
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(8));
  session.Prepare();

  // Each stride boundary of the first pick's 80-candidate scan stalls 30 ms
  // (3 boundaries on one worker ⇒ the pick alone takes ≥ 90 ms serial).
  FaultInjector::Plan slow;
  slow.delay_micros = 30000;
  FaultInjector::Global().Arm(FaultSite::kPickStride, slow);

  std::atomic<bool> cancel{false};
  SolveSpec spec;
  spec.k = 1;  // the case the old per-pick poll could never interrupt
  spec.num_threads = 1;
  spec.cancel = &cancel;
  StatusOr<BoostResult> solved = Status::InvalidArgument("not solved yet");
  std::thread solver([&] { solved = session.Solve(spec); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cancel.store(true);
  solver.join();

  EXPECT_EQ(solved.status().code(), StatusCode::kCancelled);
  // Prompt return: the scan aborted at an early stride boundary instead of
  // visiting all of them (3 boundaries armed; a completed scan hits 3).
  EXPECT_LT(FaultInjector::Global().hits(FaultSite::kPickStride), 3u);
}

TEST(BoostSessionSolveTest, DeadlineAlreadyPassedIsTypedBeforeAnyWork) {
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(6));
  session.Prepare();
  SolveSpec spec;
  spec.k = 4;
  spec.deadline_ns = SteadyNowNanos() - 1;
  EXPECT_EQ(session.Solve(spec).status().code(),
            StatusCode::kDeadlineExceeded);
  // The same request with headroom succeeds: the deadline is absolute, not
  // a duration.
  spec.deadline_ns = SteadyNowNanos() + 10'000'000'000;  // +10 s
  EXPECT_TRUE(session.Solve(spec).ok());
}

TEST(BoostSessionSolveTest, DeadlineExpiringMidPickIsCaughtAtTheStride) {
  ScopedDisarm guard;
  DirectedGraph g = MakeTestGraph();
  BoostSession session(g, {0, 1}, MakeOptions(8));
  session.Prepare();

  FaultInjector::Plan slow;
  slow.delay_micros = 30000;
  FaultInjector::Global().Arm(FaultSite::kPickStride, slow);

  SolveSpec spec;
  spec.k = 4;
  spec.num_threads = 1;
  // Alive at entry, dead by the first 30 ms stride boundary.
  spec.deadline_ns = SteadyNowNanos() + 5'000'000;  // +5 ms
  EXPECT_EQ(session.Solve(spec).status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(BoostServiceTest, DefaultDeadlineAppliesAndPerRequestOverrides) {
  ScopedDisarm guard;
  DirectedGraph g = MakeTestGraph();
  BoostService::Options options;
  options.default_deadline_ms = 5;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service
                  .AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0, 1},
                                    MakeOptions(6)))
                  .ok());

  // Every solve stalls 20 ms at entry — past the 5 ms service default.
  FaultInjector::Plan slow;
  slow.delay_micros = 20000;
  FaultInjector::Global().Arm(FaultSite::kSolveStart, slow);

  BoostRequest request;
  request.pool = "p";
  request.k = 4;
  StatusOr<BoostResponse> r = service.Solve(request);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

  // A per-request deadline with headroom overrides the tight default.
  request.deadline_ms = 5000;
  r = service.Solve(request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->degraded);

  // The miss was recorded as both an error and a deadline miss; the
  // successful solve as a query.
  ServiceStatsSnapshot stats = service.Stats();
  ASSERT_EQ(stats.pools.size(), 1u);
  EXPECT_EQ(stats.pools[0].queries, 1u);
  EXPECT_EQ(stats.pools[0].errors, 1u);
  EXPECT_EQ(stats.pools[0].deadline_misses, 1u);
}

TEST(BoostServiceTest, LatencyPressureDegradesAutoRequestsOnly) {
  DirectedGraph g = MakeTestGraph();
  BoostService::Options options;
  options.degrade_latency_ms = 1e-6;  // any recorded latency trips it
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service
                  .AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0, 1},
                                    MakeOptions(8)))
                  .ok());

  BoostRequest request;
  request.pool = "p";
  request.k = 6;
  // First query: the latency EWMA is still zero, so no degradation — the
  // full sandwich answer, with the Δ̂ selection populated.
  StatusOr<BoostResponse> first = service.Solve(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->degraded);
  EXPECT_FALSE(first->result.delta_set.empty());

  // Second query: the EWMA is now positive ≥ the (absurd) threshold, so the
  // kAuto request downgrades to the cached LB order.
  StatusOr<BoostResponse> degraded = service.Solve(request);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_TRUE(degraded->result.delta_set.empty());
  EXPECT_EQ(degraded->result.best_set, first->result.lb_set);
  EXPECT_EQ(degraded->result.best_estimate, first->result.lb_mu_hat);

  // Explicit modes are always honored, pressure or not.
  BoostRequest full = request;
  full.mode = SolveMode::kFull;
  StatusOr<BoostResponse> honored = service.Solve(full);
  ASSERT_TRUE(honored.ok());
  EXPECT_FALSE(honored->degraded);
  EXPECT_FALSE(honored->result.delta_set.empty());

  EXPECT_EQ(service.Stats().pools[0].degraded, 1u);
}

TEST(BoostServiceTest, CreateValidatesOverloadOptions) {
  DirectedGraph g = MakeTestGraph();
  BoostService::Options bad;
  bad.degrade_load_factor = 1.5;
  EXPECT_EQ(BoostService::Create(g, bad).status().code(),
            StatusCode::kInvalidArgument);
  bad = BoostService::Options();
  bad.degrade_load_factor = -0.1;
  EXPECT_EQ(BoostService::Create(g, bad).status().code(),
            StatusCode::kInvalidArgument);
  bad = BoostService::Options();
  bad.degrade_latency_ms = -1.0;
  EXPECT_EQ(BoostService::Create(g, bad).status().code(),
            StatusCode::kInvalidArgument);
  bad = BoostService::Options();
  bad.snapshot_retry.max_attempts = 0;
  EXPECT_EQ(BoostService::Create(g, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BoostServiceTest, RegistryLifecycle) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostService>> service_or = BoostService::Create(g);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;

  EXPECT_EQ(service.AddPool("", nullptr).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(service
                  .AddPool("a", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0}, MakeOptions(4)))
                  .ok());
  EXPECT_EQ(service
                .AddPool("a", std::make_unique<BoostSession>(
                                  g, std::vector<NodeId>{0}, MakeOptions(4)))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.num_pools(), 1u);
  EXPECT_EQ(service.PoolNames(), std::vector<std::string>{"a"});
  ASSERT_NE(service.GetPool("a"), nullptr);
  EXPECT_TRUE(service.GetPool("a")->serving_ready());

  BoostRequest request;
  request.pool = "missing";
  request.k = 2;
  EXPECT_EQ(service.Solve(request).status().code(), StatusCode::kNotFound);
  request.pool = "a";
  StatusOr<BoostResponse> response = service.Solve(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->pool, "a");
  EXPECT_TRUE(response->result.pool_reused);

  // Removal never invalidates a handle already held.
  std::shared_ptr<const BoostSession> held = service.GetPool("a");
  EXPECT_TRUE(service.RemovePool("a").ok());
  EXPECT_EQ(service.RemovePool("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.num_pools(), 0u);
  SolveSpec spec;
  spec.k = 2;
  EXPECT_TRUE(held->Solve(spec).ok());
}

TEST(BoostServiceTest, WarmStartFromSnapshotsAnswersIdentically) {
  DirectedGraph g = MakeTestGraph();
  const std::string full_path = TempPath("kboost_serve_full.pool");
  const std::string lb_path = TempPath("kboost_serve_lb.pool");

  BoostSession full(g, {0, 1, 2}, MakeOptions(10));
  ASSERT_TRUE(full.SavePool(full_path).ok());
  BoostSession lb(g, {0, 1, 2}, MakeOptions(10), /*lb_only=*/true);
  ASSERT_TRUE(lb.SavePool(lb_path).ok());

  BoostService::Options options;
  options.warm_pools = {{"full", full_path}, {"lb", lb_path}};
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  BoostService& service = **service_or;
  EXPECT_EQ(service.num_pools(), 2u);

  for (size_t k : {1, 5, 10}) {
    BoostRequest request;
    request.pool = "full";
    request.k = k;
    StatusOr<BoostResponse> served = service.Solve(request);
    ASSERT_TRUE(served.ok());
    ExpectSameAnswer(full.SolveForBudget(k), served->result);

    request.pool = "lb";
    served = service.Solve(request);
    ASSERT_TRUE(served.ok());
    ExpectSameAnswer(lb.SolveForBudget(k), served->result);
  }

  BoostService::Options missing;
  missing.warm_pools = {{"nope", TempPath("kboost_serve_missing.pool")}};
  EXPECT_FALSE(BoostService::Create(g, missing).ok());

  std::remove(full_path.c_str());
  std::remove(lb_path.c_str());
}

TEST(BoostServiceTest, AddPoolAppliesServiceThreadDefault) {
  // Regression: AddPool used to skip the default_num_threads_ override that
  // LoadPool applied, so directly-registered sessions ignored
  // Options::num_threads. All three registration paths must apply it.
  DirectedGraph g = MakeTestGraph();
  BoostService::Options options;
  options.num_threads = 3;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, options);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;

  // MakeOptions builds sessions with num_threads = 2; the service default
  // must win on AddPool...
  ASSERT_TRUE(service
                  .AddPool("a", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0, 1},
                                    MakeOptions(4)))
                  .ok());
  EXPECT_EQ(service.GetPool("a")->options().num_threads, 3);
  // ...and on RefreshPool replacements.
  ASSERT_TRUE(service
                  .RefreshPool("a", std::make_unique<BoostSession>(
                                        g, std::vector<NodeId>{0, 1},
                                        MakeOptions(4)))
                  .ok());
  EXPECT_EQ(service.GetPool("a")->options().num_threads, 3);

  // LoadPool keeps applying it (it always did).
  const std::string path = TempPath("kboost_serve_threads.pool");
  BoostSession to_save(g, {0, 1}, MakeOptions(4));
  ASSERT_TRUE(to_save.SavePool(path).ok());
  ASSERT_TRUE(service.LoadPool("b", path).ok());
  EXPECT_EQ(service.GetPool("b")->options().num_threads, 3);
  std::remove(path.c_str());
}

TEST(BoostServiceLifecycleTest, RefreshPoolValidatesItsArguments) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostService>> service_or = BoostService::Create(g);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;

  // A refresh replaces; it never creates.
  EXPECT_EQ(service
                .RefreshPool("absent", std::make_unique<BoostSession>(
                                           g, std::vector<NodeId>{0},
                                           MakeOptions(4)))
                .code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(service
                  .AddPool("a", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0}, MakeOptions(4)))
                  .ok());
  EXPECT_EQ(service.RefreshPool("a", nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.RefreshPoolFromSnapshot("a", TempPath("kboost_nope.pool"))
                .code(),
            StatusCode::kIoError);
  // A failed refresh leaves the registered pool untouched.
  EXPECT_NE(service.GetPool("a"), nullptr);
  BoostRequest request;
  request.pool = "a";
  request.k = 2;
  EXPECT_TRUE(service.Solve(request).ok());
}

TEST(BoostServiceLifecycleTest, RefreshSwapIsBitIdenticalToFreshService) {
  // The acceptance criterion: after RefreshPool, answers must be
  // bit-identical to a service freshly built with the replacement session's
  // options — a hot-swap is indistinguishable from a cold start.
  DirectedGraph g = MakeTestGraph();
  BoostOptions fresh_options = MakeOptions(10);
  fresh_options.seed = 77;  // the replacement pool differs from the original

  StatusOr<std::unique_ptr<BoostService>> refreshed_or =
      BoostService::Create(g);
  ASSERT_TRUE(refreshed_or.ok());
  BoostService& refreshed = **refreshed_or;
  ASSERT_TRUE(refreshed
                  .AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0, 1, 2},
                                    MakeOptions(10)))
                  .ok());
  const uint64_t version_before = refreshed.PoolVersion("p");
  ASSERT_TRUE(refreshed
                  .RefreshPool("p", std::make_unique<BoostSession>(
                                        g, std::vector<NodeId>{0, 1, 2},
                                        fresh_options))
                  .ok());
  EXPECT_GT(refreshed.PoolVersion("p"), version_before);

  StatusOr<std::unique_ptr<BoostService>> cold_or = BoostService::Create(g);
  ASSERT_TRUE(cold_or.ok());
  BoostService& cold = **cold_or;
  ASSERT_TRUE(cold.AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0, 1, 2},
                                    fresh_options))
                  .ok());

  for (size_t k : {1, 4, 10}) {
    BoostRequest request;
    request.pool = "p";
    request.k = k;
    StatusOr<BoostResponse> a = refreshed.Solve(request);
    StatusOr<BoostResponse> b = cold.Solve(request);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameAnswer(a->result, b->result);
  }
}

TEST(BoostServiceLifecycleTest, ResponsesCarryMonotonicVersions) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostService>> service_or = BoostService::Create(g);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  EXPECT_EQ(service.PoolVersion("p"), 0u);
  ASSERT_TRUE(service
                  .AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0}, MakeOptions(4)))
                  .ok());

  BoostRequest request;
  request.pool = "p";
  request.k = 2;
  uint64_t last = 0;
  for (int round = 0; round < 3; ++round) {
    StatusOr<BoostResponse> r = service.Solve(request);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->pool_version, service.PoolVersion("p"));
    EXPECT_GT(r->pool_version, last);
    last = r->pool_version;
    ASSERT_TRUE(service
                    .RefreshPool("p", std::make_unique<BoostSession>(
                                          g, std::vector<NodeId>{0},
                                          MakeOptions(4)))
                    .ok());
  }
  // Re-registering a removed name keeps versions strictly increasing (the
  // counter is service-wide, never per-name).
  ASSERT_TRUE(service.RemovePool("p").ok());
  ASSERT_TRUE(service
                  .AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0}, MakeOptions(4)))
                  .ok());
  EXPECT_GT(service.PoolVersion("p"), last);
}

TEST(BoostServiceLifecycleTest, StatsReportTrafficVersionsAndTimestamps) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostService>> service_or = BoostService::Create(g);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service
                  .AddPool("p", std::make_unique<BoostSession>(
                                    g, std::vector<NodeId>{0, 1},
                                    MakeOptions(6)))
                  .ok());

  BoostRequest good;
  good.pool = "p";
  good.k = 3;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(service.Solve(good).ok());
  BoostRequest bad = good;
  bad.k = 99;  // above the pool budget -> InvalidArgument, counted per-pool
  EXPECT_FALSE(service.Solve(bad).ok());
  BoostRequest missing = good;
  missing.pool = "nope";  // NotFound, counted service-wide
  EXPECT_FALSE(service.Solve(missing).ok());

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.not_found, 1u);
  ASSERT_EQ(stats.pools.size(), 1u);
  const PoolStatsSnapshot p = stats.pools[0];  // copy: stats is reassigned
  EXPECT_EQ(p.pool, "p");
  EXPECT_EQ(p.queries, 5u);
  EXPECT_EQ(p.errors, 1u);
  EXPECT_EQ(p.refreshes, 0u);
  EXPECT_GT(p.version, 0u);
  EXPECT_GT(p.registered_at, 0.0);
  EXPECT_EQ(p.refreshed_at, 0.0);
  EXPECT_GT(p.latency_mean_ms, 0.0);
  EXPECT_GT(p.latency_p50_ms, 0.0);
  EXPECT_GE(p.latency_p95_ms, p.latency_p50_ms);

  ASSERT_TRUE(service
                  .RefreshPool("p", std::make_unique<BoostSession>(
                                        g, std::vector<NodeId>{0, 1},
                                        MakeOptions(6)))
                  .ok());
  stats = service.Stats();
  ASSERT_EQ(stats.pools.size(), 1u);
  // Traffic history belongs to the NAME: a refresh keeps the counters.
  EXPECT_EQ(stats.pools[0].queries, 5u);
  EXPECT_EQ(stats.pools[0].refreshes, 1u);
  EXPECT_GT(stats.pools[0].refreshed_at, 0.0);
  EXPECT_GT(stats.pools[0].version, p.version);
}

/// The lifecycle acceptance-criterion test: 4 client threads solve against
/// a pool being hot-swapped (and other pools being added/removed) and must
/// never observe NotFound, a version that goes backward, or an answer that
/// is not bit-identical to the build its stamped version names. Runs under
/// ASan/UBSan and TSan in CI.
TEST(BoostServiceLifecycleTest, RefreshUnderConcurrentSolvesNeverNotFound) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostService>> service_or = BoostService::Create(g);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;

  // Two alternating pool builds; different rng seeds give different pools,
  // so an answer reveals which build produced it.
  const std::vector<NodeId> seeds = {0, 1};
  BoostOptions opts_a = MakeOptions(8);
  BoostOptions opts_b = MakeOptions(8);
  opts_b.seed = 99;

  // Per-build reference answers, solved serially on private sessions.
  BoostSession ref_a(g, seeds, opts_a);
  BoostSession ref_b(g, seeds, opts_b);
  const BoostResult expect_a = ref_a.SolveForBudget(3);
  const BoostResult expect_b = ref_b.SolveForBudget(3);
  const auto same_bits = [](const BoostResult& x, const BoostResult& y) {
    return x.best_set == y.best_set && x.best_estimate == y.best_estimate &&
           x.lb_set == y.lb_set && x.lb_mu_hat == y.lb_mu_hat &&
           x.delta_set == y.delta_set &&
           x.delta_delta_hat == y.delta_delta_hat;
  };

  ASSERT_TRUE(service
                  .AddPool("hot", std::make_unique<BoostSession>(g, seeds,
                                                                 opts_a))
                  .ok());
  // version -> was that build opts_b? Written only by this (main) thread,
  // read by everyone after the join.
  std::map<uint64_t, bool> version_is_b;
  version_is_b[service.PoolVersion("hot")] = false;

  struct Observation {
    uint64_t version;
    bool matched_a;
    bool matched_b;
  };
  constexpr size_t kClients = 4;
  std::vector<std::vector<Observation>> observed(kClients);
  std::atomic<bool> stop{false};
  std::atomic<size_t> not_found{0};
  std::atomic<size_t> other_failures{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      SolveContext context;
      BoostRequest request;
      request.pool = "hot";
      request.k = 3;
      while (!stop.load(std::memory_order_relaxed)) {
        StatusOr<BoostResponse> r = service.Solve(request, &context);
        if (!r.ok()) {
          (r.status().code() == StatusCode::kNotFound ? not_found
                                                      : other_failures)
              .fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        observed[t].push_back({r->pool_version,
                               same_bits(r->result, expect_a),
                               same_bits(r->result, expect_b)});
      }
    });
  }

  // The lifecycle churn, all from this thread: the hot pool is refreshed 4
  // times (alternating builds) while unrelated pools are added, queried and
  // removed — AddPool/RefreshPool/RemovePool racing live Solve() traffic.
  for (int round = 0; round < 4; ++round) {
    const bool use_b = (round % 2 == 0);
    ASSERT_TRUE(service
                    .AddPool("churn", std::make_unique<BoostSession>(
                                          g, seeds, MakeOptions(4)))
                    .ok());
    ASSERT_TRUE(service
                    .RefreshPool("hot", std::make_unique<BoostSession>(
                                            g, seeds, use_b ? opts_b : opts_a))
                    .ok());
    version_is_b[service.PoolVersion("hot")] = use_b;
    ASSERT_TRUE(service.RemovePool("churn").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& c : clients) c.join();

  // The swap guarantee: the name never came back NotFound and nothing else
  // failed either.
  EXPECT_EQ(not_found.load(), 0u);
  EXPECT_EQ(other_failures.load(), 0u);

  size_t total = 0;
  for (size_t t = 0; t < kClients; ++t) {
    uint64_t last_version = 0;
    for (const Observation& o : observed[t]) {
      // Versions a single client observes never go backward.
      EXPECT_GE(o.version, last_version);
      last_version = o.version;
      // Every answer is bit-identical to the build its version names.
      auto it = version_is_b.find(o.version);
      ASSERT_NE(it, version_is_b.end()) << "unknown version " << o.version;
      EXPECT_TRUE(it->second ? o.matched_b : o.matched_a)
          << "version " << o.version << " answered with the wrong pool bits";
      ++total;
    }
  }
  EXPECT_GT(total, 0u);
}

/// The acceptance-criterion test: pools prepared once, mixed-budget
/// mixed-mode mixed-worker-count queries from N ≥ 4 threads, every answer
/// bit-identical to the serial loop. Runs under ASan/UBSan and TSan in CI.
TEST(BoostServiceConcurrencyTest, MixedQueriesFromManyThreadsAreBitIdentical) {
  DirectedGraph g = MakeTestGraph();
  StatusOr<std::unique_ptr<BoostService>> service_or = BoostService::Create(g);
  ASSERT_TRUE(service_or.ok());
  BoostService& service = **service_or;
  ASSERT_TRUE(service
                  .AddPool("full", std::make_unique<BoostSession>(
                                       g, std::vector<NodeId>{0, 1, 2},
                                       MakeOptions(16)))
                  .ok());
  ASSERT_TRUE(service
                  .AddPool("lb", std::make_unique<BoostSession>(
                                     g, std::vector<NodeId>{0, 1, 2},
                                     MakeOptions(16), /*lb_only=*/true))
                  .ok());

  // 32 queries cycling budgets 1..16, pools, modes and worker counts.
  std::vector<BoostRequest> requests;
  for (size_t i = 0; i < 32; ++i) {
    BoostRequest r;
    r.k = 1 + (i * 5) % 16;
    r.pool = (i % 3 == 0) ? "lb" : "full";
    r.mode = (r.pool == "full" && i % 4 == 1) ? SolveMode::kLbOnly
                                              : SolveMode::kAuto;
    r.num_threads = (i % 2 == 0) ? 1 : 2;
    requests.push_back(std::move(r));
  }

  std::vector<BoostResult> reference(requests.size());
  {
    SolveContext context;
    for (size_t i = 0; i < requests.size(); ++i) {
      StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      reference[i] = std::move(*r).result;
    }
  }

  constexpr size_t kThreads = 6;
  std::atomic<size_t> failures{0};
  std::vector<std::vector<BoostResult>> answers(kThreads);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      SolveContext context;
      for (size_t i = t; i < requests.size(); i += kThreads) {
        StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
        if (!r.ok()) {
          failures.fetch_add(1);
          answers[t].emplace_back();
        } else {
          answers[t].push_back(std::move(*r).result);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_EQ(failures.load(), 0u);
  for (size_t t = 0; t < kThreads; ++t) {
    size_t slot = 0;
    for (size_t i = t; i < requests.size(); i += kThreads, ++slot) {
      ExpectSameAnswer(reference[i], answers[t][slot]);
    }
  }
}

}  // namespace
}  // namespace kboost
