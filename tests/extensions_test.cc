#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/baselines/mc_greedy.h"
#include "src/core/prr_boost.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/sim/boost_model.h"
#include "src/sim/lt_model.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

// ---------------------------------------------------------------------------
// Outgoing-boost semantics (Sec. III-A variant).
// ---------------------------------------------------------------------------

TEST(BoostSemanticsTest, OutgoingVariantBoostsTailNotHead) {
  // s(0) -> v0(1) -> v1(2), Fig. 1 probabilities. Under the outgoing
  // variant, boosting v0 only strengthens edge v0 -> v1:
  //   σ = 1 + 0.2 + 0.2*0.2 = 1.24.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.2, 0.4);
  b.AddEdge(1, 2, 0.1, 0.2);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> s = {0};
  EXPECT_NEAR(ExactBoostedSpread(g, s, {1},
                                 BoostSemantics::kBoostedAreMoreInfluential),
              1.24, 1e-6);
  // Boosting the seed itself strengthens s -> v0:
  //   σ = 1 + 0.4 + 0.4*0.1 = 1.44.
  EXPECT_NEAR(ExactBoostedSpread(g, s, {0},
                                 BoostSemantics::kBoostedAreMoreInfluential),
              1.44, 1e-6);
}

TEST(BoostSemanticsTest, MonteCarloMatchesExactForOutgoingVariant) {
  Rng rng(5);
  GraphBuilder b = BuildErdosRenyi(8, 14, rng);
  b.AssignConstantProbability(0.25);
  b.SetBoostWithBeta(3.0);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> seeds = {0};
  const std::vector<NodeId> boost = {1, 2};
  const double exact = ExactBoost(
      g, seeds, boost, BoostSemantics::kBoostedAreMoreInfluential);
  SimulationOptions opts;
  opts.num_simulations = 150000;
  opts.num_threads = 4;
  BoostEstimate mc = EstimateBoost(
      g, seeds, boost, opts, BoostSemantics::kBoostedAreMoreInfluential);
  EXPECT_NEAR(mc.boost, exact, 6 * mc.boost_stderr + 1e-3);
}

TEST(BoostSemanticsTest, VariantsDifferOnAsymmetricInstances) {
  // Boosting a node with strong out-gap but no in-gap only matters under
  // the outgoing variant.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5, 0.5);  // no incoming gap at node 1
  b.AddEdge(1, 2, 0.1, 0.9);  // huge outgoing gap from node 1
  DirectedGraph g = std::move(b).Build();
  const double incoming = ExactBoost(g, {0}, {1});
  const double outgoing = ExactBoost(
      g, {0}, {1}, BoostSemantics::kBoostedAreMoreInfluential);
  EXPECT_NEAR(incoming, 0.0, 1e-9);
  EXPECT_GT(outgoing, 0.3);
}

// ---------------------------------------------------------------------------
// Linear Threshold substrate (the paper's future-work direction).
// ---------------------------------------------------------------------------

TEST(LtModelTest, ValidityCheckRejectsOverweightedNodes) {
  GraphBuilder b(3);
  b.AddEdge(0, 2, 0.8, 0.9).AddEdge(1, 2, 0.8, 0.9);
  DirectedGraph g = std::move(b).Build();
  EXPECT_FALSE(IsValidLtGraph(g));
  GraphBuilder ok(3);
  ok.AddEdge(0, 2, 0.4, 0.5).AddEdge(1, 2, 0.4, 0.5);
  EXPECT_TRUE(IsValidLtGraph(std::move(ok).Build()));
}

TEST(LtModelTest, ExactMatchesHandComputationOnPath) {
  // 0 -> 1 -> 2, weights 0.6 and 0.5, seed {0}:
  // σ = 1 + 0.6 + 0.6*0.5 = 1.9 (LT on a path = products, like IC).
  GraphBuilder b = BuildDirectedPath(3);
  b.AssignConstantProbability(0.6);
  DirectedGraph g = std::move(b).Build();
  EXPECT_NEAR(ExactLtSpread(g, {0}), 1 + 0.6 + 0.36, 1e-6);
}

TEST(LtModelTest, MonteCarloMatchesExact) {
  Rng rng(9);
  GraphBuilder b = BuildErdosRenyi(7, 12, rng);
  b.AssignWeightedCascadeProbabilities();  // guarantees Σ in-weights = 1
  DirectedGraph g = std::move(b).Build();
  ASSERT_TRUE(IsValidLtGraph(g));
  const double exact = ExactLtSpread(g, {0, 1});
  SimulationOptions opts;
  opts.num_simulations = 200000;
  opts.num_threads = 4;
  SpreadEstimate mc = EstimateLtSpread(g, {0, 1}, opts);
  EXPECT_NEAR(mc.mean, exact, 6 * mc.stderr_mean + 1e-3);
}

TEST(LtModelTest, BoostingIncreasesLtSpread) {
  Rng rng(11);
  GraphBuilder b = BuildErdosRenyi(40, 160, rng);
  b.AssignWeightedCascadeProbabilities();
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  SimulationOptions opts;
  opts.num_simulations = 20000;
  BoostEstimate e = EstimateLtBoost(g, {0, 1}, {5, 6, 7, 8}, opts);
  EXPECT_GE(e.boost, 0.0);
  EXPECT_GE(e.boosted_spread, e.base_spread - 1e-9);
}

TEST(LtModelTest, CoupledWorldsAreDeterministic) {
  Rng rng(13);
  GraphBuilder b = BuildErdosRenyi(30, 100, rng);
  b.AssignWeightedCascadeProbabilities();
  DirectedGraph g = std::move(b).Build();
  SimScratch scratch;
  const size_t a = SimulateLtOnce(g, {0}, 777, nullptr, scratch);
  const size_t c = SimulateLtOnce(g, {0}, 777, nullptr, scratch);
  EXPECT_EQ(a, c);
}

// ---------------------------------------------------------------------------
// Monte-Carlo greedy comparator.
// ---------------------------------------------------------------------------

TEST(McGreedyTest, FindsTheObviousBoost) {
  // Fig. 1: the only sensible single boost is v0.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.2, 0.4);
  b.AddEdge(1, 2, 0.1, 0.2);
  DirectedGraph g = std::move(b).Build();
  McGreedyOptions opts;
  opts.k = 1;
  opts.num_simulations = 20000;
  McGreedyResult r = McGreedyBoost(g, {0}, opts);
  ASSERT_EQ(r.boost_set.size(), 1u);
  EXPECT_EQ(r.boost_set[0], 1u);
}

TEST(McGreedyTest, AgreesWithPrrBoostOnSmallGraphs) {
  Rng rng(21);
  GraphBuilder b = BuildErdosRenyi(25, 120, rng);
  b.AssignConstantProbability(0.2);
  b.SetBoostWithBeta(3.0);
  DirectedGraph g = std::move(b).Build();
  const std::vector<NodeId> seeds = {0, 1};

  McGreedyOptions mopts;
  mopts.k = 4;
  mopts.num_simulations = 30000;
  McGreedyResult mc = McGreedyBoost(g, seeds, mopts);

  BoostOptions bopts;
  bopts.k = 4;
  bopts.epsilon = 0.3;
  BoostResult prr = PrrBoost(g, seeds, bopts);

  SimulationOptions sim;
  sim.num_simulations = 60000;
  const double v_mc = EstimateBoost(g, seeds, mc.boost_set, sim).boost;
  const double v_prr = EstimateBoost(g, seeds, prr.best_set, sim).boost;
  // Both are greedy maximizers of the same objective; they should land
  // within a few percent of each other.
  EXPECT_NEAR(v_mc, v_prr, 0.15 * std::max(v_mc, v_prr) + 0.05);
}

TEST(McGreedyTest, RespectsBudgetAndSeeds) {
  Rng rng(22);
  GraphBuilder b = BuildErdosRenyi(20, 80, rng);
  b.AssignConstantProbability(0.2);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  McGreedyOptions opts;
  opts.k = 5;
  opts.num_simulations = 5000;
  McGreedyResult r = McGreedyBoost(g, {0, 1, 2}, opts);
  EXPECT_LE(r.boost_set.size(), 5u);
  for (NodeId v : r.boost_set) EXPECT_GT(v, 2u);
}

}  // namespace
}  // namespace kboost
