// Edge cases and degenerate-input behaviour: the situations a downstream
// user hits first when wiring the library into their own pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/core/prr_boost.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/sim/boost_model.h"
#include "src/tree/bidirected_tree.h"
#include "src/tree/dp_boost.h"
#include "src/tree/tree_evaluator.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

TEST(EdgeCasesTest, NoBoostHeadroomMeansZeroBoost) {
  // p' == p everywhere: boosting can never help; Δ̂ must be 0 and the
  // Monte-Carlo check agrees exactly (coupled worlds are identical).
  Rng rng(1);
  GraphBuilder b = BuildErdosRenyi(50, 250, rng);
  b.AssignConstantProbability(0.2);  // p_boost defaults to p
  DirectedGraph g = std::move(b).Build();
  BoostOptions opts;
  opts.k = 5;
  BoostResult r = PrrBoost(g, {0, 1}, opts);
  EXPECT_DOUBLE_EQ(r.best_estimate, 0.0);
  EXPECT_EQ(r.num_boostable, 0u);  // every PRR-graph is activated/hopeless
  BoostEstimate mc = EstimateBoost(g, {0, 1}, r.best_set, {});
  EXPECT_DOUBLE_EQ(mc.boost, 0.0);
}

TEST(EdgeCasesTest, IsolatedSeedHasUnitSpread) {
  GraphBuilder b(5);
  b.AddEdge(1, 2, 0.5, 0.9);  // a component not touching the seed
  b.AddEdge(2, 3, 0.5, 0.9);
  b.AddEdge(3, 1, 0.5, 0.9);
  DirectedGraph g = std::move(b).Build();
  EXPECT_DOUBLE_EQ(ExactBoostedSpread(g, {0}, {2}), 1.0);
  BoostOptions opts;
  opts.k = 2;
  BoostResult r = PrrBoost(g, {0}, opts);
  EXPECT_DOUBLE_EQ(r.best_estimate, 0.0);
}

TEST(EdgeCasesTest, BoostingTheWholeGraphEqualsAllBoostedWorld) {
  Rng rng(2);
  GraphBuilder b = BuildErdosRenyi(8, 14, rng);
  b.AssignConstantProbability(0.2);
  b.SetBoostWithBeta(4.0);
  DirectedGraph g = std::move(b).Build();
  std::vector<NodeId> everyone;
  for (NodeId v = 1; v < 8; ++v) everyone.push_back(v);
  // Exact value with B = V\S equals the spread of the graph with p := p'
  // on every edge whose head is a non-seed.
  GraphBuilder b2(8);
  for (NodeId u = 0; u < 8; ++u) {
    for (const auto& e : g.OutEdges(u)) {
      const double p = (e.to == 0) ? e.p : e.p_boost;
      b2.AddEdge(u, e.to, p, p);
    }
  }
  DirectedGraph g_all = std::move(b2).Build();
  EXPECT_NEAR(ExactBoostedSpread(g, {0}, everyone), ExactSpread(g_all, {0}),
              1e-9);
}

TEST(EdgeCasesTest, KLargerThanGraphIsHandled) {
  Rng rng(3);
  GraphBuilder b = BuildErdosRenyi(12, 40, rng);
  b.AssignConstantProbability(0.3);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  BoostOptions opts;
  opts.k = 50;  // more than the number of non-seeds
  BoostResult r = PrrBoost(g, {0}, opts);
  EXPECT_LE(r.best_set.size(), 11u);
  // All returned nodes distinct.
  std::vector<NodeId> sorted = r.best_set;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(EdgeCasesTest, DeterministicEdgesAreNeverBlocked) {
  // p = 1 edges stay live in every PRR world; the whole component of the
  // seed is always activated, so nothing is boostable.
  GraphBuilder b = BuildDirectedPath(6);
  b.AssignConstantProbability(1.0);
  DirectedGraph g = std::move(b).Build();
  BoostOptions opts;
  opts.k = 2;
  BoostResult r = PrrBoost(g, {0}, opts);
  EXPECT_EQ(r.num_boostable, 0u);
  EXPECT_EQ(r.num_hopeless, 0u);  // every sample is "activated"
}

TEST(EdgeCasesTest, TwoNodeTreeEvaluator) {
  TreeBuilder b(2);
  b.AddEdge(0, 1, 0.4, 0.8, 0.3, 0.6);
  b.SetSeed(0);
  BidirectedTree tree = std::move(b).Build();
  TreeBoostEvaluator eval(tree);
  EXPECT_NEAR(eval.base_spread(), 1.4, 1e-6);
  std::vector<uint8_t> boost = {0, 1};
  eval.Compute(boost);
  EXPECT_NEAR(eval.boosted_spread(), 1.8, 1e-6);
}

TEST(EdgeCasesTest, TreeWithAllSeedsHasNothingToBoost) {
  TreeBuilder b(3);
  b.AddEdge(0, 1, 0.5, 0.9);
  b.AddEdge(1, 2, 0.5, 0.9);
  b.SetSeeds({0, 1, 2});
  BidirectedTree tree = std::move(b).Build();
  GreedyBoostResult greedy = GreedyBoost(tree, 2);
  EXPECT_TRUE(greedy.boost_set.empty());
  EXPECT_DOUBLE_EQ(greedy.boost, 0.0);
  DpBoostOptions opts;
  opts.k = 2;
  DpBoostResult dp = DpBoost(tree, opts);
  EXPECT_NEAR(dp.boost, 0.0, 1e-9);
}

TEST(EdgeCasesTest, PathTreeExercisesChainNodesInDp) {
  // A path tree makes every internal node a d==1 "chain" node in DP-Boost.
  TreeBuilder b(6);
  for (NodeId v = 0; v + 1 < 6; ++v) b.AddEdge(v, v + 1, 0.3, 0.6);
  b.SetSeed(0);
  BidirectedTree tree = std::move(b).Build();

  TreeBoostEvaluator eval(tree);
  double opt = 0.0;
  for (uint32_t mask = 0; mask < (1u << 6); ++mask) {
    if (__builtin_popcount(mask) > 2 || (mask & 1)) continue;
    std::vector<uint8_t> bitmap(6, 0);
    for (NodeId v = 1; v < 6; ++v) bitmap[v] = (mask >> v) & 1;
    eval.Compute(bitmap);
    opt = std::max(opt, eval.boost());
  }

  DpBoostOptions opts;
  opts.k = 2;
  opts.epsilon = 0.25;
  DpBoostResult dp = DpBoost(tree, opts);
  EXPECT_GE(dp.boost, (1 - 0.25) * opt - 1e-9);
  EXPECT_LE(dp.boost, opt + 1e-9);
}

TEST(EdgeCasesTest, StarTreeExercisesWideNodesInDp) {
  // A star makes the hub a d==7 wide node (intermediate grids in the
  // helper tables).
  TreeBuilder b(8);
  for (NodeId leaf = 1; leaf < 8; ++leaf) b.AddEdge(0, leaf, 0.3, 0.6);
  b.SetSeed(1);
  BidirectedTree tree = std::move(b).Build();

  TreeBoostEvaluator eval(tree);
  double opt = 0.0;
  for (uint32_t mask = 0; mask < (1u << 8); ++mask) {
    if (__builtin_popcount(mask) > 2 || (mask & 2)) continue;
    std::vector<uint8_t> bitmap(8, 0);
    for (NodeId v = 0; v < 8; ++v) {
      if (v != 1) bitmap[v] = (mask >> v) & 1;
    }
    eval.Compute(bitmap);
    opt = std::max(opt, eval.boost());
  }

  DpBoostOptions opts;
  opts.k = 2;
  opts.epsilon = 0.25;
  DpBoostResult dp = DpBoost(tree, opts);
  EXPECT_GE(dp.boost, (1 - 0.25) * opt - 1e-9);
  EXPECT_LE(dp.boost, opt + 1e-9);
}

TEST(EdgeCasesTest, SelfLoopsAreHarmless) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5, 0.9);
  b.AddEdge(1, 1, 0.5, 0.9);  // self loop
  b.AddEdge(1, 2, 0.5, 0.9);
  DirectedGraph g = std::move(b).Build();
  BoostOptions opts;
  opts.k = 2;
  BoostResult r = PrrBoost(g, {0}, opts);
  BoostEstimate mc = EstimateBoost(g, {0}, r.best_set, {});
  EXPECT_GE(mc.boost, 0.0);
}

TEST(EdgeCasesTest, ParallelEdgesCompose) {
  // Two parallel edges act as two independent influence chances.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.5, 0.5);
  b.AddEdge(0, 1, 0.5, 0.5);
  DirectedGraph g = std::move(b).Build();
  EXPECT_NEAR(ExactSpread(g, {0}), 1.0 + (1.0 - 0.25), 1e-9);
}

}  // namespace
}  // namespace kboost
