#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/baselines/high_degree.h"
#include "src/baselines/more_seeds.h"
#include "src/baselines/pagerank.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/sim/ic_model.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

TEST(PageRankTest, ScoresSumToOne) {
  Rng rng(1);
  GraphBuilder b = BuildErdosRenyi(100, 600, rng);
  b.AssignConstantProbability(0.2);
  DirectedGraph g = std::move(b).Build();
  std::vector<double> pr = InfluencePageRank(g);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-6);
  for (double x : pr) EXPECT_GT(x, 0.0);
}

TEST(PageRankTest, InfluencerOutranksFollowers) {
  // Star hub influences many leaves; leaves "vote" for the hub, so the hub
  // must hold the top score.
  GraphBuilder b = BuildOutStar(20);
  b.AssignConstantProbability(0.5);
  DirectedGraph g = std::move(b).Build();
  std::vector<double> pr = InfluencePageRank(g);
  for (NodeId leaf = 1; leaf <= 20; ++leaf) EXPECT_GT(pr[0], pr[leaf]);
}

TEST(PageRankTest, BoostExcludesSeedsAndRespectsK) {
  Rng rng(2);
  GraphBuilder b = BuildErdosRenyi(50, 300, rng);
  b.AssignConstantProbability(0.2);
  DirectedGraph g = std::move(b).Build();
  std::vector<NodeId> picks = PageRankBoost(g, {0, 1}, 10);
  EXPECT_EQ(picks.size(), 10u);
  for (NodeId v : picks) EXPECT_GT(v, 1u);
}

TEST(PageRankTest, DanglingMassDoesNotExplode) {
  // A graph where many nodes have no incoming influence at all.
  GraphBuilder b = BuildDirectedPath(10);
  b.AssignConstantProbability(0.5);
  DirectedGraph g = std::move(b).Build();
  std::vector<double> pr = InfluencePageRank(g);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-6);
}

TEST(HighDegreeTest, GlobalPicksHighestOutProbabilitySum) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.9, 0.95).AddEdge(0, 2, 0.9, 0.95);  // node 0: sum 1.8
  b.AddEdge(3, 1, 0.5, 0.6);                            // node 3: sum 0.5
  DirectedGraph g = std::move(b).Build();
  std::vector<NodeId> picks =
      HighDegreeGlobal(g, {1}, 1, DegreeKind::kOutProbabilitySum);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], 0u);
}

TEST(HighDegreeTest, BoostGapKindPrefersBoostableTargets) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5, 0.5);  // no gap into 1
  b.AddEdge(0, 2, 0.2, 0.9);  // large gap into 2
  DirectedGraph g = std::move(b).Build();
  std::vector<NodeId> picks =
      HighDegreeGlobal(g, {0}, 1, DegreeKind::kInBoostGapSum);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], 2u);
}

TEST(HighDegreeTest, DiscountedAvoidsClusteredPicks) {
  // Nodes 0 and 1 point at the same targets; discounting makes the second
  // pick prefer node 2's fresh targets.
  GraphBuilder b(8);
  b.AddEdge(0, 3, 0.9, 0.9).AddEdge(0, 4, 0.9, 0.9);
  b.AddEdge(1, 0, 0.9, 0.9).AddEdge(1, 4, 0.8, 0.8);
  b.AddEdge(2, 5, 0.8, 0.8).AddEdge(2, 6, 0.8, 0.8);
  DirectedGraph g = std::move(b).Build();
  std::vector<NodeId> picks = HighDegreeGlobal(
      g, {7}, 2, DegreeKind::kOutProbabilitySumDiscount);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 0u);
  EXPECT_EQ(picks[1], 2u);  // 1's best target (0) is already picked
}

TEST(HighDegreeTest, LocalRestrictsToSeedNeighborhoodFirst) {
  // Seeds at 0; ring 1 = {1, 2}; a high-degree node 5 sits two hops out.
  GraphBuilder b(8);
  b.AddEdge(0, 1, 0.5, 0.6).AddEdge(0, 2, 0.5, 0.6);
  b.AddEdge(2, 5, 0.5, 0.6);
  b.AddEdge(5, 6, 0.9, 0.95).AddEdge(5, 7, 0.9, 0.95);
  DirectedGraph g = std::move(b).Build();
  std::vector<NodeId> local =
      HighDegreeLocal(g, {0}, 1, DegreeKind::kOutProbabilitySum);
  ASSERT_EQ(local.size(), 1u);
  // Ring 1 only contains 1 and 2; 5 is not eligible yet even though its
  // degree is larger.
  EXPECT_TRUE(local[0] == 1u || local[0] == 2u);

  std::vector<NodeId> global =
      HighDegreeGlobal(g, {0}, 1, DegreeKind::kOutProbabilitySum);
  EXPECT_EQ(global[0], 5u);
}

TEST(HighDegreeTest, AllVariantsReturnFourCandidateSets) {
  Rng rng(5);
  GraphBuilder b = BuildErdosRenyi(30, 150, rng);
  b.AssignConstantProbability(0.2);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  auto global = HighDegreeGlobalAll(g, {0}, 5);
  auto local = HighDegreeLocalAll(g, {0}, 5);
  EXPECT_EQ(global.size(), 4u);
  EXPECT_EQ(local.size(), 4u);
  for (const auto& set : global) EXPECT_LE(set.size(), 5u);
}

TEST(MoreSeedsTest, PicksComplementaryNode) {
  // Two disjoint stars; seed owns star A, so the best extra seed is hub B.
  GraphBuilder b(10);
  for (NodeId leaf = 2; leaf <= 5; ++leaf) b.AddEdge(0, leaf, 0.9, 0.9);
  for (NodeId leaf = 6; leaf <= 9; ++leaf) b.AddEdge(1, leaf, 0.9, 0.9);
  DirectedGraph g = std::move(b).Build();
  ImmOptions opts;
  opts.k = 1;
  opts.epsilon = 0.3;
  std::vector<NodeId> more = SelectMoreSeeds(g, {0}, opts);
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0], 1u);
}

TEST(MoreSeedsTest, NeverReturnsExistingSeeds) {
  Rng rng(6);
  GraphBuilder b = BuildErdosRenyi(40, 240, rng);
  b.AssignConstantProbability(0.2);
  DirectedGraph g = std::move(b).Build();
  ImmOptions opts;
  opts.k = 5;
  std::vector<NodeId> more = SelectMoreSeeds(g, {0, 1, 2}, opts);
  for (NodeId v : more) EXPECT_GT(v, 2u);
}

}  // namespace
}  // namespace kboost
