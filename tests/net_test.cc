// The network serving front-end's contract, in three layers:
//
//  1. Wire: every frame encoder/decoder round-trips bit-identically
//     (doubles travel as IEEE-754 bit patterns), the status-code mapping is
//     pinned in both directions, and the decoder-hardening matrix — bad
//     magic, bad version, reserved flags, unknown type, oversized declared
//     length, truncated/garbage bodies, trailing bytes — is a typed error
//     on every row, never a crash.
//  2. Server: a live KboostServer answers wire queries bit-identically to
//     in-process BoostService::Solve, keeps typed behaviour under the same
//     corruption matrix fired over a real socket (and survives it), rejects
//     queue overflow and connection overflow with kUnavailable, and serves
//     STATS/REFRESH/SHUTDOWN admin frames.
//  3. Shutdown: SIGTERM mid-storm drains gracefully — acceptor closed,
//     queued work answered kUnavailable, in-flight solves finished or
//     cooperatively cancelled — with zero leaked admission slots and only
//     typed outcomes observed by every client.
//
// This file runs under the ASan/UBSan job and the TSan job in CI.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/boost_session.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/io/pool_io.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/serve/boost_service.h"
#include "src/util/fault.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

DirectedGraph MakeTestGraph(uint64_t seed = 7) {
  Rng rng(seed);
  GraphBuilder b = BuildErdosRenyi(80, 500, rng);
  b.AssignConstantProbability(0.12);
  b.SetBoostWithBeta(2.0);
  return std::move(b).Build();
}

BoostOptions MakeOptions(size_t k) {
  BoostOptions options;
  options.k = k;
  options.seed = 11;
  options.num_threads = 2;
  return options;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---- 1. Wire layer ---------------------------------------------------------

TEST(WireStatusTest, EveryStatusCodeRoundTripsThroughItsWireValue) {
  const StatusCode codes[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kOutOfRange,
      StatusCode::kInternal,
      StatusCode::kIoError,
      StatusCode::kFailedPrecondition,
      StatusCode::kCancelled,
      StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : codes) {
    const uint8_t wire = WireCodeFromStatus(code);
    StatusOr<StatusCode> back = StatusCodeFromWire(wire);
    ASSERT_TRUE(back.ok()) << static_cast<int>(code);
    EXPECT_EQ(back.value(), code);
  }
  // The wire values are pinned, independent of the enum's numeric order.
  EXPECT_EQ(WireCodeFromStatus(StatusCode::kOk), 0);
  EXPECT_EQ(WireCodeFromStatus(StatusCode::kUnavailable), 10);
  EXPECT_EQ(StatusCodeFromWire(250).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, HeaderRoundTripsEveryFrameType) {
  const FrameType types[] = {
      FrameType::kQuery,        FrameType::kQueryReply,
      FrameType::kStats,        FrameType::kStatsReply,
      FrameType::kRefresh,      FrameType::kRefreshReply,
      FrameType::kShutdown,     FrameType::kShutdownReply,
      FrameType::kError,
  };
  for (FrameType type : types) {
    std::string bytes;
    AppendFrameHeader(type, 0xDEADBEEFu, 123, &bytes);
    ASSERT_EQ(bytes.size(), kFrameHeaderBytes);
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(
                    reinterpret_cast<const uint8_t*>(bytes.data()),
                    kDefaultMaxFrameBytes, &header)
                    .ok());
    EXPECT_EQ(header.type, type);
    EXPECT_EQ(header.request_id, 0xDEADBEEFu);
    EXPECT_EQ(header.body_len, 123u);
  }
}

TEST(WireFrameTest, HeaderHardeningMatrixIsTypedOnEveryRow) {
  std::string good;
  AppendFrameHeader(FrameType::kQuery, 1, 64, &good);
  const auto decode = [](const std::string& bytes, size_t max_frame) {
    FrameHeader header;
    return DecodeFrameHeader(reinterpret_cast<const uint8_t*>(bytes.data()),
                             max_frame, &header);
  };

  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_EQ(decode(bad, kDefaultMaxFrameBytes).code(),
            StatusCode::kInvalidArgument);

  // Unknown version: typed as FailedPrecondition so a future v2 client
  // talking to a v1 server gets a distinguishable error.
  bad = good;
  bad[4] = static_cast<char>(kWireVersion + 1);
  EXPECT_EQ(decode(bad, kDefaultMaxFrameBytes).code(),
            StatusCode::kFailedPrecondition);

  // Unknown frame type.
  bad = good;
  bad[5] = 42;
  EXPECT_EQ(decode(bad, kDefaultMaxFrameBytes).code(),
            StatusCode::kInvalidArgument);

  // Reserved flags must be zero.
  bad = good;
  bad[6] = 1;
  EXPECT_EQ(decode(bad, kDefaultMaxFrameBytes).code(),
            StatusCode::kInvalidArgument);

  // Oversized declared body length, checked against the configured bound:
  // 64 bytes declared, 32 allowed.
  EXPECT_EQ(decode(good, 32).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(decode(good, 64).ok());
}

TEST(WireQueryTest, QueryRoundTripsEveryFieldAndMode) {
  for (SolveMode mode :
       {SolveMode::kAuto, SolveMode::kFull, SolveMode::kLbOnly}) {
    WireQuery query;
    query.pool = "digg-pool";
    query.k = 17;
    query.mode = mode;
    query.num_threads = 3;
    query.deadline_ms = 2500;
    const std::string frame = EncodeQueryFrame(9, query);
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(
                    reinterpret_cast<const uint8_t*>(frame.data()),
                    kDefaultMaxFrameBytes, &header)
                    .ok());
    EXPECT_EQ(header.type, FrameType::kQuery);
    EXPECT_EQ(header.request_id, 9u);
    WireQuery out;
    ASSERT_TRUE(DecodeQueryBody(reinterpret_cast<const uint8_t*>(
                                    frame.data() + kFrameHeaderBytes),
                                header.body_len, &out)
                    .ok());
    EXPECT_EQ(out.pool, query.pool);
    EXPECT_EQ(out.k, query.k);
    EXPECT_EQ(out.mode, query.mode);
    EXPECT_EQ(out.num_threads, query.num_threads);
    EXPECT_EQ(out.deadline_ms, query.deadline_ms);
  }
}

TEST(WireQueryTest, BodyDecodersRejectTruncationAndTrailingBytes) {
  WireQuery query;
  query.pool = "p";
  query.k = 3;
  const std::string frame = EncodeQueryFrame(1, query);
  const uint8_t* body =
      reinterpret_cast<const uint8_t*>(frame.data() + kFrameHeaderBytes);
  const size_t body_len = frame.size() - kFrameHeaderBytes;
  WireQuery out;
  ASSERT_TRUE(DecodeQueryBody(body, body_len, &out).ok());
  // Every truncation point is a typed error, not a read past the end.
  for (size_t cut = 0; cut < body_len; ++cut) {
    EXPECT_FALSE(DecodeQueryBody(body, cut, &out).ok()) << cut;
  }
  // Trailing bytes are a typed error, not silently ignored.
  std::string padded(frame.begin() + kFrameHeaderBytes, frame.end());
  padded.push_back('\0');
  EXPECT_FALSE(DecodeQueryBody(reinterpret_cast<const uint8_t*>(padded.data()),
                               padded.size(), &out)
                   .ok());
}

TEST(WireQueryTest, QueryReplyRoundTripsDoublesBitIdentically) {
  WireQueryReply reply;
  reply.status = Status::Ok();
  reply.pool_version = 7;
  reply.degraded = true;
  reply.solve_seconds = 0.1 + 0.2;  // famously not 0.3
  reply.best_set = {5, 1, 80, 3};
  reply.best_estimate = 1.0 / 3.0;
  reply.lb_set = {9, 9, 9};
  reply.lb_mu_hat = std::nextafter(2.5, 3.0);
  reply.lb_delta_hat = 5e-324;  // smallest denormal
  reply.delta_set = {0};
  reply.delta_delta_hat = 1e308;
  reply.pool_budget = 50;
  reply.pool_reused = true;
  reply.num_samples = 31577;
  reply.num_boostable = 5299;

  const std::string frame = EncodeQueryReplyFrame(4, reply);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  kDefaultMaxFrameBytes, &header)
                  .ok());
  WireQueryReply out;
  ASSERT_TRUE(DecodeQueryReplyBody(reinterpret_cast<const uint8_t*>(
                                       frame.data() + kFrameHeaderBytes),
                                   header.body_len, &out)
                  .ok());
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.pool_version, reply.pool_version);
  EXPECT_EQ(out.degraded, reply.degraded);
  EXPECT_EQ(out.solve_seconds, reply.solve_seconds);
  EXPECT_EQ(out.best_set, reply.best_set);
  EXPECT_EQ(out.best_estimate, reply.best_estimate);
  EXPECT_EQ(out.lb_set, reply.lb_set);
  EXPECT_EQ(out.lb_mu_hat, reply.lb_mu_hat);
  EXPECT_EQ(out.lb_delta_hat, reply.lb_delta_hat);
  EXPECT_EQ(out.delta_set, reply.delta_set);
  EXPECT_EQ(out.delta_delta_hat, reply.delta_delta_hat);
  EXPECT_EQ(out.pool_budget, reply.pool_budget);
  EXPECT_EQ(out.pool_reused, reply.pool_reused);
  EXPECT_EQ(out.num_samples, reply.num_samples);
  EXPECT_EQ(out.num_boostable, reply.num_boostable);
}

TEST(WireQueryTest, NonOkReplyCarriesOnlyTheTypedStatus) {
  WireQueryReply reply;
  reply.status = Status::Unavailable("dispatch queue full");
  const std::string frame = EncodeQueryReplyFrame(2, reply);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  kDefaultMaxFrameBytes, &header)
                  .ok());
  WireQueryReply out;
  ASSERT_TRUE(DecodeQueryReplyBody(reinterpret_cast<const uint8_t*>(
                                       frame.data() + kFrameHeaderBytes),
                                   header.body_len, &out)
                  .ok());
  EXPECT_EQ(out.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(out.status.message(), "dispatch queue full");
  EXPECT_TRUE(out.best_set.empty());
}

TEST(WireAdminTest, StatsReplyRoundTrips) {
  ServiceStatsSnapshot stats;
  stats.not_found = 3;
  stats.in_flight = 1;
  stats.queued = 2;
  stats.admitted = 40;
  stats.shed = 5;
  stats.queue_timeouts = 1;
  PoolStatsSnapshot pool;
  pool.pool = "digg";
  pool.version = 4;
  pool.refreshes = 3;
  pool.queries = 100;
  pool.errors = 2;
  pool.shed = 7;
  pool.deadline_misses = 1;
  pool.degraded = 9;
  pool.load_retries = 2;
  pool.latency_mean_ms = 1.5;
  pool.latency_p50_ms = 1.25;
  pool.latency_p95_ms = 4.75;
  pool.latency_ewma_ms = 1.625;
  pool.registered_at = 1754600000.25;
  pool.refreshed_at = 1754600100.5;
  pool.last_rebuild_ms = 321.125;
  stats.pools.push_back(pool);

  const std::string frame = EncodeStatsReplyFrame(11, stats);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  kDefaultMaxFrameBytes, &header)
                  .ok());
  EXPECT_EQ(header.type, FrameType::kStatsReply);
  ServiceStatsSnapshot out;
  ASSERT_TRUE(DecodeStatsReplyBody(reinterpret_cast<const uint8_t*>(
                                       frame.data() + kFrameHeaderBytes),
                                   header.body_len, &out)
                  .ok());
  EXPECT_EQ(out.not_found, stats.not_found);
  EXPECT_EQ(out.in_flight, stats.in_flight);
  EXPECT_EQ(out.queued, stats.queued);
  EXPECT_EQ(out.admitted, stats.admitted);
  EXPECT_EQ(out.shed, stats.shed);
  EXPECT_EQ(out.queue_timeouts, stats.queue_timeouts);
  ASSERT_EQ(out.pools.size(), 1u);
  const PoolStatsSnapshot& p = out.pools[0];
  EXPECT_EQ(p.pool, pool.pool);
  EXPECT_EQ(p.version, pool.version);
  EXPECT_EQ(p.refreshes, pool.refreshes);
  EXPECT_EQ(p.queries, pool.queries);
  EXPECT_EQ(p.errors, pool.errors);
  EXPECT_EQ(p.shed, pool.shed);
  EXPECT_EQ(p.deadline_misses, pool.deadline_misses);
  EXPECT_EQ(p.degraded, pool.degraded);
  EXPECT_EQ(p.load_retries, pool.load_retries);
  EXPECT_EQ(p.latency_mean_ms, pool.latency_mean_ms);
  EXPECT_EQ(p.latency_p50_ms, pool.latency_p50_ms);
  EXPECT_EQ(p.latency_p95_ms, pool.latency_p95_ms);
  EXPECT_EQ(p.latency_ewma_ms, pool.latency_ewma_ms);
  EXPECT_EQ(p.registered_at, pool.registered_at);
  EXPECT_EQ(p.refreshed_at, pool.refreshed_at);
  EXPECT_EQ(p.last_rebuild_ms, pool.last_rebuild_ms);
}

TEST(WireAdminTest, RefreshAndErrorFramesRoundTrip) {
  WireRefresh refresh;
  refresh.pool = "digg";
  refresh.snapshot_path = "/var/lib/kboost/digg-v2.pool";
  const std::string frame = EncodeRefreshFrame(6, refresh);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  kDefaultMaxFrameBytes, &header)
                  .ok());
  WireRefresh out;
  ASSERT_TRUE(DecodeRefreshBody(reinterpret_cast<const uint8_t*>(
                                    frame.data() + kFrameHeaderBytes),
                                header.body_len, &out)
                  .ok());
  EXPECT_EQ(out.pool, refresh.pool);
  EXPECT_EQ(out.snapshot_path, refresh.snapshot_path);

  WireRefreshReply reply;
  reply.status = Status::Ok();
  reply.version = 9;
  const std::string reply_frame = EncodeRefreshReplyFrame(6, reply);
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(reply_frame.data()),
                  kDefaultMaxFrameBytes, &header)
                  .ok());
  WireRefreshReply reply_out;
  ASSERT_TRUE(DecodeRefreshReplyBody(
                  reinterpret_cast<const uint8_t*>(reply_frame.data() +
                                                   kFrameHeaderBytes),
                  header.body_len, &reply_out)
                  .ok());
  EXPECT_TRUE(reply_out.status.ok());
  EXPECT_EQ(reply_out.version, 9u);

  const std::string error_frame =
      EncodeErrorFrame(3, Status::FailedPrecondition("wire version 2"));
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(error_frame.data()),
                  kDefaultMaxFrameBytes, &header)
                  .ok());
  EXPECT_EQ(header.type, FrameType::kError);
  Status error;
  ASSERT_TRUE(DecodeErrorBody(reinterpret_cast<const uint8_t*>(
                                  error_frame.data() + kFrameHeaderBytes),
                              header.body_len, &error)
                  .ok());
  EXPECT_EQ(error.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(error.message(), "wire version 2");
}

TEST(WireFuzzTest, GarbageBodiesAreTypedErrorsNeverCrashes) {
  // Deterministic garbage at many lengths through every body decoder: the
  // contract is a typed error (or, coincidentally, a parse) — never a
  // crash, never a read past the declared length. ASan enforces the bounds
  // half of that claim when this runs in the sanitizer job.
  Rng rng(20260808);
  for (int round = 0; round < 256; ++round) {
    const size_t len = static_cast<size_t>(rng.NextU64() % 96);
    std::vector<uint8_t> body(len);
    for (uint8_t& byte : body) {
      byte = static_cast<uint8_t>(rng.NextU64());
    }
    WireQuery query;
    (void)DecodeQueryBody(body.data(), body.size(), &query);
    WireQueryReply reply;
    (void)DecodeQueryReplyBody(body.data(), body.size(), &reply);
    ServiceStatsSnapshot stats;
    (void)DecodeStatsReplyBody(body.data(), body.size(), &stats);
    WireRefresh refresh;
    (void)DecodeRefreshBody(body.data(), body.size(), &refresh);
    WireRefreshReply refresh_reply;
    (void)DecodeRefreshReplyBody(body.data(), body.size(), &refresh_reply);
    Status status;
    (void)DecodeErrorBody(body.data(), body.size(), &status);
  }
  SUCCEED();
}

// ---- 2. Live server --------------------------------------------------------

/// Raw TCP connection for speaking deliberately broken protocol at a live
/// server (the client library refuses to send these bytes).
class RawConn {
 public:
  static int Connect(uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct timeval tv = {5, 0};  // never let a test hang on a read
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  static void Send(int fd, const std::string& bytes) {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads one full frame; fails the test on timeout or early close.
  static void ReadFrame(int fd, FrameHeader* header, std::string* body) {
    uint8_t header_bytes[kFrameHeaderBytes];
    ASSERT_TRUE(ReadExactly(fd, header_bytes, kFrameHeaderBytes));
    ASSERT_TRUE(
        DecodeFrameHeader(header_bytes, kDefaultMaxFrameBytes, header).ok());
    body->resize(header->body_len);
    if (header->body_len > 0) {
      ASSERT_TRUE(ReadExactly(
          fd, reinterpret_cast<uint8_t*>(body->data()), header->body_len));
    }
  }

  /// True when the server closed the connection (recv returns 0).
  static bool ReadClosed(int fd) {
    char byte;
    return ::recv(fd, &byte, 1, 0) == 0;
  }

  /// Expects: one typed error frame with `code`, then a clean close.
  static void ExpectErrorAndClose(int fd, StatusCode code) {
    FrameHeader header;
    std::string body;
    ReadFrame(fd, &header, &body);
    ASSERT_EQ(header.type, FrameType::kError);
    Status error;
    ASSERT_TRUE(DecodeErrorBody(reinterpret_cast<const uint8_t*>(body.data()),
                                body.size(), &error)
                    .ok());
    EXPECT_EQ(error.code(), code) << error.ToString();
    EXPECT_TRUE(ReadClosed(fd));
    ::close(fd);
  }

 private:
  static bool ReadExactly(int fd, uint8_t* out, size_t len) {
    size_t off = 0;
    while (off < len) {
      const ssize_t n = ::recv(fd, out + off, len - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }
};

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override { graph_ = MakeTestGraph(); }

  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    server_.reset();
    service_.reset();
  }

  void StartService(const BoostService::Options& options =
                        BoostService::Options()) {
    StatusOr<std::unique_ptr<BoostService>> service =
        BoostService::Create(graph_, options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(service).value();
    StatusOr<std::unique_ptr<BoostSession>> session =
        BoostSession::Create(graph_, {0, 1, 2}, MakeOptions(8));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ASSERT_TRUE(service_->AddPool("pool", std::move(session).value()).ok());
  }

  void StartServer(ServerOptions options = ServerOptions()) {
    StatusOr<std::unique_ptr<KboostServer>> server =
        KboostServer::Start(service_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  std::unique_ptr<KboostClient> MustConnect() {
    StatusOr<std::unique_ptr<KboostClient>> client =
        KboostClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(client).value() : nullptr;
  }

  DirectedGraph graph_;
  std::unique_ptr<BoostService> service_;
  std::unique_ptr<KboostServer> server_;
};

TEST_F(NetServerTest, WireAnswersAreBitIdenticalToInProcessSolve) {
  StartService();
  StartServer();
  std::unique_ptr<KboostClient> client = MustConnect();
  ASSERT_NE(client, nullptr);

  for (size_t k : {size_t{1}, size_t{4}, size_t{8}}) {
    for (SolveMode mode :
         {SolveMode::kAuto, SolveMode::kFull, SolveMode::kLbOnly}) {
      WireQuery query;
      query.pool = "pool";
      query.k = k;
      query.mode = mode;
      query.num_threads = 1;
      StatusOr<WireQueryReply> wire = client->Query(query);
      ASSERT_TRUE(wire.ok()) << wire.status().ToString();
      ASSERT_TRUE(wire.value().status.ok())
          << wire.value().status.ToString();

      BoostRequest request;
      request.pool = "pool";
      request.k = k;
      request.mode = mode;
      request.num_threads = 1;
      StatusOr<BoostResponse> local = service_->Solve(request);
      ASSERT_TRUE(local.ok()) << local.status().ToString();

      // The serving guarantee crosses the wire intact: every set and every
      // double of the answer compares exactly equal.
      const WireQueryReply& w = wire.value();
      const BoostResult& r = local.value().result;
      EXPECT_EQ(w.best_set, r.best_set);
      EXPECT_EQ(w.best_estimate, r.best_estimate);
      EXPECT_EQ(w.lb_set, r.lb_set);
      EXPECT_EQ(w.lb_mu_hat, r.lb_mu_hat);
      EXPECT_EQ(w.lb_delta_hat, r.lb_delta_hat);
      EXPECT_EQ(w.delta_set, r.delta_set);
      EXPECT_EQ(w.delta_delta_hat, r.delta_delta_hat);
      EXPECT_EQ(w.pool_budget, r.pool_budget);
      EXPECT_EQ(w.num_samples, r.num_samples);
      EXPECT_EQ(w.num_boostable, r.num_boostable);
      EXPECT_EQ(w.pool_version, local.value().pool_version);
      EXPECT_EQ(w.degraded, local.value().degraded);
    }
  }
}

TEST_F(NetServerTest, UnknownPoolIsTypedNotFoundOverTheWire) {
  StartService();
  StartServer();
  std::unique_ptr<KboostClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  WireQuery query;
  query.pool = "nope";
  query.k = 1;
  StatusOr<WireQueryReply> reply = client->Query(query);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().status.code(), StatusCode::kNotFound);
  // The connection survives a typed remote error; the next query answers.
  query.pool = "pool";
  StatusOr<WireQueryReply> good = client->Query(query);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_TRUE(good.value().status.ok());
}

TEST_F(NetServerTest, CorruptionMatrixOverLiveSocketIsTypedNeverFatal) {
  StartService();
  StartServer();

  // Row 1: bad magic.
  {
    int fd = RawConn::Connect(server_->port());
    std::string frame = EncodeQueryFrame(1, WireQuery{"pool", 1});
    frame[0] = 'X';
    RawConn::Send(fd, frame);
    RawConn::ExpectErrorAndClose(fd, StatusCode::kInvalidArgument);
  }
  // Row 2: wrong protocol version.
  {
    int fd = RawConn::Connect(server_->port());
    std::string frame = EncodeQueryFrame(1, WireQuery{"pool", 1});
    frame[4] = static_cast<char>(kWireVersion + 1);
    RawConn::Send(fd, frame);
    RawConn::ExpectErrorAndClose(fd, StatusCode::kFailedPrecondition);
  }
  // Row 3: reserved flags set.
  {
    int fd = RawConn::Connect(server_->port());
    std::string frame = EncodeQueryFrame(1, WireQuery{"pool", 1});
    frame[6] = 1;
    RawConn::Send(fd, frame);
    RawConn::ExpectErrorAndClose(fd, StatusCode::kInvalidArgument);
  }
  // Row 4: unknown frame type.
  {
    int fd = RawConn::Connect(server_->port());
    std::string frame = EncodeQueryFrame(1, WireQuery{"pool", 1});
    frame[5] = 77;
    RawConn::Send(fd, frame);
    RawConn::ExpectErrorAndClose(fd, StatusCode::kInvalidArgument);
  }
  // Row 5: oversized declared length (4 MiB against the 1 MiB default),
  // rejected from the header alone — the body never needs to arrive.
  {
    int fd = RawConn::Connect(server_->port());
    std::string header;
    AppendFrameHeader(FrameType::kQuery, 1, 4u << 20, &header);
    RawConn::Send(fd, header);
    RawConn::ExpectErrorAndClose(fd, StatusCode::kInvalidArgument);
  }
  // Row 6: valid header, garbage body.
  {
    int fd = RawConn::Connect(server_->port());
    std::string frame;
    AppendFrameHeader(FrameType::kQuery, 1, 12, &frame);
    frame += std::string("\xff\xff\xff\xff GARBAGE", 12);
    RawConn::Send(fd, frame);
    RawConn::ExpectErrorAndClose(fd, StatusCode::kInvalidArgument);
  }
  // Row 7: a reply frame from a client is a protocol error.
  {
    int fd = RawConn::Connect(server_->port());
    RawConn::Send(fd, EncodeShutdownReplyFrame(1));
    RawConn::ExpectErrorAndClose(fd, StatusCode::kInvalidArgument);
  }
  // Row 8: truncated header, then disconnect — clean close, no reply owed.
  {
    int fd = RawConn::Connect(server_->port());
    RawConn::Send(fd, std::string("KBST", 4));
    ::close(fd);
  }
  // Row 9: mid-frame disconnect — header promises 100 body bytes, 10
  // arrive, peer vanishes. Clean close, never a hang.
  {
    int fd = RawConn::Connect(server_->port());
    std::string partial;
    AppendFrameHeader(FrameType::kQuery, 1, 100, &partial);
    partial += std::string(10, 'x');
    RawConn::Send(fd, partial);
    ::close(fd);
  }

  // The server survived all nine rows: a fresh client still gets a correct
  // answer, and each matrix row was counted as a protocol error.
  std::unique_ptr<KboostClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  StatusOr<WireQueryReply> reply = client->Query(WireQuery{"pool", 2});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply.value().status.ok());
  EXPECT_EQ(server_->counters().protocol_errors, 7u);
}

TEST_F(NetServerTest, StatsAndRefreshAdminFramesWork) {
  StartService();
  StartServer();
  std::unique_ptr<KboostClient> client = MustConnect();
  ASSERT_NE(client, nullptr);

  // Two queries, then STATS must report them against the pool.
  for (int i = 0; i < 2; ++i) {
    StatusOr<WireQueryReply> reply = client->Query(WireQuery{"pool", 3});
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply.value().status.ok());
  }
  StatusOr<ServiceStatsSnapshot> stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats.value().pools.size(), 1u);
  EXPECT_EQ(stats.value().pools[0].pool, "pool");
  EXPECT_GE(stats.value().pools[0].queries, 2u);

  // REFRESH from a snapshot of an identical session: version bumps, bits
  // do not change.
  StatusOr<WireQueryReply> before = client->Query(WireQuery{"pool", 8});
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before.value().status.ok());
  EXPECT_EQ(before.value().pool_version, 1u);

  const std::string snapshot = TempPath("net_test_refresh.pool");
  {
    StatusOr<std::unique_ptr<BoostSession>> twin =
        BoostSession::Create(graph_, {0, 1, 2}, MakeOptions(8));
    ASSERT_TRUE(twin.ok());
    (*twin)->Prepare();
    ASSERT_TRUE(SavePoolSnapshot(**twin, snapshot).ok());
  }
  StatusOr<WireRefreshReply> refreshed =
      client->Refresh(WireRefresh{"pool", snapshot});
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  ASSERT_TRUE(refreshed.value().status.ok())
      << refreshed.value().status.ToString();
  EXPECT_EQ(refreshed.value().version, 2u);

  StatusOr<WireQueryReply> after = client->Query(WireQuery{"pool", 8});
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after.value().status.ok());
  EXPECT_EQ(after.value().pool_version, 2u);
  EXPECT_EQ(after.value().best_set, before.value().best_set);
  EXPECT_EQ(after.value().best_estimate, before.value().best_estimate);

  // A refresh of an unknown pool is a typed NotFound in the reply, not a
  // dropped connection.
  StatusOr<WireRefreshReply> missing =
      client->Refresh(WireRefresh{"nope", snapshot});
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  EXPECT_EQ(missing.value().status.code(), StatusCode::kNotFound)
      << missing.value().status.ToString();
  std::remove(snapshot.c_str());
}

TEST_F(NetServerTest, QueueOverflowIsTypedUnavailableAndConnectionSurvives) {
  StartService();
  ServerOptions options;
  options.num_workers = 1;
  options.max_dispatch_queue = 1;
  StartServer(options);

  // Hold the single worker for ~600ms per solve.
  FaultInjector::Plan slow;
  slow.delay_micros = 600'000;
  FaultInjector::Global().Arm(FaultSite::kSolveStart, slow);

  std::unique_ptr<KboostClient> busy = MustConnect();
  std::unique_ptr<KboostClient> queued = MustConnect();
  std::unique_ptr<KboostClient> rejected = MustConnect();
  ASSERT_NE(busy, nullptr);
  ASSERT_NE(queued, nullptr);
  ASSERT_NE(rejected, nullptr);

  std::thread busy_thread([&] {
    StatusOr<WireQueryReply> reply = busy->Query(WireQuery{"pool", 1});
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply.value().status.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread queued_thread([&] {
    StatusOr<WireQueryReply> reply = queued->Query(WireQuery{"pool", 1});
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply.value().status.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Worker busy, queue full: this one must be rejected typed, immediately
  // (well before the 600ms solve finishes), on a connection that survives.
  StatusOr<WireQueryReply> reply = rejected->Query(WireQuery{"pool", 1});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().status.code(), StatusCode::kUnavailable)
      << reply.value().status.ToString();

  busy_thread.join();
  queued_thread.join();
  FaultInjector::Global().DisarmAll();

  StatusOr<WireQueryReply> retry = rejected->Query(WireQuery{"pool", 1});
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(retry.value().status.ok());
  EXPECT_GE(server_->counters().unavailable_rejects, 1u);
}

TEST_F(NetServerTest, ConnectionLimitSendsTypedUnavailableErrorFrame) {
  StartService();
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);

  std::unique_ptr<KboostClient> first = MustConnect();
  ASSERT_NE(first, nullptr);
  // Make sure the first connection is fully accepted before the second
  // tries the front door.
  StatusOr<WireQueryReply> warm = first->Query(WireQuery{"pool", 1});
  ASSERT_TRUE(warm.ok());

  int fd = RawConn::Connect(server_->port());
  RawConn::ExpectErrorAndClose(fd, StatusCode::kUnavailable);

  // The admitted connection is unaffected.
  StatusOr<WireQueryReply> still = first->Query(WireQuery{"pool", 1});
  ASSERT_TRUE(still.ok());
  EXPECT_TRUE(still.value().status.ok());
}

TEST_F(NetServerTest, RemoteShutdownFrameDrainsTheServer) {
  StartService();
  StartServer();
  std::unique_ptr<KboostClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  Status acked = client->Shutdown();
  ASSERT_TRUE(acked.ok()) << acked.ToString();
  server_->Wait();
  EXPECT_TRUE(server_->finished());
  // The listener is gone: a fresh connect must fail.
  StatusOr<std::unique_ptr<KboostClient>> late =
      KboostClient::Connect("127.0.0.1", server_->port());
  EXPECT_FALSE(late.ok());
}

TEST_F(NetServerTest, RemoteShutdownCanBeDisabled) {
  StartService();
  ServerOptions options;
  options.allow_remote_shutdown = false;
  StartServer(options);
  std::unique_ptr<KboostClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  Status denied = client->Shutdown();
  EXPECT_EQ(denied.code(), StatusCode::kFailedPrecondition)
      << denied.ToString();
  // And the server keeps serving.
  std::unique_ptr<KboostClient> again = MustConnect();
  ASSERT_NE(again, nullptr);
  StatusOr<WireQueryReply> reply = again->Query(WireQuery{"pool", 1});
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().status.ok());
}

// ---- 3. Graceful shutdown --------------------------------------------------

TEST_F(NetServerTest, SigtermMidStormDrainsWithZeroLeakedAdmissionSlots) {
  // Admission control ON so a leaked slot would be visible in Stats().
  BoostService::Options service_options;
  service_options.max_in_flight = 2;
  service_options.max_queued = 2;
  StartService(service_options);
  ServerOptions options;
  options.num_workers = 2;
  options.max_dispatch_queue = 4;
  options.drain_deadline_ms = 2000;
  StartServer(options);
  ASSERT_TRUE(server_->InstallSignalHandlers().ok());

  // Make every solve slow enough that SIGTERM lands mid-storm.
  FaultInjector::Plan slow;
  slow.delay_micros = 20'000;
  FaultInjector::Global().Arm(FaultSite::kSolveStart, slow);

  // 6 clients hammer the server; every observed outcome must be typed.
  // Transport-level kUnavailable ("server closed the connection") is the
  // one legitimate transport outcome once the drain finishes.
  std::atomic<int> ok_count{0}, unavailable{0}, shed{0}, untyped{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&] {
      StatusOr<std::unique_ptr<KboostClient>> client =
          KboostClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        untyped.fetch_add(1);
        return;
      }
      for (int i = 0; i < 50; ++i) {
        StatusOr<WireQueryReply> reply =
            client.value()->Query(WireQuery{"pool", 2});
        if (!reply.ok()) {
          // Transport gone: the drain finished and the server closed the
          // connection. kUnavailable is the clean-close signal; kIoError is
          // the unavoidable race of a send against that close (ECONNRESET /
          // EPIPE). Anything else — a hang, a protocol error — is a bug.
          if (reply.status().code() != StatusCode::kUnavailable &&
              reply.status().code() != StatusCode::kIoError) {
            untyped.fetch_add(1);
          }
          return;
        }
        // Every reply that DID arrive must carry a typed overload outcome.
        switch (reply.value().status.code()) {
          case StatusCode::kOk:
            ok_count.fetch_add(1);
            break;
          case StatusCode::kUnavailable:
          case StatusCode::kCancelled:
            unavailable.fetch_add(1);
            break;
          case StatusCode::kResourceExhausted:
          case StatusCode::kDeadlineExceeded:
            shed.fetch_add(1);
            break;
          default:
            untyped.fetch_add(1);
            break;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // The real signal path: SIGTERM → installed handler → wake pipe → drain.
  ASSERT_EQ(std::raise(SIGTERM), 0);
  for (std::thread& client : clients) client.join();
  server_->Wait();
  EXPECT_TRUE(server_->finished());

  EXPECT_GT(ok_count.load(), 0) << "storm never got going";
  EXPECT_EQ(untyped.load(), 0)
      << "every shutdown outcome must be typed (ok=" << ok_count.load()
      << " unavailable=" << unavailable.load() << " shed=" << shed.load()
      << ")";

  // Zero leaked admission slots after a mid-storm drain: the RAII tickets
  // inside Solve all released.
  const ServiceStatsSnapshot stats = service_->Stats();
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST_F(NetServerTest, DrainDeadlineCancelsInFlightSolvesAsUnavailable) {
  StartService();
  ServerOptions options;
  options.num_workers = 1;
  options.drain_deadline_ms = 50;
  StartServer(options);

  // One solve that stalls far past the drain budget: the server must not
  // wait for it — the cooperative cancel fires and the client still gets a
  // typed reply.
  FaultInjector::Plan stall;
  stall.delay_micros = 700'000;
  FaultInjector::Global().Arm(FaultSite::kSolveStart, stall);

  std::unique_ptr<KboostClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  std::thread slow_query([&] {
    StatusOr<WireQueryReply> reply = client->Query(WireQuery{"pool", 4});
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply.value().status.code(), StatusCode::kUnavailable)
        << reply.value().status.ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server_->RequestShutdown();
  slow_query.join();
  server_->Wait();
  EXPECT_TRUE(server_->finished());
  const ServiceStatsSnapshot stats = service_->Stats();
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

}  // namespace
}  // namespace kboost
