#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/graph_builder.h"
#include "src/graph/graph_io.h"
#include "src/graph/probability_models.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

TEST(GraphBuilderTest, BuildsCsrBothDirections) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.5, 0.7);
  b.AddEdge(0, 2, 0.1, 0.2);
  b.AddEdge(2, 1, 0.3, 0.3);
  DirectedGraph g = std::move(b).Build();

  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 0u);
  EXPECT_EQ(g.InDegree(1), 2u);
  EXPECT_EQ(g.InDegree(3), 0u);

  auto out0 = g.OutEdges(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0].to, 1u);  // sorted by target
  EXPECT_FLOAT_EQ(out0[0].p, 0.5f);
  EXPECT_FLOAT_EQ(out0[0].p_boost, 0.7f);
  EXPECT_EQ(out0[1].to, 2u);

  auto in1 = g.InEdges(1);
  ASSERT_EQ(in1.size(), 2u);
  EXPECT_EQ(in1[0].from, 0u);  // sorted by source
  EXPECT_EQ(in1[1].from, 2u);
  EXPECT_FLOAT_EQ(in1[1].p, 0.3f);
}

TEST(GraphBuilderTest, InOutEdgeCountsAgree) {
  Rng rng(3);
  GraphBuilder b = BuildErdosRenyi(50, 400, rng);
  b.AssignConstantProbability(0.1);
  DirectedGraph g = std::move(b).Build();
  size_t out_total = 0, in_total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out_total += g.OutDegree(v);
    in_total += g.InDegree(v);
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(GraphBuilderTest, DeduplicateRemovesDupsAndSelfLoops) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5, 0.5);
  b.AddEdge(0, 1, 0.9, 0.9);  // duplicate
  b.AddEdge(1, 1, 0.2, 0.2);  // self loop
  b.AddEdge(1, 2, 0.3, 0.3);
  EXPECT_EQ(b.DeduplicateEdges(), 2u);
  DirectedGraph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 2u);
  // First occurrence wins.
  EXPECT_FLOAT_EQ(g.OutEdges(0)[0].p, 0.5f);
}

TEST(GraphBuilderTest, WeightedCascadeAssignsInverseInDegree) {
  GraphBuilder b(4);
  b.AddEdge(0, 3).AddEdge(1, 3).AddEdge(2, 3).AddEdge(0, 1);
  b.AssignWeightedCascadeProbabilities();
  DirectedGraph g = std::move(b).Build();
  for (const auto& e : g.InEdges(3)) EXPECT_FLOAT_EQ(e.p, 1.0f / 3);
  for (const auto& e : g.InEdges(1)) EXPECT_FLOAT_EQ(e.p, 1.0f);
}

TEST(GraphBuilderTest, TrivalencyDrawsFromThreeLevels) {
  Rng rng(1);
  GraphBuilder b = BuildErdosRenyi(40, 300, rng);
  b.AssignTrivalencyProbabilities(rng);
  DirectedGraph g = std::move(b).Build();
  std::set<float> seen;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& e : g.OutEdges(v)) seen.insert(e.p);
  }
  EXPECT_EQ(seen.size(), 3u);
  for (float p : seen) {
    EXPECT_TRUE(p == 0.1f || p == 0.01f || p == 0.001f) << p;
  }
}

TEST(GraphBuilderTest, BoostBetaMatchesFormula) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.2);
  b.SetBoostWithBeta(2.0);
  DirectedGraph g = std::move(b).Build();
  EXPECT_NEAR(g.OutEdges(0)[0].p_boost, 1.0 - 0.8 * 0.8, 1e-6);
}

TEST(GraphTest, WithBoostBetaRewritesAllEdges) {
  Rng rng(9);
  GraphBuilder b = BuildErdosRenyi(30, 200, rng);
  b.AssignConstantProbability(0.3);
  DirectedGraph g = std::move(b).Build();
  DirectedGraph g3 = g.WithBoostBeta(3.0);
  EXPECT_EQ(g3.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g3.num_nodes(); ++v) {
    for (const auto& e : g3.OutEdges(v)) {
      EXPECT_NEAR(e.p_boost, 1.0 - std::pow(1.0 - 0.3, 3.0), 1e-6);
    }
  }
}

TEST(GraphTest, AverageProbability) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.2).AddEdge(1, 2, 0.4);
  DirectedGraph g = std::move(b).Build();
  EXPECT_NEAR(g.AverageProbability(), 0.3, 1e-6);
}

TEST(GraphIoTest, SaveLoadRoundTrip) {
  Rng rng(4);
  GraphBuilder b = BuildErdosRenyi(25, 120, rng);
  b.AssignExponentialProbabilities(0.2, rng);
  DirectedGraph g = std::move(b).Build();

  const std::string path =
      (std::filesystem::temp_directory_path() / "kboost_io_test.txt")
          .string();
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  StatusOr<DirectedGraph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const DirectedGraph& g2 = loaded.value();
  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = g.OutEdges(v);
    auto c = g2.OutEdges(v);
    ASSERT_EQ(a.size(), c.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, c[i].to);
      EXPECT_NEAR(a[i].p, c[i].p, 1e-5);
      EXPECT_NEAR(a[i].p_boost, c[i].p_boost, 1e-5);
    }
  }
  std::filesystem::remove(path);
}

TEST(GraphIoTest, LoadToleratesCrlfLineEndings) {
  // Windows-edited edge lists terminate lines with \r\n; the trailing \r
  // must not break the header, comment, blank-line or edge parsing.
  const std::string path =
      (std::filesystem::temp_directory_path() / "kboost_crlf.txt").string();
  FILE* f = fopen(path.c_str(), "w");
  fputs("# comment\r\n3 2\r\n\r\n0 1 0.5 0.7\r\n1 2 0.25\r\n", f);
  fclose(f);
  StatusOr<DirectedGraph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const DirectedGraph& g = loaded.value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  ASSERT_EQ(g.OutEdges(0).size(), 1u);
  EXPECT_NEAR(g.OutEdges(0)[0].p, 0.5, 1e-6);
  EXPECT_NEAR(g.OutEdges(0)[0].p_boost, 0.7, 1e-6);
  // p_boost defaults to p when omitted — also on a CRLF line.
  ASSERT_EQ(g.OutEdges(1).size(), 1u);
  EXPECT_NEAR(g.OutEdges(1)[0].p_boost, 0.25, 1e-6);
  std::filesystem::remove(path);
}

TEST(GraphIoTest, LoadRejectsUnparseableProbabilityToken) {
  // Regression: `ls >> p` failing on a non-numeric token used to leave p at
  // 0.0, which passed the range check and silently loaded a corrupt graph.
  const std::string path =
      (std::filesystem::temp_directory_path() / "kboost_badtok.txt").string();
  for (const char* body : {"2 1\n0 1 foo\n",         // unparseable p
                           "2 1\n0 1 0.5 bar\n",     // unparseable p_boost
                           "2 1\n0 1foo\n",          // garbage glued to `to`
                           "2 1\n0 1 0.5 0.7 9\n",   // trailing garbage
                           "2 1\n0 1 0.5 0.7 x\n",   // trailing garbage
                           "2 1\n0 1 0.5 -0.2\n"}) {  // explicit negative pb
    FILE* f = fopen(path.c_str(), "w");
    fputs(body, f);
    fclose(f);
    StatusOr<DirectedGraph> r = LoadEdgeList(path);
    EXPECT_FALSE(r.ok()) << body;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << body;
  }
  std::filesystem::remove(path);
}

TEST(GraphIoTest, LoadStillAcceptsOmittedProbabilities) {
  // The probability tokens stay optional: `u v` (p = 0) and `u v p`
  // (p_boost = p) both remain valid, including with trailing whitespace.
  const std::string path =
      (std::filesystem::temp_directory_path() / "kboost_opt.txt").string();
  FILE* f = fopen(path.c_str(), "w");
  fputs("3 2\n0 1\n1 2 0.25 \n", f);
  fclose(f);
  StatusOr<DirectedGraph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NEAR(loaded->OutEdges(0)[0].p, 0.0, 1e-12);
  EXPECT_NEAR(loaded->OutEdges(1)[0].p, 0.25, 1e-6);
  EXPECT_NEAR(loaded->OutEdges(1)[0].p_boost, 0.25, 1e-6);
  std::filesystem::remove(path);
}

TEST(GraphIoTest, LoadRejectsMissingFile) {
  StatusOr<DirectedGraph> r = LoadEdgeList("/nonexistent/zzz.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, LoadRejectsBadProbabilities) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kboost_bad.txt").string();
  FILE* f = fopen(path.c_str(), "w");
  fputs("2 1\n0 1 0.9 0.5\n", f);  // p_boost < p
  fclose(f);
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::filesystem::remove(path);
}

TEST(GraphIoTest, LoadRejectsOutOfRangeEndpoint) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kboost_oob.txt").string();
  FILE* f = fopen(path.c_str(), "w");
  fputs("2 1\n0 5 0.5 0.5\n", f);
  fclose(f);
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::filesystem::remove(path);
}

TEST(GeneratorsTest, ErdosRenyiExactEdgeCount) {
  Rng rng(10);
  GraphBuilder b = BuildErdosRenyi(30, 200, rng);
  EXPECT_EQ(b.num_edges(), 200u);
  DirectedGraph g = std::move(b).Build();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& e : g.OutEdges(v)) EXPECT_NE(e.to, v);  // no self loops
  }
}

TEST(GeneratorsTest, PreferentialAttachmentHasSkewedInDegrees) {
  Rng rng(21);
  GraphBuilder b = BuildPreferentialAttachment(2000, 4, 0.0, rng);
  DirectedGraph g = std::move(b).Build();
  size_t max_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  const double avg_in =
      static_cast<double>(g.num_edges()) / g.num_nodes();
  // Power-law-ish tail: hub far above the mean.
  EXPECT_GT(static_cast<double>(max_in), 10 * avg_in);
}

TEST(GeneratorsTest, PreferentialAttachmentReciprocityAddsBackEdges) {
  Rng rng(22);
  GraphBuilder b = BuildPreferentialAttachment(500, 3, 1.0, rng);
  DirectedGraph g = std::move(b).Build();
  // With reciprocity 1, every edge's reverse must exist.
  size_t missing = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& e : g.OutEdges(v)) {
      bool found = false;
      for (const auto& r : g.OutEdges(e.to)) {
        if (r.to == v) {
          found = true;
          break;
        }
      }
      missing += !found;
    }
  }
  EXPECT_EQ(missing, 0u);
}

TEST(GeneratorsTest, WattsStrogatzZeroRewireIsRing) {
  Rng rng(23);
  GraphBuilder b = BuildWattsStrogatz(20, 2, 0.0, rng);
  DirectedGraph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 40u);
  for (NodeId v = 0; v < 20; ++v) {
    auto out = g.OutEdges(v);
    ASSERT_EQ(out.size(), 2u);
  }
}

TEST(GeneratorsTest, DirectedPathAndStar) {
  DirectedGraph path = std::move(BuildDirectedPath(5)).Build();
  EXPECT_EQ(path.num_edges(), 4u);
  DirectedGraph star = std::move(BuildOutStar(6)).Build();
  EXPECT_EQ(star.num_nodes(), 7u);
  EXPECT_EQ(star.OutDegree(0), 6u);
}

TEST(ProbabilityModelsTest, DispatchesAllModels) {
  for (ProbabilityModel model :
       {ProbabilityModel::kConstant, ProbabilityModel::kTrivalency,
        ProbabilityModel::kWeightedCascade,
        ProbabilityModel::kExponential}) {
    Rng rng(31);
    GraphBuilder b = BuildErdosRenyi(20, 80, rng);
    ProbabilityModelParams params;
    params.beta = 2.0;
    ApplyProbabilityModel(b, model, params, rng);
    DirectedGraph g = std::move(b).Build();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const auto& e : g.OutEdges(v)) {
        EXPECT_GT(e.p, 0.0f);
        EXPECT_GE(e.p_boost, e.p);
        EXPECT_LE(e.p_boost, 1.0f);
      }
    }
  }
}

class GeneratorSweep : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSweep, EdgesAlwaysValid) {
  Rng rng(GetParam());
  GraphBuilder b =
      BuildPreferentialAttachment(300, 1 + GetParam() % 5, 0.3, rng);
  b.AssignExponentialProbabilities(0.1, rng);
  b.SetBoostWithBeta(2.0 + GetParam() % 3);
  DirectedGraph g = std::move(b).Build();
  EXPECT_GT(g.num_edges(), 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& e : g.OutEdges(v)) {
      EXPECT_LT(e.to, g.num_nodes());
      EXPECT_GE(e.p, 0.0f);
      EXPECT_LE(e.p, 1.0f);
      EXPECT_GE(e.p_boost, e.p);
      EXPECT_LE(e.p_boost, 1.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep, ::testing::Range(1, 11));

}  // namespace
}  // namespace kboost
