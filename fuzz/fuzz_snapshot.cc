// Fuzz harness for the snapshot loaders (src/io/pool_io): the other decoder
// that parses bytes from outside the process trust boundary. A refresh admin
// frame points the server at a snapshot path, so the v1/v2/v3 stream loader
// AND the v3 mmap validator must survive arbitrary file contents with a
// typed Status — never a crash, an overread of the mapping, or an
// unbounded allocation.
//
// Shape of one input: the bytes are written to a per-process temp file and
// loaded twice against a small fixed graph — once owned
// (LoadPoolSnapshot, exercising the stream reader and every codec decode)
// and once zero-copy (MmapPool, exercising the section-directory
// structural validation). When the owned load accepts the bytes, the loaded
// session must answer a solve: anything the validator lets through has to
// actually be servable, which is precisely the promise the loader's
// validation makes (the PR 9 corruption matrix distilled to a property).
//
// The graph is intentionally tiny (matching fuzz/gen_corpus.cc, whose
// checked-in seeds were snapshotted against the same graph) so accepted
// inputs solve in microseconds and the harness stays I/O bound, not
// solve bound.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <fstream>

#include <unistd.h>

#include "src/core/boost_session.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/io/pool_io.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

#define FUZZ_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FUZZ_ASSERT failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// The fixed graph every input is loaded against — identical to the one
// fuzz/gen_corpus.cc snapshots, so the checked-in seed corpus is loadable.
const DirectedGraph& FuzzGraph() {
  static const DirectedGraph* graph = [] {
    Rng rng(7);
    GraphBuilder b = BuildErdosRenyi(24, 96, rng);
    b.AssignConstantProbability(0.2);
    b.SetBoostWithBeta(2.0);
    return new DirectedGraph(std::move(b).Build());
  }();
  return *graph;
}

// One scratch file per process, reused across inputs (libFuzzer runs
// thousands of inputs per second; a mkstemp per input would be pure churn).
const std::string& ScratchPath() {
  static const std::string* path = [] {
    char buf[] = "/tmp/kboost_fuzz_snapshot_XXXXXX";
    const int fd = mkstemp(buf);
    FUZZ_ASSERT(fd >= 0);
    close(fd);
    return new std::string(buf);
  }();
  return *path;
}

void FuzzOne(const uint8_t* data, size_t size) {
  {
    std::ofstream out(ScratchPath(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }

  const DirectedGraph& graph = FuzzGraph();

  // Owned load: stream reader + codec decodes + deep validation.
  StatusOr<std::unique_ptr<BoostSession>> owned =
      LoadPoolSnapshot(graph, ScratchPath(), PoolLoadOptions{});
  if (owned.ok()) {
    // The loader's contract: anything it accepts is a prepared, servable
    // pool. A crash or wild answer here means validation let bad data by.
    BoostSession& session = **owned;
    FUZZ_ASSERT(session.prepared());
    BoostResult result = session.SolveForBudget(1);
    FUZZ_ASSERT(result.best_set.size() <= 1);
  }

  // Zero-copy load: mmap + section-directory structural validation, with
  // the deep walk ON so the fuzzer reaches the edge/critical-id range
  // checks too (a host refresh path runs them off by default, but the
  // validator's job is exactly these checks, so fuzz them).
  PoolLoadOptions mmap_options;
  mmap_options.use_mmap = true;
  mmap_options.verify_mapped = true;
  mmap_options.prefault = false;
  StatusOr<std::unique_ptr<BoostSession>> mapped =
      LoadPoolSnapshot(graph, ScratchPath(), mmap_options);
  if (mapped.ok()) {
    BoostSession& session = **mapped;
    FUZZ_ASSERT(session.prepared());
    BoostResult result = session.SolveForBudget(1);
    FUZZ_ASSERT(result.best_set.size() <= 1);
  }
}

}  // namespace
}  // namespace kboost

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  kboost::FuzzOne(data, size);
  return 0;
}
