// Standalone driver for the fuzz harnesses: replays a corpus and then runs a
// budget of deterministic mutations of it through LLVMFuzzerTestOneInput.
// Linked in when KBOOST_LIBFUZZER is OFF, so the harnesses build and run
// under any compiler (the CI smoke uses exactly this path); with libFuzzer
// available, configure -DKBOOST_LIBFUZZER=ON and this file is replaced by
// the real coverage-guided engine.
//
//   fuzz_wire [corpus_dir_or_file ...] [-runs=N] [-seed=S] [-max_len=B]
//
// Replay is sorted-order deterministic; mutations come from a SplitMix64
// stream seeded by -seed (default 1), so a given (corpus, seed, runs) triple
// is one reproducible execution — what a CI gate needs. A crashing mutation
// is dumped to ./crash-<index>.bin before the abort reaches the driver, so
// the failure is re-runnable by passing that file as an argument.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// Same-constant SplitMix64 as src/util/rng.h — self-contained here so the
// driver has zero dependencies on the library under test.
struct SplitMix64 {
  uint64_t state;
  explicit SplitMix64(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  // Unbiased-enough for fuzzing; bound > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }
};

std::vector<uint8_t> ReadFileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

// One mutation step: pick a strategy, apply it in place. Mirrors the
// classic libFuzzer core set (bit flip, byte set, chunk erase/insert/copy,
// interesting-value poke) without coverage feedback.
void MutateOnce(SplitMix64& rng, size_t max_len, std::vector<uint8_t>* data) {
  static constexpr uint32_t kInteresting32[] = {
      0,          1,          0x7Fu,       0x80u,       0xFFu,
      0x100u,     0x7FFFu,    0x8000u,     0xFFFFu,     0x10000u,
      0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu,
      0x5453424Bu /* the wire magic */, 0x00100000u /* 1 MiB length */};
  switch (rng.Below(6)) {
    case 0:  // flip one bit
      if (!data->empty()) {
        (*data)[rng.Below(data->size())] ^=
            static_cast<uint8_t>(1u << rng.Below(8));
      }
      break;
    case 1:  // overwrite one byte
      if (!data->empty()) {
        (*data)[rng.Below(data->size())] = static_cast<uint8_t>(rng.Next());
      }
      break;
    case 2: {  // erase a chunk
      if (!data->empty()) {
        const size_t at = rng.Below(data->size());
        const size_t len = 1 + rng.Below(std::min<size_t>(
                                   data->size() - at, 16));
        data->erase(data->begin() + static_cast<ptrdiff_t>(at),
                    data->begin() + static_cast<ptrdiff_t>(at + len));
      }
      break;
    }
    case 3: {  // insert random bytes
      const size_t at = data->empty() ? 0 : rng.Below(data->size() + 1);
      const size_t len = 1 + rng.Below(8);
      std::vector<uint8_t> chunk(len);
      for (uint8_t& b : chunk) b = static_cast<uint8_t>(rng.Next());
      data->insert(data->begin() + static_cast<ptrdiff_t>(at), chunk.begin(),
                   chunk.end());
      break;
    }
    case 4: {  // poke an interesting u32 (little-endian) at a random offset
      if (data->size() >= 4) {
        const size_t at = rng.Below(data->size() - 3);
        const uint32_t v = kInteresting32[rng.Below(
            sizeof(kInteresting32) / sizeof(kInteresting32[0]))];
        std::memcpy(data->data() + at, &v, sizeof(v));
      }
      break;
    }
    case 5: {  // duplicate a chunk to another offset (structure reuse)
      if (data->size() >= 2) {
        const size_t from = rng.Below(data->size());
        const size_t len =
            1 + rng.Below(std::min<size_t>(data->size() - from, 16));
        const size_t to = rng.Below(data->size() - len + 1);
        std::memmove(data->data() + to, data->data() + from, len);
      }
      break;
    }
  }
  if (data->size() > max_len) data->resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 0;
  uint64_t seed = 1;
  size_t max_len = 1 << 16;
  std::vector<std::filesystem::path> corpus_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) corpus_files.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(arg)) {
      corpus_files.push_back(arg);
    } else {
      std::fprintf(stderr, "unknown argument or missing path: %s\n",
                   arg.c_str());
      return 2;
    }
  }
  // Directory iteration order is filesystem-dependent; sort for determinism.
  std::sort(corpus_files.begin(), corpus_files.end());

  std::vector<std::vector<uint8_t>> corpus;
  corpus.reserve(corpus_files.size());
  for (const auto& path : corpus_files) {
    corpus.push_back(ReadFileBytes(path));
    LLVMFuzzerTestOneInput(corpus.back().data(), corpus.back().size());
  }
  std::fprintf(stderr, "replayed %zu corpus inputs\n", corpus.size());

  if (runs > 0 && corpus.empty()) {
    // No seeds: mutate from an empty input rather than silently doing
    // nothing (the harnesses must hold on from-scratch garbage too).
    corpus.emplace_back();
  }
  SplitMix64 rng(seed);
  for (uint64_t i = 0; i < runs; ++i) {
    std::vector<uint8_t> input = corpus[rng.Below(corpus.size())];
    const uint64_t steps = 1 + rng.Below(4);
    for (uint64_t s = 0; s < steps; ++s) MutateOnce(rng, max_len, &input);
    // Persist before running so a crash/abort leaves a repro on disk.
    const std::string crash_path = "crash-" + std::to_string(i) + ".bin";
    {
      std::ofstream out(crash_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(input.data()),
                static_cast<std::streamsize>(input.size()));
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
    std::filesystem::remove(crash_path);
  }
  std::fprintf(stderr, "completed %llu mutation runs (seed=%llu)\n",
               static_cast<unsigned long long>(runs),
               static_cast<unsigned long long>(seed));
  return 0;
}
