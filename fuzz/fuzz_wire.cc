// Fuzz harness for the untrusted side of the wire protocol (src/net/wire):
// the frame-header decoder and every body decoder that parses bytes a
// hostile peer controls. The server feeds network bytes through exactly
// these functions before trusting anything, so "no crash, no hang, no
// overread on arbitrary input" here is the protocol's memory-safety story.
//
// Shape of one input: the bytes are fed (1) through DecodeFrameHeader plus
// the body decoder the decoded type selects — the server's real parse path —
// and (2) through every body decoder directly, so a mutation does not need a
// valid 16-byte header before it can reach DecodeQueryBody and friends.
// Whenever a body decodes, it is re-encoded and re-decoded and the results
// compared field for field: decode∘encode must be the identity on anything
// the decoder accepts, or the client and server disagree about what was
// said.
//
// Builds two ways (see CMakeLists.txt):
//   * KBOOST_LIBFUZZER=ON  — libFuzzer drives (Clang, -fsanitize=fuzzer),
//   * default              — fuzz/standalone_main.cc replays the checked-in
//                            corpus plus deterministic mutations of it; this
//                            is the CI smoke and works under GCC.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/net/wire.h"

namespace kboost {
namespace {

// Fuzzers abort on property violations; KB_CHECK-style logging is overkill.
#define FUZZ_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FUZZ_ASSERT failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

void CheckQueryRoundTrip(const uint8_t* body, size_t len) {
  WireQuery query;
  if (!DecodeQueryBody(body, len, &query).ok()) return;
  const std::string frame = EncodeQueryFrame(0x1234u, query);
  FUZZ_ASSERT(frame.size() >= kFrameHeaderBytes);
  WireQuery again;
  FUZZ_ASSERT(DecodeQueryBody(
                  reinterpret_cast<const uint8_t*>(frame.data()) +
                      kFrameHeaderBytes,
                  frame.size() - kFrameHeaderBytes, &again)
                  .ok());
  FUZZ_ASSERT(again.pool == query.pool);
  FUZZ_ASSERT(again.k == query.k);
  FUZZ_ASSERT(again.mode == query.mode);
  FUZZ_ASSERT(again.num_threads == query.num_threads);
  FUZZ_ASSERT(again.deadline_ms == query.deadline_ms);
}

void CheckQueryReplyRoundTrip(const uint8_t* body, size_t len) {
  WireQueryReply reply;
  if (!DecodeQueryReplyBody(body, len, &reply).ok()) return;
  const std::string frame = EncodeQueryReplyFrame(7u, reply);
  WireQueryReply again;
  FUZZ_ASSERT(DecodeQueryReplyBody(
                  reinterpret_cast<const uint8_t*>(frame.data()) +
                      kFrameHeaderBytes,
                  frame.size() - kFrameHeaderBytes, &again)
                  .ok());
  FUZZ_ASSERT(again.status.code() == reply.status.code());
  FUZZ_ASSERT(again.status.message() == reply.status.message());
  FUZZ_ASSERT(again.pool_version == reply.pool_version);
  FUZZ_ASSERT(again.degraded == reply.degraded);
  FUZZ_ASSERT(again.best_set == reply.best_set);
  FUZZ_ASSERT(again.lb_set == reply.lb_set);
  FUZZ_ASSERT(again.delta_set == reply.delta_set);
  // Doubles travel as IEEE-754 bit patterns, so bit-compare via memcmp —
  // operator== would erase a NaN-preservation bug.
  FUZZ_ASSERT(std::memcmp(&again.best_estimate, &reply.best_estimate,
                          sizeof(double)) == 0);
  FUZZ_ASSERT(std::memcmp(&again.lb_mu_hat, &reply.lb_mu_hat,
                          sizeof(double)) == 0);
  FUZZ_ASSERT(std::memcmp(&again.lb_delta_hat, &reply.lb_delta_hat,
                          sizeof(double)) == 0);
  FUZZ_ASSERT(std::memcmp(&again.delta_delta_hat, &reply.delta_delta_hat,
                          sizeof(double)) == 0);
  FUZZ_ASSERT(again.pool_budget == reply.pool_budget);
  FUZZ_ASSERT(again.pool_reused == reply.pool_reused);
  FUZZ_ASSERT(again.num_samples == reply.num_samples);
  FUZZ_ASSERT(again.num_boostable == reply.num_boostable);
}

void CheckRefreshRoundTrip(const uint8_t* body, size_t len) {
  WireRefresh refresh;
  if (!DecodeRefreshBody(body, len, &refresh).ok()) return;
  const std::string frame = EncodeRefreshFrame(3u, refresh);
  WireRefresh again;
  FUZZ_ASSERT(DecodeRefreshBody(
                  reinterpret_cast<const uint8_t*>(frame.data()) +
                      kFrameHeaderBytes,
                  frame.size() - kFrameHeaderBytes, &again)
                  .ok());
  FUZZ_ASSERT(again.pool == refresh.pool);
  FUZZ_ASSERT(again.snapshot_path == refresh.snapshot_path);
}

void CheckRefreshReplyRoundTrip(const uint8_t* body, size_t len) {
  WireRefreshReply reply;
  if (!DecodeRefreshReplyBody(body, len, &reply).ok()) return;
  const std::string frame = EncodeRefreshReplyFrame(9u, reply);
  WireRefreshReply again;
  FUZZ_ASSERT(DecodeRefreshReplyBody(
                  reinterpret_cast<const uint8_t*>(frame.data()) +
                      kFrameHeaderBytes,
                  frame.size() - kFrameHeaderBytes, &again)
                  .ok());
  FUZZ_ASSERT(again.status.code() == reply.status.code());
  FUZZ_ASSERT(again.status.message() == reply.status.message());
  FUZZ_ASSERT(again.version == reply.version);
}

void CheckStatsReplyDecode(const uint8_t* body, size_t len) {
  ServiceStatsSnapshot snapshot;
  (void)DecodeStatsReplyBody(body, len, &snapshot);
}

void CheckErrorRoundTrip(const uint8_t* body, size_t len) {
  Status error = Status::Ok();
  if (!DecodeErrorBody(body, len, &error).ok()) return;
  Status prefix = Status::Ok();
  FUZZ_ASSERT(DecodeStatusPrefix(body, len, &prefix).ok());
  FUZZ_ASSERT(prefix.code() == error.code());
  // An OK "error" frame is undecodable-as-error but fine as a prefix; only
  // re-encode genuine errors (EncodeErrorFrame requires !ok).
  if (error.ok()) return;
  const std::string frame = EncodeErrorFrame(1u, error);
  Status again = Status::Ok();
  FUZZ_ASSERT(DecodeErrorBody(reinterpret_cast<const uint8_t*>(frame.data()) +
                                  kFrameHeaderBytes,
                              frame.size() - kFrameHeaderBytes, &again)
                  .ok());
  FUZZ_ASSERT(again.code() == error.code());
  FUZZ_ASSERT(again.message() == error.message());
}

void FuzzOne(const uint8_t* data, size_t size) {
  // (1) The server's real parse path: header first, then the body decoder
  // the decoded type selects, over the declared body span.
  if (size >= kFrameHeaderBytes) {
    FrameHeader header;
    const Status status =
        DecodeFrameHeader(data, kDefaultMaxFrameBytes, &header);
    if (status.ok()) {
      const uint8_t* body = data + kFrameHeaderBytes;
      const size_t avail = size - kFrameHeaderBytes;
      // The server never hands a decoder more than body_len bytes; honor
      // the declared length when the input actually carries it.
      const size_t len = header.body_len <= avail ? header.body_len : avail;
      switch (header.type) {
        case FrameType::kQuery:
          CheckQueryRoundTrip(body, len);
          break;
        case FrameType::kQueryReply:
          CheckQueryReplyRoundTrip(body, len);
          break;
        case FrameType::kStatsReply:
          CheckStatsReplyDecode(body, len);
          break;
        case FrameType::kRefresh:
          CheckRefreshRoundTrip(body, len);
          break;
        case FrameType::kRefreshReply:
          CheckRefreshReplyRoundTrip(body, len);
          break;
        case FrameType::kError:
          CheckErrorRoundTrip(body, len);
          break;
        case FrameType::kStats:
        case FrameType::kShutdown:
        case FrameType::kShutdownReply:
          break;  // body-less frames; nothing to parse
      }
    }
  }

  // (2) Every body decoder directly over the whole input, so reaching a
  // decoder does not require 16 valid header bytes first.
  CheckQueryRoundTrip(data, size);
  CheckQueryReplyRoundTrip(data, size);
  CheckStatsReplyDecode(data, size);
  CheckRefreshRoundTrip(data, size);
  CheckRefreshReplyRoundTrip(data, size);
  CheckErrorRoundTrip(data, size);

  // (3) Wire status codes: every byte value either maps to a StatusCode that
  // maps back to itself, or is typed-rejected.
  if (size >= 1) {
    StatusOr<StatusCode> code = StatusCodeFromWire(data[0]);
    if (code.ok()) FUZZ_ASSERT(WireCodeFromStatus(*code) == data[0]);
  }
}

}  // namespace
}  // namespace kboost

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  kboost::FuzzOne(data, size);
  return 0;
}
