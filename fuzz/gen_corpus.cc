// Corpus generator for the fuzz harnesses: writes the checked-in seed
// corpus under fuzz/corpus/{wire,snapshot}. Regenerate after a protocol or
// snapshot-format change:
//
//   ./build/fuzz_gen_corpus fuzz/corpus
//
// Wire seeds are one valid frame of every type plus one instance of each
// header rejection (bad magic / version / flags / type / oversized length /
// truncation) — the decoder-hardening matrix from tests/net_test.cc as
// files. Snapshot seeds are v3-nop / v3-varint / v2 snapshots of one tiny
// fixed pool (the same graph fuzz_snapshot.cc loads against) plus one file
// per corruption-matrix case from tests/snapshot_test.cc, so the mutation
// fuzzer starts at the validator's known edges instead of rediscovering
// them from garbage.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "src/core/boost_session.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/io/pool_io.h"
#include "src/net/wire.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

namespace fs = std::filesystem;

void WriteCase(const fs::path& dir, const std::string& name,
               const std::string& bytes) {
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  KB_CHECK(out.good());
}

void PokeU32(std::string* bytes, size_t offset, uint32_t value) {
  KB_CHECK(offset + sizeof(value) <= bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

void PokeU64(std::string* bytes, size_t offset, uint64_t value) {
  KB_CHECK(offset + sizeof(value) <= bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

uint64_t PeekU64(const std::string& bytes, size_t offset) {
  uint64_t value;
  KB_CHECK(offset + sizeof(value) <= bytes.size());
  std::memcpy(&value, bytes.data() + offset, sizeof(value));
  return value;
}

// ---- wire seeds -----------------------------------------------------------

void GenerateWireCorpus(const fs::path& dir) {
  fs::create_directories(dir);

  WireQuery query;
  query.pool = "default";
  query.k = 5;
  query.mode = SolveMode::kAuto;
  query.num_threads = 4;
  query.deadline_ms = 250;
  WriteCase(dir, "query.bin", EncodeQueryFrame(1, query));

  WireQuery lb_query;
  lb_query.pool = "a-much-longer-pool-name-with-punct._-chars";
  lb_query.k = std::numeric_limits<uint64_t>::max();
  lb_query.mode = SolveMode::kLbOnly;
  WriteCase(dir, "query_lb_extreme_k.bin", EncodeQueryFrame(2, lb_query));

  WireQueryReply reply;
  reply.status = Status::Ok();
  reply.pool_version = 3;
  reply.degraded = true;
  reply.solve_seconds = 0.0625;
  reply.best_set = {1, 2, 3};
  reply.best_estimate = 12.5;
  reply.lb_set = {4, 5};
  reply.lb_mu_hat = 7.25;
  reply.lb_delta_hat = 1.5;
  reply.delta_set = {6};
  reply.delta_delta_hat = std::numeric_limits<double>::infinity();
  reply.pool_budget = 10;
  reply.pool_reused = true;
  reply.num_samples = 4096;
  reply.num_boostable = 17;
  WriteCase(dir, "query_reply_ok.bin", EncodeQueryReplyFrame(1, reply));

  WireQueryReply shed;
  shed.status = Status::ResourceExhausted("admission queue full");
  WriteCase(dir, "query_reply_shed.bin", EncodeQueryReplyFrame(9, shed));

  WriteCase(dir, "stats.bin", EncodeStatsFrame(4));

  ServiceStatsSnapshot stats;
  PoolStatsSnapshot pool;
  pool.pool = "default";
  pool.version = 2;
  pool.refreshes = 1;
  pool.queries = 100;
  pool.errors = 3;
  pool.shed = 2;
  pool.deadline_misses = 1;
  pool.degraded = 4;
  pool.load_retries = 1;
  stats.pools.push_back(pool);
  stats.not_found = 5;
  stats.in_flight = 2;
  stats.queued = 1;
  stats.admitted = 100;
  stats.shed = 2;
  stats.queue_timeouts = 1;
  WriteCase(dir, "stats_reply.bin", EncodeStatsReplyFrame(4, stats));

  WireRefresh refresh;
  refresh.pool = "default";
  refresh.snapshot_path = "/var/lib/kboost/pool.v3.kbsnap";
  WriteCase(dir, "refresh.bin", EncodeRefreshFrame(5, refresh));

  WireRefreshReply refresh_reply;
  refresh_reply.status = Status::Ok();
  refresh_reply.version = 4;
  WriteCase(dir, "refresh_reply.bin",
            EncodeRefreshReplyFrame(5, refresh_reply));

  WriteCase(dir, "shutdown.bin", EncodeShutdownFrame(6));
  WriteCase(dir, "shutdown_reply.bin", EncodeShutdownReplyFrame(6));

  WriteCase(dir, "error.bin",
            EncodeErrorFrame(7, Status::InvalidArgument("bad frame: magic")));

  // Header rejection matrix — handcraft one file per rejected axis.
  const std::string valid = EncodeQueryFrame(8, query);

  std::string bad_magic = valid;
  PokeU32(&bad_magic, 0, 0x4B525744u);
  WriteCase(dir, "bad_magic.bin", bad_magic);

  std::string bad_version = valid;
  bad_version[4] = static_cast<char>(kWireVersion + 1);
  WriteCase(dir, "bad_version.bin", bad_version);

  std::string bad_flags = valid;
  bad_flags[6] = 0x01;
  WriteCase(dir, "nonzero_flags.bin", bad_flags);

  std::string bad_type = valid;
  bad_type[5] = 0x7F;
  WriteCase(dir, "unknown_type.bin", bad_type);

  std::string oversized = valid;
  PokeU32(&oversized, 12, 0xFFFFFFFFu);
  WriteCase(dir, "oversized_body_len.bin", oversized);

  WriteCase(dir, "truncated_header.bin", valid.substr(0, 7));
  WriteCase(dir, "truncated_body.bin",
            valid.substr(0, kFrameHeaderBytes + 3));

  std::string trailing = valid;
  trailing += "XX";  // body_len still claims the original length
  WriteCase(dir, "trailing_bytes.bin", trailing);
}

// ---- snapshot seeds -------------------------------------------------------

// MUST match fuzz_snapshot.cc's FuzzGraph(): the harness loads every corpus
// file against this exact graph.
DirectedGraph CorpusGraph() {
  Rng rng(7);
  GraphBuilder b = BuildErdosRenyi(24, 96, rng);
  b.AssignConstantProbability(0.2);
  b.SetBoostWithBeta(2.0);
  return std::move(b).Build();
}

// v3 layout landmarks (tests/snapshot_test.cc documents the layout): the
// 128-byte v2 header prefix, the 32-byte extension, the seed list, then the
// per-shard section directory.
constexpr size_t kNumThreadsOffset = 64;
constexpr size_t kEndianOffset = 128;
size_t DirOffset(size_t num_seeds) { return 128 + 32 + 4 * num_seeds; }
size_t SectionEntryOffset(size_t dir, size_t shard, size_t section) {
  return dir + shard * (8 + 8 * 32) + 8 + section * 32;
}

void GenerateSnapshotCorpus(const fs::path& dir) {
  fs::create_directories(dir);

  DirectedGraph graph = CorpusGraph();
  const std::vector<NodeId> seeds = {0, 5};
  BoostOptions options;
  options.k = 2;
  options.seed = 11;
  options.num_threads = 2;
  options.num_shards = 2;
  options.max_samples = 64;  // keep the checked-in seed files a few KiB
  BoostSession session(graph, seeds, options);
  session.Prepare();

  const std::string scratch =
      (fs::temp_directory_path() / "kboost_gen_corpus.bin").string();
  auto save_bytes = [&](SnapshotCodec codec,
                        uint32_t format_version) -> std::string {
    PoolSaveOptions save;
    save.codec = codec;
    save.format_version = format_version;
    StatusOr<PoolSaveResult> result = SavePoolSnapshot(session, scratch, save);
    KB_CHECK(result.ok());
    std::ifstream in(scratch, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };

  const std::string v3_nop = save_bytes(SnapshotCodec::kNop, 3);
  const std::string v3_varint = save_bytes(SnapshotCodec::kVarint, 3);
  const std::string v2 = save_bytes(SnapshotCodec::kNop, 2);
  fs::remove(scratch);

  WriteCase(dir, "v3_nop.bin", v3_nop);
  WriteCase(dir, "v3_varint.bin", v3_varint);
  WriteCase(dir, "v2_stream.bin", v2);

  // The PR 9 corruption matrix as seed files: each is the valid v3-nop
  // snapshot with one structural lie, mirroring tests/snapshot_test.cc.
  const size_t d = DirOffset(seeds.size());
  KB_CHECK(v3_nop.size() > SectionEntryOffset(d, 1, 7) + 32);

  WriteCase(dir, "truncated.bin", v3_nop.substr(0, v3_nop.size() - 5));
  WriteCase(dir, "truncated_header.bin", v3_nop.substr(0, 40));

  std::string misaligned = v3_nop;
  const size_t entry0 = SectionEntryOffset(d, 0, 0);
  PokeU64(&misaligned, entry0, PeekU64(misaligned, entry0) + 2);
  WriteCase(dir, "misaligned_section.bin", misaligned);

  std::string overlapping = v3_nop;
  PokeU64(&overlapping, SectionEntryOffset(d, 0, 1),
          PeekU64(overlapping, SectionEntryOffset(d, 0, 0)));
  WriteCase(dir, "overlapping_sections.bin", overlapping);

  std::string overstated = v3_nop;
  PokeU64(&overstated, SectionEntryOffset(d, 0, 2) + 8, uint64_t{1} << 60);
  WriteCase(dir, "overstated_section.bin", overstated);

  std::string bad_codec = v3_nop;
  PokeU32(&bad_codec, SectionEntryOffset(d, 0, 0) + 24, 77);
  WriteCase(dir, "unknown_codec.bin", bad_codec);

  std::string inflated = v3_nop;
  PokeU64(&inflated, SectionEntryOffset(d, 0, 5) + 16, uint64_t{1} << 40);
  WriteCase(dir, "inflated_value_count.bin", inflated);

  std::string nop_mismatch = v3_nop;
  const size_t entry5 = SectionEntryOffset(d, 0, 5);
  const uint64_t raw = PeekU64(nop_mismatch, entry5 + 16);
  if (raw >= 8) {
    PokeU64(&nop_mismatch, entry5 + 16, raw - 4);
    WriteCase(dir, "nop_size_mismatch.bin", nop_mismatch);
  }

  std::string byteswapped = v3_nop;
  PokeU32(&byteswapped, kEndianOffset, 0x04030201u);
  WriteCase(dir, "endian_mismatch.bin", byteswapped);

  std::string wild_threads = v3_nop;
  PokeU32(&wild_threads, kNumThreadsOffset, 0xFFFFFFFFu);
  WriteCase(dir, "wild_thread_count.bin", wild_threads);

  // Regression seeds for the two defects the fuzzer found when this harness
  // first ran. (1) A critical entry pointing at the super-seed slot (local
  // 0) used to pass deep validation and smuggle the slot's kInvalidNode
  // global id into the coverage index — a segfault at first solve.
  std::string superseed_critical = v3_nop;
  const size_t crit_entry = SectionEntryOffset(d, 0, 7);
  const uint64_t crit_off = PeekU64(superseed_critical, crit_entry);
  PokeU32(&superseed_critical, crit_off, 0);
  WriteCase(dir, "critical_superseed.bin", superseed_critical);

  // (2) A corrupt header ℓ (offset 40) used to reach the trusting
  // BoostSession constructor and abort the process via KB_CHECK instead of
  // being rejected typed.
  std::string zero_ell = v3_nop;
  PokeU64(&zero_ell, 40, 0);  // 0.0 ℓ — Validate() must reject, not abort
  WriteCase(dir, "zero_ell.bin", zero_ell);
}

}  // namespace
}  // namespace kboost

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus_root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root = argv[1];
  kboost::GenerateWireCorpus(root / "wire");
  kboost::GenerateSnapshotCorpus(root / "snapshot");
  std::fprintf(stderr, "corpus written under %s\n", root.c_str());
  return 0;
}
