// kboostd — the k-boosting serving daemon: one BoostService over TCP with
// the length-prefixed binary protocol of docs/PROTOCOL.md.
//
//   kboostd --graph=graph.txt --pool=digg=pool.bin [--pool=...]
//           [--listen=7447] [--bind=ADDR] [--mmap-pool] [--workers=N]
//           [--queue-cap=N] [--deadline-ms=N] [--degrade=F]
//           [--dispatch-queue=N] [--max-connections=N]
//           [--drain-deadline-ms=N] [--no-remote-shutdown]
//
// --listen=0 (the default) binds an ephemeral port and prints it; scripts
// parse the "kboostd listening on HOST:PORT" line. SIGINT/SIGTERM trigger
// the graceful drain (acceptor closed, queued requests answered
// kUnavailable, in-flight solves given --drain-deadline-ms, exit 0).
// `kboost_cli serve` runs the identical command in-process.

#include "src/net/daemon.h"

int main(int argc, char** argv) {
  return kboost::RunServeCommand(argc, argv, 1);
}
