#ifndef KBOOST_UTIL_TIMER_H_
#define KBOOST_UTIL_TIMER_H_

#include <chrono>

namespace kboost {

/// Monotonic wall-clock timer for reporting experiment running times.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double Seconds() const;
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kboost

#endif  // KBOOST_UTIL_TIMER_H_
