#ifndef KBOOST_UTIL_FAULT_H_
#define KBOOST_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>

namespace kboost {

/// Named fault-injection points compiled into the library. Each site is a
/// place where production code asks the global injector "fail here?" or
/// "stall here?" before doing the real work. Sites cost one relaxed atomic
/// load when nothing is armed, so they stay in release builds and the chaos
/// suite exercises the exact binaries that serve traffic.
enum class FaultSite : int {
  kSnapshotOpen = 0,   ///< opening a snapshot file (load / refresh)
  kSnapshotRead,       ///< a body read from an open snapshot stream
  kSnapshotShortRead,  ///< truncate a read mid-record (corruption path)
  kSnapshotMmap,       ///< mmap()ing a snapshot for zero-copy serving
  kAllocPressure,      ///< large-arena reservation before pool restore
  kSolveStart,         ///< entry of a prepared solve (delay site)
  kPickStride,         ///< per-stride delay inside the Δ̂ re-evaluation scan
  kNumSites,           ///< sentinel — keep last
};

/// Returns a short stable name for a site ("snapshot_open", ...).
const char* FaultSiteName(FaultSite site);

/// Process-global deterministic fault injector.
///
/// Tests arm a site with a Plan; production call sites consult ShouldFail /
/// MaybeDelay. Decisions are a pure function of (seed, site, per-site hit
/// index), so a plan that says "fail the first 2 hits, then 10% of the rest"
/// produces the same failure *count* under any thread interleaving — which is
/// what chaos assertions need (exact hit→thread assignment still varies).
///
/// Disarmed cost: one relaxed load of `any_armed_` per site visit. Never arm
/// faults in production processes; this is a test/bench seam.
class FaultInjector {
 public:
  /// What an armed site should do on each hit.
  struct Plan {
    /// Fail the first `fail_first` hits unconditionally — the deterministic
    /// "transient fault heals after N attempts" shape retry tests want.
    uint64_t fail_first = 0;
    /// After fail_first, fail each hit independently with this probability
    /// (seeded, reproducible). 0 = never, 1 = always.
    double probability = 0.0;
    /// Sleep this long on every hit (delay sites; 0 = no delay). Failure
    /// sites may also set it to model slow-then-failing I/O.
    int64_t delay_micros = 0;
  };

  /// The process-wide injector used by all production sites.
  static FaultInjector& Global();

  /// Arms `site` with `plan`, resetting its hit/failure counters.
  void Arm(FaultSite site, const Plan& plan);
  /// Disarms `site`; counters keep their values for post-hoc assertions.
  void Disarm(FaultSite site);
  /// Disarms every site and zeroes all counters — test teardown.
  void DisarmAll();
  /// Reseeds the probability stream (applies to subsequent hits).
  void set_seed(uint64_t seed) {
    seed_.store(seed, std::memory_order_relaxed);
  }

  /// Records a hit at `site` and returns true when the plan says to fail.
  /// Also applies the plan's delay (slow-then-fail modelling).
  bool ShouldFail(FaultSite site);
  /// Records a hit and applies only the plan's delay (delay-only sites).
  void MaybeDelay(FaultSite site);

  /// True when any site is armed — the fast gate call sites check first.
  bool any_armed() const {
    return any_armed_.load(std::memory_order_relaxed) != 0;
  }

  /// Total hits / injected failures at `site` since it was last armed.
  uint64_t hits(FaultSite site) const;
  uint64_t failures(FaultSite site) const;

 private:
  FaultInjector() = default;

  /// Lock-free by design, not by accident: every field is an independent
  /// std::atomic and no invariant spans two of them, so there is nothing for
  /// a mutex (or a KB_GUARDED_BY contract) to protect. The one cross-field
  /// ordering that matters — a plan must be fully published before a hit can
  /// observe armed == true — is carried by the release exchange in Arm()
  /// pairing with the acquire load in ShouldFail()/MaybeDelay().
  struct Site {
    std::atomic<bool> armed{false};
    std::atomic<uint64_t> fail_first{0};
    std::atomic<double> probability{0.0};
    std::atomic<int64_t> delay_micros{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> failures{0};
  };

  Site& site(FaultSite s) { return sites_[static_cast<int>(s)]; }
  const Site& site(FaultSite s) const { return sites_[static_cast<int>(s)]; }

  Site sites_[static_cast<int>(FaultSite::kNumSites)];
  std::atomic<int> any_armed_{0};  // count of armed sites
  std::atomic<uint64_t> seed_{0x9E3779B97F4A7C15ULL};
};

/// Call-site helper: true when the armed plan for `site` injects a failure
/// on this hit. One relaxed load when nothing is armed.
inline bool MaybeInjectFault(FaultSite site) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.any_armed()) return false;
  return injector.ShouldFail(site);
}

/// Call-site helper for delay-only sites (kSolveStart, kPickStride).
inline void MaybeInjectFaultDelay(FaultSite site) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.any_armed()) return;
  injector.MaybeDelay(site);
}

}  // namespace kboost

#endif  // KBOOST_UTIL_FAULT_H_
