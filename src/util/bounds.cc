#include "src/util/bounds.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace kboost {

double LogChoose(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double ImmBounds::EpsilonPrime() const { return epsilon * std::sqrt(2.0); }

double ImmBounds::LambdaPrime() const {
  KB_CHECK(n >= 2);
  const double eps_p = EpsilonPrime();
  const double logcnk = LogChoose(n, std::min(k, n));
  const double log_n = std::log(static_cast<double>(n));
  const double log2n = std::log2(static_cast<double>(n));
  return (2.0 + 2.0 / 3.0 * eps_p) *
         (logcnk + ell * log_n + std::log(std::max(1.0, log2n))) *
         static_cast<double>(n) / (eps_p * eps_p);
}

double ImmBounds::LambdaStar() const {
  KB_CHECK(n >= 2);
  const double logcnk = LogChoose(n, std::min(k, n));
  const double log_n = std::log(static_cast<double>(n));
  const double e = std::exp(1.0);
  const double alpha = std::sqrt(ell * log_n + std::log(2.0));
  const double beta =
      std::sqrt((1.0 - 1.0 / e) * (logcnk + ell * log_n + std::log(2.0)));
  const double factor = (1.0 - 1.0 / e) * alpha + beta;
  return 2.0 * static_cast<double>(n) * factor * factor /
         (epsilon * epsilon);
}

int ImmBounds::NumSearchLevels() const {
  int levels = static_cast<int>(std::floor(std::log2(
                   std::max<uint64_t>(2, n)))) - 1;
  return std::max(1, levels);
}

}  // namespace kboost
