#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace kboost {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {
void DieStatusOrValue(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace kboost
