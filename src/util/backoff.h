#ifndef KBOOST_UTIL_BACKOFF_H_
#define KBOOST_UTIL_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace kboost {

/// Retry schedule for transient faults: exponential growth with full jitter
/// (each sleep is uniform in [0, current_cap]), so concurrent retriers
/// hitting the same failing resource decorrelate instead of thundering.
struct BackoffPolicy {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 3;
  /// Jitter cap of the first retry sleep.
  int64_t initial_delay_micros = 200;
  /// Upper bound on the jitter cap.
  int64_t max_delay_micros = 50000;
  /// Cap growth factor per retry.
  double multiplier = 2.0;
};

/// True for status codes worth retrying: I/O errors (the disk/page-cache
/// faults the chaos harness injects) and resource exhaustion (allocation
/// pressure that may clear). Corruption, not-found and argument errors are
/// permanent — retrying them only delays the real answer.
inline bool IsTransientStatus(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kUnavailable;
}

/// One retry loop's worth of state. Usage:
///
///   JitteredBackoff backoff(policy, seed);
///   Status s;
///   do {
///     s = TryTheThing();
///   } while (!s.ok() && IsTransientStatus(s) && backoff.SleepAndRetry());
///   // backoff.retries() sleeps were taken; s is the final outcome.
///
/// Deterministic given (policy, seed): tests seed it and assert the exact
/// retry count.
class JitteredBackoff {
 public:
  explicit JitteredBackoff(const BackoffPolicy& policy,
                           uint64_t seed = 0x243F6A8885A308D3ULL)
      : policy_(policy), rng_state_(seed) {}

  /// Call after a failed attempt. Sleeps a jittered delay and returns true
  /// when the policy allows another attempt; returns false (no sleep) once
  /// attempts are exhausted.
  bool SleepAndRetry() {
    ++attempts_;
    if (attempts_ >= policy_.max_attempts) return false;
    int64_t cap = policy_.initial_delay_micros;
    for (int i = 1; i < attempts_; ++i) {
      cap = static_cast<int64_t>(static_cast<double>(cap) *
                                 policy_.multiplier);
      if (cap >= policy_.max_delay_micros) break;
    }
    cap = std::min<int64_t>(std::max<int64_t>(cap, 0),
                            policy_.max_delay_micros);
    if (cap > 0) {
      const uint64_t draw = SplitMix64(rng_state_);
      const int64_t sleep_us =
          static_cast<int64_t>(draw % static_cast<uint64_t>(cap + 1));
      if (sleep_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
    }
    ++retries_;
    return true;
  }

  /// Failed attempts observed so far (SleepAndRetry calls).
  int attempts() const { return attempts_; }
  /// Sleeps actually taken — the number of re-attempts granted.
  int retries() const { return retries_; }

 private:
  BackoffPolicy policy_;
  uint64_t rng_state_;
  int attempts_ = 0;
  int retries_ = 0;
};

}  // namespace kboost

#endif  // KBOOST_UTIL_BACKOFF_H_
