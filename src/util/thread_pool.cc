#include "src/util/thread_pool.h"

#include <algorithm>

#include "src/util/logging.h"

namespace kboost {

int DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void RunOnThreads(int num_threads, const std::function<void(int)>& body) {
  KB_CHECK(num_threads >= 1) << "num_threads=" << num_threads;
  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) {
    workers.emplace_back([&body, t] { body(t); });
  }
  body(0);
  for (auto& w : workers) w.join();
}

void ParallelFor(size_t count, int num_threads,
                 const std::function<void(size_t, int)>& body, size_t chunk) {
  if (count == 0) return;
  KB_CHECK(chunk >= 1);
  num_threads = std::max(1, std::min<int>(num_threads,
                                          static_cast<int>((count + chunk - 1) / chunk)));
  if (num_threads == 1) {
    for (size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }
  std::atomic<size_t> cursor{0};
  RunOnThreads(num_threads, [&](int thread_index) {
    for (;;) {
      size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) break;
      size_t end = std::min(count, begin + chunk);
      for (size_t i = begin; i < end; ++i) body(i, thread_index);
    }
  });
}

}  // namespace kboost
