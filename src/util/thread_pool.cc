#include "src/util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace kboost {

namespace {
thread_local bool tls_in_pool_worker = false;
}  // namespace

int DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) return 1;
  // Clamp to the pool cap so default-built BoostOptions always validate.
  return std::min(static_cast<int>(hc), ThreadPool::kMaxWorkers);
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: workers block in a condition-variable wait and are
  // reclaimed by process teardown; destroying the pool during static
  // destruction would race with any late ParallelFor.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

bool ThreadPool::InWorker() { return tls_in_pool_worker; }

int ThreadPool::num_started() const {
  MutexLock lock(mutex_);
  return static_cast<int>(workers_.size());
}

ThreadPool::~ThreadPool() {
  // Swap the worker vector out under the lock: after shutdown_ is set no new
  // worker is started, and joining a local copy means a stray EnsureWorkers
  // racing destruction can never append to the vector being iterated.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers) w.join();
}

void ThreadPool::EnsureWorkers(int count) {
  MutexLock lock(mutex_);
  count = std::min(count, kMaxWorkers);
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  mutex_.Lock();
  for (;;) {
    while (!shutdown_ && queue_.empty()) work_cv_.Wait(mutex_);
    if (shutdown_) {
      mutex_.Unlock();
      return;
    }
    Job* job = queue_.front();
    const int idx = job->next_index.fetch_add(1, std::memory_order_relaxed);
    if (idx + 1 >= job->num_workers) queue_.pop_front();  // last helper slot
    mutex_.Unlock();
    (*job->body)(idx);
    {
      // Decrement and notify under the job's mutex: the moment the caller
      // observes remaining == 0 it may return and destroy the stack-
      // allocated Job, so nothing may touch it after this lock releases.
      MutexLock done_lock(job->done_mutex);
      job->remaining.fetch_sub(1, std::memory_order_relaxed);
      job->done_cv.NotifyOne();
    }
    mutex_.Lock();
  }
}

void ThreadPool::Run(int num_workers, const std::function<void(int)>& body) {
  KB_CHECK(num_workers >= 1) << "num_workers=" << num_workers;
  if (num_workers == 1 || tls_in_pool_worker) {
    // Nested parallel regions run inline: every index is still invoked
    // exactly once, on the calling worker.
    for (int t = 0; t < num_workers; ++t) body(t);
    return;
  }
  EnsureWorkers(num_workers - 1);

  Job job;
  job.body = &body;
  job.num_workers = num_workers;
  job.next_index.store(1, std::memory_order_relaxed);  // 0 is the caller
  job.remaining.store(num_workers - 1, std::memory_order_relaxed);
  {
    MutexLock lock(mutex_);
    queue_.push_back(&job);
  }
  work_cv_.NotifyAll();

  body(0);

  MutexLock done_lock(job.done_mutex);
  while (job.remaining.load(std::memory_order_relaxed) != 0) {
    job.done_cv.Wait(job.done_mutex);
  }
}

void RunOnThreads(int num_threads, const std::function<void(int)>& body) {
  ThreadPool::Global().Run(num_threads, body);
}

void ParallelFor(size_t count, int num_threads,
                 const std::function<void(size_t, int)>& body, size_t chunk) {
  if (count == 0) return;
  KB_CHECK(chunk >= 1);
  num_threads = std::max(1, std::min<int>(num_threads,
                                          static_cast<int>((count + chunk - 1) / chunk)));
  if (num_threads == 1) {
    for (size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }
  std::atomic<size_t> cursor{0};
  RunOnThreads(num_threads, [&](int thread_index) {
    for (;;) {
      size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) break;
      size_t end = std::min(count, begin + chunk);
      for (size_t i = begin; i < end; ++i) body(i, thread_index);
    }
  });
}

}  // namespace kboost
