#ifndef KBOOST_UTIL_THREAD_POOL_H_
#define KBOOST_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace kboost {

/// Returns a sensible default worker count (hardware concurrency, at least 1).
int DefaultThreadCount();

/// A persistent worker pool with a condition-variable work queue. Threads are
/// started once and reused across calls, so the per-batch cost of
/// RunOnThreads/ParallelFor is a queue push instead of a pthread_create.
///
/// The pool grows lazily: a Run() asking for more workers than currently
/// exist starts the missing threads (capped at kMaxWorkers), so explicit
/// --threads=N requests are honoured even beyond hardware concurrency.
/// Calls from inside a pool worker run inline on the caller — nested
/// parallelism never deadlocks and never oversubscribes.
class ThreadPool {
 public:
  /// Hard cap on pool workers — the one place the valid --threads /
  /// BoostOptions::num_threads range [1, kMaxWorkers] is defined
  /// (BoostOptions::Validate enforces it).
  static constexpr int kMaxWorkers = 256;

  ThreadPool() = default;
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool used by RunOnThreads/ParallelFor.
  static ThreadPool& Global();

  /// Runs `body(worker_index)` for worker_index in [0, num_workers).
  /// Index 0 runs on the calling thread; the rest are dispatched to pool
  /// workers. Blocks until every invocation has returned.
  void Run(int num_workers, const std::function<void(int)>& body);

  /// True when called from inside a pool worker (useful for tests).
  static bool InWorker();

  /// Workers currently started (grows on demand).
  int num_started() const;

 private:
  struct Job {
    const std::function<void(int)>* body = nullptr;
    std::atomic<int> next_index{0};
    int num_workers = 0;         // total including the caller
    /// Helper invocations still running. Decremented under done_mutex (so
    /// the caller cannot miss the final notify), but read atomically in the
    /// caller's wait condition — hence atomic rather than KB_GUARDED_BY.
    std::atomic<int> remaining{0};
    Mutex done_mutex;
    CondVar done_cv;
  };

  void EnsureWorkers(int count) KB_EXCLUDES(mutex_);
  void WorkerLoop() KB_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar work_cv_;
  /// Jobs with unclaimed helper slots.
  std::deque<Job*> queue_ KB_GUARDED_BY(mutex_);
  /// Started worker threads. Grown only under mutex_; the destructor swaps
  /// the vector out under the lock before joining so a racing EnsureWorkers
  /// can never append to a vector being iterated.
  std::vector<std::thread> workers_ KB_GUARDED_BY(mutex_);
  bool shutdown_ KB_GUARDED_BY(mutex_) = false;
};

/// Runs `body(thread_index)` on `num_threads` workers and waits for them.
/// Index 0 is the calling thread, so `num_threads == 1` runs inline.
/// Backed by the global persistent pool.
void RunOnThreads(int num_threads, const std::function<void(int)>& body);

/// Parallel for over [0, count): dynamic chunked scheduling via a shared
/// atomic cursor. `body(index, thread_index)` must be thread-safe across
/// distinct indices. Blocks until all work is done. Backed by the global
/// persistent pool; nested calls degrade to inline execution.
void ParallelFor(size_t count, int num_threads,
                 const std::function<void(size_t, int)>& body,
                 size_t chunk = 64);

}  // namespace kboost

#endif  // KBOOST_UTIL_THREAD_POOL_H_
