#ifndef KBOOST_UTIL_THREAD_POOL_H_
#define KBOOST_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace kboost {

/// Returns a sensible default worker count (hardware concurrency, at least 1).
int DefaultThreadCount();

/// Runs `body(thread_index)` on `num_threads` threads and joins them all.
/// Thread 0 is the calling thread, so `num_threads == 1` runs inline.
void RunOnThreads(int num_threads, const std::function<void(int)>& body);

/// Parallel for over [0, count): dynamic chunked scheduling via a shared
/// atomic cursor. `body(index, thread_index)` must be thread-safe across
/// distinct indices. Blocks until all work is done.
void ParallelFor(size_t count, int num_threads,
                 const std::function<void(size_t, int)>& body,
                 size_t chunk = 64);

}  // namespace kboost

#endif  // KBOOST_UTIL_THREAD_POOL_H_
