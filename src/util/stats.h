#ifndef KBOOST_UTIL_STATS_H_
#define KBOOST_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace kboost {

/// Streaming mean/variance accumulator (Welford). Numerically stable; O(1)
/// memory, so it is used by the Monte-Carlo estimators that draw millions of
/// samples.
class RunningStat {
 public:
  void Add(double x);
  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double stderr_mean() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation.
/// Copies and partially sorts; intended for reporting, not hot paths.
double Quantile(std::vector<double> values, double q);

}  // namespace kboost

#endif  // KBOOST_UTIL_STATS_H_
