#include "src/util/fault.h"

#include <chrono>
#include <thread>

#include "src/util/rng.h"

namespace kboost {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kSnapshotOpen:
      return "snapshot_open";
    case FaultSite::kSnapshotRead:
      return "snapshot_read";
    case FaultSite::kSnapshotShortRead:
      return "snapshot_short_read";
    case FaultSite::kSnapshotMmap:
      return "snapshot_mmap";
    case FaultSite::kAllocPressure:
      return "alloc_pressure";
    case FaultSite::kSolveStart:
      return "solve_start";
    case FaultSite::kPickStride:
      return "pick_stride";
    case FaultSite::kNumSites:
      break;
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(FaultSite s, const Plan& plan) {
  Site& st = site(s);
  st.fail_first.store(plan.fail_first, std::memory_order_relaxed);
  st.probability.store(plan.probability, std::memory_order_relaxed);
  st.delay_micros.store(plan.delay_micros, std::memory_order_relaxed);
  st.hits.store(0, std::memory_order_relaxed);
  st.failures.store(0, std::memory_order_relaxed);
  // Publish the plan before the armed flag so a concurrent hit that sees
  // armed==true reads a complete plan.
  if (!st.armed.exchange(true, std::memory_order_release)) {
    any_armed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Disarm(FaultSite s) {
  Site& st = site(s);
  if (st.armed.exchange(false, std::memory_order_relaxed)) {
    any_armed_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  for (int i = 0; i < static_cast<int>(FaultSite::kNumSites); ++i) {
    Site& st = sites_[i];
    if (st.armed.exchange(false, std::memory_order_relaxed)) {
      any_armed_.fetch_sub(1, std::memory_order_relaxed);
    }
    st.hits.store(0, std::memory_order_relaxed);
    st.failures.store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::ShouldFail(FaultSite s) {
  Site& st = site(s);
  if (!st.armed.load(std::memory_order_acquire)) return false;
  const uint64_t hit = st.hits.fetch_add(1, std::memory_order_relaxed);
  const int64_t delay = st.delay_micros.load(std::memory_order_relaxed);
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
  bool fail = hit < st.fail_first.load(std::memory_order_relaxed);
  if (!fail) {
    const double p = st.probability.load(std::memory_order_relaxed);
    if (p > 0.0) {
      // Decision is a pure function of (seed, site, hit index): the failure
      // set is identical across runs and thread interleavings.
      uint64_t state = seed_.load(std::memory_order_relaxed) ^
                       (static_cast<uint64_t>(static_cast<int>(s)) << 56) ^
                       hit;
      const uint64_t draw = SplitMix64(state);
      fail = static_cast<double>(draw >> 11) * 0x1.0p-53 < p;
    }
  }
  if (fail) st.failures.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

void FaultInjector::MaybeDelay(FaultSite s) {
  Site& st = site(s);
  if (!st.armed.load(std::memory_order_acquire)) return;
  st.hits.fetch_add(1, std::memory_order_relaxed);
  const int64_t delay = st.delay_micros.load(std::memory_order_relaxed);
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
}

uint64_t FaultInjector::hits(FaultSite s) const {
  return site(s).hits.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::failures(FaultSite s) const {
  return site(s).failures.load(std::memory_order_relaxed);
}

}  // namespace kboost
