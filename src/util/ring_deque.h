#ifndef KBOOST_UTIL_RING_DEQUE_H_
#define KBOOST_UTIL_RING_DEQUE_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace kboost {

/// A grow-able power-of-two ring buffer with deque semantics (push at both
/// ends, pop at the front). Drop-in for the std::deque pattern used by the
/// 0/1-BFS loops: unlike std::deque it never allocates per block, clear()
/// keeps capacity, and all accesses are simple masked indexing — which
/// matters because these queues sit inside the per-sample hot loop of the
/// PRR sampler. Element order is identical to std::deque's.
template <typename T>
class RingDeque {
 public:
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  const T& front() const { return buf_[head_]; }

  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void push_back(T value) {
    Grow(size_ + 1);
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void push_front(T value) {
    Grow(size_ + 1);
    head_ = (head_ + buf_.size() - 1) & mask_;
    buf_[head_] = std::move(value);
    ++size_;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(T(std::forward<Args>(args)...));
  }

  template <typename... Args>
  void emplace_front(Args&&... args) {
    push_front(T(std::forward<Args>(args)...));
  }

 private:
  void Grow(size_t need) {
    if (need <= buf_.size()) return;
    size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    while (cap < need) cap *= 2;
    std::vector<T> next(cap);
    for (size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
  size_t mask_ = 0;
};

}  // namespace kboost

#endif  // KBOOST_UTIL_RING_DEQUE_H_
