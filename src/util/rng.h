#ifndef KBOOST_UTIL_RNG_H_
#define KBOOST_UTIL_RNG_H_

#include <cstdint>

namespace kboost {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64 so that any 64-bit seed yields a well-mixed state. One Rng per
/// thread; instances are cheap (32 bytes) and copyable, and the same seed
/// always reproduces the same stream — experiments are replayable.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value. Inline: this sits on the innermost loop of every
  /// sampler (one draw per examined edge), so the call must disappear.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Exponential draw with the given mean (mean > 0).
  double NextExponential(double mean);

  /// Forks an independent generator; the child stream is decorrelated from
  /// the parent's continuation. Used to hand one Rng per worker thread.
  Rng Fork();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// SplitMix64 step; exposed for seeding tables deterministically.
uint64_t SplitMix64(uint64_t& state);

}  // namespace kboost

#endif  // KBOOST_UTIL_RNG_H_
