#ifndef KBOOST_UTIL_BOUNDS_H_
#define KBOOST_UTIL_BOUNDS_H_

#include <cstddef>
#include <cstdint>

namespace kboost {

/// log(n choose k) computed via lgamma; exact enough for sample-size bounds.
double LogChoose(uint64_t n, uint64_t k);

/// Parameters shared by the IMM-style sampling phases (Tang et al., SIGMOD'15)
/// used both for classic influence maximization (over RR-sets) and for the
/// lower-bound maximization inside PRR-Boost (over critical-node sets).
struct ImmBounds {
  double epsilon;     ///< final approximation slack ε
  double ell;         ///< failure probability exponent: success w.p. 1 - n^-ℓ
  uint64_t n;         ///< number of nodes
  uint64_t k;         ///< cardinality constraint

  /// ε' = √2·ε used during the geometric LB search.
  double EpsilonPrime() const;
  /// λ'(ε') from IMM Eq. (9): samples needed at LB-search level x.
  double LambdaPrime() const;
  /// λ* from IMM Th. 2: samples needed once OPT lower bound is known.
  double LambdaStar() const;
  /// Number of geometric search levels: floor(log2 n) - 1, at least 1.
  int NumSearchLevels() const;
};

}  // namespace kboost

#endif  // KBOOST_UTIL_BOUNDS_H_
