#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace kboost {

void RunningStat::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  count_ = total;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double Quantile(std::vector<double> values, double q) {
  KB_CHECK(!values.empty());
  KB_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace kboost
