#include "src/util/timer.h"

namespace kboost {

double WallTimer::Seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace kboost
