#ifndef KBOOST_UTIL_SYNC_H_
#define KBOOST_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Compile-time concurrency proofs: Clang Thread Safety Analysis attributes
/// plus annotated wrappers over the std synchronization primitives.
///
/// Every mutex in the library is a kboost::Mutex or kboost::SharedMutex, and
/// every field a mutex protects carries KB_GUARDED_BY(that_mutex). Under
/// Clang, `-Wthread-safety -Werror` then REJECTS any translation unit that
/// touches a guarded field without holding its lock — the locking discipline
/// the TSan job can only spot-check dynamically becomes a compile-time
/// contract (tests/sync_compile_fail asserts the gate actually fires). Under
/// GCC and MSVC the attributes expand to nothing and the wrappers compile to
/// exactly the std primitive underneath: zero size and zero runtime cost.
///
/// Conventions (see docs/CONCURRENCY.md for the lock hierarchy):
///  - Fields written under a mutex and read lock-free elsewhere stay
///    std::atomic and are NOT annotated; the comment on the field names the
///    discipline instead (the analysis has no vocabulary for "atomic gauge
///    published under a lock").
///  - State owned by a single thread (e.g. the KboostServer event loop's
///    connection map) is documented with an ownership comment, not a fake
///    mutex — the analysis cannot see thread identity, and a lock taken only
///    to satisfy it would cost real cycles on the hot path.
///  - Condition-variable waits are written as explicit `while (!cond) Wait()`
///    loops rather than predicate lambdas, so the guarded reads in the
///    condition are analyzed in the frame that visibly holds the lock.

// ---- Attribute macros ------------------------------------------------------

#if defined(__clang__) && (!defined(SWIG))
#define KB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define KB_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define KB_CAPABILITY(x) KB_THREAD_ANNOTATION_(capability(x))
/// Marks an RAII type that acquires in its constructor, releases in its
/// destructor (MutexLock and friends).
#define KB_SCOPED_CAPABILITY KB_THREAD_ANNOTATION_(scoped_lockable)
/// Field may only be touched while holding the named capability.
#define KB_GUARDED_BY(x) KB_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee (not the pointer) is protected by the named capability.
#define KB_PT_GUARDED_BY(x) KB_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function acquires the capability (exclusive / shared).
#define KB_ACQUIRE(...) KB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define KB_ACQUIRE_SHARED(...) \
  KB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (exclusive / shared / either).
#define KB_RELEASE(...) KB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define KB_RELEASE_SHARED(...) \
  KB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define KB_RELEASE_GENERIC(...) \
  KB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
/// Caller must hold the capability (exclusively / at least shared).
#define KB_REQUIRES(...) \
  KB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define KB_REQUIRES_SHARED(...) \
  KB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock documentation).
#define KB_EXCLUDES(...) KB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define KB_RETURN_CAPABILITY(x) KB_THREAD_ANNOTATION_(lock_returned(x))
/// Function acquires the capability only when returning the given value.
#define KB_TRY_ACQUIRE(...) \
  KB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Escape hatch — every use must carry a justification comment.
#define KB_NO_THREAD_SAFETY_ANALYSIS \
  KB_THREAD_ANNOTATION_(no_thread_safety_analysis)
/// Runtime assertion that the capability is held (trusted by the analysis).
#define KB_ASSERT_CAPABILITY(x) KB_THREAD_ANNOTATION_(assert_capability(x))

namespace kboost {

// ---- Annotated primitives --------------------------------------------------

/// std::mutex with capability annotations. Same size, same codegen; the
/// Lock/Unlock spelling (vs lock/unlock) marks call sites the analysis
/// tracks and keeps raw std::lock_guard from silently bypassing it.
class KB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KB_ACQUIRE() { mu_.lock(); }
  void Unlock() KB_RELEASE() { mu_.unlock(); }
  bool TryLock() KB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex with capability annotations: exclusive (writer) and
/// shared (reader) modes.
class KB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() KB_ACQUIRE() { mu_.lock(); }
  void Unlock() KB_RELEASE() { mu_.unlock(); }
  void LockShared() KB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() KB_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive hold of a Mutex — the std::lock_guard shape, visible to
/// the analysis.
class KB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() KB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) hold of a SharedMutex.
class KB_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) KB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() KB_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) hold of a SharedMutex.
class KB_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) KB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() KB_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to kboost::Mutex. Wait() atomically releases and
/// reacquires the caller's held Mutex via the std adopt/release dance, so it
/// costs exactly a std::condition_variable wait — no condition_variable_any
/// indirection. The KB_REQUIRES(mu) contract makes "you must hold the lock
/// you wait on" a compile-time error instead of UB.
///
/// Waits are deliberately predicate-free: call sites spell the standard
///   while (!condition) cv.Wait(mu);
/// loop so the guarded reads in `condition` are visible to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). `mu` must be held.
  void Wait(Mutex& mu) KB_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // the caller (or its scoped lock) still owns mu
  }

  /// Blocks until notified or `deadline` passes. Returns true when woken
  /// before the deadline (the caller re-checks its condition either way —
  /// wakeups may be spurious). `mu` must be held.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      KB_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kboost

#endif  // KBOOST_UTIL_SYNC_H_
