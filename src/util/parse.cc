#include "src/util/parse.h"

#include <cerrno>
#include <cstdlib>
#include <string>

namespace kboost {

Status ParseUint64(const char* text, const char* what, uint64_t* out) {
  if (text == nullptr || *text == '\0') {
    return Status::InvalidArgument(std::string(what) +
                                   " must be a non-negative integer, got ''");
  }
  // strtoull accepts leading whitespace and a sign (and negates through
  // unsigned wraparound); a flag value is a bare digit string, so anything
  // that does not start with a digit is malformed.
  if (text[0] < '0' || text[0] > '9') {
    return Status::InvalidArgument(std::string(what) +
                                   " must be a non-negative integer, got '" +
                                   text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (*end != '\0') {
    return Status::InvalidArgument(std::string(what) +
                                   " must be a non-negative integer, got '" +
                                   text + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange(std::string(what) + " value '" + text +
                              "' overflows a 64-bit integer");
  }
  *out = static_cast<uint64_t>(value);
  return Status::Ok();
}

}  // namespace kboost
