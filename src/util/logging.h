#ifndef KBOOST_UTIL_LOGGING_H_
#define KBOOST_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace kboost {
namespace internal {

/// Severity levels for KB_LOG.
enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// Stream-style log sink. Collects the message and emits it (to stderr) on
/// destruction; aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Global verbosity: messages below this severity are suppressed.
/// Defaults to kWarning so library internals stay quiet in tests/benches.
void SetMinLogSeverity(internal::LogSeverity severity);
internal::LogSeverity MinLogSeverity();

}  // namespace kboost

#define KB_LOG(severity)                                                  \
  ::kboost::internal::LogMessage(                                         \
      ::kboost::internal::LogSeverity::k##severity, __FILE__, __LINE__)   \
      .stream()

/// Contract check: aborts with a message when `cond` is false. Used for
/// programming errors (invalid indices, broken invariants), never for
/// recoverable conditions — those return Status.
#define KB_CHECK(cond)                                                \
  if (!(cond))                                                        \
  ::kboost::internal::LogMessage(                                     \
      ::kboost::internal::LogSeverity::kFatal, __FILE__, __LINE__)    \
      .stream()                                                       \
      << "Check failed: " #cond " "

#define KB_CHECK_OK(status_expr)                                     \
  if (const ::kboost::Status& kb_check_ok_s = (status_expr);         \
      !kb_check_ok_s.ok())                                           \
  ::kboost::internal::LogMessage(                                    \
      ::kboost::internal::LogSeverity::kFatal, __FILE__, __LINE__)   \
      .stream()                                                      \
      << "Non-OK status: " << kb_check_ok_s.ToString() << " "

#ifndef NDEBUG
#define KB_DCHECK(cond) KB_CHECK(cond)
#else
#define KB_DCHECK(cond) \
  if (false) KB_CHECK(cond)
#endif

#endif  // KBOOST_UTIL_LOGGING_H_
