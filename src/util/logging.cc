#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "src/util/sync.h"

namespace kboost {

namespace {
std::atomic<internal::LogSeverity> g_min_severity{
    internal::LogSeverity::kWarning};

/// Serializes message emission so two threads logging at once cannot
/// interleave their bytes on stderr (stderr is unbuffered; one fprintf is
/// not atomic). Leaked-on-purpose shape is unnecessary here: the mutex is
/// trivially destructible state used only while the process is alive.
Mutex& EmitMutex() {
  static Mutex* mu = new Mutex();
  return *mu;
}

const char* SeverityName(internal::LogSeverity s) {
  switch (s) {
    case internal::LogSeverity::kInfo:
      return "I";
    case internal::LogSeverity::kWarning:
      return "W";
    case internal::LogSeverity::kError:
      return "E";
    case internal::LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetMinLogSeverity(internal::LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}

internal::LogSeverity MinLogSeverity() {
  return g_min_severity.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::string msg = stream_.str();
    MutexLock lock(EmitMutex());
    std::fprintf(stderr, "%s\n", msg.c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal
}  // namespace kboost
