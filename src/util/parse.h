#ifndef KBOOST_UTIL_PARSE_H_
#define KBOOST_UTIL_PARSE_H_

#include <cstdint>

#include "src/util/status.h"

namespace kboost {

/// Strictly parses `text` as a base-10 unsigned 64-bit integer: the whole
/// string must be the number — no leading sign, no trailing characters, no
/// empty input — and the value must fit in uint64_t (overflow is rejected,
/// not wrapped). This is the validated replacement for the bare
/// `std::strtoull(s, nullptr, 10)` pattern, which silently turns garbage
/// like "abc" into 0 and saturates overflow without any error; every CLI
/// flag and example that accepts an integer goes through here.
/// InvalidArgument on any malformed input, with `what` naming the input in
/// the message (e.g. "--k").
Status ParseUint64(const char* text, const char* what, uint64_t* out);

}  // namespace kboost

#endif  // KBOOST_UTIL_PARSE_H_
