#ifndef KBOOST_UTIL_STATUS_H_
#define KBOOST_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace kboost {

/// Error codes for fallible operations. Library code never throws; operations
/// that can fail for non-programming-error reasons (I/O, malformed input)
/// return a Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kInternal = 4,
  kIoError = 5,
  kFailedPrecondition = 6,
  kCancelled = 7,
  /// A per-request deadline passed before the answer was produced — while
  /// waiting for an admission slot or mid-selection (the solve paths poll
  /// cooperatively). The serving layer's "too late" signal.
  kDeadlineExceeded = 8,
  /// A bounded resource was at capacity and the work was shed rather than
  /// queued unboundedly — admission-control rejections, allocation pressure.
  /// Transient by definition: the same request may succeed on retry.
  kResourceExhausted = 9,
  /// The service as a whole cannot take the request right now — it is
  /// shutting down, its dispatch queue is full, or the connection was
  /// refused at the front door. Where ResourceExhausted means "this
  /// request was shed by the admission budget", Unavailable means "the
  /// serving process itself is not accepting work"; clients should back
  /// off and retry against the same or another replica.
  kUnavailable = 10,
};

/// A lightweight success-or-error result, in the style of database engines
/// (RocksDB's Status / absl::Status). Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: bad edge".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// non-OK StatusOr aborts the process (contract violation).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr ergonomics).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return value_;
  }
  T& value() & {
    AbortIfNotOk();
    return value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(value_);
  }

  /// Dereference sugar, mirroring absl::StatusOr: same abort-on-error
  /// contract as value().
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const {
    AbortIfNotOk();
    return &value_;
  }
  T* operator->() {
    AbortIfNotOk();
    return &value_;
  }

  /// The value, or `fallback` when this holds an error (never aborts).
  T value_or(T fallback) const& { return ok() ? value_ : std::move(fallback); }
  T value_or(T fallback) && {
    return ok() ? std::move(value_) : std::move(fallback);
  }

 private:
  void AbortIfNotOk() const;

  Status status_;
  T value_{};
};

namespace internal {
[[noreturn]] void DieStatusOrValue(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfNotOk() const {
  if (!status_.ok()) internal::DieStatusOrValue(status_);
}

}  // namespace kboost

#endif  // KBOOST_UTIL_STATUS_H_
