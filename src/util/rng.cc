#include "src/util/rng.h"

#include <cmath>

namespace kboost {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork() {
  // Derive a child seed from two outputs; mixing through SplitMix64 in the
  // constructor decorrelates the child stream.
  uint64_t a = NextU64();
  uint64_t b = NextU64();
  return Rng(a ^ Rotl(b, 31) ^ 0xD1B54A32D192ED03ULL);
}

}  // namespace kboost
