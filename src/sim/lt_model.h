#ifndef KBOOST_SIM_LT_MODEL_H_
#define KBOOST_SIM_LT_MODEL_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/sim/boost_model.h"
#include "src/sim/ic_model.h"

namespace kboost {

/// Linear Threshold diffusion substrate — the paper's stated future
/// direction ("investigate similar problems under other influence diffusion
/// models, for example the well-known Linear Threshold model", Sec. IX).
///
/// Under LT, edge probabilities are interpreted as influence *weights*; a
/// node activates once the total weight of its active in-neighbours exceeds
/// a uniform random threshold. Boosted nodes scale the incoming weights to
/// p_boost (capped so the weight sum stays ≤ 1), which mirrors the
/// influence-boosting idea of Def. 1 in the LT world.
///
/// Requires Σ_u p_uv ≤ 1 for every v (checked; use
/// GraphBuilder::AssignWeightedCascadeProbabilities or normalize first).

/// Returns true if the in-weights of every node sum to ≤ 1 (+ slack).
bool IsValidLtGraph(const DirectedGraph& graph);

/// One LT diffusion in the world identified by `world_seed` (thresholds are
/// hashed per node, so worlds are deterministic and coupled). `boosted` may
/// be null. Returns the number of activated nodes.
size_t SimulateLtOnce(const DirectedGraph& graph,
                      const std::vector<NodeId>& seeds, uint64_t world_seed,
                      const uint8_t* boosted, SimScratch& scratch);

/// Monte-Carlo estimate of the LT spread of `seeds` (no boosting).
SpreadEstimate EstimateLtSpread(const DirectedGraph& graph,
                                const std::vector<NodeId>& seeds,
                                const SimulationOptions& options = {});

/// Monte-Carlo estimate of the LT boost Δ_S(B) with coupled worlds.
BoostEstimate EstimateLtBoost(const DirectedGraph& graph,
                              const std::vector<NodeId>& seeds,
                              const std::vector<NodeId>& boost_set,
                              const SimulationOptions& options = {});

/// Exact LT spread by exhausting the live-edge interpretation: each node
/// independently picks in-edge e with probability w_e (or none). Requires
/// Π_v (InDegree(v)+1) manageable; intended for tests (n ≤ ~8).
double ExactLtSpread(const DirectedGraph& graph,
                     const std::vector<NodeId>& seeds);

}  // namespace kboost

#endif  // KBOOST_SIM_LT_MODEL_H_
