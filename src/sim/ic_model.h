#ifndef KBOOST_SIM_IC_MODEL_H_
#define KBOOST_SIM_IC_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/thread_pool.h"

namespace kboost {

/// Tunables for all Monte-Carlo estimators.
struct SimulationOptions {
  size_t num_simulations = 2000;
  int num_threads = DefaultThreadCount();
  uint64_t seed = 42;  ///< base seed; simulation i uses world (seed, i)
};

/// A Monte-Carlo estimate with uncertainty.
struct SpreadEstimate {
  double mean = 0.0;
  double stddev = 0.0;
  double stderr_mean = 0.0;
  size_t num_simulations = 0;
};

/// Which side of an edge a boost strengthens. The paper's main model
/// (Def. 1) boosts the head: a boosted node is easier to influence. The
/// Sec. III-A variant boosts the tail: a boosted node influences harder.
enum class BoostSemantics {
  kBoostedAreEasierToInfluence,  ///< edge (u,v) uses p' iff v ∈ B (default)
  kBoostedAreMoreInfluential,    ///< edge (u,v) uses p' iff u ∈ B
};

/// Reusable per-thread scratch for BFS so repeated simulations allocate
/// nothing. One instance per thread; resized lazily to the graph.
class SimScratch {
 public:
  void Prepare(size_t num_nodes);

  std::vector<uint32_t> visit_mark;  // stamp per node
  uint32_t stamp = 0;
  std::vector<NodeId> queue;
};

/// Runs one IC-model diffusion in the deterministic random world identified
/// by `world_seed`: edge e (global index) is live iff hash(world_seed, e)
/// maps below its probability. `boosted` may be null (no boosting) or an
/// n-sized bitmap; boosted heads use p_boost. Returns the number of
/// activated nodes. Identical world_seed ⇒ identical world, which couples
/// boosted/unboosted runs for low-variance boost estimates.
size_t SimulateDiffusionOnce(
    const DirectedGraph& graph, const std::vector<NodeId>& seeds,
    uint64_t world_seed, const uint8_t* boosted, SimScratch& scratch,
    BoostSemantics semantics = BoostSemantics::kBoostedAreEasierToInfluence);

/// Expected IC influence spread of `seeds` (no boosting), by Monte Carlo.
SpreadEstimate EstimateSpread(const DirectedGraph& graph,
                              const std::vector<NodeId>& seeds,
                              const SimulationOptions& options = {});

/// Exact IC influence spread by exhaustive enumeration of live-edge worlds.
/// Requires num_edges <= 24; intended for tests only.
double ExactSpread(const DirectedGraph& graph,
                   const std::vector<NodeId>& seeds);

}  // namespace kboost

#endif  // KBOOST_SIM_IC_MODEL_H_
