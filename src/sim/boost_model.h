#ifndef KBOOST_SIM_BOOST_MODEL_H_
#define KBOOST_SIM_BOOST_MODEL_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/sim/ic_model.h"

namespace kboost {

/// Monte-Carlo estimate of the *boost* Δ_S(B) together with the boosted and
/// base spreads it was derived from.
struct BoostEstimate {
  double boost = 0.0;          ///< E[σ_S(B) − σ_S(∅)], coupled estimator
  double boost_stderr = 0.0;   ///< standard error of `boost`
  double boosted_spread = 0.0; ///< E[σ_S(B)]
  double base_spread = 0.0;    ///< E[σ_S(∅)]
  size_t num_simulations = 0;
};

/// Expected influence spread σ_S(B) under the influence-boosting model
/// (Def. 1): boosted nodes are influenced through incoming edges with
/// p_boost instead of p.
SpreadEstimate EstimateBoostedSpread(
    const DirectedGraph& graph, const std::vector<NodeId>& seeds,
    const std::vector<NodeId>& boost_set,
    const SimulationOptions& options = {},
    BoostSemantics semantics = BoostSemantics::kBoostedAreEasierToInfluence);

/// Estimates Δ_S(B) with coupled random worlds: each simulation evaluates
/// the same live-edge world with and without boosting, so the per-sample
/// difference is nonnegative and the estimator's variance is far below that
/// of two independent spread estimates.
BoostEstimate EstimateBoost(
    const DirectedGraph& graph, const std::vector<NodeId>& seeds,
    const std::vector<NodeId>& boost_set,
    const SimulationOptions& options = {},
    BoostSemantics semantics = BoostSemantics::kBoostedAreEasierToInfluence);

/// Exact σ_S(B) by exhaustive world enumeration; requires m <= 24 (tests).
double ExactBoostedSpread(
    const DirectedGraph& graph, const std::vector<NodeId>& seeds,
    const std::vector<NodeId>& boost_set,
    BoostSemantics semantics = BoostSemantics::kBoostedAreEasierToInfluence);

/// Exact Δ_S(B); requires m <= 24 (tests).
double ExactBoost(
    const DirectedGraph& graph, const std::vector<NodeId>& seeds,
    const std::vector<NodeId>& boost_set,
    BoostSemantics semantics = BoostSemantics::kBoostedAreEasierToInfluence);

/// Expands a node list into an n-sized 0/1 bitmap. Duplicate ids allowed.
std::vector<uint8_t> MakeNodeBitmap(size_t num_nodes,
                                    const std::vector<NodeId>& nodes);

}  // namespace kboost

#endif  // KBOOST_SIM_BOOST_MODEL_H_
