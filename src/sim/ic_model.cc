#include "src/sim/ic_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace kboost {

namespace {

/// Maps (world_seed, edge_index) to a uniform double in [0, 1). The same
/// pair always yields the same draw — the heart of the coupled-worlds
/// estimator used by EstimateBoost.
inline double EdgeDraw(uint64_t world_seed, size_t edge_index) {
  uint64_t s = world_seed ^ (0x9E3779B97F4A7C15ULL * (edge_index + 1));
  uint64_t z = SplitMix64(s);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

void SimScratch::Prepare(size_t num_nodes) {
  if (visit_mark.size() < num_nodes) {
    visit_mark.assign(num_nodes, 0);
    stamp = 0;
  }
  ++stamp;
  if (stamp == 0) {  // stamp wrapped; reset marks
    std::fill(visit_mark.begin(), visit_mark.end(), 0);
    stamp = 1;
  }
  queue.clear();
}

size_t SimulateDiffusionOnce(const DirectedGraph& graph,
                             const std::vector<NodeId>& seeds,
                             uint64_t world_seed, const uint8_t* boosted,
                             SimScratch& scratch, BoostSemantics semantics) {
  scratch.Prepare(graph.num_nodes());
  auto& mark = scratch.visit_mark;
  const uint32_t stamp = scratch.stamp;
  auto& queue = scratch.queue;

  for (NodeId s : seeds) {
    KB_DCHECK(s < graph.num_nodes());
    if (mark[s] != stamp) {
      mark[s] = stamp;
      queue.push_back(s);
    }
  }

  const bool boost_head =
      semantics == BoostSemantics::kBoostedAreEasierToInfluence;
  size_t activated = queue.size();
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    const bool u_boosted = boosted != nullptr && boosted[u];
    size_t edge_index = graph.OutOffset(u);
    for (const DirectedGraph::OutEdge& e : graph.OutEdges(u)) {
      const size_t idx = edge_index++;
      if (mark[e.to] == stamp) continue;
      const bool use_boost = boost_head
                                 ? (boosted != nullptr && boosted[e.to])
                                 : u_boosted;
      const double p = use_boost ? e.p_boost : e.p;
      if (EdgeDraw(world_seed, idx) < p) {
        mark[e.to] = stamp;
        queue.push_back(e.to);
        ++activated;
      }
    }
  }
  return activated;
}

SpreadEstimate EstimateSpread(const DirectedGraph& graph,
                              const std::vector<NodeId>& seeds,
                              const SimulationOptions& options) {
  const size_t sims = options.num_simulations;
  KB_CHECK(sims >= 1);
  const int threads = std::max(1, options.num_threads);

  std::vector<RunningStat> per_thread(threads);
  std::vector<SimScratch> scratch(threads);
  ParallelFor(sims, threads, [&](size_t i, int t) {
    uint64_t world = options.seed * 0x100000001B3ULL + i;
    size_t count =
        SimulateDiffusionOnce(graph, seeds, world, nullptr, scratch[t]);
    per_thread[t].Add(static_cast<double>(count));
  });

  RunningStat total;
  for (const RunningStat& s : per_thread) total.Merge(s);
  return SpreadEstimate{total.mean(), total.stddev(), total.stderr_mean(),
                        total.count()};
}

double ExactSpread(const DirectedGraph& graph,
                   const std::vector<NodeId>& seeds) {
  const size_t m = graph.num_edges();
  KB_CHECK(m <= 24) << "ExactSpread is exponential in m; m=" << m;
  const size_t n = graph.num_nodes();

  double expected = 0.0;
  std::vector<uint8_t> reached(n);
  std::vector<NodeId> queue;
  for (uint64_t world = 0; world < (1ULL << m); ++world) {
    double prob = 1.0;
    for (NodeId u = 0; u < n && prob > 0.0; ++u) {
      size_t idx = graph.OutOffset(u);
      for (const DirectedGraph::OutEdge& e : graph.OutEdges(u)) {
        const bool live = (world >> idx) & 1;
        prob *= live ? e.p : (1.0 - e.p);
        ++idx;
      }
    }
    if (prob == 0.0) continue;
    std::fill(reached.begin(), reached.end(), 0);
    queue.clear();
    for (NodeId s : seeds) {
      if (!reached[s]) {
        reached[s] = 1;
        queue.push_back(s);
      }
    }
    size_t count = queue.size();
    for (size_t head = 0; head < queue.size(); ++head) {
      NodeId u = queue[head];
      size_t idx = graph.OutOffset(u);
      for (const DirectedGraph::OutEdge& e : graph.OutEdges(u)) {
        const bool live = (world >> idx) & 1;
        ++idx;
        if (live && !reached[e.to]) {
          reached[e.to] = 1;
          queue.push_back(e.to);
          ++count;
        }
      }
    }
    expected += prob * static_cast<double>(count);
  }
  return expected;
}

}  // namespace kboost
