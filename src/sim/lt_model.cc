#include "src/sim/lt_model.h"

#include <algorithm>
#include <cmath>

#include "src/sim/boost_model.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace kboost {

namespace {

/// Per-(world, node) uniform threshold.
inline double NodeThreshold(uint64_t world_seed, NodeId v) {
  uint64_t s = world_seed ^ (0xA24BAED4963EE407ULL * (v + 1));
  uint64_t z = SplitMix64(s);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/// In-weight of edge (from -> v) given v's boost flag, capped later.
inline double EdgeWeight(const DirectedGraph::InEdge& e, bool v_boosted) {
  return v_boosted ? e.p_boost : e.p;
}

}  // namespace

bool IsValidLtGraph(const DirectedGraph& graph) {
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    double sum = 0.0;
    for (const DirectedGraph::InEdge& e : graph.InEdges(v)) sum += e.p;
    if (sum > 1.0 + 1e-6) return false;
  }
  return true;
}

size_t SimulateLtOnce(const DirectedGraph& graph,
                      const std::vector<NodeId>& seeds, uint64_t world_seed,
                      const uint8_t* boosted, SimScratch& scratch) {
  scratch.Prepare(graph.num_nodes());
  auto& mark = scratch.visit_mark;
  const uint32_t stamp = scratch.stamp;
  auto& queue = scratch.queue;

  for (NodeId s : seeds) {
    if (mark[s] != stamp) {
      mark[s] = stamp;
      queue.push_back(s);
    }
  }
  size_t activated = queue.size();

  // Frontier propagation: when u activates, each inactive out-neighbour v
  // re-checks its activated in-weight against its world threshold. A
  // boosted v scales incoming weights to p_boost, capped so the total
  // in-weight never exceeds 1 (keeps thresholds well-defined).
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (const DirectedGraph::OutEdge& out : graph.OutEdges(u)) {
      const NodeId v = out.to;
      if (mark[v] == stamp) continue;
      const bool v_boosted = boosted != nullptr && boosted[v];
      double active_weight = 0.0;
      double total_weight = 0.0;
      for (const DirectedGraph::InEdge& e : graph.InEdges(v)) {
        const double w = EdgeWeight(e, v_boosted);
        total_weight += w;
        if (mark[e.from] == stamp) active_weight += w;
      }
      const double cap = std::max(1.0, total_weight);
      if (active_weight / cap >= NodeThreshold(world_seed, v)) {
        mark[v] = stamp;
        queue.push_back(v);
        ++activated;
      }
    }
  }
  return activated;
}

SpreadEstimate EstimateLtSpread(const DirectedGraph& graph,
                                const std::vector<NodeId>& seeds,
                                const SimulationOptions& options) {
  KB_CHECK(options.num_simulations >= 1);
  const int threads = std::max(1, options.num_threads);
  std::vector<RunningStat> per_thread(threads);
  std::vector<SimScratch> scratch(threads);
  ParallelFor(options.num_simulations, threads, [&](size_t i, int t) {
    uint64_t world = options.seed * 0x100000001B3ULL + i;
    per_thread[t].Add(static_cast<double>(
        SimulateLtOnce(graph, seeds, world, nullptr, scratch[t])));
  });
  RunningStat total;
  for (const RunningStat& s : per_thread) total.Merge(s);
  return SpreadEstimate{total.mean(), total.stddev(), total.stderr_mean(),
                        total.count()};
}

BoostEstimate EstimateLtBoost(const DirectedGraph& graph,
                              const std::vector<NodeId>& seeds,
                              const std::vector<NodeId>& boost_set,
                              const SimulationOptions& options) {
  KB_CHECK(options.num_simulations >= 1);
  const int threads = std::max(1, options.num_threads);
  const std::vector<uint8_t> boosted =
      MakeNodeBitmap(graph.num_nodes(), boost_set);

  struct Accum {
    RunningStat diff, with_boost, without_boost;
    SimScratch scratch;
  };
  std::vector<Accum> acc(threads);
  ParallelFor(options.num_simulations, threads, [&](size_t i, int t) {
    uint64_t world = options.seed * 0x100000001B3ULL + i;
    size_t base = SimulateLtOnce(graph, seeds, world, nullptr, acc[t].scratch);
    size_t with =
        SimulateLtOnce(graph, seeds, world, boosted.data(), acc[t].scratch);
    acc[t].diff.Add(static_cast<double>(with) - static_cast<double>(base));
    acc[t].with_boost.Add(static_cast<double>(with));
    acc[t].without_boost.Add(static_cast<double>(base));
  });
  RunningStat diff, with_boost, without_boost;
  for (const Accum& a : acc) {
    diff.Merge(a.diff);
    with_boost.Merge(a.with_boost);
    without_boost.Merge(a.without_boost);
  }
  BoostEstimate out;
  out.boost = diff.mean();
  out.boost_stderr = diff.stderr_mean();
  out.boosted_spread = with_boost.mean();
  out.base_spread = without_boost.mean();
  out.num_simulations = diff.count();
  return out;
}

double ExactLtSpread(const DirectedGraph& graph,
                     const std::vector<NodeId>& seeds) {
  const size_t n = graph.num_nodes();
  KB_CHECK(n <= 8) << "ExactLtSpread is exponential in n";
  KB_CHECK(IsValidLtGraph(graph)) << "in-weights must sum to <= 1";

  // LT == live-edge model where each node keeps at most one in-edge,
  // edge e with probability w_e and "no edge" with 1 - Σ w. Enumerate all
  // per-node choices recursively.
  std::vector<int> choice(n, -1);  // -1 = none, else index into InEdges(v)
  double expected = 0.0;

  std::vector<NodeId> stack;
  std::vector<uint8_t> reached(n);
  auto evaluate = [&]() -> double {
    std::fill(reached.begin(), reached.end(), 0);
    stack.clear();
    for (NodeId s : seeds) {
      if (!reached[s]) {
        reached[s] = 1;
        stack.push_back(s);
      }
    }
    // v activates iff its chosen in-edge's source activates.
    bool changed = true;
    size_t count = stack.size();
    while (changed) {
      changed = false;
      for (NodeId v = 0; v < n; ++v) {
        if (reached[v] || choice[v] < 0) continue;
        const NodeId src = graph.InEdges(v)[choice[v]].from;
        if (reached[src]) {
          reached[v] = 1;
          ++count;
          changed = true;
        }
      }
    }
    return static_cast<double>(count);
  };

  // Recursive enumeration with explicit stack over node index.
  struct Frame {
    NodeId v;
    int next_choice;  // -1 = none branch, then 0..deg-1
    double prob;
  };
  std::vector<Frame> frames;
  frames.push_back(Frame{0, -1, 1.0});
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.v == n) {
      expected += f.prob * evaluate();
      frames.pop_back();
      continue;
    }
    const auto in = graph.InEdges(f.v);
    double none_prob = 1.0;
    for (const auto& e : in) none_prob -= e.p;
    ++f.next_choice;
    // Choices: 0..deg-1 pick that in-edge; deg is the "no edge" branch.
    if (f.next_choice > static_cast<int>(in.size())) {
      frames.pop_back();
      continue;
    }
    double p;
    if (f.next_choice == static_cast<int>(in.size())) {
      choice[f.v] = -1;
      p = std::max(0.0, none_prob);
    } else {
      choice[f.v] = f.next_choice;
      p = in[f.next_choice].p;
    }
    if (p <= 0.0) continue;
    frames.push_back(Frame{static_cast<NodeId>(f.v + 1), -1, f.prob * p});
  }
  return expected;
}

}  // namespace kboost
