#include "src/sim/boost_model.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace kboost {

std::vector<uint8_t> MakeNodeBitmap(size_t num_nodes,
                                    const std::vector<NodeId>& nodes) {
  std::vector<uint8_t> bitmap(num_nodes, 0);
  for (NodeId v : nodes) {
    KB_CHECK(v < num_nodes) << "node " << v << " out of range";
    bitmap[v] = 1;
  }
  return bitmap;
}

SpreadEstimate EstimateBoostedSpread(const DirectedGraph& graph,
                                     const std::vector<NodeId>& seeds,
                                     const std::vector<NodeId>& boost_set,
                                     const SimulationOptions& options,
                                     BoostSemantics semantics) {
  const size_t sims = options.num_simulations;
  KB_CHECK(sims >= 1);
  const int threads = std::max(1, options.num_threads);
  const std::vector<uint8_t> boosted =
      MakeNodeBitmap(graph.num_nodes(), boost_set);

  std::vector<RunningStat> per_thread(threads);
  std::vector<SimScratch> scratch(threads);
  ParallelFor(sims, threads, [&](size_t i, int t) {
    uint64_t world = options.seed * 0x100000001B3ULL + i;
    size_t count = SimulateDiffusionOnce(graph, seeds, world, boosted.data(),
                                         scratch[t], semantics);
    per_thread[t].Add(static_cast<double>(count));
  });

  RunningStat total;
  for (const RunningStat& s : per_thread) total.Merge(s);
  return SpreadEstimate{total.mean(), total.stddev(), total.stderr_mean(),
                        total.count()};
}

BoostEstimate EstimateBoost(const DirectedGraph& graph,
                            const std::vector<NodeId>& seeds,
                            const std::vector<NodeId>& boost_set,
                            const SimulationOptions& options,
                            BoostSemantics semantics) {
  const size_t sims = options.num_simulations;
  KB_CHECK(sims >= 1);
  const int threads = std::max(1, options.num_threads);
  const std::vector<uint8_t> boosted =
      MakeNodeBitmap(graph.num_nodes(), boost_set);

  struct ThreadAccum {
    RunningStat diff;
    RunningStat with_boost;
    RunningStat without_boost;
    SimScratch scratch;
  };
  std::vector<ThreadAccum> acc(threads);

  ParallelFor(sims, threads, [&](size_t i, int t) {
    uint64_t world = options.seed * 0x100000001B3ULL + i;
    // Same world evaluated twice: base edges are a subset of boosted edges,
    // so the difference is a nonnegative, low-variance sample of the boost.
    size_t base = SimulateDiffusionOnce(graph, seeds, world, nullptr,
                                        acc[t].scratch, semantics);
    size_t with = SimulateDiffusionOnce(graph, seeds, world, boosted.data(),
                                        acc[t].scratch, semantics);
    acc[t].diff.Add(static_cast<double>(with) - static_cast<double>(base));
    acc[t].with_boost.Add(static_cast<double>(with));
    acc[t].without_boost.Add(static_cast<double>(base));
  });

  RunningStat diff, with_boost, without_boost;
  for (const ThreadAccum& a : acc) {
    diff.Merge(a.diff);
    with_boost.Merge(a.with_boost);
    without_boost.Merge(a.without_boost);
  }
  BoostEstimate out;
  out.boost = diff.mean();
  out.boost_stderr = diff.stderr_mean();
  out.boosted_spread = with_boost.mean();
  out.base_spread = without_boost.mean();
  out.num_simulations = diff.count();
  return out;
}

double ExactBoostedSpread(const DirectedGraph& graph,
                          const std::vector<NodeId>& seeds,
                          const std::vector<NodeId>& boost_set,
                          BoostSemantics semantics) {
  const size_t m = graph.num_edges();
  KB_CHECK(m <= 24) << "ExactBoostedSpread is exponential in m; m=" << m;
  const size_t n = graph.num_nodes();
  const std::vector<uint8_t> boosted = MakeNodeBitmap(n, boost_set);

  double expected = 0.0;
  std::vector<uint8_t> reached(n);
  std::vector<NodeId> queue;
  for (uint64_t world = 0; world < (1ULL << m); ++world) {
    double prob = 1.0;
    for (NodeId u = 0; u < n && prob > 0.0; ++u) {
      size_t idx = graph.OutOffset(u);
      const bool boost_head =
          semantics == BoostSemantics::kBoostedAreEasierToInfluence;
      for (const DirectedGraph::OutEdge& e : graph.OutEdges(u)) {
        const bool live = (world >> idx) & 1;
        const bool use_boost = boost_head ? boosted[e.to] != 0
                                          : boosted[u] != 0;
        const double p = use_boost ? e.p_boost : e.p;
        prob *= live ? p : (1.0 - p);
        ++idx;
      }
    }
    if (prob == 0.0) continue;
    std::fill(reached.begin(), reached.end(), 0);
    queue.clear();
    for (NodeId s : seeds) {
      if (!reached[s]) {
        reached[s] = 1;
        queue.push_back(s);
      }
    }
    size_t count = queue.size();
    for (size_t head = 0; head < queue.size(); ++head) {
      NodeId u = queue[head];
      size_t idx = graph.OutOffset(u);
      for (const DirectedGraph::OutEdge& e : graph.OutEdges(u)) {
        const bool live = (world >> idx) & 1;
        ++idx;
        if (live && !reached[e.to]) {
          reached[e.to] = 1;
          queue.push_back(e.to);
          ++count;
        }
      }
    }
    expected += prob * static_cast<double>(count);
  }
  return expected;
}

double ExactBoost(const DirectedGraph& graph, const std::vector<NodeId>& seeds,
                  const std::vector<NodeId>& boost_set,
                  BoostSemantics semantics) {
  return ExactBoostedSpread(graph, seeds, boost_set, semantics) -
         ExactBoostedSpread(graph, seeds, {}, semantics);
}

}  // namespace kboost
