#include "src/serve/boost_service.h"

#include <mutex>
#include <utility>

#include "src/io/pool_io.h"
#include "src/util/timer.h"

namespace kboost {

StatusOr<std::unique_ptr<BoostService>> BoostService::Create(
    const DirectedGraph& graph, const Options& options) {
  if (options.num_threads != 0) {
    BoostOptions probe;
    probe.num_threads = options.num_threads;
    if (Status s = probe.Validate(); !s.ok()) return s;
  }
  std::unique_ptr<BoostService> service(
      new BoostService(graph, options.num_threads));
  for (const PoolSpec& spec : options.warm_pools) {
    if (Status s = service->LoadPool(spec.name, spec.snapshot_path); !s.ok()) {
      return Status::InvalidArgument("warm-start pool '" + spec.name + "': " +
                                     s.ToString());
    }
  }
  return service;
}

Status BoostService::LoadPool(const std::string& name,
                              const std::string& snapshot_path) {
  StatusOr<std::unique_ptr<BoostSession>> loaded =
      LoadPoolSnapshot(graph_, snapshot_path);
  if (!loaded.ok()) return loaded.status();
  std::unique_ptr<BoostSession> session = std::move(loaded).value();
  if (default_num_threads_ != 0) {
    if (Status s = session->set_num_threads(default_num_threads_); !s.ok()) {
      return s;
    }
  }
  return AddPool(name, std::move(session));
}

Status BoostService::AddPool(const std::string& name,
                             std::unique_ptr<BoostSession> session) {
  if (name.empty()) {
    return Status::InvalidArgument("pool name must be non-empty");
  }
  if (session == nullptr) {
    return Status::InvalidArgument("pool session must be non-null");
  }
  if (session->graph().num_nodes() != graph_.num_nodes()) {
    return Status::InvalidArgument(
        "pool '" + name + "' was built against a graph with " +
        std::to_string(session->graph().num_nodes()) + " nodes, not " +
        std::to_string(graph_.num_nodes()));
  }
  {
    // Fail fast on a duplicate before doing the expensive preparation.
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (pools_.count(name) != 0) {
      return Status::InvalidArgument("pool '" + name +
                                     "' is already registered");
    }
  }
  // Sampling + index warm-up runs outside any lock: queries against other
  // pools are never blocked behind a registration.
  session->Prepare();
  std::shared_ptr<const BoostSession> shared = std::move(session);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (!pools_.emplace(name, std::move(shared)).second) {
    return Status::InvalidArgument("pool '" + name + "' is already registered");
  }
  return Status::Ok();
}

Status BoostService::RemovePool(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (pools_.erase(name) == 0) {
    return Status::NotFound("no pool named '" + name + "'");
  }
  return Status::Ok();
}

std::vector<std::string> BoostService::PoolNames() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(pools_.size());
  for (const auto& [name, pool] : pools_) names.push_back(name);
  return names;
}

size_t BoostService::num_pools() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return pools_.size();
}

std::shared_ptr<const BoostSession> BoostService::GetPool(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = pools_.find(name);
  return it == pools_.end() ? nullptr : it->second;
}

StatusOr<BoostResponse> BoostService::Solve(const BoostRequest& request,
                                            SolveContext* context) const {
  std::shared_ptr<const BoostSession> pool = GetPool(request.pool);
  if (pool == nullptr) {
    return Status::NotFound("no pool named '" + request.pool + "' (" +
                            std::to_string(num_pools()) + " registered)");
  }
  SolveSpec spec;
  spec.k = request.k;
  spec.mode = request.mode;
  spec.num_threads = request.num_threads;
  spec.cancel = request.cancel;

  WallTimer timer;
  StatusOr<BoostResult> solved = pool->Solve(spec, context);
  if (!solved.ok()) return solved.status();

  BoostResponse response;
  response.pool = request.pool;
  response.result = std::move(solved).value();
  response.solve_seconds = timer.Seconds();
  return response;
}

}  // namespace kboost
