#include "src/serve/boost_service.h"

#include <chrono>
#include <utility>

#include "src/io/pool_io.h"
#include "src/select/greedy.h"  // SteadyNowNanos
#include "src/util/timer.h"

namespace kboost {

namespace {

/// Wall-clock seconds since the Unix epoch — the lifecycle timestamps
/// reported by Stats(). steady_clock would survive clock steps but is
/// meaningless to an operator reading a dashboard.
double NowEpochSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusOr<std::unique_ptr<BoostService>> BoostService::Create(
    const DirectedGraph& graph, const Options& options) {
  if (options.num_threads != 0) {
    BoostOptions probe;
    probe.num_threads = options.num_threads;
    if (Status s = probe.Validate(); !s.ok()) return s;
  }
  if (options.degrade_load_factor < 0.0 ||
      options.degrade_load_factor > 1.0) {
    return Status::InvalidArgument(
        "degrade_load_factor must be in [0, 1], got " +
        std::to_string(options.degrade_load_factor));
  }
  if (options.degrade_latency_ms < 0.0) {
    return Status::InvalidArgument("degrade_latency_ms must be >= 0, got " +
                                   std::to_string(options.degrade_latency_ms));
  }
  if (options.snapshot_retry.max_attempts < 1) {
    return Status::InvalidArgument(
        "snapshot_retry.max_attempts must be >= 1, got " +
        std::to_string(options.snapshot_retry.max_attempts));
  }
  std::unique_ptr<BoostService> service(new BoostService(graph, options));
  for (const PoolSpec& spec : options.warm_pools) {
    if (Status s = service->LoadPool(spec.name, spec.snapshot_path); !s.ok()) {
      return Status::InvalidArgument("warm-start pool '" + spec.name + "': " +
                                     s.ToString());
    }
  }
  return service;
}

StatusOr<std::unique_ptr<BoostSession>> BoostService::LoadSnapshotWithRetry(
    const std::string& snapshot_path, uint64_t* retries) const {
  PoolLoadOptions load_options;
  load_options.use_mmap = options_.mmap_pools;
  // Jitter stream seeded per path so concurrent loads of different
  // snapshots decorrelate, deterministically for a given path.
  JitteredBackoff backoff(options_.snapshot_retry,
                          std::hash<std::string>{}(snapshot_path) ^
                              0x9E3779B97F4A7C15ULL);
  for (;;) {
    StatusOr<std::unique_ptr<BoostSession>> loaded =
        LoadPoolSnapshot(graph_, snapshot_path, load_options);
    if (loaded.ok() || !IsTransientStatus(loaded.status()) ||
        !backoff.SleepAndRetry()) {
      *retries = static_cast<uint64_t>(backoff.retries());
      return loaded;
    }
  }
}

void BoostService::NoteLoadRetries(const std::string& name,
                                   uint64_t retries) const {
  if (retries == 0) return;
  std::shared_ptr<PoolStatsCollector> stats;
  {
    ReaderLock lock(mutex_);
    auto it = pools_.find(name);
    if (it != pools_.end()) stats = it->second.stats;
  }
  if (stats != nullptr) stats->RecordLoadRetries(retries);
}

Status BoostService::LoadPool(const std::string& name,
                              const std::string& snapshot_path) {
  uint64_t retries = 0;
  StatusOr<std::unique_ptr<BoostSession>> loaded =
      LoadSnapshotWithRetry(snapshot_path, &retries);
  if (!loaded.ok()) return loaded.status();
  Status added = AddPool(name, std::move(loaded).value());
  // The entry exists only after AddPool; retries absorbed on the way in are
  // attributed to it now (a failed registration has no entry to charge).
  if (added.ok()) NoteLoadRetries(name, retries);
  return added;
}

Status BoostService::CheckAndAdoptSession(const std::string& name,
                                          BoostSession* session) {
  if (name.empty()) {
    return Status::InvalidArgument("pool name must be non-empty");
  }
  if (session == nullptr) {
    return Status::InvalidArgument("pool session must be non-null");
  }
  if (session->graph().num_nodes() != graph_.num_nodes()) {
    return Status::InvalidArgument(
        "pool '" + name + "' was built against a graph with " +
        std::to_string(session->graph().num_nodes()) + " nodes, not " +
        std::to_string(graph_.num_nodes()));
  }
  // The service-wide worker-count override applies on EVERY registration
  // path — snapshot loads, direct AddPool registrations and RefreshPool
  // replacements — so a pool's thread count never depends on how it entered
  // the registry.
  if (options_.num_threads != 0) {
    if (Status s = session->set_num_threads(options_.num_threads); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status BoostService::AddPool(const std::string& name,
                             std::unique_ptr<BoostSession> session) {
  if (Status s = CheckAndAdoptSession(name, session.get()); !s.ok()) return s;
  {
    // Fail fast on a duplicate before doing the expensive preparation.
    ReaderLock lock(mutex_);
    if (pools_.count(name) != 0) {
      return Status::InvalidArgument("pool '" + name +
                                     "' is already registered");
    }
  }
  // Sampling + index warm-up runs outside any lock: queries against other
  // pools are never blocked behind a registration.
  WallTimer rebuild_timer;
  session->Prepare();
  PoolEntry entry;
  entry.last_rebuild_ms = rebuild_timer.Seconds() * 1e3;
  entry.session = std::move(session);
  entry.version = next_version_.fetch_add(1, std::memory_order_relaxed) + 1;
  entry.registered_at = NowEpochSeconds();
  entry.stats = std::make_shared<PoolStatsCollector>();
  WriterLock lock(mutex_);
  if (!pools_.emplace(name, std::move(entry)).second) {
    return Status::InvalidArgument("pool '" + name + "' is already registered");
  }
  return Status::Ok();
}

Status BoostService::RefreshPool(const std::string& name,
                                 std::unique_ptr<BoostSession> session) {
  if (Status s = CheckAndAdoptSession(name, session.get()); !s.ok()) return s;
  {
    // Fail fast when the name is not registered — a refresh replaces, it
    // never creates. A removal racing the preparation below is re-checked
    // under the writer lock at swap time.
    ReaderLock lock(mutex_);
    if (pools_.count(name) == 0) {
      return Status::NotFound("cannot refresh: no pool named '" + name + "'");
    }
  }
  // The rebuild — sampling, index warm-up, LB-order caching — runs entirely
  // outside the registry lock, so live queries (against this pool and every
  // other) proceed untouched while the replacement is prepared.
  WallTimer rebuild_timer;
  session->Prepare();
  const double rebuild_ms = rebuild_timer.Seconds() * 1e3;
  std::shared_ptr<const BoostSession> fresh = std::move(session);
  // Keeps the retired session alive past the lock scope: if this was its
  // last reference, the (potentially huge) pool arena is torn down AFTER
  // the writer lock is released, not while every Solve() lookup is blocked.
  std::shared_ptr<const BoostSession> retired;
  {
    WriterLock lock(mutex_);
    auto it = pools_.find(name);
    if (it == pools_.end()) {
      return Status::NotFound("pool '" + name +
                              "' was removed while its refresh was prepared");
    }
    // The atomic hot-swap: one pointer assignment under the writer lock. The
    // name never leaves the map, so a concurrent Solve() either looked up
    // before (and finishes on the old session, kept alive by its shared_ptr)
    // or after (and answers from the fresh one) — NotFound is impossible
    // during a refresh. Versions are stamped from the service-wide counter,
    // so they increase strictly across swaps.
    retired = std::exchange(it->second.session, std::move(fresh));
    it->second.version =
        next_version_.fetch_add(1, std::memory_order_relaxed) + 1;
    it->second.refreshes += 1;
    it->second.refreshed_at = NowEpochSeconds();
    it->second.last_rebuild_ms = rebuild_ms;
  }
  return Status::Ok();
}

Status BoostService::RefreshPoolFromSnapshot(const std::string& name,
                                             const std::string& snapshot_path) {
  uint64_t retries = 0;
  StatusOr<std::unique_ptr<BoostSession>> loaded =
      LoadSnapshotWithRetry(snapshot_path, &retries);
  // A refresh targets a live entry, so retries are recorded even when the
  // load ultimately failed — the operator sees the flakiness either way.
  NoteLoadRetries(name, retries);
  if (!loaded.ok()) return loaded.status();
  return RefreshPool(name, std::move(loaded).value());
}

Status BoostService::RemovePool(const std::string& name) {
  // Moved out under the lock, destroyed after it: dropping the last
  // reference to a removed pool frees its arena, which must not happen
  // while the registry lock blocks every concurrent lookup.
  PoolEntry removed;
  {
    WriterLock lock(mutex_);
    auto it = pools_.find(name);
    if (it == pools_.end()) {
      return Status::NotFound("no pool named '" + name + "'");
    }
    removed = std::move(it->second);
    pools_.erase(it);
  }
  return Status::Ok();
}

std::vector<std::string> BoostService::PoolNames() const {
  ReaderLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(pools_.size());
  for (const auto& [name, entry] : pools_) names.push_back(name);
  return names;
}

size_t BoostService::num_pools() const {
  ReaderLock lock(mutex_);
  return pools_.size();
}

std::shared_ptr<const BoostSession> BoostService::GetPool(
    const std::string& name) const {
  ReaderLock lock(mutex_);
  auto it = pools_.find(name);
  return it == pools_.end() ? nullptr : it->second.session;
}

uint64_t BoostService::PoolVersion(const std::string& name) const {
  ReaderLock lock(mutex_);
  auto it = pools_.find(name);
  return it == pools_.end() ? 0 : it->second.version;
}

ServiceStatsSnapshot BoostService::Stats() const {
  // Copy the identity fields and collector handles under the reader lock,
  // then let each collector fill its counters outside it (FillSnapshot
  // takes the collector's own mutex and sorts a quantile window — no reason
  // to hold the registry lock for that).
  struct Pending {
    PoolStatsSnapshot snapshot;
    std::shared_ptr<PoolStatsCollector> stats;
  };
  std::vector<Pending> pending;
  {
    ReaderLock lock(mutex_);
    pending.reserve(pools_.size());
    for (const auto& [name, entry] : pools_) {
      Pending p;
      p.snapshot.pool = name;
      p.snapshot.version = entry.version;
      p.snapshot.refreshes = entry.refreshes;
      p.snapshot.registered_at = entry.registered_at;
      p.snapshot.refreshed_at = entry.refreshed_at;
      p.snapshot.last_rebuild_ms = entry.last_rebuild_ms;
      p.stats = entry.stats;
      pending.push_back(std::move(p));
    }
  }
  ServiceStatsSnapshot result;
  result.not_found = not_found_.load(std::memory_order_relaxed);
  result.in_flight = admission_.in_flight();
  result.queued = admission_.queued();
  result.admitted = admission_.admitted();
  result.shed = admission_.shed();
  result.queue_timeouts = admission_.queue_timeouts();
  result.pools.reserve(pending.size());
  for (Pending& p : pending) {
    p.stats->FillSnapshot(&p.snapshot);
    result.pools.push_back(std::move(p.snapshot));
  }
  return result;  // std::map iteration already sorted by name
}

StatusOr<BoostResponse> BoostService::Solve(const BoostRequest& request,
                                            SolveContext* context) const {
  // One lookup pins everything the query needs — the session, the version
  // it will be attributed to and the metrics collector — so a refresh or
  // removal racing this call cannot tear them apart.
  std::shared_ptr<const BoostSession> pool;
  std::shared_ptr<PoolStatsCollector> stats;
  uint64_t version = 0;
  {
    ReaderLock lock(mutex_);
    auto it = pools_.find(request.pool);
    if (it != pools_.end()) {
      pool = it->second.session;
      stats = it->second.stats;
      version = it->second.version;
    }
  }
  if (pool == nullptr) {
    not_found_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no pool named '" + request.pool + "' (" +
                            std::to_string(num_pools()) + " registered)");
  }

  // One latency budget from here on: admission wait and solve time draw
  // down the same absolute deadline.
  const uint64_t deadline_ms = request.deadline_ms != 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
  const int64_t deadline_ns =
      deadline_ms == 0
          ? 0
          : SteadyNowNanos() + static_cast<int64_t>(deadline_ms) * 1000000;

  // Admission: the ticket's destructor returns the slot on every exit path
  // below, so slots cannot leak. Shed requests never ran and never waited —
  // they are neither queries nor errors, just shed.
  StatusOr<AdmissionController::Ticket> ticket = admission_.Admit(deadline_ns);
  if (!ticket.ok()) {
    if (ticket.status().code() == StatusCode::kResourceExhausted) {
      stats->RecordShed();
    } else {
      stats->RecordDeadlineMiss();
    }
    return ticket.status();
  }

  // Graceful degradation: under pressure, a kAuto request against a full
  // pool answers from the O(k) LB cached order instead of running the Δ̂
  // selection. Explicit modes are always honored; LB pools have nothing to
  // degrade to.
  SolveSpec spec;
  spec.k = request.k;
  spec.mode = request.mode;
  spec.num_threads = request.num_threads;
  spec.cancel = request.cancel;
  spec.deadline_ns = deadline_ns;
  bool degraded = false;
  if (request.mode == SolveMode::kAuto && !pool->lb_only() &&
      ShouldDegrade(*stats)) {
    spec.mode = SolveMode::kLbOnly;
    degraded = true;
  }

  WallTimer timer;
  StatusOr<BoostResult> solved = pool->Solve(spec, context);
  if (!solved.ok()) {
    stats->RecordError();
    if (solved.status().code() == StatusCode::kDeadlineExceeded) {
      stats->RecordDeadlineMiss();
    }
    return solved.status();
  }
  const double solve_seconds = timer.Seconds();
  stats->RecordQuery(solve_seconds, degraded);

  BoostResponse response;
  response.pool = request.pool;
  response.pool_version = version;
  response.result = std::move(solved).value();
  response.solve_seconds = solve_seconds;
  response.degraded = degraded;
  return response;
}

bool BoostService::ShouldDegrade(const PoolStatsCollector& stats) const {
  if (options_.degrade_load_factor > 0.0 &&
      admission_.load() >= options_.degrade_load_factor) {
    return true;
  }
  return options_.degrade_latency_ms > 0.0 &&
         stats.latency_ewma_ms() >= options_.degrade_latency_ms;
}

}  // namespace kboost
