#include "src/serve/admission.h"

#include <chrono>

#include "src/select/greedy.h"  // SteadyNowNanos

namespace kboost {

StatusOr<AdmissionController::Ticket> AdmissionController::Admit(
    int64_t deadline_ns) {
  if (unlimited()) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Ticket(this);
  }
  MutexLock lock(mutex_);
  if (in_flight_.load(std::memory_order_relaxed) < options_.max_in_flight) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Ticket(this);
  }
  if (queued_.load(std::memory_order_relaxed) >= options_.max_queued) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "service overloaded: " +
        std::to_string(in_flight_.load(std::memory_order_relaxed)) +
        " solves in flight, waiting room of " +
        std::to_string(options_.max_queued) + " full");
  }
  queued_.fetch_add(1, std::memory_order_relaxed);
  // Explicit wait loops (not predicate lambdas) so the condition reads are
  // analyzed in the frame that holds mutex_ — see src/util/sync.h.
  bool got_slot = true;
  if (deadline_ns > 0) {
    // Reconstruct the absolute steady time point the nanos refer to.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::nanoseconds(deadline_ns - SteadyNowNanos());
    while (in_flight_.load(std::memory_order_relaxed) >=
           options_.max_in_flight) {
      if (slot_free_.WaitUntil(mutex_, deadline)) continue;
      // Timed out: one final recheck mirrors wait_until's predicate form —
      // a slot freed exactly at the deadline is still taken.
      got_slot = in_flight_.load(std::memory_order_relaxed) <
                 options_.max_in_flight;
      break;
    }
  } else {
    while (in_flight_.load(std::memory_order_relaxed) >=
           options_.max_in_flight) {
      slot_free_.Wait(mutex_);
    }
  }
  queued_.fetch_sub(1, std::memory_order_relaxed);
  if (!got_slot) {
    queue_timeouts_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded(
        "deadline passed while waiting for an admission slot");
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return Ticket(this);
}

void AdmissionController::ReleaseSlot() {
  if (unlimited()) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  {
    MutexLock lock(mutex_);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
  slot_free_.NotifyOne();
}

double AdmissionController::load() const {
  if (unlimited()) return 0.0;
  const double capacity =
      static_cast<double>(options_.max_in_flight + options_.max_queued);
  const double used =
      static_cast<double>(in_flight_.load(std::memory_order_relaxed) +
                          queued_.load(std::memory_order_relaxed));
  return used >= capacity ? 1.0 : used / capacity;
}

}  // namespace kboost
