#ifndef KBOOST_SERVE_BOOST_SERVICE_H_
#define KBOOST_SERVE_BOOST_SERVICE_H_

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/core/boost_session.h"
#include "src/core/solve_context.h"
#include "src/util/status.h"

namespace kboost {

/// One boost query against a named pool of a BoostService — the typed
/// request of the serving API. Everything a client may vary per query lives
/// here; everything else (the graph, the seed set, ε/ℓ, the sampled pool)
/// is fixed per pool at registration time, which is what makes the answer
/// path read-only and therefore concurrent.
struct BoostRequest {
  std::string pool;  ///< registered pool name
  size_t k = 0;      ///< budget; must be in [1, pool budget]
  /// kAuto answers with the pool's native pipeline; kLbOnly downgrades a
  /// full pool to the O(k) cached-order answer; kFull is rejected against
  /// LB-only pools. (SolveMode/SolveSpec are defined in src/core.)
  SolveMode mode = SolveMode::kAuto;
  /// Worker cap for this query's selection/estimator phases; 0 = the pool's
  /// configured count.
  int num_threads = 0;
  /// Optional cooperative cancellation; polled between greedy rounds. Must
  /// outlive the Solve() call.
  const std::atomic<bool>* cancel = nullptr;
};

/// A solved request: the full BoostResult (best set, estimates, pool
/// provenance and sampling statistics) plus which pool answered and how
/// long the solve took.
struct BoostResponse {
  std::string pool;
  BoostResult result;
  double solve_seconds = 0.0;
};

/// A thread-safe registry of named, immutable prepared pools answering
/// typed BoostRequest → StatusOr<BoostResponse> queries concurrently.
///
/// The service exploits the paper's core asymmetry: sampling a PRR-graph
/// pool is expensive, answering a budget query against it is cheap — a
/// read-mostly serving workload. Pools are prepared (sampled + indexes
/// warmed + LB order cached) BEFORE registration and held as
/// shared_ptr<const BoostSession>, so the query path holds the registry
/// lock only for the name lookup; the solve itself runs lock-free on the
/// shared pool with per-query SolveContext scratch. N clients solving
/// mixed budgets/modes against one pool get results bit-identical to the
/// same queries issued serially.
///
/// Registry mutations (LoadPool/AddPool/RemovePool) take the writer lock
/// only around the map update; preparing a pool happens outside any lock.
/// Removing a pool never invalidates in-flight queries — they hold the
/// shared_ptr until they finish.
class BoostService {
 public:
  /// A snapshot to load at construction (warm start).
  struct PoolSpec {
    std::string name;
    std::string snapshot_path;  ///< a SavePoolSnapshot file (src/io/pool_io)
  };
  struct Options {
    /// Pools registered before Create() returns; any load failure fails
    /// construction with that pool's error.
    std::vector<PoolSpec> warm_pools;
    /// Overrides every loaded pool's worker count (snapshots carry the
    /// count they were built with); 0 keeps the stored counts.
    int num_threads = 0;
  };

  /// Builds a service over `graph` (which must outlive it) and warm-starts
  /// every pool in `options.warm_pools` from its snapshot.
  static StatusOr<std::unique_ptr<BoostService>> Create(
      const DirectedGraph& graph, const Options& options);
  static StatusOr<std::unique_ptr<BoostService>> Create(
      const DirectedGraph& graph) {
    return Create(graph, Options());
  }

  /// Loads a pool snapshot, prepares it for serving and registers it under
  /// `name`. InvalidArgument on a duplicate name or corrupt snapshot.
  Status LoadPool(const std::string& name, const std::string& snapshot_path);

  /// Prepares `session` for serving (sampling now if it never ran) and
  /// registers it under `name`. The service takes ownership; after
  /// registration the pool is immutable.
  Status AddPool(const std::string& name,
                 std::unique_ptr<BoostSession> session);

  /// Unregisters a pool. In-flight queries against it finish normally.
  Status RemovePool(const std::string& name);

  /// Registered pool names, sorted.
  std::vector<std::string> PoolNames() const;
  size_t num_pools() const;

  /// The named pool, or null when absent — for estimator access and tests.
  std::shared_ptr<const BoostSession> GetPool(const std::string& name) const;

  /// Answers one request. Thread-safe; any number of concurrent callers.
  /// NotFound for an unknown pool name; otherwise exactly the statuses of
  /// BoostSession::Solve (InvalidArgument, Cancelled). The overload taking a
  /// SolveContext lets a client thread keep selection scratch warm across
  /// its queries; contexts must not be shared between in-flight calls.
  StatusOr<BoostResponse> Solve(const BoostRequest& request) const {
    return Solve(request, nullptr);
  }
  StatusOr<BoostResponse> Solve(const BoostRequest& request,
                                SolveContext* context) const;

 private:
  BoostService(const DirectedGraph& graph, int default_num_threads)
      : graph_(graph), default_num_threads_(default_num_threads) {}

  const DirectedGraph& graph_;
  const int default_num_threads_;
  mutable std::shared_mutex mutex_;  // guards pools_ (the map only)
  std::map<std::string, std::shared_ptr<const BoostSession>> pools_;
};

}  // namespace kboost

#endif  // KBOOST_SERVE_BOOST_SERVICE_H_
