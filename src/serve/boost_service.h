#ifndef KBOOST_SERVE_BOOST_SERVICE_H_
#define KBOOST_SERVE_BOOST_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/boost_session.h"
#include "src/core/solve_context.h"
#include "src/serve/admission.h"
#include "src/serve/service_stats.h"
#include "src/util/backoff.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace kboost {

/// One boost query against a named pool of a BoostService — the typed
/// request of the serving API. Everything a client may vary per query lives
/// here; everything else (the graph, the seed set, ε/ℓ, the sampled pool)
/// is fixed per pool at registration time, which is what makes the answer
/// path read-only and therefore concurrent.
struct BoostRequest {
  std::string pool;  ///< registered pool name
  size_t k = 0;      ///< budget; must be in [1, pool budget]
  /// kAuto answers with the pool's native pipeline; kLbOnly downgrades a
  /// full pool to the O(k) cached-order answer; kFull is rejected against
  /// LB-only pools. (SolveMode/SolveSpec are defined in src/core.)
  SolveMode mode = SolveMode::kAuto;
  /// Worker cap for this query's selection/estimator phases; 0 = the pool's
  /// configured count.
  int num_threads = 0;
  /// Optional cooperative cancellation; polled between greedy rounds AND
  /// every bounded stride of the per-pick Δ̂ re-evaluation scan, so even a
  /// one-pick solve cancels promptly. Must outlive the Solve() call.
  const std::atomic<bool>* cancel = nullptr;
  /// Per-request latency budget in milliseconds, measured from Solve()
  /// entry and covering admission wait AND solve time (one budget, not
  /// two). 0 = the service's Options::default_deadline_ms (which may itself
  /// be 0 = no deadline). A request that overruns gets DeadlineExceeded;
  /// its partial selection is discarded, never served.
  uint64_t deadline_ms = 0;
};

/// A solved request: the full BoostResult (best set, estimates, pool
/// provenance and sampling statistics) plus which pool (and which version
/// of it) answered and how long the solve took.
struct BoostResponse {
  std::string pool;
  /// The version of the pool that answered — provenance for hot-swapped
  /// pools. Versions are service-wide monotonic: every registration and
  /// every RefreshPool swap stamps a strictly larger value, so a client
  /// comparing two responses can tell which pool build answered each.
  uint64_t pool_version = 0;
  BoostResult result;
  double solve_seconds = 0.0;
  /// Set when the degradation policy downgraded this kAuto request from the
  /// full sandwich pipeline to the LB cached-order answer (see
  /// Options::degrade_load_factor / degrade_latency_ms). The answer is the
  /// pool's exact LB answer — bit-identical to an explicit kLbOnly request —
  /// just not the full sandwich the pool could produce unloaded.
  bool degraded = false;
};

/// A thread-safe registry of named, immutable prepared pools answering
/// typed BoostRequest → StatusOr<BoostResponse> queries concurrently.
///
/// The service exploits the paper's core asymmetry: sampling a PRR-graph
/// pool is expensive, answering a budget query against it is cheap — a
/// read-mostly serving workload. Pools are prepared (sampled + indexes
/// warmed + LB order cached) BEFORE registration and held as
/// shared_ptr<const BoostSession>, so the query path holds the registry
/// lock only for the name lookup; the solve itself runs lock-free on the
/// shared pool with per-query SolveContext scratch. N clients solving
/// mixed budgets/modes against one pool get results bit-identical to the
/// same queries issued serially.
///
/// Registry mutations (LoadPool/AddPool/RefreshPool/RemovePool) take the
/// writer lock only around the map update; preparing a pool happens outside
/// any lock. Removing or refreshing a pool never invalidates in-flight
/// queries — they hold the shared_ptr until they finish.
///
/// Pool lifecycle: a registered name carries a monotonically increasing
/// `version` plus registration/refresh timestamps, and RefreshPool
/// hot-swaps the session behind a live name (see below) — the building
/// block for serving over graph data or a boosting parameter β that
/// changes while queries are in flight. Per-pool traffic metrics (query
/// and error counts, solve-latency p50/p95) are collected on the query
/// path and exposed by Stats().
class BoostService {
 public:
  /// A snapshot to load at construction (warm start).
  struct PoolSpec {
    std::string name;
    std::string snapshot_path;  ///< a SavePoolSnapshot file (src/io/pool_io)
  };
  struct Options {
    /// Pools registered before Create() returns; any load failure fails
    /// construction with that pool's error.
    std::vector<PoolSpec> warm_pools;
    /// Overrides every registered pool's worker count — applied uniformly
    /// on BOTH registration paths (LoadPool snapshots, which carry the
    /// count they were built with, and directly AddPool-ed sessions) and on
    /// RefreshPool replacements; 0 keeps each session's own count. Either
    /// way the snapshot's recorded thread count never survives registration
    /// unclamped: service options win over snapshot headers.
    int num_threads = 0;
    /// Serve snapshot-loaded pools zero-copy from an mmap of the file
    /// (LoadPool, RefreshPoolFromSnapshot and warm_pools all route through
    /// it). Requires v3 nop-coded full-mode snapshots — loading anything
    /// else fails with FailedPrecondition. The mapping is pinned by the
    /// session (BoostSession::RetainResource), so hot-swaps and removals
    /// stay safe: the bytes outlive every in-flight query.
    bool mmap_pools = false;

    // ---- Overload protection (all off by default) ----

    /// Admission budget: at most this many solves run concurrently
    /// (0 = unlimited). When all slots are busy, up to `max_queued` more
    /// requests wait for one; anything beyond is shed immediately with
    /// ResourceExhausted instead of piling onto a saturated machine.
    uint64_t max_in_flight = 0;
    /// Waiting room beyond max_in_flight (ignored when max_in_flight is 0).
    uint64_t max_queued = 0;
    /// Deadline applied to requests that carry none (deadline_ms == 0).
    /// 0 = no default; see BoostRequest::deadline_ms for semantics.
    uint64_t default_deadline_ms = 0;
    /// Graceful degradation on load: when the admission budget is at least
    /// this full (AdmissionController::load() ∈ [0,1]), kAuto requests
    /// against full pools answer from the O(k) LB cached order instead of
    /// running the Δ̂ selection, with BoostResponse::degraded set. 0 = never
    /// degrade on load. Explicit kFull/kLbOnly requests are always honored.
    double degrade_load_factor = 0.0;
    /// Graceful degradation on latency: same downgrade when the pool's
    /// recent solve-latency EWMA exceeds this many milliseconds. 0 = never
    /// degrade on latency.
    double degrade_latency_ms = 0.0;
    /// Retry schedule for transient snapshot-load faults (I/O errors,
    /// allocation pressure) in LoadPool / RefreshPoolFromSnapshot /
    /// warm_pools. Permanent errors (corruption, graph mismatch) are never
    /// retried. Set max_attempts = 1 to disable. Retries taken are counted
    /// per pool in Stats().
    BackoffPolicy snapshot_retry;
  };

  /// Builds a service over `graph` (which must outlive it) and warm-starts
  /// every pool in `options.warm_pools` from its snapshot.
  static StatusOr<std::unique_ptr<BoostService>> Create(
      const DirectedGraph& graph, const Options& options);
  static StatusOr<std::unique_ptr<BoostService>> Create(
      const DirectedGraph& graph) {
    return Create(graph, Options());
  }

  /// Loads a pool snapshot, prepares it for serving and registers it under
  /// `name`. InvalidArgument on a duplicate name or corrupt snapshot.
  Status LoadPool(const std::string& name, const std::string& snapshot_path);

  /// Prepares `session` for serving (sampling now if it never ran) and
  /// registers it under `name`. The service takes ownership; after
  /// registration the pool is immutable.
  Status AddPool(const std::string& name,
                 std::unique_ptr<BoostSession> session);

  /// Hot-swaps the pool behind a live name: prepares `session` (sampling,
  /// index warm-up — the expensive part) entirely OUTSIDE the registry
  /// lock, then atomically replaces the published shared_ptr. The name
  /// stays registered throughout, so concurrent Solve() calls never observe
  /// NotFound during a refresh: queries that looked the pool up before the
  /// swap finish on the old session (their shared_ptr keeps it alive),
  /// queries that look up after the swap answer from the new one — there is
  /// no in-between. The entry's version is bumped (strictly increasing) and
  /// refreshed_at is stamped; traffic metrics for the name are kept.
  /// NotFound when `name` is not registered (also when it was removed while
  /// the replacement was being prepared); InvalidArgument for a null
  /// session or a graph-size mismatch.
  Status RefreshPool(const std::string& name,
                     std::unique_ptr<BoostSession> session);

  /// RefreshPool from a snapshot file, mirroring LoadPool.
  Status RefreshPoolFromSnapshot(const std::string& name,
                                 const std::string& snapshot_path);

  /// Unregisters a pool. In-flight queries against it finish normally.
  Status RemovePool(const std::string& name);

  /// Registered pool names, sorted.
  std::vector<std::string> PoolNames() const;
  size_t num_pools() const;

  /// The named pool, or null when absent — for estimator access and tests.
  std::shared_ptr<const BoostSession> GetPool(const std::string& name) const;

  /// The named pool's current version, or 0 when absent.
  uint64_t PoolVersion(const std::string& name) const;

  /// Point-in-time service metrics: per-pool query/error counts and
  /// solve-latency p50/p95 (collected on the query path), version and
  /// lifecycle timestamps, plus the NotFound count. Thread-safe; cheap
  /// enough to poll.
  ServiceStatsSnapshot Stats() const;

  /// Answers one request. Thread-safe; any number of concurrent callers.
  ///
  /// The overload contract, in order: NotFound for an unknown pool name
  /// (checked before admission — a typo never consumes a slot);
  /// ResourceExhausted when the admission waiting room is full (the request
  /// is shed without waiting); DeadlineExceeded when the request's deadline
  /// passes while queued for admission or mid-solve; otherwise exactly the
  /// statuses of BoostSession::Solve (InvalidArgument, Cancelled). Under
  /// degradation pressure, kAuto requests against full pools may answer
  /// from the LB cached order with response.degraded set. Every non-OK
  /// return is one of these typed statuses — overload never surfaces as a
  /// crash or an untyped error — and the RAII admission ticket guarantees
  /// the slot is returned on every path. The overload taking a
  /// SolveContext lets a client thread keep selection scratch warm across
  /// its queries; contexts must not be shared between in-flight calls.
  StatusOr<BoostResponse> Solve(const BoostRequest& request) const {
    return Solve(request, nullptr);
  }
  StatusOr<BoostResponse> Solve(const BoostRequest& request,
                                SolveContext* context) const;

 private:
  /// What the registry maps a name to: the published session plus the
  /// lifecycle/metrics state that belongs to the NAME and survives
  /// hot-swaps of the session behind it.
  struct PoolEntry {
    std::shared_ptr<const BoostSession> session;
    uint64_t version = 0;
    uint64_t refreshes = 0;
    double registered_at = 0.0;  ///< seconds since epoch
    double refreshed_at = 0.0;   ///< seconds since epoch; 0 = never swapped
    double last_rebuild_ms = 0.0;  ///< Prepare() wall ms of the live session
    /// shared_ptr so a query that loses a race with RemovePool can still
    /// record its outcome after the entry is gone.
    std::shared_ptr<PoolStatsCollector> stats;
  };

  BoostService(const DirectedGraph& graph, const Options& options)
      : graph_(graph),
        options_(options),
        admission_(AdmissionOptions{options.max_in_flight,
                                    options.max_queued}) {}

  /// Shared validation + service-default thread override for every
  /// registration path (AddPool and RefreshPool).
  Status CheckAndAdoptSession(const std::string& name, BoostSession* session);

  /// The snapshot load both LoadPool and RefreshPoolFromSnapshot share:
  /// retries transient faults per Options::snapshot_retry and reports the
  /// retries taken through `retries` (recorded against the pool entry by
  /// the caller once it exists).
  StatusOr<std::unique_ptr<BoostSession>> LoadSnapshotWithRetry(
      const std::string& snapshot_path, uint64_t* retries) const;

  /// Adds `retries` to the named pool's load-retry counter (no-op when the
  /// name is not registered).
  void NoteLoadRetries(const std::string& name, uint64_t retries) const;

  /// Whether a kAuto request should downgrade to the LB answer right now:
  /// admission fullness ≥ degrade_load_factor, or the pool's latency EWMA ≥
  /// degrade_latency_ms (each signal only when configured).
  bool ShouldDegrade(const PoolStatsCollector& stats) const;

  const DirectedGraph& graph_;
  const Options options_;  // warm_pools unused after Create()
  mutable AdmissionController admission_;
  /// Source of pool versions: every registration/refresh stamps
  /// ++next_version_, so versions are unique and strictly increasing across
  /// the whole service lifetime (re-registering a removed name never reuses
  /// an old version).
  std::atomic<uint64_t> next_version_{0};
  mutable std::atomic<uint64_t> not_found_{0};
  /// Guards pools_ — the map only. Sessions and collectors are published as
  /// shared_ptr copies, so everything heavy (Prepare, Solve, FillSnapshot)
  /// runs outside it; no other lock is ever taken while it is held.
  mutable SharedMutex mutex_;
  std::map<std::string, PoolEntry> pools_ KB_GUARDED_BY(mutex_);
};

}  // namespace kboost

#endif  // KBOOST_SERVE_BOOST_SERVICE_H_
