#ifndef KBOOST_SERVE_SERVICE_STATS_H_
#define KBOOST_SERVE_SERVICE_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/stats.h"

namespace kboost {

/// Point-in-time metrics of one named pool of a BoostService — what an
/// operator watches to know whether a pool is healthy and when it was last
/// hot-swapped. Counters are lifetime totals for the NAME (they survive
/// RefreshPool; a pool's traffic history does not reset because its data
/// was rebuilt); the latency quantiles are computed over the most recent
/// `PoolStatsCollector::kWindow` solves so they track current behaviour,
/// not the all-time distribution.
struct PoolStatsSnapshot {
  std::string pool;           ///< registered name
  uint64_t version = 0;       ///< current pool version (see BoostService)
  uint64_t refreshes = 0;     ///< completed RefreshPool swaps
  uint64_t queries = 0;       ///< successfully answered solves
  uint64_t errors = 0;        ///< solves that returned a non-OK status
  double latency_mean_ms = 0.0;  ///< lifetime mean solve latency
  double latency_p50_ms = 0.0;   ///< median over the recent window
  double latency_p95_ms = 0.0;   ///< 95th percentile over the recent window
  double registered_at = 0.0;    ///< seconds since epoch, AddPool/LoadPool
  double refreshed_at = 0.0;     ///< seconds since epoch, last swap (0 = never)
  /// Wall milliseconds the most recent rebuild of this pool spent in
  /// Prepare() — sampling, per-shard index warm-up and LB-order caching —
  /// i.e. the cost of the last AddPool/LoadPool or RefreshPool, measured
  /// outside the registry lock. What an operator watches to size refresh
  /// cadence and judge the sharded rebuild speed-up.
  double last_rebuild_ms = 0.0;
};

/// Everything BoostService::Stats() reports: one snapshot per registered
/// pool (sorted by name) plus the service-level count of requests that
/// named no registered pool.
struct ServiceStatsSnapshot {
  std::vector<PoolStatsSnapshot> pools;
  uint64_t not_found = 0;  ///< Solve() calls rejected with NotFound
};

/// Thread-safe latency/outcome accumulator for one pool name. Any number of
/// query threads record concurrently; recording takes one short mutex hold
/// (a Welford update plus a ring-buffer store), which is noise next to a
/// solve. The collector is owned by shared_ptr so a query that loses a race
/// with RemovePool can still record into it safely.
class PoolStatsCollector {
 public:
  /// Latency quantile window: p50/p95 are computed over the last kWindow
  /// solves. Bounded so a long-lived service never grows its metrics.
  static constexpr size_t kWindow = 4096;

  /// Records one successfully answered query and its solve latency.
  void RecordQuery(double latency_seconds);
  /// Records one query that failed against this pool (bad request,
  /// cancellation, ...). NotFound is service-level, not per-pool.
  void RecordError();

  /// Fills the count and latency fields of `out` (the identity fields —
  /// name, version, timestamps — belong to the registry entry).
  void FillSnapshot(PoolStatsSnapshot* out) const;

 private:
  mutable std::mutex mutex_;
  RunningStat latency_ms_;
  uint64_t errors_ = 0;
  std::vector<double> window_ms_;  // ring buffer of the last kWindow solves
  size_t window_next_ = 0;
};

}  // namespace kboost

#endif  // KBOOST_SERVE_SERVICE_STATS_H_
