#ifndef KBOOST_SERVE_SERVICE_STATS_H_
#define KBOOST_SERVE_SERVICE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/stats.h"
#include "src/util/sync.h"

namespace kboost {

/// Point-in-time metrics of one named pool of a BoostService — what an
/// operator watches to know whether a pool is healthy and when it was last
/// hot-swapped. Counters are lifetime totals for the NAME (they survive
/// RefreshPool; a pool's traffic history does not reset because its data
/// was rebuilt); the latency quantiles are computed over the most recent
/// `PoolStatsCollector::kWindow` solves so they track current behaviour,
/// not the all-time distribution.
struct PoolStatsSnapshot {
  std::string pool;           ///< registered name
  uint64_t version = 0;       ///< current pool version (see BoostService)
  uint64_t refreshes = 0;     ///< completed RefreshPool swaps
  uint64_t queries = 0;       ///< successfully answered solves
  uint64_t errors = 0;        ///< solves that returned a non-OK status
  /// Requests shed at admission with ResourceExhausted (waiting room full).
  /// Shed requests never reach the solve path: counted neither as queries
  /// nor as errors — the overload contract keeps them a separate budget.
  uint64_t shed = 0;
  /// Requests whose deadline passed — waiting for an admission slot or
  /// mid-solve (the latter also count as errors; the former do not).
  uint64_t deadline_misses = 0;
  /// Successfully answered queries that the degradation policy downgraded
  /// from the full sandwich pipeline to the LB cached-order answer. A subset
  /// of `queries`.
  uint64_t degraded = 0;
  /// Transient snapshot-load faults absorbed by the retry-with-backoff loop
  /// while loading or refreshing this pool (retries that led to an eventual
  /// success or gave up; either way each retry counts once).
  uint64_t load_retries = 0;
  double latency_mean_ms = 0.0;  ///< lifetime mean solve latency
  double latency_p50_ms = 0.0;   ///< median over the recent window
  double latency_p95_ms = 0.0;   ///< 95th percentile over the recent window
  /// Exponentially weighted moving average of solve latency (α = 1/32, ~32
  /// queries of memory) — the cheap load-pressure signal the degradation
  /// policy thresholds on, readable lock-free on the query path.
  double latency_ewma_ms = 0.0;
  double registered_at = 0.0;    ///< seconds since epoch, AddPool/LoadPool
  double refreshed_at = 0.0;     ///< seconds since epoch, last swap (0 = never)
  /// Wall milliseconds the most recent rebuild of this pool spent in
  /// Prepare() — sampling, per-shard index warm-up and LB-order caching —
  /// i.e. the cost of the last AddPool/LoadPool or RefreshPool, measured
  /// outside the registry lock. What an operator watches to size refresh
  /// cadence and judge the sharded rebuild speed-up.
  double last_rebuild_ms = 0.0;
};

/// Everything BoostService::Stats() reports: one snapshot per registered
/// pool (sorted by name) plus the service-level count of requests that
/// named no registered pool.
struct ServiceStatsSnapshot {
  std::vector<PoolStatsSnapshot> pools;
  uint64_t not_found = 0;  ///< Solve() calls rejected with NotFound
  // Admission-control state (service-wide; zeros when admission is
  // unlimited). in_flight/queued are point-in-time gauges, the rest are
  // lifetime totals.
  uint64_t in_flight = 0;       ///< solves currently admitted
  uint64_t queued = 0;          ///< requests currently waiting for a slot
  uint64_t admitted = 0;        ///< total requests granted a slot
  uint64_t shed = 0;            ///< total requests shed (waiting room full)
  uint64_t queue_timeouts = 0;  ///< total deadline expiries while queued
};

/// Thread-safe latency/outcome accumulator for one pool name. Any number of
/// query threads record concurrently; recording takes one short mutex hold
/// (a Welford update plus a ring-buffer store), which is noise next to a
/// solve. The collector is owned by shared_ptr so a query that loses a race
/// with RemovePool can still record into it safely.
class PoolStatsCollector {
 public:
  /// Latency quantile window: p50/p95 are computed over the last kWindow
  /// solves. Bounded so a long-lived service never grows its metrics.
  static constexpr size_t kWindow = 4096;

  /// EWMA smoothing factor: each solve moves the average 1/32 of the way to
  /// its latency, so the signal remembers roughly the last 32 queries.
  static constexpr double kEwmaAlpha = 1.0 / 32.0;

  /// Records one successfully answered query, its solve latency, and
  /// whether the degradation policy downgraded it to the LB answer.
  void RecordQuery(double latency_seconds, bool degraded = false);
  /// Records one query that failed against this pool (bad request,
  /// cancellation, deadline mid-solve, ...). NotFound is service-level,
  /// not per-pool.
  void RecordError();
  /// Records one request shed at admission (not a query, not an error).
  void RecordShed();
  /// Records one deadline miss — while queued for admission or mid-solve.
  void RecordDeadlineMiss();
  /// Records transient snapshot-load faults retried while (re)loading this
  /// pool's snapshot.
  void RecordLoadRetries(uint64_t retries);

  /// Current latency EWMA in milliseconds; lock-free (read on the query
  /// path by the degradation policy). 0 until the first query.
  double latency_ewma_ms() const {
    return ewma_ms_.load(std::memory_order_relaxed);
  }

  /// Fills the count and latency fields of `out` (the identity fields —
  /// name, version, timestamps — belong to the registry entry).
  void FillSnapshot(PoolStatsSnapshot* out) const;

 private:
  mutable Mutex mutex_;
  RunningStat latency_ms_ KB_GUARDED_BY(mutex_);
  uint64_t errors_ KB_GUARDED_BY(mutex_) = 0;
  uint64_t degraded_ KB_GUARDED_BY(mutex_) = 0;
  /// Ring buffer of the last kWindow solves.
  std::vector<double> window_ms_ KB_GUARDED_BY(mutex_);
  size_t window_next_ KB_GUARDED_BY(mutex_) = 0;
  // Outside the mutex: bumped on paths that must not contend with solvers
  // (shed happens exactly when the service is saturated) or read lock-free.
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> load_retries_{0};
  /// Written under mutex_ (RecordQuery), read lock-free by the degradation
  /// policy — atomic by design, not guarded.
  std::atomic<double> ewma_ms_{0.0};
};

}  // namespace kboost

#endif  // KBOOST_SERVE_SERVICE_STATS_H_
