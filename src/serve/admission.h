#ifndef KBOOST_SERVE_ADMISSION_H_
#define KBOOST_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "src/util/status.h"
#include "src/util/sync.h"

namespace kboost {

/// Admission budget of a BoostService: at most `max_in_flight` solves run
/// concurrently, at most `max_queued` more wait for a slot, and everything
/// beyond that is shed immediately with a typed error instead of piling onto
/// a saturated machine. Both 0 by default = unlimited (the pre-admission
/// behaviour).
struct AdmissionOptions {
  /// Concurrent solves allowed past admission (0 = unlimited, no queue).
  uint64_t max_in_flight = 0;
  /// Requests allowed to wait for an in-flight slot when all are busy.
  /// 0 = no waiting room: the service sheds as soon as in-flight is full.
  /// Ignored when max_in_flight is 0.
  uint64_t max_queued = 0;
};

/// Counting semaphore with a bounded waiting room and deadline-aware waits —
/// the overload front door of BoostService::Solve.
///
/// Admit() returns a move-only RAII Ticket whose destruction releases the
/// slot, so every exit path of a solve (success, error, exception-free early
/// return) gives the slot back exactly once — admission slots cannot leak.
/// Rejections are typed: ResourceExhausted when the waiting room is full
/// (shed), DeadlineExceeded when a queued request's deadline passed before a
/// slot freed. Both are counted for Stats().
///
/// The fullness fraction (load()) doubles as the service's load-pressure
/// signal for graceful degradation.
class AdmissionController {
 public:
  /// Releases one admission slot when destroyed. Default-constructed and
  /// moved-from tickets hold nothing.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    /// Whether this ticket holds a slot (admitted, not yet released).
    bool held() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    void Release() {
      if (controller_ != nullptr) {
        controller_->ReleaseSlot();
        controller_ = nullptr;
      }
    }
    AdmissionController* controller_ = nullptr;
  };

  explicit AdmissionController(const AdmissionOptions& options)
      : options_(options) {}

  /// Tries to take an in-flight slot, waiting in the bounded queue when all
  /// are busy. `deadline_ns` is an absolute SteadyNowNanos() time bounding
  /// the wait (0 = wait indefinitely). Returns the slot's RAII ticket, or:
  /// ResourceExhausted when the waiting room is full (the request is shed,
  /// no waiting), DeadlineExceeded when the deadline passed while queued.
  /// With max_in_flight == 0 every request is admitted immediately (the
  /// in-flight gauge still tracks).
  StatusOr<Ticket> Admit(int64_t deadline_ns) KB_EXCLUDES(mutex_);

  /// Whether no concurrency bound is configured.
  bool unlimited() const { return options_.max_in_flight == 0; }

  /// Occupancy fraction of the total budget (in-flight + waiting over
  /// max_in_flight + max_queued), in [0, 1]. Always 0 when unlimited — an
  /// unbounded service has no meaningful fullness. This is the load signal
  /// the degradation policy thresholds on.
  double load() const;

  // Gauges (point-in-time) and lifetime counters, all lock-free reads.
  uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  uint64_t queued() const { return queued_.load(std::memory_order_relaxed); }
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  uint64_t queue_timeouts() const {
    return queue_timeouts_.load(std::memory_order_relaxed);
  }

 private:
  void ReleaseSlot() KB_EXCLUDES(mutex_);

  const AdmissionOptions options_;
  /// Orders slot hand-off: every wait and every in_flight_/queued_ mutation
  /// on the bounded path happens under it (the unlimited path touches only
  /// the gauge and never waits, so it skips the lock).
  Mutex mutex_;
  CondVar slot_free_;
  // Mutated under mutex_ (no lost wakeups) but deliberately atomic, NOT
  // KB_GUARDED_BY: the gauges/load() accessors and the degradation policy
  // read them lock-free on the query path.
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> queued_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> queue_timeouts_{0};
};

}  // namespace kboost

#endif  // KBOOST_SERVE_ADMISSION_H_
