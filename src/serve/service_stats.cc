#include "src/serve/service_stats.h"

namespace kboost {

void PoolStatsCollector::RecordQuery(double latency_seconds) {
  const double ms = latency_seconds * 1e3;
  std::lock_guard<std::mutex> lock(mutex_);
  latency_ms_.Add(ms);
  if (window_ms_.size() < kWindow) {
    window_ms_.push_back(ms);
  } else {
    window_ms_[window_next_] = ms;
  }
  window_next_ = (window_next_ + 1) % kWindow;
}

void PoolStatsCollector::RecordError() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++errors_;
}

void PoolStatsCollector::FillSnapshot(PoolStatsSnapshot* out) const {
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out->queries = latency_ms_.count();
    out->errors = errors_;
    out->latency_mean_ms = latency_ms_.mean();
    window = window_ms_;
  }
  // Quantile sorts a copy; done outside the lock so a slow snapshot never
  // stalls the query path.
  if (!window.empty()) {
    out->latency_p50_ms = Quantile(window, 0.50);
    out->latency_p95_ms = Quantile(std::move(window), 0.95);
  }
}

}  // namespace kboost
