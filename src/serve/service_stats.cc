#include "src/serve/service_stats.h"

namespace kboost {

void PoolStatsCollector::RecordQuery(double latency_seconds, bool degraded) {
  const double ms = latency_seconds * 1e3;
  MutexLock lock(mutex_);
  latency_ms_.Add(ms);
  if (degraded) ++degraded_;
  if (window_ms_.size() < kWindow) {
    window_ms_.push_back(ms);
  } else {
    window_ms_[window_next_] = ms;
  }
  window_next_ = (window_next_ + 1) % kWindow;
  // Updated under the mutex (no lost updates), stored atomically so the
  // degradation policy reads it without locking on the query path.
  const double prev = ewma_ms_.load(std::memory_order_relaxed);
  const double next = prev == 0.0 ? ms : prev + (ms - prev) * kEwmaAlpha;
  ewma_ms_.store(next, std::memory_order_relaxed);
}

void PoolStatsCollector::RecordError() {
  MutexLock lock(mutex_);
  ++errors_;
}

void PoolStatsCollector::RecordShed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
}

void PoolStatsCollector::RecordDeadlineMiss() {
  deadline_misses_.fetch_add(1, std::memory_order_relaxed);
}

void PoolStatsCollector::RecordLoadRetries(uint64_t retries) {
  load_retries_.fetch_add(retries, std::memory_order_relaxed);
}

void PoolStatsCollector::FillSnapshot(PoolStatsSnapshot* out) const {
  std::vector<double> window;
  {
    MutexLock lock(mutex_);
    out->queries = latency_ms_.count();
    out->errors = errors_;
    out->degraded = degraded_;
    out->latency_mean_ms = latency_ms_.mean();
    window = window_ms_;
  }
  out->shed = shed_.load(std::memory_order_relaxed);
  out->deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  out->load_retries = load_retries_.load(std::memory_order_relaxed);
  out->latency_ewma_ms = ewma_ms_.load(std::memory_order_relaxed);
  // Quantile sorts a copy; done outside the lock so a slow snapshot never
  // stalls the query path.
  if (!window.empty()) {
    out->latency_p50_ms = Quantile(window, 0.50);
    out->latency_p95_ms = Quantile(std::move(window), 0.95);
  }
}

}  // namespace kboost
