#ifndef KBOOST_TREE_TREE_GENERATORS_H_
#define KBOOST_TREE_TREE_GENERATORS_H_

#include "src/tree/bidirected_tree.h"
#include "src/util/rng.h"

namespace kboost {

/// Probability assignment for generated trees (Sec. VIII uses the
/// Trivalency model with p' = 1 - (1-p)^2).
struct TreeProbModel {
  /// Draws p uniformly from {0.1, 0.01, 0.001} per directed edge when true;
  /// otherwise uses constant_p.
  bool trivalency = true;
  double constant_p = 0.1;
  double beta = 2.0;  ///< p' = 1 - (1-p)^beta
};

/// Complete binary bidirected tree on n nodes (node 0 the natural root,
/// children of i at 2i+1, 2i+2), probabilities drawn per TreeProbModel.
/// No seeds are set — use SelectTreeSeeds or TreeBuilder-level control.
BidirectedTree BuildCompleteBinaryTree(NodeId num_nodes,
                                       const TreeProbModel& model, Rng& rng);

/// Uniform random recursive tree: node i attaches to a uniform random
/// earlier node. `max_children` (0 = unbounded) caps fanout, matching the
/// bounded-degree case of the DP complexity analysis.
BidirectedTree BuildRandomTree(NodeId num_nodes, int max_children,
                               const TreeProbModel& model, Rng& rng);

/// Marks `count` seeds on a copy of `tree`. Seeds are chosen by expected
/// IC influence via IMM on the directed-graph view when `influential` is
/// true (the paper's setup), else uniformly at random.
BidirectedTree WithTreeSeeds(const BidirectedTree& tree, size_t count,
                             bool influential, Rng& rng);

}  // namespace kboost

#endif  // KBOOST_TREE_TREE_GENERATORS_H_
