#include "src/tree/tree_generators.h"

#include <algorithm>
#include <cmath>

#include "src/im/imm.h"
#include "src/util/logging.h"

namespace kboost {

namespace {

double DrawP(const TreeProbModel& model, Rng& rng) {
  if (!model.trivalency) return model.constant_p;
  static constexpr double kLevels[3] = {0.1, 0.01, 0.001};
  return kLevels[rng.NextBounded(3)];
}

double Boosted(double p, double beta) {
  return 1.0 - std::pow(1.0 - p, beta);
}

void AddModeledEdge(TreeBuilder& builder, NodeId u, NodeId v,
                    const TreeProbModel& model, Rng& rng) {
  const double p_uv = DrawP(model, rng);
  const double p_vu = DrawP(model, rng);
  builder.AddEdge(u, v, p_uv, Boosted(p_uv, model.beta), p_vu,
                  Boosted(p_vu, model.beta));
}

}  // namespace

BidirectedTree BuildCompleteBinaryTree(NodeId num_nodes,
                                       const TreeProbModel& model, Rng& rng) {
  KB_CHECK(num_nodes >= 1);
  TreeBuilder builder(num_nodes);
  for (NodeId child = 1; child < num_nodes; ++child) {
    AddModeledEdge(builder, (child - 1) / 2, child, model, rng);
  }
  return std::move(builder).Build();
}

BidirectedTree BuildRandomTree(NodeId num_nodes, int max_children,
                               const TreeProbModel& model, Rng& rng) {
  KB_CHECK(num_nodes >= 1);
  TreeBuilder builder(num_nodes);
  std::vector<int> child_count(num_nodes, 0);
  for (NodeId child = 1; child < num_nodes; ++child) {
    NodeId parent;
    do {
      parent = static_cast<NodeId>(rng.NextBounded(child));
    } while (max_children > 0 && child_count[parent] >= max_children);
    ++child_count[parent];
    AddModeledEdge(builder, parent, child, model, rng);
  }
  return std::move(builder).Build();
}

BidirectedTree WithTreeSeeds(const BidirectedTree& tree, size_t count,
                             bool influential, Rng& rng) {
  const NodeId n = static_cast<NodeId>(tree.num_nodes());
  KB_CHECK(count <= tree.num_nodes());

  std::vector<NodeId> seeds;
  if (influential) {
    ImmOptions options;
    options.k = count;
    options.epsilon = 0.5;
    options.seed = rng.NextU64();
    seeds = SelectSeedsImm(tree.ToDirectedGraph(), options).seeds;
  } else {
    std::vector<NodeId> pool(n);
    for (NodeId v = 0; v < n; ++v) pool[v] = v;
    for (size_t i = 0; i < count; ++i) {
      size_t j = i + rng.NextBounded(pool.size() - i);
      std::swap(pool[i], pool[j]);
      seeds.push_back(pool[i]);
    }
  }

  // Rebuild the tree with the same edges plus the chosen seeds.
  TreeBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (const BidirectedTree::HalfEdge& e : tree.Neighbors(u)) {
      if (u < e.neighbor) {
        builder.AddEdge(u, e.neighbor, e.p_out, e.pb_out, e.p_in, e.pb_in);
      }
    }
  }
  builder.SetSeeds(seeds);
  return std::move(builder).Build();
}

}  // namespace kboost
