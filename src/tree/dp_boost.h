#ifndef KBOOST_TREE_DP_BOOST_H_
#define KBOOST_TREE_DP_BOOST_H_

#include <cstddef>
#include <vector>

#include "src/tree/bidirected_tree.h"

namespace kboost {

/// Tunables for DP-Boost (Sec. VI-B / Appendix B).
struct DpBoostOptions {
  size_t k = 50;
  /// Approximation slack: the returned set satisfies
  /// Δ_S(B̃) ≥ (1−ε)·Δ_S(B*) whenever Δ_S(B*) ≥ 1.
  double epsilon = 0.5;
  /// Root used for the bottom-up sweep; any node works.
  NodeId root = 0;
};

/// Outcome of the rounded dynamic programming.
struct DpBoostResult {
  std::vector<NodeId> boost_set;  ///< B̃, |B̃| ≤ k
  double dp_value = 0.0;   ///< g'(root): certified lower bound on Δ_S(B̃)
  double boost = 0.0;      ///< exact Δ_S(B̃) (via the tree evaluator)
  double delta = 0.0;      ///< rounding parameter δ actually used
  double greedy_lb = 0.0;  ///< Greedy-Boost lower bound that sized δ
  size_t table_cells = 0;  ///< total DP cells (cost diagnostics)
};

/// DP-Boost: the FPTAS for k-boosting on bidirected trees. Runs
/// Greedy-Boost for the δ lower bound, computes per-node reachable
/// probability ranges (the paper's refinement — without it the tables are
/// infeasible), fills the rounded tables bottom-up with the Appendix-B
/// helper recurrences, and reconstructs the boost set top-down.
DpBoostResult DpBoost(const BidirectedTree& tree,
                      const DpBoostOptions& options);

}  // namespace kboost

#endif  // KBOOST_TREE_DP_BOOST_H_
