#ifndef KBOOST_TREE_TREE_EVALUATOR_H_
#define KBOOST_TREE_TREE_EVALUATOR_H_

#include <vector>

#include "src/tree/bidirected_tree.h"

namespace kboost {

/// Exact boosted-influence computation on bidirected trees (Sec. VI-A):
/// activation probabilities ap_B(u), ap_B(u\v), seed gains g_B(u\v), the
/// boosted spread σ_S(B), and σ_S(B ∪ {u}) for every u — all in O(n) per
/// Compute() call.
///
/// The implementation reroots the paper's recurrences (Lemmas 5–7) at node
/// 0 and evaluates them with prefix/suffix neighbour aggregates instead of
/// the division identities (9)/(11); this is algebraically identical but
/// stays finite when ap·p approaches 1.
class TreeBoostEvaluator {
 public:
  explicit TreeBoostEvaluator(const BidirectedTree& tree);

  /// Recomputes all quantities for the boost set B (n-sized bitmap).
  void Compute(const std::vector<uint8_t>& boost_bitmap);

  /// σ_S(B) after Compute().
  double boosted_spread() const { return sigma_; }
  /// Δ_S(B) = σ_S(B) − σ_S(∅) after Compute().
  double boost() const { return sigma_ - base_sigma_; }
  /// ap_B(u) after Compute().
  double ActivationProbability(NodeId u) const { return ap_[u]; }
  /// σ_S(B ∪ {u}) after Compute(); equals σ_S(B) for u ∈ S ∪ B.
  double SpreadWithExtraBoost(NodeId u) const { return sigma_plus_[u]; }

  /// σ_S(∅), computed once at construction.
  double base_spread() const { return base_sigma_; }
  /// ap_∅(u) for all u (used by DP-Boost), computed at construction.
  const std::vector<double>& base_activation() const { return base_ap_; }

 private:
  /// One rerooting evaluation; fills down_/up_/ap_/gdown_/gup_/sigma_.
  void RunPasses(const std::vector<uint8_t>& boosted);

  /// p(w -> u) under B, where `he` is u's adjacency entry for w.
  double PIn(const BidirectedTree::HalfEdge& he, bool u_boosted) const {
    return u_boosted ? he.pb_in : he.p_in;
  }
  /// p(u -> w) under B, where `he` is u's adjacency entry for w.
  double POut(const BidirectedTree::HalfEdge& he, bool w_boosted) const {
    return w_boosted ? he.pb_out : he.p_out;
  }

  const BidirectedTree& tree_;
  // Rooted orientation (root = 0).
  std::vector<NodeId> parent_;
  std::vector<NodeId> order_;  // pre-order: parents before children

  // Per-Compute state.
  std::vector<double> down_;   // ap_B(u\parent)
  std::vector<double> up_;     // ap_B(parent\u)
  std::vector<double> ap_;     // ap_B(u)
  std::vector<double> gdown_;  // g_B(u\parent)
  std::vector<double> gup_;    // g_B(parent\u)
  std::vector<double> sigma_plus_;  // σ_S(B ∪ {u})
  double sigma_ = 0.0;

  double base_sigma_ = 0.0;
  std::vector<double> base_ap_;

  // Reusable neighbour-sized scratch.
  std::vector<double> factor_, prefix_, suffix_, terms_;
  std::vector<double> bfactor_, bprefix_, bsuffix_;
};

/// Result of the greedy tree algorithm.
struct GreedyBoostResult {
  std::vector<NodeId> boost_set;
  double boosted_spread = 0.0;          ///< σ_S(B)
  double boost = 0.0;                   ///< Δ_S(B)
  std::vector<double> marginal_boosts;  ///< per-pick Δ increments
};

/// Greedy-Boost (Sec. VI-A): k rounds, each picking the node maximizing
/// σ_S(B ∪ {u}) via the exact evaluator. O(kn). Stops early when no pick
/// strictly improves the spread.
GreedyBoostResult GreedyBoost(const BidirectedTree& tree, size_t k);

}  // namespace kboost

#endif  // KBOOST_TREE_TREE_EVALUATOR_H_
