#ifndef KBOOST_TREE_PATH_PRODUCTS_H_
#define KBOOST_TREE_PATH_PRODUCTS_H_

#include <cstddef>

#include "src/tree/bidirected_tree.h"

namespace kboost {

/// Σ_{u≠v} p^(k)(u→v), where p^(k)(u→v) is the probability that u
/// influences v along the unique tree path when the k path edges with the
/// largest boost ratio p'/p are boosted. This is the denominator of
/// DP-Boost's rounding parameter δ (Sec. VI-B, Eq. 13).
///
/// Implemented as one DFS per source with an incremental top-k-ratio
/// multiset, O(n² log n) overall.
double SumTopKBoostedPathProducts(const BidirectedTree& tree, size_t k);

}  // namespace kboost

#endif  // KBOOST_TREE_PATH_PRODUCTS_H_
