#include "src/tree/bidirected_tree.h"

#include <algorithm>

#include "src/graph/graph_builder.h"
#include "src/util/logging.h"

namespace kboost {

DirectedGraph BidirectedTree::ToDirectedGraph() const {
  GraphBuilder builder(static_cast<NodeId>(num_nodes()));
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const HalfEdge& e : adjacency_[u]) {
      // Emit each directed edge once (from the smaller endpoint's entry we
      // would emit both directions twice, so emit only u -> neighbor here).
      builder.AddEdge(u, e.neighbor, e.p_out, e.pb_out);
    }
  }
  return std::move(builder).Build();
}

TreeBuilder::TreeBuilder(NodeId num_nodes)
    : num_nodes_(num_nodes), is_seed_(num_nodes, 0) {
  KB_CHECK(num_nodes >= 1);
}

TreeBuilder& TreeBuilder::AddEdge(NodeId u, NodeId v, double p_uv,
                                  double pb_uv, double p_vu, double pb_vu) {
  KB_CHECK(u < num_nodes_ && v < num_nodes_ && u != v)
      << "edge {" << u << "," << v << "}";
  KB_CHECK(p_uv >= 0 && p_uv <= pb_uv && pb_uv <= 1.0);
  KB_CHECK(p_vu >= 0 && p_vu <= pb_vu && pb_vu <= 1.0);
  edges_.push_back(PendingEdge{u, v, static_cast<float>(p_uv),
                               static_cast<float>(pb_uv),
                               static_cast<float>(p_vu),
                               static_cast<float>(pb_vu)});
  return *this;
}

TreeBuilder& TreeBuilder::SetSeed(NodeId v) {
  KB_CHECK(v < num_nodes_);
  is_seed_[v] = 1;
  return *this;
}

TreeBuilder& TreeBuilder::SetSeeds(const std::vector<NodeId>& seeds) {
  for (NodeId s : seeds) SetSeed(s);
  return *this;
}

BidirectedTree TreeBuilder::Build() && {
  KB_CHECK(edges_.size() + 1 == num_nodes_)
      << "a tree on " << num_nodes_ << " nodes needs " << num_nodes_ - 1
      << " edges, got " << edges_.size();

  BidirectedTree tree;
  tree.adjacency_.resize(num_nodes_);
  for (const PendingEdge& e : edges_) {
    tree.adjacency_[e.u].push_back(
        BidirectedTree::HalfEdge{e.v, e.p_uv, e.pb_uv, e.p_vu, e.pb_vu});
    tree.adjacency_[e.v].push_back(
        BidirectedTree::HalfEdge{e.u, e.p_vu, e.pb_vu, e.p_uv, e.pb_uv});
  }

  // Connectivity check (n-1 edges + connected ⇒ tree).
  std::vector<uint8_t> seen(num_nodes_, 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  size_t visited = 1;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    for (const BidirectedTree::HalfEdge& e : tree.adjacency_[u]) {
      if (!seen[e.neighbor]) {
        seen[e.neighbor] = 1;
        ++visited;
        stack.push_back(e.neighbor);
      }
    }
  }
  KB_CHECK(visited == num_nodes_) << "edge set is not connected";

  tree.is_seed_ = std::move(is_seed_);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (tree.is_seed_[v]) tree.seeds_.push_back(v);
  }
  return tree;
}

}  // namespace kboost
