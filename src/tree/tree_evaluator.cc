#include "src/tree/tree_evaluator.h"

#include <algorithm>

#include "src/util/logging.h"

namespace kboost {

namespace {
/// Conditional-probability denominators (1 - ap·p) are provably positive
/// under the paper's assumption that non-seeds activate with probability
/// < 1; the clamp keeps the evaluator finite if a caller violates it.
constexpr double kMinDenominator = 1e-15;

double SafeDiv(double num, double den) {
  return num / std::max(den, kMinDenominator);
}
}  // namespace

TreeBoostEvaluator::TreeBoostEvaluator(const BidirectedTree& tree)
    : tree_(tree) {
  const size_t n = tree_.num_nodes();
  parent_.assign(n, kInvalidNode);
  order_.reserve(n);
  order_.push_back(0);
  // Iterative BFS gives a pre-order (parents before children) without the
  // stack-depth risk of recursion on path-shaped trees.
  for (size_t head = 0; head < order_.size(); ++head) {
    NodeId u = order_[head];
    for (const BidirectedTree::HalfEdge& e : tree_.Neighbors(u)) {
      if (e.neighbor == parent_[u]) continue;
      if (parent_[e.neighbor] == kInvalidNode && e.neighbor != 0) {
        parent_[e.neighbor] = u;
        order_.push_back(e.neighbor);
      }
    }
  }
  KB_CHECK(order_.size() == n) << "tree is not connected";

  down_.resize(n);
  up_.resize(n);
  ap_.resize(n);
  gdown_.resize(n);
  gup_.resize(n);
  sigma_plus_.resize(n);

  // Cache the no-boost baseline.
  std::vector<uint8_t> empty(n, 0);
  Compute(empty);
  base_sigma_ = sigma_;
  base_ap_ = ap_;
}

void TreeBoostEvaluator::RunPasses(const std::vector<uint8_t>& boosted) {
  const size_t n = tree_.num_nodes();

  // ---- Pass A (leaves → root): down = ap_B(u\parent), gdown = g_B(u\parent)
  for (size_t i = n; i-- > 0;) {
    const NodeId u = order_[i];
    const bool u_boosted = boosted[u] != 0;
    if (tree_.IsSeed(u)) {
      down_[u] = 1.0;
      gdown_[u] = 0.0;
      continue;
    }
    double prod = 1.0;
    double gsum = 0.0;
    for (const BidirectedTree::HalfEdge& e : tree_.Neighbors(u)) {
      const NodeId w = e.neighbor;
      if (w == parent_[u]) continue;
      const double a = down_[w];                // ap_B(w\u), w is a child
      const double f = 1.0 - a * PIn(e, u_boosted);
      prod *= f;
      gsum += SafeDiv(POut(e, boosted[w] != 0) * gdown_[w], f);
    }
    down_[u] = 1.0 - prod;
    gdown_[u] = (1.0 - down_[u]) * (1.0 + gsum);  // Eq. (10) with v = parent
  }

  // ---- Pass B (root → leaves): ap, up, gup --------------------------------
  for (const NodeId u : order_) {
    const bool u_boosted = boosted[u] != 0;
    const size_t deg = tree_.Degree(u);
    factor_.resize(deg);
    terms_.resize(deg);
    prefix_.resize(deg + 1);
    suffix_.resize(deg + 1);

    const auto neighbors = tree_.Neighbors(u);
    for (size_t j = 0; j < deg; ++j) {
      const BidirectedTree::HalfEdge& e = neighbors[j];
      const NodeId w = e.neighbor;
      // ap_B(w\u): the parent contributes up_[u], children contribute down_.
      const double a = (w == parent_[u]) ? up_[u] : down_[w];
      const double g = (w == parent_[u]) ? gup_[u] : gdown_[w];
      factor_[j] = 1.0 - a * PIn(e, u_boosted);
      terms_[j] = SafeDiv(POut(e, boosted[w] != 0) * g, factor_[j]);
    }
    prefix_[0] = 1.0;
    for (size_t j = 0; j < deg; ++j) prefix_[j + 1] = prefix_[j] * factor_[j];
    suffix_[deg] = 1.0;
    for (size_t j = deg; j-- > 0;) suffix_[j] = suffix_[j + 1] * factor_[j];
    double tsum = 0.0;
    for (size_t j = 0; j < deg; ++j) tsum += terms_[j];

    ap_[u] = tree_.IsSeed(u) ? 1.0 : 1.0 - prefix_[deg];

    // Fill up_/gup_ for each child (they read it later in this pass).
    for (size_t j = 0; j < deg; ++j) {
      const NodeId c = neighbors[j].neighbor;
      if (c == parent_[u]) continue;
      if (tree_.IsSeed(u)) {
        up_[c] = 1.0;
        gup_[c] = 0.0;
      } else {
        const double ap_u_minus_c = 1.0 - prefix_[j] * suffix_[j + 1];
        up_[c] = ap_u_minus_c;
        gup_[c] = (1.0 - ap_u_minus_c) * (1.0 + tsum - terms_[j]);
      }
    }
  }

  sigma_ = 0.0;
  for (size_t v = 0; v < n; ++v) sigma_ += ap_[v];
}

void TreeBoostEvaluator::Compute(const std::vector<uint8_t>& boost_bitmap) {
  const size_t n = tree_.num_nodes();
  KB_CHECK(boost_bitmap.size() == n);
  RunPasses(boost_bitmap);

  // ---- Pass C: σ_S(B ∪ {u}) for every u (Lemma 7) -------------------------
  for (NodeId u = 0; u < n; ++u) {
    if (tree_.IsSeed(u) || boost_bitmap[u]) {
      sigma_plus_[u] = sigma_;
      continue;
    }
    const size_t deg = tree_.Degree(u);
    const auto neighbors = tree_.Neighbors(u);
    factor_.resize(deg);
    bfactor_.resize(deg);
    prefix_.resize(deg + 1);
    suffix_.resize(deg + 1);
    bprefix_.resize(deg + 1);
    bsuffix_.resize(deg + 1);

    for (size_t j = 0; j < deg; ++j) {
      const BidirectedTree::HalfEdge& e = neighbors[j];
      const NodeId w = e.neighbor;
      const double a = (w == parent_[u]) ? up_[u] : down_[w];
      factor_[j] = 1.0 - a * PIn(e, boost_bitmap[u] != 0);
      bfactor_[j] = 1.0 - a * e.pb_in;  // u boosted: incoming edges use p'
    }
    prefix_[0] = bprefix_[0] = 1.0;
    for (size_t j = 0; j < deg; ++j) {
      prefix_[j + 1] = prefix_[j] * factor_[j];
      bprefix_[j + 1] = bprefix_[j] * bfactor_[j];
    }
    suffix_[deg] = bsuffix_[deg] = 1.0;
    for (size_t j = deg; j-- > 0;) {
      suffix_[j] = suffix_[j + 1] * factor_[j];
      bsuffix_[j] = bsuffix_[j + 1] * bfactor_[j];
    }

    // Δap_B(u) = ap_{B∪{u}}(u) − ap_B(u).
    const double delta_ap = (1.0 - bprefix_[deg]) - (1.0 - prefix_[deg]);
    double spread = sigma_ + delta_ap;
    for (size_t j = 0; j < deg; ++j) {
      const BidirectedTree::HalfEdge& e = neighbors[j];
      const NodeId w = e.neighbor;
      // Δap_B(u\w): same exclusion products with boosted incoming edges.
      const double ap_excl = 1.0 - prefix_[j] * suffix_[j + 1];
      const double ap_excl_boosted = 1.0 - bprefix_[j] * bsuffix_[j + 1];
      const double delta_excl = ap_excl_boosted - ap_excl;
      const double g = (w == parent_[u]) ? gup_[u] : gdown_[w];
      spread += POut(e, boost_bitmap[w] != 0) * delta_excl * g;
    }
    sigma_plus_[u] = spread;
  }
}

GreedyBoostResult GreedyBoost(const BidirectedTree& tree, size_t k) {
  const size_t n = tree.num_nodes();
  TreeBoostEvaluator evaluator(tree);
  std::vector<uint8_t> boosted(n, 0);

  GreedyBoostResult result;
  double current = evaluator.base_spread();
  for (size_t round = 0; round < k; ++round) {
    evaluator.Compute(boosted);
    NodeId best = kInvalidNode;
    double best_spread = current;
    for (NodeId u = 0; u < n; ++u) {
      if (boosted[u] || tree.IsSeed(u)) continue;
      const double s = evaluator.SpreadWithExtraBoost(u);
      if (s > best_spread + 1e-15) {
        best_spread = s;
        best = u;
      }
    }
    if (best == kInvalidNode) break;  // no strict improvement left
    boosted[best] = 1;
    result.boost_set.push_back(best);
    result.marginal_boosts.push_back(best_spread - current);
    current = best_spread;
  }
  result.boosted_spread = current;
  result.boost = current - evaluator.base_spread();
  return result;
}

}  // namespace kboost
