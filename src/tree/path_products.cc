#include "src/tree/path_products.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/util/logging.h"

namespace kboost {

namespace {

/// Maintains the sum of the k largest log-ratios on the current DFS path.
class TopKLogSum {
 public:
  explicit TopKLogSum(size_t k) : k_(k) {}

  void Push(double lr) {
    if (k_ == 0) return;
    if (top_.size() < k_) {
      top_.insert(lr);
      sum_ += lr;
    } else if (lr > *top_.begin()) {
      double evicted = *top_.begin();
      top_.erase(top_.begin());
      sum_ -= evicted;
      rest_.insert(evicted);
      top_.insert(lr);
      sum_ += lr;
    } else {
      rest_.insert(lr);
    }
  }

  void Pop(double lr) {
    if (k_ == 0) return;
    auto it = top_.find(lr);
    if (it != top_.end()) {
      top_.erase(it);
      sum_ -= lr;
      if (!rest_.empty()) {
        auto best = std::prev(rest_.end());
        top_.insert(*best);
        sum_ += *best;
        rest_.erase(best);
      }
    } else {
      auto rit = rest_.find(lr);
      KB_DCHECK(rit != rest_.end());
      rest_.erase(rit);
    }
  }

  double sum() const { return sum_; }

 private:
  size_t k_;
  std::multiset<double> top_;   // the k largest
  std::multiset<double> rest_;  // everything else
  double sum_ = 0.0;
};

}  // namespace

double SumTopKBoostedPathProducts(const BidirectedTree& tree, size_t k) {
  const size_t n = tree.num_nodes();
  double total = 0.0;

  // Iterative DFS from every source; the stack holds (node, parent, phase)
  // where phase enumerates the neighbour index to expand next.
  struct Frame {
    NodeId node;
    NodeId parent;
    size_t next;
  };
  std::vector<Frame> stack;

  for (NodeId src = 0; src < n; ++src) {
    TopKLogSum topk(k);
    double log_base = 0.0;
    stack.clear();
    stack.push_back(Frame{src, kInvalidNode, 0});

    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto neighbors = tree.Neighbors(f.node);
      if (f.next >= neighbors.size()) {
        // Retreat: undo the edge into f.node (if any).
        if (f.parent != kInvalidNode) {
          // Find the edge parent -> node to undo its contribution.
          for (const BidirectedTree::HalfEdge& e : tree.Neighbors(f.parent)) {
            if (e.neighbor == f.node) {
              const double p = std::max<double>(e.p_out, 1e-300);
              const double lr =
                  std::log(std::max<double>(e.pb_out, 1e-300)) - std::log(p);
              log_base -= std::log(p);
              topk.Pop(std::max(lr, 0.0));
              break;
            }
          }
        }
        stack.pop_back();
        continue;
      }
      const BidirectedTree::HalfEdge& e = neighbors[f.next++];
      if (e.neighbor == f.parent) continue;
      // Advance along f.node -> e.neighbor.
      const double p = std::max<double>(e.p_out, 1e-300);
      const double lr =
          std::log(std::max<double>(e.pb_out, 1e-300)) - std::log(p);
      log_base += std::log(p);
      topk.Push(std::max(lr, 0.0));
      total += std::exp(log_base + topk.sum());
      stack.push_back(Frame{e.neighbor, f.node, 0});
    }
  }
  return total;
}

}  // namespace kboost
