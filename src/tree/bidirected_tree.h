#ifndef KBOOST_TREE_BIDIRECTED_TREE_H_
#define KBOOST_TREE_BIDIRECTED_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"

namespace kboost {

/// An immutable bidirected tree (Sec. VI): an undirected tree where every
/// adjacent pair is connected by two directed edges, each with its own
/// (p, p') probabilities, plus a fixed seed set. Node ids are [0, n).
class BidirectedTree {
 public:
  /// One adjacency entry of node u: the neighbour v with the probabilities
  /// of both directed edges between them.
  struct HalfEdge {
    NodeId neighbor;
    float p_out;   ///< p(u -> neighbor)
    float pb_out;  ///< p'(u -> neighbor)
    float p_in;    ///< p(neighbor -> u)
    float pb_in;   ///< p'(neighbor -> u)
  };

  BidirectedTree() = default;

  size_t num_nodes() const { return adjacency_.size(); }
  std::span<const HalfEdge> Neighbors(NodeId u) const {
    return adjacency_[u];
  }
  size_t Degree(NodeId u) const { return adjacency_[u].size(); }

  bool IsSeed(NodeId v) const { return is_seed_[v] != 0; }
  const std::vector<NodeId>& seeds() const { return seeds_; }
  const std::vector<uint8_t>& seed_bitmap() const { return is_seed_; }

  /// Converts to a general DirectedGraph (2(n-1) directed edges) so the
  /// Monte-Carlo simulators can cross-check the exact tree computations.
  DirectedGraph ToDirectedGraph() const;

 private:
  friend class TreeBuilder;

  std::vector<std::vector<HalfEdge>> adjacency_;
  std::vector<uint8_t> is_seed_;
  std::vector<NodeId> seeds_;
};

/// Accumulates undirected edges + seeds, validates tree-ness, and freezes
/// into a BidirectedTree.
class TreeBuilder {
 public:
  explicit TreeBuilder(NodeId num_nodes);

  /// Adds the undirected edge {u, v} with per-direction probabilities.
  /// Requires 0 <= p <= p' <= 1 for both directions.
  TreeBuilder& AddEdge(NodeId u, NodeId v, double p_uv, double pb_uv,
                       double p_vu, double pb_vu);
  /// Symmetric probabilities on both directions.
  TreeBuilder& AddEdge(NodeId u, NodeId v, double p, double pb) {
    return AddEdge(u, v, p, pb, p, pb);
  }

  TreeBuilder& SetSeed(NodeId v);
  TreeBuilder& SetSeeds(const std::vector<NodeId>& seeds);

  /// Validates (n-1 edges, connected, no duplicates) and builds.
  /// Aborts on structural violations — trees are constructed by code, not
  /// parsed from untrusted input.
  BidirectedTree Build() &&;

 private:
  NodeId num_nodes_;
  struct PendingEdge {
    NodeId u, v;
    float p_uv, pb_uv, p_vu, pb_vu;
  };
  std::vector<PendingEdge> edges_;
  std::vector<uint8_t> is_seed_;
};

}  // namespace kboost

#endif  // KBOOST_TREE_BIDIRECTED_TREE_H_
