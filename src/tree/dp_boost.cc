#include "src/tree/dp_boost.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/tree/path_products.h"
#include "src/tree/tree_evaluator.h"
#include "src/util/logging.h"

namespace kboost {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// A δ-grid over [0, 1] whose top index represents exactly 1 (the paper
/// treats 1 as a rounded value — seeds have c ≡ 1, seed children f ≡ 1).
struct Grid {
  double delta = 1.0;
  int ione = 1;  // index whose value is exactly 1.0

  explicit Grid(double d) : delta(d) {
    KB_CHECK(d > 0.0);
    ione = static_cast<int>(std::ceil(1.0 / d - 1e-9));
    if (ione < 1) ione = 1;
  }

  double Value(int i) const { return i >= ione ? 1.0 : i * delta; }
  /// ⌊x⌋ onto the grid (x in [0,1]; 1 maps to the exact-one index).
  int RoundDown(double x) const {
    if (x >= 1.0 - 1e-12) return ione;
    int i = static_cast<int>(std::floor(x / delta + 1e-9));
    return std::min(std::max(i, 0), ione);
  }
};

/// g'(v, κ, c, f) over the node's reachable index ranges. Values are "at
/// most κ" (monotone in κ); lookups clamp κ to the stored cap and return
/// -inf outside the (c, f) ranges.
struct NodeTable {
  int kcap = 0;
  int c_lo = 0, c_cnt = 1;
  int f_lo = 0, f_cnt = 1;
  bool f_any = false;  // seed tables ignore f
  std::vector<double> val;
  std::vector<uint8_t> choice_b;  // winning boost flag per cell
  std::vector<int> choice_c;      // winning child-c index (d == 1 only)

  void Allocate(bool with_choice_c) {
    const size_t cells =
        static_cast<size_t>(kcap + 1) * c_cnt * f_cnt;
    val.assign(cells, kNegInf);
    choice_b.assign(cells, 0);
    if (with_choice_c) choice_c.assign(cells, -1);
  }

  size_t CellIndex(int kappa, int ci, int fi) const {
    return (static_cast<size_t>(kappa) * c_cnt + (ci - c_lo)) * f_cnt +
           (fi - f_lo);
  }

  bool InRange(int ci, int fi) const {
    if (ci < c_lo || ci >= c_lo + c_cnt) return false;
    if (f_any) return true;
    return fi >= f_lo && fi < f_lo + f_cnt;
  }

  double Get(int kappa, int ci, int fi) const {
    if (kappa < 0) return kNegInf;
    if (!InRange(ci, fi)) return kNegInf;
    if (f_any) fi = f_lo;
    kappa = std::min(kappa, kcap);
    return val[CellIndex(kappa, ci, fi)];
  }

  void Update(int kappa, int ci, int fi, double value, uint8_t b,
              int c_child = -1) {
    if (value == kNegInf) return;
    KB_DCHECK(kappa >= 0 && kappa <= kcap);
    KB_DCHECK(InRange(ci, fi));
    const size_t cell = CellIndex(kappa, ci, f_any ? f_lo : fi);
    if (value > val[cell]) {
      val[cell] = value;
      choice_b[cell] = b;
      if (!choice_c.empty()) choice_c[cell] = c_child;
    }
  }

  /// Makes values monotone nondecreasing in κ, copying choices along.
  void MonotonizeKappa() {
    for (int kappa = 1; kappa <= kcap; ++kappa) {
      for (int ci = c_lo; ci < c_lo + c_cnt; ++ci) {
        for (int fi = f_lo; fi < f_lo + f_cnt; ++fi) {
          const size_t cur = CellIndex(kappa, ci, fi);
          const size_t prev = CellIndex(kappa - 1, ci, fi);
          if (val[prev] > val[cur]) {
            val[cur] = val[prev];
            choice_b[cur] = choice_b[prev];
            if (!choice_c.empty()) choice_c[cur] = choice_c[prev];
          }
        }
      }
    }
  }
};

/// Helper table h(b, i, κ, x_i, z_i) for one (node, b) pair and one child
/// position i. Also records per-cell choices for reconstruction.
struct HelperStage {
  int kcap = 0;
  int x_lo = 0, x_cnt = 1;
  int z_lo = 0, z_cnt = 1;
  std::vector<double> val;
  // Choice per cell: child's (κ_vi, c index) and previous stage's (x, z).
  struct Choice {
    int kappa_child = -1;
    int c_child = -1;
    int x_prev = -1;
    int z_prev = -1;
  };
  std::vector<Choice> choice;

  void Allocate() {
    const size_t cells = static_cast<size_t>(kcap + 1) * x_cnt * z_cnt;
    val.assign(cells, kNegInf);
    choice.assign(cells, Choice{});
  }

  size_t CellIndex(int kappa, int xi, int zi) const {
    return (static_cast<size_t>(kappa) * x_cnt + (xi - x_lo)) * z_cnt +
           (zi - z_lo);
  }
  bool InRange(int xi, int zi) const {
    return xi >= x_lo && xi < x_lo + x_cnt && zi >= z_lo && zi < z_lo + z_cnt;
  }
  double Get(int kappa, int xi, int zi) const {
    if (kappa < 0 || kappa > kcap || !InRange(xi, zi)) return kNegInf;
    return val[CellIndex(kappa, xi, zi)];
  }
  void Update(int kappa, int xi, int zi, double value, const Choice& ch) {
    if (value == kNegInf) return;
    if (kappa < 0 || kappa > kcap) return;
    KB_DCHECK(InRange(xi, zi));
    const size_t cell = CellIndex(kappa, xi, zi);
    if (value > val[cell]) {
      val[cell] = value;
      choice[cell] = ch;
    }
  }
  void MonotonizeKappa() {
    for (int kappa = 1; kappa <= kcap; ++kappa) {
      for (int xi = x_lo; xi < x_lo + x_cnt; ++xi) {
        for (int zi = z_lo; zi < z_lo + z_cnt; ++zi) {
          const size_t cur = CellIndex(kappa, xi, zi);
          const size_t prev = CellIndex(kappa - 1, xi, zi);
          if (val[prev] > val[cur]) {
            val[cur] = val[prev];
            choice[cur] = choice[prev];
          }
        }
      }
    }
  }
};

/// Seed-node helper h(i, κ) (Algorithm 5) with reconstruction choices.
struct SeedStage {
  int kcap = 0;
  std::vector<double> val;
  struct Choice {
    int kappa_child = -1;
    int c_child = -1;
  };
  std::vector<Choice> choice;
  void Allocate() {
    val.assign(kcap + 1, kNegInf);
    choice.assign(kcap + 1, Choice{});
  }
};

class DpBoostSolver {
 public:
  DpBoostSolver(const BidirectedTree& tree, const DpBoostOptions& options)
      : tree_(tree), options_(options), base_(1.0) {}

  DpBoostResult Solve();

 private:
  // ---- structure ----
  void RootTree();
  void ComputeRanges();

  // ---- probabilities ----
  /// p(child -> parent(child)) with boost flag b on the parent.
  double UpP(NodeId child, bool b) const {
    return b ? up_pb_[child] : up_p_[child];
  }
  /// p(parent(v) -> v) with boost flag b on v. Root: virtual parent, 0.
  double DownP(NodeId v, bool b) const {
    return b ? down_pb_[v] : down_p_[v];
  }

  /// The per-node boost term max(1−(1−c)(1−f·p^b_{u,v}) − ap_∅(v), 0).
  double BoostTerm(NodeId v, double c_val, double f_val, bool b) const {
    const double act = 1.0 - (1.0 - c_val) * (1.0 - f_val * DownP(v, b));
    return std::max(act - ap0_[v], 0.0);
  }

  // ---- table filling ----
  void FillNode(NodeId v);
  void FillLeaf(NodeId v);
  void FillSeed(NodeId v, SeedStage* stages_out);  // stages_out may be null
  void FillChain(NodeId v);  // d == 1 non-seed
  /// d >= 2 non-seed. When `record` is non-null the helper stages for both
  /// b values are emitted there (reconstruction); otherwise they are
  /// transient.
  void FillWide(NodeId v, std::vector<HelperStage>* record_b0,
                std::vector<HelperStage>* record_b1);

  // ---- reconstruction ----
  void Reconstruct(NodeId v, int kappa, int ci, int fi,
                   std::vector<NodeId>* boost_set);

  const BidirectedTree& tree_;
  DpBoostOptions options_;
  Grid base_;

  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<NodeId> order_;  // pre-order
  std::vector<int> subtree_;
  std::vector<double> up_p_, up_pb_;      // v -> parent(v)
  std::vector<double> down_p_, down_pb_;  // parent(v) -> v
  std::vector<double> ap0_;

  std::vector<int> c_lo_, c_hi_, f_lo_, f_hi_;  // reachable index ranges
  std::vector<NodeTable> tables_;
  size_t total_cells_ = 0;

  double greedy_lb_ = 0.0;
};

void DpBoostSolver::RootTree() {
  const size_t n = tree_.num_nodes();
  parent_.assign(n, kInvalidNode);
  children_.assign(n, {});
  order_.clear();
  order_.reserve(n);
  order_.push_back(options_.root);
  for (size_t head = 0; head < order_.size(); ++head) {
    const NodeId u = order_[head];
    for (const BidirectedTree::HalfEdge& e : tree_.Neighbors(u)) {
      if (e.neighbor == parent_[u]) continue;
      parent_[e.neighbor] = u;
      children_[u].push_back(e.neighbor);
      order_.push_back(e.neighbor);
    }
  }
  KB_CHECK(order_.size() == n);

  subtree_.assign(n, 1);
  for (size_t i = n; i-- > 0;) {
    const NodeId u = order_[i];
    for (NodeId c : children_[u]) subtree_[u] += subtree_[c];
  }

  up_p_.assign(n, 0.0);
  up_pb_.assign(n, 0.0);
  down_p_.assign(n, 0.0);
  down_pb_.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (parent_[v] == kInvalidNode) continue;  // root: virtual 0-prob parent
    for (const BidirectedTree::HalfEdge& e : tree_.Neighbors(v)) {
      if (e.neighbor != parent_[v]) continue;
      up_p_[v] = e.p_out;    // v -> parent
      up_pb_[v] = e.pb_out;
      down_p_[v] = e.p_in;   // parent -> v
      down_pb_[v] = e.pb_in;
      break;
    }
  }
}

void DpBoostSolver::ComputeRanges() {
  const size_t n = tree_.num_nodes();
  c_lo_.assign(n, 0);
  c_hi_.assign(n, 0);
  f_lo_.assign(n, 0);
  f_hi_.assign(n, 0);

  // c ranges, leaves -> root, mirroring the x-chain of Definition 5.
  for (size_t i = n; i-- > 0;) {
    const NodeId v = order_[i];
    if (tree_.IsSeed(v)) {
      c_lo_[v] = c_hi_[v] = base_.ione;
      continue;
    }
    if (children_[v].empty()) {
      c_lo_[v] = c_hi_[v] = 0;
      continue;
    }
    const int d = static_cast<int>(children_[v].size());
    const Grid mid(d > 2 ? base_.delta / (d - 2) : base_.delta);
    double lo = 0.0, hi = 0.0;
    for (int i2 = 0; i2 < d; ++i2) {
      const NodeId c = children_[v][i2];
      lo = 1.0 - (1.0 - lo) * (1.0 - base_.Value(c_lo_[c]) * UpP(c, false));
      hi = 1.0 - (1.0 - hi) * (1.0 - base_.Value(c_hi_[c]) * UpP(c, true));
      if (i2 + 1 > 1 && i2 + 1 < d) {  // intermediate rounding δ_v(i)
        lo = mid.Value(mid.RoundDown(lo));
        hi = mid.Value(mid.RoundDown(hi));
      }
    }
    c_lo_[v] = base_.RoundDown(lo);
    c_hi_[v] = base_.RoundDown(hi);
    // Safety margin against FP drift between bounds and transitions.
    c_lo_[v] = std::max(0, c_lo_[v] - 1);
    c_hi_[v] = std::min(base_.ione, c_hi_[v] + 1);
  }

  // f ranges, root -> leaves, mirroring the y-chain.
  for (const NodeId v : order_) {
    if (parent_[v] == kInvalidNode) {
      f_lo_[v] = f_hi_[v] = 0;  // virtual parent influences with prob 0
      continue;
    }
    const NodeId u = parent_[v];
    if (tree_.IsSeed(u)) {
      f_lo_[v] = f_hi_[v] = base_.ione;
      continue;
    }
    const int d = static_cast<int>(children_[u].size());
    const Grid mid(d > 2 ? base_.delta / (d - 2) : base_.delta);
    // position of v among u's children
    int pos = 0;
    while (children_[u][pos] != v) ++pos;
    // y-chain from the parent side down to position pos+1.
    double ylo = base_.Value(f_lo_[u]) * DownP(u, false);
    double yhi = base_.Value(f_hi_[u]) * DownP(u, true);
    for (int j = d - 1; j > pos; --j) {
      const NodeId w = children_[u][j];
      ylo = 1.0 - (1.0 - ylo) * (1.0 - base_.Value(c_lo_[w]) * UpP(w, false));
      yhi = 1.0 - (1.0 - yhi) * (1.0 - base_.Value(c_hi_[w]) * UpP(w, true));
      if (j > 1 && j < d) {  // z_{j} intermediate rounding when stored
        ylo = mid.Value(mid.RoundDown(ylo));
        yhi = mid.Value(mid.RoundDown(yhi));
      }
    }
    // x-chain over children before pos.
    double xlo = 0.0, xhi = 0.0;
    for (int j = 0; j < pos; ++j) {
      const NodeId w = children_[u][j];
      xlo = 1.0 - (1.0 - xlo) * (1.0 - base_.Value(c_lo_[w]) * UpP(w, false));
      xhi = 1.0 - (1.0 - xhi) * (1.0 - base_.Value(c_hi_[w]) * UpP(w, true));
      if (j + 1 > 1 && j + 1 < d) {
        xlo = mid.Value(mid.RoundDown(xlo));
        xhi = mid.Value(mid.RoundDown(xhi));
      }
    }
    f_lo_[v] = base_.RoundDown(1.0 - (1.0 - xlo) * (1.0 - ylo));
    f_hi_[v] = base_.RoundDown(1.0 - (1.0 - xhi) * (1.0 - yhi));
    f_lo_[v] = std::max(0, f_lo_[v] - 1);
    f_hi_[v] = std::min(base_.ione, f_hi_[v] + 1);
  }
}

void DpBoostSolver::FillLeaf(NodeId v) {
  NodeTable& t = tables_[v];
  const bool seed = tree_.IsSeed(v);
  for (int fi = t.f_lo; fi < t.f_lo + t.f_cnt; ++fi) {
    const double f_val = base_.Value(fi);
    const int ci = seed ? base_.ione : 0;
    const double c_val = seed ? 1.0 : 0.0;
    const double v0 = BoostTerm(v, c_val, f_val, false);
    t.Update(0, ci, fi, v0, 0);
    if (t.kcap >= 1) {
      const double v1 = BoostTerm(v, c_val, f_val, true);
      // Prefer not boosting when it buys nothing (keeps B̃ minimal).
      if (v1 > v0) {
        t.Update(1, ci, fi, v1, 1);
      } else {
        t.Update(1, ci, fi, v0, 0);
      }
    }
  }
  t.MonotonizeKappa();
}

void DpBoostSolver::FillSeed(NodeId v, SeedStage* stages_out) {
  NodeTable& t = tables_[v];
  const auto& kids = children_[v];
  const int d = static_cast<int>(kids.size());

  // h(i, κ): best total over the first i subtrees with ≤ κ boosts there.
  std::vector<SeedStage> stages(d + 1);
  stages[0].kcap = 0;
  stages[0].Allocate();
  stages[0].val[0] = 0.0;
  int cap_prefix = 0;
  for (int i = 1; i <= d; ++i) {
    const NodeId c = kids[i - 1];
    const NodeTable& ct = tables_[c];
    cap_prefix = std::min<int>(options_.k, cap_prefix + ct.kcap);
    stages[i].kcap = cap_prefix;
    stages[i].Allocate();
    for (int kappa = 0; kappa <= stages[i].kcap; ++kappa) {
      for (int kc = 0; kc <= std::min(kappa, ct.kcap); ++kc) {
        const double prev = (kappa - kc <= stages[i - 1].kcap)
                                ? stages[i - 1].val[kappa - kc]
                                : stages[i - 1].val[stages[i - 1].kcap];
        if (prev == kNegInf) continue;
        // Children of a seed see f = 1.
        for (int ci = ct.c_lo; ci < ct.c_lo + ct.c_cnt; ++ci) {
          const double g = ct.Get(kc, ci, base_.ione);
          if (g == kNegInf) continue;
          const double cand = prev + g;
          if (cand > stages[i].val[kappa]) {
            stages[i].val[kappa] = cand;
            stages[i].choice[kappa] = SeedStage::Choice{kc, ci};
          }
        }
      }
    }
  }
  for (int kappa = 0; kappa <= t.kcap; ++kappa) {
    const int kk = std::min(kappa, stages[d].kcap);
    const double value = stages[d].val[kk];
    if (value == kNegInf) continue;
    for (int fi = t.f_lo; fi < t.f_lo + t.f_cnt; ++fi) {
      t.Update(kappa, base_.ione, fi, value, 0);
    }
  }
  t.MonotonizeKappa();
  if (stages_out != nullptr) {
    for (int i = 0; i <= d; ++i) stages_out[i] = std::move(stages[i]);
  }
}

void DpBoostSolver::FillChain(NodeId v) {
  NodeTable& t = tables_[v];
  const NodeId child = children_[v][0];
  const NodeTable& ct = tables_[child];

  for (int b = 0; b <= 1; ++b) {
    for (int fi = t.f_lo; fi < t.f_lo + t.f_cnt; ++fi) {
      const double f_val = base_.Value(fi);
      const int f_child = base_.RoundDown(f_val * DownP(v, b));
      for (int ci_child = ct.c_lo; ci_child < ct.c_lo + ct.c_cnt;
           ++ci_child) {
        const double c_child_val = base_.Value(ci_child);
        const int ci = base_.RoundDown(c_child_val * UpP(child, b));
        if (!t.InRange(ci, fi)) continue;
        const double c_val = base_.Value(ci);
        const double boost = BoostTerm(v, c_val, f_val, b);
        for (int kc = 0; kc <= std::min<int>(ct.kcap, t.kcap - b); ++kc) {
          const double g = ct.Get(kc, ci_child, f_child);
          if (g == kNegInf) continue;
          t.Update(kc + b, ci, fi, g + boost, static_cast<uint8_t>(b),
                   ci_child);
        }
      }
    }
  }
  t.MonotonizeKappa();
}

void DpBoostSolver::FillWide(NodeId v, std::vector<HelperStage>* record_b0,
                             std::vector<HelperStage>* record_b1) {
  NodeTable& t = tables_[v];
  const auto& kids = children_[v];
  const int d = static_cast<int>(kids.size());
  const Grid mid(d > 2 ? base_.delta / (d - 2) : base_.delta);

  for (int b = 0; b <= 1; ++b) {
    // ---- per-position grids and reachable ranges ----
    // x_i lives on grid_i (mid for 1<i<d, base for i==d);
    // z_i likewise (z_d is f on the base grid).
    std::vector<HelperStage> stages(d + 1);  // stages[2..d]
    std::vector<double> xlo(d + 1, 0.0), xhi(d + 1, 0.0);
    std::vector<double> zlo(d + 1, 0.0), zhi(d + 1, 0.0);
    auto grid_at = [&](int i) -> const Grid& {
      return (i == d) ? base_ : mid;
    };
    // x chains (values).
    {
      double lo = 0.0, hi = 0.0;
      for (int i = 1; i <= d; ++i) {
        const NodeId c = kids[i - 1];
        lo = 1.0 -
             (1.0 - lo) * (1.0 - base_.Value(c_lo_[c]) * UpP(c, false));
        hi = 1.0 - (1.0 - hi) * (1.0 - base_.Value(c_hi_[c]) * UpP(c, true));
        if (i > 1) {
          lo = grid_at(i).Value(grid_at(i).RoundDown(lo));
          hi = grid_at(i).Value(grid_at(i).RoundDown(hi));
        }
        xlo[i] = lo;
        xhi[i] = hi;
      }
    }
    // z chains (values), from i=d down to 2.
    {
      zlo[d] = base_.Value(f_lo_[v]);
      zhi[d] = base_.Value(f_hi_[v]);
      double ylo = zlo[d] * DownP(v, false);
      double yhi = zhi[d] * DownP(v, true);
      for (int i = d; i >= 3; --i) {
        const NodeId c = kids[i - 1];
        ylo = 1.0 -
              (1.0 - ylo) * (1.0 - base_.Value(c_lo_[c]) * UpP(c, false));
        yhi = 1.0 -
              (1.0 - yhi) * (1.0 - base_.Value(c_hi_[c]) * UpP(c, true));
        ylo = grid_at(i - 1).Value(grid_at(i - 1).RoundDown(ylo));
        yhi = grid_at(i - 1).Value(grid_at(i - 1).RoundDown(yhi));
        zlo[i - 1] = ylo;
        zhi[i - 1] = yhi;
      }
    }

    // Stage capacities and layouts.
    int cap_prefix = std::min<int>(
        options_.k, b + tables_[kids[0]].kcap + tables_[kids[1]].kcap);
    for (int i = 2; i <= d; ++i) {
      if (i > 2) {
        cap_prefix = std::min<int>(options_.k,
                                   cap_prefix + tables_[kids[i - 1]].kcap);
      }
      HelperStage& st = stages[i];
      st.kcap = std::min(cap_prefix, t.kcap);
      const Grid& g = grid_at(i);
      st.x_lo = std::max(0, g.RoundDown(xlo[i]) - 1);
      st.x_cnt = std::min(g.ione, g.RoundDown(xhi[i]) + 1) - st.x_lo + 1;
      st.z_lo = std::max(0, g.RoundDown(zlo[i]) - 1);
      st.z_cnt = std::min(g.ione, g.RoundDown(zhi[i]) + 1) - st.z_lo + 1;
      st.Allocate();
      total_cells_ += st.val.size();
    }

    const NodeId v1 = kids[0];
    const NodeId v2 = kids[1];
    const NodeTable& t1 = tables_[v1];
    const NodeTable& t2 = tables_[v2];

    // ---- boundary: i = 2 (Algorithm 7 lines 4-10) ----
    {
      HelperStage& st = stages[2];
      const Grid& g2 = grid_at(2);
      for (int zi = st.z_lo; zi < st.z_lo + st.z_cnt; ++zi) {
        const double z_val = g2.Value(zi);
        const double y2 = (d == 2) ? z_val * DownP(v, b != 0) : z_val;
        for (int c1 = t1.c_lo; c1 < t1.c_lo + t1.c_cnt; ++c1) {
          const double c1v = base_.Value(c1) * UpP(v1, b != 0);
          const int f2 = base_.RoundDown(1.0 - (1.0 - c1v) * (1.0 - y2));
          for (int c2 = t2.c_lo; c2 < t2.c_lo + t2.c_cnt; ++c2) {
            const double c2v = base_.Value(c2) * UpP(v2, b != 0);
            const int f1 = base_.RoundDown(1.0 - (1.0 - c2v) * (1.0 - y2));
            const int xi =
                g2.RoundDown(1.0 - (1.0 - c1v) * (1.0 - c2v));
            if (!st.InRange(xi, zi)) continue;
            for (int k1 = 0; k1 <= t1.kcap; ++k1) {
              const double g1v = t1.Get(k1, c1, f1);
              if (g1v == kNegInf) continue;
              const int k2max = std::min(t2.kcap, st.kcap - b - k1);
              for (int k2 = 0; k2 <= k2max; ++k2) {
                const double g2v = t2.Get(k2, c2, f2);
                if (g2v == kNegInf) continue;
                st.Update(k1 + k2 + b, xi, zi, g1v + g2v,
                          HelperStage::Choice{k2, c2, k1, c1});
              }
            }
          }
        }
      }
      st.MonotonizeKappa();
    }

    // ---- steps: i = 3..d (Algorithm 7 lines 11-18) ----
    for (int i = 3; i <= d; ++i) {
      HelperStage& prev = stages[i - 1];
      HelperStage& st = stages[i];
      const Grid& gi = grid_at(i);
      const Grid& gp = grid_at(i - 1);
      const NodeId vi = kids[i - 1];
      const NodeTable& ti = tables_[vi];
      for (int zi = st.z_lo; zi < st.z_lo + st.z_cnt; ++zi) {
        const double z_val = gi.Value(zi);
        const double yi = (i == d) ? z_val * DownP(v, b != 0) : z_val;
        for (int ci = ti.c_lo; ci < ti.c_lo + ti.c_cnt; ++ci) {
          const double civ = base_.Value(ci) * UpP(vi, b != 0);
          const int z_prev =
              gp.RoundDown(1.0 - (1.0 - civ) * (1.0 - yi));
          if (z_prev < prev.z_lo || z_prev >= prev.z_lo + prev.z_cnt) {
            continue;
          }
          for (int xp = prev.x_lo; xp < prev.x_lo + prev.x_cnt; ++xp) {
            const double xp_val = gp.Value(xp);
            const int xi_new =
                gi.RoundDown(1.0 - (1.0 - xp_val) * (1.0 - civ));
            if (!st.InRange(xi_new, zi)) continue;
            const int fi_child =
                base_.RoundDown(1.0 - (1.0 - xp_val) * (1.0 - yi));
            for (int kp = 0; kp <= prev.kcap; ++kp) {
              const double pv = prev.Get(kp, xp, z_prev);
              if (pv == kNegInf) continue;
              const int kcmax = std::min(ti.kcap, st.kcap - kp);
              for (int kc = 0; kc <= kcmax; ++kc) {
                const double gv = ti.Get(kc, ci, fi_child);
                if (gv == kNegInf) continue;
                st.Update(kp + kc, xi_new, zi, pv + gv,
                          HelperStage::Choice{kc, ci, xp, z_prev});
              }
            }
          }
        }
      }
      st.MonotonizeKappa();
    }

    // ---- final assembly (Algorithm 7 lines 19-21) ----
    {
      const HelperStage& st = stages[d];
      for (int kappa = b; kappa <= t.kcap; ++kappa) {
        const int kk = std::min(kappa, st.kcap);
        for (int ci = t.c_lo; ci < t.c_lo + t.c_cnt; ++ci) {
          for (int fi = t.f_lo; fi < t.f_lo + t.f_cnt; ++fi) {
            const double hv = st.Get(kk, ci, fi);
            if (hv == kNegInf) continue;
            const double boost =
                BoostTerm(v, base_.Value(ci), base_.Value(fi), b != 0);
            t.Update(kappa, ci, fi, hv + boost, static_cast<uint8_t>(b));
          }
        }
      }
    }

    if (b == 0 && record_b0 != nullptr) *record_b0 = std::move(stages);
    if (b == 1 && record_b1 != nullptr) *record_b1 = std::move(stages);
  }
  t.MonotonizeKappa();
}

void DpBoostSolver::FillNode(NodeId v) {
  NodeTable& t = tables_[v];
  t.kcap = static_cast<int>(std::min<size_t>(options_.k, subtree_[v]));
  t.c_lo = c_lo_[v];
  t.c_cnt = c_hi_[v] - c_lo_[v] + 1;
  t.f_lo = f_lo_[v];
  t.f_cnt = f_hi_[v] - f_lo_[v] + 1;
  if (tree_.IsSeed(v)) {
    t.c_lo = base_.ione;
    t.c_cnt = 1;
    t.f_any = true;
    t.f_lo = 0;
    t.f_cnt = 1;
  }
  const bool chain = !tree_.IsSeed(v) && children_[v].size() == 1;
  t.Allocate(/*with_choice_c=*/chain);
  total_cells_ += t.val.size();

  if (children_[v].empty()) {
    FillLeaf(v);
  } else if (tree_.IsSeed(v)) {
    FillSeed(v, nullptr);
  } else if (chain) {
    FillChain(v);
  } else {
    FillWide(v, nullptr, nullptr);
  }
}

void DpBoostSolver::Reconstruct(NodeId v, int kappa, int ci, int fi,
                                std::vector<NodeId>* boost_set) {
  const NodeTable& t = tables_[v];
  kappa = std::min(kappa, t.kcap);
  if (t.f_any) fi = t.f_lo;
  if (!t.InRange(ci, fi)) return;
  const size_t cell = t.CellIndex(kappa, ci, fi);
  if (t.val[cell] == kNegInf) return;

  if (children_[v].empty()) {
    if (t.choice_b[cell]) boost_set->push_back(v);
    return;
  }

  if (tree_.IsSeed(v)) {
    const int d = static_cast<int>(children_[v].size());
    std::vector<SeedStage> stages(d + 1);
    FillSeed(v, stages.data());  // recompute with recorded choices
    int kk = std::min(kappa, stages[d].kcap);
    for (int i = d; i >= 1; --i) {
      if (stages[i].val[kk] == kNegInf) break;
      const SeedStage::Choice& ch = stages[i].choice[kk];
      if (ch.kappa_child < 0) break;
      Reconstruct(children_[v][i - 1], ch.kappa_child, ch.c_child,
                  base_.ione, boost_set);
      kk = std::min(kk - ch.kappa_child, stages[i - 1].kcap);
      if (kk < 0) break;
    }
    return;
  }

  const int b = t.choice_b[cell];
  if (b) boost_set->push_back(v);

  if (children_[v].size() == 1) {
    const int ci_child = t.choice_c[cell];
    if (ci_child < 0) return;
    const double f_val = base_.Value(fi);
    const int f_child = base_.RoundDown(f_val * DownP(v, b != 0));
    Reconstruct(children_[v][0], kappa - b, ci_child, f_child, boost_set);
    return;
  }

  // Wide node: recompute the helper stages for the recorded b.
  const int d = static_cast<int>(children_[v].size());
  std::vector<HelperStage> stages_b0, stages_b1;
  FillWide(v, &stages_b0, &stages_b1);
  std::vector<HelperStage>& stages = b ? stages_b1 : stages_b0;
  const Grid mid(d > 2 ? base_.delta / (d - 2) : base_.delta);
  auto grid_at = [&](int i) -> const Grid& { return (i == d) ? base_ : mid; };

  int kk = std::min(kappa, stages[d].kcap);
  int xi = ci;
  int zi = fi;
  for (int i = d; i >= 3; --i) {
    const HelperStage& st = stages[i];
    if (!st.InRange(xi, zi)) return;
    const HelperStage::Choice ch = st.choice[st.CellIndex(kk, xi, zi)];
    if (ch.kappa_child < 0) return;
    // Child i's f was derived from (x_prev, y_i).
    const Grid& gi = grid_at(i);
    const double z_val = gi.Value(zi);
    const double yi = (i == d) ? z_val * DownP(v, b != 0) : z_val;
    const double xp_val = grid_at(i - 1).Value(ch.x_prev);
    const int fi_child =
        base_.RoundDown(1.0 - (1.0 - xp_val) * (1.0 - yi));
    Reconstruct(children_[v][i - 1], ch.kappa_child, ch.c_child, fi_child,
                boost_set);
    kk = std::min(kk - ch.kappa_child, stages[i - 1].kcap);
    xi = ch.x_prev;
    zi = ch.z_prev;
    if (kk < 0) return;
  }
  // Boundary.
  {
    const HelperStage& st = stages[2];
    if (!st.InRange(xi, zi)) return;
    const HelperStage::Choice ch = st.choice[st.CellIndex(kk, xi, zi)];
    if (ch.kappa_child < 0) return;
    const Grid& g2 = grid_at(2);
    const double z_val = g2.Value(zi);
    const double y2 = (d == 2) ? z_val * DownP(v, b != 0) : z_val;
    const NodeId v1 = children_[v][0];
    const NodeId v2 = children_[v][1];
    // In the boundary Choice: (kappa_child, c_child) is child 2's pick and
    // (x_prev, z_prev) holds child 1's (κ, c index).
    const double c1v = base_.Value(ch.z_prev) * UpP(v1, b != 0);
    const double c2v = base_.Value(ch.c_child) * UpP(v2, b != 0);
    const int f1 = base_.RoundDown(1.0 - (1.0 - c2v) * (1.0 - y2));
    const int f2 = base_.RoundDown(1.0 - (1.0 - c1v) * (1.0 - y2));
    Reconstruct(v1, ch.x_prev, ch.z_prev, f1, boost_set);
    Reconstruct(v2, ch.kappa_child, ch.c_child, f2, boost_set);
  }
}

DpBoostResult DpBoostSolver::Solve() {
  DpBoostResult result;
  const size_t n = tree_.num_nodes();
  KB_CHECK(options_.root < n);
  KB_CHECK(options_.k >= 1);
  KB_CHECK(options_.epsilon > 0.0);

  // δ from the Greedy-Boost lower bound (Algorithm 4 lines 1-2).
  GreedyBoostResult greedy = GreedyBoost(tree_, options_.k);
  greedy_lb_ = greedy.boost;
  const double denom =
      2.0 * SumTopKBoostedPathProducts(tree_, options_.k);
  double delta = options_.epsilon * std::max(greedy_lb_, 1.0) /
                 std::max(denom, 1e-12);
  delta = std::min(delta, 1.0);
  base_ = Grid(delta);
  result.delta = delta;
  result.greedy_lb = greedy_lb_;

  RootTree();
  {
    TreeBoostEvaluator evaluator(tree_);
    ap0_ = evaluator.base_activation();
  }
  ComputeRanges();

  tables_.assign(n, NodeTable{});
  for (size_t i = n; i-- > 0;) FillNode(order_[i]);

  // Answer: max_c g'(root, k, c, 0).
  const NodeId root = options_.root;
  const NodeTable& rt = tables_[root];
  int best_c = -1;
  double best_val = kNegInf;
  const int fzero = rt.f_any ? rt.f_lo : 0;
  for (int ci = rt.c_lo; ci < rt.c_lo + rt.c_cnt; ++ci) {
    const double val = rt.Get(rt.kcap, ci, fzero);
    if (val > best_val) {
      best_val = val;
      best_c = ci;
    }
  }
  result.table_cells = total_cells_;
  if (best_c < 0 || best_val == kNegInf) {
    // Degenerate instance (e.g. every node a seed); fall back to greedy.
    result.boost_set = greedy.boost_set;
    result.boost = greedy.boost;
    result.dp_value = 0.0;
    return result;
  }
  result.dp_value = best_val;

  Reconstruct(root, rt.kcap, best_c, fzero, &result.boost_set);
  std::sort(result.boost_set.begin(), result.boost_set.end());
  result.boost_set.erase(
      std::unique(result.boost_set.begin(), result.boost_set.end()),
      result.boost_set.end());
  KB_CHECK(result.boost_set.size() <= options_.k)
      << "reconstruction overflowed the budget";

  // Exact Δ of the reconstructed set; fall back to greedy's set if the
  // rounding made the DP pick a weaker concrete set.
  {
    TreeBoostEvaluator evaluator(tree_);
    std::vector<uint8_t> bitmap(n, 0);
    for (NodeId v : result.boost_set) bitmap[v] = 1;
    evaluator.Compute(bitmap);
    result.boost = evaluator.boost();
  }
  if (greedy.boost > result.boost) {
    result.boost_set = greedy.boost_set;
    result.boost = greedy.boost;
  }
  return result;
}

}  // namespace

DpBoostResult DpBoost(const BidirectedTree& tree,
                      const DpBoostOptions& options) {
  DpBoostSolver solver(tree, options);
  return solver.Solve();
}

}  // namespace kboost
