#ifndef KBOOST_NET_WIRE_H_
#define KBOOST_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/prr_boost.h"
#include "src/graph/graph.h"
#include "src/serve/service_stats.h"
#include "src/util/status.h"

namespace kboost {

/// The kboostd wire protocol: a minimal-dependency length-prefixed binary
/// framing over TCP. Every frame is a fixed 16-byte little-endian header
/// followed by `body_len` body bytes:
///
///   offset  size  field
///        0     4  magic      "KBST" (0x4B 0x42 0x53 0x54 on the wire)
///        4     1  version    kWireVersion; mismatches are rejected typed
///        5     1  type       FrameType
///        6     2  flags      reserved, MUST be zero (rejected otherwise)
///        8     4  request_id echoed verbatim in the matching reply
///       12     4  body_len   bytes that follow; bounded by the decoder's
///                            configured max frame size
///
/// Body scalars are little-endian fixed width; doubles travel as their
/// IEEE-754 bit pattern in a uint64, so estimates survive the wire
/// bit-identically (the loadgen's divergence gate depends on it). Strings
/// and node vectors are length-prefixed. Every decoder is bounds-checked
/// against the declared body and must consume it exactly — trailing bytes
/// are a typed error, never ignored. docs/PROTOCOL.md is the normative
/// description.
inline constexpr uint32_t kWireMagic = 0x5453424Bu;  // "KBST" little-endian
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Default decoder bound on body_len. Generous for answers (a selection is
/// k u32s) yet small enough that a hostile length can't balloon memory.
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

/// Frame discriminator. Requests are odd, their replies even; kError is the
/// server's typed answer to a frame it could not parse (sent once, then the
/// connection closes).
enum class FrameType : uint8_t {
  kQuery = 1,
  kQueryReply = 2,
  kStats = 3,
  kStatsReply = 4,
  kRefresh = 5,
  kRefreshReply = 6,
  kShutdown = 7,
  kShutdownReply = 8,
  kError = 9,
};

/// Decoded frame header (magic/flags validated away).
struct FrameHeader {
  FrameType type = FrameType::kError;
  uint32_t request_id = 0;
  uint32_t body_len = 0;
};

/// Appends the 16-byte header for (type, request_id, body_len) to `out`.
void AppendFrameHeader(FrameType type, uint32_t request_id, uint32_t body_len,
                       std::string* out);

/// Decodes a header from exactly kFrameHeaderBytes bytes. Typed rejection of
/// bad magic, unknown version, nonzero flags, unknown frame type, and a
/// body_len above `max_frame_bytes` — the decoder-hardening matrix in
/// tests/net_test.cc covers each case.
Status DecodeFrameHeader(const uint8_t* bytes, size_t max_frame_bytes,
                         FrameHeader* out);

// ---- Status codes on the wire ---------------------------------------------

/// Maps a StatusCode to its stable wire value. The wire values are pinned
/// independently of the enum's numeric values so reordering StatusCode can
/// never silently change the protocol; net_test round-trips every code.
uint8_t WireCodeFromStatus(StatusCode code);

/// Inverse mapping; InvalidArgument for an unknown wire value.
StatusOr<StatusCode> StatusCodeFromWire(uint8_t wire_code);

// ---- Frame bodies ----------------------------------------------------------

/// A query request on the wire — the network twin of BoostRequest (minus the
/// in-process-only cancel pointer; over a socket, closing the connection is
/// the cancel signal).
struct WireQuery {
  std::string pool;
  uint64_t k = 0;
  SolveMode mode = SolveMode::kAuto;
  int32_t num_threads = 0;
  uint64_t deadline_ms = 0;
};

/// A query reply on the wire: the typed Status outcome plus, when OK, the
/// answer fields a client (and the loadgen's bit-identity gate) consumes.
/// Every overload outcome of the serving stack — shed (ResourceExhausted),
/// deadline miss, degraded answer, shutdown reject (Unavailable) — is
/// representable here, so overload never surfaces as a dropped connection.
struct WireQueryReply {
  Status status;  ///< the remote Solve outcome, typed
  uint64_t pool_version = 0;
  bool degraded = false;
  double solve_seconds = 0.0;
  std::vector<NodeId> best_set;
  double best_estimate = 0.0;
  std::vector<NodeId> lb_set;
  double lb_mu_hat = 0.0;
  double lb_delta_hat = 0.0;
  std::vector<NodeId> delta_set;
  double delta_delta_hat = 0.0;
  uint64_t pool_budget = 0;
  bool pool_reused = false;
  uint64_t num_samples = 0;
  uint64_t num_boostable = 0;
};

/// Admin: hot-swap `pool` from a server-local snapshot path (the wire face
/// of BoostService::RefreshPoolFromSnapshot).
struct WireRefresh {
  std::string pool;
  std::string snapshot_path;
};

struct WireRefreshReply {
  Status status;
  uint64_t version = 0;  ///< the pool's version after the swap (when OK)
};

// Encoders return a complete frame (header + body) ready to write. Decoders
// take the body bytes of a validated header and must consume them exactly.
std::string EncodeQueryFrame(uint32_t request_id, const WireQuery& query);
Status DecodeQueryBody(const uint8_t* body, size_t len, WireQuery* out);

std::string EncodeQueryReplyFrame(uint32_t request_id,
                                  const WireQueryReply& reply);
Status DecodeQueryReplyBody(const uint8_t* body, size_t len,
                            WireQueryReply* out);

std::string EncodeStatsFrame(uint32_t request_id);
std::string EncodeStatsReplyFrame(uint32_t request_id,
                                  const ServiceStatsSnapshot& stats);
Status DecodeStatsReplyBody(const uint8_t* body, size_t len,
                            ServiceStatsSnapshot* out);

std::string EncodeRefreshFrame(uint32_t request_id, const WireRefresh& refresh);
Status DecodeRefreshBody(const uint8_t* body, size_t len, WireRefresh* out);

std::string EncodeRefreshReplyFrame(uint32_t request_id,
                                    const WireRefreshReply& reply);
Status DecodeRefreshReplyBody(const uint8_t* body, size_t len,
                              WireRefreshReply* out);

std::string EncodeShutdownFrame(uint32_t request_id);
std::string EncodeShutdownReplyFrame(uint32_t request_id);

/// The server's one-shot protocol-error frame: a typed Status explaining why
/// the connection is about to close (bad magic, bad version, oversized
/// frame, malformed body, ...).
std::string EncodeErrorFrame(uint32_t request_id, const Status& error);
Status DecodeErrorBody(const uint8_t* body, size_t len, Status* out);

/// Status-carrier bodies (query replies, refresh replies, error frames) all
/// start with [u8 wire code][u32 len][message bytes]; this decodes that
/// prefix for clients that only need the outcome.
Status DecodeStatusPrefix(const uint8_t* body, size_t len, Status* out);

}  // namespace kboost

#endif  // KBOOST_NET_WIRE_H_
