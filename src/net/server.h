#ifndef KBOOST_NET_SERVER_H_
#define KBOOST_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/wire.h"
#include "src/serve/boost_service.h"
#include "src/util/status.h"
#include "src/util/sync.h"

namespace kboost {

/// How a KboostServer listens and schedules work.
struct ServerOptions {
  /// Address to bind; loopback by default so a daemon started for a bench
  /// never listens on the open network unless asked to.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads draining the dispatch queue into BoostService::Solve.
  /// Each worker keeps its own SolveContext warm across requests.
  int num_workers = 2;
  /// Bounded dispatch queue between the event loop and the workers. A query
  /// arriving while the queue is full is answered immediately with a typed
  /// kUnavailable reply — the connection-level reject — instead of piling
  /// onto a saturated process. (The BoostService's own admission budget,
  /// when configured, is a second, finer gate inside Solve.)
  size_t max_dispatch_queue = 64;
  /// Decoder bound on a frame's declared body length; larger declarations
  /// are rejected typed and the connection closed.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Accepted connections beyond this are sent one kUnavailable error frame
  /// and closed.
  size_t max_connections = 256;
  /// Graceful-shutdown drain budget: in-flight solves get this long to
  /// finish; past it they are cooperatively cancelled (and answered
  /// kUnavailable). Queued-but-unstarted requests are answered kUnavailable
  /// immediately.
  uint64_t drain_deadline_ms = 2000;
  /// Whether a SHUTDOWN admin frame from a client triggers graceful
  /// shutdown (operators may prefer signals only).
  bool allow_remote_shutdown = true;
};

/// Point-in-time serving-process counters (distinct from the
/// BoostService's per-pool Stats(): these count wire-level events).
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t active_connections = 0;  ///< gauge
  uint64_t frames_received = 0;
  uint64_t protocol_errors = 0;  ///< error frames sent before closing
  uint64_t queries_dispatched = 0;
  uint64_t unavailable_rejects = 0;  ///< typed queue-full/draining rejects
  uint64_t admin_frames = 0;         ///< STATS / REFRESH / SHUTDOWN
};

/// The kboostd serving front-end: exposes one BoostService over TCP with
/// the length-prefixed binary protocol of src/net/wire.h.
///
/// Threading model: one event-loop thread owns the listening socket, every
/// connection's input buffering and frame extraction (epoll on Linux, poll
/// elsewhere), and feeds complete query/refresh frames through a bounded
/// dispatch queue to `num_workers` worker threads, which call
/// BoostService::Solve and write the reply back on the request's
/// connection. One request is in flight per connection at a time (the
/// blocking client's contract); pipelined bytes wait in the connection
/// buffer. STATS is answered inline on the event loop (it is one lock-free
/// snapshot), REFRESH runs on a worker (pool preparation is seconds), and
/// SHUTDOWN triggers the graceful drain.
///
/// Per-request deadlines resolve through BoostService's single-budget
/// deadline path: the wire deadline_ms lands in BoostRequest::deadline_ms,
/// which Solve() converts once at entry to an absolute deadline covering
/// admission wait AND solve — dispatch-queue wait on this side of the call
/// is covered by the same budget because the worker passes the wire value
/// through untouched and the clock starts at Solve() entry; socket read
/// time is the client's own cost. Every overload outcome (shed, deadline
/// miss, degraded, shutdown reject) travels as a typed reply frame; a
/// connection is only ever closed without a reply when the peer itself
/// vanished or sent bytes that do not parse as a frame (and even then an
/// error frame is attempted first).
///
/// Graceful shutdown (RequestShutdown, a SHUTDOWN frame, or an installed
/// SIGINT/SIGTERM handler): the acceptor closes first, queued-but-unstarted
/// requests are answered kUnavailable, in-flight solves get
/// `drain_deadline_ms` to finish before cooperative cancellation, workers
/// are joined, and every connection is closed. Admission slots cannot leak:
/// they are RAII tickets inside Solve, and every dispatched request runs
/// Solve to completion (normally or cancelled) before its worker exits.
class KboostServer {
 public:
  /// Binds, listens and starts the event-loop and worker threads. `service`
  /// must outlive the server. Typed errors for bind/listen failures
  /// (kUnavailable when the address is in use).
  static StatusOr<std::unique_ptr<KboostServer>> Start(
      BoostService* service, const ServerOptions& options);

  /// Graceful shutdown + join, if still running.
  ~KboostServer();

  /// The actual bound port (useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// Requests graceful shutdown and returns immediately. Async-signal-safe
  /// apart from being callable from any thread: it is one atomic store and
  /// one write() to the event loop's wake pipe.
  void RequestShutdown();

  /// RequestShutdown() + Wait().
  void Shutdown();

  /// Blocks until the server has fully shut down (event loop exited,
  /// workers joined, all connections closed).
  void Wait();

  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  /// True once Wait() would return without blocking.
  bool finished() const { return finished_.load(std::memory_order_acquire); }

  /// Installs SIGINT/SIGTERM handlers that RequestShutdown() this server
  /// (at most one server per process may install them; FailedPrecondition
  /// otherwise). The handler is one async-signal-safe write to the wake
  /// pipe. Handlers are restored when this server is destroyed.
  Status InstallSignalHandlers();

  ServerCounters counters() const;

 private:
  struct Connection;

  /// One dispatched request: the connection it answers on, the echoed id,
  /// and the decoded query/refresh payload. Complete here (not in the .cc)
  /// because the dispatch deque holds items by value.
  struct WorkItem {
    std::shared_ptr<Connection> conn;
    uint32_t request_id = 0;
    bool is_refresh = false;
    WireQuery query;
    WireRefresh refresh;
  };

  KboostServer(BoostService* service, const ServerOptions& options)
      : service_(service), options_(options) {}

  Status Listen();
  void EventLoop();
  void WorkerLoop();

  // Event-loop internals (called only from the event-loop thread).
  void AcceptNew();
  void ReadFrom(const std::shared_ptr<Connection>& conn);
  void ProcessBuffered(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   const FrameHeader& header, const uint8_t* body);
  void FailConnection(const std::shared_ptr<Connection>& conn,
                      uint32_t request_id, const Status& error);
  void CloseConnection(int fd);
  void HandleCompletions();
  void UpdateReadInterest(const std::shared_ptr<Connection>& conn);
  void BeginDrain();

  // Worker-side reply path.
  void WriteReply(const std::shared_ptr<Connection>& conn,
                  const std::string& frame);
  void CompleteWork(const std::shared_ptr<Connection>& conn);

  BoostService* service_;
  const ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  // ---- The wake pipe and the drain handshake -------------------------------
  //
  // The event loop sleeps in epoll/poll; everything that must get its
  // attention writes ONE tagged byte to this self-pipe instead of touching
  // loop state directly:
  //   'c' — a worker finished a request (completed_fds_ has its fd),
  //   'q' — some thread called RequestShutdown(),
  //   'T' — the installed SIGINT/SIGTERM handler fired (the only operation
  //         a signal context performs is this async-signal-safe write()).
  // The loop drains the pipe, folds 'T' into shutdown_requested_, and acts
  // on its OWN thread — so connection/drain state needs no lock and no
  // signal-safety gymnastics. Shutdown then proceeds in one direction:
  //   shutdown_requested_ → BeginDrain() (close acceptor, set draining_) →
  //   outstanding_ reaches 0 (past drain_deadline_ms, drain_cancel_ trips
  //   every in-flight StopToken) → stop_workers_ under queue_mutex_ →
  //   workers joined → connections closed → finished_.
  // No step is ever reversed, which is why each flag can be an independent
  // atomic rather than multi-field state under one lock.
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // Dispatch queue between the event loop and workers.
  Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<WorkItem> queue_ KB_GUARDED_BY(queue_mutex_);
  bool stop_workers_ KB_GUARDED_BY(queue_mutex_) = false;

  // Completion notifications back to the event loop.
  Mutex completed_mutex_;
  std::vector<int> completed_fds_ KB_GUARDED_BY(completed_mutex_);

  // Event-loop-owned connection registry (no lock by design: only the event
  // loop thread touches the map and the outstanding_ counter, from EventLoop
  // and the helpers it calls; workers hold shared_ptr<Connection> but never
  // the map. Thread ownership is invisible to -Wthread-safety, so the
  // contract is documented here and enforced by keeping every accessor
  // private to the event-loop section above).
  std::map<int, std::shared_ptr<Connection>> connections_;
  size_t outstanding_ = 0;  ///< dispatched, not yet completed (event loop)

  // One-way lifecycle flags (see the drain-handshake comment above). Each is
  // set-once-and-sticky, read with one relaxed/acquire load — none of them
  // guards other data, so none is a pseudo-lock.
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> draining_{false};
  /// Cooperative cancel flag handed to every dispatched Solve; set when the
  /// drain deadline passes so in-flight selections stop at their next poll.
  std::atomic<bool> drain_cancel_{false};
  std::atomic<bool> finished_{false};
  bool signal_handlers_installed_ = false;  ///< main-thread-owned (Start/dtor)

  Mutex join_mutex_;  // serializes Wait() callers
  bool joined_ KB_GUARDED_BY(join_mutex_) = false;

  // Counters (relaxed; read by counters()).
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<uint64_t> unavailable_rejects_{0};
  std::atomic<uint64_t> admin_frames_{0};
  std::atomic<uint64_t> active_{0};
};

}  // namespace kboost

#endif  // KBOOST_NET_SERVER_H_
