#include "src/net/daemon.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph_io.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/serve/boost_service.h"
#include "src/util/parse.h"

namespace kboost {

namespace {

// Flag scanning mirrors kboost_cli's discipline — strict `--name=value` /
// `--switch`, unknown flags rejected loudly, every integer through the
// whole-string ParseUint64 — parameterised on where flags start so the same
// command serves `kboostd --graph=...` and `kboost_cli serve --graph=...`.

const char* FlagValue(int argc, char** argv, int start, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = start; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, int start, const char* name) {
  for (int i = start; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

bool ValidateFlags(int argc, char** argv, int start, const char* command,
                   std::initializer_list<const char*> value_flags,
                   std::initializer_list<const char*> switches = {}) {
  for (int i = start; i < argc; ++i) {
    const char* arg = argv[i];
    bool known = false;
    for (const char* name : value_flags) {
      const size_t len = std::strlen(name);
      if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        known = true;
        break;
      }
    }
    for (const char* name : switches) {
      if (known) break;
      if (std::strcmp(arg, name) == 0) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "error: unknown flag '%s' for '%s'\n", arg,
                   command);
      return false;
    }
  }
  return true;
}

bool ParseUint64Flag(int argc, char** argv, int start, const char* flag_name,
                     uint64_t* out) {
  const char* text = FlagValue(argc, argv, start, flag_name);
  if (text == nullptr) return true;
  if (Status s = ParseUint64(text, flag_name, out); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return false;
  }
  return true;
}

bool ParseDoubleFlag(int argc, char** argv, int start, const char* flag_name,
                     double* out) {
  const char* text = FlagValue(argc, argv, start, flag_name);
  if (text == nullptr) return true;
  char* end = nullptr;
  *out = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "error: %s must be a number, got '%s'\n", flag_name,
                 text);
    return false;
  }
  return true;
}

/// Splits "host:port" with a strict port parse. The last ':' separates, so
/// this stays correct if hosts ever grow colons.
bool ParseHostPort(const char* text, std::string* host, uint16_t* port) {
  const std::string value(text);
  const size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == value.size()) {
    std::fprintf(stderr,
                 "error: --connect must be HOST:PORT, got '%s'\n", text);
    return false;
  }
  uint64_t port64 = 0;
  if (Status s = ParseUint64(value.substr(colon + 1).c_str(), "--connect port",
                             &port64);
      !s.ok() || port64 == 0 || port64 > 65535) {
    std::fprintf(stderr, "error: --connect port must be in [1, 65535], got "
                         "'%s'\n",
                 value.substr(colon + 1).c_str());
    return false;
  }
  *host = value.substr(0, colon);
  *port = static_cast<uint16_t>(port64);
  return true;
}

bool ParseMode(const char* text, SolveMode* out) {
  if (text == nullptr || std::strcmp(text, "auto") == 0) {
    *out = SolveMode::kAuto;
    return true;
  }
  if (std::strcmp(text, "full") == 0) {
    *out = SolveMode::kFull;
    return true;
  }
  if (std::strcmp(text, "lb") == 0) {
    *out = SolveMode::kLbOnly;
    return true;
  }
  std::fprintf(stderr, "error: --mode must be auto|full|lb, got '%s'\n",
               text);
  return false;
}

}  // namespace

int RunServeCommand(int argc, char** argv, int flag_start) {
  if (!ValidateFlags(argc, argv, flag_start, "serve",
                     {"--graph", "--pool", "--listen", "--bind", "--workers",
                      "--threads", "--queue-cap", "--deadline-ms",
                      "--degrade", "--dispatch-queue", "--max-connections",
                      "--drain-deadline-ms"},
                     {"--mmap-pool", "--no-remote-shutdown"})) {
    return 2;
  }
  const char* graph_path = FlagValue(argc, argv, flag_start, "--graph");
  if (graph_path == nullptr) {
    std::fprintf(stderr,
                 "usage: serve --graph=PATH --pool=NAME=SNAPSHOT "
                 "[--pool=...] [--mmap-pool] [--listen=PORT] [--bind=ADDR]\n"
                 "             [--workers=N] [--threads=N] [--queue-cap=N]\n"
                 "             [--deadline-ms=N] [--degrade=F]\n"
                 "             [--dispatch-queue=N] [--max-connections=N]\n"
                 "             [--drain-deadline-ms=N] "
                 "[--no-remote-shutdown]\n");
    return 2;
  }

  // --pool is repeatable: every NAME=SNAPSHOT becomes a warm pool.
  std::vector<BoostService::PoolSpec> pools;
  for (int i = flag_start; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pool=", 7) != 0) continue;
    const char* spec = argv[i] + 7;
    const char* eq = std::strchr(spec, '=');
    if (eq == nullptr || eq == spec || eq[1] == '\0') {
      std::fprintf(stderr,
                   "error: --pool must be NAME=SNAPSHOT_PATH, got '%s'\n",
                   spec);
      return 2;
    }
    pools.push_back({std::string(spec, eq), std::string(eq + 1)});
  }
  if (pools.empty()) {
    std::fprintf(stderr, "error: serve needs at least one --pool=NAME=PATH\n");
    return 2;
  }

  uint64_t listen_port = 0, workers = 2, threads = 0, queue_cap = 0;
  uint64_t deadline_ms = 0, dispatch_queue = 64, max_connections = 256;
  uint64_t drain_deadline_ms = 2000;
  double degrade = 0.0;
  if (!ParseUint64Flag(argc, argv, flag_start, "--listen", &listen_port) ||
      !ParseUint64Flag(argc, argv, flag_start, "--workers", &workers) ||
      !ParseUint64Flag(argc, argv, flag_start, "--threads", &threads) ||
      !ParseUint64Flag(argc, argv, flag_start, "--queue-cap", &queue_cap) ||
      !ParseUint64Flag(argc, argv, flag_start, "--deadline-ms",
                       &deadline_ms) ||
      !ParseUint64Flag(argc, argv, flag_start, "--dispatch-queue",
                       &dispatch_queue) ||
      !ParseUint64Flag(argc, argv, flag_start, "--max-connections",
                       &max_connections) ||
      !ParseUint64Flag(argc, argv, flag_start, "--drain-deadline-ms",
                       &drain_deadline_ms) ||
      !ParseDoubleFlag(argc, argv, flag_start, "--degrade", &degrade)) {
    return 2;
  }
  if (listen_port > 65535) {
    std::fprintf(stderr, "error: --listen must be in [0, 65535]\n");
    return 2;
  }
  if (threads > static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
      workers > 64) {
    std::fprintf(stderr, "error: --threads/--workers out of range\n");
    return 2;
  }

  StatusOr<DirectedGraph> graph = LoadEdgeList(graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  BoostService::Options service_options;
  service_options.warm_pools = std::move(pools);
  service_options.num_threads = static_cast<int>(threads);
  service_options.mmap_pools = HasFlag(argc, argv, flag_start, "--mmap-pool");
  service_options.max_in_flight = queue_cap;
  service_options.max_queued = queue_cap;
  service_options.default_deadline_ms = deadline_ms;
  service_options.degrade_load_factor = degrade;
  StatusOr<std::unique_ptr<BoostService>> service =
      BoostService::Create(graph.value(), service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n", service.status().ToString().c_str());
    return 1;
  }

  ServerOptions server_options;
  const char* bind = FlagValue(argc, argv, flag_start, "--bind");
  if (bind != nullptr) server_options.bind_address = bind;
  server_options.port = static_cast<uint16_t>(listen_port);
  server_options.num_workers = static_cast<int>(workers);
  server_options.max_dispatch_queue = dispatch_queue;
  server_options.max_connections = max_connections;
  server_options.drain_deadline_ms = drain_deadline_ms;
  server_options.allow_remote_shutdown =
      !HasFlag(argc, argv, flag_start, "--no-remote-shutdown");
  StatusOr<std::unique_ptr<KboostServer>> server =
      KboostServer::Start(service.value().get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }
  if (Status s = server.value()->InstallSignalHandlers(); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }

  for (const std::string& name : service.value()->PoolNames()) {
    std::printf("pool '%s' v%llu ready\n", name.c_str(),
                static_cast<unsigned long long>(
                    service.value()->PoolVersion(name)));
  }
  // The pid and the (possibly ephemeral) bound port, parseable by scripts
  // that start the daemon and then point clients at it.
  std::printf("kboostd listening on %s:%u (pid %d, %llu workers)\n",
              server_options.bind_address.c_str(), server.value()->port(),
              static_cast<int>(::getpid()),
              static_cast<unsigned long long>(workers));
  std::fflush(stdout);

  server.value()->Wait();
  const ServerCounters counters = server.value()->counters();
  std::printf("kboostd drained: %llu connections, %llu frames, %llu queries, "
              "%llu unavailable rejects, %llu protocol errors\n",
              static_cast<unsigned long long>(counters.connections_accepted),
              static_cast<unsigned long long>(counters.frames_received),
              static_cast<unsigned long long>(counters.queries_dispatched),
              static_cast<unsigned long long>(counters.unavailable_rejects),
              static_cast<unsigned long long>(counters.protocol_errors));
  return 0;
}

int RunQueryCommand(int argc, char** argv, int flag_start) {
  if (!ValidateFlags(argc, argv, flag_start, "query",
                     {"--connect", "--pool", "--k", "--mode", "--threads",
                      "--deadline-ms", "--timeout-ms"})) {
    return 2;
  }
  const char* connect = FlagValue(argc, argv, flag_start, "--connect");
  const char* k_s = FlagValue(argc, argv, flag_start, "--k");
  if (connect == nullptr || k_s == nullptr) {
    std::fprintf(stderr,
                 "usage: query --connect=HOST:PORT --k=N [--pool=NAME]\n"
                 "             [--mode=auto|full|lb] [--threads=N]\n"
                 "             [--deadline-ms=N] [--timeout-ms=N]\n");
    return 2;
  }
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(connect, &host, &port)) return 2;

  WireQuery query;
  const char* pool = FlagValue(argc, argv, flag_start, "--pool");
  query.pool = pool != nullptr ? pool : "pool";
  uint64_t threads = 0, timeout_ms = 30000;
  if (!ParseUint64Flag(argc, argv, flag_start, "--k", &query.k) ||
      !ParseUint64Flag(argc, argv, flag_start, "--threads", &threads) ||
      !ParseUint64Flag(argc, argv, flag_start, "--deadline-ms",
                       &query.deadline_ms) ||
      !ParseUint64Flag(argc, argv, flag_start, "--timeout-ms", &timeout_ms)) {
    return 2;
  }
  if (threads > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    std::fprintf(stderr, "error: --threads out of range\n");
    return 2;
  }
  query.num_threads = static_cast<int32_t>(threads);
  if (!ParseMode(FlagValue(argc, argv, flag_start, "--mode"), &query.mode)) {
    return 2;
  }

  ClientOptions client_options;
  client_options.io_timeout_ms = timeout_ms;
  StatusOr<std::unique_ptr<KboostClient>> client =
      KboostClient::Connect(host, port, client_options);
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n", client.status().ToString().c_str());
    return 1;
  }
  StatusOr<WireQueryReply> reply = client.value()->Query(query);
  if (!reply.ok()) {
    std::fprintf(stderr, "error: %s\n", reply.status().ToString().c_str());
    return 1;
  }
  if (!reply.value().status.ok()) {
    // The round trip worked; the remote solve answered a typed non-OK
    // outcome (shed, deadline, unknown pool, shutting down, ...).
    std::fprintf(stderr, "remote: %s\n",
                 reply.value().status.ToString().c_str());
    return 1;
  }
  const WireQueryReply& r = reply.value();
  std::printf("pool '%s' v%llu k=%llu%s\n", query.pool.c_str(),
              static_cast<unsigned long long>(r.pool_version),
              static_cast<unsigned long long>(query.k),
              r.degraded ? "  [degraded]" : "");
  std::printf("boost_set: ");
  for (size_t i = 0; i < r.best_set.size(); ++i) {
    std::printf("%s%u", i ? "," : "", r.best_set[i]);
  }
  std::printf("\nestimate: %.6f\n", r.best_estimate);
  std::printf("samples: %llu (boostable %llu, pool budget %llu%s)\n",
              static_cast<unsigned long long>(r.num_samples),
              static_cast<unsigned long long>(r.num_boostable),
              static_cast<unsigned long long>(r.pool_budget),
              r.pool_reused ? ", reused" : "");
  std::printf("solve_seconds: %.4f\n", r.solve_seconds);
  return 0;
}

}  // namespace kboost
