#include "src/net/wire.h"

#include <cstring>

namespace kboost {

namespace {

// ---- Little-endian append helpers -----------------------------------------

void AppendU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void AppendU16(uint16_t v, std::string* out) {
  for (int i = 0; i < 2; ++i) AppendU8(static_cast<uint8_t>(v >> (8 * i)), out);
}

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) AppendU8(static_cast<uint8_t>(v >> (8 * i)), out);
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) AppendU8(static_cast<uint8_t>(v >> (8 * i)), out);
}

/// Doubles travel as their IEEE-754 bit pattern so they round-trip
/// bit-identically (the divergence gates compare with ==).
void AppendF64(double v, std::string* out) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(bits, out);
}

void AppendString(const std::string& s, std::string* out) {
  AppendU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void AppendNodeVec(const std::vector<NodeId>& v, std::string* out) {
  AppendU32(static_cast<uint32_t>(v.size()), out);
  for (NodeId id : v) AppendU32(id, out);
}

void AppendStatus(const Status& status, std::string* out) {
  AppendU8(WireCodeFromStatus(status.code()), out);
  AppendString(status.message(), out);
}

// ---- Bounds-checked reader -------------------------------------------------

/// Sequential reader over one frame body. Every Read* fails (returns false)
/// instead of reading past the declared length; decoders turn that into a
/// typed InvalidArgument. Nothing here trusts a declared count: a string or
/// vector length is checked against the bytes actually remaining before any
/// allocation, so a hostile header can never balloon memory past the frame
/// bound.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) {
    if (size_ - pos_ < 1) return false;
    *v = data_[pos_++];
    return true;
  }

  bool ReadU16(uint16_t* v) {
    uint8_t b[2];
    if (!ReadBytes(b, 2)) return false;
    *v = static_cast<uint16_t>(b[0] | (b[1] << 8));
    return true;
  }

  bool ReadU32(uint32_t* v) {
    uint8_t b[4];
    if (!ReadBytes(b, 4)) return false;
    *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool ReadF64(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (size_ - pos_ < len) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool ReadNodeVec(std::vector<NodeId>* v) {
    uint32_t count = 0;
    if (!ReadU32(&count)) return false;
    if ((size_ - pos_) / sizeof(uint32_t) < count) return false;
    v->clear();
    v->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t id = 0;
      ReadU32(&id);  // bounds proven above
      v->push_back(id);
    }
    return true;
  }

  bool ReadStatus(Status* out) {
    uint8_t code = 0;
    std::string message;
    if (!ReadU8(&code) || !ReadString(&message)) return false;
    StatusOr<StatusCode> decoded = StatusCodeFromWire(code);
    if (!decoded.ok()) return false;
    *out = MakeStatus(decoded.value(), std::move(message));
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }

  /// Rebuilds a Status from a decoded (code, message) pair. Encoded OK
  /// frames never carry a message, so the OK branch is exact.
  static Status MakeStatus(StatusCode code, std::string message) {
    switch (code) {
      case StatusCode::kOk:
        return Status::Ok();
      case StatusCode::kInvalidArgument:
        return Status::InvalidArgument(std::move(message));
      case StatusCode::kNotFound:
        return Status::NotFound(std::move(message));
      case StatusCode::kOutOfRange:
        return Status::OutOfRange(std::move(message));
      case StatusCode::kInternal:
        return Status::Internal(std::move(message));
      case StatusCode::kIoError:
        return Status::IoError(std::move(message));
      case StatusCode::kFailedPrecondition:
        return Status::FailedPrecondition(std::move(message));
      case StatusCode::kCancelled:
        return Status::Cancelled(std::move(message));
      case StatusCode::kDeadlineExceeded:
        return Status::DeadlineExceeded(std::move(message));
      case StatusCode::kResourceExhausted:
        return Status::ResourceExhausted(std::move(message));
      case StatusCode::kUnavailable:
        return Status::Unavailable(std::move(message));
    }
    return Status::Internal("unreachable status code");
  }

 private:
  bool ReadBytes(uint8_t* out, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " frame body");
}

/// Wraps a finished body in its header. The body length is known only after
/// encoding, so frames are built body-first.
std::string Frame(FrameType type, uint32_t request_id, std::string body) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  AppendFrameHeader(type, request_id, static_cast<uint32_t>(body.size()),
                    &frame);
  frame.append(body);
  return frame;
}

}  // namespace

void AppendFrameHeader(FrameType type, uint32_t request_id, uint32_t body_len,
                       std::string* out) {
  AppendU32(kWireMagic, out);
  AppendU8(kWireVersion, out);
  AppendU8(static_cast<uint8_t>(type), out);
  AppendU16(0, out);  // flags, reserved
  AppendU32(request_id, out);
  AppendU32(body_len, out);
}

Status DecodeFrameHeader(const uint8_t* bytes, size_t max_frame_bytes,
                         FrameHeader* out) {
  Reader reader(bytes, kFrameHeaderBytes);
  uint32_t magic = 0, request_id = 0, body_len = 0;
  uint8_t version = 0, type = 0;
  uint16_t flags = 0;
  reader.ReadU32(&magic);
  reader.ReadU8(&version);
  reader.ReadU8(&type);
  reader.ReadU16(&flags);
  reader.ReadU32(&request_id);
  reader.ReadU32(&body_len);
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic (not a kboost client?)");
  }
  if (version != kWireVersion) {
    return Status::FailedPrecondition(
        "unsupported wire version " + std::to_string(version) +
        " (this server speaks version " + std::to_string(kWireVersion) + ")");
  }
  if (flags != 0) {
    return Status::InvalidArgument("reserved frame flags must be zero");
  }
  if (type < static_cast<uint8_t>(FrameType::kQuery) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (body_len > max_frame_bytes) {
    return Status::InvalidArgument(
        "declared frame body of " + std::to_string(body_len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte frame limit");
  }
  out->type = static_cast<FrameType>(type);
  out->request_id = request_id;
  out->body_len = body_len;
  return Status::Ok();
}

uint8_t WireCodeFromStatus(StatusCode code) {
  // Pinned independently of the enum's numeric values: the wire is a
  // compatibility surface, the enum is not.
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kOutOfRange:
      return 3;
    case StatusCode::kInternal:
      return 4;
    case StatusCode::kIoError:
      return 5;
    case StatusCode::kFailedPrecondition:
      return 6;
    case StatusCode::kCancelled:
      return 7;
    case StatusCode::kDeadlineExceeded:
      return 8;
    case StatusCode::kResourceExhausted:
      return 9;
    case StatusCode::kUnavailable:
      return 10;
  }
  return 4;  // Internal — unreachable for valid enum values
}

StatusOr<StatusCode> StatusCodeFromWire(uint8_t wire_code) {
  switch (wire_code) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kOutOfRange;
    case 4:
      return StatusCode::kInternal;
    case 5:
      return StatusCode::kIoError;
    case 6:
      return StatusCode::kFailedPrecondition;
    case 7:
      return StatusCode::kCancelled;
    case 8:
      return StatusCode::kDeadlineExceeded;
    case 9:
      return StatusCode::kResourceExhausted;
    case 10:
      return StatusCode::kUnavailable;
    default:
      return Status::InvalidArgument("unknown wire status code " +
                                     std::to_string(wire_code));
  }
}

// ---- Query -----------------------------------------------------------------

std::string EncodeQueryFrame(uint32_t request_id, const WireQuery& query) {
  std::string body;
  AppendString(query.pool, &body);
  AppendU64(query.k, &body);
  AppendU8(static_cast<uint8_t>(query.mode), &body);
  AppendU32(static_cast<uint32_t>(query.num_threads), &body);
  AppendU64(query.deadline_ms, &body);
  return Frame(FrameType::kQuery, request_id, std::move(body));
}

Status DecodeQueryBody(const uint8_t* body, size_t len, WireQuery* out) {
  Reader reader(body, len);
  uint8_t mode = 0;
  uint32_t num_threads = 0;
  if (!reader.ReadString(&out->pool) || !reader.ReadU64(&out->k) ||
      !reader.ReadU8(&mode) || !reader.ReadU32(&num_threads) ||
      !reader.ReadU64(&out->deadline_ms) || !reader.AtEnd()) {
    return Malformed("query");
  }
  if (mode > static_cast<uint8_t>(SolveMode::kLbOnly)) {
    return Status::InvalidArgument("unknown solve mode " +
                                   std::to_string(mode) + " on the wire");
  }
  out->mode = static_cast<SolveMode>(mode);
  out->num_threads = static_cast<int32_t>(num_threads);
  return Status::Ok();
}

std::string EncodeQueryReplyFrame(uint32_t request_id,
                                  const WireQueryReply& reply) {
  std::string body;
  AppendStatus(reply.status, &body);
  if (reply.status.ok()) {
    AppendU64(reply.pool_version, &body);
    AppendU8(reply.degraded ? 1 : 0, &body);
    AppendF64(reply.solve_seconds, &body);
    AppendNodeVec(reply.best_set, &body);
    AppendF64(reply.best_estimate, &body);
    AppendNodeVec(reply.lb_set, &body);
    AppendF64(reply.lb_mu_hat, &body);
    AppendF64(reply.lb_delta_hat, &body);
    AppendNodeVec(reply.delta_set, &body);
    AppendF64(reply.delta_delta_hat, &body);
    AppendU64(reply.pool_budget, &body);
    AppendU8(reply.pool_reused ? 1 : 0, &body);
    AppendU64(reply.num_samples, &body);
    AppendU64(reply.num_boostable, &body);
  }
  return Frame(FrameType::kQueryReply, request_id, std::move(body));
}

Status DecodeQueryReplyBody(const uint8_t* body, size_t len,
                            WireQueryReply* out) {
  Reader reader(body, len);
  if (!reader.ReadStatus(&out->status)) return Malformed("query reply");
  if (!out->status.ok()) {
    return reader.AtEnd() ? Status::Ok() : Malformed("query reply");
  }
  uint8_t degraded = 0, pool_reused = 0;
  if (!reader.ReadU64(&out->pool_version) || !reader.ReadU8(&degraded) ||
      !reader.ReadF64(&out->solve_seconds) ||
      !reader.ReadNodeVec(&out->best_set) ||
      !reader.ReadF64(&out->best_estimate) ||
      !reader.ReadNodeVec(&out->lb_set) || !reader.ReadF64(&out->lb_mu_hat) ||
      !reader.ReadF64(&out->lb_delta_hat) ||
      !reader.ReadNodeVec(&out->delta_set) ||
      !reader.ReadF64(&out->delta_delta_hat) ||
      !reader.ReadU64(&out->pool_budget) || !reader.ReadU8(&pool_reused) ||
      !reader.ReadU64(&out->num_samples) ||
      !reader.ReadU64(&out->num_boostable) || !reader.AtEnd()) {
    return Malformed("query reply");
  }
  out->degraded = degraded != 0;
  out->pool_reused = pool_reused != 0;
  return Status::Ok();
}

// ---- Stats -----------------------------------------------------------------

std::string EncodeStatsFrame(uint32_t request_id) {
  return Frame(FrameType::kStats, request_id, std::string());
}

std::string EncodeStatsReplyFrame(uint32_t request_id,
                                  const ServiceStatsSnapshot& stats) {
  std::string body;
  AppendU64(stats.not_found, &body);
  AppendU64(stats.in_flight, &body);
  AppendU64(stats.queued, &body);
  AppendU64(stats.admitted, &body);
  AppendU64(stats.shed, &body);
  AppendU64(stats.queue_timeouts, &body);
  AppendU32(static_cast<uint32_t>(stats.pools.size()), &body);
  for (const PoolStatsSnapshot& pool : stats.pools) {
    AppendString(pool.pool, &body);
    AppendU64(pool.version, &body);
    AppendU64(pool.refreshes, &body);
    AppendU64(pool.queries, &body);
    AppendU64(pool.errors, &body);
    AppendU64(pool.shed, &body);
    AppendU64(pool.deadline_misses, &body);
    AppendU64(pool.degraded, &body);
    AppendU64(pool.load_retries, &body);
    AppendF64(pool.latency_mean_ms, &body);
    AppendF64(pool.latency_p50_ms, &body);
    AppendF64(pool.latency_p95_ms, &body);
    AppendF64(pool.latency_ewma_ms, &body);
    AppendF64(pool.registered_at, &body);
    AppendF64(pool.refreshed_at, &body);
    AppendF64(pool.last_rebuild_ms, &body);
  }
  return Frame(FrameType::kStatsReply, request_id, std::move(body));
}

Status DecodeStatsReplyBody(const uint8_t* body, size_t len,
                            ServiceStatsSnapshot* out) {
  Reader reader(body, len);
  uint32_t num_pools = 0;
  if (!reader.ReadU64(&out->not_found) || !reader.ReadU64(&out->in_flight) ||
      !reader.ReadU64(&out->queued) || !reader.ReadU64(&out->admitted) ||
      !reader.ReadU64(&out->shed) || !reader.ReadU64(&out->queue_timeouts) ||
      !reader.ReadU32(&num_pools)) {
    return Malformed("stats reply");
  }
  out->pools.clear();
  for (uint32_t i = 0; i < num_pools; ++i) {
    PoolStatsSnapshot pool;
    if (!reader.ReadString(&pool.pool) || !reader.ReadU64(&pool.version) ||
        !reader.ReadU64(&pool.refreshes) || !reader.ReadU64(&pool.queries) ||
        !reader.ReadU64(&pool.errors) || !reader.ReadU64(&pool.shed) ||
        !reader.ReadU64(&pool.deadline_misses) ||
        !reader.ReadU64(&pool.degraded) ||
        !reader.ReadU64(&pool.load_retries) ||
        !reader.ReadF64(&pool.latency_mean_ms) ||
        !reader.ReadF64(&pool.latency_p50_ms) ||
        !reader.ReadF64(&pool.latency_p95_ms) ||
        !reader.ReadF64(&pool.latency_ewma_ms) ||
        !reader.ReadF64(&pool.registered_at) ||
        !reader.ReadF64(&pool.refreshed_at) ||
        !reader.ReadF64(&pool.last_rebuild_ms)) {
      return Malformed("stats reply");
    }
    out->pools.push_back(std::move(pool));
  }
  if (!reader.AtEnd()) return Malformed("stats reply");
  return Status::Ok();
}

// ---- Refresh ---------------------------------------------------------------

std::string EncodeRefreshFrame(uint32_t request_id,
                               const WireRefresh& refresh) {
  std::string body;
  AppendString(refresh.pool, &body);
  AppendString(refresh.snapshot_path, &body);
  return Frame(FrameType::kRefresh, request_id, std::move(body));
}

Status DecodeRefreshBody(const uint8_t* body, size_t len, WireRefresh* out) {
  Reader reader(body, len);
  if (!reader.ReadString(&out->pool) ||
      !reader.ReadString(&out->snapshot_path) || !reader.AtEnd()) {
    return Malformed("refresh");
  }
  return Status::Ok();
}

std::string EncodeRefreshReplyFrame(uint32_t request_id,
                                    const WireRefreshReply& reply) {
  std::string body;
  AppendStatus(reply.status, &body);
  if (reply.status.ok()) AppendU64(reply.version, &body);
  return Frame(FrameType::kRefreshReply, request_id, std::move(body));
}

Status DecodeRefreshReplyBody(const uint8_t* body, size_t len,
                              WireRefreshReply* out) {
  Reader reader(body, len);
  if (!reader.ReadStatus(&out->status)) return Malformed("refresh reply");
  if (!out->status.ok()) {
    return reader.AtEnd() ? Status::Ok() : Malformed("refresh reply");
  }
  if (!reader.ReadU64(&out->version) || !reader.AtEnd()) {
    return Malformed("refresh reply");
  }
  return Status::Ok();
}

// ---- Shutdown and protocol errors -----------------------------------------

std::string EncodeShutdownFrame(uint32_t request_id) {
  return Frame(FrameType::kShutdown, request_id, std::string());
}

std::string EncodeShutdownReplyFrame(uint32_t request_id) {
  std::string body;
  AppendStatus(Status::Ok(), &body);
  return Frame(FrameType::kShutdownReply, request_id, std::move(body));
}

std::string EncodeErrorFrame(uint32_t request_id, const Status& error) {
  std::string body;
  AppendStatus(error, &body);
  return Frame(FrameType::kError, request_id, std::move(body));
}

Status DecodeErrorBody(const uint8_t* body, size_t len, Status* out) {
  Reader reader(body, len);
  if (!reader.ReadStatus(out) || !reader.AtEnd()) return Malformed("error");
  return Status::Ok();
}

Status DecodeStatusPrefix(const uint8_t* body, size_t len, Status* out) {
  Reader reader(body, len);
  if (!reader.ReadStatus(out)) {
    return Status::InvalidArgument("frame body carries no status prefix");
  }
  return Status::Ok();
}

}  // namespace kboost
