#include "src/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "src/select/greedy.h"  // SteadyNowNanos

namespace kboost {

namespace {

// Wake-pipe byte tags: the event loop dispatches on the byte value, so one
// pipe carries completions, explicit shutdown requests and signal-handler
// shutdown requests without the handler needing any non-signal-safe state.
constexpr char kWakeCompletion = 'c';
constexpr char kWakeShutdown = 'q';
constexpr char kWakeSignal = 'T';

/// How long a blocked reply write may stall on an unresponsive peer before
/// the connection is abandoned. Bounds both worker and event-loop writes so
/// a slow reader can never wedge the serving process.
constexpr int kWriteStallMs = 5000;

/// The wake fd the installed SIGINT/SIGTERM handler writes to; -1 when no
/// server has handlers installed. One server per process may install them.
std::atomic<int> g_signal_wake_fd{-1};

extern "C" void KboostdSignalHandler(int) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = kWakeSignal;
    // write() is async-signal-safe; a full pipe is fine (the loop is
    // already awake) and so is a failed write during teardown races.
    [[maybe_unused]] ssize_t ignored = ::write(fd, &byte, 1);
  }
}

struct sigaction g_old_sigint;
struct sigaction g_old_sigterm;

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

/// Writes the whole buffer to a non-blocking socket, polling for
/// writability on short writes. False on peer failure or a stall longer
/// than kWriteStallMs — the caller abandons the connection.
bool WriteFully(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd p;
      p.fd = fd;
      p.events = POLLOUT;
      p.revents = 0;
      if (::poll(&p, 1, kWriteStallMs) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

/// Readiness multiplexer: epoll on Linux, poll(2) elsewhere. Only read
/// interest is managed here — writes poll their own fd inline (WriteFully),
/// which keeps the event loop's state machine to "who has bytes for me".
class Poller {
 public:
  struct Event {
    int fd;
    bool readable;
  };

#ifdef __linux__
  Poller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~Poller() {
    if (epfd_ >= 0) ::close(epfd_);
  }
  bool ok() const { return epfd_ >= 0; }

  void Add(int fd, bool want_read) {
    struct epoll_event ev = {};
    ev.events = want_read ? static_cast<uint32_t>(EPOLLIN) : 0u;
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }
  void Update(int fd, bool want_read) {
    struct epoll_event ev = {};
    ev.events = want_read ? static_cast<uint32_t>(EPOLLIN) : 0u;
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }
  void Remove(int fd) { ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr); }

  void Wait(int timeout_ms, std::vector<Event>* out) {
    struct epoll_event events[64];
    out->clear();
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      // Hangup/error surface as readable: the subsequent recv() observes
      // EOF or the error and the connection closes cleanly.
      out->push_back({events[i].data.fd, true});
    }
  }

 private:
  int epfd_;
#else
  bool ok() const { return true; }

  void Add(int fd, bool want_read) { interest_[fd] = want_read; }
  void Update(int fd, bool want_read) { interest_[fd] = want_read; }
  void Remove(int fd) { interest_.erase(fd); }

  void Wait(int timeout_ms, std::vector<Event>* out) {
    std::vector<struct pollfd> fds;
    fds.reserve(interest_.size());
    for (const auto& [fd, want_read] : interest_) {
      struct pollfd p;
      p.fd = fd;
      p.events = want_read ? POLLIN : 0;
      p.revents = 0;
      fds.push_back(p);
    }
    out->clear();
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n <= 0) return;
    for (const struct pollfd& p : fds) {
      if (p.revents != 0) out->push_back({p.fd, true});
    }
  }

 private:
  std::map<int, bool> interest_;
#endif
};

/// The event loop's poller, reachable from the connection helpers without
/// threading it through every signature. Only the event-loop thread touches
/// it, and only while EventLoop() is on the stack.
thread_local Poller* t_poller = nullptr;

}  // namespace

/// Per-connection state. The event-loop thread owns `in`, `busy`,
/// `peer_closed` and `want_read`; a worker holding the shared_ptr may only
/// write to the socket (under `write_mutex`) and set `closing`.
struct KboostServer::Connection {
  int fd = -1;
  std::string in;           ///< buffered unparsed bytes
  bool busy = false;        ///< a dispatched request is in flight
  bool peer_closed = false;  ///< recv() saw EOF
  bool want_read = true;    ///< current poller interest
  std::atomic<bool> closing{false};
  Mutex write_mutex;
};

StatusOr<std::unique_ptr<KboostServer>> KboostServer::Start(
    BoostService* service, const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("KboostServer needs a BoostService");
  }
  if (options.num_workers < 1 || options.num_workers > 64) {
    return Status::InvalidArgument("num_workers must be in [1, 64], got " +
                                   std::to_string(options.num_workers));
  }
  if (options.max_dispatch_queue < 1) {
    return Status::InvalidArgument("max_dispatch_queue must be >= 1");
  }
  if (options.max_frame_bytes < 64) {
    return Status::InvalidArgument(
        "max_frame_bytes must be >= 64 (a query frame does not fit below)");
  }
  std::unique_ptr<KboostServer> server(new KboostServer(service, options));
  if (Status s = server->Listen(); !s.ok()) return s;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_ = pipe_fds[1];
  if (Status s = SetNonBlocking(server->wake_read_fd_); !s.ok()) return s;
  if (Status s = SetNonBlocking(server->wake_write_fd_); !s.ok()) return s;

  server->io_thread_ = std::thread([raw = server.get()] { raw->EventLoop(); });
  server->workers_.reserve(options.num_workers);
  for (int i = 0; i < options.num_workers; ++i) {
    server->workers_.emplace_back([raw = server.get()] { raw->WorkerLoop(); });
  }
  return server;
}

KboostServer::~KboostServer() {
  Shutdown();
  if (signal_handlers_installed_) {
    ::sigaction(SIGINT, &g_old_sigint, nullptr);
    ::sigaction(SIGTERM, &g_old_sigterm, nullptr);
    g_signal_wake_fd.store(-1, std::memory_order_release);
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

Status KboostServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bind_address '" + options_.bind_address +
                                   "' is not an IPv4 address");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    const std::string msg = "bind " + options_.bind_address + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(err);
    return err == EADDRINUSE ? Status::Unavailable(msg) : Status::IoError(msg);
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  struct sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return SetNonBlocking(listen_fd_);
}

void KboostServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  const char byte = kWakeShutdown;
  [[maybe_unused]] ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
}

void KboostServer::Shutdown() {
  RequestShutdown();
  Wait();
}

void KboostServer::Wait() {
  MutexLock lock(join_mutex_);
  if (!joined_) {
    if (io_thread_.joinable()) io_thread_.join();
    joined_ = true;
  }
}

Status KboostServer::InstallSignalHandlers() {
  int expected = -1;
  if (!g_signal_wake_fd.compare_exchange_strong(expected, wake_write_fd_,
                                                std::memory_order_acq_rel)) {
    return Status::FailedPrecondition(
        "another KboostServer already installed signal handlers");
  }
  struct sigaction action = {};
  action.sa_handler = KboostdSignalHandler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, &g_old_sigint);
  ::sigaction(SIGTERM, &action, &g_old_sigterm);
  signal_handlers_installed_ = true;
  return Status::Ok();
}

ServerCounters KboostServer::counters() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.active_connections = active_.load(std::memory_order_relaxed);
  c.frames_received = frames_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.queries_dispatched = dispatched_.load(std::memory_order_relaxed);
  c.unavailable_rejects = unavailable_rejects_.load(std::memory_order_relaxed);
  c.admin_frames = admin_frames_.load(std::memory_order_relaxed);
  return c;
}

// ---- Event loop ------------------------------------------------------------

void KboostServer::EventLoop() {
  Poller poller;
  t_poller = &poller;
  poller.Add(listen_fd_, true);
  poller.Add(wake_read_fd_, true);

  int64_t drain_deadline_ns = 0;
  std::vector<Poller::Event> events;
  while (true) {
    // Drain bookkeeping: once draining, the loop only waits for outstanding
    // work; past the drain deadline the solves are cooperatively cancelled.
    int timeout_ms = -1;
    if (draining_.load(std::memory_order_relaxed)) {
      if (outstanding_ == 0) break;
      if (!drain_cancel_.load(std::memory_order_relaxed)) {
        const int64_t left_ns = drain_deadline_ns - SteadyNowNanos();
        if (left_ns <= 0) {
          drain_cancel_.store(true, std::memory_order_release);
          timeout_ms = 100;
        } else {
          timeout_ms = static_cast<int>(left_ns / 1'000'000) + 1;
        }
      } else {
        timeout_ms = 100;
      }
    }

    poller.Wait(timeout_ms, &events);
    for (const Poller::Event& event : events) {
      if (event.fd == wake_read_fd_) {
        char bytes[256];
        ssize_t n;
        while ((n = ::read(wake_read_fd_, bytes, sizeof(bytes))) > 0) {
          for (ssize_t i = 0; i < n; ++i) {
            if (bytes[i] == kWakeSignal) {
              shutdown_requested_.store(true, std::memory_order_release);
            }
          }
        }
        HandleCompletions();
      } else if (event.fd == listen_fd_) {
        AcceptNew();
      } else {
        auto it = connections_.find(event.fd);
        if (it != connections_.end()) {
          // Copy out of the map: ReadFrom may fail/close the connection,
          // erasing the map node a reference to it->second would dangle on.
          std::shared_ptr<Connection> conn = it->second;
          ReadFrom(conn);
        }
      }
    }

    if (shutdown_requested_.load(std::memory_order_acquire) &&
        !draining_.load(std::memory_order_relaxed)) {
      BeginDrain();
      drain_deadline_ns =
          SteadyNowNanos() +
          static_cast<int64_t>(options_.drain_deadline_ms) * 1'000'000;
    }
  }

  // Outstanding work is zero: workers are idle. Stop and join them, then
  // close every connection. No admission slot can be held here — every
  // dispatched request ran Solve to completion (its RAII ticket released)
  // or was answered without entering Solve at all.
  {
    MutexLock lock(queue_mutex_);
    stop_workers_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();

  std::vector<int> open_fds;
  open_fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) open_fds.push_back(fd);
  for (int fd : open_fds) CloseConnection(fd);
  t_poller = nullptr;
  finished_.store(true, std::memory_order_release);
}

void KboostServer::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    t_poller->Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Queued-but-unstarted requests are answered kUnavailable by the workers
  // themselves: they check draining_ after popping, so the queue drains
  // with typed replies without a second bookkeeping path here.
  queue_cv_.NotifyAll();
}

void KboostServer::AcceptNew() {
  while (true) {
    struct sockaddr_in peer = {};
    socklen_t peer_len = sizeof(peer);
    const int fd = ::accept(
        listen_fd_, reinterpret_cast<struct sockaddr*>(&peer), &peer_len);
    if (fd < 0) return;  // EAGAIN or transient accept failure: try later
    if (Status s = SetNonBlocking(fd); !s.ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (connections_.size() >= options_.max_connections) {
      // Typed front-door reject: one kUnavailable error frame, then close.
      unavailable_rejects_.fetch_add(1, std::memory_order_relaxed);
      const std::string frame = EncodeErrorFrame(
          0, Status::Unavailable("connection limit reached"));
      WriteFully(fd, frame.data(), frame.size());
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    connections_[fd] = conn;
    t_poller->Add(fd, true);
  }
}

void KboostServer::ReadFrom(const std::shared_ptr<Connection>& conn) {
  char buffer[65536];
  while (!conn->closing.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->in.append(buffer, static_cast<size_t>(n));
      // Flow control: stop reading once two full frames are buffered so a
      // blasting client cannot grow the buffer unboundedly while a request
      // is in flight.
      if (conn->in.size() >
          2 * (options_.max_frame_bytes + kFrameHeaderBytes)) {
        break;
      }
      continue;
    }
    if (n == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->peer_closed = true;  // hard error: treat as gone
    break;
  }
  ProcessBuffered(conn);
}

void KboostServer::ProcessBuffered(const std::shared_ptr<Connection>& conn) {
  while (!conn->busy && !conn->closing.load(std::memory_order_relaxed)) {
    if (conn->in.size() < kFrameHeaderBytes) break;
    FrameHeader header;
    Status s = DecodeFrameHeader(
        reinterpret_cast<const uint8_t*>(conn->in.data()),
        options_.max_frame_bytes, &header);
    if (!s.ok()) {
      FailConnection(conn, 0, s);
      return;
    }
    if (conn->in.size() < kFrameHeaderBytes + header.body_len) break;
    frames_.fetch_add(1, std::memory_order_relaxed);
    const std::string body =
        conn->in.substr(kFrameHeaderBytes, header.body_len);
    conn->in.erase(0, kFrameHeaderBytes + header.body_len);
    HandleFrame(conn, header, reinterpret_cast<const uint8_t*>(body.data()));
  }
  // A peer that closed mid-frame (or cleanly) with nothing in flight:
  // whatever partial bytes remain are dropped and the connection closes —
  // a clean close, never a crash or a hang.
  if (!conn->busy && conn->peer_closed &&
      connections_.count(conn->fd) != 0) {
    CloseConnection(conn->fd);
    return;
  }
  UpdateReadInterest(conn);
}

void KboostServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                               const FrameHeader& header,
                               const uint8_t* body) {
  const bool draining = draining_.load(std::memory_order_relaxed);
  switch (header.type) {
    case FrameType::kQuery: {
      WireQuery query;
      if (Status s = DecodeQueryBody(body, header.body_len, &query);
          !s.ok()) {
        FailConnection(conn, header.request_id, s);
        return;
      }
      // Check-and-enqueue under ONE lock hold. The old shape (check full,
      // unlock, push under a second hold) was correct only because this loop
      // is the queue's sole producer; one critical section makes the bound
      // a structural invariant instead of a thread-count accident, and
      // halves the dispatch path's lock traffic.
      bool enqueued = false;
      if (!draining) {
        WorkItem item;
        item.conn = conn;
        item.request_id = header.request_id;
        item.query = std::move(query);
        MutexLock lock(queue_mutex_);
        if (queue_.size() < options_.max_dispatch_queue) {
          queue_.push_back(std::move(item));
          enqueued = true;
        }
      }
      if (!enqueued) {
        // The connection-level reject: a typed kUnavailable reply, and the
        // connection stays open for the client's retry-elsewhere logic.
        unavailable_rejects_.fetch_add(1, std::memory_order_relaxed);
        WireQueryReply reply;
        reply.status = Status::Unavailable(
            draining ? "server shutting down" : "dispatch queue full");
        WriteReply(conn, EncodeQueryReplyFrame(header.request_id, reply));
        return;
      }
      // busy/outstanding_ are event-loop-owned; safe to set after the push
      // because completions are only processed by this same thread, later.
      conn->busy = true;
      ++outstanding_;
      dispatched_.fetch_add(1, std::memory_order_relaxed);
      queue_cv_.NotifyOne();
      return;
    }
    case FrameType::kStats: {
      // One lock-free-ish snapshot; cheap enough to answer on the loop.
      admin_frames_.fetch_add(1, std::memory_order_relaxed);
      WriteReply(conn,
                 EncodeStatsReplyFrame(header.request_id, service_->Stats()));
      return;
    }
    case FrameType::kRefresh: {
      admin_frames_.fetch_add(1, std::memory_order_relaxed);
      WireRefresh refresh;
      if (Status s = DecodeRefreshBody(body, header.body_len, &refresh);
          !s.ok()) {
        FailConnection(conn, header.request_id, s);
        return;
      }
      // Same single-hold check-and-enqueue as the query path above.
      bool enqueued = false;
      if (!draining) {
        WorkItem item;
        item.conn = conn;
        item.request_id = header.request_id;
        item.is_refresh = true;
        item.refresh = std::move(refresh);
        MutexLock lock(queue_mutex_);
        if (queue_.size() < options_.max_dispatch_queue) {
          queue_.push_back(std::move(item));
          enqueued = true;
        }
      }
      if (!enqueued) {
        WireRefreshReply reply;
        reply.status = Status::Unavailable(
            draining ? "server shutting down" : "dispatch queue full");
        WriteReply(conn, EncodeRefreshReplyFrame(header.request_id, reply));
        return;
      }
      conn->busy = true;
      ++outstanding_;
      queue_cv_.NotifyOne();
      return;
    }
    case FrameType::kShutdown: {
      admin_frames_.fetch_add(1, std::memory_order_relaxed);
      if (!options_.allow_remote_shutdown) {
        FailConnection(
            conn, header.request_id,
            Status::FailedPrecondition("remote shutdown is disabled"));
        return;
      }
      WriteReply(conn, EncodeShutdownReplyFrame(header.request_id));
      RequestShutdown();
      return;
    }
    case FrameType::kQueryReply:
    case FrameType::kStatsReply:
    case FrameType::kRefreshReply:
    case FrameType::kShutdownReply:
    case FrameType::kError:
      FailConnection(conn, header.request_id,
                     Status::InvalidArgument(
                         "reply/error frames are server-to-client only"));
      return;
  }
}

void KboostServer::FailConnection(const std::shared_ptr<Connection>& conn,
                                  uint32_t request_id, const Status& error) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  WriteReply(conn, EncodeErrorFrame(request_id, error));
  conn->closing.store(true, std::memory_order_release);
  if (!conn->busy && connections_.count(conn->fd) != 0) {
    CloseConnection(conn->fd);
  }
}

void KboostServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  t_poller->Remove(fd);
  ::close(fd);
  connections_.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
}

void KboostServer::HandleCompletions() {
  std::vector<int> done;
  {
    MutexLock lock(completed_mutex_);
    done.swap(completed_fds_);
  }
  for (int fd : done) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    std::shared_ptr<Connection> conn = it->second;
    conn->busy = false;
    --outstanding_;
    if (conn->closing.load(std::memory_order_acquire) || conn->peer_closed) {
      CloseConnection(fd);
      continue;
    }
    // The reply is out; any pipelined frames buffered meanwhile run now.
    ProcessBuffered(conn);
  }
}

void KboostServer::UpdateReadInterest(const std::shared_ptr<Connection>& conn) {
  if (connections_.count(conn->fd) == 0) return;
  const bool want =
      !conn->closing.load(std::memory_order_relaxed) && !conn->peer_closed &&
      conn->in.size() <= 2 * (options_.max_frame_bytes + kFrameHeaderBytes);
  if (want != conn->want_read) {
    conn->want_read = want;
    t_poller->Update(conn->fd, want);
  }
}

// ---- Worker side -----------------------------------------------------------

void KboostServer::WriteReply(const std::shared_ptr<Connection>& conn,
                              const std::string& frame) {
  MutexLock lock(conn->write_mutex);
  if (conn->closing.load(std::memory_order_acquire)) return;
  if (!WriteFully(conn->fd, frame.data(), frame.size())) {
    conn->closing.store(true, std::memory_order_release);
  }
}

void KboostServer::CompleteWork(const std::shared_ptr<Connection>& conn) {
  {
    MutexLock lock(completed_mutex_);
    completed_fds_.push_back(conn->fd);
  }
  const char byte = kWakeCompletion;
  [[maybe_unused]] ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
}

void KboostServer::WorkerLoop() {
  // One context per worker keeps selection scratch warm across requests.
  SolveContext context;
  while (true) {
    WorkItem item;
    {
      MutexLock lock(queue_mutex_);
      while (queue_.empty() && !stop_workers_) queue_cv_.Wait(queue_mutex_);
      if (queue_.empty()) return;  // stop_workers_ with nothing left
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    const bool draining = draining_.load(std::memory_order_acquire);
    if (item.is_refresh) {
      WireRefreshReply reply;
      if (draining) {
        reply.status = Status::Unavailable("server shutting down");
      } else {
        reply.status = service_->RefreshPoolFromSnapshot(
            item.refresh.pool, item.refresh.snapshot_path);
        if (reply.status.ok()) {
          reply.version = service_->PoolVersion(item.refresh.pool);
        }
      }
      WriteReply(item.conn, EncodeRefreshReplyFrame(item.request_id, reply));
    } else {
      WireQueryReply reply;
      if (draining) {
        // Queued when the drain began: answered typed, never solved.
        unavailable_rejects_.fetch_add(1, std::memory_order_relaxed);
        reply.status = Status::Unavailable("server shutting down");
      } else {
        BoostRequest request;
        request.pool = item.query.pool;
        request.k = static_cast<size_t>(item.query.k);
        request.mode = item.query.mode;
        request.num_threads = static_cast<int>(item.query.num_threads);
        request.deadline_ms = item.query.deadline_ms;
        request.cancel = &drain_cancel_;
        StatusOr<BoostResponse> solved = service_->Solve(request, &context);
        if (solved.ok()) {
          const BoostResponse& response = solved.value();
          reply.status = Status::Ok();
          reply.pool_version = response.pool_version;
          reply.degraded = response.degraded;
          reply.solve_seconds = response.solve_seconds;
          reply.best_set = response.result.best_set;
          reply.best_estimate = response.result.best_estimate;
          reply.lb_set = response.result.lb_set;
          reply.lb_mu_hat = response.result.lb_mu_hat;
          reply.lb_delta_hat = response.result.lb_delta_hat;
          reply.delta_set = response.result.delta_set;
          reply.delta_delta_hat = response.result.delta_delta_hat;
          reply.pool_budget = response.result.pool_budget;
          reply.pool_reused = response.result.pool_reused;
          reply.num_samples = response.result.num_samples;
          reply.num_boostable = response.result.num_boostable;
        } else if (solved.status().code() == StatusCode::kCancelled &&
                   drain_cancel_.load(std::memory_order_relaxed)) {
          // Cancelled by the drain deadline, not by the client: report the
          // process-level condition.
          unavailable_rejects_.fetch_add(1, std::memory_order_relaxed);
          reply.status =
              Status::Unavailable("server shutting down (solve cancelled)");
        } else {
          reply.status = solved.status();
        }
      }
      WriteReply(item.conn, EncodeQueryReplyFrame(item.request_id, reply));
    }
    CompleteWork(item.conn);
    item.conn.reset();
  }
}

}  // namespace kboost
