#include "src/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace kboost {

namespace {

Status SetIoTimeout(int fd, uint64_t timeout_ms) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IoError(std::string("setsockopt(timeout): ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

Status WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::DeadlineExceeded("write to server timed out");
    }
    return Status::IoError(std::string("write to server: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

Status ReadAll(int fd, char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("read from server timed out");
    }
    return Status::IoError(std::string("read from server: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<KboostClient>> KboostClient::Connect(
    const std::string& host, uint16_t port, const ClientOptions& options) {
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("host '" + host +
                                   "' is not an IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (Status s = SetIoTimeout(fd, options.io_timeout_ms); !s.ok()) {
    ::close(fd);
    return s;
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string msg = "connect " + host + ":" + std::to_string(port) +
                            ": " + std::strerror(errno);
    ::close(fd);
    return errno == ECONNREFUSED ? Status::Unavailable(msg)
                                 : Status::IoError(msg);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<KboostClient>(new KboostClient(fd, options));
}

KboostClient::~KboostClient() { Close(); }

void KboostClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status KboostClient::RoundTrip(const std::string& frame, uint32_t request_id,
                               FrameType expected, std::string* reply_body) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client connection is closed");
  }
  if (Status s = WriteAll(fd_, frame.data(), frame.size()); !s.ok()) {
    Close();
    return s;
  }
  uint8_t header_bytes[kFrameHeaderBytes];
  if (Status s = ReadAll(fd_, reinterpret_cast<char*>(header_bytes),
                         kFrameHeaderBytes);
      !s.ok()) {
    Close();
    return s;
  }
  FrameHeader header;
  if (Status s =
          DecodeFrameHeader(header_bytes, options_.max_frame_bytes, &header);
      !s.ok()) {
    Close();
    return s;
  }
  reply_body->resize(header.body_len);
  if (header.body_len > 0) {
    if (Status s = ReadAll(fd_, reply_body->data(), header.body_len);
        !s.ok()) {
      Close();
      return s;
    }
  }
  if (header.type == FrameType::kError) {
    // The server is closing this connection; surface its typed reason.
    Status remote = Status::Ok();
    Status decode = DecodeErrorBody(
        reinterpret_cast<const uint8_t*>(reply_body->data()), header.body_len,
        &remote);
    Close();
    return decode.ok() ? remote : decode;
  }
  if (header.type != expected) {
    Close();
    return Status::InvalidArgument(
        "protocol error: unexpected reply frame type " +
        std::to_string(static_cast<int>(header.type)));
  }
  if (header.request_id != request_id) {
    Close();
    return Status::InvalidArgument(
        "protocol error: reply echoes request id " +
        std::to_string(header.request_id) + ", expected " +
        std::to_string(request_id));
  }
  return Status::Ok();
}

StatusOr<WireQueryReply> KboostClient::Query(const WireQuery& query) {
  const uint32_t id = next_request_id_++;
  std::string body;
  if (Status s = RoundTrip(EncodeQueryFrame(id, query), id,
                           FrameType::kQueryReply, &body);
      !s.ok()) {
    return s;
  }
  WireQueryReply reply;
  if (Status s = DecodeQueryReplyBody(
          reinterpret_cast<const uint8_t*>(body.data()), body.size(), &reply);
      !s.ok()) {
    Close();
    return s;
  }
  return reply;
}

StatusOr<ServiceStatsSnapshot> KboostClient::Stats() {
  const uint32_t id = next_request_id_++;
  std::string body;
  if (Status s = RoundTrip(EncodeStatsFrame(id), id, FrameType::kStatsReply,
                           &body);
      !s.ok()) {
    return s;
  }
  ServiceStatsSnapshot stats;
  if (Status s = DecodeStatsReplyBody(
          reinterpret_cast<const uint8_t*>(body.data()), body.size(), &stats);
      !s.ok()) {
    Close();
    return s;
  }
  return stats;
}

StatusOr<WireRefreshReply> KboostClient::Refresh(const WireRefresh& refresh) {
  const uint32_t id = next_request_id_++;
  std::string body;
  if (Status s = RoundTrip(EncodeRefreshFrame(id, refresh), id,
                           FrameType::kRefreshReply, &body);
      !s.ok()) {
    return s;
  }
  WireRefreshReply reply;
  if (Status s = DecodeRefreshReplyBody(
          reinterpret_cast<const uint8_t*>(body.data()), body.size(), &reply);
      !s.ok()) {
    Close();
    return s;
  }
  return reply;
}

Status KboostClient::Shutdown() {
  const uint32_t id = next_request_id_++;
  std::string body;
  if (Status s = RoundTrip(EncodeShutdownFrame(id), id,
                           FrameType::kShutdownReply, &body);
      !s.ok()) {
    return s;
  }
  Status remote = Status::Ok();
  if (Status s = DecodeStatusPrefix(
          reinterpret_cast<const uint8_t*>(body.data()), body.size(),
          &remote);
      !s.ok()) {
    Close();
    return s;
  }
  return remote;
}

}  // namespace kboost
