#ifndef KBOOST_NET_CLIENT_H_
#define KBOOST_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/net/wire.h"
#include "src/serve/service_stats.h"
#include "src/util/status.h"

namespace kboost {

struct ClientOptions {
  /// Socket send/receive timeout. A remote solve on a large pool can take
  /// seconds, so this must comfortably exceed the request's own deadline.
  uint64_t io_timeout_ms = 30000;
  /// Decoder bound on reply frames (mirror of the server-side bound).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Blocking kboostd client: one TCP connection, one request in flight at a
/// time (the server's per-connection contract). Not thread-safe — share a
/// client across threads by giving each thread its own.
///
/// Two error channels, deliberately distinct:
///   - The StatusOr wrapper reports TRANSPORT failures only: connect/write/
///     read errors, timeouts, protocol violations, and server-sent error
///     frames (which also mean the server is closing this connection).
///   - A successfully transported QueryReply/RefreshReply carries the remote
///     operation's own typed Status in its `status` field — a remote
///     DeadlineExceeded or kUnavailable shed is a *successful* round trip
///     whose payload says the solve did not happen. Callers classifying
///     overload outcomes (the loadgen gate) read reply.status, not the
///     wrapper.
class KboostClient {
 public:
  /// Connects (IPv4, blocking with io_timeout_ms) to host:port.
  static StatusOr<std::unique_ptr<KboostClient>> Connect(
      const std::string& host, uint16_t port,
      const ClientOptions& options = ClientOptions());

  ~KboostClient();
  KboostClient(const KboostClient&) = delete;
  KboostClient& operator=(const KboostClient&) = delete;

  /// Round-trips one query. See the class comment for the error split.
  StatusOr<WireQueryReply> Query(const WireQuery& query);

  /// Fetches the service-wide stats snapshot.
  StatusOr<ServiceStatsSnapshot> Stats();

  /// Asks the server to hot-swap a pool from a server-local snapshot path.
  StatusOr<WireRefreshReply> Refresh(const WireRefresh& refresh);

  /// Requests graceful server shutdown (if the server allows remote
  /// shutdown). Ok means the server acknowledged and is now draining.
  Status Shutdown();

  /// Closes the connection; subsequent calls return FailedPrecondition.
  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit KboostClient(int fd, const ClientOptions& options)
      : fd_(fd), options_(options) {}

  /// Writes `frame`, reads exactly one reply frame, verifies the echoed
  /// request id and that the type is `expected` (an error frame instead
  /// surfaces its typed payload status and closes the connection).
  Status RoundTrip(const std::string& frame, uint32_t request_id,
                   FrameType expected, std::string* reply_body);

  int fd_ = -1;
  const ClientOptions options_;
  uint32_t next_request_id_ = 1;
};

}  // namespace kboost

#endif  // KBOOST_NET_CLIENT_H_
