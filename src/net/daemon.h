#ifndef KBOOST_NET_DAEMON_H_
#define KBOOST_NET_DAEMON_H_

namespace kboost {

/// The `serve` command shared by the kboostd binary and `kboost_cli serve`:
/// loads a graph and pool snapshots, builds a BoostService with the given
/// overload knobs, starts a KboostServer on --listen, installs SIGINT/
/// SIGTERM handlers and blocks until graceful shutdown completes. Flags
/// start at argv[flag_start] (1 for kboostd, 2 for the cli subcommand).
/// Returns the process exit code: 0 after a clean drain, 1 on runtime
/// failure, 2 on a flag error.
int RunServeCommand(int argc, char** argv, int flag_start);

/// The `query` command (`kboost_cli query`): connects to a running kboostd
/// with the blocking client, round-trips one query and prints the typed
/// outcome. Exit 0 when the remote solve succeeded, 1 when it answered a
/// typed non-OK status or the transport failed, 2 on a flag error.
int RunQueryCommand(int argc, char** argv, int flag_start);

}  // namespace kboost

#endif  // KBOOST_NET_DAEMON_H_
