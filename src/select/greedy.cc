#include "src/select/greedy.h"

#include <queue>

#include "src/util/logging.h"

namespace kboost {

namespace {

/// A heap entry is *fresh* when recorded at the current epoch (one epoch per
/// commit): its gain is exact, so the top fresh entry is a true argmax. Stale
/// entries are refreshed through CurrentGain and re-pushed — classic CELF for
/// pull oracles, an O(1) cache read for push oracles.
struct Entry {
  uint64_t gain;
  NodeId node;
  uint32_t epoch;
};

struct EntryLess {
  bool operator()(const Entry& a, const Entry& b) const {
    return a.gain < b.gain || (a.gain == b.gain && a.node > b.node);
  }
};

}  // namespace

namespace {

/// Stamps the stop reason into the result; returns true when tripped.
bool StampStop(const StopToken* stop, GreedyResult* result) {
  if (stop == nullptr || !stop->stopped()) return false;
  result->cancelled = stop->cancelled();
  result->deadline_exceeded = stop->deadline_exceeded();
  return true;
}

}  // namespace

GreedyResult RunLazyGreedy(SelectionOracle& oracle, size_t k,
                           const std::vector<uint8_t>* excluded,
                           StopToken* stop) {
  GreedyResult result;
  const size_t n = oracle.num_candidates();
  if (k == 0 || n == 0) return result;
  KB_DCHECK(excluded == nullptr || excluded->size() == n);

  std::priority_queue<Entry, std::vector<Entry>, EntryLess> heap;
  for (NodeId v = 0; v < n; ++v) {
    if (excluded != nullptr && (*excluded)[v]) continue;
    const uint64_t gain = oracle.InitialGain(v);
    if (gain > 0) heap.push(Entry{gain, v, 0});
  }

  uint32_t epoch = 0;
  std::vector<uint8_t> chosen(n, 0);
  std::vector<NodeId> touched;
  while (result.selected.size() < k && !heap.empty()) {
    if (stop != nullptr && stop->ShouldStop()) {
      StampStop(stop, &result);
      break;
    }
    const Entry top = heap.top();
    heap.pop();
    if (chosen[top.node]) continue;
    if (top.epoch != epoch) {
      const uint64_t gain = oracle.CurrentGain(top.node);
      if (gain > 0) heap.push(Entry{gain, top.node, epoch});
      continue;
    }
    // Fresh maximum: commit. Push-model oracles report the candidates whose
    // gains moved; their settled values enter the heap at the new epoch.
    chosen[top.node] = 1;
    result.selected.push_back(top.node);
    result.gains.push_back(top.gain);
    result.total_gain += top.gain;
    touched.clear();
    oracle.Commit(top.node, &touched);
    // A push-model oracle's Commit fans out over many graphs and polls the
    // token every stride; when it tripped mid-pick its gain table may be
    // partially settled, so stop HERE — the partial result is discarded by
    // the serving layer, never served.
    if (StampStop(stop, &result)) break;
    ++epoch;
    for (NodeId v : touched) {
      if (chosen[v]) continue;
      if (excluded != nullptr && (*excluded)[v]) continue;
      const uint64_t gain = oracle.CurrentGain(v);
      if (gain > 0) heap.push(Entry{gain, v, epoch});
    }
  }
  return result;
}

}  // namespace kboost
