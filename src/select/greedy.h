#ifndef KBOOST_SELECT_GREEDY_H_
#define KBOOST_SELECT_GREEDY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace kboost {

/// Absolute steady-clock time in nanoseconds — the representation request
/// deadlines travel in (steady so a wall-clock step never expires or revives
/// a request; absolute so queue wait and solve time draw down one budget).
inline int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Cooperative stop signal shared by a solve's greedy loop and its oracle's
/// parallel re-evaluation workers: one request's cancel flag and absolute
/// deadline, plus the tripped state and its reason. The greedy loop polls
/// ShouldStop() once per round; a push-model oracle whose single Commit can
/// be huge (the Δ̂ re-evaluation fan-out) polls it again every bounded stride
/// of its per-pick scan, so even a one-pick solve stops promptly. Once
/// tripped, a token stays tripped — workers observe it with one relaxed load
/// (stopped()) and drain without doing further work.
///
/// The first reason to trip wins and is stable; reading the clock costs a
/// vDSO call, so per-item code should gate ShouldStop() behind a stride and
/// use stopped() in between.
class StopToken {
 public:
  StopToken() = default;
  /// `cancel` may be null; `deadline_ns` is absolute SteadyNowNanos() time,
  /// 0 = no deadline. The flag must outlive the token.
  StopToken(const std::atomic<bool>* cancel, int64_t deadline_ns)
      : cancel_(cancel), deadline_ns_(deadline_ns) {}

  /// Full poll: the tripped flag, then the cancel flag, then the clock.
  bool ShouldStop() {
    if (stopped()) return true;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      Trip(kCancelled);
      return true;
    }
    if (deadline_ns_ > 0 && SteadyNowNanos() >= deadline_ns_) {
      Trip(kDeadline);
      return true;
    }
    return false;
  }

  /// Already tripped? One relaxed load — cheap enough for per-item checks.
  bool stopped() const { return why_.load(std::memory_order_relaxed) != 0; }
  bool cancelled() const {
    return why_.load(std::memory_order_relaxed) == kCancelled;
  }
  bool deadline_exceeded() const {
    return why_.load(std::memory_order_relaxed) == kDeadline;
  }
  bool has_deadline() const { return deadline_ns_ > 0; }

 private:
  static constexpr int kCancelled = 1;
  static constexpr int kDeadline = 2;

  // Mutex-free by design: the token is one sticky tri-state (why_) plus two
  // immutable-after-construction fields, shared between the greedy loop and
  // the oracle's ParallelFor workers. The CAS in Trip() is the only write
  // that races, and "first reason wins" is exactly its semantics — nothing
  // here guards other data, so there is no capability to annotate.
  void Trip(int reason) {
    int expected = 0;  // first reason wins; later trips keep it stable
    why_.compare_exchange_strong(expected, reason, std::memory_order_relaxed);
  }

  const std::atomic<bool>* cancel_ = nullptr;
  int64_t deadline_ns_ = 0;
  std::atomic<int> why_{0};
};

/// The coverage-oracle concept behind every greedy maximization in the
/// library: a candidate universe [0, num_candidates) where each candidate has
/// a non-negative integer marginal gain against the current selection.
///
/// Two update disciplines are supported by the same selection loop:
///
/// - *Pull* (CELF): `Commit` leaves `touched` empty; the picker re-evaluates
///   stale heap entries lazily through `CurrentGain` when they surface. Sound
///   whenever gains are non-increasing as the selection grows (submodular
///   objectives — coverage over RR-sets or critical sets).
/// - *Push*: `Commit` updates its cached gains eagerly and reports the
///   candidates whose gain changed via `touched`; the picker re-inserts those
///   with fresh values. Required when gains can move both ways (the Δ̂
///   objective, whose marginal gains are not monotone in the boost set).
///   Correctness requires every gain *increase* to be reported — an
///   unreported increase leaves only under-valued heap entries for that
///   candidate, so a lesser candidate could commit ahead of it. Decreases
///   may go unreported: a stale over-valued entry surfaces, is refreshed
///   through `CurrentGain`, and re-enters at its true value (DeltaOracle
///   exploits this by reporting only frontier events — new criticals and
///   per-activation debits — rather than whole critical sets).
class SelectionOracle {
 public:
  virtual ~SelectionOracle() = default;

  /// Size of the candidate universe (candidate ids are node ids).
  virtual size_t num_candidates() const = 0;
  /// Marginal gain of v against the empty selection (heap seeding).
  virtual uint64_t InitialGain(NodeId v) const = 0;
  /// Exact marginal gain of v against the current selection. Must be cheap
  /// for push-model oracles (a cached read); pull-model oracles may scan.
  virtual uint64_t CurrentGain(NodeId v) const = 0;
  /// Applies pick v to the selection. Push-model oracles append every
  /// candidate whose cached gain changed; pull-model oracles leave `touched`
  /// untouched. Duplicates in `touched` are tolerated.
  virtual void Commit(NodeId v, std::vector<NodeId>* touched) = 0;
};

/// Outcome of RunLazyGreedy: picks in selection order plus the marginal gain
/// each pick realized. `gains[i]` is exact, so prefix objective values (and
/// therefore nested-budget answers for submodular objectives) fall out of one
/// run: objective(selected[0..i]) = Σ_{j≤i} gains[j].
struct GreedyResult {
  std::vector<NodeId> selected;
  std::vector<uint64_t> gains;  ///< marginal gain of each pick, same order
  uint64_t total_gain = 0;
  /// Set when the loop stopped because the stop token tripped on the
  /// request's cancel flag; `selected` holds the picks committed before the
  /// trip was observed (the last pick may be partially committed when the
  /// oracle tripped the token mid-Commit — callers discard on stop).
  bool cancelled = false;
  /// Set when the loop stopped because the stop token's deadline passed;
  /// same partial-result caveats as `cancelled`.
  bool deadline_exceeded = false;
};

/// The one lazy-greedy (CELF) selection loop: up to k rounds, each committing
/// a candidate of maximum current marginal gain. Ties break toward the
/// smaller node id, making the selection deterministic and independent of
/// heap insertion order (and hence of oracle-internal thread counts).
/// Candidates flagged in `excluded` (n-sized bitmap, may be null) and
/// candidates with zero gain are never picked; the loop stops early when no
/// positive-gain candidate remains. `stop`, if non-null, is polled each loop
/// iteration AND after every Commit (a push-model oracle may trip it
/// mid-pick from its parallel scan); when it trips the loop returns the
/// partial result with `cancelled` or `deadline_exceeded` set.
GreedyResult RunLazyGreedy(SelectionOracle& oracle, size_t k,
                           const std::vector<uint8_t>* excluded = nullptr,
                           StopToken* stop = nullptr);

}  // namespace kboost

#endif  // KBOOST_SELECT_GREEDY_H_
