#ifndef KBOOST_SELECT_GREEDY_H_
#define KBOOST_SELECT_GREEDY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace kboost {

/// The coverage-oracle concept behind every greedy maximization in the
/// library: a candidate universe [0, num_candidates) where each candidate has
/// a non-negative integer marginal gain against the current selection.
///
/// Two update disciplines are supported by the same selection loop:
///
/// - *Pull* (CELF): `Commit` leaves `touched` empty; the picker re-evaluates
///   stale heap entries lazily through `CurrentGain` when they surface. Sound
///   whenever gains are non-increasing as the selection grows (submodular
///   objectives — coverage over RR-sets or critical sets).
/// - *Push*: `Commit` updates its cached gains eagerly and reports the
///   candidates whose gain changed via `touched`; the picker re-inserts those
///   with fresh values. Required when gains can move both ways (the Δ̂
///   objective, whose marginal gains are not monotone in the boost set).
///   Correctness requires every gain *increase* to be reported — an
///   unreported increase leaves only under-valued heap entries for that
///   candidate, so a lesser candidate could commit ahead of it. Decreases
///   may go unreported: a stale over-valued entry surfaces, is refreshed
///   through `CurrentGain`, and re-enters at its true value (DeltaOracle
///   exploits this by reporting only frontier events — new criticals and
///   per-activation debits — rather than whole critical sets).
class SelectionOracle {
 public:
  virtual ~SelectionOracle() = default;

  /// Size of the candidate universe (candidate ids are node ids).
  virtual size_t num_candidates() const = 0;
  /// Marginal gain of v against the empty selection (heap seeding).
  virtual uint64_t InitialGain(NodeId v) const = 0;
  /// Exact marginal gain of v against the current selection. Must be cheap
  /// for push-model oracles (a cached read); pull-model oracles may scan.
  virtual uint64_t CurrentGain(NodeId v) const = 0;
  /// Applies pick v to the selection. Push-model oracles append every
  /// candidate whose cached gain changed; pull-model oracles leave `touched`
  /// untouched. Duplicates in `touched` are tolerated.
  virtual void Commit(NodeId v, std::vector<NodeId>* touched) = 0;
};

/// Outcome of RunLazyGreedy: picks in selection order plus the marginal gain
/// each pick realized. `gains[i]` is exact, so prefix objective values (and
/// therefore nested-budget answers for submodular objectives) fall out of one
/// run: objective(selected[0..i]) = Σ_{j≤i} gains[j].
struct GreedyResult {
  std::vector<NodeId> selected;
  std::vector<uint64_t> gains;  ///< marginal gain of each pick, same order
  uint64_t total_gain = 0;
  /// Set when the loop stopped because `cancel` was raised; `selected` holds
  /// the picks committed before the flag was observed.
  bool cancelled = false;
};

/// The one lazy-greedy (CELF) selection loop: up to k rounds, each committing
/// a candidate of maximum current marginal gain. Ties break toward the
/// smaller node id, making the selection deterministic and independent of
/// heap insertion order (and hence of oracle-internal thread counts).
/// Candidates flagged in `excluded` (n-sized bitmap, may be null) and
/// candidates with zero gain are never picked; the loop stops early when no
/// positive-gain candidate remains. `cancel`, if non-null, is polled each
/// loop iteration (the request-cancellation hook of the serving layer); when
/// it reads true the loop returns the partial result with `cancelled` set.
GreedyResult RunLazyGreedy(SelectionOracle& oracle, size_t k,
                           const std::vector<uint8_t>* excluded = nullptr,
                           const std::atomic<bool>* cancel = nullptr);

}  // namespace kboost

#endif  // KBOOST_SELECT_GREEDY_H_
