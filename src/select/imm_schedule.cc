#include "src/select/imm_schedule.h"

#include <cmath>

#include "src/util/logging.h"

namespace kboost {

ImmScheduleResult RunImmSchedule(const ImmBounds& bounds,
                                 const ImmScheduleCallbacks& callbacks) {
  KB_CHECK(bounds.epsilon > 0.0 && bounds.epsilon < 1.0);
  KB_CHECK(bounds.ell > 0.0);
  KB_CHECK(bounds.n >= 2);

  ImmScheduleResult result;
  const double n = static_cast<double>(bounds.n);
  const double eps_prime = bounds.EpsilonPrime();
  const double lambda_prime = bounds.LambdaPrime();

  double lb = 1.0;
  const int levels = bounds.NumSearchLevels();
  for (int i = 1; i <= levels; ++i) {
    ++result.levels_used;
    const double x = n / std::pow(2.0, i);
    const size_t theta_i = static_cast<size_t>(std::ceil(lambda_prime / x));
    result.num_samples = callbacks.ensure_samples(theta_i);
    const double frac = callbacks.select_coverage();
    if (n * frac >= (1.0 + eps_prime) * x) {
      lb = n * frac / (1.0 + eps_prime);
      break;
    }
  }
  result.opt_lower_bound = lb;

  const size_t theta =
      static_cast<size_t>(std::ceil(bounds.LambdaStar() / lb));
  result.num_samples = callbacks.ensure_samples(theta);
  return result;
}

}  // namespace kboost
