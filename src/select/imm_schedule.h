#ifndef KBOOST_SELECT_IMM_SCHEDULE_H_
#define KBOOST_SELECT_IMM_SCHEDULE_H_

#include <cstddef>
#include <functional>

#include "src/util/bounds.h"

namespace kboost {

/// Callbacks that let the generic IMM sampling schedule drive any
/// sample-and-cover maximization: classic RR-sets (influence maximization),
/// marginal RR-sets (MoreSeeds) or PRR-graph critical sets (PRR-Boost's
/// lower-bound maximization).
struct ImmScheduleCallbacks {
  /// Grows the sample pool to at least `target` samples; returns the new
  /// pool size.
  std::function<size_t(size_t target)> ensure_samples;
  /// Greedy-selects k candidates on the current pool and returns the covered
  /// fraction of *all* samples.
  std::function<double()> select_coverage;
};

/// Outcome of the sampling schedule.
struct ImmScheduleResult {
  size_t num_samples = 0;    ///< final pool size θ
  double opt_lower_bound = 0;///< LB on OPT established by the search phase
  int levels_used = 0;       ///< geometric-search iterations executed
};

/// IMM sampling phase (Tang et al., SIGMOD'15, Alg. 3): geometric search for
/// a lower bound on OPT with λ'(ε′)-sized pools, then a final pool of
/// λ*/LB samples. Callers pass the already-adjusted ℓ (e.g. ℓ(1+log3/log n)
/// for PRR-Boost per its Algorithm 2).
ImmScheduleResult RunImmSchedule(const ImmBounds& bounds,
                                 const ImmScheduleCallbacks& callbacks);

}  // namespace kboost

#endif  // KBOOST_SELECT_IMM_SCHEDULE_H_
