#include "src/graph/generators.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/logging.h"

namespace kboost {

GraphBuilder BuildErdosRenyi(NodeId num_nodes, size_t num_edges, Rng& rng) {
  KB_CHECK(num_nodes >= 2);
  const size_t max_edges =
      static_cast<size_t>(num_nodes) * (num_nodes - 1);
  KB_CHECK(num_edges <= max_edges)
      << "m=" << num_edges << " exceeds n(n-1)=" << max_edges;
  GraphBuilder builder(num_nodes);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (seen.size() < num_edges) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (u == v) continue;
    uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) builder.AddEdge(u, v);
  }
  return builder;
}

GraphBuilder BuildPreferentialAttachment(NodeId num_nodes, int out_degree,
                                         double reciprocity, Rng& rng) {
  return BuildPreferentialAttachment(num_nodes,
                                     static_cast<double>(out_degree),
                                     reciprocity, rng);
}

GraphBuilder BuildPreferentialAttachment(NodeId num_nodes, double out_degree,
                                         double reciprocity, Rng& rng) {
  KB_CHECK(num_nodes >= 2);
  KB_CHECK(out_degree >= 0.5);
  KB_CHECK(reciprocity >= 0.0 && reciprocity <= 1.0);
  GraphBuilder builder(num_nodes);

  // `attractors` holds one entry per (in-degree + 1) unit of attraction, so a
  // uniform draw from it realizes preferential attachment without a heap.
  std::vector<NodeId> attractors;
  attractors.reserve(static_cast<size_t>(
      num_nodes * (out_degree + 1.5)));
  attractors.push_back(0);  // node 0 starts with baseline attraction

  const int whole = static_cast<int>(out_degree);
  const double frac = out_degree - whole;
  for (NodeId u = 1; u < num_nodes; ++u) {
    int want = whole + (rng.NextBernoulli(frac) ? 1 : 0);
    const int fanout = static_cast<int>(std::min<NodeId>(
        static_cast<NodeId>(std::max(want, 1)), u));
    std::unordered_set<NodeId> chosen;
    chosen.reserve(fanout * 2);
    int guard = 0;
    while (static_cast<int>(chosen.size()) < fanout && guard < fanout * 64) {
      NodeId target = attractors[rng.NextBounded(attractors.size())];
      ++guard;
      if (target == u) continue;
      if (!chosen.insert(target).second) continue;
      builder.AddEdge(u, target);
      attractors.push_back(target);
      if (rng.NextBernoulli(reciprocity)) {
        builder.AddEdge(target, u);
        attractors.push_back(u);
      }
    }
    attractors.push_back(u);  // baseline attraction for the newcomer
  }
  builder.DeduplicateEdges();
  return builder;
}

GraphBuilder BuildWattsStrogatz(NodeId num_nodes, int k, double rewire_prob,
                                Rng& rng) {
  KB_CHECK(num_nodes >= 3);
  KB_CHECK(k >= 1 && static_cast<NodeId>(k) < num_nodes);
  KB_CHECK(rewire_prob >= 0.0 && rewire_prob <= 1.0);
  GraphBuilder builder(num_nodes);
  std::unordered_set<uint64_t> seen;
  auto add_unique = [&](NodeId u, NodeId v) {
    if (u == v) return false;
    uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) return false;
    builder.AddEdge(u, v);
    return true;
  };
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (int j = 1; j <= k; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % num_nodes);
      if (rng.NextBernoulli(rewire_prob)) {
        // Rewire to a uniform random target, retrying over collisions.
        for (int attempt = 0; attempt < 32; ++attempt) {
          NodeId w = static_cast<NodeId>(rng.NextBounded(num_nodes));
          if (add_unique(u, w)) break;
        }
      } else {
        add_unique(u, v);
      }
    }
  }
  return builder;
}

GraphBuilder BuildDirectedPath(NodeId num_nodes) {
  KB_CHECK(num_nodes >= 1);
  GraphBuilder builder(num_nodes);
  for (NodeId u = 0; u + 1 < num_nodes; ++u) builder.AddEdge(u, u + 1);
  return builder;
}

GraphBuilder BuildOutStar(NodeId num_leaves) {
  GraphBuilder builder(num_leaves + 1);
  for (NodeId leaf = 1; leaf <= num_leaves; ++leaf) builder.AddEdge(0, leaf);
  return builder;
}

}  // namespace kboost
