#include "src/graph/probability_models.h"

#include "src/util/logging.h"

namespace kboost {

void ApplyProbabilityModel(GraphBuilder& builder, ProbabilityModel model,
                           const ProbabilityModelParams& params, Rng& rng) {
  switch (model) {
    case ProbabilityModel::kConstant:
      builder.AssignConstantProbability(params.constant_p);
      break;
    case ProbabilityModel::kTrivalency:
      builder.AssignTrivalencyProbabilities(rng);
      break;
    case ProbabilityModel::kWeightedCascade:
      builder.AssignWeightedCascadeProbabilities();
      break;
    case ProbabilityModel::kExponential:
      builder.AssignExponentialProbabilities(params.mean_p, rng);
      break;
  }
  builder.SetBoostWithBeta(params.beta);
}

}  // namespace kboost
