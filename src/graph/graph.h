#ifndef KBOOST_GRAPH_GRAPH_H_
#define KBOOST_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace kboost {

/// Node identifier. Graphs are limited to ~4.2 billion nodes, which covers
/// every social network in the paper with room to spare while halving the
/// memory footprint relative to 64-bit ids.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An immutable directed graph in compressed-sparse-row form with *two*
/// influence probabilities per edge: the base probability `p` and the
/// boosted probability `p_boost` (`p'` in the paper, used when the edge's
/// head is a boosted node). Both out-adjacency (forward diffusion, used by
/// the Monte-Carlo simulators) and in-adjacency (reverse sampling, used by
/// RR-sets and PRR-graphs) are materialized.
///
/// Build instances with GraphBuilder; this class never mutates.
class DirectedGraph {
 public:
  /// One outgoing edge as seen from its tail.
  struct OutEdge {
    NodeId to;
    float p;
    float p_boost;
  };
  /// One incoming edge as seen from its head.
  struct InEdge {
    NodeId from;
    float p;
    float p_boost;
  };

  /// Integer draw thresholds for one incoming edge: t = ceil(p · 2^53).
  /// For a 53-bit uniform draw x (NextU64() >> 11), `x < t` is bit-identical
  /// to `NextDouble() < p` — the reverse samplers compare raw integers on
  /// their hot loops instead of converting to double per edge.
  struct InThreshold {
    uint64_t p;
    uint64_t p_boost;
  };

  DirectedGraph() = default;

  /// Number of nodes n. Node ids are [0, n).
  size_t num_nodes() const { return num_nodes_; }
  /// Number of directed edges m.
  size_t num_edges() const { return out_edges_.size(); }

  /// Outgoing edges of u, contiguous, sorted by target id.
  std::span<const OutEdge> OutEdges(NodeId u) const {
    return {out_edges_.data() + out_offsets_[u],
            out_offsets_[u + 1] - out_offsets_[u]};
  }
  /// Incoming edges of v, contiguous, sorted by source id.
  std::span<const InEdge> InEdges(NodeId v) const {
    return {in_edges_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }
  /// Draw thresholds parallel to InEdges(v).
  std::span<const InThreshold> InThresholds(NodeId v) const {
    return {in_thresholds_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  /// Global index of u's first outgoing edge in edge-array order. Together
  /// with OutEdges(u) this gives every edge a stable id in [0, m), which the
  /// simulators hash to realize coupled random worlds.
  size_t OutOffset(NodeId u) const { return out_offsets_[u]; }
  size_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Mean of base probabilities over all edges (the "average influence
  /// probability" statistic of Table 1). Returns 0 for edgeless graphs.
  double AverageProbability() const;

  /// Returns a copy of this graph with boosted probabilities reassigned as
  /// p' = 1 - (1-p)^beta — the paper's boosting-parameter model (Sec. VII).
  /// Requires beta >= 1.
  DirectedGraph WithBoostBeta(double beta) const;

  /// Approximate heap footprint in bytes (adjacency arrays + offsets).
  size_t MemoryBytes() const;

 private:
  friend class GraphBuilder;

  size_t num_nodes_ = 0;
  std::vector<size_t> out_offsets_;  // size n+1
  std::vector<OutEdge> out_edges_;   // size m, grouped by source
  std::vector<size_t> in_offsets_;   // size n+1
  std::vector<InEdge> in_edges_;     // size m, grouped by target
  std::vector<InThreshold> in_thresholds_;  // size m, parallel to in_edges_
};

}  // namespace kboost

#endif  // KBOOST_GRAPH_GRAPH_H_
