#ifndef KBOOST_GRAPH_GENERATORS_H_
#define KBOOST_GRAPH_GENERATORS_H_

#include "src/graph/graph_builder.h"
#include "src/util/rng.h"

namespace kboost {

/// Topology generators. Each returns a GraphBuilder holding edges with
/// unassigned probabilities (p = p' = 0) so that a probability model can be
/// applied before Build(). All generators are deterministic given the Rng.

/// G(n, m): m distinct directed edges chosen uniformly (no self-loops).
/// Requires m <= n*(n-1).
GraphBuilder BuildErdosRenyi(NodeId num_nodes, size_t num_edges, Rng& rng);

/// Directed preferential attachment. Nodes arrive one at a time; each new
/// node emits `out_degree` edges whose targets are chosen proportionally to
/// (in-degree + 1) among earlier nodes. With probability `reciprocity` the
/// reverse edge is added too — social graphs have heavy reciprocation.
/// The result has a power-law in-degree tail, the property that drives
/// PRR-graph size skew in the paper's datasets.
GraphBuilder BuildPreferentialAttachment(NodeId num_nodes, int out_degree,
                                         double reciprocity, Rng& rng);

/// Fractional-fanout variant: each node emits floor(out_degree) edges plus
/// one more with probability frac(out_degree), so the expected edge count
/// matches num_nodes * out_degree * (1 + reciprocity) without integer
/// rounding loss — important for stand-ins near the percolation threshold.
GraphBuilder BuildPreferentialAttachment(NodeId num_nodes, double out_degree,
                                         double reciprocity, Rng& rng);

/// Watts–Strogatz small world: directed ring lattice where each node points
/// to its k nearest clockwise neighbours, each edge rewired to a uniform
/// random target with probability `rewire_prob`.
GraphBuilder BuildWattsStrogatz(NodeId num_nodes, int k, double rewire_prob,
                                Rng& rng);

/// Simple deterministic shapes used heavily in unit tests.
GraphBuilder BuildDirectedPath(NodeId num_nodes);
/// Star with edges hub -> leaf for every leaf.
GraphBuilder BuildOutStar(NodeId num_leaves);

}  // namespace kboost

#endif  // KBOOST_GRAPH_GENERATORS_H_
