#include "src/graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/graph/graph_builder.h"

namespace kboost {

Status SaveEdgeList(const DirectedGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << graph.num_nodes() << " " << graph.num_edges() << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const DirectedGraph::OutEdge& e : graph.OutEdges(u)) {
      out << u << " " << e.to << " " << e.p << " " << e.p_boost << "\n";
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<DirectedGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  std::string line;
  // Header. Trailing '\r' is stripped so CRLF (Windows-edited) edge lists
  // parse identically to LF ones.
  size_t n = 0, m = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream header(line);
    if (!(header >> n >> m)) {
      return Status::InvalidArgument("bad header line: " + line);
    }
    break;
  }
  if (n == 0) return Status::InvalidArgument("empty or headerless file");
  if (n > static_cast<size_t>(kInvalidNode)) {
    return Status::OutOfRange("too many nodes for 32-bit ids");
  }

  GraphBuilder builder(static_cast<NodeId>(n));
  size_t read = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint64_t from, to;
    double p = 0.0, pb = 0.0;
    bool pb_given = false;
    if (!(ls >> from >> to)) {
      return Status::InvalidArgument("bad edge line: " + line);
    }
    // The probability tokens are optional (p defaults to 0, p_boost to p),
    // but a token that is PRESENT must parse: `ls >> p` failing on "foo"
    // would otherwise leave p at 0.0, pass the range check below and
    // silently load a corrupted graph. Same for p_boost, and anything after
    // the fourth token is rejected as trailing garbage. Presence is tracked
    // with a bool — not a negative sentinel — so an explicitly negative
    // p_boost reaches the range check below instead of being coerced to p.
    if (ls >> std::ws; !ls.eof()) {
      if (!(ls >> p)) {
        return Status::InvalidArgument("unparseable probability on edge line: " +
                                       line);
      }
      if (ls >> std::ws; !ls.eof()) {
        if (!(ls >> pb)) {
          return Status::InvalidArgument(
              "unparseable boost probability on edge line: " + line);
        }
        pb_given = true;
        if (ls >> std::ws; !ls.eof()) {
          return Status::InvalidArgument("trailing garbage on edge line: " +
                                         line);
        }
      }
    }
    if (!pb_given) pb = p;
    if (from >= n || to >= n) {
      return Status::OutOfRange("edge endpoint out of range: " + line);
    }
    if (p < 0.0 || p > 1.0 || pb < p || pb > 1.0) {
      return Status::InvalidArgument("bad probabilities: " + line);
    }
    builder.AddEdge(static_cast<NodeId>(from), static_cast<NodeId>(to), p, pb);
    ++read;
  }
  if (m != 0 && read != m) {
    return Status::InvalidArgument("header declares " + std::to_string(m) +
                                   " edges but file has " +
                                   std::to_string(read));
  }
  return std::move(builder).Build();
}

}  // namespace kboost
