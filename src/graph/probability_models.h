#ifndef KBOOST_GRAPH_PROBABILITY_MODELS_H_
#define KBOOST_GRAPH_PROBABILITY_MODELS_H_

#include "src/graph/graph_builder.h"
#include "src/util/rng.h"

namespace kboost {

/// Edge-probability models used in the influence-maximization literature and
/// in the paper's experiments. See GraphBuilder for the per-model semantics.
enum class ProbabilityModel {
  kConstant,         ///< p = params.constant_p everywhere
  kTrivalency,       ///< p uniform over {0.1, 0.01, 0.001}
  kWeightedCascade,  ///< p_uv = 1 / in_degree(v)
  kExponential,      ///< p ~ Exp(params.mean_p) capped to (0, 1]
};

/// Parameters for ApplyProbabilityModel.
struct ProbabilityModelParams {
  double constant_p = 0.1;  ///< used by kConstant
  double mean_p = 0.1;      ///< used by kExponential
  double beta = 2.0;        ///< boosting parameter: p' = 1 - (1-p)^beta
};

/// Assigns base probabilities per `model` and then boosted probabilities via
/// the beta rule. Dispatches to the GraphBuilder setters.
void ApplyProbabilityModel(GraphBuilder& builder, ProbabilityModel model,
                           const ProbabilityModelParams& params, Rng& rng);

}  // namespace kboost

#endif  // KBOOST_GRAPH_PROBABILITY_MODELS_H_
