#ifndef KBOOST_GRAPH_GRAPH_IO_H_
#define KBOOST_GRAPH_GRAPH_IO_H_

#include <string>

#include "src/graph/graph.h"
#include "src/util/status.h"

namespace kboost {

/// Writes `graph` as a text edge list:
///   first line:  "<num_nodes> <num_edges>"
///   then one line per edge: "<from> <to> <p> <p_boost>"
/// Lines starting with '#' are comments on load.
Status SaveEdgeList(const DirectedGraph& graph, const std::string& path);

/// Loads a graph saved by SaveEdgeList (or any whitespace-separated edge
/// list with 2–4 columns; missing p defaults to 0, missing p_boost to p).
StatusOr<DirectedGraph> LoadEdgeList(const std::string& path);

}  // namespace kboost

#endif  // KBOOST_GRAPH_GRAPH_IO_H_
