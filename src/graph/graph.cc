#include "src/graph/graph.h"

#include <cmath>

#include "src/graph/graph_builder.h"
#include "src/util/logging.h"

namespace kboost {

double DirectedGraph::AverageProbability() const {
  if (out_edges_.empty()) return 0.0;
  double sum = 0.0;
  for (const OutEdge& e : out_edges_) sum += e.p;
  return sum / static_cast<double>(out_edges_.size());
}

DirectedGraph DirectedGraph::WithBoostBeta(double beta) const {
  KB_CHECK(beta >= 1.0) << "beta=" << beta;
  GraphBuilder builder(static_cast<NodeId>(num_nodes_));
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (const OutEdge& e : OutEdges(u)) {
      double p = e.p;
      double pb = 1.0 - std::pow(1.0 - p, beta);
      builder.AddEdge(u, e.to, p, pb);
    }
  }
  return std::move(builder).Build();
}

size_t DirectedGraph::MemoryBytes() const {
  return out_offsets_.capacity() * sizeof(size_t) +
         in_offsets_.capacity() * sizeof(size_t) +
         out_edges_.capacity() * sizeof(OutEdge) +
         in_edges_.capacity() * sizeof(InEdge) +
         in_thresholds_.capacity() * sizeof(InThreshold);
}

}  // namespace kboost
