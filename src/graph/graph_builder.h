#ifndef KBOOST_GRAPH_GRAPH_BUILDER_H_
#define KBOOST_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace kboost {

/// Accumulates edges and probability assignments, then freezes them into an
/// immutable DirectedGraph. The probability-model setters exist here (rather
/// than on DirectedGraph) because models like weighted-cascade need the final
/// degree sequence before probabilities can be fixed.
class GraphBuilder {
 public:
  /// A staged edge before CSR layout.
  struct Edge {
    NodeId from;
    NodeId to;
    float p;
    float p_boost;
  };

  explicit GraphBuilder(NodeId num_nodes);

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Adds a directed edge with explicit probabilities.
  /// Requires 0 <= p <= p_boost <= 1 and valid node ids.
  GraphBuilder& AddEdge(NodeId from, NodeId to, double p, double p_boost);

  /// Adds a directed edge with p_boost defaulted equal to p (assign a model
  /// or call SetBoostWithBeta later).
  GraphBuilder& AddEdge(NodeId from, NodeId to, double p = 0.0) {
    return AddEdge(from, to, p, p);
  }

  /// Removes duplicate (from, to) pairs, keeping the first occurrence, and
  /// drops self-loops. Returns the number of edges removed.
  size_t DeduplicateEdges();

  // ---- Probability models (Sec. VII "Datasets") -------------------------

  /// Every edge gets base probability p.
  GraphBuilder& AssignConstantProbability(double p);
  /// Trivalency model: each edge's p drawn uniformly from {0.1, 0.01, 0.001}.
  GraphBuilder& AssignTrivalencyProbabilities(Rng& rng);
  /// Weighted cascade: p_uv = 1 / in_degree(v).
  GraphBuilder& AssignWeightedCascadeProbabilities();
  /// p drawn i.i.d. Exponential(mean), capped to (0, cap]. Matches a learned
  /// probability distribution's mean while keeping the heavy skew observed in
  /// Goyal-style learned probabilities.
  GraphBuilder& AssignExponentialProbabilities(double mean, Rng& rng,
                                               double cap = 1.0);

  /// Sets p' = 1 - (1-p)^beta on every edge (boosting parameter, Sec. VII).
  GraphBuilder& SetBoostWithBeta(double beta);

  /// Freezes into an immutable CSR graph. Edges are sorted and both
  /// adjacency directions are materialized. The builder is consumed.
  DirectedGraph Build() &&;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace kboost

#endif  // KBOOST_GRAPH_GRAPH_BUILDER_H_
