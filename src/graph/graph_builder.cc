#include "src/graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/util/logging.h"

namespace kboost {

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

GraphBuilder& GraphBuilder::AddEdge(NodeId from, NodeId to, double p,
                                    double p_boost) {
  KB_CHECK(from < num_nodes_) << "from=" << from << " n=" << num_nodes_;
  KB_CHECK(to < num_nodes_) << "to=" << to << " n=" << num_nodes_;
  KB_CHECK(p >= 0.0 && p <= 1.0) << "p=" << p;
  KB_CHECK(p_boost >= p && p_boost <= 1.0)
      << "p=" << p << " p_boost=" << p_boost;
  edges_.push_back(Edge{from, to, static_cast<float>(p),
                        static_cast<float>(p_boost)});
  return *this;
}

size_t GraphBuilder::DeduplicateEdges() {
  size_t before = edges_.size();
  std::vector<Edge> kept;
  kept.reserve(edges_.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    if (e.from == e.to) continue;
    uint64_t key = (static_cast<uint64_t>(e.from) << 32) | e.to;
    if (seen.insert(key).second) kept.push_back(e);
  }
  edges_ = std::move(kept);
  return before - edges_.size();
}

GraphBuilder& GraphBuilder::AssignConstantProbability(double p) {
  KB_CHECK(p >= 0.0 && p <= 1.0);
  for (Edge& e : edges_) {
    e.p = static_cast<float>(p);
    e.p_boost = std::max(e.p_boost, e.p);
  }
  return *this;
}

GraphBuilder& GraphBuilder::AssignTrivalencyProbabilities(Rng& rng) {
  static constexpr double kLevels[3] = {0.1, 0.01, 0.001};
  for (Edge& e : edges_) {
    e.p = static_cast<float>(kLevels[rng.NextBounded(3)]);
    e.p_boost = std::max(e.p_boost, e.p);
  }
  return *this;
}

GraphBuilder& GraphBuilder::AssignWeightedCascadeProbabilities() {
  std::vector<uint32_t> in_degree(num_nodes_, 0);
  for (const Edge& e : edges_) ++in_degree[e.to];
  for (Edge& e : edges_) {
    e.p = 1.0f / static_cast<float>(in_degree[e.to]);
    e.p_boost = std::max(e.p_boost, e.p);
  }
  return *this;
}

GraphBuilder& GraphBuilder::AssignExponentialProbabilities(double mean,
                                                           Rng& rng,
                                                           double cap) {
  KB_CHECK(mean > 0.0 && cap > 0.0 && cap <= 1.0);
  for (Edge& e : edges_) {
    double p = std::min(rng.NextExponential(mean), cap);
    // Exponential can return exactly 0 only in the limit; clamp away from 0
    // so every edge keeps a usable probability.
    p = std::max(p, 1e-6);
    e.p = static_cast<float>(p);
    e.p_boost = std::max(e.p_boost, e.p);
  }
  return *this;
}

GraphBuilder& GraphBuilder::SetBoostWithBeta(double beta) {
  KB_CHECK(beta >= 1.0) << "beta=" << beta;
  for (Edge& e : edges_) {
    e.p_boost =
        static_cast<float>(1.0 - std::pow(1.0 - static_cast<double>(e.p),
                                          beta));
    e.p_boost = std::max(e.p_boost, e.p);  // guard against rounding
  }
  return *this;
}

DirectedGraph GraphBuilder::Build() && {
  DirectedGraph g;
  g.num_nodes_ = num_nodes_;
  const size_t m = edges_.size();

  // Out-adjacency: counting sort by source, then by target within source.
  g.out_offsets_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges_) ++g.out_offsets_[e.from + 1];
  for (size_t i = 1; i <= num_nodes_; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
  }
  g.out_edges_.resize(m);
  {
    std::vector<size_t> cursor(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      g.out_edges_[cursor[e.from]++] =
          DirectedGraph::OutEdge{e.to, e.p, e.p_boost};
    }
  }
  for (NodeId u = 0; u < num_nodes_; ++u) {
    std::sort(g.out_edges_.begin() + g.out_offsets_[u],
              g.out_edges_.begin() + g.out_offsets_[u + 1],
              [](const DirectedGraph::OutEdge& a,
                 const DirectedGraph::OutEdge& b) { return a.to < b.to; });
  }

  // In-adjacency.
  g.in_offsets_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges_) ++g.in_offsets_[e.to + 1];
  for (size_t i = 1; i <= num_nodes_; ++i) {
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.in_edges_.resize(m);
  {
    std::vector<size_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      g.in_edges_[cursor[e.to]++] =
          DirectedGraph::InEdge{e.from, e.p, e.p_boost};
    }
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    std::sort(g.in_edges_.begin() + g.in_offsets_[v],
              g.in_edges_.begin() + g.in_offsets_[v + 1],
              [](const DirectedGraph::InEdge& a,
                 const DirectedGraph::InEdge& b) { return a.from < b.from; });
  }

  // Integer draw thresholds ceil(p · 2^53), parallel to in_edges_. Exact:
  // a float promoted to double has <= 24 significant bits, so multiplying
  // by 2^53 and taking ceil loses nothing, and `x < t` over 53-bit draws
  // reproduces `NextDouble() < p` bit for bit.
  g.in_thresholds_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const DirectedGraph::InEdge& e = g.in_edges_[i];
    g.in_thresholds_[i] = DirectedGraph::InThreshold{
        static_cast<uint64_t>(
            std::ceil(static_cast<double>(e.p) * 0x1.0p53)),
        static_cast<uint64_t>(
            std::ceil(static_cast<double>(e.p_boost) * 0x1.0p53))};
  }

  edges_.clear();
  return g;
}

}  // namespace kboost
