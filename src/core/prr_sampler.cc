#include "src/core/prr_sampler.h"

#include <algorithm>
#include <atomic>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace kboost {

namespace {
/// Upper bound on per-batch result buffering; keeps memory flat even when
/// the schedule asks for millions of samples at once.
constexpr size_t kBatchSize = 1 << 16;
}  // namespace

PrrSampler::PrrSampler(const DirectedGraph& graph,
                       const std::vector<NodeId>& seeds, size_t k,
                       bool lb_only, uint64_t seed, int num_threads)
    : graph_(graph),
      seeds_(seeds),
      k_(k),
      lb_only_(lb_only),
      seed_(seed),
      num_threads_(std::max(1, num_threads)) {
  generators_.reserve(num_threads_);
  for (int t = 0; t < num_threads_; ++t) {
    generators_.push_back(std::make_unique<PrrGenerator>(graph_, seeds_));
  }
}

size_t PrrSampler::EnsureSamples(PrrCollection& collection, size_t target) {
  while (collection.num_samples() < target) {
    const size_t have = collection.num_samples();
    const size_t need = std::min(kBatchSize, target - have);

    std::vector<PrrGenResult> batch(need);
    std::atomic<size_t> edges{0};
    ParallelFor(
        need, num_threads_,
        [&](size_t j, int t) {
          uint64_t s = seed_;
          s ^= (have + j + 1) * 0x9E3779B97F4A7C15ULL;
          Rng rng(s);
          batch[j] = generators_[t]->GenerateRandomRoot(k_, lb_only_, rng);
          edges.fetch_add(batch[j].edges_examined,
                          std::memory_order_relaxed);
        },
        /*chunk=*/16);
    stats_.edges_examined += edges.load();

    for (PrrGenResult& r : batch) {
      if (r.status != PrrStatus::kBoostable) {
        collection.AddNonBoostable(r.status);
        continue;
      }
      stats_.uncompressed_edges += r.uncompressed_edges;
      if (lb_only_) {
        collection.AddBoostableCriticalOnly(r.critical_globals);
      } else {
        stats_.compressed_edges += r.graph.num_edges();
        collection.AddBoostable(std::move(r.graph));
      }
    }
  }
  return collection.num_samples();
}

}  // namespace kboost
