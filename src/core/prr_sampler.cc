#include "src/core/prr_sampler.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace kboost {

namespace {
/// Upper bound on per-batch result buffering; keeps memory flat even when
/// the schedule asks for millions of samples at once.
constexpr size_t kBatchSize = 1 << 16;
}  // namespace

void PrrSampler::Shard::Clear() {
  store.Clear();
  statuses.clear();
  crit_offsets.assign(1, 0);
  crit_nodes.clear();
  edges_examined = 0;
  uncompressed_edges = 0;
  compressed_edges = 0;
}

PrrSampler::PrrSampler(const DirectedGraph& graph,
                       const std::vector<NodeId>& seeds, size_t k,
                       bool lb_only, uint64_t seed, int num_threads)
    : graph_(graph),
      seeds_(seeds),
      k_(k),
      lb_only_(lb_only),
      seed_(seed),
      num_threads_(std::max(1, std::min(num_threads, 255))),
      shards_(num_threads_) {
  generators_.reserve(num_threads_);
  for (int t = 0; t < num_threads_; ++t) {
    generators_.push_back(std::make_unique<PrrGenerator>(graph_, seeds_));
  }
}

size_t PrrSampler::EnsureSamples(PrrCollection& collection, size_t target) {
  while (collection.num_samples() < target) {
    const size_t have = collection.num_samples();
    const size_t need = std::min(kBatchSize, target - have);

    for (Shard& shard : shards_) shard.Clear();
    owner_.assign(need, 0);

    // Generation: each worker appends into its own shard. Within a shard
    // samples land in ascending batch order (the ParallelFor cursor is
    // monotone), which is what makes the ordered merge below possible.
    ParallelFor(
        need, num_threads_,
        [&](size_t j, int t) {
          Shard& shard = shards_[t];
          uint64_t s = seed_;
          s ^= (have + j + 1) * 0x9E3779B97F4A7C15ULL;
          Rng rng(s);
          const size_t edges_before = shard.store.total_edges();
          PrrGenResult r = generators_[t]->GenerateRandomRoot(
              k_, lb_only_, rng, lb_only_ ? nullptr : &shard.store);
          owner_[j] = static_cast<uint8_t>(t);
          shard.statuses.push_back(r.status);
          shard.edges_examined += r.edges_examined;
          if (r.status == PrrStatus::kBoostable) {
            shard.uncompressed_edges += r.uncompressed_edges;
            if (lb_only_) {
              shard.crit_nodes.insert(shard.crit_nodes.end(),
                                      r.critical_globals.begin(),
                                      r.critical_globals.end());
              shard.crit_offsets.push_back(shard.crit_nodes.size());
            } else {
              shard.compressed_edges += shard.store.total_edges() - edges_before;
            }
          }
        },
        /*chunk=*/16);

    // Ordered merge: walk the batch in sample order, pulling each record
    // from its owner shard. Non-boostable samples just bump counters;
    // boostable samples are collected as refs and handed to the collection
    // in ONE round call — the coverage structure grows once and the
    // critical-set fill fans back out over the workers.
    std::vector<size_t> pos(shards_.size(), 0);       // next record per shard
    std::vector<size_t> boostable(shards_.size(), 0); // boostable ordinal
    round_items_.clear();
    for (size_t j = 0; j < need; ++j) {
      Shard& shard = shards_[owner_[j]];
      const PrrStatus status = shard.statuses[pos[owner_[j]]++];
      if (status != PrrStatus::kBoostable) {
        collection.AddNonBoostable(status);
        continue;
      }
      const size_t b = boostable[owner_[j]]++;
      PrrCollection::BoostableSampleRef ref;
      if (lb_only_) {
        ref.critical = shard.crit_nodes.data() + shard.crit_offsets[b];
        ref.critical_count = static_cast<uint32_t>(shard.crit_offsets[b + 1] -
                                                   shard.crit_offsets[b]);
      } else {
        ref.shard = &shard.store;
        ref.shard_graph_id = static_cast<uint32_t>(b);
      }
      round_items_.push_back(ref);
    }
    collection.AddBoostableRound(round_items_, lb_only_, num_threads_);
    for (const Shard& shard : shards_) {
      stats_.edges_examined += shard.edges_examined;
      stats_.uncompressed_edges += shard.uncompressed_edges;
      stats_.compressed_edges += shard.compressed_edges;
    }
  }
  return collection.num_samples();
}

}  // namespace kboost
