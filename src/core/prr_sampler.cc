#include "src/core/prr_sampler.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace kboost {

namespace {
/// Upper bound on per-batch result buffering; keeps memory flat even when
/// the schedule asks for millions of samples at once.
constexpr size_t kBatchSize = 1 << 16;
}  // namespace

void PrrSampler::ShardBatch::Clear() {
  statuses.clear();
  crit_offsets.assign(1, 0);
  crit_nodes.clear();
  edges_examined = 0;
  uncompressed_edges = 0;
  compressed_edges = 0;
}

PrrSampler::PrrSampler(const DirectedGraph& graph,
                       const std::vector<NodeId>& seeds, size_t k,
                       bool lb_only, uint64_t seed, int num_threads)
    : graph_(graph),
      seeds_(seeds),
      k_(k),
      lb_only_(lb_only),
      seed_(seed),
      num_threads_(std::max(1, std::min(num_threads, 255))) {}

size_t PrrSampler::EnsureSamples(PrrCollection& collection, size_t target) {
  // Per-shard machinery is sized to the collection (the shard count lives
  // there); generators and record staging only ever grow, so a sampler
  // reused across collections keeps its allocations.
  const size_t num_shards = collection.num_shards();
  while (generators_.size() < num_shards) {
    generators_.push_back(std::make_unique<PrrGenerator>(graph_, seeds_));
  }
  if (shards_.size() < num_shards) shards_.resize(num_shards);

  while (collection.num_samples() < target) {
    const size_t have = collection.num_samples();
    const size_t need = std::min(kBatchSize, target - have);

    for (size_t s = 0; s < num_shards; ++s) shards_[s].Clear();
    // Arena sizes before the batch: this batch's b-th boostable graph of
    // shard s gets arena id base[s] + b.
    std::vector<uint32_t> base(num_shards, 0);
    if (!lb_only_) {
      for (size_t s = 0; s < num_shards; ++s) {
        base[s] =
            static_cast<uint32_t>(collection.shard_store(s).num_graphs());
      }
    }

    // Generation: one task per shard, each writing compressed graphs
    // directly into its persistent arena (capacity is retained across
    // batches — no per-round reallocation, no merge copy). Shard s owns the
    // samples with global index ≡ s (mod S), generated in ascending order;
    // each sample's Rng is seeded by its global index, so shard contents
    // are bit-identical for every thread count.
    ParallelFor(
        num_shards, num_threads_,
        [&](size_t s, int /*t*/) {
          ShardBatch& shard = shards_[s];
          PrrStore* sink =
              lb_only_ ? nullptr : collection.mutable_shard_store(s);
          const size_t first = (s + num_shards - have % num_shards) %
                               num_shards;  // smallest j with (have+j)%S == s
          for (size_t j = first; j < need; j += num_shards) {
            uint64_t rs = seed_;
            rs ^= (have + j + 1) * 0x9E3779B97F4A7C15ULL;
            Rng rng(rs);
            const size_t edges_before = sink ? sink->total_edges() : 0;
            PrrGenResult r =
                generators_[s]->GenerateRandomRoot(k_, lb_only_, rng, sink);
            shard.statuses.push_back(r.status);
            shard.edges_examined += r.edges_examined;
            if (r.status == PrrStatus::kBoostable) {
              shard.uncompressed_edges += r.uncompressed_edges;
              if (lb_only_) {
                shard.crit_nodes.insert(shard.crit_nodes.end(),
                                        r.critical_globals.begin(),
                                        r.critical_globals.end());
                shard.crit_offsets.push_back(shard.crit_nodes.size());
              } else {
                shard.compressed_edges += sink->total_edges() - edges_before;
              }
            }
          }
        },
        /*chunk=*/1);

    // Ordered record walk: visit the batch in global sample order, pulling
    // each status from its shard (the round-robin assignment is a pure
    // function of the index — no owner table needed). Non-boostable samples
    // just bump counters; boostable samples are collected as refs and handed
    // to the collection in ONE round call — the coverage structure grows
    // once and the critical-set fill fans back out over the workers. Graphs
    // themselves are already in place.
    merge_pos_.assign(num_shards, 0);
    merge_boostable_.assign(num_shards, 0);
    round_items_.clear();
    for (size_t j = 0; j < need; ++j) {
      const size_t s = (have + j) % num_shards;
      ShardBatch& shard = shards_[s];
      const PrrStatus status = shard.statuses[merge_pos_[s]++];
      if (status != PrrStatus::kBoostable) {
        collection.AddNonBoostable(status);
        continue;
      }
      const size_t b = merge_boostable_[s]++;
      PrrCollection::BoostableSampleRef ref;
      if (lb_only_) {
        ref.critical = shard.crit_nodes.data() + shard.crit_offsets[b];
        ref.critical_count = static_cast<uint32_t>(shard.crit_offsets[b + 1] -
                                                   shard.crit_offsets[b]);
      } else {
        ref.shard = static_cast<uint32_t>(s);
        ref.shard_graph_id = base[s] + static_cast<uint32_t>(b);
      }
      round_items_.push_back(ref);
    }
    collection.AddBoostableRound(round_items_, lb_only_, num_threads_);
    for (size_t s = 0; s < num_shards; ++s) {
      stats_.edges_examined += shards_[s].edges_examined;
      stats_.uncompressed_edges += shards_[s].uncompressed_edges;
      stats_.compressed_edges += shards_[s].compressed_edges;
    }
  }
  return collection.num_samples();
}

}  // namespace kboost
