#ifndef KBOOST_CORE_PRR_GRAPH_H_
#define KBOOST_CORE_PRR_GRAPH_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace kboost {

/// Classification of a sampled PRR-graph (Sec. V-A).
enum class PrrStatus {
  kActivated,  ///< a live seed→root path exists; f_R ≡ 0
  kHopeless,   ///< no seed→root path with ≤ k live-upon-boost edges; f_R ≡ 0
  kBoostable,  ///< boosting can flip the root; the interesting case
};

/// A compressed, boostable Potentially-Reverse-Reachable graph (Def. 3 after
/// the Phase-II compression of Algorithm 1).
///
/// Local node ids: 0 is the super-seed (the contraction of every node that
/// activates without boosting), 1 is the root, and the rest are intermediate
/// nodes. Every edge is either *live* or *live-upon-boost* ("boost"); an
/// edge (u,v) is traversable under boost set B iff it is live, or it is a
/// boost edge and v ∈ B. By construction f_R(∅) = 0: all super-seed
/// out-edges are boost edges.
struct PrrGraph {
  static constexpr uint32_t kSuperSeedLocal = 0;
  static constexpr uint32_t kRootLocal = 1;

  /// Packs an adjacency entry: (neighbour local id << 1) | is_boost.
  static uint32_t PackEdge(uint32_t neighbor, bool boost) {
    return (neighbor << 1) | static_cast<uint32_t>(boost);
  }
  static uint32_t EdgeNode(uint32_t packed) { return packed >> 1; }
  static bool EdgeBoost(uint32_t packed) { return (packed & 1u) != 0; }

  /// local id -> global node id; [0] is kInvalidNode (the super-seed has no
  /// global identity), [1] is the root's global id.
  std::vector<NodeId> global_ids;
  std::vector<uint32_t> out_offsets;  ///< size num_nodes()+1
  std::vector<uint32_t> out_edges;    ///< packed (target, boost)
  std::vector<uint32_t> in_offsets;   ///< size num_nodes()+1
  std::vector<uint32_t> in_edges;     ///< packed (source, boost)
  /// Critical nodes at B = ∅ (local ids): boosting any one of them alone
  /// activates the root. This is C_R, the µ lower bound's coverage set.
  std::vector<uint32_t> critical_locals;

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(global_ids.size());
  }
  size_t num_edges() const { return out_edges.size(); }
  size_t MemoryBytes() const;
};

/// Result of sampling one PRR-graph.
struct PrrGenResult {
  PrrStatus status = PrrStatus::kHopeless;
  size_t edges_examined = 0;     ///< phase-I work (EPT accounting)
  size_t uncompressed_edges = 0; ///< edges collected by phase I (boostable)
  PrrGraph graph;                ///< filled when boostable and !lb_only
  /// Critical nodes as global ids (boostable; both modes).
  std::vector<NodeId> critical_globals;
};

/// Generates PRR-graphs for one (graph, seed set). Holds O(n) scratch, so
/// create one instance per thread and reuse it across samples.
///
/// `lb_only` mode implements the PRR-Boost-LB shortcut (Sec. V-C): the
/// backward exploration prunes at distance 1 and only the critical-node set
/// is produced — no compressed graph is stored.
class PrrGenerator {
 public:
  PrrGenerator(const DirectedGraph& graph, const std::vector<NodeId>& seeds);

  PrrGenerator(const PrrGenerator&) = delete;
  PrrGenerator& operator=(const PrrGenerator&) = delete;

  /// Samples the PRR-graph rooted at `root` with budget k. Deterministic
  /// given the Rng state.
  PrrGenResult Generate(NodeId root, size_t k, bool lb_only, Rng& rng);

  /// Samples with a uniformly random root.
  PrrGenResult GenerateRandomRoot(size_t k, bool lb_only, Rng& rng);

 private:
  static constexpr uint32_t kInf = static_cast<uint32_t>(-1);

  struct LocalEdge {
    uint32_t from;
    uint32_t to;
    uint8_t boost;
  };

  /// Maps a global node to its local id, creating it on first touch.
  uint32_t LocalOf(NodeId global);

  /// Phase II: compress the collected subgraph into result->graph and
  /// extract critical nodes. Sets result->status.
  void Compress(uint32_t root_local, size_t k, PrrGenResult* result);

  /// Critical-node extraction for lb_only mode (no compression).
  void ExtractCriticalLbOnly(uint32_t root_local, PrrGenResult* result);

  const DirectedGraph& graph_;
  std::vector<uint8_t> is_seed_;

  // Global->local mapping with stamps so Generate() is O(|R|), not O(n).
  std::vector<uint32_t> visit_stamp_;
  std::vector<uint32_t> local_index_;
  uint32_t stamp_ = 0;

  // Phase-I state, local-indexed.
  std::vector<NodeId> locals_;     // local -> global
  std::vector<uint32_t> dist_;     // distance to root
  std::vector<LocalEdge> edges_;   // collected non-blocked edges
  std::deque<std::pair<uint32_t, uint32_t>> queue_;

  // Phase-II scratch, local-indexed; reused across samples.
  std::vector<uint32_t> csr_offsets_, csr_edges_;
  std::vector<uint32_t> csr_in_offsets_, csr_in_edges_;
  std::vector<uint32_t> ds_, dpr_;
  std::vector<uint32_t> new_id_;
  std::vector<uint8_t> flag_;
};

/// Evaluates f_R(B) and per-node criticality on compressed PRR-graphs.
/// Holds scratch; one instance per thread.
class PrrEvaluator {
 public:
  /// f_R(B): is the root activated under boost set B (given as an n-sized
  /// global bitmap)? Implemented as 0-weight reachability from the
  /// super-seed, where live edges and boost edges into B have weight 0.
  bool IsActivated(const PrrGraph& g, const uint8_t* boosted_global);

  /// Computes the critical set given B into `out` (local ids): nodes v ∉ B
  /// such that f_R(B ∪ {v}) = 1 while f_R(B) = 0. Returns f_R(B); when it
  /// returns true `out` is left empty.
  bool CriticalNodes(const PrrGraph& g, const uint8_t* boosted_global,
                     std::vector<uint32_t>* out);

 private:
  void ComputeReach(const PrrGraph& g, const uint8_t* boosted_global);

  std::vector<uint8_t> fwd0_, bwd0_;
  std::vector<uint32_t> queue_;
};

}  // namespace kboost

#endif  // KBOOST_CORE_PRR_GRAPH_H_
