#ifndef KBOOST_CORE_PRR_GRAPH_H_
#define KBOOST_CORE_PRR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/ring_deque.h"
#include "src/util/rng.h"

namespace kboost {

/// Classification of a sampled PRR-graph (Sec. V-A).
enum class PrrStatus {
  kActivated,  ///< a live seed→root path exists; f_R ≡ 0
  kHopeless,   ///< no seed→root path with ≤ k live-upon-boost edges; f_R ≡ 0
  kBoostable,  ///< boosting can flip the root; the interesting case
};

class PrrStore;
struct PrrGraphView;

/// A compressed, boostable Potentially-Reverse-Reachable graph (Def. 3 after
/// the Phase-II compression of Algorithm 1).
///
/// Local node ids: 0 is the super-seed (the contraction of every node that
/// activates without boosting), 1 is the root, and the rest are intermediate
/// nodes. Every edge is either *live* or *live-upon-boost* ("boost"); an
/// edge (u,v) is traversable under boost set B iff it is live, or it is a
/// boost edge and v ∈ B. By construction f_R(∅) = 0: all super-seed
/// out-edges are boost edges.
struct PrrGraph {
  static constexpr uint32_t kSuperSeedLocal = 0;
  static constexpr uint32_t kRootLocal = 1;

  /// Packs an adjacency entry: (neighbour local id << 1) | is_boost.
  static uint32_t PackEdge(uint32_t neighbor, bool boost) {
    return (neighbor << 1) | static_cast<uint32_t>(boost);
  }
  static uint32_t EdgeNode(uint32_t packed) { return packed >> 1; }
  static bool EdgeBoost(uint32_t packed) { return (packed & 1u) != 0; }

  /// local id -> global node id; [0] is kInvalidNode (the super-seed has no
  /// global identity), [1] is the root's global id.
  std::vector<NodeId> global_ids;
  std::vector<uint32_t> out_offsets;  ///< size num_nodes()+1
  std::vector<uint32_t> out_edges;    ///< packed (target, boost)
  std::vector<uint32_t> in_offsets;   ///< size num_nodes()+1
  std::vector<uint32_t> in_edges;     ///< packed (source, boost)
  /// Critical nodes at B = ∅ (local ids): boosting any one of them alone
  /// activates the root. This is C_R, the µ lower bound's coverage set.
  std::vector<uint32_t> critical_locals;

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(global_ids.size());
  }
  size_t num_edges() const { return out_edges.size(); }
  size_t MemoryBytes() const;
  PrrGraphView View() const;
};

/// A non-owning view of one compressed PRR-graph, either standalone
/// (PrrGraph::View) or a span into a PrrStore arena. The layout is identical
/// to PrrGraph — offsets are graph-relative — so all evaluation code runs on
/// views and never cares where the bytes live.
struct PrrGraphView {
  const NodeId* global_ids = nullptr;
  const uint32_t* out_offsets = nullptr;  ///< num_nodes()+1 entries
  const uint32_t* out_edges = nullptr;    ///< packed (target, boost)
  const uint32_t* in_offsets = nullptr;   ///< num_nodes()+1 entries
  const uint32_t* in_edges = nullptr;     ///< packed (source, boost)
  const uint32_t* critical_locals = nullptr;
  uint32_t num_nodes_count = 0;
  uint32_t num_critical_count = 0;

  uint32_t num_nodes() const { return num_nodes_count; }
  size_t num_edges() const { return out_offsets[num_nodes_count]; }
  std::span<const uint32_t> critical() const {
    return {critical_locals, num_critical_count};
  }
};

inline PrrGraphView PrrGraph::View() const {
  PrrGraphView view;
  view.global_ids = global_ids.data();
  view.out_offsets = out_offsets.data();
  view.out_edges = out_edges.data();
  view.in_offsets = in_offsets.data();
  view.in_edges = in_edges.data();
  view.critical_locals = critical_locals.data();
  view.num_nodes_count = num_nodes();
  view.num_critical_count = static_cast<uint32_t>(critical_locals.size());
  return view;
}

/// Result of sampling one PRR-graph.
struct PrrGenResult {
  PrrStatus status = PrrStatus::kHopeless;
  size_t edges_examined = 0;     ///< phase-I work (EPT accounting)
  size_t uncompressed_edges = 0; ///< edges collected by phase I (boostable)
  PrrGraph graph;                ///< filled when boostable, !lb_only, no sink
  /// Id in the sink store when one was passed to Generate (boostable, full
  /// mode); `graph` stays empty then.
  size_t store_id = static_cast<size_t>(-1);
  /// Critical nodes as global ids (boostable; both modes).
  std::vector<NodeId> critical_globals;
};

/// Generates PRR-graphs for one (graph, seed set). Holds O(n) scratch, so
/// create one instance per thread and reuse it across samples.
///
/// `lb_only` mode implements the PRR-Boost-LB shortcut (Sec. V-C): the
/// backward exploration prunes at distance 1 and only the critical-node set
/// is produced — no compressed graph is stored.
class PrrGenerator {
 public:
  PrrGenerator(const DirectedGraph& graph, const std::vector<NodeId>& seeds);

  PrrGenerator(const PrrGenerator&) = delete;
  PrrGenerator& operator=(const PrrGenerator&) = delete;

  /// Samples the PRR-graph rooted at `root` with budget k. Deterministic
  /// given the Rng state. When `sink` is non-null and the sample is
  /// boostable (full mode), the compressed graph is appended to the arena
  /// instead of being materialized as a standalone PrrGraph — the zero-
  /// allocation hot path used by PrrSampler.
  PrrGenResult Generate(NodeId root, size_t k, bool lb_only, Rng& rng,
                        PrrStore* sink = nullptr);

  /// Samples with a uniformly random root.
  PrrGenResult GenerateRandomRoot(size_t k, bool lb_only, Rng& rng,
                                  PrrStore* sink = nullptr);

 private:
  static constexpr uint32_t kInf = static_cast<uint32_t>(-1);

  // Phase-I edges are packed into one u64 — (from << 33) | (to << 1) |
  // boost — so the hot push is a single 8-byte store and the CSR build
  // reads one word per edge.
  static uint64_t PackLocalEdge(uint32_t from, uint32_t to, bool boost) {
    return (static_cast<uint64_t>(from) << 33) |
           (static_cast<uint64_t>(to) << 1) | static_cast<uint64_t>(boost);
  }
  static uint32_t LocalEdgeFrom(uint64_t e) {
    return static_cast<uint32_t>(e >> 33);
  }
  static uint32_t LocalEdgeTo(uint64_t e) {
    return static_cast<uint32_t>(e >> 1);
  }
  static bool LocalEdgeBoost(uint64_t e) { return (e & 1u) != 0; }

  /// Maps a global node to its local id, creating it on first touch.
  uint32_t LocalOf(NodeId global);

  /// Phase II: compress the collected subgraph into reused flat scratch and
  /// emit it into `sink` (when given) or result->graph. Extracts critical
  /// nodes and sets result->status.
  void Compress(uint32_t root_local, size_t k, PrrGenResult* result,
                PrrStore* sink);

  /// Critical-node extraction for lb_only mode (no compression).
  void ExtractCriticalLbOnly(uint32_t root_local, PrrGenResult* result);

  /// Builds the packed local out-CSR over the phase-I subgraph in one
  /// counting-sort pass (entries: (target << 1) | boost). In-adjacency
  /// needs no build at all: edges are collected while expanding their head
  /// node and every node is expanded at most once, so edges_ is naturally
  /// grouped by head — in_run_{start,end}_ record each node's slice.
  void BuildLocalOutCsr();

  const DirectedGraph& graph_;
  std::vector<uint8_t> is_seed_;

  // Global->local mapping with stamps so Generate() is O(|R|), not O(n).
  std::vector<uint32_t> visit_stamp_;
  std::vector<uint32_t> local_index_;
  uint32_t stamp_ = 0;

  // Phase-I state, local-indexed.
  std::vector<NodeId> locals_;     // local -> global
  std::vector<uint32_t> dist_;     // distance to root
  std::vector<uint64_t> edges_;    // collected non-blocked edges (packed)
  std::vector<uint32_t> in_run_start_, in_run_end_;  // in-edge slice per local
  RingDeque<std::pair<uint32_t, uint32_t>> queue_;
  // Branchless-scan survivor buffer, sized to the graph's max in-degree;
  // entries pack (edge slot << 1) | boost.
  std::vector<uint32_t> pass_buf_;

  // Phase-II scratch, local-indexed; reused across samples. The local CSR
  // holds packed (target << 1) | boost entries, not edge indices.
  std::vector<uint32_t> csr_offsets_, csr_edges_;
  std::vector<uint32_t> ds_, dpr_;
  std::vector<uint32_t> new_id_;
  std::vector<uint8_t> flag_;
  // Compact-graph scratch (everything Compress used to heap-allocate per
  // sample): emitted edge list, compact CSRs, reachability marks, renumber
  // map and the final flat arrays handed to the sink.
  std::vector<std::pair<uint32_t, uint32_t>> emit_edges_;  // (node, packed)
  std::vector<uint32_t> cadj_offsets_, cadj_edges_;
  std::vector<uint32_t> cradj_offsets_, cradj_edges_;
  std::vector<uint8_t> fwd_, bwd_;
  std::vector<uint32_t> stack_;
  std::vector<uint32_t> final_id_;
  std::vector<uint32_t> cursor_;
  std::vector<NodeId> g_global_ids_;
  std::vector<uint32_t> g_out_offsets_, g_out_edges_;
  std::vector<uint32_t> g_in_offsets_, g_in_edges_;
  std::vector<uint32_t> g_critical_;
};

/// Evaluates f_R(B) and per-node criticality on compressed PRR-graphs from
/// scratch (a full 0-weight BFS per call). Holds scratch; one instance per
/// thread. This is the reference evaluator; PrrIncrementalEvaluator and
/// PrrBatchEvaluator are the hot-path variants built on the same semantics.
class PrrEvaluator {
 public:
  /// Grow-only scratch sizing: pre-sizes the reach marks and queue for
  /// graphs of up to `max_nodes` local nodes, so per-graph evaluation never
  /// reallocates. Call once per selection run with the pool's max local node
  /// count (PrrStore::max_num_nodes); buffers never shrink.
  void Reserve(uint32_t max_nodes);

  /// f_R(B): is the root activated under boost set B (given as an n-sized
  /// global bitmap)? Implemented as 0-weight reachability from the
  /// super-seed, where live edges and boost edges into B have weight 0.
  bool IsActivated(const PrrGraphView& g, const uint8_t* boosted_global);
  bool IsActivated(const PrrGraph& g, const uint8_t* boosted_global) {
    return IsActivated(g.View(), boosted_global);
  }

  /// Computes the critical set given B into `out` (local ids): nodes v ∉ B
  /// such that f_R(B ∪ {v}) = 1 while f_R(B) = 0. Returns f_R(B); when it
  /// returns true `out` is left empty.
  bool CriticalNodes(const PrrGraphView& g, const uint8_t* boosted_global,
                     std::vector<uint32_t>* out);
  bool CriticalNodes(const PrrGraph& g, const uint8_t* boosted_global,
                     std::vector<uint32_t>* out) {
    return CriticalNodes(g.View(), boosted_global, out);
  }

 private:
  void ComputeReach(const PrrGraphView& g, const uint8_t* boosted_global);
  /// Grows the reach marks to hold n entries and zeroes the first n.
  void PrepareMarks(uint32_t n);

  std::vector<uint8_t> fwd0_, bwd0_;
  std::vector<uint32_t> queue_;
};

/// Incremental 0-weight-reach maintenance on caller-owned bitmap words (one
/// bit per local node; fwd = reached from the super-seed, bwd = reaches the
/// root, crit = critical-set membership — the PrrEvalState layout). Boosting
/// a node only ever opens edges (the ones pointing into it), so all three
/// bitmaps grow monotonically as the boost set grows: a commit relaxes
/// forward/backward from the newly boosted node instead of recomputing
/// reachability from the super-seed, and the critical set only gains members
/// until the graph activates. One instance per thread.
class PrrIncrementalEvaluator {
 public:
  static bool TestBit(const uint64_t* words, uint32_t i) {
    return (words[i >> 6] >> (i & 63)) & 1;
  }
  static void SetBit(uint64_t* words, uint32_t i) {
    words[i >> 6] |= 1ull << (i & 63);
  }

  /// Fills fwd/bwd with the reach state at B ∩ R = ∅: a live-edge-only BFS
  /// in both directions (boost edges all have weight 1 under the empty
  /// set). On compressed PRR-graphs this is O(root in-degree): the
  /// super-seed's out-edges are all boost edges and live-to-root paths were
  /// collapsed to shortcut edges, but the BFS stays correct for hand-built
  /// graphs that do not keep those invariants.
  void InitEmptyReach(const PrrGraphView& g, uint64_t* fwd, uint64_t* bwd);

  /// Relaxes fwd/bwd after local node `pick` entered the boost set (the
  /// caller's `boosted_global` bitmap must already contain it). Records the
  /// newly reached frontier for AppendNewCriticalFrontier. Returns true when
  /// the root became fwd-reached — the graph activated and its state is
  /// dead (callers mark it covered and never read the bits again).
  bool RelaxCommit(const PrrGraphView& g, const uint8_t* boosted_global,
                   uint32_t pick, uint64_t* fwd, uint64_t* bwd);

  /// Appends to `out` every local node that became critical in the frontier
  /// recorded by the last RelaxCommit — not yet flagged in `crit`, not
  /// boosted, bwd-reached, with a boost in-edge from a fwd-reached tail —
  /// flagging each in `crit`. Criticality is monotone, so frontier scanning
  /// finds exactly the scratch evaluator's new members.
  void AppendNewCriticalFrontier(const PrrGraphView& g,
                                 const uint8_t* boosted_global,
                                 const uint64_t* fwd, const uint64_t* bwd,
                                 uint64_t* crit, std::vector<uint32_t>* out);

  /// Full-rebuild variants (stale-state fallback and test cross-checks):
  /// recompute fwd/bwd under `boosted_global` from scratch; returns f_R(B).
  bool RebuildReach(const PrrGraphView& g, const uint8_t* boosted_global,
                    uint64_t* fwd, uint64_t* bwd);
  /// Scans every candidate instead of a frontier (use after RebuildReach).
  void AppendNewCriticalFull(const PrrGraphView& g,
                             const uint8_t* boosted_global,
                             const uint64_t* fwd, const uint64_t* bwd,
                             uint64_t* crit, std::vector<uint32_t>* out);

 private:
  std::vector<uint32_t> stack_;
  std::vector<uint32_t> newly_fwd_, newly_bwd_;
};

/// Word-packed batch evaluation of one boost set against many graphs: the
/// activation bit of graph g lands in word g/64, bit g%64. Workers own
/// disjoint whole words (each work item is one word, i.e. 64 graphs), so
/// packing needs no atomics, results are deterministic for every thread
/// count, and the activated total is one popcount reduction.
class PrrBatchEvaluator {
 public:
  /// Evaluates every graph of `store` under `boosted_global` on
  /// `num_threads` workers with per-thread scratch. Returns the number of
  /// activated graphs; when `activation_words` is non-null it receives the
  /// packed activation bitmap (ceil(num_graphs/64) words).
  size_t CountActivated(const PrrStore& store, const uint8_t* boosted_global,
                        int num_threads,
                        std::vector<uint64_t>* activation_words = nullptr);

 private:
  std::vector<PrrEvaluator> evaluators_;
  std::vector<uint64_t> words_;
};

}  // namespace kboost

#endif  // KBOOST_CORE_PRR_GRAPH_H_
