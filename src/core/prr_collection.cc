#include "src/core/prr_collection.h"

#include <algorithm>
#include <atomic>
#include <queue>

#include "src/sim/boost_model.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace kboost {

PrrCollection::PrrCollection(size_t num_graph_nodes)
    : num_graph_nodes_(num_graph_nodes),
      coverage_(num_graph_nodes),
      node_to_graphs_(num_graph_nodes) {}

void PrrCollection::AddBoostable(PrrGraph graph) {
  const uint32_t graph_id = static_cast<uint32_t>(graphs_.size());
  std::vector<NodeId> critical_globals;
  critical_globals.reserve(graph.critical_locals.size());
  for (uint32_t c : graph.critical_locals) {
    critical_globals.push_back(graph.global_ids[c]);
  }
  coverage_.AddSet(critical_globals);
  for (uint32_t v = PrrGraph::kRootLocal; v < graph.num_nodes(); ++v) {
    node_to_graphs_[graph.global_ids[v]].push_back(graph_id);
  }
  stored_bytes_ += graph.MemoryBytes();
  graphs_.push_back(std::move(graph));
  ++num_boostable_;
}

void PrrCollection::AddBoostableCriticalOnly(
    const std::vector<NodeId>& critical_globals) {
  coverage_.AddSet(critical_globals);
  stored_bytes_ += critical_globals.size() * sizeof(NodeId);
  ++num_boostable_;
}

void PrrCollection::AddNonBoostable(PrrStatus status) {
  KB_DCHECK(status != PrrStatus::kBoostable);
  coverage_.AddEmptySet();
  if (status == PrrStatus::kActivated) {
    ++num_activated_;
  } else {
    ++num_hopeless_;
  }
}

PrrCollection::LbResult PrrCollection::SelectGreedyLowerBound(
    size_t k, const std::vector<uint8_t>& excluded) const {
  CoverageSelector::Result cov = coverage_.SelectGreedy(k, &excluded);
  LbResult result;
  result.nodes = std::move(cov.selected);
  result.mu_hat =
      static_cast<double>(num_graph_nodes_) * cov.coverage_fraction;
  return result;
}

PrrCollection::DeltaResult PrrCollection::SelectGreedyDelta(
    size_t k, const std::vector<uint8_t>& excluded) const {
  DeltaResult result;
  if (k == 0 || num_samples() == 0) return result;

  const size_t n = num_graph_nodes_;
  std::vector<uint8_t> boosted(n, 0);
  std::vector<uint8_t> covered(graphs_.size(), 0);
  // Current critical set per stored graph (global ids).
  std::vector<std::vector<NodeId>> critical(graphs_.size());
  std::vector<size_t> gains(n, 0);

  for (size_t g = 0; g < graphs_.size(); ++g) {
    critical[g].reserve(graphs_[g].critical_locals.size());
    for (uint32_t c : graphs_[g].critical_locals) {
      NodeId global = graphs_[g].global_ids[c];
      critical[g].push_back(global);
      if (!excluded[global]) ++gains[global];
    }
  }

  // Max-heap tolerant of stale entries: an entry is valid iff its recorded
  // gain still matches gains[node]. Gains move both ways as B grows, so we
  // push a fresh entry on every change.
  struct Entry {
    size_t gain;
    NodeId node;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.gain < b.gain; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    if (gains[v] > 0 && !excluded[v]) heap.push(Entry{gains[v], v});
  }

  PrrEvaluator evaluator;
  std::vector<uint32_t> new_critical_locals;

  while (result.nodes.size() < k) {
    NodeId pick = kInvalidNode;
    while (!heap.empty()) {
      Entry top = heap.top();
      if (boosted[top.node] || top.gain != gains[top.node] ||
          gains[top.node] == 0) {
        heap.pop();
        continue;
      }
      pick = top.node;
      break;
    }
    if (pick == kInvalidNode) break;  // no single node has positive gain

    boosted[pick] = 1;
    result.nodes.push_back(pick);
    gains[pick] = 0;

    // Re-evaluate every graph containing the pick; update gains by diffing
    // old and new critical sets ("linear in the size of R" update).
    for (uint32_t g : node_to_graphs_[pick]) {
      if (covered[g]) continue;
      for (NodeId old : critical[g]) {
        if (!boosted[old] && !excluded[old]) {
          KB_DCHECK(gains[old] > 0);
          --gains[old];
          heap.push(Entry{gains[old], old});
        }
      }
      const bool now_active = evaluator.CriticalNodes(
          graphs_[g], boosted.data(), &new_critical_locals);
      if (now_active) {
        covered[g] = 1;
        ++result.activated_samples;
        critical[g].clear();
        continue;
      }
      critical[g].clear();
      for (uint32_t c : new_critical_locals) {
        NodeId global = graphs_[g].global_ids[c];
        critical[g].push_back(global);
        if (!boosted[global] && !excluded[global]) {
          ++gains[global];
          heap.push(Entry{gains[global], global});
        }
      }
    }
  }

  // Budget left but no single-node gains: fall back to PRR-occurrence
  // counts (nodes present in many boostable PRR-graphs are the best
  // remaining heuristic candidates).
  if (result.nodes.size() < k) {
    std::vector<NodeId> order;
    order.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      if (!boosted[v] && !excluded[v] && !node_to_graphs_[v].empty()) {
        order.push_back(v);
      }
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return node_to_graphs_[a].size() > node_to_graphs_[b].size();
    });
    for (NodeId v : order) {
      if (result.nodes.size() >= k) break;
      boosted[v] = 1;
      result.nodes.push_back(v);
    }
  }

  result.delta_hat = static_cast<double>(num_graph_nodes_) *
                     static_cast<double>(result.activated_samples) /
                     static_cast<double>(num_samples());
  return result;
}

double PrrCollection::EstimateDelta(const std::vector<NodeId>& boost_set,
                                    int num_threads) const {
  if (num_samples() == 0) return 0.0;
  const std::vector<uint8_t> boosted =
      MakeNodeBitmap(num_graph_nodes_, boost_set);
  std::atomic<size_t> activated{0};
  const int threads = std::max(1, num_threads);
  std::vector<PrrEvaluator> evaluators(threads);
  ParallelFor(
      graphs_.size(), threads,
      [&](size_t g, int t) {
        if (evaluators[t].IsActivated(graphs_[g], boosted.data())) {
          activated.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*chunk=*/256);
  return static_cast<double>(num_graph_nodes_) *
         static_cast<double>(activated.load()) /
         static_cast<double>(num_samples());
}

double PrrCollection::EstimateMu(const std::vector<NodeId>& boost_set) const {
  if (num_samples() == 0) return 0.0;
  // Count samples whose critical set intersects B, via the coverage
  // structure's per-node sample lists.
  std::vector<uint8_t> hit(coverage_.num_nonempty_sets(), 0);
  size_t covered = 0;
  for (NodeId v : boost_set) {
    KB_CHECK(v < num_graph_nodes_);
    for (uint32_t set_id : coverage_.SetsContaining(v)) {
      if (!hit[set_id]) {
        hit[set_id] = 1;
        ++covered;
      }
    }
  }
  return static_cast<double>(num_graph_nodes_) * static_cast<double>(covered) /
         static_cast<double>(num_samples());
}

}  // namespace kboost
