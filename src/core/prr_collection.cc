#include "src/core/prr_collection.h"

#include <algorithm>
#include <atomic>

#include "src/select/greedy.h"
#include "src/sim/boost_model.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace kboost {

PrrCollection::PrrCollection(size_t num_graph_nodes)
    : num_graph_nodes_(num_graph_nodes), coverage_(num_graph_nodes) {}

void PrrCollection::AddBoostable(const PrrGraph& graph) {
  const size_t id = store_.Add(graph);
  const PrrGraphView view = store_.View(id);
  critical_scratch_.clear();
  for (uint32_t c : view.critical()) {
    critical_scratch_.push_back(view.global_ids[c]);
  }
  coverage_.AddSet(critical_scratch_);
  graph_index_built_ = false;
  ++num_boostable_;
}

void PrrCollection::AddBoostableFromStore(const PrrStore& shard,
                                          size_t shard_id) {
  const size_t id = store_.AppendFrom(shard, shard_id);
  const PrrGraphView view = store_.View(id);
  critical_scratch_.clear();
  for (uint32_t c : view.critical()) {
    critical_scratch_.push_back(view.global_ids[c]);
  }
  coverage_.AddSet(critical_scratch_);
  graph_index_built_ = false;
  ++num_boostable_;
}

void PrrCollection::AddBoostableCriticalOnly(
    std::span<const NodeId> critical_globals) {
  coverage_.AddSet(critical_globals);
  lb_critical_bytes_ += critical_globals.size() * sizeof(NodeId);
  ++num_boostable_;
}

void PrrCollection::AddNonBoostable(PrrStatus status) {
  KB_DCHECK(status != PrrStatus::kBoostable);
  coverage_.AddEmptySet();
  if (status == PrrStatus::kActivated) {
    ++num_activated_;
  } else {
    ++num_hopeless_;
  }
}

void PrrCollection::EnsureGraphIndex() const {
  if (graph_index_built_) return;
  const size_t num_graphs = store_.num_graphs();
  node_graph_offsets_.assign(num_graph_nodes_ + 1, 0);
  // Counting-sort pass: local id 0 is the super-seed sentinel (no global
  // identity) and is skipped consistently in both passes.
  for (size_t g = 0; g < num_graphs; ++g) {
    const PrrGraphView view = store_.View(g);
    for (uint32_t v = PrrGraph::kRootLocal; v < view.num_nodes(); ++v) {
      ++node_graph_offsets_[view.global_ids[v] + 1];
    }
  }
  for (size_t v = 0; v < num_graph_nodes_; ++v) {
    node_graph_offsets_[v + 1] += node_graph_offsets_[v];
  }
  node_graphs_.resize(node_graph_offsets_[num_graph_nodes_]);
  std::vector<size_t> cursor(node_graph_offsets_.begin(),
                             node_graph_offsets_.end() - 1);
  for (size_t g = 0; g < num_graphs; ++g) {
    const PrrGraphView view = store_.View(g);
    for (uint32_t v = PrrGraph::kRootLocal; v < view.num_nodes(); ++v) {
      node_graphs_[cursor[view.global_ids[v]]++] = static_cast<uint32_t>(g);
    }
  }
  graph_index_built_ = true;
}

void PrrCollection::RestoreFullPool(PrrStore&& store, size_t num_activated,
                                    size_t num_hopeless) {
  KB_CHECK(num_samples() == 0) << "snapshot restore into a non-empty pool";
  store_ = std::move(store);
  const size_t num_graphs = store_.num_graphs();
  for (size_t g = 0; g < num_graphs; ++g) {
    const PrrGraphView view = store_.View(g);
    critical_scratch_.clear();
    for (uint32_t c : view.critical()) {
      critical_scratch_.push_back(view.global_ids[c]);
    }
    coverage_.AddSet(critical_scratch_);
  }
  num_boostable_ = num_graphs;
  graph_index_built_ = false;
  AddNonBoostableCounts(num_activated, num_hopeless);
}

void PrrCollection::AddNonBoostableCounts(size_t num_activated,
                                          size_t num_hopeless) {
  coverage_.AddEmptySets(num_activated + num_hopeless);
  num_activated_ += num_activated;
  num_hopeless_ += num_hopeless;
}

PrrCollection::LbResult PrrCollection::SelectGreedyLowerBound(
    size_t k, const std::vector<uint8_t>& excluded) const {
  CoverageSelector::Result cov = coverage_.SelectGreedy(k, &excluded);
  LbResult result;
  result.nodes = std::move(cov.selected);
  // Nested-budget answers: μ̂ of each greedy prefix from the per-pick gains,
  // with the same n·covered/θ expression EstimateMu uses.
  result.prefix_mu_hat.reserve(cov.pick_gains.size());
  uint64_t covered = 0;
  for (uint64_t gain : cov.pick_gains) {
    covered += gain;
    result.prefix_mu_hat.push_back(static_cast<double>(num_graph_nodes_) *
                                   static_cast<double>(covered) /
                                   static_cast<double>(num_samples()));
  }
  result.mu_hat =
      result.prefix_mu_hat.empty() ? 0.0 : result.prefix_mu_hat.back();
  return result;
}

namespace {

/// Push-model oracle for the Δ̂ greedy: a node's gain is the number of
/// not-yet-activated PRR-graphs it is currently critical in. Gains move both
/// ways as B grows (Δ̂ is not submodular), so Commit re-evaluates exactly the
/// PRR-graphs containing the pick — diffing old and new critical sets, the
/// "linear in the size of R" update — and reports every node whose gain
/// moved. The re-evaluation scan runs on `num_threads` workers with
/// per-thread evaluator scratch; increments/decrements commute, so the
/// settled gains are deterministic for every thread count.
class DeltaOracle final : public SelectionOracle {
 public:
  DeltaOracle(const PrrCollection& collection,
              const std::vector<uint8_t>& excluded, int num_threads)
      : collection_(collection),
        excluded_(excluded),
        threads_(std::max(1, num_threads)),
        n_(collection.num_graph_nodes()),
        boosted_(n_, 0),
        covered_(collection.store().num_graphs(), 0),
        critical_(collection.store().num_graphs()),
        gains_(n_),
        evaluators_(threads_),
        new_critical_(threads_),
        worker_touched_(threads_) {
    for (size_t v = 0; v < n_; ++v) {
      gains_[v].store(0, std::memory_order_relaxed);
    }
    const size_t num_graphs = collection.store().num_graphs();
    for (size_t g = 0; g < num_graphs; ++g) {
      const PrrGraphView view = collection.store().View(g);
      critical_[g].reserve(view.num_critical_count);
      for (uint32_t c : view.critical()) {
        const NodeId global = view.global_ids[c];
        critical_[g].push_back(global);
        if (!excluded_[global]) {
          gains_[global].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  size_t num_candidates() const override { return n_; }
  uint64_t InitialGain(NodeId v) const override {
    return gains_[v].load(std::memory_order_relaxed);
  }
  uint64_t CurrentGain(NodeId v) const override {
    return gains_[v].load(std::memory_order_relaxed);
  }

  void Commit(NodeId pick, std::vector<NodeId>* touched) override {
    boosted_[pick] = 1;
    gains_[pick].store(0, std::memory_order_relaxed);
    // Graphs are disjoint work items: critical_[g]/covered_[g] are
    // per-graph, gain updates are atomic, and touched nodes are collected
    // per worker.
    const std::span<const uint32_t> graphs_of_pick =
        collection_.GraphsContaining(pick);
    for (auto& t : worker_touched_) t.clear();
    ParallelFor(
        graphs_of_pick.size(), threads_,
        [&](size_t gi, int t) {
          const uint32_t g = graphs_of_pick[gi];
          if (covered_[g]) return;
          std::vector<NodeId>& tl_touched = worker_touched_[t];
          for (NodeId old : critical_[g]) {
            if (!boosted_[old] && !excluded_[old]) {
              gains_[old].fetch_sub(1, std::memory_order_relaxed);
              tl_touched.push_back(old);
            }
          }
          const PrrGraphView view = collection_.store().View(g);
          const bool now_active = evaluators_[t].CriticalNodes(
              view, boosted_.data(), &new_critical_[t]);
          if (now_active) {
            covered_[g] = 1;
            activated_.fetch_add(1, std::memory_order_relaxed);
            critical_[g].clear();
            return;
          }
          critical_[g].clear();
          for (uint32_t c : new_critical_[t]) {
            const NodeId global = view.global_ids[c];
            critical_[g].push_back(global);
            if (!boosted_[global] && !excluded_[global]) {
              gains_[global].fetch_add(1, std::memory_order_relaxed);
              tl_touched.push_back(global);
            }
          }
        },
        /*chunk=*/8);
    // Serial epilogue: report the touched nodes; the greedy loop re-reads
    // their settled gains. Duplicates are tolerated by the loop.
    for (const std::vector<NodeId>& tl : worker_touched_) {
      touched->insert(touched->end(), tl.begin(), tl.end());
    }
  }

  size_t activated() const {
    return activated_.load(std::memory_order_relaxed);
  }
  std::vector<uint8_t>& boosted() { return boosted_; }

 private:
  const PrrCollection& collection_;
  const std::vector<uint8_t>& excluded_;
  const int threads_;
  const size_t n_;
  std::vector<uint8_t> boosted_;
  std::vector<uint8_t> covered_;
  // Current critical set per stored graph (global ids).
  std::vector<std::vector<NodeId>> critical_;
  std::vector<std::atomic<uint32_t>> gains_;
  // Per-worker scratch reused across picks.
  std::vector<PrrEvaluator> evaluators_;
  std::vector<std::vector<uint32_t>> new_critical_;
  std::vector<std::vector<NodeId>> worker_touched_;
  std::atomic<size_t> activated_{0};
};

}  // namespace

PrrCollection::DeltaResult PrrCollection::SelectGreedyDelta(
    size_t k, const std::vector<uint8_t>& excluded, int num_threads) const {
  DeltaResult result;
  if (k == 0 || num_samples() == 0) return result;
  EnsureGraphIndex();

  DeltaOracle oracle(*this, excluded, num_threads);
  GreedyResult greedy = RunLazyGreedy(oracle, k, &excluded);
  result.nodes = std::move(greedy.selected);
  result.activated_samples = oracle.activated();

  // Budget left but no single-node gains: fall back to PRR-occurrence
  // counts (nodes present in many boostable PRR-graphs are the best
  // remaining heuristic candidates).
  if (result.nodes.size() < k) {
    std::vector<uint8_t>& boosted = oracle.boosted();
    std::vector<NodeId> order;
    order.reserve(num_graph_nodes_);
    for (NodeId v = 0; v < num_graph_nodes_; ++v) {
      if (!boosted[v] && !excluded[v] && !GraphsContaining(v).empty()) {
        order.push_back(v);
      }
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      const size_t ca = GraphsContaining(a).size();
      const size_t cb = GraphsContaining(b).size();
      return ca > cb || (ca == cb && a < b);
    });
    for (NodeId v : order) {
      if (result.nodes.size() >= k) break;
      boosted[v] = 1;
      result.nodes.push_back(v);
    }
  }

  result.delta_hat = static_cast<double>(num_graph_nodes_) *
                     static_cast<double>(result.activated_samples) /
                     static_cast<double>(num_samples());
  return result;
}

double PrrCollection::EstimateDelta(const std::vector<NodeId>& boost_set,
                                    int num_threads) const {
  if (num_samples() == 0) return 0.0;
  const std::vector<uint8_t> boosted =
      MakeNodeBitmap(num_graph_nodes_, boost_set);
  std::atomic<size_t> activated{0};
  const int threads = std::max(1, num_threads);
  std::vector<PrrEvaluator> evaluators(threads);
  ParallelFor(
      store_.num_graphs(), threads,
      [&](size_t g, int t) {
        if (evaluators[t].IsActivated(store_.View(g), boosted.data())) {
          activated.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*chunk=*/256);
  return static_cast<double>(num_graph_nodes_) *
         static_cast<double>(activated.load()) /
         static_cast<double>(num_samples());
}

double PrrCollection::EstimateMu(const std::vector<NodeId>& boost_set) const {
  if (num_samples() == 0) return 0.0;
  // Count samples whose critical set intersects B, via the coverage
  // structure's per-node sample lists. Set ids from SetsContaining() index
  // the *non-empty* sample numbering even when empty samples interleave, so
  // `hit` is sized by num_nonempty_sets() — never by num_sets().
  std::vector<uint8_t> hit(coverage_.num_nonempty_sets(), 0);
  size_t covered = 0;
  for (NodeId v : boost_set) {
    KB_CHECK(v < num_graph_nodes_);
    for (uint32_t set_id : coverage_.SetsContaining(v)) {
      if (!hit[set_id]) {
        hit[set_id] = 1;
        ++covered;
      }
    }
  }
  return static_cast<double>(num_graph_nodes_) * static_cast<double>(covered) /
         static_cast<double>(num_samples());
}

}  // namespace kboost
