#include "src/core/prr_collection.h"

#include <algorithm>
#include <atomic>
#include <queue>

#include "src/sim/boost_model.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace kboost {

PrrCollection::PrrCollection(size_t num_graph_nodes)
    : num_graph_nodes_(num_graph_nodes), coverage_(num_graph_nodes) {}

void PrrCollection::AddBoostable(const PrrGraph& graph) {
  const size_t id = store_.Add(graph);
  const PrrGraphView view = store_.View(id);
  critical_scratch_.clear();
  for (uint32_t c : view.critical()) {
    critical_scratch_.push_back(view.global_ids[c]);
  }
  coverage_.AddSet(critical_scratch_);
  graph_index_built_ = false;
  ++num_boostable_;
}

void PrrCollection::AddBoostableFromStore(const PrrStore& shard,
                                          size_t shard_id) {
  const size_t id = store_.AppendFrom(shard, shard_id);
  const PrrGraphView view = store_.View(id);
  critical_scratch_.clear();
  for (uint32_t c : view.critical()) {
    critical_scratch_.push_back(view.global_ids[c]);
  }
  coverage_.AddSet(critical_scratch_);
  graph_index_built_ = false;
  ++num_boostable_;
}

void PrrCollection::AddBoostableCriticalOnly(
    std::span<const NodeId> critical_globals) {
  coverage_.AddSet(critical_globals);
  lb_critical_bytes_ += critical_globals.size() * sizeof(NodeId);
  ++num_boostable_;
}

void PrrCollection::AddNonBoostable(PrrStatus status) {
  KB_DCHECK(status != PrrStatus::kBoostable);
  coverage_.AddEmptySet();
  if (status == PrrStatus::kActivated) {
    ++num_activated_;
  } else {
    ++num_hopeless_;
  }
}

void PrrCollection::EnsureGraphIndex() const {
  if (graph_index_built_) return;
  const size_t num_graphs = store_.num_graphs();
  node_graph_offsets_.assign(num_graph_nodes_ + 1, 0);
  // Counting-sort pass: local id 0 is the super-seed sentinel (no global
  // identity) and is skipped consistently in both passes.
  for (size_t g = 0; g < num_graphs; ++g) {
    const PrrGraphView view = store_.View(g);
    for (uint32_t v = PrrGraph::kRootLocal; v < view.num_nodes(); ++v) {
      ++node_graph_offsets_[view.global_ids[v] + 1];
    }
  }
  for (size_t v = 0; v < num_graph_nodes_; ++v) {
    node_graph_offsets_[v + 1] += node_graph_offsets_[v];
  }
  node_graphs_.resize(node_graph_offsets_[num_graph_nodes_]);
  std::vector<size_t> cursor(node_graph_offsets_.begin(),
                             node_graph_offsets_.end() - 1);
  for (size_t g = 0; g < num_graphs; ++g) {
    const PrrGraphView view = store_.View(g);
    for (uint32_t v = PrrGraph::kRootLocal; v < view.num_nodes(); ++v) {
      node_graphs_[cursor[view.global_ids[v]]++] = static_cast<uint32_t>(g);
    }
  }
  graph_index_built_ = true;
}

PrrCollection::LbResult PrrCollection::SelectGreedyLowerBound(
    size_t k, const std::vector<uint8_t>& excluded) const {
  CoverageSelector::Result cov = coverage_.SelectGreedy(k, &excluded);
  LbResult result;
  result.nodes = std::move(cov.selected);
  result.mu_hat =
      static_cast<double>(num_graph_nodes_) * cov.coverage_fraction;
  return result;
}

PrrCollection::DeltaResult PrrCollection::SelectGreedyDelta(
    size_t k, const std::vector<uint8_t>& excluded, int num_threads) const {
  DeltaResult result;
  if (k == 0 || num_samples() == 0) return result;
  EnsureGraphIndex();

  const size_t n = num_graph_nodes_;
  const size_t num_graphs = store_.num_graphs();
  const int threads = std::max(1, num_threads);

  std::vector<uint8_t> boosted(n, 0);
  std::vector<uint8_t> covered(num_graphs, 0);
  // Current critical set per stored graph (global ids).
  std::vector<std::vector<NodeId>> critical(num_graphs);
  // Gains are updated concurrently during the per-pick re-evaluation scan;
  // increments/decrements commute, so the final values are deterministic.
  std::vector<std::atomic<uint32_t>> gains(n);
  for (size_t v = 0; v < n; ++v) gains[v].store(0, std::memory_order_relaxed);

  for (size_t g = 0; g < num_graphs; ++g) {
    const PrrGraphView view = store_.View(g);
    critical[g].reserve(view.num_critical_count);
    for (uint32_t c : view.critical()) {
      const NodeId global = view.global_ids[c];
      critical[g].push_back(global);
      if (!excluded[global]) gains[global].fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Max-heap tolerant of stale entries: an entry is valid iff its recorded
  // gain still matches gains[node]. Gains move both ways as B grows, so a
  // fresh entry is pushed for every node whose gain changed. Ties break
  // toward smaller node ids, which makes the pick — and therefore the whole
  // selection — independent of heap insertion order and thread count.
  struct Entry {
    uint32_t gain;
    NodeId node;
  };
  auto cmp = [](const Entry& a, const Entry& b) {
    return a.gain < b.gain || (a.gain == b.gain && a.node > b.node);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t gv = gains[v].load(std::memory_order_relaxed);
    if (gv > 0 && !excluded[v]) heap.push(Entry{gv, v});
  }

  // Per-worker scratch reused across picks.
  std::vector<PrrEvaluator> evaluators(threads);
  std::vector<std::vector<uint32_t>> new_critical(threads);
  std::vector<std::vector<NodeId>> touched(threads);
  std::atomic<size_t> activated{0};

  while (result.nodes.size() < k) {
    NodeId pick = kInvalidNode;
    while (!heap.empty()) {
      const Entry top = heap.top();
      const uint32_t current = gains[top.node].load(std::memory_order_relaxed);
      if (boosted[top.node] || top.gain != current || current == 0) {
        heap.pop();
        continue;
      }
      pick = top.node;
      break;
    }
    if (pick == kInvalidNode) break;  // no single node has positive gain

    boosted[pick] = 1;
    result.nodes.push_back(pick);
    gains[pick].store(0, std::memory_order_relaxed);

    // Re-evaluate every graph containing the pick; update gains by diffing
    // old and new critical sets ("linear in the size of R" update). Graphs
    // are disjoint work items: critical[g]/covered[g] are per-graph, gain
    // updates are atomic, and touched nodes are collected per worker.
    const std::span<const uint32_t> graphs_of_pick = GraphsContaining(pick);
    for (auto& t : touched) t.clear();
    ParallelFor(
        graphs_of_pick.size(), threads,
        [&](size_t gi, int t) {
          const uint32_t g = graphs_of_pick[gi];
          if (covered[g]) return;
          std::vector<NodeId>& tl_touched = touched[t];
          for (NodeId old : critical[g]) {
            if (!boosted[old] && !excluded[old]) {
              gains[old].fetch_sub(1, std::memory_order_relaxed);
              tl_touched.push_back(old);
            }
          }
          const PrrGraphView view = store_.View(g);
          const bool now_active = evaluators[t].CriticalNodes(
              view, boosted.data(), &new_critical[t]);
          if (now_active) {
            covered[g] = 1;
            activated.fetch_add(1, std::memory_order_relaxed);
            critical[g].clear();
            return;
          }
          critical[g].clear();
          for (uint32_t c : new_critical[t]) {
            const NodeId global = view.global_ids[c];
            critical[g].push_back(global);
            if (!boosted[global] && !excluded[global]) {
              gains[global].fetch_add(1, std::memory_order_relaxed);
              tl_touched.push_back(global);
            }
          }
        },
        /*chunk=*/8);
    // Serial epilogue: publish one heap entry per touched node with its
    // settled gain. Stale or duplicate entries are filtered at pop time.
    for (const std::vector<NodeId>& tl : touched) {
      for (NodeId v : tl) {
        const uint32_t gv = gains[v].load(std::memory_order_relaxed);
        if (gv > 0) heap.push(Entry{gv, v});
      }
    }
  }
  result.activated_samples = activated.load(std::memory_order_relaxed);

  // Budget left but no single-node gains: fall back to PRR-occurrence
  // counts (nodes present in many boostable PRR-graphs are the best
  // remaining heuristic candidates).
  if (result.nodes.size() < k) {
    std::vector<NodeId> order;
    order.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      if (!boosted[v] && !excluded[v] && !GraphsContaining(v).empty()) {
        order.push_back(v);
      }
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      const size_t ca = GraphsContaining(a).size();
      const size_t cb = GraphsContaining(b).size();
      return ca > cb || (ca == cb && a < b);
    });
    for (NodeId v : order) {
      if (result.nodes.size() >= k) break;
      boosted[v] = 1;
      result.nodes.push_back(v);
    }
  }

  result.delta_hat = static_cast<double>(num_graph_nodes_) *
                     static_cast<double>(result.activated_samples) /
                     static_cast<double>(num_samples());
  return result;
}

double PrrCollection::EstimateDelta(const std::vector<NodeId>& boost_set,
                                    int num_threads) const {
  if (num_samples() == 0) return 0.0;
  const std::vector<uint8_t> boosted =
      MakeNodeBitmap(num_graph_nodes_, boost_set);
  std::atomic<size_t> activated{0};
  const int threads = std::max(1, num_threads);
  std::vector<PrrEvaluator> evaluators(threads);
  ParallelFor(
      store_.num_graphs(), threads,
      [&](size_t g, int t) {
        if (evaluators[t].IsActivated(store_.View(g), boosted.data())) {
          activated.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*chunk=*/256);
  return static_cast<double>(num_graph_nodes_) *
         static_cast<double>(activated.load()) /
         static_cast<double>(num_samples());
}

double PrrCollection::EstimateMu(const std::vector<NodeId>& boost_set) const {
  if (num_samples() == 0) return 0.0;
  // Count samples whose critical set intersects B, via the coverage
  // structure's per-node sample lists. Set ids from SetsContaining() index
  // the *non-empty* sample numbering even when empty samples interleave, so
  // `hit` is sized by num_nonempty_sets() — never by num_sets().
  std::vector<uint8_t> hit(coverage_.num_nonempty_sets(), 0);
  size_t covered = 0;
  for (NodeId v : boost_set) {
    KB_CHECK(v < num_graph_nodes_);
    for (uint32_t set_id : coverage_.SetsContaining(v)) {
      if (!hit[set_id]) {
        hit[set_id] = 1;
        ++covered;
      }
    }
  }
  return static_cast<double>(num_graph_nodes_) * static_cast<double>(covered) /
         static_cast<double>(num_samples());
}

}  // namespace kboost
