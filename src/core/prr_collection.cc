#include "src/core/prr_collection.h"

#include <algorithm>
#include <bit>

#include "src/select/greedy.h"
#include "src/sim/boost_model.h"
#include "src/util/fault.h"
#include "src/util/thread_pool.h"

namespace kboost {

PrrCollection::PrrCollection(size_t num_graph_nodes, int num_shards)
    : num_graph_nodes_(num_graph_nodes),
      stores_(static_cast<size_t>(std::max(1, num_shards))),
      coverage_(num_graph_nodes) {
  KB_CHECK(num_shards >= 1 && num_shards <= kMaxShards)
      << "num_shards " << num_shards << " outside [1, " << kMaxShards << "]";
}

size_t PrrCollection::num_stored_graphs() const {
  size_t total = 0;
  for (const PrrStore& store : stores_) total += store.num_graphs();
  return total;
}

size_t PrrCollection::StoredGraphBytes() const {
  size_t total = lb_critical_bytes_;
  for (const PrrStore& store : stores_) total += store.MemoryBytes();
  return total;
}

size_t PrrCollection::OccurrenceCount(NodeId v) const {
  EnsureGraphIndex(1);
  size_t count = 0;
  for (const ShardIndex& index : shard_index_) {
    count += index.node_offsets[v + 1] - index.node_offsets[v];
  }
  return count;
}

void PrrCollection::AddBoostable(const PrrGraph& graph) {
  PrrStore& store = stores_[NextSampleShard()];
  const size_t id = store.Add(graph);
  const PrrGraphView view = store.View(id);
  critical_scratch_.clear();
  for (uint32_t c : view.critical()) {
    critical_scratch_.push_back(view.global_ids[c]);
  }
  coverage_.AddSet(critical_scratch_);
  graph_index_built_ = false;
  ++num_boostable_;
}

void PrrCollection::AddBoostableFromStore(const PrrStore& shard,
                                          size_t shard_id) {
  PrrStore& store = stores_[NextSampleShard()];
  const size_t id = store.AppendFrom(shard, shard_id);
  const PrrGraphView view = store.View(id);
  critical_scratch_.clear();
  for (uint32_t c : view.critical()) {
    critical_scratch_.push_back(view.global_ids[c]);
  }
  coverage_.AddSet(critical_scratch_);
  graph_index_built_ = false;
  ++num_boostable_;
}

void PrrCollection::AddBoostableCriticalOnly(
    std::span<const NodeId> critical_globals) {
  coverage_.AddSet(critical_globals);
  lb_critical_bytes_ += critical_globals.size() * sizeof(NodeId);
  ++num_boostable_;
}

void PrrCollection::AddNonBoostable(PrrStatus status) {
  KB_DCHECK(status != PrrStatus::kBoostable);
  coverage_.AddEmptySet();
  if (status == PrrStatus::kActivated) {
    ++num_activated_;
  } else {
    ++num_hopeless_;
  }
}

void PrrCollection::EnsureGraphIndex(int num_threads) const {
  if (graph_index_built_) return;
  shard_index_.resize(stores_.size());
  // Each shard's CSR touches only that shard's arrays, so the per-shard
  // counting-sort builds are independent work items.
  ParallelFor(
      stores_.size(), num_threads,
      [&](size_t s, int /*t*/) {
        const PrrStore& store = stores_[s];
        ShardIndex& index = shard_index_[s];
        const size_t num_graphs = store.num_graphs();
        index.node_offsets.assign(num_graph_nodes_ + 1, 0);
        // Counting-sort pass: local id 0 is the super-seed sentinel (no
        // global identity) and is skipped consistently in both passes.
        for (size_t g = 0; g < num_graphs; ++g) {
          const PrrGraphView view = store.View(g);
          for (uint32_t v = PrrGraph::kRootLocal; v < view.num_nodes(); ++v) {
            ++index.node_offsets[view.global_ids[v] + 1];
          }
        }
        for (size_t v = 0; v < num_graph_nodes_; ++v) {
          index.node_offsets[v + 1] += index.node_offsets[v];
        }
        index.graphs.resize(index.node_offsets[num_graph_nodes_]);
        index.locals.resize(index.node_offsets[num_graph_nodes_]);
        std::vector<size_t> cursor(index.node_offsets.begin(),
                                   index.node_offsets.end() - 1);
        for (size_t g = 0; g < num_graphs; ++g) {
          const PrrGraphView view = store.View(g);
          for (uint32_t v = PrrGraph::kRootLocal; v < view.num_nodes(); ++v) {
            const size_t slot = cursor[view.global_ids[v]]++;
            index.graphs[slot] = static_cast<uint32_t>(g);
            index.locals[slot] = v;
          }
        }
      },
      /*chunk=*/1);
  graph_index_built_ = true;
}

void PrrCollection::WarmIndexes(int num_threads) const {
  EnsureGraphIndex(num_threads);
  coverage_.WarmIndex();
}

void PrrCollection::AddBoostableRound(
    std::span<const BoostableSampleRef> items, bool lb_only, int num_threads) {
  const size_t count = items.size();
  if (count == 0) return;
  std::vector<uint32_t> sizes(count);
  if (lb_only) {
    size_t total = 0;
    for (size_t i = 0; i < count; ++i) {
      sizes[i] = items[i].critical_count;
      total += items[i].critical_count;
    }
    lb_critical_bytes_ += total * sizeof(NodeId);
  } else {
    // Graphs already sit in their shard arenas (the sampler's direct-write
    // path); only the critical sets still need to reach the coverage
    // structure.
    for (size_t i = 0; i < count; ++i) {
      sizes[i] = static_cast<uint32_t>(
          stores_[items[i].shard].critical_count(items[i].shard_graph_id));
    }
    graph_index_built_ = false;
  }
  NodeId* base = coverage_.AppendSets(sizes);
  std::vector<size_t> offsets(count + 1, 0);
  for (size_t i = 0; i < count; ++i) offsets[i + 1] = offsets[i] + sizes[i];
  ParallelFor(
      count, num_threads,
      [&](size_t i, int /*t*/) {
        NodeId* dst = base + offsets[i];
        if (lb_only) {
          std::copy(items[i].critical, items[i].critical + sizes[i], dst);
        } else {
          const PrrGraphView view =
              stores_[items[i].shard].View(items[i].shard_graph_id);
          for (uint32_t c = 0; c < sizes[i]; ++c) {
            dst[c] = view.global_ids[view.critical_locals[c]];
          }
        }
      },
      /*chunk=*/64);
  num_boostable_ += count;
}

void PrrCollection::RestoreFullPool(std::vector<PrrStore>&& stores,
                                    size_t num_activated,
                                    size_t num_hopeless) {
  KB_CHECK(num_samples() == 0) << "snapshot restore into a non-empty pool";
  KB_CHECK(!stores.empty() &&
           stores.size() <= static_cast<size_t>(kMaxShards));
  stores_ = std::move(stores);
  // One coverage grow for the whole pool instead of an AddSet per graph,
  // filled in shard-major stored order (see the header note on numbering).
  const size_t num_graphs = num_stored_graphs();
  std::vector<uint32_t> sizes;
  sizes.reserve(num_graphs);
  for (const PrrStore& store : stores_) {
    for (size_t g = 0; g < store.num_graphs(); ++g) {
      sizes.push_back(static_cast<uint32_t>(store.critical_count(g)));
    }
  }
  // Translate every graph's critical locals to global ids in one flat pass
  // per shard: the critical pool is contiguous in stored-graph order, so a
  // single cursor walks it while a prefix sum tracks each graph's id base.
  // (Per-graph View() materialization here dominated mmap warm-start time.)
  NodeId* dst = coverage_.AppendSets(sizes);
  for (const PrrStore& store : stores_) {
    const NodeId* ids = store.raw_global_ids().data();
    const uint32_t* cursor = store.raw_critical().data();
    const size_t store_graphs = store.num_graphs();
    uint64_t node_begin = 0;
    for (size_t g = 0; g < store_graphs; ++g) {
      const NodeId* base = ids + node_begin;
      for (const uint32_t* end = cursor + store.critical_count(g);
           cursor != end; ++cursor) {
        *dst++ = base[*cursor];
      }
      node_begin += store.num_nodes(g);
    }
  }
  num_boostable_ = num_graphs;
  graph_index_built_ = false;
  AddNonBoostableCounts(num_activated, num_hopeless);
}

void PrrCollection::RestoreFullPool(std::vector<PrrStore>&& stores,
                                    std::span<const uint32_t> set_sizes,
                                    std::span<const NodeId> coverage_nodes,
                                    size_t num_activated, size_t num_hopeless) {
  KB_CHECK(num_samples() == 0) << "snapshot restore into a non-empty pool";
  KB_CHECK(!stores.empty() &&
           stores.size() <= static_cast<size_t>(kMaxShards));
  stores_ = std::move(stores);
  // The snapshot already carries both halves of what the owned-restore path
  // materializes: the shard-major critical-globals pool AND the per-graph
  // set sizes (the arenas' num_critical sections, which the caller hands
  // through so this path never strides over the per-graph meta tables).
  KB_CHECK(set_sizes.size() == num_stored_graphs())
      << "coverage size table covers " << set_sizes.size() << " of "
      << num_stored_graphs() << " stored graphs";
  coverage_.BindExternalSets(set_sizes, coverage_nodes);
  num_boostable_ = set_sizes.size();
  graph_index_built_ = false;
  AddNonBoostableCounts(num_activated, num_hopeless);
}

void PrrCollection::RestoreFullPool(PrrStore&& store, size_t num_activated,
                                    size_t num_hopeless) {
  std::vector<PrrStore> stores;
  stores.push_back(std::move(store));
  RestoreFullPool(std::move(stores), num_activated, num_hopeless);
}

void PrrCollection::AddNonBoostableCounts(size_t num_activated,
                                          size_t num_hopeless) {
  coverage_.AddEmptySets(num_activated + num_hopeless);
  num_activated_ += num_activated;
  num_hopeless_ += num_hopeless;
}

PrrCollection::LbResult PrrCollection::SelectGreedyLowerBound(
    size_t k, const std::vector<uint8_t>& excluded) const {
  CoverageSelector::Result cov = coverage_.SelectGreedy(k, &excluded);
  LbResult result;
  result.nodes = std::move(cov.selected);
  // Nested-budget answers: μ̂ of each greedy prefix from the per-pick gains,
  // with the same n·covered/θ expression EstimateMu uses.
  result.prefix_mu_hat.reserve(cov.pick_gains.size());
  uint64_t covered = 0;
  for (uint64_t gain : cov.pick_gains) {
    covered += gain;
    result.prefix_mu_hat.push_back(static_cast<double>(num_graph_nodes_) *
                                   static_cast<double>(covered) /
                                   static_cast<double>(num_samples()));
  }
  result.mu_hat =
      result.prefix_mu_hat.empty() ? 0.0 : result.prefix_mu_hat.back();
  return result;
}

namespace {

/// Push-model oracle for the Δ̂ greedy: a node's gain is the number of
/// not-yet-activated PRR-graphs it is currently critical in. Gains move both
/// ways as B grows (Δ̂ is not submodular), so Commit re-evaluates exactly the
/// PRR-graphs containing the pick and reports every node whose gain moved.
///
/// The re-evaluation runs on the incremental engine: each graph keeps
/// fwd/bwd/crit bitmaps in its shard's PrrEvalState arena, initialized
/// lazily on first touch (live-edge-only reach at B ∩ R = ∅ plus the stored
/// critical set) and relaxed forward/backward from the pick afterwards.
/// Because boosting only opens edges, reach and criticality grow
/// monotonically until a graph activates — so commits emit only +1 events
/// for newly critical nodes, and -1 events for a graph's whole critical set
/// exactly once, on activation. Graphs too large for cached state fall back
/// to the scratch evaluator's full recompute (old-vs-new critical diff).
///
/// Sharding: graphs are addressed by flat shard-major ids (shard s's graphs
/// occupy [base(s), base(s)+|s|)) purely for the oracle's own tables; gains
/// settle additively from per-worker event buffers, so both the flat
/// numbering and the shard partition are invisible in the selected set.
/// Workers collect (node, ±1) gain events and activation counts in
/// per-worker buffers; one serial merge per pick settles the plain (non-
/// atomic) gain table and reports touched nodes, so the settled gains are
/// deterministic for every thread count and every shard count. Every gain
/// *increase* is reported (required for lazy-greedy correctness); decreases
/// ride along for free.
class DeltaOracle final : public SelectionOracle {
 public:
  DeltaOracle(const PrrCollection& collection,
              const std::vector<uint8_t>& excluded, int num_threads,
              ShardedEvalState* state, StopToken* stop)
      : collection_(collection),
        excluded_(excluded),
        stop_(stop),
        threads_(std::max(1, num_threads)),
        n_(collection.num_graph_nodes()),
        boosted_(n_, 0),
        gains_(n_, 0),
        state_(state),
        incrementals_(threads_),
        evaluators_(threads_),
        new_critical_(threads_),
        worker_events_(threads_),
        worker_activated_(threads_, 0) {
    state_->Attach(collection.shards());
    const size_t num_shards = collection.num_shards();
    shard_base_.assign(num_shards + 1, 0);
    for (size_t s = 0; s < num_shards; ++s) {
      shard_base_[s + 1] =
          shard_base_[s] + collection.shard_store(s).num_graphs();
    }
    const size_t total = shard_base_[num_shards];
    covered_.assign(total, 0);
    critical_.resize(total);
    uint32_t max_nodes = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const PrrStore& store = collection.shard_store(s);
      max_nodes = std::max(max_nodes, store.max_num_nodes());
      for (size_t g = 0; g < store.num_graphs(); ++g) {
        const size_t flat = shard_base_[s] + g;
        const PrrGraphView view = store.View(g);
        critical_[flat].reserve(view.num_critical_count);
        for (uint32_t c : view.critical()) {
          const NodeId global = view.global_ids[c];
          critical_[flat].push_back(global);
          if (!excluded_[global]) ++gains_[global];
        }
      }
    }
    // Grow-only scratch for the fallback evaluators, sized once per run.
    for (PrrEvaluator& e : evaluators_) e.Reserve(max_nodes);
    pick_graphs_.resize(num_shards);
    pick_locals_.resize(num_shards);
    pick_prefix_.assign(num_shards + 1, 0);
  }

  size_t num_candidates() const override { return n_; }
  uint64_t InitialGain(NodeId v) const override { return gains_[v]; }
  uint64_t CurrentGain(NodeId v) const override { return gains_[v]; }

  void Commit(NodeId pick, std::vector<NodeId>* touched) override {
    boosted_[pick] = 1;
    gains_[pick] = 0;
    // Graphs are disjoint work items: the eval-state bitmaps and
    // critical_[flat] are per-graph, and gain events land in per-worker
    // buffers — nothing shared is written during the scan. One flat
    // ParallelFor spans the pick's graphs of every shard (the per-item
    // shard lookup walks the tiny prefix table).
    const size_t num_shards = collection_.num_shards();
    for (size_t s = 0; s < num_shards; ++s) {
      pick_graphs_[s] = collection_.ShardGraphsContaining(s, pick);
      pick_locals_[s] = collection_.ShardGraphLocalsContaining(s, pick);
      pick_prefix_[s + 1] = pick_prefix_[s] + pick_graphs_[s].size();
    }
    ParallelFor(
        pick_prefix_[num_shards], threads_,
        [&](size_t gi, int t) {
          // Deadline/cancel polling inside the pick: a single pick's fan-out
          // can span the whole pool (today the only uninterruptible stretch
          // of a solve), so each worker re-polls the token every
          // kStopStride items and drains — not skipping mid-item, so a
          // graph's bitmaps are never left torn — once it tripped. The
          // abandoned gain table is discarded by the caller, never served.
          if (stop_ != nullptr) {
            if (stop_->stopped()) return;
            if (gi % kStopStride == 0) {
              MaybeInjectFaultDelay(FaultSite::kPickStride);
              if (stop_->ShouldStop()) return;
            }
          }
          size_t s = 0;
          while (gi >= pick_prefix_[s + 1]) ++s;
          const size_t i = gi - pick_prefix_[s];
          const uint32_t g = pick_graphs_[s][i];
          const size_t flat = shard_base_[s] + g;
          if (covered_[flat]) return;
          std::vector<GainEvent>& events = worker_events_[t];
          const PrrGraphView view = collection_.shard_store(s).View(g);
          PrrEvalState& shard_state = state_->shard(s);
          if (!shard_state.has_state(g)) {
            ScratchCommit(flat, view, t);
            return;
          }
          uint64_t* fwd = shard_state.fwd(g);
          uint64_t* bwd = shard_state.bwd(g);
          uint64_t* crit = shard_state.crit(g);
          PrrIncrementalEvaluator& inc = incrementals_[t];
          bool activated = false;
          if (!shard_state.initialized(g)) {
            // First touch this run: B ∩ R = {pick} (an earlier pick inside R
            // would have touched it), so the empty-set state plus one relax
            // is exact. The stored critical set is the ∅-state membership.
            shard_state.mark_initialized(g);
            inc.InitEmptyReach(view, fwd, bwd);
            for (uint32_t c : view.critical()) {
              PrrIncrementalEvaluator::SetBit(crit, c);
            }
            activated =
                PrrIncrementalEvaluator::TestBit(fwd, PrrGraph::kRootLocal);
          }
          if (!activated) {
            activated = inc.RelaxCommit(view, boosted_.data(),
                                        pick_locals_[s][i], fwd, bwd);
          }
          if (activated) {
            covered_[flat] = 1;
            ++worker_activated_[t];
            for (NodeId old : critical_[flat]) {
              if (!boosted_[old] && !excluded_[old]) {
                events.push_back(GainEvent{old, -1});
              }
            }
            critical_[flat].clear();
            critical_[flat].shrink_to_fit();
            return;
          }
          std::vector<uint32_t>& fresh = new_critical_[t];
          fresh.clear();
          inc.AppendNewCriticalFrontier(view, boosted_.data(), fwd, bwd, crit,
                                        &fresh);
          for (uint32_t c : fresh) {
            const NodeId global = view.global_ids[c];
            critical_[flat].push_back(global);
            // Newly critical nodes are never boosted (the evaluator checks),
            // so only exclusion filters the gain event.
            if (!excluded_[global]) events.push_back(GainEvent{global, +1});
          }
        },
        /*chunk=*/16);
    // One serial merge per pick: settle gains, count activations, report
    // touched nodes (duplicates are tolerated by the greedy loop).
    for (int t = 0; t < threads_; ++t) {
      activated_ += worker_activated_[t];
      worker_activated_[t] = 0;
      for (const GainEvent& e : worker_events_[t]) {
        gains_[e.node] = static_cast<uint32_t>(
            static_cast<int64_t>(gains_[e.node]) + e.delta);
        touched->push_back(e.node);
      }
      worker_events_[t].clear();
    }
  }

  size_t activated() const { return activated_; }
  std::vector<uint8_t>& boosted() { return boosted_; }

 private:
  /// Items between full stop-token polls in the per-pick scan. Small enough
  /// that even tiny PRR-graphs (~3 nodes on the paper's workloads) bound the
  /// time between polls to microseconds; large enough that the clock read
  /// (a vDSO call) stays noise.
  static constexpr size_t kStopStride = 32;

  struct GainEvent {
    NodeId node;
    int32_t delta;
  };

  /// Full-recompute fallback for graphs without cached state: diff the old
  /// and new critical sets exactly as the pre-incremental engine did.
  void ScratchCommit(size_t flat, const PrrGraphView& view, int t) {
    std::vector<GainEvent>& events = worker_events_[t];
    for (NodeId old : critical_[flat]) {
      if (!boosted_[old] && !excluded_[old]) {
        events.push_back(GainEvent{old, -1});
      }
    }
    const bool now_active =
        evaluators_[t].CriticalNodes(view, boosted_.data(), &new_critical_[t]);
    if (now_active) {
      covered_[flat] = 1;
      ++worker_activated_[t];
      critical_[flat].clear();
      return;
    }
    critical_[flat].clear();
    for (uint32_t c : new_critical_[t]) {
      const NodeId global = view.global_ids[c];
      critical_[flat].push_back(global);
      if (!boosted_[global] && !excluded_[global]) {
        events.push_back(GainEvent{global, +1});
      }
    }
  }

  const PrrCollection& collection_;
  const std::vector<uint8_t>& excluded_;
  StopToken* stop_;
  const int threads_;
  const size_t n_;
  std::vector<uint8_t> boosted_;
  // Flat shard-major graph numbering: shard s's graph g is
  // shard_base_[s] + g in covered_/critical_.
  std::vector<size_t> shard_base_;
  std::vector<uint8_t> covered_;
  // Current critical set per stored graph (global ids). May retain nodes
  // that were boosted after becoming critical; every consumer filters with
  // !boosted_, so the settled gains are unaffected.
  std::vector<std::vector<NodeId>> critical_;
  std::vector<uint32_t> gains_;
  ShardedEvalState* state_;
  // Per-pick fan-out scratch: the pick's graph/local spans per shard and
  // their prefix counts (reused across picks).
  std::vector<std::span<const uint32_t>> pick_graphs_;
  std::vector<std::span<const uint32_t>> pick_locals_;
  std::vector<size_t> pick_prefix_;
  // Per-worker scratch reused across picks.
  std::vector<PrrIncrementalEvaluator> incrementals_;
  std::vector<PrrEvaluator> evaluators_;
  std::vector<std::vector<uint32_t>> new_critical_;
  std::vector<std::vector<GainEvent>> worker_events_;
  std::vector<size_t> worker_activated_;
  size_t activated_ = 0;
};

}  // namespace

PrrCollection::DeltaResult PrrCollection::SelectGreedyDelta(
    size_t k, const std::vector<uint8_t>& excluded, int num_threads,
    ShardedEvalState* eval_state, StopToken* stop) const {
  DeltaResult result;
  if (k == 0 || num_samples() == 0) return result;
  EnsureGraphIndex(num_threads);

  // Callers that serve queries concurrently pass per-query eval state (from
  // their SolveContext); the call-local fallback keeps one-shot callers
  // correct at the cost of rebuilding the bitmap arenas.
  ShardedEvalState local_state;
  DeltaOracle oracle(*this, excluded, num_threads,
                     eval_state != nullptr ? eval_state : &local_state, stop);
  GreedyResult greedy = RunLazyGreedy(oracle, k, &excluded, stop);
  result.nodes = std::move(greedy.selected);
  result.pick_gains = std::move(greedy.gains);
  result.activated_samples = oracle.activated();
  result.cancelled = greedy.cancelled;
  result.deadline_exceeded = greedy.deadline_exceeded;
  if (result.cancelled || result.deadline_exceeded) {
    result.delta_hat = static_cast<double>(num_graph_nodes_) *
                       static_cast<double>(result.activated_samples) /
                       static_cast<double>(num_samples());
    return result;
  }

  // Budget left but no single-node gains: fall back to PRR-occurrence
  // counts (nodes present in many boostable PRR-graphs are the best
  // remaining heuristic candidates). Occurrence counts sum over shards, so
  // the fill order is shard-count-invariant.
  if (result.nodes.size() < k) {
    std::vector<uint8_t>& boosted = oracle.boosted();
    std::vector<NodeId> order;
    order.reserve(num_graph_nodes_);
    std::vector<size_t> occurrences(num_graph_nodes_, 0);
    for (NodeId v = 0; v < num_graph_nodes_; ++v) {
      if (boosted[v] || excluded[v]) continue;
      occurrences[v] = OccurrenceCount(v);
      if (occurrences[v] > 0) order.push_back(v);
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return occurrences[a] > occurrences[b] ||
             (occurrences[a] == occurrences[b] && a < b);
    });
    for (NodeId v : order) {
      if (result.nodes.size() >= k) break;
      boosted[v] = 1;
      result.nodes.push_back(v);
    }
  }

  result.delta_hat = static_cast<double>(num_graph_nodes_) *
                     static_cast<double>(result.activated_samples) /
                     static_cast<double>(num_samples());
  return result;
}

double PrrCollection::EstimateDelta(const std::vector<NodeId>& boost_set,
                                    int num_threads) const {
  if (num_samples() == 0) return 0.0;
  const std::vector<uint8_t> boosted =
      MakeNodeBitmap(num_graph_nodes_, boost_set);
  // Batched evaluation: activation bits for 64 graphs land in one word per
  // worker-owned chunk; the count is a popcount reduction, no atomics. The
  // per-shard counts are summed — addition makes the result shard-count-
  // invariant.
  PrrBatchEvaluator batch;
  size_t activated = 0;
  for (const PrrStore& store : stores_) {
    activated += batch.CountActivated(store, boosted.data(), num_threads);
  }
  return static_cast<double>(num_graph_nodes_) *
         static_cast<double>(activated) /
         static_cast<double>(num_samples());
}

double PrrCollection::EstimateMu(const std::vector<NodeId>& boost_set) const {
  if (num_samples() == 0) return 0.0;
  // Count samples whose critical set intersects B, via the coverage
  // structure's per-node sample lists. Set ids from SetsContaining() index
  // the *non-empty* sample numbering even when empty samples interleave, so
  // `hit` is sized by num_nonempty_sets() — never by num_sets(). Hits are
  // packed 64 samples per word: the inner loop is a branchless OR, and the
  // covered total is one popcount scan.
  std::vector<uint64_t> hit((coverage_.num_nonempty_sets() + 63) / 64, 0);
  for (NodeId v : boost_set) {
    KB_CHECK(v < num_graph_nodes_);
    for (uint32_t set_id : coverage_.SetsContaining(v)) {
      hit[set_id >> 6] |= 1ull << (set_id & 63);
    }
  }
  size_t covered = 0;
  for (const uint64_t w : hit) covered += std::popcount(w);
  return static_cast<double>(num_graph_nodes_) * static_cast<double>(covered) /
         static_cast<double>(num_samples());
}

}  // namespace kboost
