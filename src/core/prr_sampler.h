#ifndef KBOOST_CORE_PRR_SAMPLER_H_
#define KBOOST_CORE_PRR_SAMPLER_H_

#include <memory>
#include <vector>

#include "src/core/prr_collection.h"
#include "src/core/prr_graph.h"
#include "src/core/prr_store.h"
#include "src/graph/graph.h"

namespace kboost {

/// Aggregate sampling statistics (drives the paper's Table 2/3 columns).
struct PrrSamplerStats {
  size_t edges_examined = 0;          ///< phase-I work over all samples
  size_t uncompressed_edges = 0;      ///< Σ phase-I edges of boostable samples
  size_t compressed_edges = 0;        ///< Σ compressed edges (full mode)
};

/// Parallel, deterministic PRR-graph sampler. Sample i is generated from an
/// Rng seeded by (seed, i), so pools are identical for any thread count.
///
/// Samples are assigned to the collection's shards round-robin by global
/// sample index (sample i → shard i mod S, matching the collection's
/// contract), and each shard's generation task writes compressed graphs
/// *directly into the persistent shard arena* — there is no staging store
/// and no shard→monolith merge copy. Only the tiny per-sample records
/// (status, LB critical sets) are staged per shard and walked in global
/// sample order afterwards, so the coverage structure grows exactly as a
/// serial per-sample funnel would. Shard tasks fan out over the thread
/// pool; a shard is always written by exactly one task at a time.
class PrrSampler {
 public:
  PrrSampler(const DirectedGraph& graph, const std::vector<NodeId>& seeds,
             size_t k, bool lb_only, uint64_t seed, int num_threads);

  PrrSampler(const PrrSampler&) = delete;
  PrrSampler& operator=(const PrrSampler&) = delete;

  /// Grows `collection` to at least `target` samples; returns the new size.
  size_t EnsureSamples(PrrCollection& collection, size_t target);

  const PrrSamplerStats& stats() const { return stats_; }

 private:
  /// One shard's per-batch record staging, reused (capacity kept) across
  /// batches. Full-mode graphs never pass through here — they land straight
  /// in the collection's persistent shard arena.
  struct ShardBatch {
    std::vector<PrrStatus> statuses;      // this shard's samples, in order
    std::vector<size_t> crit_offsets{0};  // LB mode: spans into crit_nodes
    std::vector<NodeId> crit_nodes;
    size_t edges_examined = 0;
    size_t uncompressed_edges = 0;
    size_t compressed_edges = 0;

    void Clear();
  };

  const DirectedGraph& graph_;
  std::vector<NodeId> seeds_;
  size_t k_;
  bool lb_only_;
  uint64_t seed_;
  int num_threads_;
  PrrSamplerStats stats_;
  std::vector<std::unique_ptr<PrrGenerator>> generators_;  // one per shard
  std::vector<ShardBatch> shards_;                         // one per shard
  // Batch-local cursors and boostable refs in global sample order, handed to
  // PrrCollection::AddBoostableRound (capacity reused across batches).
  std::vector<size_t> merge_pos_;
  std::vector<size_t> merge_boostable_;
  std::vector<PrrCollection::BoostableSampleRef> round_items_;
};

}  // namespace kboost

#endif  // KBOOST_CORE_PRR_SAMPLER_H_
