#ifndef KBOOST_CORE_PRR_SAMPLER_H_
#define KBOOST_CORE_PRR_SAMPLER_H_

#include <memory>
#include <vector>

#include "src/core/prr_collection.h"
#include "src/core/prr_graph.h"
#include "src/core/prr_store.h"
#include "src/graph/graph.h"

namespace kboost {

/// Aggregate sampling statistics (drives the paper's Table 2/3 columns).
struct PrrSamplerStats {
  size_t edges_examined = 0;          ///< phase-I work over all samples
  size_t uncompressed_edges = 0;      ///< Σ phase-I edges of boostable samples
  size_t compressed_edges = 0;        ///< Σ compressed edges (full mode)
};

/// Parallel, deterministic PRR-graph sampler. Sample i is generated from an
/// Rng seeded by (seed, i), so pools are identical for any thread count.
///
/// Each worker accumulates its samples into a thread-local shard — compressed
/// graphs go straight into a per-shard PrrStore arena, critical sets into a
/// flat pool — and shards are merged into the collection in sample-index
/// order once the batch finishes. The merge is a sequence of bulk span
/// copies: no per-graph allocation happens anywhere on this path.
class PrrSampler {
 public:
  PrrSampler(const DirectedGraph& graph, const std::vector<NodeId>& seeds,
             size_t k, bool lb_only, uint64_t seed, int num_threads);

  PrrSampler(const PrrSampler&) = delete;
  PrrSampler& operator=(const PrrSampler&) = delete;

  /// Grows `collection` to at least `target` samples; returns the new size.
  size_t EnsureSamples(PrrCollection& collection, size_t target);

  const PrrSamplerStats& stats() const { return stats_; }

 private:
  /// One worker's per-batch output, reused (capacity kept) across batches.
  struct Shard {
    PrrStore store;                    // full mode: compressed graphs
    std::vector<PrrStatus> statuses;   // per sample handled by this worker
    std::vector<size_t> crit_offsets{0};  // LB mode: spans into crit_nodes
    std::vector<NodeId> crit_nodes;
    size_t edges_examined = 0;
    size_t uncompressed_edges = 0;
    size_t compressed_edges = 0;

    void Clear();
  };

  const DirectedGraph& graph_;
  std::vector<NodeId> seeds_;
  size_t k_;
  bool lb_only_;
  uint64_t seed_;
  int num_threads_;
  PrrSamplerStats stats_;
  std::vector<std::unique_ptr<PrrGenerator>> generators_;  // one per thread
  std::vector<Shard> shards_;                              // one per thread
  std::vector<uint8_t> owner_;  // batch-local: sample index -> worker
  // Batch-local boostable refs in sample order, handed to
  // PrrCollection::AddBoostableRound (capacity reused across batches).
  std::vector<PrrCollection::BoostableSampleRef> round_items_;
};

}  // namespace kboost

#endif  // KBOOST_CORE_PRR_SAMPLER_H_
