#include "src/core/boost_session.h"

#include "src/io/pool_io.h"

namespace kboost {

BoostSession::BoostSession(const DirectedGraph& graph,
                           std::vector<NodeId> seeds,
                           const BoostOptions& options, bool lb_only)
    : engine_(graph, std::move(seeds), options, lb_only) {}

void BoostSession::Prepare() { engine_.EnsureSampled(); }

BoostResult BoostSession::SolveForBudget(size_t k) {
  return engine_.SolveForBudget(k);
}

Status BoostSession::SavePool(const std::string& path) {
  Prepare();
  return SavePoolSnapshot(*this, path);
}

}  // namespace kboost
