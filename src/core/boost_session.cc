#include "src/core/boost_session.h"

#include "src/io/pool_io.h"

namespace kboost {

StatusOr<std::unique_ptr<BoostSession>> BoostSession::Create(
    const DirectedGraph& graph, std::vector<NodeId> seeds,
    const BoostOptions& options, bool lb_only) {
  if (Status s = options.Validate(); !s.ok()) return s;
  if (graph.num_nodes() < 2) {
    return Status::InvalidArgument(
        "the boosting problem needs a graph with at least 2 nodes, got " +
        std::to_string(graph.num_nodes()));
  }
  if (seeds.empty()) {
    return Status::InvalidArgument(
        "the k-boosting problem requires a non-empty seed set");
  }
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return Status::OutOfRange("seed " + std::to_string(s) +
                                " out of range for a graph with " +
                                std::to_string(graph.num_nodes()) + " nodes");
    }
  }
  return std::make_unique<BoostSession>(graph, std::move(seeds), options,
                                        lb_only);
}

BoostSession::BoostSession(const DirectedGraph& graph,
                           std::vector<NodeId> seeds,
                           const BoostOptions& options, bool lb_only)
    : engine_(graph, std::move(seeds), options, lb_only) {}

void BoostSession::Prepare() { engine_.Prepare(); }

BoostResult BoostSession::SolveForBudget(size_t k) {
  return engine_.SolveForBudget(k);
}

Status BoostSession::SavePool(const std::string& path) {
  engine_.EnsureSampled();
  return SavePoolSnapshot(*this, path);
}

}  // namespace kboost
