#ifndef KBOOST_CORE_PRR_STORE_H_
#define KBOOST_CORE_PRR_STORE_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "src/core/prr_graph.h"
#include "src/util/status.h"

namespace kboost {

/// Arena storage for compressed PRR-graphs: a CSR-of-CSRs. Instead of one
/// heap-allocated PrrGraph (six vectors) per sample, every graph in the pool
/// shares five flat buffers — global ids, out/in offsets, out/in edges and
/// critical nodes — with per-graph spans recorded in a small meta table.
/// This removes ~6 allocations per boostable sample, keeps the greedy
/// selection's re-evaluation scans on contiguous memory, and makes merging
/// thread-local sampling shards a handful of memcpys.
///
/// Offsets are stored graph-relative (graph i's out_offsets[0] == 0), so a
/// PrrGraphView is drop-in compatible with the former per-graph layout.
///
/// A store is either *owned* (the default: buffers live in its vectors and
/// Append/Add grow them) or *external* (AttachExternal binds it over spans of
/// memory someone else owns — an mmap'd v3 snapshot section, kept alive by
/// whoever hands out the spans). Both modes serve the identical read API
/// (View/num_graphs/...); an external store rejects mutation (Append aborts)
/// and Clear() detaches back to an empty owned store. Only the per-graph meta
/// table is materialized for an external store, so attaching is O(num_graphs)
/// instead of O(bytes).
class PrrStore {
 public:
  PrrStore() = default;

  /// Appends one graph given its final flat arrays; returns its id.
  /// `out_offsets`/`in_offsets` must have num_nodes+1 graph-relative entries.
  size_t Append(std::span<const NodeId> global_ids,
                std::span<const uint32_t> out_offsets,
                std::span<const uint32_t> out_edges,
                std::span<const uint32_t> in_offsets,
                std::span<const uint32_t> in_edges,
                std::span<const uint32_t> critical_locals);

  /// Appends a copy of a per-graph PrrGraph (compat path for tests/tools).
  size_t Add(const PrrGraph& graph);

  /// Bulk-copies graph `id` of `other` into this store; returns the new id.
  /// This is the shard-merge fast path: five span copies, no re-walk.
  size_t AppendFrom(const PrrStore& other, size_t id);

  /// The eight flat sections of one arena, as externally owned spans — the
  /// in-memory shape of a v3 snapshot's per-shard region (src/io/pool_io).
  /// `num_nodes`/`num_critical` carry one entry per graph; the rest are the
  /// concatenated pools. The spans must stay valid for the lifetime of the
  /// store they are attached to (for an mmap'd snapshot: as long as the
  /// SnapshotMapping lives).
  struct ArenaSections {
    std::span<const uint32_t> num_nodes;
    std::span<const uint32_t> num_critical;
    std::span<const NodeId> global_ids;
    std::span<const uint32_t> out_offsets;
    std::span<const uint32_t> in_offsets;
    std::span<const uint32_t> out_edges;
    std::span<const uint32_t> in_edges;
    std::span<const uint32_t> critical;
  };

  /// Binds this (empty) store over externally owned sections without copying.
  /// Always performs the structural checks that memory safety depends on
  /// (section lengths mutually consistent, offsets graph-relative and
  /// monotone — evaluators index edge pools through them); `deep_validate`
  /// additionally walks every edge endpoint and critical id (O(total_edges),
  /// same rigor as Deserialize). On error the store is Clear()ed.
  Status AttachExternal(const ArenaSections& sections, bool deep_validate);

  /// Takes ownership of already-materialized section buffers (the codec
  /// decode-on-load path) and validates them with full rigor — structural
  /// checks plus the deep edge/critical walk. On error the store is
  /// Clear()ed.
  Status AdoptBuffers(std::span<const uint32_t> num_nodes,
                      std::span<const uint32_t> num_critical,
                      std::vector<NodeId>&& global_ids,
                      std::vector<uint32_t>&& out_offsets,
                      std::vector<uint32_t>&& in_offsets,
                      std::vector<uint32_t>&& out_edges,
                      std::vector<uint32_t>&& in_edges,
                      std::vector<uint32_t>&& critical);

  /// True when the arena memory is externally owned (AttachExternal).
  bool external() const { return external_; }

  PrrGraphView View(size_t id) const;

  /// Materializes graph `id` as a standalone PrrGraph (round-trip testing).
  PrrGraph ToPrrGraph(size_t id) const;

  /// Whole-arena section views, independent of ownership mode — the snapshot
  /// writer streams these straight to disk.
  std::span<const NodeId> raw_global_ids() const {
    return external_ ? ext_global_ids_ : std::span<const NodeId>(global_ids_);
  }
  std::span<const uint32_t> raw_out_offsets() const {
    return external_ ? ext_out_offsets_
                     : std::span<const uint32_t>(out_offsets_);
  }
  std::span<const uint32_t> raw_in_offsets() const {
    return external_ ? ext_in_offsets_ : std::span<const uint32_t>(in_offsets_);
  }
  std::span<const uint32_t> raw_out_edges() const {
    return external_ ? ext_out_edges_ : std::span<const uint32_t>(out_edges_);
  }
  std::span<const uint32_t> raw_in_edges() const {
    return external_ ? ext_in_edges_ : std::span<const uint32_t>(in_edges_);
  }
  std::span<const uint32_t> raw_critical() const {
    return external_ ? ext_critical_ : std::span<const uint32_t>(critical_);
  }

  size_t num_graphs() const { return meta_.size(); }
  size_t total_edges() const { return raw_out_edges().size(); }
  size_t total_nodes() const { return raw_global_ids().size(); }
  size_t critical_count(size_t id) const { return meta_[id].num_critical; }
  uint32_t num_nodes(size_t id) const { return meta_[id].num_nodes; }
  /// Largest per-graph local node count in the arena — the grow-only scratch
  /// bound evaluators reserve once per selection run.
  uint32_t max_num_nodes() const { return max_num_nodes_; }
  /// Bumped on every mutation (Append/Clear/Deserialize); lets cached
  /// per-graph evaluation state (PrrEvalState) detect resampling and
  /// invalidate itself instead of serving bits for a different pool.
  uint64_t generation() const { return generation_; }

  /// Bytes actually used by the pool (the paper's Table 2/3 "memory for
  /// boostable PRR-graphs" metric).
  size_t MemoryBytes() const;

  /// Bytes currently *reserved* by the arena's buffers (vector capacity, not
  /// size) — the observable side of the Clear() keep-capacity contract that
  /// sampling batches and pool refreshes rely on: refilling a cleared arena
  /// with comparable content must not change this.
  size_t AllocatedBytes() const;

  /// Drops all graphs but keeps buffer capacity (shard reuse across
  /// batches). On an external store this detaches the spans, leaving an
  /// empty owned store.
  void Clear();

  /// Binary snapshot of the arena (pool snapshots, src/io/pool_io). The
  /// format is independent of the Meta struct layout: per-graph sizes are
  /// written explicitly and the arena begins are rebuilt by prefix sums on
  /// load.
  void Serialize(std::ostream& out) const;
  /// Restores an arena written by Serialize into this (empty) store,
  /// verifying structural consistency (counts, offset monotonicity, edge
  /// targets and critical ids in range). Returns a descriptive
  /// InvalidArgument/IoError status on malformed or truncated input.
  Status Deserialize(std::istream& in);

 private:
  struct Meta {
    uint64_t node_begin = 0;      // into global_ids_
    uint64_t edge_begin = 0;      // into out_edges_ / in_edges_
    uint64_t critical_begin = 0;  // into critical_
    uint32_t num_nodes = 0;
    uint32_t num_critical = 0;
  };

  /// Rebuilds the meta table by prefix sums over per-graph sizes, verifying
  /// the node/offset sections (through the raw_* accessors, so it covers
  /// both ownership modes): lengths consistent with the size table, offsets
  /// graph-relative, monotone and out/in-consistent. Outputs the implied
  /// edge-pool and critical-pool lengths; the caller checks (or reads) those
  /// sections against them. Bumps max_num_nodes_/generation_ on success.
  Status BuildMetaFromSizes(std::span<const uint32_t> num_nodes,
                            std::span<const uint32_t> num_critical,
                            uint64_t* total_edges, uint64_t* total_critical);

  /// O(total_edges) walk: every packed edge endpoint and critical id must be
  /// a valid local node of its graph. Requires a built meta table.
  Status ValidateDeep() const;

  std::vector<Meta> meta_;
  std::vector<NodeId> global_ids_;
  // Graph i's offsets occupy [meta.node_begin + i, ... + num_nodes + 1):
  // each graph contributes num_nodes+1 entries to the offset pools.
  std::vector<uint32_t> out_offsets_;
  std::vector<uint32_t> in_offsets_;
  std::vector<uint32_t> out_edges_;
  std::vector<uint32_t> in_edges_;
  std::vector<uint32_t> critical_;
  // External (view) mode: when external_ is set the vectors above are empty
  // and the spans below alias memory owned elsewhere (an mmap'd snapshot).
  // All spans are over trivially destructible data, so destruction order
  // between a store and its backing mapping is never a correctness issue —
  // only reads must be fenced by the mapping's lifetime.
  bool external_ = false;
  std::span<const NodeId> ext_global_ids_;
  std::span<const uint32_t> ext_out_offsets_;
  std::span<const uint32_t> ext_in_offsets_;
  std::span<const uint32_t> ext_out_edges_;
  std::span<const uint32_t> ext_in_edges_;
  std::span<const uint32_t> ext_critical_;
  uint32_t max_num_nodes_ = 0;
  uint64_t generation_ = 0;
};

/// Per-session evaluation state for every graph of a PrrStore: three bitmaps
/// per graph — fwd (0-weight-reached from the super-seed under the current
/// boost set), bwd (0-weight-reaches the root) and crit (current critical-set
/// membership) — packed as contiguous uint64 words in one arena. Small graphs
/// need only a handful of words, so a graph's whole state usually fits in one
/// cache line. Because boosting only ever *opens* edges, fwd/bwd/crit grow
/// monotonically under commits, which is what makes incremental relaxation
/// (PrrIncrementalEvaluator) exact.
///
/// Graphs larger than kMaxStateNodes get no slot (has_state() is false);
/// selections fall back to the scratch evaluator for them, bounding arena
/// memory on pathological pools.
class PrrEvalState {
 public:
  static constexpr uint32_t kMaxStateNodes = 1u << 16;

  /// (Re)binds to `store` and zeroes all state. Slot offsets are rebuilt
  /// only when the store mutated since the last Attach (pointer or
  /// generation mismatch — the resample-invalidation rule); otherwise only
  /// the words are cleared, reusing every allocation across selection runs.
  void Attach(const PrrStore& store);

  bool has_state(size_t g) const { return slots_[g].words_per_bitmap != 0; }
  uint64_t* fwd(size_t g) { return words_.data() + slots_[g].begin; }
  uint64_t* bwd(size_t g) {
    return words_.data() + slots_[g].begin + slots_[g].words_per_bitmap;
  }
  uint64_t* crit(size_t g) {
    return words_.data() + slots_[g].begin + 2 * slots_[g].words_per_bitmap;
  }
  /// Whether graph g's bitmaps have been initialized this run (lazy
  /// per-graph init on first touch; cleared by Attach). One byte per graph,
  /// NOT packed bits: workers touching different graphs concurrently must
  /// write distinct memory locations.
  bool initialized(size_t g) const { return init_[g] != 0; }
  void mark_initialized(size_t g) { init_[g] = 1; }

  size_t total_words() const { return words_.size(); }

 private:
  struct Slot {
    uint64_t begin = 0;            // into words_
    uint32_t words_per_bitmap = 0; // ceil(num_nodes/64); 0 = no cached state
  };

  const PrrStore* store_ = nullptr;
  uint64_t generation_ = 0;
  std::vector<Slot> slots_;
  std::vector<uint64_t> words_;
  std::vector<uint8_t> init_;
};

/// Per-shard PrrEvalState bundle for a sharded pool: one bitmap arena per
/// shard arena, each following the PrrEvalState attach/reuse rules (slot
/// tables rebuilt only on generation mismatch, words re-zeroed otherwise).
///
/// Thread-safety model: during a selection run any worker may scan graphs of
/// any shard, but the pick-commit fan-out assigns each graph to exactly one
/// worker, and a graph's bitmaps live entirely inside its shard's state — so
/// per-shard states need no synchronization beyond what PrrEvalState already
/// guarantees (one writer per graph, byte-wide init flags).
class ShardedEvalState {
 public:
  /// (Re)binds one eval state per shard arena. Safe to call with a different
  /// shard count than last time (e.g. after a hot-swap onto a pool with
  /// another S) — surplus states are dropped, missing ones allocated.
  void Attach(std::span<const PrrStore> shards) {
    states_.resize(shards.size());
    for (size_t s = 0; s < shards.size(); ++s) states_[s].Attach(shards[s]);
  }

  PrrEvalState& shard(size_t s) { return states_[s]; }
  size_t num_shards() const { return states_.size(); }

 private:
  std::vector<PrrEvalState> states_;
};

}  // namespace kboost

#endif  // KBOOST_CORE_PRR_STORE_H_
