#include "src/core/prr_boost.h"

#include <algorithm>
#include <cmath>

#include "src/im/imm.h"
#include "src/sim/boost_model.h"
#include "src/util/fault.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace kboost {

Status BoostOptions::Validate() const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0, 1), got " +
                                   std::to_string(epsilon));
  }
  if (!(ell > 0.0)) {
    return Status::InvalidArgument("ell must be > 0, got " +
                                   std::to_string(ell));
  }
  if (num_threads < 1 || num_threads > ThreadPool::kMaxWorkers) {
    return Status::InvalidArgument(
        "num_threads (--threads) must be in [1, " +
        std::to_string(ThreadPool::kMaxWorkers) + "], got " +
        std::to_string(num_threads));
  }
  if (num_shards < 1 || num_shards > PrrCollection::kMaxShards) {
    return Status::InvalidArgument(
        "num_shards (--shards) must be in [1, " +
        std::to_string(PrrCollection::kMaxShards) + "], got " +
        std::to_string(num_shards));
  }
  return Status::Ok();
}

PrrBoostEngine::PrrBoostEngine(const DirectedGraph& graph,
                               std::vector<NodeId> seeds,
                               const BoostOptions& options, bool lb_only)
    : graph_(graph),
      seeds_(std::move(seeds)),
      options_(options),
      lb_only_(lb_only) {
  KB_CHECK(graph_.num_nodes() >= 2);
  KB_CHECK(options_.Validate().ok()) << options_.Validate().ToString();
  KB_CHECK(!seeds_.empty()) << "the k-boosting problem requires seeds";
  excluded_ = MakeNodeBitmap(graph_.num_nodes(), seeds_);
  collection_ = std::make_unique<PrrCollection>(graph_.num_nodes(),
                                                options_.num_shards);
  sampler_ = std::make_unique<PrrSampler>(graph_, seeds_, options_.k,
                                          lb_only_, options_.seed,
                                          options_.num_threads);
}

void PrrBoostEngine::EnsureSampled() {
  if (sampled_) return;
  const size_t n = graph_.num_nodes();
  // Algorithm 2 line 1: ℓ' = ℓ(1 + log3 / log n) so that the three failure
  // events (sampling, LB selection, sandwich comparison) union-bound.
  ImmBounds bounds;
  bounds.epsilon = options_.epsilon;
  bounds.ell = options_.ell *
               (1.0 + std::log(3.0) / std::log(static_cast<double>(n)));
  bounds.n = n;
  bounds.k = options_.k;

  ImmScheduleCallbacks callbacks;
  callbacks.ensure_samples = [&](size_t target) {
    if (options_.max_samples > 0 && target > options_.max_samples) {
      target = options_.max_samples;
      samples_capped_ = true;
    }
    return sampler_->EnsureSamples(*collection_, target);
  };
  callbacks.select_coverage = [&]() {
    return collection_->coverage()
        .SelectGreedy(options_.k, &excluded_)
        .coverage_fraction;
  };
  RunImmSchedule(bounds, callbacks);
  stats_ = sampler_->stats();
  sampled_ = true;
}

void PrrBoostEngine::AdoptPool(std::unique_ptr<PrrCollection> collection,
                               const PrrSamplerStats& stats,
                               bool samples_capped) {
  KB_CHECK(!sampled_) << "cannot adopt a pool after sampling";
  KB_CHECK(collection != nullptr &&
           collection->num_graph_nodes() == graph_.num_nodes());
  collection_ = std::move(collection);
  stats_ = stats;
  samples_capped_ = samples_capped;
  sampled_ = true;
}

const PrrCollection::LbResult& PrrBoostEngine::LbGreedyOrder() {
  if (!lb_order_ready_) {
    // NodeSelectionLB at the full pool budget: maximize μ̂ by greedy
    // max-coverage over critical sets. Computed once; nested budgets slice.
    lb_order_ = collection_->SelectGreedyLowerBound(options_.k, excluded_);
    lb_order_ready_ = true;
  }
  return lb_order_;
}

BoostResult PrrBoostEngine::Run() { return SolveForBudget(options_.k); }

void PrrBoostEngine::Prepare() {
  if (serving_ready_) return;
  EnsureSampled();
  // Concurrent const Solve() calls must never take a lazy-build path: warm
  // every inverted index (per-shard builds fan out over the workers) and
  // cache the LB greedy order now, while this thread still has the engine
  // exclusively.
  collection_->WarmIndexes(options_.num_threads);
  LbGreedyOrder();
  serving_ready_ = true;
}

BoostResult PrrBoostEngine::SolvePrepared(size_t k, bool lb_answer,
                                          int num_threads,
                                          ShardedEvalState* eval_state,
                                          StopToken* stop) const {
  KB_DCHECK(sampled_ && lb_order_ready_);
  BoostResult result;
  result.pool_budget = options_.k;

  const size_t take = std::min(k, lb_order_.nodes.size());
  result.lb_set.assign(lb_order_.nodes.begin(), lb_order_.nodes.begin() + take);
  result.lb_mu_hat = take > 0 ? lb_order_.prefix_mu_hat[take - 1] : 0.0;

  if (lb_answer) {
    result.best_set = result.lb_set;
    result.best_estimate = result.lb_mu_hat;
  } else {
    // NodeSelection: greedy on Δ̂ directly, reusing the same pool. Not
    // nested in k (Δ̂ gains are non-monotone), so selection re-runs per k.
    PrrCollection::DeltaResult dr = collection_->SelectGreedyDelta(
        k, excluded_, num_threads, eval_state, stop);
    if (dr.cancelled || dr.deadline_exceeded) return result;
    result.delta_set = std::move(dr.nodes);
    result.delta_delta_hat = dr.delta_hat;
    // One more phase remains (Δ̂ of the LB set); poll between phases so a
    // deadline that passed during selection is honored before more work.
    if (stop != nullptr && stop->ShouldStop()) return result;
    result.lb_delta_hat =
        collection_->EstimateDelta(result.lb_set, num_threads);
    // Sandwich pick: the better of B_µ and B_Δ under Δ̂ (Alg. 2 line 5).
    if (result.lb_delta_hat >= result.delta_delta_hat) {
      result.best_set = result.lb_set;
      result.best_estimate = result.lb_delta_hat;
    } else {
      result.best_set = result.delta_set;
      result.best_estimate = result.delta_delta_hat;
    }
  }

  // Statistics.
  result.num_samples = collection_->num_samples();
  result.samples_capped = samples_capped_;
  result.num_boostable = collection_->num_boostable();
  result.num_activated = collection_->num_activated();
  result.num_hopeless = collection_->num_hopeless();
  result.edges_examined = stats_.edges_examined;
  result.stored_graph_bytes = collection_->StoredGraphBytes();
  if (result.num_boostable > 0) {
    result.avg_uncompressed_edges =
        static_cast<double>(stats_.uncompressed_edges) /
        static_cast<double>(result.num_boostable);
    result.avg_compressed_edges =
        static_cast<double>(stats_.compressed_edges) /
        static_cast<double>(result.num_boostable);
    if (result.avg_compressed_edges > 0) {
      result.compression_ratio =
          result.avg_uncompressed_edges / result.avg_compressed_edges;
    }
  }
  return result;
}

BoostResult PrrBoostEngine::SolveForBudget(size_t k) {
  KB_CHECK(k >= 1 && k <= options_.k)
      << "budget " << k << " exceeds the pool's sampling budget "
      << options_.k;
  const bool had_pool = sampled_;
  WallTimer sampling_timer;
  EnsureSampled();
  const double sampling_seconds = sampling_timer.Seconds();

  WallTimer selection_timer;
  LbGreedyOrder();
  BoostResult result =
      SolvePrepared(k, lb_only_, options_.num_threads,
                    &serial_context_.eval_state, /*stop=*/nullptr);
  result.sampling_seconds = sampling_seconds;
  result.pool_reused = had_pool;
  result.selection_seconds = selection_timer.Seconds();
  return result;
}

StatusOr<BoostResult> PrrBoostEngine::Solve(const SolveSpec& spec,
                                            SolveContext* context) const {
  if (!serving_ready_) {
    return Status::FailedPrecondition(
        "pool is not prepared for serving; call Prepare() first");
  }
  if (spec.k < 1 || spec.k > options_.k) {
    return Status::InvalidArgument(
        "budget " + std::to_string(spec.k) + " outside the pool's range [1, " +
        std::to_string(options_.k) + "]");
  }
  bool lb_answer = lb_only_;
  switch (spec.mode) {
    case SolveMode::kAuto:
      break;
    case SolveMode::kLbOnly:
      lb_answer = true;
      break;
    case SolveMode::kFull:
      if (lb_only_) {
        return Status::InvalidArgument(
            "full-mode request against an LB-only pool (Δ̂ needs stored "
            "PRR-graphs)");
      }
      break;
  }
  const int num_threads =
      spec.num_threads == 0 ? options_.num_threads : spec.num_threads;
  if (num_threads < 1 || num_threads > ThreadPool::kMaxWorkers) {
    return Status::InvalidArgument(
        "request num_threads must be 0 (pool default) or in [1, " +
        std::to_string(ThreadPool::kMaxWorkers) + "], got " +
        std::to_string(spec.num_threads));
  }
  StopToken stop(spec.cancel, spec.deadline_ns);
  if (stop.ShouldStop()) {
    return stop.cancelled()
               ? Status::Cancelled("request cancelled before selection started")
               : Status::DeadlineExceeded(
                     "request deadline passed before selection started");
  }
  MaybeInjectFaultDelay(FaultSite::kSolveStart);

  WallTimer selection_timer;
  BoostResult result = SolvePrepared(
      spec.k, lb_answer, num_threads,
      context != nullptr ? &context->eval_state : nullptr, &stop);
  if (stop.cancelled()) {
    return Status::Cancelled("request cancelled during selection");
  }
  if (stop.deadline_exceeded()) {
    return Status::DeadlineExceeded("request deadline passed mid-selection");
  }
  result.pool_reused = true;
  result.selection_seconds = selection_timer.Seconds();
  return result;
}

Status PrrBoostEngine::set_num_threads(int num_threads) {
  BoostOptions probe = options_;
  probe.num_threads = num_threads;
  if (Status s = probe.Validate(); !s.ok()) return s;
  options_.num_threads = num_threads;
  return Status::Ok();
}

double PrrBoostEngine::EstimateDelta(
    const std::vector<NodeId>& boost_set) const {
  KB_CHECK(!lb_only_) << "Δ̂ needs stored PRR-graphs (full mode)";
  return collection_->EstimateDelta(boost_set, options_.num_threads);
}

double PrrBoostEngine::EstimateMu(const std::vector<NodeId>& boost_set) const {
  return collection_->EstimateMu(boost_set);
}

BoostResult PrrBoost(const DirectedGraph& graph,
                     const std::vector<NodeId>& seeds,
                     const BoostOptions& options) {
  PrrBoostEngine engine(graph, seeds, options, /*lb_only=*/false);
  return engine.Run();
}

BoostResult PrrBoostLb(const DirectedGraph& graph,
                       const std::vector<NodeId>& seeds,
                       const BoostOptions& options) {
  PrrBoostEngine engine(graph, seeds, options, /*lb_only=*/true);
  return engine.Run();
}

}  // namespace kboost
