#ifndef KBOOST_CORE_PRR_COLLECTION_H_
#define KBOOST_CORE_PRR_COLLECTION_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "src/core/prr_graph.h"
#include "src/core/prr_store.h"
#include "src/graph/graph.h"
#include "src/im/coverage.h"

namespace kboost {

/// The pool R of sampled PRR-graphs plus the estimators built on it:
///   Δ̂_R(B) = n/θ · Σ_R f_R(B)        (Eq. 2)
///   μ̂_R(B) = n/θ · Σ_R 1{B ∩ C_R ≠ ∅}
/// θ counts *all* samples — activated and hopeless PRR-graphs contribute
/// zero terms but stay in the denominator. Full mode stores compressed
/// graphs in a PrrStore arena; LB mode stores only critical sets (inside
/// `coverage()`).
///
/// The node→graphs inverted index used by the greedy is a flat CSR built
/// lazily in one counting-sort pass over the arena (the super-seed sentinel
/// at local id 0 is skipped — it has no global identity). Appending samples
/// therefore never grows per-node vectors.
class PrrCollection {
 public:
  explicit PrrCollection(size_t num_graph_nodes);

  /// Adds a boostable sample from a standalone compressed graph; critical
  /// ids are taken from it. (Compat path for tests and tools — the sampler
  /// uses AddBoostableFromStore.)
  void AddBoostable(const PrrGraph& graph);
  /// Adds a boostable sample by bulk-copying graph `shard_id` out of a
  /// thread-local sampling shard arena.
  void AddBoostableFromStore(const PrrStore& shard, size_t shard_id);
  /// LB mode: adds a boostable sample given only its critical set.
  void AddBoostableCriticalOnly(std::span<const NodeId> critical_globals);
  void AddBoostableCriticalOnly(std::initializer_list<NodeId> critical) {
    AddBoostableCriticalOnly(std::span<const NodeId>(critical.begin(),
                                                     critical.size()));
  }
  /// Adds an activated or hopeless sample (denominator only).
  void AddNonBoostable(PrrStatus status);

  size_t num_samples() const { return coverage_.num_sets(); }
  size_t num_boostable() const { return num_boostable_; }
  size_t num_activated() const { return num_activated_; }
  size_t num_hopeless() const { return num_hopeless_; }
  size_t num_graph_nodes() const { return num_graph_nodes_; }
  /// The arena holding all compressed PRR-graphs (full mode).
  const PrrStore& store() const { return store_; }

  /// Greedy max-coverage over critical sets (maximizes μ̂) — the
  /// NodeSelectionLB step. Returns the selected nodes, μ̂ of that set, and μ̂
  /// of every prefix: greedy on the submodular μ̂ yields nested solutions, so
  /// one run at k answers every budget k' ≤ k by slicing.
  struct LbResult {
    std::vector<NodeId> nodes;
    double mu_hat = 0.0;
    /// μ̂(nodes[0..i]) for each i — the nested-budget answers.
    std::vector<double> prefix_mu_hat;
  };
  LbResult SelectGreedyLowerBound(size_t k,
                                  const std::vector<uint8_t>& excluded) const;

  /// Greedy maximization of Δ̂ (the NodeSelection step; full mode only) — a
  /// push-model oracle over the shared src/select lazy-greedy engine.
  /// Each round picks the node with the largest marginal Δ̂ gain — i.e. the
  /// node critical in the most not-yet-activated PRR-graphs — then
  /// re-evaluates exactly the PRR-graphs containing it. The re-evaluation
  /// scan runs on `num_threads` workers with per-thread evaluator scratch
  /// and atomic gain updates; ties break toward smaller node ids, so the
  /// selected set is identical for every thread count. If gains hit zero
  /// before k picks (no single node helps), remaining slots are filled by
  /// PRR-occurrence counts so the budget is never silently wasted.
  struct DeltaResult {
    std::vector<NodeId> nodes;
    size_t activated_samples = 0;
    double delta_hat = 0.0;
  };
  DeltaResult SelectGreedyDelta(size_t k, const std::vector<uint8_t>& excluded,
                                int num_threads = 1) const;

  /// Δ̂_R(B) for an arbitrary boost set (full mode only).
  double EstimateDelta(const std::vector<NodeId>& boost_set,
                       int num_threads = 1) const;
  /// μ̂_R(B) for an arbitrary boost set (works in both modes).
  double EstimateMu(const std::vector<NodeId>& boost_set) const;

  /// Access to the coverage structure driving the IMM schedule.
  const CoverageSelector& coverage() const { return coverage_; }

  /// Ids of the stored graphs whose compressed form contains global node v
  /// (full mode; lazily-built CSR — call EnsureGraphIndex() via any selection
  /// entry point, or rely on the const laziness here).
  std::span<const uint32_t> GraphsContaining(NodeId v) const {
    EnsureGraphIndex();
    return {node_graphs_.data() + node_graph_offsets_[v],
            node_graph_offsets_[v + 1] - node_graph_offsets_[v]};
  }

  /// Pool-snapshot restore (full mode): adopts a deserialized arena,
  /// re-derives every critical set from it in stored order, then accounts
  /// the non-boostable samples. The collection must be empty.
  void RestoreFullPool(PrrStore&& store, size_t num_activated,
                       size_t num_hopeless);
  /// Accounts non-boostable samples in bulk (denominator only) — the
  /// LB-mode snapshot-restore path after AddBoostableCriticalOnly calls.
  void AddNonBoostableCounts(size_t num_activated, size_t num_hopeless);

  /// Bytes held by stored PRR-graphs (the paper's Table 2/3 "memory for
  /// boostable PRR-graphs").
  size_t StoredGraphBytes() const {
    return store_.MemoryBytes() + lb_critical_bytes_;
  }

 private:
  /// Builds the global-node → stored-graph-ids CSR (one counting-sort pass).
  void EnsureGraphIndex() const;

  size_t num_graph_nodes_;
  PrrStore store_;                 // full mode storage
  CoverageSelector coverage_;      // critical sets, denominator = θ
  size_t num_boostable_ = 0;
  size_t num_activated_ = 0;
  size_t num_hopeless_ = 0;
  size_t lb_critical_bytes_ = 0;   // LB-mode critical-set accounting
  std::vector<NodeId> critical_scratch_;
  // Lazily-built inverted index: global node -> stored-graph ids whose
  // compressed form contains it.
  mutable std::vector<size_t> node_graph_offsets_;
  mutable std::vector<uint32_t> node_graphs_;
  mutable bool graph_index_built_ = false;
};

}  // namespace kboost

#endif  // KBOOST_CORE_PRR_COLLECTION_H_
