#ifndef KBOOST_CORE_PRR_COLLECTION_H_
#define KBOOST_CORE_PRR_COLLECTION_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "src/core/prr_graph.h"
#include "src/core/prr_store.h"
#include "src/graph/graph.h"
#include "src/im/coverage.h"
#include "src/select/greedy.h"
#include "src/util/logging.h"

namespace kboost {

/// The pool R of sampled PRR-graphs plus the estimators built on it:
///   Δ̂_R(B) = n/θ · Σ_R f_R(B)        (Eq. 2)
///   μ̂_R(B) = n/θ · Σ_R 1{B ∩ C_R ≠ ∅}
/// θ counts *all* samples — activated and hopeless PRR-graphs contribute
/// zero terms but stay in the denominator. Full mode stores compressed
/// graphs in PrrStore arenas; LB mode stores only critical sets (inside
/// `coverage()`).
///
/// The pool is sharded: S independent PrrStore arenas, with samples assigned
/// round-robin by *global sample index* (sample i lands in shard i mod S).
/// The assignment depends on nothing but the index, so for a fixed S the
/// shard arenas are bit-identical at every thread count, and since the
/// estimators average over samples, every selection and estimate is
/// bit-identical across shard counts too (the union of shards is the same
/// multiset of samples; greedy ties break on node ids, never on sample or
/// graph numbering). Sharding only decides how wide sampling, index builds,
/// snapshot I/O and the per-pick re-evaluation scan can go.
///
/// The per-shard node→graphs inverted index used by the greedy is a flat CSR
/// built lazily in one counting-sort pass over each arena (the super-seed
/// sentinel at local id 0 is skipped — it has no global identity). Appending
/// samples therefore never grows per-node vectors.
class PrrCollection {
 public:
  /// Upper bound on the shard count (BoostOptions::Validate enforces the
  /// [1, kMaxShards] range for --shards).
  static constexpr int kMaxShards = 1024;

  explicit PrrCollection(size_t num_graph_nodes, int num_shards = 1);

  /// Adds a boostable sample from a standalone compressed graph; critical
  /// ids are taken from it. (Compat path for tests and tools — the sampler
  /// writes shard arenas directly and accounts through AddBoostableRound.)
  /// Lands in the shard the next round-robin sample index maps to.
  void AddBoostable(const PrrGraph& graph);
  /// Adds a boostable sample by bulk-copying graph `shard_id` out of an
  /// external arena (per-sample compat path; same shard choice as
  /// AddBoostable).
  void AddBoostableFromStore(const PrrStore& shard, size_t shard_id);

  /// One sampling round's boostable sample, in batch order. Full mode
  /// references a graph the sampler already wrote into this collection's
  /// shard arena `shard` (via mutable_shard_store); LB mode references a
  /// flat critical-set span (alive through AddBoostableRound).
  struct BoostableSampleRef {
    uint32_t shard = 0;                ///< full mode: shard arena index
    uint32_t shard_graph_id = 0;       ///< graph id within that arena
    const NodeId* critical = nullptr;  ///< LB mode: critical globals
    uint32_t critical_count = 0;       ///< LB mode: critical set size
  };
  /// Accounts one sampling round: the round's critical sets land in the
  /// coverage structure through ONE grow — the per-sample fill (critical-id
  /// translation in full mode, flat copies in LB mode) runs on `num_threads`
  /// workers over disjoint spans. Full-mode graphs are *not* copied here;
  /// they were already written in place by the sampler. Bit-identical to the
  /// equivalent sequence of per-sample AddBoostable* calls for every thread
  /// count.
  void AddBoostableRound(std::span<const BoostableSampleRef> items,
                         bool lb_only, int num_threads);
  /// LB mode: adds a boostable sample given only its critical set.
  void AddBoostableCriticalOnly(std::span<const NodeId> critical_globals);
  void AddBoostableCriticalOnly(std::initializer_list<NodeId> critical) {
    AddBoostableCriticalOnly(std::span<const NodeId>(critical.begin(),
                                                     critical.size()));
  }
  /// Adds an activated or hopeless sample (denominator only).
  void AddNonBoostable(PrrStatus status);

  size_t num_samples() const { return coverage_.num_sets(); }
  size_t num_boostable() const { return num_boostable_; }
  size_t num_activated() const { return num_activated_; }
  size_t num_hopeless() const { return num_hopeless_; }
  size_t num_graph_nodes() const { return num_graph_nodes_; }

  size_t num_shards() const { return stores_.size(); }
  /// Shard arena `s` (full mode).
  const PrrStore& shard_store(size_t s) const { return stores_[s]; }
  /// All shard arenas (snapshot I/O, eval-state attach).
  std::span<const PrrStore> shards() const { return stores_; }
  /// Graphs stored across all shards (== num_boostable in full mode).
  size_t num_stored_graphs() const;
  /// Mutable access to shard arena `s` — the sampler's direct-write path:
  /// the shard's generation task appends graphs straight into the persistent
  /// arena (no staging copy, no merge), then the batch is accounted through
  /// one AddBoostableRound call. The caller must own the shard exclusively
  /// while writing and must not interleave other mutations.
  PrrStore* mutable_shard_store(size_t s) { return &stores_[s]; }

  /// The arena holding all compressed PRR-graphs — compat accessor for
  /// single-shard pools (tests, tools, reference implementations).
  const PrrStore& store() const {
    KB_DCHECK(stores_.size() == 1);
    return stores_[0];
  }

  /// Greedy max-coverage over critical sets (maximizes μ̂) — the
  /// NodeSelectionLB step. Returns the selected nodes, μ̂ of that set, and μ̂
  /// of every prefix: greedy on the submodular μ̂ yields nested solutions, so
  /// one run at k answers every budget k' ≤ k by slicing.
  struct LbResult {
    std::vector<NodeId> nodes;
    double mu_hat = 0.0;
    /// μ̂(nodes[0..i]) for each i — the nested-budget answers.
    std::vector<double> prefix_mu_hat;
  };
  LbResult SelectGreedyLowerBound(size_t k,
                                  const std::vector<uint8_t>& excluded) const;

  /// Greedy maximization of Δ̂ (the NodeSelection step; full mode only) — a
  /// push-model oracle over the shared src/select lazy-greedy engine,
  /// backed by the incremental evaluation engine: every graph keeps a
  /// persistent fwd/bwd/crit bitmap state (PrrEvalState, one arena per
  /// shard), so committing a pick only relaxes reachability forward/backward
  /// from the newly boosted node instead of recomputing from the super-seed.
  /// The re-evaluation scan fans out over the pick's graphs across ALL
  /// shards on `num_threads` workers with per-thread scratch and per-worker
  /// gain-delta buffers merged once per pick (no atomics); ties break toward
  /// smaller node ids, so the selected set is identical for every thread
  /// count AND every shard count. If gains hit zero before k picks (no
  /// single node helps), remaining slots are filled by PRR-occurrence counts
  /// so the budget is never silently wasted.
  ///
  /// Concurrency: all query-time mutable state is oracle-local or lives in
  /// the caller-supplied `eval_state` (one PrrEvalState per shard), so
  /// concurrent calls on one collection are safe — and bit-identical to the
  /// serial loop — provided each call brings its own eval state and the
  /// lazily-built indexes were warmed first (WarmIndexes(), done by
  /// BoostSession::Prepare). A null `eval_state` uses call-local state
  /// (correct, but re-allocates the bitmap arenas every call). `stop`, if
  /// non-null, is polled between greedy rounds AND every bounded stride of
  /// the per-pick re-evaluation scan — a single huge pick stops promptly on
  /// cancellation or a passed deadline; the partial result carries
  /// `cancelled`/`deadline_exceeded` and must be discarded, not served.
  struct DeltaResult {
    std::vector<NodeId> nodes;
    /// Marginal Δ̂ gain (in covered samples) of each greedy pick, in
    /// selection order; fallback-filled nodes contribute no entries.
    std::vector<uint64_t> pick_gains;
    size_t activated_samples = 0;
    double delta_hat = 0.0;
    bool cancelled = false;
    bool deadline_exceeded = false;
  };
  DeltaResult SelectGreedyDelta(size_t k, const std::vector<uint8_t>& excluded,
                                int num_threads = 1,
                                ShardedEvalState* eval_state = nullptr,
                                StopToken* stop = nullptr) const;

  /// Δ̂_R(B) for an arbitrary boost set (full mode only).
  double EstimateDelta(const std::vector<NodeId>& boost_set,
                       int num_threads = 1) const;
  /// μ̂_R(B) for an arbitrary boost set (works in both modes).
  double EstimateMu(const std::vector<NodeId>& boost_set) const;

  /// Access to the coverage structure driving the IMM schedule.
  const CoverageSelector& coverage() const { return coverage_; }

  /// Shard-local ids of the graphs in shard `s` whose compressed form
  /// contains global node v (lazily-built per-shard CSR — warm with
  /// WarmIndexes() before concurrent reads).
  std::span<const uint32_t> ShardGraphsContaining(size_t s, NodeId v) const {
    EnsureGraphIndex(1);
    const ShardIndex& index = shard_index_[s];
    return {index.graphs.data() + index.node_offsets[v],
            index.node_offsets[v + 1] - index.node_offsets[v]};
  }
  /// Local ids of v inside each graph of ShardGraphsContaining(s, v)
  /// (parallel span) — saves the incremental engine a per-commit
  /// global→local scan.
  std::span<const uint32_t> ShardGraphLocalsContaining(size_t s,
                                                       NodeId v) const {
    EnsureGraphIndex(1);
    const ShardIndex& index = shard_index_[s];
    return {index.locals.data() + index.node_offsets[v],
            index.node_offsets[v + 1] - index.node_offsets[v]};
  }
  /// Number of stored graphs (across all shards) containing global node v.
  size_t OccurrenceCount(NodeId v) const;

  /// Compat accessors for single-shard pools (reference implementations in
  /// tests/benches).
  std::span<const uint32_t> GraphsContaining(NodeId v) const {
    KB_DCHECK(stores_.size() == 1);
    return ShardGraphsContaining(0, v);
  }
  std::span<const uint32_t> GraphLocalsContaining(NodeId v) const {
    KB_DCHECK(stores_.size() == 1);
    return ShardGraphLocalsContaining(0, v);
  }

  /// Pool-snapshot restore (full mode): adopts deserialized shard arenas,
  /// re-derives every critical set from them in shard-major stored order,
  /// then accounts the non-boostable samples. Coverage numbering then
  /// differs from a freshly-sampled pool's (shard-major vs. sample order),
  /// but every estimator and selection depends only on set membership, never
  /// on set numbering, so answers stay bit-identical. The collection must be
  /// empty.
  void RestoreFullPool(std::vector<PrrStore>&& stores, size_t num_activated,
                       size_t num_hopeless);
  /// Zero-copy restore: like RestoreFullPool, but the coverage node pool is
  /// bound to `coverage_nodes` — a v3 snapshot's pre-translated
  /// critical-globals section, laid out shard-major in stored-graph order —
  /// instead of being re-gathered from the arenas, so restoring costs
  /// O(num_graphs), not O(total_critical). `set_sizes` is the matching
  /// per-graph critical-count table in the same order (the concatenated
  /// num_critical arena sections; length checked against the stores, sum
  /// checked against coverage_nodes) — handed through rather than re-read
  /// from the arenas' meta tables, which would stride cold cache lines on
  /// every warm start. The caller must have validated the span's ids against
  /// the serving graph and must keep both spans' backing memory alive for
  /// the collection's lifetime (for an mmap'd snapshot: the session retains
  /// the SnapshotMapping; set_sizes is only read during the call).
  void RestoreFullPool(std::vector<PrrStore>&& stores,
                       std::span<const uint32_t> set_sizes,
                       std::span<const NodeId> coverage_nodes,
                       size_t num_activated, size_t num_hopeless);
  /// Single-arena compat overload (v1 snapshots load as S=1).
  void RestoreFullPool(PrrStore&& store, size_t num_activated,
                       size_t num_hopeless);
  /// Accounts non-boostable samples in bulk (denominator only) — the
  /// LB-mode snapshot-restore path after AddBoostableCriticalOnly calls.
  void AddNonBoostableCounts(size_t num_activated, size_t num_hopeless);

  /// Bytes held by stored PRR-graphs (the paper's Table 2/3 "memory for
  /// boostable PRR-graphs").
  size_t StoredGraphBytes() const;

  /// Builds every lazily-constructed inverted index (per-shard node→graphs
  /// CSRs here, node→samples inside the coverage structure) now, fanning the
  /// per-shard builds out over `num_threads` workers. The lazy builds inside
  /// the const accessors are NOT thread-safe, so a pool that will serve
  /// concurrent readers must be warmed once, from one thread, before serving
  /// starts — PrrBoostEngine::Prepare does. After warming, every read-only
  /// query path (SelectGreedyLowerBound, SelectGreedyDelta with per-call
  /// eval state, EstimateDelta, EstimateMu, ShardGraphsContaining) is safe
  /// to run concurrently.
  void WarmIndexes(int num_threads = 1) const;

 private:
  /// Per-shard lazily-built inverted index: global node -> shard-local graph
  /// ids whose compressed form contains it, plus v's local id inside each
  /// (parallel arrays).
  struct ShardIndex {
    std::vector<size_t> node_offsets;
    std::vector<uint32_t> graphs;
    std::vector<uint32_t> locals;
  };

  /// Builds all per-shard node→graph CSRs (one counting-sort pass each,
  /// shards in parallel on `num_threads` workers).
  void EnsureGraphIndex(int num_threads) const;
  /// The shard the next round-robin sample index maps to (compat add paths).
  size_t NextSampleShard() const {
    return coverage_.num_sets() % stores_.size();
  }

  size_t num_graph_nodes_;
  std::vector<PrrStore> stores_;   // full-mode storage, one arena per shard
  CoverageSelector coverage_;      // critical sets, denominator = θ
  size_t num_boostable_ = 0;
  size_t num_activated_ = 0;
  size_t num_hopeless_ = 0;
  size_t lb_critical_bytes_ = 0;   // LB-mode critical-set accounting
  std::vector<NodeId> critical_scratch_;
  mutable std::vector<ShardIndex> shard_index_;
  mutable bool graph_index_built_ = false;
};

}  // namespace kboost

#endif  // KBOOST_CORE_PRR_COLLECTION_H_
