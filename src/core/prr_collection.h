#ifndef KBOOST_CORE_PRR_COLLECTION_H_
#define KBOOST_CORE_PRR_COLLECTION_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "src/core/prr_graph.h"
#include "src/core/prr_store.h"
#include "src/graph/graph.h"
#include "src/im/coverage.h"

namespace kboost {

/// The pool R of sampled PRR-graphs plus the estimators built on it:
///   Δ̂_R(B) = n/θ · Σ_R f_R(B)        (Eq. 2)
///   μ̂_R(B) = n/θ · Σ_R 1{B ∩ C_R ≠ ∅}
/// θ counts *all* samples — activated and hopeless PRR-graphs contribute
/// zero terms but stay in the denominator. Full mode stores compressed
/// graphs in a PrrStore arena; LB mode stores only critical sets (inside
/// `coverage()`).
///
/// The node→graphs inverted index used by the greedy is a flat CSR built
/// lazily in one counting-sort pass over the arena (the super-seed sentinel
/// at local id 0 is skipped — it has no global identity). Appending samples
/// therefore never grows per-node vectors.
class PrrCollection {
 public:
  explicit PrrCollection(size_t num_graph_nodes);

  /// Adds a boostable sample from a standalone compressed graph; critical
  /// ids are taken from it. (Compat path for tests and tools — the sampler
  /// uses AddBoostableRound.)
  void AddBoostable(const PrrGraph& graph);
  /// Adds a boostable sample by bulk-copying graph `shard_id` out of a
  /// thread-local sampling shard arena. (Per-sample compat path; the
  /// sampler's hot path is AddBoostableRound.)
  void AddBoostableFromStore(const PrrStore& shard, size_t shard_id);

  /// One sampling round's boostable sample, in batch order. Full mode
  /// references a graph inside a shard arena; LB mode references a flat
  /// critical-set span (the span must stay alive through AddBoostableRound).
  struct BoostableSampleRef {
    const PrrStore* shard = nullptr;   ///< full mode: source shard arena
    uint32_t shard_graph_id = 0;       ///< graph id within `shard`
    const NodeId* critical = nullptr;  ///< LB mode: critical globals
    uint32_t critical_count = 0;       ///< LB mode: critical set size
  };
  /// Bulk merge of one sampling round (shard-local coverage accumulation):
  /// full-mode graphs are appended to the arena as ordered span copies, and
  /// the round's critical sets land in the coverage structure through ONE
  /// grow — the per-sample fill (critical-id translation in full mode, flat
  /// copies in LB mode) runs on `num_threads` workers over disjoint spans.
  /// Bit-identical to the equivalent sequence of per-sample AddBoostable*
  /// calls for every thread count.
  void AddBoostableRound(std::span<const BoostableSampleRef> items,
                         bool lb_only, int num_threads);
  /// LB mode: adds a boostable sample given only its critical set.
  void AddBoostableCriticalOnly(std::span<const NodeId> critical_globals);
  void AddBoostableCriticalOnly(std::initializer_list<NodeId> critical) {
    AddBoostableCriticalOnly(std::span<const NodeId>(critical.begin(),
                                                     critical.size()));
  }
  /// Adds an activated or hopeless sample (denominator only).
  void AddNonBoostable(PrrStatus status);

  size_t num_samples() const { return coverage_.num_sets(); }
  size_t num_boostable() const { return num_boostable_; }
  size_t num_activated() const { return num_activated_; }
  size_t num_hopeless() const { return num_hopeless_; }
  size_t num_graph_nodes() const { return num_graph_nodes_; }
  /// The arena holding all compressed PRR-graphs (full mode).
  const PrrStore& store() const { return store_; }

  /// Greedy max-coverage over critical sets (maximizes μ̂) — the
  /// NodeSelectionLB step. Returns the selected nodes, μ̂ of that set, and μ̂
  /// of every prefix: greedy on the submodular μ̂ yields nested solutions, so
  /// one run at k answers every budget k' ≤ k by slicing.
  struct LbResult {
    std::vector<NodeId> nodes;
    double mu_hat = 0.0;
    /// μ̂(nodes[0..i]) for each i — the nested-budget answers.
    std::vector<double> prefix_mu_hat;
  };
  LbResult SelectGreedyLowerBound(size_t k,
                                  const std::vector<uint8_t>& excluded) const;

  /// Greedy maximization of Δ̂ (the NodeSelection step; full mode only) — a
  /// push-model oracle over the shared src/select lazy-greedy engine,
  /// backed by the incremental evaluation engine: every graph keeps a
  /// persistent fwd/bwd/crit bitmap state (PrrEvalState, arena-backed
  /// alongside the store), so committing a pick only relaxes reachability
  /// forward/backward from the newly boosted node instead of recomputing
  /// from the super-seed. The re-evaluation scan runs on `num_threads`
  /// workers with per-thread scratch and shard-local gain-delta buffers
  /// merged once per pick (no atomics); ties break toward smaller node ids,
  /// so the selected set is identical for every thread count. If gains hit
  /// zero before k picks (no single node helps), remaining slots are filled
  /// by PRR-occurrence counts so the budget is never silently wasted.
  ///
  /// Concurrency: all query-time mutable state is oracle-local or lives in
  /// the caller-supplied `eval_state`, so concurrent calls on one collection
  /// are safe — and bit-identical to the serial loop — provided each call
  /// brings its own eval state and the lazily-built indexes were warmed
  /// first (WarmIndexes(), done by BoostSession::Prepare). A null
  /// `eval_state` uses call-local state (correct, but re-allocates the
  /// bitmap arena every call). `cancel`, if non-null, is polled between
  /// greedy rounds; on cancellation the partial result carries `cancelled`.
  struct DeltaResult {
    std::vector<NodeId> nodes;
    /// Marginal Δ̂ gain (in covered samples) of each greedy pick, in
    /// selection order; fallback-filled nodes contribute no entries.
    std::vector<uint64_t> pick_gains;
    size_t activated_samples = 0;
    double delta_hat = 0.0;
    bool cancelled = false;
  };
  DeltaResult SelectGreedyDelta(size_t k, const std::vector<uint8_t>& excluded,
                                int num_threads = 1,
                                PrrEvalState* eval_state = nullptr,
                                const std::atomic<bool>* cancel = nullptr)
      const;

  /// Δ̂_R(B) for an arbitrary boost set (full mode only).
  double EstimateDelta(const std::vector<NodeId>& boost_set,
                       int num_threads = 1) const;
  /// μ̂_R(B) for an arbitrary boost set (works in both modes).
  double EstimateMu(const std::vector<NodeId>& boost_set) const;

  /// Access to the coverage structure driving the IMM schedule.
  const CoverageSelector& coverage() const { return coverage_; }

  /// Ids of the stored graphs whose compressed form contains global node v
  /// (full mode; lazily-built CSR — call EnsureGraphIndex() via any selection
  /// entry point, or rely on the const laziness here).
  std::span<const uint32_t> GraphsContaining(NodeId v) const {
    EnsureGraphIndex();
    return {node_graphs_.data() + node_graph_offsets_[v],
            node_graph_offsets_[v + 1] - node_graph_offsets_[v]};
  }
  /// Local ids of v inside each graph of GraphsContaining(v) (parallel
  /// span) — saves the incremental engine a per-commit global→local scan.
  std::span<const uint32_t> GraphLocalsContaining(NodeId v) const {
    EnsureGraphIndex();
    return {node_graph_locals_.data() + node_graph_offsets_[v],
            node_graph_offsets_[v + 1] - node_graph_offsets_[v]};
  }

  /// Pool-snapshot restore (full mode): adopts a deserialized arena,
  /// re-derives every critical set from it in stored order, then accounts
  /// the non-boostable samples. The collection must be empty.
  void RestoreFullPool(PrrStore&& store, size_t num_activated,
                       size_t num_hopeless);
  /// Accounts non-boostable samples in bulk (denominator only) — the
  /// LB-mode snapshot-restore path after AddBoostableCriticalOnly calls.
  void AddNonBoostableCounts(size_t num_activated, size_t num_hopeless);

  /// Bytes held by stored PRR-graphs (the paper's Table 2/3 "memory for
  /// boostable PRR-graphs").
  size_t StoredGraphBytes() const {
    return store_.MemoryBytes() + lb_critical_bytes_;
  }

  /// Builds both lazily-constructed inverted indexes (node→graphs here,
  /// node→samples inside the coverage structure) now. The lazy builds inside
  /// the const accessors are NOT thread-safe, so a pool that will serve
  /// concurrent readers must be warmed once, from one thread, before serving
  /// starts — PrrBoostEngine::Prepare does. After warming, every read-only
  /// query path (SelectGreedyLowerBound, SelectGreedyDelta with per-call
  /// eval state, EstimateDelta, EstimateMu, GraphsContaining) is safe to run
  /// concurrently.
  void WarmIndexes() const {
    EnsureGraphIndex();
    coverage_.WarmIndex();
  }

 private:
  /// Builds the global-node → stored-graph-ids CSR (one counting-sort pass).
  void EnsureGraphIndex() const;

  size_t num_graph_nodes_;
  PrrStore store_;                 // full mode storage
  CoverageSelector coverage_;      // critical sets, denominator = θ
  size_t num_boostable_ = 0;
  size_t num_activated_ = 0;
  size_t num_hopeless_ = 0;
  size_t lb_critical_bytes_ = 0;   // LB-mode critical-set accounting
  std::vector<NodeId> critical_scratch_;
  // Lazily-built inverted index: global node -> stored-graph ids whose
  // compressed form contains it, plus v's local id inside each (parallel).
  mutable std::vector<size_t> node_graph_offsets_;
  mutable std::vector<uint32_t> node_graphs_;
  mutable std::vector<uint32_t> node_graph_locals_;
  mutable bool graph_index_built_ = false;
};

}  // namespace kboost

#endif  // KBOOST_CORE_PRR_COLLECTION_H_
