#ifndef KBOOST_CORE_PRR_COLLECTION_H_
#define KBOOST_CORE_PRR_COLLECTION_H_

#include <cstdint>
#include <vector>

#include "src/core/prr_graph.h"
#include "src/graph/graph.h"
#include "src/im/coverage.h"

namespace kboost {

/// The pool R of sampled PRR-graphs plus the estimators built on it:
///   Δ̂_R(B) = n/θ · Σ_R f_R(B)        (Eq. 2)
///   μ̂_R(B) = n/θ · Σ_R 1{B ∩ C_R ≠ ∅}
/// θ counts *all* samples — activated and hopeless PRR-graphs contribute
/// zero terms but stay in the denominator. Full mode stores compressed
/// graphs; LB mode stores only critical sets (inside `coverage()`).
class PrrCollection {
 public:
  explicit PrrCollection(size_t num_graph_nodes);

  /// Adds a boostable sample. In full mode pass the compressed graph;
  /// critical ids are taken from it. In LB mode pass only critical ids.
  void AddBoostable(PrrGraph graph);
  void AddBoostableCriticalOnly(const std::vector<NodeId>& critical_globals);
  /// Adds an activated or hopeless sample (denominator only).
  void AddNonBoostable(PrrStatus status);

  size_t num_samples() const { return coverage_.num_sets(); }
  size_t num_boostable() const { return num_boostable_; }
  size_t num_activated() const { return num_activated_; }
  size_t num_hopeless() const { return num_hopeless_; }
  size_t num_graph_nodes() const { return num_graph_nodes_; }
  const std::vector<PrrGraph>& graphs() const { return graphs_; }

  /// Greedy max-coverage over critical sets (maximizes μ̂) — the
  /// NodeSelectionLB step. Returns the selected nodes and μ̂ of that set.
  struct LbResult {
    std::vector<NodeId> nodes;
    double mu_hat = 0.0;
  };
  LbResult SelectGreedyLowerBound(size_t k,
                                  const std::vector<uint8_t>& excluded) const;

  /// Greedy maximization of Δ̂ (the NodeSelection step; full mode only).
  /// Each round picks the node with the largest marginal Δ̂ gain — i.e. the
  /// node critical in the most not-yet-activated PRR-graphs — then
  /// re-evaluates exactly the PRR-graphs containing it. If gains hit zero
  /// before k picks (no single node helps), remaining slots are filled by
  /// PRR-occurrence counts so the budget is never silently wasted.
  struct DeltaResult {
    std::vector<NodeId> nodes;
    size_t activated_samples = 0;
    double delta_hat = 0.0;
  };
  DeltaResult SelectGreedyDelta(size_t k,
                                const std::vector<uint8_t>& excluded) const;

  /// Δ̂_R(B) for an arbitrary boost set (full mode only).
  double EstimateDelta(const std::vector<NodeId>& boost_set,
                       int num_threads = 1) const;
  /// μ̂_R(B) for an arbitrary boost set (works in both modes).
  double EstimateMu(const std::vector<NodeId>& boost_set) const;

  /// Access to the coverage structure driving the IMM schedule.
  const CoverageSelector& coverage() const { return coverage_; }

  /// Bytes held by stored PRR-graphs (the paper's Table 2/3 "memory for
  /// boostable PRR-graphs").
  size_t StoredGraphBytes() const { return stored_bytes_; }

 private:
  size_t num_graph_nodes_;
  std::vector<PrrGraph> graphs_;   // full mode storage
  CoverageSelector coverage_;      // critical sets, denominator = θ
  size_t num_boostable_ = 0;
  size_t num_activated_ = 0;
  size_t num_hopeless_ = 0;
  size_t stored_bytes_ = 0;
  // Inverted index for the greedy: global node -> stored-graph ids whose
  // compressed form contains it.
  std::vector<std::vector<uint32_t>> node_to_graphs_;
};

}  // namespace kboost

#endif  // KBOOST_CORE_PRR_COLLECTION_H_
