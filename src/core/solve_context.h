#ifndef KBOOST_CORE_SOLVE_CONTEXT_H_
#define KBOOST_CORE_SOLVE_CONTEXT_H_

#include "src/core/prr_store.h"

namespace kboost {

/// The query-time mutable state of one in-flight boost query. A prepared
/// pool (sampled PrrCollection, warmed inverted indexes, cached LB greedy
/// order) is strictly read-only at query time; everything a solve scribbles
/// on lives either in oracle-local scratch created per call (the greedy
/// heap, the gain table, per-worker evaluator scratch) or here — the
/// incremental evaluation engine's fwd/bwd/crit bitmap arenas (one
/// PrrEvalState per pool shard), which are the one piece worth keeping warm
/// across queries.
///
/// Concurrency contract: one SolveContext per in-flight query. N threads
/// may solve different budgets/modes against one shared prepared pool
/// simultaneously by bringing one context each; the results are
/// bit-identical to the serial loop. Reusing a context across *sequential*
/// queries on the same pool keeps its allocations (the eval-state arenas are
/// re-zeroed, not re-allocated, while the shard generations are unchanged);
/// a context carried across a pool hot-swap simply re-attaches — even when
/// the replacement pool has a different shard count.
struct SolveContext {
  ShardedEvalState eval_state;
};

}  // namespace kboost

#endif  // KBOOST_CORE_SOLVE_CONTEXT_H_
