#ifndef KBOOST_CORE_PRR_BOOST_H_
#define KBOOST_CORE_PRR_BOOST_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/core/prr_collection.h"
#include "src/core/prr_sampler.h"
#include "src/core/solve_context.h"
#include "src/graph/graph.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace kboost {

/// Tunables for PRR-Boost / PRR-Boost-LB (the paper uses ε = 0.5, ℓ = 1).
struct BoostOptions {
  size_t k = 100;       ///< boost-set budget
  double epsilon = 0.5; ///< sampling slack ε
  double ell = 1.0;     ///< success probability 1 - n^-ℓ
  uint64_t seed = 42;
  int num_threads = DefaultThreadCount();
  /// Number of independent pool shards S. Samples are assigned round-robin
  /// by global sample index, so selections and estimates are bit-identical
  /// for every S (and every thread count) — S only decides how wide
  /// sampling, refresh rebuilds, snapshot I/O and the per-pick re-evaluation
  /// scan can go. Defaults to the hardware worker count so sampling
  /// parallelism is available out of the box.
  int num_shards = DefaultThreadCount();
  /// Hard cap on the PRR-graph pool size θ (0 = no cap). When the IMM
  /// schedule asks for more, sampling stops at the cap and
  /// BoostResult::samples_capped is set; the (1-1/e-ε) guarantee then no
  /// longer formally holds, but selection quality degrades gracefully.
  /// Useful when OPT is tiny relative to n (θ = λ*/OPT explodes).
  size_t max_samples = 0;

  /// The one place option validation lives: k ≥ 1, ε ∈ (0,1), ℓ > 0,
  /// num_threads ∈ [1, ThreadPool::kMaxWorkers], num_shards ∈
  /// [1, PrrCollection::kMaxShards]. Fallible entry points
  /// (BoostSession::Create, set_num_threads, the CLI's --threads/--shards)
  /// all defer here; the trusting constructors KB_CHECK the same predicate.
  Status Validate() const;
};

/// What a query wants answered from a prepared pool.
enum class SolveMode {
  /// The pool's native pipeline: sandwich (full pools) or LB (LB pools).
  kAuto = 0,
  /// Force the full sandwich answer; invalid against an LB-only pool.
  kFull,
  /// Answer from the cached μ̂ greedy order only — O(k) per query on any
  /// pool, including full ones (useful for cheap/approximate traffic).
  kLbOnly,
};

/// A single budget query against a prepared pool — the request-level knobs
/// of the serving API.
struct SolveSpec {
  size_t k = 0;  ///< budget; must be in [1, pool budget]
  SolveMode mode = SolveMode::kAuto;
  /// Worker cap for this query's selection/estimator phases. 0 = the pool's
  /// configured count; otherwise must be in [1, ThreadPool::kMaxWorkers].
  int num_threads = 0;
  /// Optional cooperative cancellation: polled between greedy rounds AND
  /// every bounded stride of the per-pick Δ̂ re-evaluation scan, so even a
  /// one-pick solve stops promptly. When it reads true the solve stops and
  /// reports Status::Cancelled. The flag must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional absolute deadline in SteadyNowNanos() time (0 = none), polled
  /// at the same points as `cancel`. A solve that overruns stops and reports
  /// Status::DeadlineExceeded; its partial selection is discarded, never
  /// served. Absolute (not a duration) so queue wait and solve time draw
  /// down the same budget when a service sets it at admission.
  int64_t deadline_ns = 0;
};

/// Everything Algorithm 2 produces, plus the statistics the paper reports.
struct BoostResult {
  /// B_sa — the sandwich pick (PRR-Boost) or B_µ (PRR-Boost-LB).
  std::vector<NodeId> best_set;
  /// Δ̂(best_set) in full mode; μ̂(B_µ) in LB mode (Δ̂ needs stored graphs).
  double best_estimate = 0.0;

  std::vector<NodeId> lb_set;      ///< B_µ from NodeSelectionLB
  double lb_mu_hat = 0.0;          ///< μ̂(B_µ)
  double lb_delta_hat = 0.0;       ///< Δ̂(B_µ) (full mode only)
  std::vector<NodeId> delta_set;   ///< B_Δ from NodeSelection (full mode)
  double delta_delta_hat = 0.0;    ///< Δ̂(B_Δ) (full mode only)

  // Pool provenance. `pool_budget` is the budget the IMM schedule sampled
  // the pool at; a BoostSession answering SolveForBudget(k) for k <
  // pool_budget reuses that pool, so the (1-1/e-ε) constants formally
  // correspond to pool_budget (selection quality for the smaller budget is
  // the paper's budget-reuse heuristic). `pool_reused` is set when the call
  // answered from an existing pool without sampling.
  size_t pool_budget = 0;
  bool pool_reused = false;

  // Sampling statistics (Tables 2/3, Figs. 6/11).
  size_t num_samples = 0;    ///< θ
  bool samples_capped = false;  ///< hit BoostOptions::max_samples
  size_t num_boostable = 0;
  size_t num_activated = 0;
  size_t num_hopeless = 0;
  double avg_uncompressed_edges = 0.0;
  double avg_compressed_edges = 0.0;
  double compression_ratio = 0.0;
  size_t stored_graph_bytes = 0;
  size_t edges_examined = 0;
  double sampling_seconds = 0.0;
  double selection_seconds = 0.0;
};

/// Shared machinery behind PRR-Boost and PRR-Boost-LB. Exposed so the
/// experiment harness can reuse the sampled pool (e.g. to evaluate the
/// sandwich ratio μ(B)/Δ_S(B) on perturbed boost sets, Fig. 7/9/12).
class PrrBoostEngine {
 public:
  /// `lb_only` selects the PRR-Boost-LB pipeline: distance-1 sampling and
  /// no stored PRR-graphs.
  PrrBoostEngine(const DirectedGraph& graph, std::vector<NodeId> seeds,
                 const BoostOptions& options, bool lb_only);

  /// Runs SamplingLB (IMM schedule over μ̂), then the node-selection steps,
  /// and returns the assembled result. Idempotent: the pool is sampled once.
  /// Equivalent to SolveForBudget(options.k).
  BoostResult Run();

  /// Samples the pool at options.k via the IMM schedule. Idempotent; called
  /// lazily by SolveForBudget/Run, or eagerly (BoostSession::Prepare).
  void EnsureSampled();

  /// Makes the engine ready for concurrent const Solve() calls: samples the
  /// pool (if needed), builds every lazily-constructed read-only index, and
  /// caches the LB greedy order. Idempotent. After Prepare() the engine's
  /// query surface is strictly read-only, which is the thread-safety
  /// contract Solve() relies on.
  void Prepare();
  /// Whether Prepare() has run (a snapshot-adopted pool still needs it).
  bool serving_ready() const { return serving_ready_; }

  /// Answers the k-boosting problem for any budget k ≤ options.k on the
  /// already-sampled pool — selection only, no resampling. LB answers are
  /// prefix slices of one cached greedy order (greedy on the submodular μ̂
  /// yields nested solutions); full mode re-runs only the Δ̂ selection.
  /// The returned result carries pool_budget/pool_reused provenance.
  /// Serial convenience path: samples lazily, KB_CHECKs the budget, and
  /// reuses engine-owned scratch — NOT safe to call concurrently.
  BoostResult SolveForBudget(size_t k);

  /// The concurrent serving path: answers `spec` against the prepared pool
  /// without touching any engine-owned mutable state — all scratch lives in
  /// `context` (one per in-flight query; null uses call-local scratch). Any
  /// number of threads may call Solve() simultaneously on one prepared
  /// engine, with results bit-identical to the serial SolveForBudget loop.
  /// Fails with FailedPrecondition before Prepare(), InvalidArgument for an
  /// out-of-range budget/thread count or a full-mode request against an LB
  /// pool, Cancelled when spec.cancel was raised mid-selection, and
  /// DeadlineExceeded when spec.deadline_ns passed mid-selection.
  StatusOr<BoostResult> Solve(const SolveSpec& spec,
                              SolveContext* context = nullptr) const;

  /// The sampled pool (valid after Run()).
  const PrrCollection& collection() const { return *collection_; }
  /// Δ̂ on the pool for any boost set (full mode only).
  double EstimateDelta(const std::vector<NodeId>& boost_set) const;
  /// μ̂ on the pool for any boost set.
  double EstimateMu(const std::vector<NodeId>& boost_set) const;

  const DirectedGraph& graph() const { return graph_; }
  const std::vector<NodeId>& seeds() const { return seeds_; }
  const BoostOptions& options() const { return options_; }
  /// Overrides the worker count for subsequent selection and estimator
  /// calls (the CLI's --threads). Sampling keeps the count the engine was
  /// built with — pools are bit-identical for every thread count anyway.
  /// Validated by BoostOptions::Validate (InvalidArgument when out of
  /// range). Not safe to call while Solve() requests are in flight.
  Status set_num_threads(int num_threads);
  bool lb_only() const { return lb_only_; }
  bool sampled() const { return sampled_; }
  bool samples_capped() const { return samples_capped_; }
  /// Aggregate sampling statistics of the pool (valid once sampled).
  const PrrSamplerStats& stats() const { return stats_; }

  /// Pool-snapshot restore (src/io/pool_io): adopts an already-filled pool
  /// and marks sampling done, so every SolveForBudget answers from it.
  /// The engine must not have sampled yet.
  void AdoptPool(std::unique_ptr<PrrCollection> collection,
                 const PrrSamplerStats& stats, bool samples_capped);

 private:
  /// The cached NodeSelectionLB greedy order at the full pool budget; every
  /// smaller budget's LB answer is a prefix of it.
  const PrrCollection::LbResult& LbGreedyOrder();

  /// The one selection core both solve paths share. Requires a sampled pool
  /// and a cached LB order; reads them const. `lb_answer` selects the
  /// LB-slice answer (LB pools, or SolveMode::kLbOnly on a full pool).
  /// `stop` (may be null) carries the request's cancel flag and deadline;
  /// when it trips, the partial result is returned as-is and the caller
  /// inspects the token for the reason. Timing/provenance fields are left
  /// for the caller.
  BoostResult SolvePrepared(size_t k, bool lb_answer, int num_threads,
                            ShardedEvalState* eval_state,
                            StopToken* stop) const;

  const DirectedGraph& graph_;
  std::vector<NodeId> seeds_;
  BoostOptions options_;
  bool lb_only_;
  std::vector<uint8_t> excluded_;  // seeds cannot be boosted
  std::unique_ptr<PrrCollection> collection_;
  std::unique_ptr<PrrSampler> sampler_;
  bool sampled_ = false;
  bool samples_capped_ = false;
  bool serving_ready_ = false;
  PrrSamplerStats stats_;
  bool lb_order_ready_ = false;
  PrrCollection::LbResult lb_order_;  // greedy order at options_.k
  // Scratch for the serial SolveForBudget path (kept warm across a sweep);
  // concurrent Solve() calls bring their own SolveContext instead.
  SolveContext serial_context_;
};

/// PRR-Boost (Algorithm 2): sandwich approximation over {B_µ, B_Δ}.
/// Returns a (1 − 1/e − ε)·µ(B*)/Δ_S(B*) approximation w.p. ≥ 1 − n^-ℓ.
BoostResult PrrBoost(const DirectedGraph& graph,
                     const std::vector<NodeId>& seeds,
                     const BoostOptions& options);

/// PRR-Boost-LB (Sec. V-C): lower-bound-only variant; same guarantee,
/// faster sampling, much smaller memory footprint.
BoostResult PrrBoostLb(const DirectedGraph& graph,
                       const std::vector<NodeId>& seeds,
                       const BoostOptions& options);

}  // namespace kboost

#endif  // KBOOST_CORE_PRR_BOOST_H_
