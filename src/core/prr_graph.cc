#include "src/core/prr_graph.h"

#include <algorithm>

#include "src/util/logging.h"

namespace kboost {

size_t PrrGraph::MemoryBytes() const {
  return global_ids.capacity() * sizeof(NodeId) +
         (out_offsets.capacity() + out_edges.capacity() +
          in_offsets.capacity() + in_edges.capacity() +
          critical_locals.capacity()) *
             sizeof(uint32_t);
}

PrrGenerator::PrrGenerator(const DirectedGraph& graph,
                           const std::vector<NodeId>& seeds)
    : graph_(graph),
      is_seed_(graph.num_nodes(), 0),
      visit_stamp_(graph.num_nodes(), 0),
      local_index_(graph.num_nodes(), 0) {
  for (NodeId s : seeds) {
    KB_CHECK(s < graph.num_nodes());
    is_seed_[s] = 1;
  }
}

uint32_t PrrGenerator::LocalOf(NodeId global) {
  if (visit_stamp_[global] != stamp_) {
    visit_stamp_[global] = stamp_;
    local_index_[global] = static_cast<uint32_t>(locals_.size());
    locals_.push_back(global);
    dist_.push_back(kInf);
  }
  return local_index_[global];
}

PrrGenResult PrrGenerator::GenerateRandomRoot(size_t k, bool lb_only,
                                              Rng& rng) {
  NodeId root = static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
  return Generate(root, k, lb_only, rng);
}

PrrGenResult PrrGenerator::Generate(NodeId root, size_t k, bool lb_only,
                                    Rng& rng) {
  KB_CHECK(root < graph_.num_nodes());
  PrrGenResult result;
  if (is_seed_[root]) {
    result.status = PrrStatus::kActivated;
    return result;
  }

  // ---- Phase I: backward 0/1-BFS from the root (Algorithm 1) ----
  ++stamp_;
  if (stamp_ == 0) {  // wrapped: reset stamps
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
    stamp_ = 1;
  }
  locals_.clear();
  dist_.clear();
  edges_.clear();
  queue_.clear();

  const uint32_t root_local = LocalOf(root);
  dist_[root_local] = 0;
  queue_.emplace_back(root_local, 0);

  // LB mode only needs paths with at most one live-upon-boost edge.
  const uint32_t prune =
      lb_only ? static_cast<uint32_t>(std::min<size_t>(k, 1))
              : static_cast<uint32_t>(k);
  bool seed_found = false;

  while (!queue_.empty()) {
    auto [u_local, dur] = queue_.front();
    queue_.pop_front();
    if (dur > dist_[u_local]) continue;  // stale entry
    const NodeId u_global = locals_[u_local];
    for (const DirectedGraph::InEdge& e : graph_.InEdges(u_global)) {
      ++result.edges_examined;
      // Sample this edge's status on first (and only) touch.
      const double x = rng.NextDouble();
      const bool live = x < e.p;
      const bool boost = !live && x < e.p_boost;
      if (!live && !boost) continue;  // blocked
      const uint32_t dvr = dur + (boost ? 1u : 0u);
      if (dvr > prune) continue;  // pruning (Line 11)
      const uint32_t v_local = LocalOf(e.from);
      edges_.push_back(LocalEdge{v_local, u_local,
                                 static_cast<uint8_t>(boost)});
      if (dvr < dist_[v_local]) {
        dist_[v_local] = dvr;
        if (is_seed_[e.from]) {
          if (dvr == 0) {
            result.status = PrrStatus::kActivated;
            return result;
          }
          seed_found = true;  // seeds are never expanded further
        } else if (dvr == dur) {
          queue_.emplace_front(v_local, dvr);
        } else {
          queue_.emplace_back(v_local, dvr);
        }
      }
    }
  }

  if (!seed_found) {
    result.status = PrrStatus::kHopeless;
    return result;
  }
  result.status = PrrStatus::kBoostable;
  result.uncompressed_edges = edges_.size();

  if (lb_only) {
    ExtractCriticalLbOnly(root_local, &result);
  } else {
    Compress(root_local, k, &result);
  }
  return result;
}

namespace {

/// Builds a CSR over `edges` keyed by `key` (from/to selector) into
/// offsets/slots. `slots` receives edge indices so labels stay accessible.
template <typename KeyFn>
void BuildLocalCsr(size_t num_nodes, size_t num_edges, KeyFn key,
                   std::vector<uint32_t>& offsets,
                   std::vector<uint32_t>& slots) {
  offsets.assign(num_nodes + 1, 0);
  for (size_t i = 0; i < num_edges; ++i) ++offsets[key(i) + 1];
  for (size_t i = 1; i <= num_nodes; ++i) offsets[i] += offsets[i - 1];
  slots.resize(num_edges);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t i = 0; i < num_edges; ++i) {
    slots[cursor[key(i)]++] = static_cast<uint32_t>(i);
  }
}

}  // namespace

void PrrGenerator::Compress(uint32_t root_local, size_t k,
                            PrrGenResult* result) {
  const size_t num_locals = locals_.size();
  const size_t num_edges = edges_.size();

  // Local CSRs over the phase-I subgraph (edge-index slots keep labels).
  BuildLocalCsr(
      num_locals, num_edges, [&](size_t i) { return edges_[i].from; },
      csr_offsets_, csr_edges_);
  BuildLocalCsr(
      num_locals, num_edges, [&](size_t i) { return edges_[i].to; },
      csr_in_offsets_, csr_in_edges_);

  // ---- Forward 0/1-BFS from seeds: ds_[v] = min #boosts to activate v ----
  ds_.assign(num_locals, kInf);
  queue_.clear();
  for (uint32_t v = 0; v < num_locals; ++v) {
    if (is_seed_[locals_[v]]) {
      ds_[v] = 0;
      queue_.emplace_back(v, 0);
    }
  }
  while (!queue_.empty()) {
    auto [u, du] = queue_.front();
    queue_.pop_front();
    if (du > ds_[u]) continue;
    for (uint32_t s = csr_offsets_[u]; s < csr_offsets_[u + 1]; ++s) {
      const LocalEdge& e = edges_[csr_edges_[s]];
      const uint32_t dv = du + e.boost;
      if (dv > k || dv >= ds_[e.to]) continue;
      ds_[e.to] = dv;
      if (e.boost) {
        queue_.emplace_back(e.to, dv);
      } else {
        queue_.emplace_front(e.to, dv);
      }
    }
  }
  // Phase I guarantees no live seed→root path survives.
  KB_DCHECK(ds_[root_local] != 0) << "activated graph reached compression";

  // ---- Backward 0/1-BFS from root restricted to nodes outside X ----
  // (paths through X would pass "through the super-seed").
  dpr_.assign(num_locals, kInf);
  queue_.clear();
  dpr_[root_local] = 0;
  queue_.emplace_back(root_local, 0);
  while (!queue_.empty()) {
    auto [u, du] = queue_.front();
    queue_.pop_front();
    if (du > dpr_[u]) continue;
    for (uint32_t s = csr_in_offsets_[u]; s < csr_in_offsets_[u + 1]; ++s) {
      const LocalEdge& e = edges_[csr_in_edges_[s]];
      const uint32_t v = e.from;
      if (ds_[v] == 0) continue;  // v ∈ X: contracted into the super-seed
      const uint32_t dv = du + e.boost;
      if (dv > k || dv >= dpr_[v]) continue;
      dpr_[v] = dv;
      if (e.boost) {
        queue_.emplace_back(v, dv);
      } else {
        queue_.emplace_front(v, dv);
      }
    }
  }

  // ---- Keep set: every path through v must fit in the budget ----
  // new_id_: 0 = super-seed, 1 = root, 2.. = kept intermediates.
  new_id_.assign(num_locals, kInf);
  new_id_[root_local] = PrrGraph::kRootLocal;
  uint32_t next_id = 2;
  for (uint32_t v = 0; v < num_locals; ++v) {
    if (v == root_local || ds_[v] == 0) continue;
    if (ds_[v] == kInf || dpr_[v] == kInf) continue;
    if (static_cast<size_t>(ds_[v]) + dpr_[v] > k) continue;
    new_id_[v] = next_id++;
  }
  const uint32_t compact_n = next_id;

  // ---- Emit compressed edges ----
  // adj[u] holds packed (target, boost) out-edges of compact node u.
  std::vector<std::vector<uint32_t>> adj(compact_n);
  flag_.assign(compact_n, 0);  // dedupe super-seed fanout & live shortcuts

  for (uint32_t v = 0; v < num_locals; ++v) {
    const uint32_t nv = new_id_[v];
    if (nv == kInf) continue;
    if (nv != PrrGraph::kRootLocal && dpr_[v] == 0) {
      // Live path v→root: replace all out-edges with one live shortcut.
      adj[nv].push_back(PrrGraph::PackEdge(PrrGraph::kRootLocal, false));
      continue;
    }
    if (nv == PrrGraph::kRootLocal) continue;  // root keeps no out-edges
    for (uint32_t s = csr_offsets_[v]; s < csr_offsets_[v + 1]; ++s) {
      const LocalEdge& e = edges_[csr_edges_[s]];
      const uint32_t nt = new_id_[e.to];
      if (nt == kInf || ds_[e.to] == 0) continue;  // dropped or into X
      adj[nv].push_back(PrrGraph::PackEdge(nt, e.boost != 0));
    }
  }
  // Super-seed fanout: X → kept nodes. All such edges are boost edges
  // (a live edge out of X would have pulled its head into X).
  for (uint32_t v = 0; v < num_locals; ++v) {
    if (ds_[v] != 0) continue;
    for (uint32_t s = csr_offsets_[v]; s < csr_offsets_[v + 1]; ++s) {
      const LocalEdge& e = edges_[csr_edges_[s]];
      const uint32_t nt = new_id_[e.to];
      if (nt == kInf) continue;
      KB_DCHECK(e.boost) << "live edge out of the super-seed set";
      if (!flag_[nt]) {
        flag_[nt] = 1;
        adj[PrrGraph::kSuperSeedLocal].push_back(
            PrrGraph::PackEdge(nt, true));
      }
    }
  }

  // ---- Reachability cleanup: keep nodes on super-seed→root paths ----
  std::vector<uint8_t> fwd(compact_n, 0), bwd(compact_n, 0);
  std::vector<std::vector<uint32_t>> radj(compact_n);
  for (uint32_t u = 0; u < compact_n; ++u) {
    for (uint32_t packed : adj[u]) {
      radj[PrrGraph::EdgeNode(packed)].push_back(
          PrrGraph::PackEdge(u, PrrGraph::EdgeBoost(packed)));
    }
  }
  std::vector<uint32_t> stack{PrrGraph::kSuperSeedLocal};
  fwd[PrrGraph::kSuperSeedLocal] = 1;
  while (!stack.empty()) {
    uint32_t u = stack.back();
    stack.pop_back();
    for (uint32_t packed : adj[u]) {
      uint32_t t = PrrGraph::EdgeNode(packed);
      if (!fwd[t]) {
        fwd[t] = 1;
        stack.push_back(t);
      }
    }
  }
  stack.assign(1, PrrGraph::kRootLocal);
  bwd[PrrGraph::kRootLocal] = 1;
  while (!stack.empty()) {
    uint32_t u = stack.back();
    stack.pop_back();
    for (uint32_t packed : radj[u]) {
      uint32_t t = PrrGraph::EdgeNode(packed);
      if (!bwd[t]) {
        bwd[t] = 1;
        stack.push_back(t);
      }
    }
  }
  if (!fwd[PrrGraph::kRootLocal]) {
    // Cannot happen per the ds+dpr≤k keep rule, but degrade gracefully.
    result->status = PrrStatus::kHopeless;
    return;
  }

  // ---- Renumber survivors and build the final CSR arrays ----
  std::vector<uint32_t> final_id(compact_n, kInf);
  final_id[PrrGraph::kSuperSeedLocal] = PrrGraph::kSuperSeedLocal;
  final_id[PrrGraph::kRootLocal] = PrrGraph::kRootLocal;
  uint32_t final_n = 2;
  for (uint32_t u = 2; u < compact_n; ++u) {
    if (fwd[u] && bwd[u]) final_id[u] = final_n++;
  }

  PrrGraph& g = result->graph;
  g.global_ids.assign(final_n, kInvalidNode);
  g.global_ids[PrrGraph::kRootLocal] = locals_[root_local];
  for (uint32_t v = 0; v < num_locals; ++v) {
    const uint32_t nv = new_id_[v];
    if (nv == kInf || nv < 2) continue;
    const uint32_t fv = final_id[nv];
    if (fv != kInf) g.global_ids[fv] = locals_[v];
  }

  g.out_offsets.assign(final_n + 1, 0);
  size_t kept_edges = 0;
  for (uint32_t u = 0; u < compact_n; ++u) {
    if (final_id[u] == kInf) continue;
    for (uint32_t packed : adj[u]) {
      if (final_id[PrrGraph::EdgeNode(packed)] != kInf) ++kept_edges;
    }
  }
  g.out_edges.clear();
  g.out_edges.reserve(kept_edges);
  for (uint32_t u = 0; u < compact_n; ++u) {
    const uint32_t fu = final_id[u];
    if (fu == kInf) continue;
    g.out_offsets[fu + 1] = 0;  // filled below
  }
  // Two-pass CSR: count then fill, iterating compact nodes in final order.
  std::vector<std::vector<uint32_t>> final_adj(final_n);
  for (uint32_t u = 0; u < compact_n; ++u) {
    const uint32_t fu = final_id[u];
    if (fu == kInf) continue;
    for (uint32_t packed : adj[u]) {
      const uint32_t ft = final_id[PrrGraph::EdgeNode(packed)];
      if (ft == kInf) continue;
      final_adj[fu].push_back(
          PrrGraph::PackEdge(ft, PrrGraph::EdgeBoost(packed)));
    }
  }
  g.out_offsets.assign(final_n + 1, 0);
  for (uint32_t u = 0; u < final_n; ++u) {
    g.out_offsets[u + 1] = g.out_offsets[u] +
                           static_cast<uint32_t>(final_adj[u].size());
    for (uint32_t packed : final_adj[u]) g.out_edges.push_back(packed);
  }
  // In-CSR.
  g.in_offsets.assign(final_n + 1, 0);
  for (uint32_t packed : g.out_edges) {
    ++g.in_offsets[PrrGraph::EdgeNode(packed) + 1];
  }
  for (uint32_t u = 0; u < final_n; ++u) g.in_offsets[u + 1] += g.in_offsets[u];
  g.in_edges.resize(g.out_edges.size());
  {
    std::vector<uint32_t> cursor(g.in_offsets.begin(), g.in_offsets.end() - 1);
    for (uint32_t u = 0; u < final_n; ++u) {
      for (uint32_t s = g.out_offsets[u]; s < g.out_offsets[u + 1]; ++s) {
        const uint32_t packed = g.out_edges[s];
        g.in_edges[cursor[PrrGraph::EdgeNode(packed)]++] =
            PrrGraph::PackEdge(u, PrrGraph::EdgeBoost(packed));
      }
    }
  }

  // ---- Critical nodes: super-seed boost fanout into live-to-root nodes ----
  g.critical_locals.clear();
  for (uint32_t s = g.out_offsets[PrrGraph::kSuperSeedLocal];
       s < g.out_offsets[PrrGraph::kSuperSeedLocal + 1]; ++s) {
    const uint32_t packed = g.out_edges[s];
    const uint32_t t = PrrGraph::EdgeNode(packed);
    // Map back: find the compact node; dpr was indexed by phase-I locals.
    // Instead of reverse maps, recompute: t is live-to-root iff it has a
    // live out-edge chain to root. We exploit the shortcut invariant: after
    // compression a node has dpr==0 iff its out-edges contain a live edge
    // to the root, or it IS the root.
    if (t == PrrGraph::kRootLocal) {
      g.critical_locals.push_back(t);
      continue;
    }
    bool live_to_root = false;
    for (uint32_t s2 = g.out_offsets[t]; s2 < g.out_offsets[t + 1]; ++s2) {
      const uint32_t p2 = g.out_edges[s2];
      if (!PrrGraph::EdgeBoost(p2) &&
          PrrGraph::EdgeNode(p2) == PrrGraph::kRootLocal) {
        live_to_root = true;
        break;
      }
    }
    if (live_to_root) g.critical_locals.push_back(t);
  }

  result->critical_globals.clear();
  result->critical_globals.reserve(g.critical_locals.size());
  for (uint32_t c : g.critical_locals) {
    result->critical_globals.push_back(g.global_ids[c]);
  }
}

void PrrGenerator::ExtractCriticalLbOnly(uint32_t root_local,
                                         PrrGenResult* result) {
  const size_t num_locals = locals_.size();
  const size_t num_edges = edges_.size();

  BuildLocalCsr(
      num_locals, num_edges, [&](size_t i) { return edges_[i].from; },
      csr_offsets_, csr_edges_);
  BuildLocalCsr(
      num_locals, num_edges, [&](size_t i) { return edges_[i].to; },
      csr_in_offsets_, csr_in_edges_);

  // X: live-reachable from seeds (forward BFS over live edges only).
  ds_.assign(num_locals, kInf);
  std::vector<uint32_t> stack;
  for (uint32_t v = 0; v < num_locals; ++v) {
    if (is_seed_[locals_[v]]) {
      ds_[v] = 0;
      stack.push_back(v);
    }
  }
  while (!stack.empty()) {
    uint32_t u = stack.back();
    stack.pop_back();
    for (uint32_t s = csr_offsets_[u]; s < csr_offsets_[u + 1]; ++s) {
      const LocalEdge& e = edges_[csr_edges_[s]];
      if (e.boost || ds_[e.to] == 0) continue;
      ds_[e.to] = 0;
      stack.push_back(e.to);
    }
  }

  // live-to-root: backward BFS over live edges (never enters X: a live
  // X→root chain would have made the sample "activated" in phase I).
  dpr_.assign(num_locals, kInf);
  dpr_[root_local] = 0;
  stack.assign(1, root_local);
  while (!stack.empty()) {
    uint32_t u = stack.back();
    stack.pop_back();
    for (uint32_t s = csr_in_offsets_[u]; s < csr_in_offsets_[u + 1]; ++s) {
      const LocalEdge& e = edges_[csr_in_edges_[s]];
      if (e.boost || dpr_[e.from] == 0 || ds_[e.from] == 0) continue;
      dpr_[e.from] = 0;
      stack.push_back(e.from);
    }
  }

  // Critical: v ∉ X, live path v→root, and some boost edge (u,v) with u ∈ X.
  flag_.assign(num_locals, 0);
  result->critical_globals.clear();
  for (size_t i = 0; i < num_edges; ++i) {
    const LocalEdge& e = edges_[i];
    if (!e.boost) continue;
    if (ds_[e.from] != 0) continue;
    if (ds_[e.to] == 0) continue;
    if (dpr_[e.to] != 0) continue;
    if (flag_[e.to]) continue;
    flag_[e.to] = 1;
    result->critical_globals.push_back(locals_[e.to]);
  }
}

bool PrrEvaluator::IsActivated(const PrrGraph& g,
                               const uint8_t* boosted_global) {
  const uint32_t n = g.num_nodes();
  fwd0_.assign(n, 0);
  queue_.clear();
  fwd0_[PrrGraph::kSuperSeedLocal] = 1;
  queue_.push_back(PrrGraph::kSuperSeedLocal);
  while (!queue_.empty()) {
    uint32_t u = queue_.back();
    queue_.pop_back();
    for (uint32_t s = g.out_offsets[u]; s < g.out_offsets[u + 1]; ++s) {
      const uint32_t packed = g.out_edges[s];
      const uint32_t t = PrrGraph::EdgeNode(packed);
      if (fwd0_[t]) continue;
      if (PrrGraph::EdgeBoost(packed) && !boosted_global[g.global_ids[t]]) {
        continue;
      }
      fwd0_[t] = 1;
      if (t == PrrGraph::kRootLocal) return true;
      queue_.push_back(t);
    }
  }
  return false;
}

void PrrEvaluator::ComputeReach(const PrrGraph& g,
                                const uint8_t* boosted_global) {
  const uint32_t n = g.num_nodes();
  // Forward 0-reach from super-seed.
  fwd0_.assign(n, 0);
  queue_.clear();
  fwd0_[PrrGraph::kSuperSeedLocal] = 1;
  queue_.push_back(PrrGraph::kSuperSeedLocal);
  while (!queue_.empty()) {
    uint32_t u = queue_.back();
    queue_.pop_back();
    for (uint32_t s = g.out_offsets[u]; s < g.out_offsets[u + 1]; ++s) {
      const uint32_t packed = g.out_edges[s];
      const uint32_t t = PrrGraph::EdgeNode(packed);
      if (fwd0_[t]) continue;
      if (PrrGraph::EdgeBoost(packed) && !boosted_global[g.global_ids[t]]) {
        continue;
      }
      fwd0_[t] = 1;
      queue_.push_back(t);
    }
  }
  // Backward 0-reach to root. Edge (u,v) has weight 0 iff live or v ∈ B.
  bwd0_.assign(n, 0);
  queue_.clear();
  bwd0_[PrrGraph::kRootLocal] = 1;
  queue_.push_back(PrrGraph::kRootLocal);
  while (!queue_.empty()) {
    uint32_t v = queue_.back();
    queue_.pop_back();
    const bool v_boosted = v != PrrGraph::kSuperSeedLocal &&
                           boosted_global[g.global_ids[v]] != 0;
    for (uint32_t s = g.in_offsets[v]; s < g.in_offsets[v + 1]; ++s) {
      const uint32_t packed = g.in_edges[s];
      const uint32_t u = PrrGraph::EdgeNode(packed);
      if (bwd0_[u]) continue;
      if (PrrGraph::EdgeBoost(packed) && !v_boosted) continue;
      bwd0_[u] = 1;
      queue_.push_back(u);
    }
  }
}

bool PrrEvaluator::CriticalNodes(const PrrGraph& g,
                                 const uint8_t* boosted_global,
                                 std::vector<uint32_t>* out) {
  out->clear();
  ComputeReach(g, boosted_global);
  if (fwd0_[PrrGraph::kRootLocal]) return true;  // f_R(B) = 1
  const uint32_t n = g.num_nodes();
  // Candidates: the root (local 1) and intermediates (2..); never the
  // super-seed.
  for (uint32_t v = PrrGraph::kRootLocal; v < n; ++v) {
    if (boosted_global[g.global_ids[v]]) continue;  // already boosted
    if (!bwd0_[v]) continue;
    // Boosting v opens its boost in-edges; need one whose tail is 0-reached.
    for (uint32_t s = g.in_offsets[v]; s < g.in_offsets[v + 1]; ++s) {
      const uint32_t packed = g.in_edges[s];
      if (!PrrGraph::EdgeBoost(packed)) continue;
      if (fwd0_[PrrGraph::EdgeNode(packed)]) {
        out->push_back(v);
        break;
      }
    }
  }
  return false;
}

}  // namespace kboost
