#include "src/core/prr_graph.h"

#include <algorithm>
#include <bit>

#include "src/core/prr_store.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace kboost {

size_t PrrGraph::MemoryBytes() const {
  return global_ids.capacity() * sizeof(NodeId) +
         (out_offsets.capacity() + out_edges.capacity() +
          in_offsets.capacity() + in_edges.capacity() +
          critical_locals.capacity()) *
             sizeof(uint32_t);
}

PrrGenerator::PrrGenerator(const DirectedGraph& graph,
                           const std::vector<NodeId>& seeds)
    : graph_(graph),
      is_seed_(graph.num_nodes(), 0),
      visit_stamp_(graph.num_nodes(), 0),
      local_index_(graph.num_nodes(), 0) {
  for (NodeId s : seeds) {
    KB_CHECK(s < graph.num_nodes());
    is_seed_[s] = 1;
  }
  size_t max_in_degree = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    max_in_degree = std::max(max_in_degree, graph.InDegree(v));
  }
  pass_buf_.resize(max_in_degree);
}

uint32_t PrrGenerator::LocalOf(NodeId global) {
  if (visit_stamp_[global] != stamp_) {
    visit_stamp_[global] = stamp_;
    local_index_[global] = static_cast<uint32_t>(locals_.size());
    locals_.push_back(global);
    dist_.push_back(kInf);
    in_run_start_.push_back(0);
    in_run_end_.push_back(0);
  }
  return local_index_[global];
}

PrrGenResult PrrGenerator::GenerateRandomRoot(size_t k, bool lb_only,
                                              Rng& rng, PrrStore* sink) {
  NodeId root = static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
  return Generate(root, k, lb_only, rng, sink);
}

PrrGenResult PrrGenerator::Generate(NodeId root, size_t k, bool lb_only,
                                    Rng& rng, PrrStore* sink) {
  KB_CHECK(root < graph_.num_nodes());
  PrrGenResult result;
  if (is_seed_[root]) {
    result.status = PrrStatus::kActivated;
    return result;
  }

  // ---- Phase I: backward 0/1-BFS from the root (Algorithm 1) ----
  ++stamp_;
  if (stamp_ == 0) {  // wrapped: reset stamps
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
    stamp_ = 1;
  }
  locals_.clear();
  dist_.clear();
  edges_.clear();
  in_run_start_.clear();
  in_run_end_.clear();
  queue_.clear();

  const uint32_t root_local = LocalOf(root);
  dist_[root_local] = 0;
  queue_.emplace_back(root_local, 0);

  // LB mode only needs paths with at most one live-upon-boost edge.
  const uint32_t prune =
      lb_only ? static_cast<uint32_t>(std::min<size_t>(k, 1))
              : static_cast<uint32_t>(k);
  bool seed_found = false;
  // Local copy keeps the 4-word RNG state in registers across the scan;
  // written back before every return.
  Rng local_rng = rng;

  // Hot loop: one RNG draw per examined in-edge, in BFS pop order — the
  // realization is bit-identical to drawing inside a branchy loop. The scan
  // is two-phase to keep the pipeline full: phase one draws every edge of
  // the popped node branchlessly and collects survivors (GraphBuilder
  // guarantees p <= p_boost, so one compare against p_boost classifies
  // blocked edges and `x >= p` recovers the boost bit); phase two does the
  // BFS bookkeeping only for the ~p_boost fraction that passed. Each sample
  // has its own Rng, so drawing a popped node's edges eagerly — even when
  // an activation early-return follows — cannot perturb any other sample.
  size_t edges_examined = 0;
  while (!queue_.empty()) {
    auto [u_local, dur] = queue_.front();
    queue_.pop_front();
    if (dur > dist_[u_local]) continue;  // stale entry
    const NodeId u_global = locals_[u_local];
    const std::span<const DirectedGraph::InEdge> in_edges =
        graph_.InEdges(u_global);
    const std::span<const DirectedGraph::InThreshold> thresholds =
        graph_.InThresholds(u_global);
    const size_t degree = in_edges.size();
    edges_examined += degree;
    size_t passed = 0;
    for (size_t i = 0; i < degree; ++i) {
      const uint64_t x = local_rng.NextU64() >> 11;  // 53-bit draw
      const DirectedGraph::InThreshold& t = thresholds[i];
      // Survivors carry (source << 1) | boost; the process loop never
      // touches the adjacency arrays again.
      pass_buf_[passed] =
          (in_edges[i].from << 1) | static_cast<uint32_t>(x >= t.p);
      passed += x < t.p_boost;
    }
    const uint32_t run_start = static_cast<uint32_t>(edges_.size());
    for (size_t s = 0; s < passed; ++s) {
      const uint32_t rec = pass_buf_[s];
      const NodeId from = rec >> 1;
      const bool boost = (rec & 1u) != 0;
      const uint32_t dvr = dur + (boost ? 1u : 0u);
      if (dvr > prune) continue;  // pruning (Line 11)
      const uint32_t v_local = LocalOf(from);
      edges_.push_back(PackLocalEdge(v_local, u_local, boost));
      if (dvr < dist_[v_local]) {
        dist_[v_local] = dvr;
        if (is_seed_[from]) {
          if (dvr == 0) {
            result.status = PrrStatus::kActivated;
            result.edges_examined = edges_examined;
            rng = local_rng;
            return result;
          }
          seed_found = true;  // seeds are never expanded further
        } else if (dvr == dur) {
          queue_.emplace_front(v_local, dvr);
        } else {
          queue_.emplace_back(v_local, dvr);
        }
      }
    }
    in_run_start_[u_local] = run_start;
    in_run_end_[u_local] = static_cast<uint32_t>(edges_.size());
  }
  result.edges_examined = edges_examined;
  rng = local_rng;

  if (!seed_found) {
    result.status = PrrStatus::kHopeless;
    return result;
  }
  result.status = PrrStatus::kBoostable;
  result.uncompressed_edges = edges_.size();

  if (lb_only) {
    ExtractCriticalLbOnly(root_local, &result);
  } else {
    Compress(root_local, k, &result, sink);
  }
  return result;
}

void PrrGenerator::BuildLocalOutCsr() {
  const size_t num_locals = locals_.size();
  csr_offsets_.assign(num_locals + 1, 0);
  for (const uint64_t e : edges_) ++csr_offsets_[LocalEdgeFrom(e) + 1];
  for (size_t v = 0; v < num_locals; ++v) {
    csr_offsets_[v + 1] += csr_offsets_[v];
  }
  csr_edges_.resize(edges_.size());
  cursor_.assign(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (const uint64_t e : edges_) {
    csr_edges_[cursor_[LocalEdgeFrom(e)]++] =
        (LocalEdgeTo(e) << 1) | static_cast<uint32_t>(e & 1u);
  }
}

void PrrGenerator::Compress(uint32_t root_local, size_t k,
                            PrrGenResult* result, PrrStore* sink) {
  const size_t num_locals = locals_.size();

  BuildLocalOutCsr();

  // ---- Forward 0/1-BFS from seeds: ds_[v] = min #boosts to activate v ----
  ds_.assign(num_locals, kInf);
  queue_.clear();
  for (uint32_t v = 0; v < num_locals; ++v) {
    if (is_seed_[locals_[v]]) {
      ds_[v] = 0;
      queue_.emplace_back(v, 0);
    }
  }
  while (!queue_.empty()) {
    auto [u, du] = queue_.front();
    queue_.pop_front();
    if (du > ds_[u]) continue;
    for (uint32_t s = csr_offsets_[u]; s < csr_offsets_[u + 1]; ++s) {
      const uint32_t packed = csr_edges_[s];
      const uint32_t to = packed >> 1;
      const uint32_t boost = packed & 1u;
      const uint32_t dv = du + boost;
      if (dv > k || dv >= ds_[to]) continue;
      ds_[to] = dv;
      if (boost) {
        queue_.emplace_back(to, dv);
      } else {
        queue_.emplace_front(to, dv);
      }
    }
  }
  // Phase I guarantees no live seed→root path survives.
  KB_DCHECK(ds_[root_local] != 0) << "activated graph reached compression";

  // ---- Backward 0/1-BFS from root restricted to nodes outside X ----
  // (paths through X would pass "through the super-seed").
  dpr_.assign(num_locals, kInf);
  queue_.clear();
  dpr_[root_local] = 0;
  queue_.emplace_back(root_local, 0);
  while (!queue_.empty()) {
    auto [u, du] = queue_.front();
    queue_.pop_front();
    if (du > dpr_[u]) continue;
    for (uint32_t s = in_run_start_[u]; s < in_run_end_[u]; ++s) {
      const uint64_t e = edges_[s];
      const uint32_t v = LocalEdgeFrom(e);
      if (ds_[v] == 0) continue;  // v ∈ X: contracted into the super-seed
      const uint32_t boost = static_cast<uint32_t>(e & 1u);
      const uint32_t dv = du + boost;
      if (dv > k || dv >= dpr_[v]) continue;
      dpr_[v] = dv;
      if (boost) {
        queue_.emplace_back(v, dv);
      } else {
        queue_.emplace_front(v, dv);
      }
    }
  }

  // ---- Keep set: every path through v must fit in the budget ----
  // new_id_: 0 = super-seed, 1 = root, 2.. = kept intermediates.
  new_id_.assign(num_locals, kInf);
  new_id_[root_local] = PrrGraph::kRootLocal;
  uint32_t next_id = 2;
  for (uint32_t v = 0; v < num_locals; ++v) {
    if (v == root_local || ds_[v] == 0) continue;
    if (ds_[v] == kInf || dpr_[v] == kInf) continue;
    if (static_cast<size_t>(ds_[v]) + dpr_[v] > k) continue;
    new_id_[v] = next_id++;
  }
  const uint32_t compact_n = next_id;

  // ---- Emit compressed edges as flat (node, packed) pairs ----
  emit_edges_.clear();
  flag_.assign(compact_n, 0);  // dedupe super-seed fanout

  for (uint32_t v = 0; v < num_locals; ++v) {
    const uint32_t nv = new_id_[v];
    if (nv == kInf) continue;
    if (nv != PrrGraph::kRootLocal && dpr_[v] == 0) {
      // Live path v→root: replace all out-edges with one live shortcut.
      emit_edges_.emplace_back(
          nv, PrrGraph::PackEdge(PrrGraph::kRootLocal, false));
      continue;
    }
    if (nv == PrrGraph::kRootLocal) continue;  // root keeps no out-edges
    for (uint32_t s = csr_offsets_[v]; s < csr_offsets_[v + 1]; ++s) {
      const uint32_t packed = csr_edges_[s];
      const uint32_t to = packed >> 1;
      const uint32_t nt = new_id_[to];
      if (nt == kInf || ds_[to] == 0) continue;  // dropped or into X
      emit_edges_.emplace_back(nv, PrrGraph::PackEdge(nt, (packed & 1u) != 0));
    }
  }
  // Super-seed fanout: X → kept nodes. All such edges are boost edges
  // (a live edge out of X would have pulled its head into X).
  for (uint32_t v = 0; v < num_locals; ++v) {
    if (ds_[v] != 0) continue;
    for (uint32_t s = csr_offsets_[v]; s < csr_offsets_[v + 1]; ++s) {
      const uint32_t packed = csr_edges_[s];
      const uint32_t nt = new_id_[packed >> 1];
      if (nt == kInf) continue;
      KB_DCHECK(packed & 1u) << "live edge out of the super-seed set";
      if (!flag_[nt]) {
        flag_[nt] = 1;
        emit_edges_.emplace_back(PrrGraph::kSuperSeedLocal,
                                 PrrGraph::PackEdge(nt, true));
      }
    }
  }

  // ---- Compact out- and in-CSRs via counting sort (reused buffers) ----
  const size_t emit_count = emit_edges_.size();
  cadj_offsets_.assign(compact_n + 1, 0);
  cradj_offsets_.assign(compact_n + 1, 0);
  for (const auto& [u, packed] : emit_edges_) {
    ++cadj_offsets_[u + 1];
    ++cradj_offsets_[PrrGraph::EdgeNode(packed) + 1];
  }
  for (uint32_t u = 0; u < compact_n; ++u) {
    cadj_offsets_[u + 1] += cadj_offsets_[u];
    cradj_offsets_[u + 1] += cradj_offsets_[u];
  }
  cadj_edges_.resize(emit_count);
  cradj_edges_.resize(emit_count);
  cursor_.assign(cadj_offsets_.begin(), cadj_offsets_.end() - 1);
  for (const auto& [u, packed] : emit_edges_) {
    cadj_edges_[cursor_[u]++] = packed;
  }
  cursor_.assign(cradj_offsets_.begin(), cradj_offsets_.end() - 1);
  for (const auto& [u, packed] : emit_edges_) {
    cradj_edges_[cursor_[PrrGraph::EdgeNode(packed)]++] =
        PrrGraph::PackEdge(u, PrrGraph::EdgeBoost(packed));
  }

  // ---- Reachability cleanup: keep nodes on super-seed→root paths ----
  fwd_.assign(compact_n, 0);
  bwd_.assign(compact_n, 0);
  stack_.assign(1, PrrGraph::kSuperSeedLocal);
  fwd_[PrrGraph::kSuperSeedLocal] = 1;
  while (!stack_.empty()) {
    const uint32_t u = stack_.back();
    stack_.pop_back();
    for (uint32_t s = cadj_offsets_[u]; s < cadj_offsets_[u + 1]; ++s) {
      const uint32_t t = PrrGraph::EdgeNode(cadj_edges_[s]);
      if (!fwd_[t]) {
        fwd_[t] = 1;
        stack_.push_back(t);
      }
    }
  }
  stack_.assign(1, PrrGraph::kRootLocal);
  bwd_[PrrGraph::kRootLocal] = 1;
  while (!stack_.empty()) {
    const uint32_t u = stack_.back();
    stack_.pop_back();
    for (uint32_t s = cradj_offsets_[u]; s < cradj_offsets_[u + 1]; ++s) {
      const uint32_t t = PrrGraph::EdgeNode(cradj_edges_[s]);
      if (!bwd_[t]) {
        bwd_[t] = 1;
        stack_.push_back(t);
      }
    }
  }
  if (!fwd_[PrrGraph::kRootLocal]) {
    // Cannot happen per the ds+dpr≤k keep rule, but degrade gracefully.
    result->status = PrrStatus::kHopeless;
    return;
  }

  // ---- Renumber survivors and build the final CSR arrays in scratch ----
  final_id_.assign(compact_n, kInf);
  final_id_[PrrGraph::kSuperSeedLocal] = PrrGraph::kSuperSeedLocal;
  final_id_[PrrGraph::kRootLocal] = PrrGraph::kRootLocal;
  uint32_t final_n = 2;
  for (uint32_t u = 2; u < compact_n; ++u) {
    if (fwd_[u] && bwd_[u]) final_id_[u] = final_n++;
  }

  g_global_ids_.assign(final_n, kInvalidNode);
  g_global_ids_[PrrGraph::kRootLocal] = locals_[root_local];
  for (uint32_t v = 0; v < num_locals; ++v) {
    const uint32_t nv = new_id_[v];
    if (nv == kInf || nv < 2) continue;
    const uint32_t fv = final_id_[nv];
    if (fv != kInf) g_global_ids_[fv] = locals_[v];
  }

  // Compact ids survive in ascending order, so one pass over them emits the
  // final out-CSR directly — no per-node adjacency vectors.
  g_out_offsets_.assign(final_n + 1, 0);
  g_out_edges_.clear();
  for (uint32_t u = 0; u < compact_n; ++u) {
    const uint32_t fu = final_id_[u];
    if (fu == kInf) continue;
    for (uint32_t s = cadj_offsets_[u]; s < cadj_offsets_[u + 1]; ++s) {
      const uint32_t packed = cadj_edges_[s];
      const uint32_t ft = final_id_[PrrGraph::EdgeNode(packed)];
      if (ft == kInf) continue;
      g_out_edges_.push_back(
          PrrGraph::PackEdge(ft, PrrGraph::EdgeBoost(packed)));
    }
    g_out_offsets_[fu + 1] = static_cast<uint32_t>(g_out_edges_.size());
  }
  // In-CSR from the out-CSR.
  g_in_offsets_.assign(final_n + 1, 0);
  for (uint32_t packed : g_out_edges_) {
    ++g_in_offsets_[PrrGraph::EdgeNode(packed) + 1];
  }
  for (uint32_t u = 0; u < final_n; ++u) {
    g_in_offsets_[u + 1] += g_in_offsets_[u];
  }
  g_in_edges_.resize(g_out_edges_.size());
  cursor_.assign(g_in_offsets_.begin(), g_in_offsets_.end() - 1);
  for (uint32_t u = 0; u < final_n; ++u) {
    for (uint32_t s = g_out_offsets_[u]; s < g_out_offsets_[u + 1]; ++s) {
      const uint32_t packed = g_out_edges_[s];
      g_in_edges_[cursor_[PrrGraph::EdgeNode(packed)]++] =
          PrrGraph::PackEdge(u, PrrGraph::EdgeBoost(packed));
    }
  }

  // ---- Critical nodes: super-seed boost fanout into live-to-root nodes ----
  g_critical_.clear();
  for (uint32_t s = g_out_offsets_[PrrGraph::kSuperSeedLocal];
       s < g_out_offsets_[PrrGraph::kSuperSeedLocal + 1]; ++s) {
    const uint32_t packed = g_out_edges_[s];
    const uint32_t t = PrrGraph::EdgeNode(packed);
    // Map back: find the compact node; dpr was indexed by phase-I locals.
    // Instead of reverse maps, recompute: t is live-to-root iff it has a
    // live out-edge chain to root. We exploit the shortcut invariant: after
    // compression a node has dpr==0 iff its out-edges contain a live edge
    // to the root, or it IS the root.
    if (t == PrrGraph::kRootLocal) {
      g_critical_.push_back(t);
      continue;
    }
    bool live_to_root = false;
    for (uint32_t s2 = g_out_offsets_[t]; s2 < g_out_offsets_[t + 1]; ++s2) {
      const uint32_t p2 = g_out_edges_[s2];
      if (!PrrGraph::EdgeBoost(p2) &&
          PrrGraph::EdgeNode(p2) == PrrGraph::kRootLocal) {
        live_to_root = true;
        break;
      }
    }
    if (live_to_root) g_critical_.push_back(t);
  }

  result->critical_globals.clear();
  result->critical_globals.reserve(g_critical_.size());
  for (uint32_t c : g_critical_) {
    result->critical_globals.push_back(g_global_ids_[c]);
  }

  if (sink != nullptr) {
    result->store_id = sink->Append(g_global_ids_, g_out_offsets_,
                                    g_out_edges_, g_in_offsets_, g_in_edges_,
                                    g_critical_);
    return;
  }
  PrrGraph& g = result->graph;
  g.global_ids.assign(g_global_ids_.begin(), g_global_ids_.end());
  g.out_offsets.assign(g_out_offsets_.begin(), g_out_offsets_.end());
  g.out_edges.assign(g_out_edges_.begin(), g_out_edges_.end());
  g.in_offsets.assign(g_in_offsets_.begin(), g_in_offsets_.end());
  g.in_edges.assign(g_in_edges_.begin(), g_in_edges_.end());
  g.critical_locals.assign(g_critical_.begin(), g_critical_.end());
}

void PrrGenerator::ExtractCriticalLbOnly(uint32_t root_local,
                                         PrrGenResult* result) {
  const size_t num_locals = locals_.size();
  const size_t num_edges = edges_.size();

  BuildLocalOutCsr();

  // X: live-reachable from seeds (forward BFS over live edges only).
  ds_.assign(num_locals, kInf);
  stack_.clear();
  for (uint32_t v = 0; v < num_locals; ++v) {
    if (is_seed_[locals_[v]]) {
      ds_[v] = 0;
      stack_.push_back(v);
    }
  }
  while (!stack_.empty()) {
    uint32_t u = stack_.back();
    stack_.pop_back();
    for (uint32_t s = csr_offsets_[u]; s < csr_offsets_[u + 1]; ++s) {
      const uint32_t packed = csr_edges_[s];
      const uint32_t to = packed >> 1;
      if ((packed & 1u) || ds_[to] == 0) continue;
      ds_[to] = 0;
      stack_.push_back(to);
    }
  }

  // live-to-root: backward BFS over live edges (never enters X: a live
  // X→root chain would have made the sample "activated" in phase I).
  dpr_.assign(num_locals, kInf);
  dpr_[root_local] = 0;
  stack_.assign(1, root_local);
  while (!stack_.empty()) {
    uint32_t u = stack_.back();
    stack_.pop_back();
    for (uint32_t s = in_run_start_[u]; s < in_run_end_[u]; ++s) {
      const uint64_t e = edges_[s];
      const uint32_t from = LocalEdgeFrom(e);
      if ((e & 1u) || dpr_[from] == 0 || ds_[from] == 0) continue;
      dpr_[from] = 0;
      stack_.push_back(from);
    }
  }

  // Critical: v ∉ X, live path v→root, and some boost edge (u,v) with u ∈ X.
  flag_.assign(num_locals, 0);
  result->critical_globals.clear();
  for (size_t i = 0; i < num_edges; ++i) {
    const uint64_t e = edges_[i];
    if (!LocalEdgeBoost(e)) continue;
    const uint32_t from = LocalEdgeFrom(e);
    const uint32_t to = LocalEdgeTo(e);
    if (ds_[from] != 0) continue;
    if (ds_[to] == 0) continue;
    if (dpr_[to] != 0) continue;
    if (flag_[to]) continue;
    flag_[to] = 1;
    result->critical_globals.push_back(locals_[to]);
  }
}

void PrrEvaluator::Reserve(uint32_t max_nodes) {
  if (fwd0_.size() < max_nodes) {
    fwd0_.resize(max_nodes);
    bwd0_.resize(max_nodes);
  }
  queue_.reserve(max_nodes);
}

void PrrEvaluator::PrepareMarks(uint32_t n) {
  if (fwd0_.size() < n) {
    fwd0_.resize(n);
    bwd0_.resize(n);
  }
}

bool PrrEvaluator::IsActivated(const PrrGraphView& g,
                               const uint8_t* boosted_global) {
  const uint32_t n = g.num_nodes();
  PrepareMarks(n);
  std::fill_n(fwd0_.begin(), n, 0);
  queue_.clear();
  fwd0_[PrrGraph::kSuperSeedLocal] = 1;
  queue_.push_back(PrrGraph::kSuperSeedLocal);
  while (!queue_.empty()) {
    uint32_t u = queue_.back();
    queue_.pop_back();
    for (uint32_t s = g.out_offsets[u]; s < g.out_offsets[u + 1]; ++s) {
      const uint32_t packed = g.out_edges[s];
      const uint32_t t = PrrGraph::EdgeNode(packed);
      if (fwd0_[t]) continue;
      if (PrrGraph::EdgeBoost(packed) && !boosted_global[g.global_ids[t]]) {
        continue;
      }
      fwd0_[t] = 1;
      if (t == PrrGraph::kRootLocal) return true;
      queue_.push_back(t);
    }
  }
  return false;
}

void PrrEvaluator::ComputeReach(const PrrGraphView& g,
                                const uint8_t* boosted_global) {
  const uint32_t n = g.num_nodes();
  PrepareMarks(n);
  // Forward 0-reach from super-seed.
  std::fill_n(fwd0_.begin(), n, 0);
  queue_.clear();
  fwd0_[PrrGraph::kSuperSeedLocal] = 1;
  queue_.push_back(PrrGraph::kSuperSeedLocal);
  while (!queue_.empty()) {
    uint32_t u = queue_.back();
    queue_.pop_back();
    for (uint32_t s = g.out_offsets[u]; s < g.out_offsets[u + 1]; ++s) {
      const uint32_t packed = g.out_edges[s];
      const uint32_t t = PrrGraph::EdgeNode(packed);
      if (fwd0_[t]) continue;
      if (PrrGraph::EdgeBoost(packed) && !boosted_global[g.global_ids[t]]) {
        continue;
      }
      fwd0_[t] = 1;
      queue_.push_back(t);
    }
  }
  // Backward 0-reach to root. Edge (u,v) has weight 0 iff live or v ∈ B.
  std::fill_n(bwd0_.begin(), n, 0);
  queue_.clear();
  bwd0_[PrrGraph::kRootLocal] = 1;
  queue_.push_back(PrrGraph::kRootLocal);
  while (!queue_.empty()) {
    uint32_t v = queue_.back();
    queue_.pop_back();
    const bool v_boosted = v != PrrGraph::kSuperSeedLocal &&
                           boosted_global[g.global_ids[v]] != 0;
    for (uint32_t s = g.in_offsets[v]; s < g.in_offsets[v + 1]; ++s) {
      const uint32_t packed = g.in_edges[s];
      const uint32_t u = PrrGraph::EdgeNode(packed);
      if (bwd0_[u]) continue;
      if (PrrGraph::EdgeBoost(packed) && !v_boosted) continue;
      bwd0_[u] = 1;
      queue_.push_back(u);
    }
  }
}

bool PrrEvaluator::CriticalNodes(const PrrGraphView& g,
                                 const uint8_t* boosted_global,
                                 std::vector<uint32_t>* out) {
  out->clear();
  ComputeReach(g, boosted_global);
  if (fwd0_[PrrGraph::kRootLocal]) return true;  // f_R(B) = 1
  const uint32_t n = g.num_nodes();
  // Candidates: the root (local 1) and intermediates (2..); never the
  // super-seed.
  for (uint32_t v = PrrGraph::kRootLocal; v < n; ++v) {
    if (boosted_global[g.global_ids[v]]) continue;  // already boosted
    if (!bwd0_[v]) continue;
    // Boosting v opens its boost in-edges; need one whose tail is 0-reached.
    for (uint32_t s = g.in_offsets[v]; s < g.in_offsets[v + 1]; ++s) {
      const uint32_t packed = g.in_edges[s];
      if (!PrrGraph::EdgeBoost(packed)) continue;
      if (fwd0_[PrrGraph::EdgeNode(packed)]) {
        out->push_back(v);
        break;
      }
    }
  }
  return false;
}

void PrrIncrementalEvaluator::InitEmptyReach(const PrrGraphView& g,
                                             uint64_t* fwd, uint64_t* bwd) {
  // Forward: live-reachable from the super-seed. Compressed PRR-graphs give
  // the super-seed only boost out-edges, so this loop normally never grows.
  SetBit(fwd, PrrGraph::kSuperSeedLocal);
  stack_.assign(1, PrrGraph::kSuperSeedLocal);
  while (!stack_.empty()) {
    const uint32_t u = stack_.back();
    stack_.pop_back();
    for (uint32_t s = g.out_offsets[u]; s < g.out_offsets[u + 1]; ++s) {
      const uint32_t packed = g.out_edges[s];
      if (PrrGraph::EdgeBoost(packed)) continue;
      const uint32_t t = PrrGraph::EdgeNode(packed);
      if (TestBit(fwd, t)) continue;
      SetBit(fwd, t);
      stack_.push_back(t);
    }
  }
  // Backward: live path to the root. Compression collapses these to direct
  // shortcut edges, so this is normally one scan of the root's in-edges.
  SetBit(bwd, PrrGraph::kRootLocal);
  stack_.assign(1, PrrGraph::kRootLocal);
  while (!stack_.empty()) {
    const uint32_t v = stack_.back();
    stack_.pop_back();
    for (uint32_t s = g.in_offsets[v]; s < g.in_offsets[v + 1]; ++s) {
      const uint32_t packed = g.in_edges[s];
      if (PrrGraph::EdgeBoost(packed)) continue;
      const uint32_t u = PrrGraph::EdgeNode(packed);
      if (TestBit(bwd, u)) continue;
      SetBit(bwd, u);
      stack_.push_back(u);
    }
  }
}

bool PrrIncrementalEvaluator::RelaxCommit(const PrrGraphView& g,
                                          const uint8_t* boosted_global,
                                          uint32_t pick, uint64_t* fwd,
                                          uint64_t* bwd) {
  newly_fwd_.clear();
  newly_bwd_.clear();

  // The only edges whose weight changed are the ones pointing into `pick`,
  // so all new forward reach flows through it: pick becomes fwd-reached iff
  // one of its (now 0-weight) boost in-edges has a fwd-reached tail. Live
  // in-edges cannot open anything — a fwd-reached live tail would have
  // reached pick already.
  if (!TestBit(fwd, pick)) {
    bool opened = false;
    for (uint32_t s = g.in_offsets[pick]; s < g.in_offsets[pick + 1]; ++s) {
      const uint32_t packed = g.in_edges[s];
      if (PrrGraph::EdgeBoost(packed) &&
          TestBit(fwd, PrrGraph::EdgeNode(packed))) {
        opened = true;
        break;
      }
    }
    if (opened) {
      SetBit(fwd, pick);
      if (pick == PrrGraph::kRootLocal) return true;
      newly_fwd_.push_back(pick);
      stack_.assign(1, pick);
      while (!stack_.empty()) {
        const uint32_t u = stack_.back();
        stack_.pop_back();
        for (uint32_t s = g.out_offsets[u]; s < g.out_offsets[u + 1]; ++s) {
          const uint32_t packed = g.out_edges[s];
          const uint32_t t = PrrGraph::EdgeNode(packed);
          if (TestBit(fwd, t)) continue;
          if (PrrGraph::EdgeBoost(packed) &&
              !boosted_global[g.global_ids[t]]) {
            continue;
          }
          SetBit(fwd, t);
          if (t == PrrGraph::kRootLocal) return true;  // activated; state dead
          newly_fwd_.push_back(t);
          stack_.push_back(t);
        }
      }
    }
  }

  // Backward: pick's boost in-edges became 0-weight, so their tails reach
  // the root iff pick does; cascade from the newly reached tails.
  if (TestBit(bwd, pick)) {
    stack_.clear();
    for (uint32_t s = g.in_offsets[pick]; s < g.in_offsets[pick + 1]; ++s) {
      const uint32_t packed = g.in_edges[s];
      if (!PrrGraph::EdgeBoost(packed)) continue;
      const uint32_t u = PrrGraph::EdgeNode(packed);
      if (TestBit(bwd, u)) continue;
      SetBit(bwd, u);
      newly_bwd_.push_back(u);
      stack_.push_back(u);
    }
    while (!stack_.empty()) {
      const uint32_t v = stack_.back();
      stack_.pop_back();
      const bool v_boosted = v != PrrGraph::kSuperSeedLocal &&
                             boosted_global[g.global_ids[v]] != 0;
      for (uint32_t s = g.in_offsets[v]; s < g.in_offsets[v + 1]; ++s) {
        const uint32_t packed = g.in_edges[s];
        const uint32_t u = PrrGraph::EdgeNode(packed);
        if (TestBit(bwd, u)) continue;
        if (PrrGraph::EdgeBoost(packed) && !v_boosted) continue;
        SetBit(bwd, u);
        newly_bwd_.push_back(u);
        stack_.push_back(u);
      }
    }
  }
  return false;
}

void PrrIncrementalEvaluator::AppendNewCriticalFrontier(
    const PrrGraphView& g, const uint8_t* boosted_global, const uint64_t* fwd,
    const uint64_t* bwd, uint64_t* crit, std::vector<uint32_t>* out) {
  // Criticality (bwd-reached + boost in-edge from a fwd-reached tail) only
  // involves monotone quantities, so new members must touch the frontier:
  // either their enabling tail just became fwd-reached, or they themselves
  // just became bwd-reached.
  for (const uint32_t u : newly_fwd_) {
    for (uint32_t s = g.out_offsets[u]; s < g.out_offsets[u + 1]; ++s) {
      const uint32_t packed = g.out_edges[s];
      if (!PrrGraph::EdgeBoost(packed)) continue;
      const uint32_t v = PrrGraph::EdgeNode(packed);
      if (!TestBit(bwd, v) || TestBit(crit, v)) continue;
      if (boosted_global[g.global_ids[v]]) continue;
      SetBit(crit, v);
      out->push_back(v);
    }
  }
  for (const uint32_t v : newly_bwd_) {
    if (v == PrrGraph::kSuperSeedLocal) continue;  // never a candidate
    if (TestBit(crit, v) || boosted_global[g.global_ids[v]]) continue;
    for (uint32_t s = g.in_offsets[v]; s < g.in_offsets[v + 1]; ++s) {
      const uint32_t packed = g.in_edges[s];
      if (!PrrGraph::EdgeBoost(packed)) continue;
      if (TestBit(fwd, PrrGraph::EdgeNode(packed))) {
        SetBit(crit, v);
        out->push_back(v);
        break;
      }
    }
  }
}

bool PrrIncrementalEvaluator::RebuildReach(const PrrGraphView& g,
                                           const uint8_t* boosted_global,
                                           uint64_t* fwd, uint64_t* bwd) {
  const uint32_t n = g.num_nodes();
  const uint32_t words = (n + 63) / 64;
  std::fill_n(fwd, words, 0);
  std::fill_n(bwd, words, 0);
  SetBit(fwd, PrrGraph::kSuperSeedLocal);
  stack_.assign(1, PrrGraph::kSuperSeedLocal);
  while (!stack_.empty()) {
    const uint32_t u = stack_.back();
    stack_.pop_back();
    for (uint32_t s = g.out_offsets[u]; s < g.out_offsets[u + 1]; ++s) {
      const uint32_t packed = g.out_edges[s];
      const uint32_t t = PrrGraph::EdgeNode(packed);
      if (TestBit(fwd, t)) continue;
      if (PrrGraph::EdgeBoost(packed) && !boosted_global[g.global_ids[t]]) {
        continue;
      }
      SetBit(fwd, t);
      stack_.push_back(t);
    }
  }
  SetBit(bwd, PrrGraph::kRootLocal);
  stack_.assign(1, PrrGraph::kRootLocal);
  while (!stack_.empty()) {
    const uint32_t v = stack_.back();
    stack_.pop_back();
    const bool v_boosted = v != PrrGraph::kSuperSeedLocal &&
                           boosted_global[g.global_ids[v]] != 0;
    for (uint32_t s = g.in_offsets[v]; s < g.in_offsets[v + 1]; ++s) {
      const uint32_t packed = g.in_edges[s];
      const uint32_t u = PrrGraph::EdgeNode(packed);
      if (TestBit(bwd, u)) continue;
      if (PrrGraph::EdgeBoost(packed) && !v_boosted) continue;
      SetBit(bwd, u);
      stack_.push_back(u);
    }
  }
  return TestBit(fwd, PrrGraph::kRootLocal);
}

void PrrIncrementalEvaluator::AppendNewCriticalFull(
    const PrrGraphView& g, const uint8_t* boosted_global, const uint64_t* fwd,
    const uint64_t* bwd, uint64_t* crit, std::vector<uint32_t>* out) {
  const uint32_t n = g.num_nodes();
  for (uint32_t v = PrrGraph::kRootLocal; v < n; ++v) {
    if (!TestBit(bwd, v) || TestBit(crit, v)) continue;
    if (boosted_global[g.global_ids[v]]) continue;
    for (uint32_t s = g.in_offsets[v]; s < g.in_offsets[v + 1]; ++s) {
      const uint32_t packed = g.in_edges[s];
      if (!PrrGraph::EdgeBoost(packed)) continue;
      if (TestBit(fwd, PrrGraph::EdgeNode(packed))) {
        SetBit(crit, v);
        out->push_back(v);
        break;
      }
    }
  }
}

size_t PrrBatchEvaluator::CountActivated(
    const PrrStore& store, const uint8_t* boosted_global, int num_threads,
    std::vector<uint64_t>* activation_words) {
  const size_t num_graphs = store.num_graphs();
  const size_t num_words = (num_graphs + 63) / 64;
  words_.assign(num_words, 0);
  const int threads = std::max(1, num_threads);
  if (evaluators_.size() < static_cast<size_t>(threads)) {
    evaluators_.resize(threads);
  }
  for (PrrEvaluator& e : evaluators_) e.Reserve(store.max_num_nodes());
  ParallelFor(
      num_words, threads,
      [&](size_t w, int t) {
        const size_t begin = w * 64;
        const size_t end = std::min(num_graphs, begin + 64);
        uint64_t word = 0;
        for (size_t g = begin; g < end; ++g) {
          word |= static_cast<uint64_t>(evaluators_[t].IsActivated(
                      store.View(g), boosted_global))
                  << (g - begin);
        }
        words_[w] = word;
      },
      /*chunk=*/2);
  size_t count = 0;
  for (const uint64_t w : words_) count += std::popcount(w);
  if (activation_words != nullptr) *activation_words = words_;
  return count;
}

}  // namespace kboost
