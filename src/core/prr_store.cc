#include "src/core/prr_store.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "src/util/logging.h"

namespace kboost {

namespace {

template <typename T>
void AppendSpan(std::vector<T>& pool, std::span<const T> data) {
  pool.insert(pool.end(), data.begin(), data.end());
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  const uint64_t count = v.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

/// Reads a WriteVec-encoded vector, rejecting counts other than `expect`
/// (every vector's size is implied by the graph-size table, so a mismatch
/// means corruption — and guards against pathological allocations).
template <typename T>
bool ReadVec(std::istream& in, std::vector<T>* v, uint64_t expect) {
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != expect) return false;
  v->resize(count);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

size_t PrrStore::Append(std::span<const NodeId> global_ids,
                        std::span<const uint32_t> out_offsets,
                        std::span<const uint32_t> out_edges,
                        std::span<const uint32_t> in_offsets,
                        std::span<const uint32_t> in_edges,
                        std::span<const uint32_t> critical_locals) {
  KB_DCHECK(out_offsets.size() == global_ids.size() + 1);
  KB_DCHECK(in_offsets.size() == global_ids.size() + 1);
  KB_DCHECK(out_edges.size() == in_edges.size());
  KB_DCHECK(out_offsets.empty() || out_offsets.back() == out_edges.size());

  Meta meta;
  meta.node_begin = global_ids_.size();
  meta.edge_begin = out_edges_.size();
  meta.critical_begin = critical_.size();
  meta.num_nodes = static_cast<uint32_t>(global_ids.size());
  meta.num_critical = static_cast<uint32_t>(critical_locals.size());

  AppendSpan(global_ids_, global_ids);
  AppendSpan(out_offsets_, out_offsets);
  AppendSpan(in_offsets_, in_offsets);
  AppendSpan(out_edges_, out_edges);
  AppendSpan(in_edges_, in_edges);
  AppendSpan(critical_, critical_locals);

  meta_.push_back(meta);
  max_num_nodes_ = std::max(max_num_nodes_, meta.num_nodes);
  ++generation_;
  return meta_.size() - 1;
}

size_t PrrStore::Add(const PrrGraph& graph) {
  return Append(graph.global_ids, graph.out_offsets, graph.out_edges,
                graph.in_offsets, graph.in_edges, graph.critical_locals);
}

size_t PrrStore::AppendFrom(const PrrStore& other, size_t id) {
  KB_DCHECK(id < other.meta_.size());
  const Meta& m = other.meta_[id];
  const uint64_t off = m.node_begin + id;
  const uint64_t edge_count = other.out_offsets_[off + m.num_nodes];
  return Append(
      std::span<const NodeId>(other.global_ids_.data() + m.node_begin,
                              m.num_nodes),
      std::span<const uint32_t>(other.out_offsets_.data() + off,
                                m.num_nodes + 1),
      std::span<const uint32_t>(other.out_edges_.data() + m.edge_begin,
                                edge_count),
      std::span<const uint32_t>(other.in_offsets_.data() + off,
                                m.num_nodes + 1),
      std::span<const uint32_t>(other.in_edges_.data() + m.edge_begin,
                                edge_count),
      std::span<const uint32_t>(other.critical_.data() + m.critical_begin,
                                m.num_critical));
}

PrrGraphView PrrStore::View(size_t id) const {
  KB_DCHECK(id < meta_.size());
  const Meta& m = meta_[id];
  PrrGraphView view;
  view.global_ids = global_ids_.data() + m.node_begin;
  view.out_offsets = out_offsets_.data() + m.node_begin + id;
  view.in_offsets = in_offsets_.data() + m.node_begin + id;
  view.out_edges = out_edges_.data() + m.edge_begin;
  view.in_edges = in_edges_.data() + m.edge_begin;
  view.critical_locals = critical_.data() + m.critical_begin;
  view.num_nodes_count = m.num_nodes;
  view.num_critical_count = m.num_critical;
  return view;
}

PrrGraph PrrStore::ToPrrGraph(size_t id) const {
  const PrrGraphView v = View(id);
  PrrGraph g;
  g.global_ids.assign(v.global_ids, v.global_ids + v.num_nodes());
  g.out_offsets.assign(v.out_offsets, v.out_offsets + v.num_nodes() + 1);
  g.in_offsets.assign(v.in_offsets, v.in_offsets + v.num_nodes() + 1);
  g.out_edges.assign(v.out_edges, v.out_edges + v.num_edges());
  g.in_edges.assign(v.in_edges, v.in_edges + v.num_edges());
  g.critical_locals.assign(v.critical_locals,
                           v.critical_locals + v.num_critical_count);
  return g;
}

size_t PrrStore::MemoryBytes() const {
  return meta_.size() * sizeof(Meta) + global_ids_.size() * sizeof(NodeId) +
         (out_offsets_.size() + in_offsets_.size() + out_edges_.size() +
          in_edges_.size() + critical_.size()) *
             sizeof(uint32_t);
}

size_t PrrStore::AllocatedBytes() const {
  return meta_.capacity() * sizeof(Meta) +
         global_ids_.capacity() * sizeof(NodeId) +
         (out_offsets_.capacity() + in_offsets_.capacity() +
          out_edges_.capacity() + in_edges_.capacity() +
          critical_.capacity()) *
             sizeof(uint32_t);
}

void PrrStore::Serialize(std::ostream& out) const {
  const uint64_t num_graphs = meta_.size();
  out.write(reinterpret_cast<const char*>(&num_graphs), sizeof(num_graphs));
  std::vector<uint32_t> num_nodes(num_graphs), num_critical(num_graphs);
  for (size_t g = 0; g < num_graphs; ++g) {
    num_nodes[g] = meta_[g].num_nodes;
    num_critical[g] = meta_[g].num_critical;
  }
  WriteVec(out, num_nodes);
  WriteVec(out, num_critical);
  WriteVec(out, global_ids_);
  WriteVec(out, out_offsets_);
  WriteVec(out, in_offsets_);
  WriteVec(out, out_edges_);
  WriteVec(out, in_edges_);
  WriteVec(out, critical_);
}

Status PrrStore::Deserialize(std::istream& in) {
  KB_CHECK(meta_.empty()) << "Deserialize into a non-empty store";
  uint64_t num_graphs = 0;
  in.read(reinterpret_cast<char*>(&num_graphs), sizeof(num_graphs));
  if (!in) return Status::IoError("truncated arena block: missing graph count");

  // Every declared count must fit in the bytes actually present, so a
  // corrupt count can never drive a pathological allocation: reject any
  // vector whose payload exceeds what remains of the stream.
  const std::streampos pos = in.tellg();
  in.seekg(0, std::ios::end);
  const uint64_t remaining = static_cast<uint64_t>(in.tellg() - pos);
  in.seekg(pos);
  const auto fits = [remaining](uint64_t count, size_t elem_size) {
    return count <= remaining / elem_size;
  };
  const Status oversized = Status::InvalidArgument(
      "arena block declares more data than the stream holds");
  const Status truncated = Status::IoError("truncated arena block");
  if (!fits(num_graphs, 2 * sizeof(uint32_t))) return oversized;

  std::vector<uint32_t> num_nodes, num_critical;
  if (!ReadVec(in, &num_nodes, num_graphs)) return truncated;
  if (!ReadVec(in, &num_critical, num_graphs)) return truncated;
  uint64_t total_nodes = 0, total_critical = 0;
  for (size_t g = 0; g < num_graphs; ++g) {
    total_nodes += num_nodes[g];
    total_critical += num_critical[g];
  }
  const uint64_t offsets_len = total_nodes + num_graphs;
  if (!fits(total_nodes, sizeof(NodeId)) ||
      !fits(offsets_len, sizeof(uint32_t)) ||
      !fits(total_critical, sizeof(uint32_t))) {
    return oversized;
  }
  if (!ReadVec(in, &global_ids_, total_nodes)) return truncated;
  if (!ReadVec(in, &out_offsets_, offsets_len)) return truncated;
  if (!ReadVec(in, &in_offsets_, offsets_len)) return truncated;

  // Rebuild the meta table by prefix sums over the per-graph sizes, checking
  // the offset pools are graph-relative, monotone and mutually consistent.
  meta_.reserve(num_graphs);
  uint64_t node_begin = 0, edge_begin = 0, critical_begin = 0;
  for (size_t g = 0; g < num_graphs; ++g) {
    Meta m;
    m.node_begin = node_begin;
    m.edge_begin = edge_begin;
    m.critical_begin = critical_begin;
    m.num_nodes = num_nodes[g];
    m.num_critical = num_critical[g];
    const auto malformed = [g] {
      return Status::InvalidArgument("malformed offsets in arena graph " +
                                     std::to_string(g));
    };
    const uint64_t off = node_begin + g;
    if (out_offsets_[off] != 0 || in_offsets_[off] != 0) return malformed();
    for (uint32_t v = 0; v < m.num_nodes; ++v) {
      if (out_offsets_[off + v] > out_offsets_[off + v + 1] ||
          in_offsets_[off + v] > in_offsets_[off + v + 1]) {
        return malformed();
      }
    }
    if (out_offsets_[off + m.num_nodes] != in_offsets_[off + m.num_nodes]) {
      return malformed();
    }
    meta_.push_back(m);
    node_begin += m.num_nodes;
    edge_begin += out_offsets_[off + m.num_nodes];
    critical_begin += m.num_critical;
  }
  if (!fits(edge_begin, sizeof(uint32_t))) return oversized;
  if (!ReadVec(in, &out_edges_, edge_begin)) return truncated;
  if (!ReadVec(in, &in_edges_, edge_begin)) return truncated;
  if (!ReadVec(in, &critical_, critical_begin)) return truncated;

  // Every packed edge endpoint and critical id must be a valid local node.
  for (size_t g = 0; g < num_graphs; ++g) {
    const Meta& m = meta_[g];
    const uint64_t edges = out_offsets_[m.node_begin + g + m.num_nodes];
    for (uint64_t e = 0; e < edges; ++e) {
      if (PrrGraph::EdgeNode(out_edges_[m.edge_begin + e]) >= m.num_nodes ||
          PrrGraph::EdgeNode(in_edges_[m.edge_begin + e]) >= m.num_nodes) {
        return Status::OutOfRange("edge endpoint out of range in arena graph " +
                                  std::to_string(g));
      }
    }
    for (uint32_t c = 0; c < m.num_critical; ++c) {
      if (critical_[m.critical_begin + c] >= m.num_nodes) {
        return Status::OutOfRange("critical id out of range in arena graph " +
                                  std::to_string(g));
      }
    }
  }
  for (const Meta& m : meta_) {
    max_num_nodes_ = std::max(max_num_nodes_, m.num_nodes);
  }
  ++generation_;
  return Status::Ok();
}

void PrrStore::Clear() {
  meta_.clear();
  global_ids_.clear();
  out_offsets_.clear();
  in_offsets_.clear();
  out_edges_.clear();
  in_edges_.clear();
  critical_.clear();
  max_num_nodes_ = 0;
  ++generation_;
}

void PrrEvalState::Attach(const PrrStore& store) {
  if (store_ != &store || generation_ != store.generation()) {
    store_ = &store;
    generation_ = store.generation();
    const size_t num_graphs = store.num_graphs();
    slots_.resize(num_graphs);
    uint64_t begin = 0;
    for (size_t g = 0; g < num_graphs; ++g) {
      const uint32_t n = store.num_nodes(g);
      const uint32_t wpb = n <= kMaxStateNodes ? (n + 63) / 64 : 0;
      slots_[g] = Slot{begin, wpb};
      begin += 3ull * wpb;
    }
    words_.resize(begin);
    init_.resize(num_graphs);
  }
  std::fill(words_.begin(), words_.end(), 0);
  std::fill(init_.begin(), init_.end(), 0);
}

}  // namespace kboost
