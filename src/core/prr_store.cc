#include "src/core/prr_store.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "src/util/logging.h"

namespace kboost {

namespace {

template <typename T>
void AppendSpan(std::vector<T>& pool, std::span<const T> data) {
  pool.insert(pool.end(), data.begin(), data.end());
}

template <typename T>
void WriteVec(std::ostream& out, std::span<const T> v) {
  const uint64_t count = v.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

/// Reads a WriteVec-encoded vector, rejecting counts other than `expect`
/// (every vector's size is implied by the graph-size table, so a mismatch
/// means corruption — and guards against pathological allocations).
template <typename T>
bool ReadVec(std::istream& in, std::vector<T>* v, uint64_t expect) {
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != expect) return false;
  v->resize(count);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

size_t PrrStore::Append(std::span<const NodeId> global_ids,
                        std::span<const uint32_t> out_offsets,
                        std::span<const uint32_t> out_edges,
                        std::span<const uint32_t> in_offsets,
                        std::span<const uint32_t> in_edges,
                        std::span<const uint32_t> critical_locals) {
  KB_CHECK(!external_) << "Append into an external (mmap-backed) store";
  KB_DCHECK(out_offsets.size() == global_ids.size() + 1);
  KB_DCHECK(in_offsets.size() == global_ids.size() + 1);
  KB_DCHECK(out_edges.size() == in_edges.size());
  KB_DCHECK(out_offsets.empty() || out_offsets.back() == out_edges.size());

  Meta meta;
  meta.node_begin = global_ids_.size();
  meta.edge_begin = out_edges_.size();
  meta.critical_begin = critical_.size();
  meta.num_nodes = static_cast<uint32_t>(global_ids.size());
  meta.num_critical = static_cast<uint32_t>(critical_locals.size());

  AppendSpan(global_ids_, global_ids);
  AppendSpan(out_offsets_, out_offsets);
  AppendSpan(in_offsets_, in_offsets);
  AppendSpan(out_edges_, out_edges);
  AppendSpan(in_edges_, in_edges);
  AppendSpan(critical_, critical_locals);

  meta_.push_back(meta);
  max_num_nodes_ = std::max(max_num_nodes_, meta.num_nodes);
  ++generation_;
  return meta_.size() - 1;
}

size_t PrrStore::Add(const PrrGraph& graph) {
  return Append(graph.global_ids, graph.out_offsets, graph.out_edges,
                graph.in_offsets, graph.in_edges, graph.critical_locals);
}

size_t PrrStore::AppendFrom(const PrrStore& other, size_t id) {
  KB_DCHECK(id < other.meta_.size());
  const Meta& m = other.meta_[id];
  const uint64_t off = m.node_begin + id;
  const uint64_t edge_count = other.raw_out_offsets()[off + m.num_nodes];
  return Append(other.raw_global_ids().subspan(m.node_begin, m.num_nodes),
                other.raw_out_offsets().subspan(off, m.num_nodes + 1),
                other.raw_out_edges().subspan(m.edge_begin, edge_count),
                other.raw_in_offsets().subspan(off, m.num_nodes + 1),
                other.raw_in_edges().subspan(m.edge_begin, edge_count),
                other.raw_critical().subspan(m.critical_begin, m.num_critical));
}

PrrGraphView PrrStore::View(size_t id) const {
  KB_DCHECK(id < meta_.size());
  const Meta& m = meta_[id];
  PrrGraphView view;
  view.global_ids = raw_global_ids().data() + m.node_begin;
  view.out_offsets = raw_out_offsets().data() + m.node_begin + id;
  view.in_offsets = raw_in_offsets().data() + m.node_begin + id;
  view.out_edges = raw_out_edges().data() + m.edge_begin;
  view.in_edges = raw_in_edges().data() + m.edge_begin;
  view.critical_locals = raw_critical().data() + m.critical_begin;
  view.num_nodes_count = m.num_nodes;
  view.num_critical_count = m.num_critical;
  return view;
}

PrrGraph PrrStore::ToPrrGraph(size_t id) const {
  const PrrGraphView v = View(id);
  PrrGraph g;
  g.global_ids.assign(v.global_ids, v.global_ids + v.num_nodes());
  g.out_offsets.assign(v.out_offsets, v.out_offsets + v.num_nodes() + 1);
  g.in_offsets.assign(v.in_offsets, v.in_offsets + v.num_nodes() + 1);
  g.out_edges.assign(v.out_edges, v.out_edges + v.num_edges());
  g.in_edges.assign(v.in_edges, v.in_edges + v.num_edges());
  g.critical_locals.assign(v.critical_locals,
                           v.critical_locals + v.num_critical_count);
  return g;
}

size_t PrrStore::MemoryBytes() const {
  // For an external store this counts the mapped section bytes the arena
  // reads through — the pool's working set, whoever owns the pages.
  return meta_.size() * sizeof(Meta) +
         raw_global_ids().size() * sizeof(NodeId) +
         (raw_out_offsets().size() + raw_in_offsets().size() +
          raw_out_edges().size() + raw_in_edges().size() +
          raw_critical().size()) *
             sizeof(uint32_t);
}

size_t PrrStore::AllocatedBytes() const {
  return meta_.capacity() * sizeof(Meta) +
         global_ids_.capacity() * sizeof(NodeId) +
         (out_offsets_.capacity() + in_offsets_.capacity() +
          out_edges_.capacity() + in_edges_.capacity() +
          critical_.capacity()) *
             sizeof(uint32_t);
}

void PrrStore::Serialize(std::ostream& out) const {
  const uint64_t num_graphs = meta_.size();
  out.write(reinterpret_cast<const char*>(&num_graphs), sizeof(num_graphs));
  std::vector<uint32_t> num_nodes(num_graphs), num_critical(num_graphs);
  for (size_t g = 0; g < num_graphs; ++g) {
    num_nodes[g] = meta_[g].num_nodes;
    num_critical[g] = meta_[g].num_critical;
  }
  WriteVec(out, std::span<const uint32_t>(num_nodes));
  WriteVec(out, std::span<const uint32_t>(num_critical));
  WriteVec(out, raw_global_ids());
  WriteVec(out, raw_out_offsets());
  WriteVec(out, raw_in_offsets());
  WriteVec(out, raw_out_edges());
  WriteVec(out, raw_in_edges());
  WriteVec(out, raw_critical());
}

Status PrrStore::Deserialize(std::istream& in) {
  KB_CHECK(meta_.empty()) << "Deserialize into a non-empty store";
  uint64_t num_graphs = 0;
  in.read(reinterpret_cast<char*>(&num_graphs), sizeof(num_graphs));
  if (!in) return Status::IoError("truncated arena block: missing graph count");

  // Every declared count must fit in the bytes actually present, so a
  // corrupt count can never drive a pathological allocation: reject any
  // vector whose payload exceeds what remains of the stream.
  const std::streampos pos = in.tellg();
  in.seekg(0, std::ios::end);
  const uint64_t remaining = static_cast<uint64_t>(in.tellg() - pos);
  in.seekg(pos);
  const auto fits = [remaining](uint64_t count, size_t elem_size) {
    return count <= remaining / elem_size;
  };
  const Status oversized = Status::InvalidArgument(
      "arena block declares more data than the stream holds");
  const Status truncated = Status::IoError("truncated arena block");
  if (!fits(num_graphs, 2 * sizeof(uint32_t))) return oversized;

  std::vector<uint32_t> num_nodes, num_critical;
  if (!ReadVec(in, &num_nodes, num_graphs)) return truncated;
  if (!ReadVec(in, &num_critical, num_graphs)) return truncated;
  uint64_t total_nodes = 0, total_critical = 0;
  for (size_t g = 0; g < num_graphs; ++g) {
    total_nodes += num_nodes[g];
    total_critical += num_critical[g];
  }
  const uint64_t offsets_len = total_nodes + num_graphs;
  if (!fits(total_nodes, sizeof(NodeId)) ||
      !fits(offsets_len, sizeof(uint32_t)) ||
      !fits(total_critical, sizeof(uint32_t))) {
    return oversized;
  }
  if (!ReadVec(in, &global_ids_, total_nodes)) return truncated;
  if (!ReadVec(in, &out_offsets_, offsets_len)) return truncated;
  if (!ReadVec(in, &in_offsets_, offsets_len)) return truncated;

  uint64_t edge_total = 0, critical_total = 0;
  Status meta_status =
      BuildMetaFromSizes(num_nodes, num_critical, &edge_total, &critical_total);
  if (!meta_status.ok()) return meta_status;
  if (!fits(edge_total, sizeof(uint32_t))) return oversized;
  if (!ReadVec(in, &out_edges_, edge_total)) return truncated;
  if (!ReadVec(in, &in_edges_, edge_total)) return truncated;
  if (!ReadVec(in, &critical_, critical_total)) return truncated;

  return ValidateDeep();
}

Status PrrStore::BuildMetaFromSizes(std::span<const uint32_t> num_nodes,
                                    std::span<const uint32_t> num_critical,
                                    uint64_t* total_edges,
                                    uint64_t* total_critical) {
  const uint64_t num_graphs = num_nodes.size();
  if (num_critical.size() != num_graphs) {
    return Status::InvalidArgument("arena size tables disagree: " +
                                   std::to_string(num_graphs) + " vs " +
                                   std::to_string(num_critical.size()) +
                                   " graphs");
  }
  uint64_t total_nodes = 0;
  for (size_t g = 0; g < num_graphs; ++g) total_nodes += num_nodes[g];
  const std::span<const NodeId> ids = raw_global_ids();
  if (ids.size() != total_nodes ||
      raw_out_offsets().size() != total_nodes + num_graphs ||
      raw_in_offsets().size() != total_nodes + num_graphs) {
    return Status::InvalidArgument(
        "arena node/offset sections disagree with the size table");
  }
  const uint32_t* oo = raw_out_offsets().data();
  const uint32_t* io = raw_in_offsets().data();

  // Rebuild the meta table by prefix sums over the per-graph sizes, checking
  // the offset pools are graph-relative, monotone and mutually consistent.
  // This is the dominant cost of binding an arena over an mmap'd snapshot
  // (the whole file is otherwise untouched), so the per-element monotonicity
  // check is NOT done per graph. Pass 1 touches each graph's boundary
  // entries only (start offsets zero, out/in ends equal) while building the
  // prefix sums; pass 2 counts non-monotone adjacent pairs across the whole
  // flat pool in one vectorizable sweep. With every graph's start pinned to
  // 0 by pass 1, the only legitimate descents are the boundary pairs
  // (end_g > 0 followed by the next graph's 0), whose count pass 1 knows —
  // any in-graph descent pushes the total strictly above it, so equality is
  // exactly per-graph monotonicity.
  meta_.clear();
  meta_.reserve(num_graphs);  // push_back below: no zero-fill double write
  uint64_t node_begin = 0, edge_begin = 0, critical_begin = 0;
  uint32_t max_nodes = max_num_nodes_;
  uint64_t expected_descents = 0;
  bool bounds_ok = true;
  for (size_t g = 0; g < num_graphs; ++g) {
    const uint32_t n = num_nodes[g];
    const uint32_t criticals = num_critical[g];
    meta_.push_back(Meta{node_begin, edge_begin, critical_begin, n, criticals});
    const uint64_t off = node_begin + g;
    const uint32_t edges = oo[off + n];
    bounds_ok &= oo[off] == 0 && io[off] == 0 && edges == io[off + n];
    expected_descents += edges > 0;
    if (n > max_nodes) max_nodes = n;
    node_begin += n;
    edge_begin += edges;
    critical_begin += criticals;
  }
  // The last graph's end has no successor pair; it never descends.
  if (num_graphs > 0 && oo[node_begin + num_graphs - 1] > 0) {
    --expected_descents;
  }
  uint64_t oo_descents = 0, io_descents = 0;
  const uint64_t last = num_graphs > 0 ? total_nodes + num_graphs - 1 : 0;
  for (uint64_t j = 0; j < last; ++j) {
    oo_descents += oo[j] > oo[j + 1];
    io_descents += io[j] > io[j + 1];
  }
  if (!bounds_ok || oo_descents != expected_descents ||
      io_descents != expected_descents) {
    // Error path only: rescan per graph for a precise message.
    size_t bad = 0;
    for (size_t g = 0; g < num_graphs; ++g) {
      const Meta& m = meta_[g];
      const uint64_t off = m.node_begin + g;
      bool ok = oo[off] == 0 && io[off] == 0 &&
                oo[off + m.num_nodes] == io[off + m.num_nodes];
      for (uint32_t v = 0; v < m.num_nodes; ++v) {
        ok &= oo[off + v] <= oo[off + v + 1] && io[off + v] <= io[off + v + 1];
      }
      if (!ok) {
        bad = g;
        break;
      }
    }
    meta_.clear();
    return Status::InvalidArgument("malformed offsets in arena graph " +
                                   std::to_string(bad));
  }
  max_num_nodes_ = max_nodes;
  ++generation_;
  *total_edges = edge_begin;
  *total_critical = critical_begin;
  return Status::Ok();
}

Status PrrStore::ValidateDeep() const {
  // Every packed edge endpoint and critical id must be a valid local node.
  const std::span<const uint32_t> oo = raw_out_offsets();
  const std::span<const uint32_t> oe = raw_out_edges();
  const std::span<const uint32_t> ie = raw_in_edges();
  const std::span<const uint32_t> cr = raw_critical();
  for (size_t g = 0; g < meta_.size(); ++g) {
    const Meta& m = meta_[g];
    const uint64_t edges = oo[m.node_begin + g + m.num_nodes];
    for (uint64_t e = 0; e < edges; ++e) {
      if (PrrGraph::EdgeNode(oe[m.edge_begin + e]) >= m.num_nodes ||
          PrrGraph::EdgeNode(ie[m.edge_begin + e]) >= m.num_nodes) {
        return Status::OutOfRange("edge endpoint out of range in arena graph " +
                                  std::to_string(g));
      }
    }
    for (uint32_t c = 0; c < m.num_critical; ++c) {
      // The super-seed slot (local 0) is excluded as well as out-of-range
      // ids: its global id is kInvalidNode by construction, so a critical
      // entry pointing at it would smuggle an unvalidated id past the
      // global-id range check and into the coverage index.
      const uint32_t id = cr[m.critical_begin + c];
      if (id == PrrGraph::kSuperSeedLocal || id >= m.num_nodes) {
        return Status::OutOfRange("critical id out of range in arena graph " +
                                  std::to_string(g));
      }
    }
  }
  return Status::Ok();
}

Status PrrStore::AttachExternal(const ArenaSections& sections,
                                bool deep_validate) {
  KB_CHECK(meta_.empty()) << "AttachExternal to a non-empty store";
  external_ = true;
  ext_global_ids_ = sections.global_ids;
  ext_out_offsets_ = sections.out_offsets;
  ext_in_offsets_ = sections.in_offsets;
  ext_out_edges_ = sections.out_edges;
  ext_in_edges_ = sections.in_edges;
  ext_critical_ = sections.critical;
  uint64_t edge_total = 0, critical_total = 0;
  Status status = BuildMetaFromSizes(sections.num_nodes, sections.num_critical,
                                     &edge_total, &critical_total);
  if (status.ok() && (ext_out_edges_.size() != edge_total ||
                      ext_in_edges_.size() != edge_total ||
                      ext_critical_.size() != critical_total)) {
    status = Status::InvalidArgument(
        "arena edge/critical sections disagree with the offset pools");
  }
  if (status.ok() && deep_validate) status = ValidateDeep();
  if (!status.ok()) Clear();
  return status;
}

Status PrrStore::AdoptBuffers(std::span<const uint32_t> num_nodes,
                              std::span<const uint32_t> num_critical,
                              std::vector<NodeId>&& global_ids,
                              std::vector<uint32_t>&& out_offsets,
                              std::vector<uint32_t>&& in_offsets,
                              std::vector<uint32_t>&& out_edges,
                              std::vector<uint32_t>&& in_edges,
                              std::vector<uint32_t>&& critical) {
  KB_CHECK(meta_.empty()) << "AdoptBuffers into a non-empty store";
  global_ids_ = std::move(global_ids);
  out_offsets_ = std::move(out_offsets);
  in_offsets_ = std::move(in_offsets);
  out_edges_ = std::move(out_edges);
  in_edges_ = std::move(in_edges);
  critical_ = std::move(critical);
  uint64_t edge_total = 0, critical_total = 0;
  Status status =
      BuildMetaFromSizes(num_nodes, num_critical, &edge_total, &critical_total);
  if (status.ok() && (out_edges_.size() != edge_total ||
                      in_edges_.size() != edge_total ||
                      critical_.size() != critical_total)) {
    status = Status::InvalidArgument(
        "arena edge/critical sections disagree with the offset pools");
  }
  if (status.ok()) status = ValidateDeep();
  if (!status.ok()) Clear();
  return status;
}

void PrrStore::Clear() {
  meta_.clear();
  global_ids_.clear();
  out_offsets_.clear();
  in_offsets_.clear();
  out_edges_.clear();
  in_edges_.clear();
  critical_.clear();
  external_ = false;
  ext_global_ids_ = {};
  ext_out_offsets_ = {};
  ext_in_offsets_ = {};
  ext_out_edges_ = {};
  ext_in_edges_ = {};
  ext_critical_ = {};
  max_num_nodes_ = 0;
  ++generation_;
}

void PrrEvalState::Attach(const PrrStore& store) {
  if (store_ != &store || generation_ != store.generation()) {
    store_ = &store;
    generation_ = store.generation();
    const size_t num_graphs = store.num_graphs();
    slots_.resize(num_graphs);
    uint64_t begin = 0;
    for (size_t g = 0; g < num_graphs; ++g) {
      const uint32_t n = store.num_nodes(g);
      const uint32_t wpb = n <= kMaxStateNodes ? (n + 63) / 64 : 0;
      slots_[g] = Slot{begin, wpb};
      begin += 3ull * wpb;
    }
    words_.resize(begin);
    init_.resize(num_graphs);
  }
  std::fill(words_.begin(), words_.end(), 0);
  std::fill(init_.begin(), init_.end(), 0);
}

}  // namespace kboost
