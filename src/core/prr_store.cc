#include "src/core/prr_store.h"

#include <algorithm>

#include "src/util/logging.h"

namespace kboost {

namespace {

template <typename T>
void AppendSpan(std::vector<T>& pool, std::span<const T> data) {
  pool.insert(pool.end(), data.begin(), data.end());
}

}  // namespace

size_t PrrStore::Append(std::span<const NodeId> global_ids,
                        std::span<const uint32_t> out_offsets,
                        std::span<const uint32_t> out_edges,
                        std::span<const uint32_t> in_offsets,
                        std::span<const uint32_t> in_edges,
                        std::span<const uint32_t> critical_locals) {
  KB_DCHECK(out_offsets.size() == global_ids.size() + 1);
  KB_DCHECK(in_offsets.size() == global_ids.size() + 1);
  KB_DCHECK(out_edges.size() == in_edges.size());
  KB_DCHECK(out_offsets.empty() || out_offsets.back() == out_edges.size());

  Meta meta;
  meta.node_begin = global_ids_.size();
  meta.edge_begin = out_edges_.size();
  meta.critical_begin = critical_.size();
  meta.num_nodes = static_cast<uint32_t>(global_ids.size());
  meta.num_critical = static_cast<uint32_t>(critical_locals.size());

  AppendSpan(global_ids_, global_ids);
  AppendSpan(out_offsets_, out_offsets);
  AppendSpan(in_offsets_, in_offsets);
  AppendSpan(out_edges_, out_edges);
  AppendSpan(in_edges_, in_edges);
  AppendSpan(critical_, critical_locals);

  meta_.push_back(meta);
  return meta_.size() - 1;
}

size_t PrrStore::Add(const PrrGraph& graph) {
  return Append(graph.global_ids, graph.out_offsets, graph.out_edges,
                graph.in_offsets, graph.in_edges, graph.critical_locals);
}

size_t PrrStore::AppendFrom(const PrrStore& other, size_t id) {
  KB_DCHECK(id < other.meta_.size());
  const Meta& m = other.meta_[id];
  const uint64_t off = m.node_begin + id;
  const uint64_t edge_count = other.out_offsets_[off + m.num_nodes];
  return Append(
      std::span<const NodeId>(other.global_ids_.data() + m.node_begin,
                              m.num_nodes),
      std::span<const uint32_t>(other.out_offsets_.data() + off,
                                m.num_nodes + 1),
      std::span<const uint32_t>(other.out_edges_.data() + m.edge_begin,
                                edge_count),
      std::span<const uint32_t>(other.in_offsets_.data() + off,
                                m.num_nodes + 1),
      std::span<const uint32_t>(other.in_edges_.data() + m.edge_begin,
                                edge_count),
      std::span<const uint32_t>(other.critical_.data() + m.critical_begin,
                                m.num_critical));
}

PrrGraphView PrrStore::View(size_t id) const {
  KB_DCHECK(id < meta_.size());
  const Meta& m = meta_[id];
  PrrGraphView view;
  view.global_ids = global_ids_.data() + m.node_begin;
  view.out_offsets = out_offsets_.data() + m.node_begin + id;
  view.in_offsets = in_offsets_.data() + m.node_begin + id;
  view.out_edges = out_edges_.data() + m.edge_begin;
  view.in_edges = in_edges_.data() + m.edge_begin;
  view.critical_locals = critical_.data() + m.critical_begin;
  view.num_nodes_count = m.num_nodes;
  view.num_critical_count = m.num_critical;
  return view;
}

PrrGraph PrrStore::ToPrrGraph(size_t id) const {
  const PrrGraphView v = View(id);
  PrrGraph g;
  g.global_ids.assign(v.global_ids, v.global_ids + v.num_nodes());
  g.out_offsets.assign(v.out_offsets, v.out_offsets + v.num_nodes() + 1);
  g.in_offsets.assign(v.in_offsets, v.in_offsets + v.num_nodes() + 1);
  g.out_edges.assign(v.out_edges, v.out_edges + v.num_edges());
  g.in_edges.assign(v.in_edges, v.in_edges + v.num_edges());
  g.critical_locals.assign(v.critical_locals,
                           v.critical_locals + v.num_critical_count);
  return g;
}

size_t PrrStore::MemoryBytes() const {
  return meta_.size() * sizeof(Meta) + global_ids_.size() * sizeof(NodeId) +
         (out_offsets_.size() + in_offsets_.size() + out_edges_.size() +
          in_edges_.size() + critical_.size()) *
             sizeof(uint32_t);
}

void PrrStore::Clear() {
  meta_.clear();
  global_ids_.clear();
  out_offsets_.clear();
  in_offsets_.clear();
  out_edges_.clear();
  in_edges_.clear();
  critical_.clear();
}

}  // namespace kboost
