#ifndef KBOOST_CORE_BOOST_SESSION_H_
#define KBOOST_CORE_BOOST_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/prr_boost.h"
#include "src/core/solve_context.h"
#include "src/util/status.h"

namespace kboost {

/// The serving-layer entry point: one prepared PRR-graph pool, many budget
/// queries. Where PrrBoost()/PrrBoostLb() sample a fresh pool per call, a
/// BoostSession samples once at its maximum budget (`options.k`, the session
/// budget) and then answers any budget k ≤ budget() with selection work
/// only:
///
/// - LB mode: greedy on the submodular μ̂ yields nested solutions, so every
///   budget's answer is a prefix slice of one cached greedy order — O(k)
///   per query after the first.
/// - Full mode: only the Δ̂ greedy re-runs per budget (its gains are not
///   monotone in B); the pool, the LB order and all estimators are reused.
///
/// Two query surfaces share that machinery:
///
/// - SolveForBudget(k): the serial sweep API. Samples lazily, aborts on a
///   bad budget, reuses session-owned scratch. NOT safe to call from more
///   than one thread.
/// - Solve(spec): the concurrent serving API. Requires Prepare() (which
///   freezes the pool read-only), validates the request and returns
///   StatusOr. Any number of threads may Solve() against one prepared
///   session simultaneously — each call brings its own SolveContext (or
///   lets the call allocate one) — with results bit-identical to the serial
///   loop. BoostService (src/serve) serves a registry of named prepared
///   sessions through exactly this surface.
///
/// Results answered from an existing pool carry pool_reused = true and
/// pool_budget = budget(), recording that the sampling constants correspond
/// to the larger budget (the paper's budget-reuse heuristic).
///
/// Prepared pools can be snapshotted to disk and restored in another
/// process via SavePool / LoadPoolSnapshot (src/io/pool_io.h), enabling
/// warm restarts and cross-process serving against one prepared index.
class BoostSession {
 public:
  /// Fallible construction — the blessed path for anything driven by
  /// external input. Validates `options` (BoostOptions::Validate), the
  /// graph size, and that `seeds` is non-empty with every id in range;
  /// returns InvalidArgument/OutOfRange instead of aborting.
  static StatusOr<std::unique_ptr<BoostSession>> Create(
      const DirectedGraph& graph, std::vector<NodeId> seeds,
      const BoostOptions& options, bool lb_only = false);

  /// Trusting constructor for in-process callers with known-good arguments;
  /// KB_CHECKs the same predicates Create() reports as Status.
  /// `options.k` is the session budget — the largest k the session can
  /// answer. `lb_only` selects the PRR-Boost-LB pipeline (no stored graphs).
  BoostSession(const DirectedGraph& graph, std::vector<NodeId> seeds,
               const BoostOptions& options, bool lb_only = false);

  /// Samples the pool at budget() via the IMM schedule, warms every lazily
  /// built read-only index and caches the LB greedy order, making the
  /// session ready for concurrent Solve() calls. Idempotent; also called
  /// lazily by SolveForBudget — call eagerly to front-load the expensive
  /// part (e.g. at server startup or before SavePool).
  void Prepare();

  /// Serial sweep path: answers the k-boosting problem for any
  /// 1 ≤ k ≤ budget() without resampling. Not thread-safe.
  BoostResult SolveForBudget(size_t k);

  /// Concurrent serving path: answers `spec` against the prepared pool,
  /// touching no session-owned mutable state. Safe to call from any number
  /// of threads once Prepare() has run; bit-identical to SolveForBudget for
  /// the same (k, mode). Pass a per-query `context` to keep selection
  /// scratch warm across sequential queries; the single-argument overload
  /// allocates one per call.
  StatusOr<BoostResult> Solve(const SolveSpec& spec,
                              SolveContext* context) const {
    return engine_.Solve(spec, context);
  }
  StatusOr<BoostResult> Solve(const SolveSpec& spec) const {
    return engine_.Solve(spec, nullptr);
  }

  /// The largest budget this session can answer (options.k).
  size_t budget() const { return engine_.options().k; }
  bool lb_only() const { return engine_.lb_only(); }
  /// Whether the pool has been sampled (or adopted from a snapshot).
  bool prepared() const { return engine_.sampled(); }
  /// Whether Prepare() has run — the precondition of concurrent Solve().
  bool serving_ready() const { return engine_.serving_ready(); }

  const DirectedGraph& graph() const { return engine_.graph(); }
  const std::vector<NodeId>& seeds() const { return engine_.seeds(); }
  const BoostOptions& options() const { return engine_.options(); }
  /// Overrides the selection/estimator worker count (the CLI's --threads);
  /// useful for sessions restored from a snapshot, whose options come from
  /// the file. Validated by BoostOptions::Validate (InvalidArgument when out
  /// of range). Not safe to call while Solve() requests are in flight.
  Status set_num_threads(int num_threads) {
    return engine_.set_num_threads(num_threads);
  }
  /// The wrapped engine, for pool estimators (EstimateDelta/EstimateMu) and
  /// snapshot restore.
  PrrBoostEngine& engine() { return engine_; }
  const PrrBoostEngine& engine() const { return engine_; }

  /// Samples (if needed) and snapshots the pool to `path`; convenience for
  /// SavePoolSnapshot (src/io/pool_io.h).
  Status SavePool(const std::string& path);

  /// Pins an external resource to this session's lifetime. The mmap loader
  /// (src/io/pool_io.h) uses this to keep the SnapshotMapping an external
  /// pool arena aliases alive for as long as the session exists — and, since
  /// BoostService pool entries hold the session by shared_ptr, for as long
  /// as any in-flight request still references it.
  void RetainResource(std::shared_ptr<const void> resource) {
    retained_.push_back(std::move(resource));
  }

 private:
  PrrBoostEngine engine_;
  std::vector<std::shared_ptr<const void>> retained_;
};

}  // namespace kboost

#endif  // KBOOST_CORE_BOOST_SESSION_H_
