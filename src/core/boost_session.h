#ifndef KBOOST_CORE_BOOST_SESSION_H_
#define KBOOST_CORE_BOOST_SESSION_H_

#include <string>
#include <vector>

#include "src/core/prr_boost.h"
#include "src/util/status.h"

namespace kboost {

/// The serving-layer entry point: one prepared PRR-graph pool, many budget
/// queries. Where PrrBoost()/PrrBoostLb() sample a fresh pool per call, a
/// BoostSession samples once at its maximum budget (`options.k`, the session
/// budget) and then answers SolveForBudget(k) for any k ≤ budget() with
/// selection work only:
///
/// - LB mode: greedy on the submodular μ̂ yields nested solutions, so every
///   budget's answer is a prefix slice of one cached greedy order — O(k)
///   per query after the first.
/// - Full mode: only the Δ̂ greedy re-runs per budget (its gains are not
///   monotone in B); the pool, the LB order and all estimators are reused.
///
/// Results answered from an existing pool carry pool_reused = true and
/// pool_budget = budget(), recording that the sampling constants correspond
/// to the larger budget (the paper's budget-reuse heuristic).
///
/// Prepared pools can be snapshotted to disk and restored in another
/// process via SavePool / LoadPoolSnapshot (src/io/pool_io.h), enabling
/// warm restarts and cross-process serving against one prepared index.
class BoostSession {
 public:
  /// `options.k` is the session budget — the largest k the session can
  /// answer. `lb_only` selects the PRR-Boost-LB pipeline (no stored graphs).
  BoostSession(const DirectedGraph& graph, std::vector<NodeId> seeds,
               const BoostOptions& options, bool lb_only = false);

  /// Samples the pool at budget() via the IMM schedule. Idempotent; called
  /// lazily by SolveForBudget — call eagerly to front-load the expensive
  /// part (e.g. at server startup or before SavePool).
  void Prepare();

  /// Answers the k-boosting problem for any 1 ≤ k ≤ budget() without
  /// resampling.
  BoostResult SolveForBudget(size_t k);

  /// The largest budget this session can answer (options.k).
  size_t budget() const { return engine_.options().k; }
  bool lb_only() const { return engine_.lb_only(); }
  /// Whether the pool has been sampled (or adopted from a snapshot).
  bool prepared() const { return engine_.sampled(); }

  const DirectedGraph& graph() const { return engine_.graph(); }
  const std::vector<NodeId>& seeds() const { return engine_.seeds(); }
  const BoostOptions& options() const { return engine_.options(); }
  /// Overrides the selection/estimator worker count (the CLI's --threads);
  /// useful for sessions restored from a snapshot, whose options come from
  /// the file.
  void set_num_threads(int num_threads) {
    engine_.set_num_threads(num_threads);
  }
  /// The wrapped engine, for pool estimators (EstimateDelta/EstimateMu) and
  /// snapshot restore.
  PrrBoostEngine& engine() { return engine_; }
  const PrrBoostEngine& engine() const { return engine_; }

  /// Prepares (if needed) and snapshots the pool to `path`; convenience for
  /// SavePoolSnapshot (src/io/pool_io.h).
  Status SavePool(const std::string& path);

 private:
  PrrBoostEngine engine_;
};

}  // namespace kboost

#endif  // KBOOST_CORE_BOOST_SESSION_H_
