#include "src/io/codec.h"

#include <cstring>

namespace kboost {

namespace {

class NopCodec final : public Codec {
 public:
  SnapshotCodec id() const override { return SnapshotCodec::kNop; }

  void Encode(std::span<const uint32_t> values,
              std::string* out) const override {
    if (!values.empty()) {
      out->append(reinterpret_cast<const char*>(values.data()),
                  values.size() * sizeof(uint32_t));
    }
  }

  Status Decode(std::span<const char> encoded,
                std::span<uint32_t> out) const override {
    if (encoded.size() != out.size() * sizeof(uint32_t)) {
      return Status::InvalidArgument(
          "nop block holds " + std::to_string(encoded.size()) +
          " bytes, expected exactly " +
          std::to_string(out.size() * sizeof(uint32_t)));
    }
    if (!encoded.empty()) {
      std::memcpy(out.data(), encoded.data(), encoded.size());
    }
    return Status::Ok();
  }

  size_t MaxEncodedBytes(size_t count) const override {
    return count * sizeof(uint32_t);
  }
};

/// Zigzag-delta varint. The delta of consecutive uint32 values fits a signed
/// 33-bit integer; zigzag folds it non-negative and LEB128 writes it in at
/// most 5 bytes — so the worst case is 25% larger than raw, and the common
/// case (small ids, gently ramping offsets) is 1–2 bytes per value.
class VarintCodec final : public Codec {
 public:
  SnapshotCodec id() const override { return SnapshotCodec::kVarint; }

  void Encode(std::span<const uint32_t> values,
              std::string* out) const override {
    out->reserve(out->size() + values.size());  // ≥1 byte per value
    uint32_t prev = 0;
    for (uint32_t v : values) {
      const int64_t delta =
          static_cast<int64_t>(v) - static_cast<int64_t>(prev);
      uint64_t zz = (static_cast<uint64_t>(delta) << 1) ^
                    static_cast<uint64_t>(delta >> 63);
      while (zz >= 0x80) {
        out->push_back(static_cast<char>(zz | 0x80));
        zz >>= 7;
      }
      out->push_back(static_cast<char>(zz));
      prev = v;
    }
  }

  Status Decode(std::span<const char> encoded,
                std::span<uint32_t> out) const override {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(encoded.data());
    const uint8_t* const end = p + encoded.size();
    uint32_t prev = 0;
    for (size_t i = 0; i < out.size(); ++i) {
      uint64_t zz = 0;
      int shift = 0;
      while (true) {
        if (p == end) {
          return Status::InvalidArgument(
              "varint block truncated at value " + std::to_string(i) + " of " +
              std::to_string(out.size()));
        }
        const uint8_t byte = *p++;
        // A 33-bit zigzag delta needs at most 5 LEB128 bytes; a longer run
        // (or high bits in the 5th byte) cannot come from Encode.
        if (shift == 28 && (byte & 0xE0) != 0) {
          return Status::InvalidArgument(
              "varint overflows 32-bit delta at value " + std::to_string(i));
        }
        zz |= static_cast<uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
        if (shift > 28) {
          return Status::InvalidArgument(
              "varint overflows 32-bit delta at value " + std::to_string(i));
        }
      }
      const int64_t delta =
          static_cast<int64_t>(zz >> 1) ^ -static_cast<int64_t>(zz & 1);
      const int64_t value = static_cast<int64_t>(prev) + delta;
      if (value < 0 || value > static_cast<int64_t>(UINT32_MAX)) {
        return Status::InvalidArgument(
            "varint delta reconstructs a value outside uint32 at value " +
            std::to_string(i));
      }
      out[i] = static_cast<uint32_t>(value);
      prev = out[i];
    }
    if (p != end) {
      return Status::InvalidArgument(
          std::to_string(end - p) +
          " trailing bytes after the last varint value");
    }
    return Status::Ok();
  }

  size_t MaxEncodedBytes(size_t count) const override { return count * 5; }
};

const NopCodec kNopCodec;
const VarintCodec kVarintCodec;

}  // namespace

const Codec* CodecById(uint32_t id) {
  switch (static_cast<SnapshotCodec>(id)) {
    case SnapshotCodec::kNop:
      return &kNopCodec;
    case SnapshotCodec::kVarint:
      return &kVarintCodec;
  }
  return nullptr;
}

const Codec* CodecByName(const std::string& name) {
  if (name == "nop") return &kNopCodec;
  if (name == "varint") return &kVarintCodec;
  return nullptr;
}

const char* CodecName(SnapshotCodec codec) {
  switch (codec) {
    case SnapshotCodec::kNop:
      return "nop";
    case SnapshotCodec::kVarint:
      return "varint";
  }
  return "unknown";
}

}  // namespace kboost
