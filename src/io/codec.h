#ifndef KBOOST_IO_CODEC_H_
#define KBOOST_IO_CODEC_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/util/status.h"

namespace kboost {

/// Per-block compression codecs for pool-snapshot sections (src/io/pool_io).
///
/// A v3 snapshot stores each shard arena as eight flat uint32 sections; the
/// codec that encoded each section is recorded per block in the snapshot's
/// section directory, so readers dispatch per block and a file may mix
/// codecs. Two are built in:
///
///   kNop    — identity. Sections are the raw little-endian uint32 stream,
///             byte-for-byte the arena memory. The only codec the zero-copy
///             mmap serving path accepts (a mapped section IS the arena).
///   kVarint — zigzag-delta + LEB128 varint. Each value is encoded as the
///             signed difference from its predecessor, zigzag-folded and
///             written base-128. The arena's id/offset streams are mostly
///             small values or gentle ramps (graph-relative offsets reset to
///             0 every graph, local edge ids are dense small ints), so most
///             deltas fit one or two bytes — the cold-storage codec.
///
/// Codecs are stateless and thread-safe; Encode/Decode of different blocks
/// may run concurrently on one instance.
enum class SnapshotCodec : uint32_t {
  kNop = 0,
  kVarint = 1,
};

/// The pluggable seam. Implementations must be exact: Decode(Encode(x)) == x
/// for every input, and Decode must reject — with a typed Status, never a
/// crash or a silent wrong value — any byte stream that is not exactly an
/// encoding of `out.size()` values (truncation, trailing bytes, varints
/// overflowing uint32).
class Codec {
 public:
  virtual ~Codec() = default;

  virtual SnapshotCodec id() const = 0;

  /// Appends the encoding of `values` to `*out` (which is not cleared).
  virtual void Encode(std::span<const uint32_t> values,
                      std::string* out) const = 0;

  /// Decodes exactly `out.size()` values from `encoded` into `out`.
  /// InvalidArgument when the stream is malformed, truncated, has trailing
  /// bytes, or reconstructs a value outside uint32.
  virtual Status Decode(std::span<const char> encoded,
                        std::span<uint32_t> out) const = 0;

  /// Upper bound on Encode output size for `count` values (buffer sizing).
  virtual size_t MaxEncodedBytes(size_t count) const = 0;
};

/// The codec registered under `id`, or nullptr for an unknown id — the
/// loader turns nullptr into a typed InvalidArgument naming the block.
const Codec* CodecById(uint32_t id);

/// Parses a codec name ("nop" | "varint") for the CLI/bench flags; nullptr
/// for an unknown name.
const Codec* CodecByName(const std::string& name);

/// Human-readable codec name for messages and bench labels.
const char* CodecName(SnapshotCodec codec);

}  // namespace kboost

#endif  // KBOOST_IO_CODEC_H_
