#include "src/io/pool_io.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "src/core/prr_collection.h"
#include "src/core/prr_sampler.h"
#include "src/im/coverage.h"

namespace kboost {

namespace {

constexpr char kMagic[8] = {'K', 'B', 'P', 'R', 'R', 'P', 'O', 'L'};
constexpr uint32_t kVersion = 1;

constexpr uint32_t kFlagLbOnly = 1u << 0;
constexpr uint32_t kFlagSamplesCapped = 1u << 1;

/// Fixed-size snapshot header. Every field is written explicitly (no struct
/// dump), so the on-disk layout is independent of compiler padding.
struct Header {
  uint32_t version = kVersion;
  uint32_t flags = 0;
  uint64_t num_graph_nodes = 0;
  uint64_t pool_budget = 0;  // BoostOptions::k the schedule sampled at
  double epsilon = 0.0;
  double ell = 0.0;
  uint64_t rng_seed = 0;
  uint64_t max_samples = 0;
  uint32_t num_threads = 0;
  uint64_t num_seeds = 0;
  uint64_t num_boostable = 0;
  uint64_t num_activated = 0;
  uint64_t num_hopeless = 0;
  uint64_t edges_examined = 0;
  uint64_t uncompressed_edges = 0;
  uint64_t compressed_edges = 0;
};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

/// Bytes left between the current position and the end of the stream. Used
/// to bound every count-driven allocation: a corrupt count larger than the
/// file itself is rejected before any resize happens.
uint64_t RemainingBytes(std::istream& in) {
  const std::streampos pos = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  in.seekg(pos);
  return static_cast<uint64_t>(end - pos);
}

void WriteHeader(std::ostream& out, const Header& h) {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, h.version);
  WritePod(out, h.flags);
  WritePod(out, h.num_graph_nodes);
  WritePod(out, h.pool_budget);
  WritePod(out, h.epsilon);
  WritePod(out, h.ell);
  WritePod(out, h.rng_seed);
  WritePod(out, h.max_samples);
  WritePod(out, h.num_threads);
  WritePod(out, h.num_seeds);
  WritePod(out, h.num_boostable);
  WritePod(out, h.num_activated);
  WritePod(out, h.num_hopeless);
  WritePod(out, h.edges_examined);
  WritePod(out, h.uncompressed_edges);
  WritePod(out, h.compressed_edges);
}

Status ReadHeader(std::istream& in, const std::string& path, Header* h) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a kboost pool snapshot: " + path);
  }
  if (!ReadPod(in, &h->version) || !ReadPod(in, &h->flags) ||
      !ReadPod(in, &h->num_graph_nodes) || !ReadPod(in, &h->pool_budget) ||
      !ReadPod(in, &h->epsilon) || !ReadPod(in, &h->ell) ||
      !ReadPod(in, &h->rng_seed) || !ReadPod(in, &h->max_samples) ||
      !ReadPod(in, &h->num_threads) || !ReadPod(in, &h->num_seeds) ||
      !ReadPod(in, &h->num_boostable) || !ReadPod(in, &h->num_activated) ||
      !ReadPod(in, &h->num_hopeless) || !ReadPod(in, &h->edges_examined) ||
      !ReadPod(in, &h->uncompressed_edges) ||
      !ReadPod(in, &h->compressed_edges)) {
    return Status::IoError("truncated pool snapshot header: " + path);
  }
  if (h->version != kVersion) {
    return Status::InvalidArgument(
        "unsupported pool snapshot version " + std::to_string(h->version) +
        " (this build reads version " + std::to_string(kVersion) + ")");
  }
  return Status::Ok();
}

}  // namespace

Status SavePoolSnapshot(const BoostSession& session, const std::string& path) {
  if (!session.prepared()) {
    return Status::InvalidArgument(
        "session pool not prepared; call Prepare() before saving");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);

  const PrrBoostEngine& engine = session.engine();
  const PrrCollection& pool = engine.collection();
  const PrrSamplerStats& stats = engine.stats();

  Header h;
  h.flags = (session.lb_only() ? kFlagLbOnly : 0) |
            (engine.samples_capped() ? kFlagSamplesCapped : 0);
  h.num_graph_nodes = pool.num_graph_nodes();
  h.pool_budget = session.budget();
  h.epsilon = session.options().epsilon;
  h.ell = session.options().ell;
  h.rng_seed = session.options().seed;
  h.max_samples = session.options().max_samples;
  h.num_threads = static_cast<uint32_t>(session.options().num_threads);
  h.num_seeds = session.seeds().size();
  h.num_boostable = pool.num_boostable();
  h.num_activated = pool.num_activated();
  h.num_hopeless = pool.num_hopeless();
  h.edges_examined = stats.edges_examined;
  h.uncompressed_edges = stats.uncompressed_edges;
  h.compressed_edges = stats.compressed_edges;
  WriteHeader(out, h);
  out.write(reinterpret_cast<const char*>(session.seeds().data()),
            static_cast<std::streamsize>(h.num_seeds * sizeof(NodeId)));

  if (session.lb_only()) {
    // LB mode: only the critical sets exist. Write them as one flat
    // offsets/nodes pair over the non-empty sample numbering.
    const CoverageSelector& coverage = pool.coverage();
    const uint64_t num_sets = coverage.num_nonempty_sets();
    WritePod(out, num_sets);
    uint64_t offset = 0;
    WritePod(out, offset);
    for (uint64_t i = 0; i < num_sets; ++i) {
      offset += coverage.SetNodes(i).size();
      WritePod(out, offset);
    }
    for (uint64_t i = 0; i < num_sets; ++i) {
      const std::span<const NodeId> nodes = coverage.SetNodes(i);
      out.write(reinterpret_cast<const char*>(nodes.data()),
                static_cast<std::streamsize>(nodes.size() * sizeof(NodeId)));
    }
  } else {
    pool.store().Serialize(out);
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::unique_ptr<BoostSession>> LoadPoolSnapshot(
    const DirectedGraph& graph, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  Header h;
  Status header_status = ReadHeader(in, path, &h);
  if (!header_status.ok()) return header_status;
  if (h.num_graph_nodes != graph.num_nodes()) {
    return Status::InvalidArgument(
        "pool snapshot was taken against a graph with " +
        std::to_string(h.num_graph_nodes) + " nodes, not " +
        std::to_string(graph.num_nodes()));
  }
  if (h.pool_budget == 0 || h.num_seeds == 0 ||
      h.num_seeds > graph.num_nodes()) {
    return Status::InvalidArgument("corrupt pool snapshot header: " + path);
  }
  const bool lb_only = (h.flags & kFlagLbOnly) != 0;

  std::vector<NodeId> seeds(h.num_seeds);
  in.read(reinterpret_cast<char*>(seeds.data()),
          static_cast<std::streamsize>(h.num_seeds * sizeof(NodeId)));
  if (!in) return Status::IoError("truncated pool snapshot: " + path);
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return Status::OutOfRange("snapshot seed out of range: " +
                                std::to_string(s));
    }
  }

  auto pool = std::make_unique<PrrCollection>(graph.num_nodes());
  if (lb_only) {
    uint64_t num_sets = 0;
    if (!ReadPod(in, &num_sets) || num_sets != h.num_boostable ||
        num_sets > RemainingBytes(in) / sizeof(uint64_t)) {
      return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
    }
    std::vector<uint64_t> offsets(num_sets + 1);
    in.read(reinterpret_cast<char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
    if (!in || offsets[0] != 0) {
      return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
    }
    for (uint64_t i = 0; i < num_sets; ++i) {
      if (offsets[i] > offsets[i + 1]) {
        return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
      }
    }
    if (offsets[num_sets] > RemainingBytes(in) / sizeof(NodeId)) {
      return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
    }
    std::vector<NodeId> nodes(offsets[num_sets]);
    in.read(reinterpret_cast<char*>(nodes.data()),
            static_cast<std::streamsize>(nodes.size() * sizeof(NodeId)));
    if (!in) return Status::IoError("truncated pool snapshot: " + path);
    for (NodeId v : nodes) {
      if (v >= graph.num_nodes()) {
        return Status::OutOfRange("snapshot critical node out of range: " +
                                  std::to_string(v));
      }
    }
    for (uint64_t i = 0; i < num_sets; ++i) {
      pool->AddBoostableCriticalOnly(std::span<const NodeId>(
          nodes.data() + offsets[i], offsets[i + 1] - offsets[i]));
    }
    pool->AddNonBoostableCounts(h.num_activated, h.num_hopeless);
  } else {
    PrrStore store;
    if (Status arena = store.Deserialize(in); !arena.ok()) {
      return Status::InvalidArgument("corrupt PRR-graph arena in snapshot " +
                                     path + ": " + arena.ToString());
    }
    if (store.num_graphs() != h.num_boostable) {
      return Status::InvalidArgument(
          "snapshot header declares " + std::to_string(h.num_boostable) +
          " boostable graphs but the arena has " +
          std::to_string(store.num_graphs()));
    }
    // Global ids must fit the serving graph before views reach evaluators.
    for (size_t g = 0; g < store.num_graphs(); ++g) {
      const PrrGraphView view = store.View(g);
      for (uint32_t v = PrrGraph::kRootLocal; v < view.num_nodes(); ++v) {
        if (view.global_ids[v] >= graph.num_nodes()) {
          return Status::OutOfRange(
              "snapshot PRR-graph node out of range: " +
              std::to_string(view.global_ids[v]));
        }
      }
    }
    pool->RestoreFullPool(std::move(store), h.num_activated, h.num_hopeless);
  }

  BoostOptions options;
  options.k = h.pool_budget;
  options.epsilon = h.epsilon;
  options.ell = h.ell;
  options.seed = h.rng_seed;
  options.max_samples = h.max_samples;
  if (h.num_threads > 0) options.num_threads = static_cast<int>(h.num_threads);

  PrrSamplerStats stats;
  stats.edges_examined = h.edges_examined;
  stats.uncompressed_edges = h.uncompressed_edges;
  stats.compressed_edges = h.compressed_edges;

  auto session = std::make_unique<BoostSession>(graph, std::move(seeds),
                                                options, lb_only);
  session->engine().AdoptPool(std::move(pool), stats,
                              (h.flags & kFlagSamplesCapped) != 0);
  return session;
}

}  // namespace kboost
