#include "src/io/pool_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/core/prr_collection.h"
#include "src/core/prr_sampler.h"
#include "src/im/coverage.h"
#include "src/util/fault.h"
#include "src/util/thread_pool.h"

namespace kboost {

namespace {

constexpr char kMagic[8] = {'K', 'B', 'P', 'R', 'R', 'P', 'O', 'L'};
/// v1: single-arena full-mode body. v2: adds num_shards to the header and
/// stores the full-mode body as a per-shard blob-size table followed by one
/// independently-validated arena blob per shard. v3: keeps the v2 header
/// prefix byte-for-byte, appends a 32-byte extension (endianness marker,
/// default codec, alignment, directory offset) and replaces the full-mode
/// body with a section directory over aligned flat uint32 blocks — eight per
/// shard plus one pool-level coverage section (the critical sets translated
/// to global ids, shard-major; present on nop-coded snapshots only), each
/// independently codec-coded — so a nop-coded snapshot is servable in place
/// from an mmap, coverage pool included. v1/v2 snapshots still load (v1 as
/// S=1).
constexpr uint32_t kVersion = 3;
constexpr uint32_t kMinVersion = 1;

constexpr uint32_t kFlagLbOnly = 1u << 0;
constexpr uint32_t kFlagSamplesCapped = 1u << 1;

constexpr uint64_t kHeaderBytes = 128;  // v1/v2-compatible prefix
constexpr uint64_t kExtBytes = 32;      // v3 extension after the prefix
constexpr uint32_t kEndianMarker = 0x01020304u;
constexpr uint64_t kShardAlign = 4096;  // shard regions start page-aligned
constexpr uint64_t kBlockAlign = 64;    // section blocks cache-line-aligned
constexpr size_t kNumSections = 8;
/// Per-shard directory entry: u64 num_graphs + kNumSections section records
/// of {u64 offset, u64 stored_bytes, u64 raw_bytes, u32 codec, u32 reserved}.
constexpr uint64_t kDirEntryBytes = 8 + kNumSections * 32;
/// One more section record after the shard entries: the pool-level coverage
/// node pool. All-zero when absent (compressed snapshots derive it on load).
constexpr uint64_t kCoverageEntryBytes = 32;

/// Fixed-size snapshot header. Every field is written explicitly (no struct
/// dump), so the on-disk layout is independent of compiler padding.
struct Header {
  uint32_t version = kVersion;
  uint32_t flags = 0;
  uint64_t num_graph_nodes = 0;
  uint64_t pool_budget = 0;  // BoostOptions::k the schedule sampled at
  double epsilon = 0.0;
  double ell = 0.0;
  uint64_t rng_seed = 0;
  uint64_t max_samples = 0;
  uint32_t num_threads = 0;
  uint32_t num_shards = 1;  // v2+; implicit 1 in v1 snapshots
  uint64_t num_seeds = 0;
  uint64_t num_boostable = 0;
  uint64_t num_activated = 0;
  uint64_t num_hopeless = 0;
  uint64_t edges_examined = 0;
  uint64_t uncompressed_edges = 0;
  uint64_t compressed_edges = 0;
};

/// v3 header extension, at bytes [128, 160). dir_offset is 0 on LB-only
/// snapshots (which store critical sets, not arenas, and have no directory).
struct HeaderExt {
  uint32_t endian_marker = kEndianMarker;
  uint32_t default_codec = 0;
  uint64_t section_align = kShardAlign;
  uint64_t dir_offset = 0;
  uint64_t reserved = 0;
};

/// One arena section block as recorded in the v3 directory. `offset` is
/// absolute in the file; `raw_bytes` is the decoded length (4 × value
/// count); for SnapshotCodec::kNop, stored_bytes == raw_bytes and the block
/// IS the arena memory.
struct SectionEntry {
  uint64_t offset = 0;
  uint64_t stored_bytes = 0;
  uint64_t raw_bytes = 0;
  uint32_t codec = 0;
  uint32_t reserved = 0;
};

/// Section order within each shard's directory entry.
enum SectionIndex : size_t {
  kSecNumNodes = 0,
  kSecNumCritical = 1,
  kSecGlobalIds = 2,
  kSecOutOffsets = 3,
  kSecInOffsets = 4,
  kSecOutEdges = 5,
  kSecInEdges = 6,
  kSecCritical = 7,
};

struct ShardDir {
  uint64_t num_graphs = 0;
  SectionEntry sections[kNumSections];
};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

uint64_t ReadU64At(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t ReadU32At(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Bytes left between the current position and the end of the stream. Used
/// to bound every count-driven allocation: a corrupt count larger than the
/// file itself is rejected before any resize happens.
uint64_t RemainingBytes(std::istream& in) {
  const std::streampos pos = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  in.seekg(pos);
  return static_cast<uint64_t>(end - pos);
}

uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

void WriteZeros(std::ostream& out, uint64_t count) {
  static constexpr char kZeros[4096] = {};
  while (count > 0) {
    const uint64_t chunk = std::min<uint64_t>(count, sizeof(kZeros));
    out.write(kZeros, static_cast<std::streamsize>(chunk));
    count -= chunk;
  }
}

void WriteHeader(std::ostream& out, const Header& h) {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, h.version);
  WritePod(out, h.flags);
  WritePod(out, h.num_graph_nodes);
  WritePod(out, h.pool_budget);
  WritePod(out, h.epsilon);
  WritePod(out, h.ell);
  WritePod(out, h.rng_seed);
  WritePod(out, h.max_samples);
  WritePod(out, h.num_threads);
  WritePod(out, h.num_shards);
  WritePod(out, h.num_seeds);
  WritePod(out, h.num_boostable);
  WritePod(out, h.num_activated);
  WritePod(out, h.num_hopeless);
  WritePod(out, h.edges_examined);
  WritePod(out, h.uncompressed_edges);
  WritePod(out, h.compressed_edges);
}

void WriteHeaderExt(std::ostream& out, const HeaderExt& e) {
  WritePod(out, e.endian_marker);
  WritePod(out, e.default_codec);
  WritePod(out, e.section_align);
  WritePod(out, e.dir_offset);
  WritePod(out, e.reserved);
}

Status ReadHeader(std::istream& in, const std::string& path, Header* h) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a kboost pool snapshot: " + path);
  }
  if (!ReadPod(in, &h->version) || !ReadPod(in, &h->flags)) {
    return Status::IoError("truncated pool snapshot header: " + path);
  }
  // Version gates the field layout, so it must be checked before the
  // remaining fields are interpreted.
  if (h->version < kMinVersion || h->version > kVersion) {
    return Status::InvalidArgument(
        "unsupported pool snapshot version " + std::to_string(h->version) +
        " (this build reads versions " + std::to_string(kMinVersion) + ".." +
        std::to_string(kVersion) + ")");
  }
  if (!ReadPod(in, &h->num_graph_nodes) || !ReadPod(in, &h->pool_budget) ||
      !ReadPod(in, &h->epsilon) || !ReadPod(in, &h->ell) ||
      !ReadPod(in, &h->rng_seed) || !ReadPod(in, &h->max_samples) ||
      !ReadPod(in, &h->num_threads)) {
    return Status::IoError("truncated pool snapshot header: " + path);
  }
  h->num_shards = 1;  // v1 snapshots are single-arena pools
  if (h->version >= 2 && !ReadPod(in, &h->num_shards)) {
    return Status::IoError("truncated pool snapshot header: " + path);
  }
  if (!ReadPod(in, &h->num_seeds) || !ReadPod(in, &h->num_boostable) ||
      !ReadPod(in, &h->num_activated) || !ReadPod(in, &h->num_hopeless) ||
      !ReadPod(in, &h->edges_examined) ||
      !ReadPod(in, &h->uncompressed_edges) ||
      !ReadPod(in, &h->compressed_edges)) {
    return Status::IoError("truncated pool snapshot header: " + path);
  }
  return Status::Ok();
}

Status ReadHeaderExt(std::istream& in, const std::string& path,
                     HeaderExt* e) {
  if (!ReadPod(in, &e->endian_marker) || !ReadPod(in, &e->default_codec) ||
      !ReadPod(in, &e->section_align) || !ReadPod(in, &e->dir_offset) ||
      !ReadPod(in, &e->reserved)) {
    return Status::IoError("truncated pool snapshot header: " + path);
  }
  if (e->endian_marker != kEndianMarker) {
    return Status::InvalidArgument(
        "pool snapshot byte order does not match this host "
        "(endianness marker mismatch): " +
        path);
  }
  return Status::Ok();
}

/// Global ids must fit the serving graph before views reach evaluators: the
/// pool's inverted index is addressed by global id, so an oversized id would
/// index out of bounds. Local 0 is the super-seed slot, not a graph node.
Status CheckGlobalIds(const PrrStore& store, uint64_t num_graph_nodes) {
  // Flat prefix-sum walk over the arena's id pool — identical coverage to
  // iterating View(g) per graph (every slot from kRootLocal on), but without
  // materializing a view per graph; this runs on every snapshot load.
  const NodeId* ids = store.raw_global_ids().data();
  const size_t num_graphs = store.num_graphs();
  uint64_t begin = 0;
  for (size_t g = 0; g < num_graphs; ++g) {
    const uint32_t n = store.num_nodes(g);
    const NodeId* p = ids + begin + PrrGraph::kRootLocal;
    const NodeId* end = ids + begin + n;
    bool ok = true;
    for (; p < end; ++p) ok &= *p < num_graph_nodes;
    if (!ok) {
      for (p = ids + begin + PrrGraph::kRootLocal; *p < num_graph_nodes; ++p) {
      }
      return Status::OutOfRange("snapshot PRR-graph node out of range: " +
                                std::to_string(*p));
    }
    begin += n;
  }
  return Status::Ok();
}

/// Per-entry structural checks for one v3 section block: 4-byte aligned, in
/// bounds, non-overlapping and in file order (`prev_end` advances); codec
/// known; nop blocks stored verbatim; value count bounded by stored bytes
/// (all codecs emit ≥ 1 byte per value, so a corrupt raw_bytes can never
/// drive a pathological allocation).
Status ValidateSectionEntry(const SectionEntry& e, const std::string& where,
                            uint64_t file_size, uint64_t* prev_end,
                            const std::string& path) {
  if (e.offset % sizeof(uint32_t) != 0) {
    return Status::InvalidArgument("misaligned " + where + ": " + path);
  }
  if (e.offset < *prev_end || e.offset > file_size ||
      e.stored_bytes > file_size - e.offset) {
    return Status::InvalidArgument(
        where + " overlaps another section or exceeds the snapshot: " + path);
  }
  if (e.raw_bytes % sizeof(uint32_t) != 0) {
    return Status::InvalidArgument(where + " has a non-uint32 raw length: " +
                                   path);
  }
  if (CodecById(e.codec) == nullptr) {
    return Status::InvalidArgument("unknown codec id " +
                                   std::to_string(e.codec) + " in " + where +
                                   ": " + path);
  }
  if (e.codec == static_cast<uint32_t>(SnapshotCodec::kNop) &&
      e.stored_bytes != e.raw_bytes) {
    return Status::InvalidArgument("nop-coded " + where +
                                   " has stored != raw bytes: " + path);
  }
  if (e.raw_bytes / sizeof(uint32_t) > e.stored_bytes) {
    return Status::InvalidArgument(
        where + " declares more values than its stored bytes encode: " + path);
  }
  *prev_end = e.offset + e.stored_bytes;
  return Status::Ok();
}

/// True for the all-zero entry the writer leaves when a snapshot carries no
/// pool-level coverage section (compressed snapshots; derived on load).
bool CoverageAbsent(const SectionEntry& e) {
  return e.offset == 0 && e.stored_bytes == 0 && e.raw_bytes == 0;
}

/// Structural validation of a v3 section directory against the mapped file
/// length: every shard block plus the trailing pool-level coverage section
/// (when present, it must follow the shard regions and hold exactly as many
/// values as the shard critical sections combined).
Status ValidateDirectory(const std::vector<ShardDir>& dirs,
                         const SectionEntry& coverage, uint64_t dir_end,
                         uint64_t file_size, const std::string& path) {
  uint64_t prev_end = dir_end;
  for (size_t s = 0; s < dirs.size(); ++s) {
    const ShardDir& dir = dirs[s];
    if (dir.num_graphs > file_size / sizeof(uint32_t)) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) +
          " declares more graphs than the snapshot could hold: " + path);
    }
    for (size_t i = 0; i < kNumSections; ++i) {
      const std::string where =
          "section " + std::to_string(i) + " of shard " + std::to_string(s);
      if (Status e = ValidateSectionEntry(dir.sections[i], where, file_size,
                                          &prev_end, path);
          !e.ok()) {
        return e;
      }
    }
    const uint64_t size_table_bytes = dir.num_graphs * sizeof(uint32_t);
    if (dir.sections[kSecNumNodes].raw_bytes != size_table_bytes ||
        dir.sections[kSecNumCritical].raw_bytes != size_table_bytes) {
      return Status::InvalidArgument(
          "size-table sections disagree with the graph count of shard " +
          std::to_string(s) + ": " + path);
    }
  }
  if (!CoverageAbsent(coverage)) {
    if (Status e = ValidateSectionEntry(coverage, "the coverage section",
                                        file_size, &prev_end, path);
        !e.ok()) {
      return e;
    }
    uint64_t critical_bytes = 0;
    for (const ShardDir& dir : dirs) {
      critical_bytes += dir.sections[kSecCritical].raw_bytes;
    }
    if (coverage.raw_bytes != critical_bytes) {
      return Status::InvalidArgument(
          "the coverage section disagrees with the shard critical pools: " +
          path);
    }
  }
  return Status::Ok();
}

/// verify_mapped rigor for the coverage section: it must be exactly the
/// shard-major gather of every arena's critical locals through its global
/// ids — the pool the owned-restore path would rebuild.
Status CheckCoverageSection(const std::vector<PrrStore>& stores,
                            std::span<const uint32_t> section,
                            const std::string& path) {
  const uint32_t* want = section.data();
  for (const PrrStore& store : stores) {
    const NodeId* ids = store.raw_global_ids().data();
    const uint32_t* cursor = store.raw_critical().data();
    const size_t store_graphs = store.num_graphs();
    uint64_t node_begin = 0;
    for (size_t g = 0; g < store_graphs; ++g) {
      const NodeId* base = ids + node_begin;
      for (const uint32_t* end = cursor + store.critical_count(g);
           cursor != end; ++cursor) {
        if (*want++ != base[*cursor]) {
          return Status::InvalidArgument(
              "coverage section disagrees with the arena critical sets: " +
              path);
        }
      }
      node_begin += store.num_nodes(g);
    }
  }
  return Status::Ok();
}

/// LB body (all versions): the critical sets as one flat offsets/nodes pair
/// over the non-empty sample numbering.
void WriteLbBody(std::ostream& out, const PrrCollection& pool) {
  const CoverageSelector& coverage = pool.coverage();
  const uint64_t num_sets = coverage.num_nonempty_sets();
  WritePod(out, num_sets);
  uint64_t offset = 0;
  WritePod(out, offset);
  for (uint64_t i = 0; i < num_sets; ++i) {
    offset += coverage.SetNodes(i).size();
    WritePod(out, offset);
  }
  for (uint64_t i = 0; i < num_sets; ++i) {
    const std::span<const NodeId> nodes = coverage.SetNodes(i);
    out.write(reinterpret_cast<const char*>(nodes.data()),
              static_cast<std::streamsize>(nodes.size() * sizeof(NodeId)));
  }
}

}  // namespace

SnapshotMapping::~SnapshotMapping() {
  if (addr_ != nullptr) ::munmap(addr_, len_);
}

StatusOr<std::shared_ptr<SnapshotMapping>> SnapshotMapping::Open(
    const std::string& path, bool prefault) {
  if (MaybeInjectFault(FaultSite::kSnapshotMmap)) {
    return Status::IoError("injected fault: mmap snapshot: " + path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for mapping: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Status::IoError("cannot stat for mapping: " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  // Prefault in one syscall instead of one minor fault per touched 4 KiB —
  // load-time validation walks most of the file anyway, and fault storms
  // were the dominant cost of warm-start-size mappings.
  if (prefault) flags |= MAP_POPULATE;
#else
  (void)prefault;  // best effort; on-demand paging still works
#endif
  void* addr = ::mmap(nullptr, len, PROT_READ, flags, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  if (addr == MAP_FAILED) {
    return Status::IoError("mmap failed: " + path);
  }
  return std::shared_ptr<SnapshotMapping>(new SnapshotMapping(addr, len));
}

StatusOr<PoolSaveResult> SavePoolSnapshot(const BoostSession& session,
                                          const std::string& path,
                                          const PoolSaveOptions& options) {
  if (!session.prepared()) {
    return Status::InvalidArgument(
        "session pool not prepared; call Prepare() before saving");
  }
  if (options.format_version != 2 && options.format_version != 3) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " +
        std::to_string(options.format_version) + " (this build writes 2, 3)");
  }
  if (options.format_version == 2 && options.codec != SnapshotCodec::kNop) {
    return Status::InvalidArgument(
        "the legacy v2 format has no codec seam; use format_version 3 for " +
        std::string(CodecName(options.codec)));
  }
  const Codec* codec = CodecById(static_cast<uint32_t>(options.codec));
  if (codec == nullptr) {
    return Status::InvalidArgument("unknown snapshot codec id " +
                                   std::to_string(static_cast<uint32_t>(
                                       options.codec)));
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);

  const PrrBoostEngine& engine = session.engine();
  const PrrCollection& pool = engine.collection();
  const PrrSamplerStats& stats = engine.stats();

  Header h;
  h.version = options.format_version;
  h.flags = (session.lb_only() ? kFlagLbOnly : 0) |
            (engine.samples_capped() ? kFlagSamplesCapped : 0);
  h.num_graph_nodes = pool.num_graph_nodes();
  h.pool_budget = session.budget();
  h.epsilon = session.options().epsilon;
  h.ell = session.options().ell;
  h.rng_seed = session.options().seed;
  h.max_samples = session.options().max_samples;
  h.num_threads = static_cast<uint32_t>(session.options().num_threads);
  h.num_shards = static_cast<uint32_t>(pool.num_shards());
  h.num_seeds = session.seeds().size();
  h.num_boostable = pool.num_boostable();
  h.num_activated = pool.num_activated();
  h.num_hopeless = pool.num_hopeless();
  h.edges_examined = stats.edges_examined;
  h.uncompressed_edges = stats.uncompressed_edges;
  h.compressed_edges = stats.compressed_edges;
  WriteHeader(out, h);

  const uint64_t seeds_bytes = h.num_seeds * sizeof(NodeId);
  uint64_t file_bytes = 0;
  HeaderExt ext;
  if (options.format_version >= 3) {
    ext.default_codec = static_cast<uint32_t>(options.codec);
    ext.dir_offset =
        session.lb_only() ? 0 : kHeaderBytes + kExtBytes + seeds_bytes;
    WriteHeaderExt(out, ext);
  }
  out.write(reinterpret_cast<const char*>(session.seeds().data()),
            static_cast<std::streamsize>(seeds_bytes));

  if (session.lb_only()) {
    WriteLbBody(out, pool);
    file_bytes = static_cast<uint64_t>(out.tellp());
  } else if (options.format_version == 2) {
    // Legacy v2 multi-shard body: per-shard blob sizes, then the blobs.
    // Shards serialize concurrently into memory buffers; the size table is
    // what lets the loader slice the stream and deserialize shards in
    // parallel (and bound every per-shard allocation before it happens).
    const size_t num_shards = pool.num_shards();
    std::vector<std::string> blobs(num_shards);
    ParallelFor(
        num_shards, session.options().num_threads,
        [&](size_t s, int /*t*/) {
          std::ostringstream buffer(std::ios::binary);
          pool.shard_store(s).Serialize(buffer);
          blobs[s] = std::move(buffer).str();
        },
        /*chunk=*/1);
    for (const std::string& blob : blobs) {
      WritePod(out, static_cast<uint64_t>(blob.size()));
    }
    for (const std::string& blob : blobs) {
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
    file_bytes = static_cast<uint64_t>(out.tellp());
  } else {
    // v3 body: a zeroed directory placeholder, then each shard's eight
    // section blocks streamed straight from the arena (no serialize-to-
    // string staging — the nop path writes the arena spans verbatim; a
    // compressing codec stages one section at a time), then, for nop-coded
    // (mmap-servable) snapshots, the pool-level coverage section, then the
    // directory backpatched with the final offsets and sizes.
    const size_t num_shards = pool.num_shards();
    const uint64_t dir_bytes = num_shards * kDirEntryBytes + kCoverageEntryBytes;
    WriteZeros(out, dir_bytes);
    uint64_t pos = ext.dir_offset + dir_bytes;

    std::vector<ShardDir> dirs(num_shards);
    std::string encode_buf;
    for (size_t s = 0; s < num_shards; ++s) {
      const PrrStore& store = pool.shard_store(s);
      const size_t num_graphs = store.num_graphs();
      std::vector<uint32_t> num_nodes(num_graphs), num_critical(num_graphs);
      for (size_t g = 0; g < num_graphs; ++g) {
        num_nodes[g] = store.num_nodes(g);
        num_critical[g] = static_cast<uint32_t>(store.critical_count(g));
      }
      const std::span<const uint32_t> sections[kNumSections] = {
          num_nodes,
          num_critical,
          store.raw_global_ids(),
          store.raw_out_offsets(),
          store.raw_in_offsets(),
          store.raw_out_edges(),
          store.raw_in_edges(),
          store.raw_critical()};

      dirs[s].num_graphs = num_graphs;
      const uint64_t shard_begin = AlignUp(pos, kShardAlign);
      WriteZeros(out, shard_begin - pos);
      pos = shard_begin;
      for (size_t i = 0; i < kNumSections; ++i) {
        const uint64_t block_begin = AlignUp(pos, kBlockAlign);
        WriteZeros(out, block_begin - pos);
        pos = block_begin;
        SectionEntry& e = dirs[s].sections[i];
        e.offset = pos;
        e.raw_bytes = sections[i].size() * sizeof(uint32_t);
        e.codec = static_cast<uint32_t>(options.codec);
        if (options.codec == SnapshotCodec::kNop) {
          if (!sections[i].empty()) {
            out.write(reinterpret_cast<const char*>(sections[i].data()),
                      static_cast<std::streamsize>(e.raw_bytes));
          }
          e.stored_bytes = e.raw_bytes;
        } else {
          encode_buf.clear();
          codec->Encode(sections[i], &encode_buf);
          out.write(encode_buf.data(),
                    static_cast<std::streamsize>(encode_buf.size()));
          e.stored_bytes = encode_buf.size();
        }
        pos += e.stored_bytes;
      }
    }

    // Pool-level coverage section: every graph's critical set translated to
    // global ids, shard-major in stored-graph order — exactly the node pool
    // RestoreFullPool would gather, written once so an mmap load can bind
    // the greedy-coverage selector in place. Skipped (all-zero entry) for
    // compressed snapshots, which decode into owned arenas and re-gather.
    SectionEntry coverage_entry;
    if (options.codec == SnapshotCodec::kNop) {
      std::vector<uint32_t> coverage_pool;
      size_t total_critical = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        total_critical += pool.shard_store(s).raw_critical().size();
      }
      coverage_pool.reserve(total_critical);
      for (size_t s = 0; s < num_shards; ++s) {
        const PrrStore& store = pool.shard_store(s);
        const NodeId* ids = store.raw_global_ids().data();
        const uint32_t* cursor = store.raw_critical().data();
        const size_t store_graphs = store.num_graphs();
        uint64_t node_begin = 0;
        for (size_t g = 0; g < store_graphs; ++g) {
          const NodeId* node_base = ids + node_begin;
          for (const uint32_t* end = cursor + store.critical_count(g);
               cursor != end; ++cursor) {
            coverage_pool.push_back(node_base[*cursor]);
          }
          node_begin += store.num_nodes(g);
        }
      }
      const uint64_t block_begin = AlignUp(pos, kBlockAlign);
      WriteZeros(out, block_begin - pos);
      pos = block_begin;
      coverage_entry.offset = pos;
      coverage_entry.raw_bytes = coverage_pool.size() * sizeof(uint32_t);
      coverage_entry.stored_bytes = coverage_entry.raw_bytes;
      coverage_entry.codec = static_cast<uint32_t>(SnapshotCodec::kNop);
      if (!coverage_pool.empty()) {
        out.write(reinterpret_cast<const char*>(coverage_pool.data()),
                  static_cast<std::streamsize>(coverage_entry.raw_bytes));
      }
      pos += coverage_entry.stored_bytes;
    }
    file_bytes = pos;

    out.seekp(static_cast<std::streamoff>(ext.dir_offset));
    for (const ShardDir& dir : dirs) {
      WritePod(out, dir.num_graphs);
      for (const SectionEntry& e : dir.sections) {
        WritePod(out, e.offset);
        WritePod(out, e.stored_bytes);
        WritePod(out, e.raw_bytes);
        WritePod(out, e.codec);
        WritePod(out, e.reserved);
      }
    }
    WritePod(out, coverage_entry.offset);
    WritePod(out, coverage_entry.stored_bytes);
    WritePod(out, coverage_entry.raw_bytes);
    WritePod(out, coverage_entry.codec);
    WritePod(out, coverage_entry.reserved);
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);

  PoolSaveResult result;
  result.file_bytes = file_bytes;
  result.num_samples = h.num_boostable + h.num_activated + h.num_hopeless;
  result.bytes_per_sample =
      result.num_samples > 0
          ? static_cast<double>(result.file_bytes) /
                static_cast<double>(result.num_samples)
          : 0.0;
  return result;
}

Status SavePoolSnapshot(const BoostSession& session, const std::string& path) {
  return SavePoolSnapshot(session, path, PoolSaveOptions{}).status();
}

StatusOr<std::unique_ptr<BoostSession>> LoadPoolSnapshot(
    const DirectedGraph& graph, const std::string& path,
    const PoolLoadOptions& options) {
  if (MaybeInjectFault(FaultSite::kSnapshotOpen)) {
    return Status::IoError("injected fault: open snapshot: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  Header h;
  Status header_status = ReadHeader(in, path, &h);
  if (!header_status.ok()) return header_status;
  if (h.num_graph_nodes != graph.num_nodes()) {
    return Status::InvalidArgument(
        "pool snapshot was taken against a graph with " +
        std::to_string(h.num_graph_nodes) + " nodes, not " +
        std::to_string(graph.num_nodes()));
  }
  if (h.pool_budget == 0 || h.num_seeds == 0 ||
      h.num_seeds > graph.num_nodes() || h.num_shards == 0 ||
      h.num_shards > static_cast<uint32_t>(PrrCollection::kMaxShards)) {
    return Status::InvalidArgument("corrupt pool snapshot header: " + path);
  }
  HeaderExt ext;
  if (h.version >= 3) {
    Status ext_status = ReadHeaderExt(in, path, &ext);
    if (!ext_status.ok()) return ext_status;
  }
  const bool lb_only = (h.flags & kFlagLbOnly) != 0;

  if (options.use_mmap) {
    if (h.version < 3) {
      return Status::FailedPrecondition(
          "pool snapshot version " + std::to_string(h.version) +
          " predates the mmap-servable v3 layout; re-save it with the "
          "current writer: " +
          path);
    }
    if (lb_only) {
      return Status::FailedPrecondition(
          "LB-only snapshot holds critical sets, not arena sections; the "
          "mmap path serves full-mode pools only: " +
          path);
    }
  }

  if (MaybeInjectFault(FaultSite::kSnapshotRead)) {
    return Status::IoError("injected fault: snapshot body read: " + path);
  }
  std::vector<NodeId> seeds(h.num_seeds);
  in.read(reinterpret_cast<char*>(seeds.data()),
          static_cast<std::streamsize>(h.num_seeds * sizeof(NodeId)));
  if (!in || MaybeInjectFault(FaultSite::kSnapshotShortRead)) {
    return Status::IoError("truncated pool snapshot: " + path);
  }
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return Status::OutOfRange("snapshot seed out of range: " +
                                std::to_string(s));
    }
  }

  // The writer's thread count is provenance, not a command: clamp it into
  // the valid range before it reaches BoostOptions (whose trusting
  // constructor would abort on garbage), and note that registering with a
  // BoostService overrides it with the service's Options::num_threads.
  const int load_threads = static_cast<int>(std::max<uint32_t>(
      1, std::min<uint32_t>(h.num_threads,
                            static_cast<uint32_t>(ThreadPool::kMaxWorkers))));
  // Restore-time parallelism is additionally capped by this host's cores:
  // the writer may have had more, and fanning tiny per-shard work (an mmap
  // attach is O(num_graphs) metadata, not O(bytes)) across more workers
  // than cores only buys wake/join overhead on the warm-start path.
  const int io_threads = std::max(
      1, std::min(load_threads,
                  static_cast<int>(std::thread::hardware_concurrency())));

  if (MaybeInjectFault(FaultSite::kAllocPressure)) {
    return Status::ResourceExhausted(
        "injected fault: allocation pressure restoring pool: " + path);
  }
  std::shared_ptr<SnapshotMapping> mapping;
  auto pool = std::make_unique<PrrCollection>(
      graph.num_nodes(), static_cast<int>(h.num_shards));
  if (lb_only) {
    uint64_t num_sets = 0;
    if (!ReadPod(in, &num_sets) || num_sets != h.num_boostable ||
        num_sets > RemainingBytes(in) / sizeof(uint64_t)) {
      return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
    }
    std::vector<uint64_t> offsets(num_sets + 1);
    in.read(reinterpret_cast<char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
    if (!in || offsets[0] != 0) {
      return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
    }
    for (uint64_t i = 0; i < num_sets; ++i) {
      if (offsets[i] > offsets[i + 1]) {
        return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
      }
    }
    if (offsets[num_sets] > RemainingBytes(in) / sizeof(NodeId)) {
      return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
    }
    std::vector<NodeId> nodes(offsets[num_sets]);
    in.read(reinterpret_cast<char*>(nodes.data()),
            static_cast<std::streamsize>(nodes.size() * sizeof(NodeId)));
    if (!in) return Status::IoError("truncated pool snapshot: " + path);
    for (NodeId v : nodes) {
      if (v >= graph.num_nodes()) {
        return Status::OutOfRange("snapshot critical node out of range: " +
                                  std::to_string(v));
      }
    }
    for (uint64_t i = 0; i < num_sets; ++i) {
      pool->AddBoostableCriticalOnly(std::span<const NodeId>(
          nodes.data() + offsets[i], offsets[i + 1] - offsets[i]));
    }
    pool->AddNonBoostableCounts(h.num_activated, h.num_hopeless);
  } else if (h.version <= 2) {
    const size_t num_shards = h.num_shards;
    std::vector<std::string> blobs(num_shards);
    if (h.version >= 2) {
      // v2 body: the blob-size table bounds every read before it happens —
      // reject a table that promises more bytes than the stream holds.
      std::vector<uint64_t> blob_sizes(num_shards);
      for (size_t s = 0; s < num_shards; ++s) {
        if (!ReadPod(in, &blob_sizes[s])) {
          return Status::IoError("truncated shard size table: " + path);
        }
      }
      // Per-entry then cumulative bound (the per-entry check also keeps the
      // running total overflow-free). An absurd single entry means a corrupt
      // table; a plausible table that sums past the stream means the file
      // was cut short, so that case reports as truncation.
      const uint64_t remaining = RemainingBytes(in);
      uint64_t total_bytes = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        if (blob_sizes[s] > remaining) {
          return Status::InvalidArgument(
              "shard table declares more data than the snapshot holds: " +
              path);
        }
        if (total_bytes + blob_sizes[s] > remaining) {
          return Status::IoError("truncated shard block " +
                                 std::to_string(s) + ": " + path);
        }
        total_bytes += blob_sizes[s];
      }
      for (size_t s = 0; s < num_shards; ++s) {
        blobs[s].resize(blob_sizes[s]);
        in.read(blobs[s].data(),
                static_cast<std::streamsize>(blob_sizes[s]));
        if (!in) {
          return Status::IoError("truncated shard block " +
                                 std::to_string(s) + ": " + path);
        }
      }
    } else {
      // v1 body: one arena blob spanning the rest of the stream; loads as a
      // single-shard pool.
      const uint64_t bytes = RemainingBytes(in);
      blobs[0].resize(bytes);
      in.read(blobs[0].data(), static_cast<std::streamsize>(bytes));
      if (!in) return Status::IoError("truncated pool snapshot: " + path);
    }

    // Per-shard deserialization and structural validation fan out over the
    // workers; every shard reports its own Status and the first failure (in
    // shard order, for a deterministic message) wins.
    std::vector<PrrStore> stores(num_shards);
    std::vector<Status> shard_status(num_shards, Status::Ok());
    ParallelFor(
        num_shards, io_threads,
        [&](size_t s, int /*t*/) {
          std::istringstream blob_in(blobs[s], std::ios::binary);
          if (Status arena = stores[s].Deserialize(blob_in); !arena.ok()) {
            shard_status[s] = Status::InvalidArgument(
                "corrupt PRR-graph arena in shard " + std::to_string(s) +
                " of snapshot " + path + ": " + arena.ToString());
            return;
          }
          shard_status[s] = CheckGlobalIds(stores[s], graph.num_nodes());
        },
        /*chunk=*/1);
    for (const Status& s : shard_status) {
      if (!s.ok()) return s;
    }
    size_t total_graphs = 0;
    for (const PrrStore& store : stores) total_graphs += store.num_graphs();
    if (total_graphs != h.num_boostable) {
      return Status::InvalidArgument(
          "snapshot header declares " + std::to_string(h.num_boostable) +
          " boostable graphs but the shard arenas hold " +
          std::to_string(total_graphs));
    }
    pool->RestoreFullPool(std::move(stores), h.num_activated, h.num_hopeless);
  } else {
    // v3 full-mode body: parse the section directory out of a file mapping
    // (the parse itself is O(num_shards)), then either bind external stores
    // over the mapped sections (use_mmap) or decode every block into owned
    // arenas.
    in.close();
    auto mapped = SnapshotMapping::Open(path, options.prefault);
    if (!mapped.ok()) return mapped.status();
    mapping = std::move(mapped).value();
    const char* base = mapping->data();
    const uint64_t file_size = mapping->size();

    const uint64_t num_shards = h.num_shards;
    const uint64_t dir_bytes =
        num_shards * kDirEntryBytes + kCoverageEntryBytes;
    const uint64_t seeds_end =
        kHeaderBytes + kExtBytes + h.num_seeds * sizeof(NodeId);
    if (ext.dir_offset < seeds_end || ext.dir_offset > file_size ||
        dir_bytes > file_size - ext.dir_offset) {
      return Status::InvalidArgument("v3 snapshot directory out of bounds: " +
                                     path);
    }
    std::vector<ShardDir> dirs(num_shards);
    const char* p = base + ext.dir_offset;
    for (uint64_t s = 0; s < num_shards; ++s) {
      dirs[s].num_graphs = ReadU64At(p);
      p += 8;
      for (size_t i = 0; i < kNumSections; ++i) {
        SectionEntry& e = dirs[s].sections[i];
        e.offset = ReadU64At(p);
        e.stored_bytes = ReadU64At(p + 8);
        e.raw_bytes = ReadU64At(p + 16);
        e.codec = ReadU32At(p + 24);
        e.reserved = ReadU32At(p + 28);
        p += 32;
      }
    }
    SectionEntry coverage;
    coverage.offset = ReadU64At(p);
    coverage.stored_bytes = ReadU64At(p + 8);
    coverage.raw_bytes = ReadU64At(p + 16);
    coverage.codec = ReadU32At(p + 24);
    coverage.reserved = ReadU32At(p + 28);
    Status dir_status = ValidateDirectory(dirs, coverage,
                                          ext.dir_offset + dir_bytes,
                                          file_size, path);
    if (!dir_status.ok()) return dir_status;

    if (options.use_mmap) {
      for (uint64_t s = 0; s < num_shards; ++s) {
        for (size_t i = 0; i < kNumSections; ++i) {
          if (dirs[s].sections[i].codec !=
              static_cast<uint32_t>(SnapshotCodec::kNop)) {
            return Status::FailedPrecondition(
                "section " + std::to_string(i) + " of shard " +
                std::to_string(s) + " is " +
                CodecName(static_cast<SnapshotCodec>(
                    dirs[s].sections[i].codec)) +
                "-coded; the zero-copy mmap path serves only nop-coded "
                "snapshots — load without mmap, or re-save with the nop "
                "codec: " +
                path);
          }
        }
      }
      // Only compressed snapshots omit the coverage section (their shard
      // sections were refused above); a nop-coded file without one is
      // corrupt, not merely old — the v3 writer always emits it.
      if (CoverageAbsent(coverage) ||
          coverage.codec != static_cast<uint32_t>(SnapshotCodec::kNop)) {
        return Status::InvalidArgument(
            "v3 snapshot has no mmap-servable coverage section: " + path);
      }
    }

    const auto section_u32 = [base](const SectionEntry& e) {
      return std::span<const uint32_t>(
          reinterpret_cast<const uint32_t*>(base + e.offset),
          e.raw_bytes / sizeof(uint32_t));
    };

    std::vector<PrrStore> stores(num_shards);
    std::vector<Status> shard_status(num_shards, Status::Ok());
    ParallelFor(
        num_shards, io_threads,
        [&](size_t s, int /*t*/) {
          const ShardDir& dir = dirs[s];
          const auto fail = [&](const Status& why) {
            shard_status[s] = Status::InvalidArgument(
                "corrupt PRR-graph arena in shard " + std::to_string(s) +
                " of snapshot " + path + ": " + why.ToString());
          };
          if (options.use_mmap) {
            PrrStore::ArenaSections sections;
            sections.num_nodes = section_u32(dir.sections[kSecNumNodes]);
            sections.num_critical =
                section_u32(dir.sections[kSecNumCritical]);
            sections.global_ids = section_u32(dir.sections[kSecGlobalIds]);
            sections.out_offsets = section_u32(dir.sections[kSecOutOffsets]);
            sections.in_offsets = section_u32(dir.sections[kSecInOffsets]);
            sections.out_edges = section_u32(dir.sections[kSecOutEdges]);
            sections.in_edges = section_u32(dir.sections[kSecInEdges]);
            sections.critical = section_u32(dir.sections[kSecCritical]);
            if (Status arena = stores[s].AttachExternal(
                    sections, options.verify_mapped);
                !arena.ok()) {
              fail(arena);
              return;
            }
          } else {
            std::vector<uint32_t> bufs[kNumSections];
            for (size_t i = 0; i < kNumSections; ++i) {
              const SectionEntry& e = dir.sections[i];
              bufs[i].resize(e.raw_bytes / sizeof(uint32_t));
              if (Status block =
                      CodecById(e.codec)->Decode(
                          std::span<const char>(base + e.offset,
                                                e.stored_bytes),
                          std::span<uint32_t>(bufs[i]));
                  !block.ok()) {
                fail(block);
                return;
              }
            }
            if (Status arena = stores[s].AdoptBuffers(
                    bufs[kSecNumNodes], bufs[kSecNumCritical],
                    std::move(bufs[kSecGlobalIds]),
                    std::move(bufs[kSecOutOffsets]),
                    std::move(bufs[kSecInOffsets]),
                    std::move(bufs[kSecOutEdges]),
                    std::move(bufs[kSecInEdges]),
                    std::move(bufs[kSecCritical]));
                !arena.ok()) {
              fail(arena);
              return;
            }
          }
          shard_status[s] = CheckGlobalIds(stores[s], graph.num_nodes());
        },
        /*chunk=*/1);
    for (const Status& s : shard_status) {
      if (!s.ok()) return s;
    }
    size_t total_graphs = 0;
    for (const PrrStore& store : stores) total_graphs += store.num_graphs();
    if (total_graphs != h.num_boostable) {
      return Status::InvalidArgument(
          "snapshot header declares " + std::to_string(h.num_boostable) +
          " boostable graphs but the shard arenas hold " +
          std::to_string(total_graphs));
    }
    if (options.use_mmap) {
      // Zero-copy restore: bind the greedy-coverage node pool straight to
      // the mapped coverage section instead of re-gathering it from the
      // arenas. Its ids index per-node arrays during selection, so they get
      // the same bounds pass the arena ids got (fused, one branch per
      // section on the happy path).
      const std::span<const uint32_t> coverage_nodes(
          reinterpret_cast<const uint32_t*>(base + coverage.offset),
          coverage.raw_bytes / sizeof(uint32_t));
      bool in_range = true;
      for (const uint32_t v : coverage_nodes) {
        in_range &= v < graph.num_nodes();
      }
      if (!in_range) {
        return Status::OutOfRange(
            "snapshot coverage node out of range: " + path);
      }
      if (options.verify_mapped) {
        if (Status cov = CheckCoverageSection(stores, coverage_nodes, path);
            !cov.ok()) {
          return cov;
        }
      }
      // The per-graph set sizes are the mapped num_critical sections
      // verbatim (the same bytes AttachExternal built each arena's meta
      // from), concatenated shard-major to match the coverage pool.
      std::vector<uint32_t> set_sizes;
      set_sizes.reserve(total_graphs);
      for (uint64_t s = 0; s < num_shards; ++s) {
        const std::span<const uint32_t> counts =
            section_u32(dirs[s].sections[kSecNumCritical]);
        set_sizes.insert(set_sizes.end(), counts.begin(), counts.end());
      }
      pool->RestoreFullPool(std::move(stores), set_sizes, coverage_nodes,
                            h.num_activated, h.num_hopeless);
    } else {
      pool->RestoreFullPool(std::move(stores), h.num_activated,
                            h.num_hopeless);
    }
  }

  BoostOptions boost_options;
  boost_options.k = h.pool_budget;
  boost_options.epsilon = h.epsilon;
  boost_options.ell = h.ell;
  boost_options.seed = h.rng_seed;
  boost_options.max_samples = h.max_samples;
  if (h.num_threads > 0) boost_options.num_threads = load_threads;
  boost_options.num_shards = static_cast<int>(h.num_shards);
  // These header-derived options feed the trusting BoostSession constructor,
  // which KB_CHECK-aborts on invalid values — a corrupt ε/ℓ/k/shard count
  // must surface as a typed rejection instead (NaN fails Validate's range
  // comparisons too, so a garbage double cannot sneak through).
  if (Status opt = boost_options.Validate(); !opt.ok()) {
    return Status::InvalidArgument(
        "snapshot header carries invalid sampling options (" +
        opt.ToString() + "): " + path);
  }

  PrrSamplerStats stats;
  stats.edges_examined = h.edges_examined;
  stats.uncompressed_edges = h.uncompressed_edges;
  stats.compressed_edges = h.compressed_edges;

  auto session = std::make_unique<BoostSession>(graph, std::move(seeds),
                                                boost_options, lb_only);
  session->engine().AdoptPool(std::move(pool), stats,
                              (h.flags & kFlagSamplesCapped) != 0);
  if (options.use_mmap && mapping != nullptr) {
    session->RetainResource(std::move(mapping));
  }
  return session;
}

StatusOr<std::unique_ptr<BoostSession>> LoadPoolSnapshot(
    const DirectedGraph& graph, const std::string& path) {
  return LoadPoolSnapshot(graph, path, PoolLoadOptions{});
}

StatusOr<std::unique_ptr<BoostSession>> MmapPool(const DirectedGraph& graph,
                                                 const std::string& path) {
  PoolLoadOptions options;
  options.use_mmap = true;
  return LoadPoolSnapshot(graph, path, options);
}

}  // namespace kboost
